// Quickstart: the paper's Listing 1, in the C++ DSL.
//
// A heat-diffusion operator on a 4x4 grid: define the grid and a
// time-varying function, write the PDE symbolically, solve for the
// update, build the Operator, and apply it. Run with an argument to see
// the same program executed on that many (thread-backed) MPI ranks with
// the distributed NumPy-style data access of Listings 2-3 — the source
// below does not change.
//
//   ./quickstart          # serial
//   ./quickstart 4        # 4 ranks, basic halo-exchange pattern
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/operator.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

namespace {

void simulate(const Grid& grid, int rank) {
  // Variable declarations (Listing 1, lines 2-8).
  const double nu = 0.5;
  const double sigma = 0.25;
  const double dx = grid.spacing(0);
  const double dy = grid.spacing(1);
  const double dt = sigma * dx * dy / nu;

  // A TimeFunction encapsulating space- and time-varying data
  // (space_order=2, first order in time).
  TimeFunction u("u", grid, /*space_order=*/2, /*time_order=*/1);

  // u.data[1:-1, 1:-1] = 1 — a *global* slice; each rank writes only the
  // part it owns (Listing 2).
  u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                    std::vector<std::int64_t>{3, 3}, 1.0F);

  // The equation to be solved: Eq(u.dt, nu * u.laplace), rearranged for
  // u.forward by solve().
  const sym::Ex pde = u.dt() - nu * u.laplace();
  const ir::Eq stencil(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()));

  // Generate the operator (the compiler runs here: clustering, flop
  // reduction, halo detection, pattern lowering) and apply one step.
  Operator op({stencil});
  op.apply(/*time_m=*/0, /*time_M=*/0, {{"dt", dt}});

  // Inspect the result as one logical array (gathered on rank 0).
  const std::vector<float> data = u.gather(1);
  if (rank == 0) {
    std::printf("u after one step (dt = %.4f):\n", dt);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        std::printf(" %6.3f", data[static_cast<std::size_t>(4 * i + j)]);
      }
      std::printf("\n");
    }
    std::printf("\ngenerated C (excerpt):\n");
    const std::string& code = op.ccode();
    // Print the kernel body only (skip the boilerplate header).
    const auto pos = code.find("for (long time");
    std::printf("%.600s...\n", code.c_str() + (pos == std::string::npos
                                                   ? 0
                                                   : pos));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 0;
  if (nranks > 1) {
    std::printf("running on %d thread-backed MPI ranks\n", nranks);
    smpi::run(nranks, [&](smpi::Communicator& comm) {
      const Grid grid({4, 4}, {2.0, 2.0}, comm);
      simulate(grid, comm.rank());
    });
  } else {
    const Grid grid({4, 4}, {2.0, 2.0});
    simulate(grid, 0);
  }
  return 0;
}
