// Quickstart: the paper's Listing 1, in the C++ DSL.
//
// A heat-diffusion operator on a 4x4 grid: define the grid and a
// time-varying function, write the PDE symbolically, solve for the
// update, build the Operator, and apply it. Run with an argument to see
// the same program executed on that many MPI ranks (threads by default,
// forked processes with --transport=process_shm) with the distributed
// NumPy-style data access of Listings 2-3 — the source below does not
// change.
//
//   ./quickstart                        # serial
//   ./quickstart 4                      # 4 ranks, basic halo pattern
//   ./quickstart 4 --transport=process_shm
//                                       # ranks as forked processes over
//                                       # shared-memory rings (default:
//                                       # threads, or JITFD_TRANSPORT)
//   ./quickstart --env                  # list every JITFD_* variable
//                                       # with type, default, live value
//   ./quickstart 4 --trace=trace.json   # + per-rank trace: summary on
//                                       # stdout, Chrome JSON to the file
//                                       # (open in chrome://tracing or
//                                       # https://ui.perfetto.dev)
//   ... --analysis=analysis.json        # + cross-rank analysis report
//                                       # (wait-state attribution,
//                                       # imbalance; needs --trace=)
//   ... --metrics=metrics.json          # + metrics registry dump
//                                       # (enables metrics for the run)
//   ... --health[=N]                    # + generated NaN/Inf/min/max/L2
//                                       # checks every N steps (default 1)
//   ... --on-nan=abort_dump             # on NaN/Inf: write the flight-
//                                       # recorder bundle and exit nonzero
//                                       # (also: ignore | record)
//   ./quickstart 4 --autotune=at.json   # trial every halo pattern x
//                                       # depth x tile, apply the winner,
//                                       # write the report (with the
//                                       # "why" decision trail) to the
//                                       # file; --objective=attributed
//                                       # scores trials on attributed
//                                       # cost (wait + redundant +
//                                       # imbalance) instead of wall time
//   ./quickstart 4 --rebalance          # closed loop: traced uniform
//                                       # run -> measured per-rank load
//                                       # -> biased dimension-0 split ->
//                                       # rerun, asserting the rebalanced
//                                       # model is bitwise identical.
//                                       # --expect-rebalance[=RANK] exits
//                                       # nonzero unless a rebalance was
//                                       # recommended (pinning RANK);
//                                       # inject load with
//                                       # JITFD_DELAY_RANK/JITFD_DELAY_US
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/autotune.h"
#include "core/env.h"
#include "core/operator.h"
#include "grid/function.h"
#include "obs/analysis.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;
namespace sym = jitfd::sym;

namespace {

struct HealthArgs {
  std::int64_t interval = 0;
  obs::health::OnNan on_nan = obs::health::OnNan::Record;
};

jitfd::core::RunSummary simulate(const Grid& grid, int rank, bool trace,
                                 const HealthArgs& health) {
  // Variable declarations (Listing 1, lines 2-8).
  const double nu = 0.5;
  const double sigma = 0.25;
  const double dx = grid.spacing(0);
  const double dy = grid.spacing(1);
  const double dt = sigma * dx * dy / nu;

  // A TimeFunction encapsulating space- and time-varying data
  // (space_order=2, first order in time).
  TimeFunction u("u", grid, /*space_order=*/2, /*time_order=*/1);

  // u.data[1:-1, 1:-1] = 1 — a *global* slice; each rank writes only the
  // part it owns (Listing 2).
  u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                    std::vector<std::int64_t>{3, 3}, 1.0F);

  // The equation to be solved: Eq(u.dt, nu * u.laplace), rearranged for
  // u.forward by solve().
  const sym::Ex pde = u.dt() - nu * u.laplace();
  const ir::Eq stencil(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()));

  // Generate the operator (the compiler runs here: clustering, flop
  // reduction, halo detection, pattern lowering) and apply one step.
  Operator op({stencil});
  const jitfd::core::RunSummary run =
      op.apply({.time_m = 0,
                .time_M = 0,
                .scalars = {{"dt", dt}},
                .trace = trace,
                .health_interval = health.interval,
                .on_nan = health.on_nan});

  // Inspect the result as one logical array (gathered on rank 0).
  const std::vector<float> data = u.gather(1);
  if (rank == 0) {
    std::printf("u after one step (dt = %.4f):\n", dt);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        std::printf(" %6.3f", data[static_cast<std::size_t>(4 * i + j)]);
      }
      std::printf("\n");
    }
    std::printf("\ngenerated C (excerpt):\n");
    const std::string& code = op.ccode();
    // Print the kernel body only (skip the boilerplate header).
    const auto pos = code.find("for (long time");
    std::printf("%.600s...\n", code.c_str() + (pos == std::string::npos
                                                   ? 0
                                                   : pos));
  }
  return run;
}

// --autotune=FILE: tune the diffusion operator over pattern x depth x
// tile, apply one step with the winner, and write the machine-readable
// report (tools/trace_check --autotune validates it).
int run_autotune(int nranks, smpi::LaunchOptions launch_opts,
                 const std::string& path, jitfd::core::Objective objective) {
  constexpr std::int64_t kEdge = 16;
  int status = 0;
  const auto tune = [&](const Grid& grid, smpi::Communicator* comm) {
    const double nu = 0.5;
    const double dt = 0.25 * grid.spacing(0) * grid.spacing(1) / nu;
    TimeFunction u("u", grid, /*space_order=*/2, /*time_order=*/1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{kEdge - 1, kEdge - 1}, 1.0F);
    const sym::Ex pde = u.dt() - nu * u.laplace();
    const ir::Eq stencil(u.forward(),
                         sym::solve(pde, sym::Ex(0), u.forward()));
    jitfd::core::AutotuneReport report;
    const auto op = jitfd::core::autotune_operator(
        {stencil}, {}, {{"dt", dt}}, /*time_m=*/0, /*trial_steps=*/3, &report,
        {}, objective);
    op->apply({.time_m = 0, .time_M = 0, .scalars = {{"dt", dt}}});
    if (comm == nullptr || comm->rank() == 0) {
      std::printf("autotune (%s objective): chose %s, depth %d\n",
                  report.objective == jitfd::core::Objective::Attributed
                      ? "attributed"
                      : "wall",
                  ir::to_string(report.best), report.best_depth);
      std::printf("  why: %s\n", report.why.c_str());
      if (report.rebalance_recommended) {
        std::printf("  rebalance recommended: rank %d persistently "
                    "critical\n",
                    report.rebalance_rank);
      }
      if (jitfd::core::write_autotune_file(path, report)) {
        std::printf("autotune report written to %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        status = 1;
      }
    }
  };
  if (nranks > 1) {
    launch_opts.nranks = nranks;
    smpi::launch(launch_opts, [&](smpi::Communicator& comm) {
      const Grid grid({kEdge, kEdge}, {2.0, 2.0}, comm);
      tune(grid, &comm);
    });
  } else {
    const Grid grid({kEdge, kEdge}, {2.0, 2.0});
    tune(grid, nullptr);
  }
  return status;
}

// --rebalance: the closed loop. A traced uniform run measures per-rank
// compute; the loads are allreduced (rank-uniform under both
// transports, where live traces may only cover the own rank), fed to
// Grid::plan_rebalance, and — when a biased split is recommended — the
// same simulation reruns on the biased grid. The gathered wavefields
// must be bitwise identical: decomposition placement must never change
// the model.
int run_rebalance(int nranks, smpi::LaunchOptions launch_opts,
                  bool expect_rebalance, int expect_rank) {
  constexpr std::int64_t kEdge = 32;
  constexpr int kSteps = 6;
  if (nranks < 2) {
    std::fprintf(stderr, "--rebalance needs >= 2 ranks\n");
    return 2;
  }
  jitfd::grid::RebalancePlan plan;
  std::string clamp_reason;
  bool bitwise_equal = false;
  launch_opts.nranks = nranks;
  smpi::launch(launch_opts, [&](smpi::Communicator& comm) {
    // Pin a 1-D dimension-0 topology so process rows map 1:1 to ranks.
    const std::vector<int> topo{comm.size(), 1};
    const auto diffuse = [&](const Grid& grid, bool trace) {
      TimeFunction u("u", grid, /*space_order=*/2, /*time_order=*/1);
      u.fill_global_box(0, std::vector<std::int64_t>{kEdge / 4, kEdge / 4},
                        std::vector<std::int64_t>{kEdge / 2, kEdge / 2},
                        1.0F);
      const sym::Ex pde = u.dt() - 0.5 * u.laplace();
      Operator op({ir::Eq(u.forward(),
                          sym::solve(pde, sym::Ex(0), u.forward()))});
      op.apply({.time_m = 0,
                .time_M = kSteps - 1,
                .scalars = {{"dt", 1e-4}},
                .trace = trace});
      return u.gather(kSteps % 2);
    };

    obs::reset();
    comm.barrier();
    std::vector<float> base;
    jitfd::grid::RebalancePlan local_plan;
    {
      const Grid grid({kEdge, kEdge}, {2.0, 2.0}, comm, topo);
      base = diffuse(grid, /*trace=*/true);

      // Own compute seconds from the trace; every transport sees at
      // least its own rank's events live.
      const obs::RunProfile profile = obs::profile_from(obs::collect());
      std::vector<double> loads(static_cast<std::size_t>(comm.size()), 0.0);
      for (const obs::RankProfile& r : profile.ranks) {
        if (r.rank == comm.rank()) {
          loads[static_cast<std::size_t>(r.rank)] = r.compute_s;
        }
      }
      comm.allreduce(std::span<double>(loads), smpi::ReduceOp::Sum);
      obs::AnalysisReport report;
      for (int r = 0; r < comm.size(); ++r) {
        report.rank_loads.push_back(
            {r, loads[static_cast<std::size_t>(r)]});
      }
      jitfd::grid::RebalanceOptions ropts;
      ropts.threshold =
          jitfd::env::get_float("JITFD_REBALANCE_THRESHOLD", 1.25);
      local_plan = grid.plan_rebalance(report, ropts);
    }
    obs::reset();
    comm.barrier();

    std::vector<float> biased;
    std::string local_clamp;
    if (local_plan.changed) {
      const Grid grid({kEdge, kEdge}, {2.0, 2.0}, comm, topo,
                      local_plan.sizes);
      local_clamp = grid.rebalance_clamp_reason();
      biased = diffuse(grid, /*trace=*/false);
    }
    if (comm.rank() == 0) {
      plan = local_plan;
      clamp_reason = local_clamp;
      bitwise_equal =
          local_plan.changed && base.size() == biased.size() &&
          std::memcmp(base.data(), biased.data(),
                      base.size() * sizeof(float)) == 0;
    }
  });

  std::printf("rebalance plan: %s (measured ratio %.3f, critical part "
              "%d)\n",
              plan.reason.c_str(), plan.measured_ratio, plan.critical_part);
  if (plan.changed) {
    std::printf("  biased dimension-0 split:");
    for (const std::int64_t s : plan.sizes) {
      std::printf(" %lld", static_cast<long long>(s));
    }
    std::printf("\n");
    if (!clamp_reason.empty()) {
      std::fprintf(stderr, "  split rejected by grid: %s\n",
                   clamp_reason.c_str());
      return 5;
    }
    if (!bitwise_equal) {
      std::fprintf(stderr,
                   "  FAIL: rebalanced wavefield differs from uniform\n");
      return 5;
    }
    std::printf("  rebalanced wavefield bitwise identical to uniform "
                "split\n");
  }
  if (expect_rebalance && !plan.changed) {
    std::fprintf(stderr, "expected a rebalance recommendation, got: %s\n",
                 plan.reason.c_str());
    return 4;
  }
  if (expect_rank >= 0 && plan.critical_part != expect_rank) {
    std::fprintf(stderr, "expected critical part %d, plan names %d\n",
                 expect_rank, plan.critical_part);
    return 4;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = 0;
  std::string trace_path;
  std::string analysis_path;
  std::string metrics_path;
  std::string autotune_path;
  jitfd::core::Objective objective = jitfd::core::Objective::FromEnv;
  bool rebalance = false;
  bool expect_rebalance = false;
  int expect_rank = -1;
  smpi::LaunchOptions launch_opts;
  HealthArgs health;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--analysis=", 11) == 0) {
      analysis_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--autotune=", 11) == 0) {
      autotune_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--objective=", 12) == 0) {
      const std::string name = argv[i] + 12;
      if (name == "wall") {
        objective = jitfd::core::Objective::Wall;
      } else if (name == "attributed") {
        objective = jitfd::core::Objective::Attributed;
      } else {
        std::fprintf(stderr, "unknown --objective=%s (wall|attributed)\n",
                     name.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--rebalance") == 0) {
      rebalance = true;
    } else if (std::strcmp(argv[i], "--expect-rebalance") == 0) {
      expect_rebalance = true;
    } else if (std::strncmp(argv[i], "--expect-rebalance=", 19) == 0) {
      expect_rebalance = true;
      expect_rank = std::atoi(argv[i] + 19);
    } else if (std::strcmp(argv[i], "--env") == 0) {
      std::printf("%s", jitfd::env::describe().c_str());
      return 0;
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      try {
        launch_opts.transport = smpi::transport_from_string(argv[i] + 12);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health.interval = 1;
    } else if (std::strncmp(argv[i], "--health=", 9) == 0) {
      health.interval = std::atoll(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--on-nan=", 9) == 0) {
      health.on_nan = obs::health::on_nan_from_string(argv[i] + 9);
    } else {
      nranks = std::atoi(argv[i]);
    }
  }
  if (!autotune_path.empty()) {
    return run_autotune(nranks, launch_opts, autotune_path, objective);
  }
  if (rebalance) {
    return run_rebalance(nranks, launch_opts, expect_rebalance, expect_rank);
  }
  const bool trace = !trace_path.empty();
  if (!metrics_path.empty()) {
    obs::metrics::set_enabled(true);
  }
  // Post-mortem bundles for fatal signals / uncaught exceptions too,
  // not just NaN detection under --on-nan=abort_dump.
  obs::flight::install_crash_handlers();

  jitfd::core::RunSummary run;
  try {
    if (nranks > 1) {
      launch_opts.nranks = nranks;
      const smpi::TransportKind kind = launch_opts.transport.has_value()
                                           ? *launch_opts.transport
                                           : smpi::default_transport();
      std::printf("running on %d MPI ranks (%s transport)\n", nranks,
                  smpi::to_string(kind));
      smpi::launch(launch_opts, [&](smpi::Communicator& comm) {
        const Grid grid({4, 4}, {2.0, 2.0}, comm);
        const auto r = simulate(grid, comm.rank(), trace, health);
        if (comm.rank() == 0) {
          run = r;
        }
      });
    } else {
      const Grid grid({4, 4}, {2.0, 2.0});
      run = simulate(grid, 0, trace, health);
    }
  } catch (const obs::health::DivergenceError& e) {
    std::fprintf(stderr, "diverged: %s\n", e.what());
    if (!e.dump_path().empty()) {
      std::fprintf(stderr, "flight bundle: %s\n", e.dump_path().c_str());
    }
    return 3;
  }

  if (health.interval > 0) {
    std::printf("\nhealth: %lld checks, %lld NaN / %lld Inf points (%s)\n",
                static_cast<long long>(run.health.checks),
                static_cast<long long>(run.health.nan_points),
                static_cast<long long>(run.health.inf_points),
                run.health.healthy() ? "healthy" : "diverged");
  }
  std::printf("\n%lld point-updates in %.3f ms (%s backend, %llu halo "
              "messages)\n",
              static_cast<long long>(run.points_updated),
              1e3 * run.seconds, jitfd::core::to_string(run.backend),
              static_cast<unsigned long long>(run.halo.messages));
  // Every rank has finished (smpi::launch returned; child traces are
  // merged under process_shm), so the trace snapshot is complete here.
  if (run.trace.active()) {
    std::printf("\n%s", run.trace.summary().c_str());
    if (run.trace.write_chrome(trace_path)) {
      std::printf("chrome trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    if (!analysis_path.empty()) {
      std::ofstream out(analysis_path, std::ios::binary);
      out << obs::analysis_json(run.trace.analysis());
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", analysis_path.c_str());
        return 1;
      }
      std::printf("cross-rank analysis written to %s\n",
                  analysis_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    out << obs::metrics::to_json();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
