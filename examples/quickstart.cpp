// Quickstart: the paper's Listing 1, in the C++ DSL.
//
// A heat-diffusion operator on a 4x4 grid: define the grid and a
// time-varying function, write the PDE symbolically, solve for the
// update, build the Operator, and apply it. Run with an argument to see
// the same program executed on that many MPI ranks (threads by default,
// forked processes with --transport=process_shm) with the distributed
// NumPy-style data access of Listings 2-3 — the source below does not
// change.
//
//   ./quickstart                        # serial
//   ./quickstart 4                      # 4 ranks, basic halo pattern
//   ./quickstart 4 --transport=process_shm
//                                       # ranks as forked processes over
//                                       # shared-memory rings (default:
//                                       # threads, or JITFD_TRANSPORT)
//   ./quickstart --env                  # list every JITFD_* variable
//                                       # with type, default, live value
//   ./quickstart 4 --trace=trace.json   # + per-rank trace: summary on
//                                       # stdout, Chrome JSON to the file
//                                       # (open in chrome://tracing or
//                                       # https://ui.perfetto.dev)
//   ... --analysis=analysis.json        # + cross-rank analysis report
//                                       # (wait-state attribution,
//                                       # imbalance; needs --trace=)
//   ... --metrics=metrics.json          # + metrics registry dump
//                                       # (enables metrics for the run)
//   ... --health[=N]                    # + generated NaN/Inf/min/max/L2
//                                       # checks every N steps (default 1)
//   ... --on-nan=abort_dump             # on NaN/Inf: write the flight-
//                                       # recorder bundle and exit nonzero
//                                       # (also: ignore | record)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/env.h"
#include "core/operator.h"
#include "grid/function.h"
#include "obs/analysis.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;
namespace sym = jitfd::sym;

namespace {

struct HealthArgs {
  std::int64_t interval = 0;
  obs::health::OnNan on_nan = obs::health::OnNan::Record;
};

jitfd::core::RunSummary simulate(const Grid& grid, int rank, bool trace,
                                 const HealthArgs& health) {
  // Variable declarations (Listing 1, lines 2-8).
  const double nu = 0.5;
  const double sigma = 0.25;
  const double dx = grid.spacing(0);
  const double dy = grid.spacing(1);
  const double dt = sigma * dx * dy / nu;

  // A TimeFunction encapsulating space- and time-varying data
  // (space_order=2, first order in time).
  TimeFunction u("u", grid, /*space_order=*/2, /*time_order=*/1);

  // u.data[1:-1, 1:-1] = 1 — a *global* slice; each rank writes only the
  // part it owns (Listing 2).
  u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                    std::vector<std::int64_t>{3, 3}, 1.0F);

  // The equation to be solved: Eq(u.dt, nu * u.laplace), rearranged for
  // u.forward by solve().
  const sym::Ex pde = u.dt() - nu * u.laplace();
  const ir::Eq stencil(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()));

  // Generate the operator (the compiler runs here: clustering, flop
  // reduction, halo detection, pattern lowering) and apply one step.
  Operator op({stencil});
  const jitfd::core::RunSummary run =
      op.apply({.time_m = 0,
                .time_M = 0,
                .scalars = {{"dt", dt}},
                .trace = trace,
                .health_interval = health.interval,
                .on_nan = health.on_nan});

  // Inspect the result as one logical array (gathered on rank 0).
  const std::vector<float> data = u.gather(1);
  if (rank == 0) {
    std::printf("u after one step (dt = %.4f):\n", dt);
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        std::printf(" %6.3f", data[static_cast<std::size_t>(4 * i + j)]);
      }
      std::printf("\n");
    }
    std::printf("\ngenerated C (excerpt):\n");
    const std::string& code = op.ccode();
    // Print the kernel body only (skip the boilerplate header).
    const auto pos = code.find("for (long time");
    std::printf("%.600s...\n", code.c_str() + (pos == std::string::npos
                                                   ? 0
                                                   : pos));
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  int nranks = 0;
  std::string trace_path;
  std::string analysis_path;
  std::string metrics_path;
  smpi::LaunchOptions launch_opts;
  HealthArgs health;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--analysis=", 11) == 0) {
      analysis_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--env") == 0) {
      std::printf("%s", jitfd::env::describe().c_str());
      return 0;
    } else if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      try {
        launch_opts.transport = smpi::transport_from_string(argv[i] + 12);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health.interval = 1;
    } else if (std::strncmp(argv[i], "--health=", 9) == 0) {
      health.interval = std::atoll(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--on-nan=", 9) == 0) {
      health.on_nan = obs::health::on_nan_from_string(argv[i] + 9);
    } else {
      nranks = std::atoi(argv[i]);
    }
  }
  const bool trace = !trace_path.empty();
  if (!metrics_path.empty()) {
    obs::metrics::set_enabled(true);
  }
  // Post-mortem bundles for fatal signals / uncaught exceptions too,
  // not just NaN detection under --on-nan=abort_dump.
  obs::flight::install_crash_handlers();

  jitfd::core::RunSummary run;
  try {
    if (nranks > 1) {
      launch_opts.nranks = nranks;
      const smpi::TransportKind kind = launch_opts.transport.has_value()
                                           ? *launch_opts.transport
                                           : smpi::default_transport();
      std::printf("running on %d MPI ranks (%s transport)\n", nranks,
                  smpi::to_string(kind));
      smpi::launch(launch_opts, [&](smpi::Communicator& comm) {
        const Grid grid({4, 4}, {2.0, 2.0}, comm);
        const auto r = simulate(grid, comm.rank(), trace, health);
        if (comm.rank() == 0) {
          run = r;
        }
      });
    } else {
      const Grid grid({4, 4}, {2.0, 2.0});
      run = simulate(grid, 0, trace, health);
    }
  } catch (const obs::health::DivergenceError& e) {
    std::fprintf(stderr, "diverged: %s\n", e.what());
    if (!e.dump_path().empty()) {
      std::fprintf(stderr, "flight bundle: %s\n", e.dump_path().c_str());
    }
    return 3;
  }

  if (health.interval > 0) {
    std::printf("\nhealth: %lld checks, %lld NaN / %lld Inf points (%s)\n",
                static_cast<long long>(run.health.checks),
                static_cast<long long>(run.health.nan_points),
                static_cast<long long>(run.health.inf_points),
                run.health.healthy() ? "healthy" : "diverged");
  }
  std::printf("\n%lld point-updates in %.3f ms (%s backend, %llu halo "
              "messages)\n",
              static_cast<long long>(run.points_updated),
              1e3 * run.seconds, jitfd::core::to_string(run.backend),
              static_cast<unsigned long long>(run.halo.messages));
  // Every rank has finished (smpi::launch returned; child traces are
  // merged under process_shm), so the trace snapshot is complete here.
  if (run.trace.active()) {
    std::printf("\n%s", run.trace.summary().c_str());
    if (run.trace.write_chrome(trace_path)) {
      std::printf("chrome trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    if (!analysis_path.empty()) {
      std::ofstream out(analysis_path, std::ios::binary);
      out << obs::analysis_json(run.trace.analysis());
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", analysis_path.c_str());
        return 1;
      }
      std::printf("cross-rank analysis written to %s\n",
                  analysis_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    out << obs::metrics::to_json();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
