// Seismic forward modeling with the isotropic acoustic propagator: the
// paper's flagship application (FWI/RTM forward kernels).
//
// A Ricker point source is injected into a 2D medium with an absorbing
// boundary layer; a line of receivers records the wavefield — the full
// "operations beyond stencils" pipeline of Section III-c. Run serially
// or on N thread-backed ranks with any of the three DMP patterns:
//
//   ./acoustic_modeling                 # serial
//   ./acoustic_modeling 4 diagonal     # 4 ranks, diagonal pattern
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/operator.h"
#include "models/acoustic.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::models::AcousticModel;
using jitfd::sparse::Injection;
using jitfd::sparse::Interpolation;
using jitfd::sparse::SparseFunction;
namespace ir = jitfd::ir;

namespace {

ir::MpiMode parse_mode(const char* s) {
  if (std::strcmp(s, "diagonal") == 0) {
    return ir::MpiMode::Diagonal;
  }
  if (std::strcmp(s, "full") == 0) {
    return ir::MpiMode::Full;
  }
  return ir::MpiMode::Basic;
}

void shot(const Grid& grid, ir::MpiMode mode, int rank) {
  const int so = 8;
  // Two-layer medium: 1.5 m/ms above 60% depth, 2.5 m/ms below — the
  // seismogram shows both the direct arrival and the faster head wave
  // refracted along the interface.
  const double h = grid.spacing(0);
  AcousticModel model(
      grid, so,
      [&](std::span<const std::int64_t> gi) {
        return gi[0] * h > 0.6 * grid.extent()[0] ? 2.5 : 1.5;
      },
      /*vmax=*/2.5, /*nbl=*/10);

  // Source in the top centre; receivers along a horizontal line.
  const double lx = grid.extent()[0];
  const double ly = grid.extent()[1];
  const SparseFunction src("src", grid, {{0.25 * lx, 0.5 * ly}});
  std::vector<std::vector<double>> rec_coords;
  for (int r = 0; r < 16; ++r) {
    rec_coords.push_back({0.7 * lx, (0.1 + 0.05 * r) * ly});
  }
  const SparseFunction receivers("rec", grid, rec_coords);

  const double dt = model.critical_dt();  // Milliseconds.
  const double f0 = 0.015;                // 15 Hz in cycles/ms.
  Injection inject(
      model.wavefield(), src,
      [&](std::int64_t t) {
        return jitfd::sparse::ricker(t * dt, f0, 1.2 / f0);
      },
      nullptr, /*time_offset=*/1);
  Interpolation record(model.wavefield(), receivers, /*time_offset=*/1);

  ir::CompileOptions opts;
  opts.mode = mode;
  auto op = model.make_operator(opts, {&inject, &record});
  // Use the JIT (generated C) backend when a system compiler exists —
  // the same decision Devito makes; otherwise fall back to the
  // reference interpreter.
  if (std::system("cc --version > /dev/null 2>&1") == 0) {
    op->set_default_backend(jitfd::core::Backend::Jit);
  }

  const int steps = 340;
  const auto run = op->apply(
      {.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});

  const auto seismogram = record.assemble();
  // Collective: every rank participates in the reduction.
  const double energy = model.field_energy(steps);
  if (rank == 0) {
    std::printf("acoustic shot: %lld x %lld grid, SDO %d, %d steps, "
                "dt=%.4f, mode=%s\n",
                static_cast<long long>(grid.shape()[0]),
                static_cast<long long>(grid.shape()[1]), so, steps, dt,
                ir::to_string(mode));
    std::printf("wavefield energy: %.3e\n", energy);
    std::printf("throughput: %.4f GPts/s (%s backend)\n", run.gpts_per_s,
                jitfd::core::to_string(run.backend));
    // Print a coarse ASCII seismogram: receiver x time, sign of the trace.
    std::printf("seismogram (16 receivers, every 10th step):\n");
    for (std::size_t p = 0; p < rec_coords.size(); ++p) {
      std::printf("  rec%02zu ", p);
      double peak = 0.0;
      for (const auto& row : seismogram) {
        peak = std::max(peak, std::abs(row[p]));
      }
      for (std::size_t t = 0; t < seismogram.size(); t += 10) {
        const double v = seismogram[t][p];
        std::printf("%c", std::abs(v) < 0.05 * peak ? '.'
                          : (v > 0 ? '+' : '-'));
      }
      std::printf("  |peak %.2e\n", peak);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 0;
  const ir::MpiMode mode =
      argc > 2 ? parse_mode(argv[2]) : ir::MpiMode::Basic;
  const std::vector<std::int64_t> shape{101, 101};
  const std::vector<double> extent{1000.0, 1000.0};
  if (nranks > 1) {
    smpi::run(nranks, [&](smpi::Communicator& comm) {
      const Grid grid(shape, extent, comm);
      shot(grid, mode, comm.rank());
    });
  } else {
    const Grid grid(shape, extent);
    shot(grid, mode, 0);
  }
  return 0;
}
