// Custom domain decomposition and communication-pattern comparison:
// the paper's Figure 2 (user-chosen topologies) and Table I (pattern
// characteristics), demonstrated with real exchanges on thread-backed
// ranks. For each topology and pattern, the same diffusion problem is
// run and the per-rank halo traffic is reported; results are verified
// identical across every configuration.
//
//   ./custom_topology [nranks]   (default 8)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/operator.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

namespace {

struct Result {
  double checksum = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

Result run_config(int nranks, const std::vector<int>& topology,
                  ir::MpiMode mode) {
  Result result;
  smpi::run(nranks, [&](smpi::Communicator& comm) {
    const Grid grid({48, 48}, {1.0, 1.0}, comm, topology);
    TimeFunction u("u", grid, 4, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{10, 10},
                      std::vector<std::int64_t>{38, 38}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = mode;
    Operator op({ir::Eq(
        u.forward(),
        sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()))},
                opts);
    const auto run = op.apply(
        {.time_m = 0, .time_M = 19, .scalars = {{"dt", 1e-4}}});
    const double local = u.norm2(20 % 2);  // Collective (same on all ranks).
    std::vector<std::int64_t> totals{
        static_cast<std::int64_t>(run.halo.messages),
        static_cast<std::int64_t>(run.halo.bytes_sent)};
    comm.allreduce(std::span<std::int64_t>(totals), smpi::ReduceOp::Sum);
    if (comm.rank() == 0) {
      result.checksum = local;
      result.messages = static_cast<std::uint64_t>(totals[0]);
      result.bytes = static_cast<std::uint64_t>(totals[1]);
    }
  });
  return result;
}

std::string topo_name(const std::vector<int>& t) {
  if (t.empty()) {
    return "default";
  }
  return "(" + std::to_string(t[0]) + "," + std::to_string(t[1]) + ")";
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("=== Custom topologies x communication patterns "
              "(%d ranks, 48x48 grid, 20 steps) ===\n\n",
              nranks);
  std::printf("%-10s %-10s %10s %12s %14s\n", "topology", "pattern",
              "messages", "bytes", "checksum");

  double reference = 0.0;
  bool first = true;
  for (const std::vector<int>& topology :
       {std::vector<int>{}, {0, 1}, {1, 0}}) {
    for (const ir::MpiMode mode :
         {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
      const Result r = run_config(nranks, topology, mode);
      std::printf("%-10s %-10s %10llu %12llu %14.6f\n",
                  topo_name(topology).c_str(), ir::to_string(mode),
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.bytes), r.checksum);
      if (first) {
        reference = r.checksum;
        first = false;
      } else if (std::abs(r.checksum - reference) >
                 1e-6 * std::abs(reference)) {
        std::printf("MISMATCH: topology/pattern changed the result!\n");
        return 1;
      }
    }
  }
  std::printf("\nAll topologies and patterns produced identical physics "
              "(checksum agreement),\nwith different communication "
              "profiles — the paper's Table I in action.\n");
  return 0;
}
