// Anisotropic (TTI) wave propagation: the paper's most flop-intensive
// kernel. The rotated Laplacian is composed from first derivatives with
// spatially varying direction cosines through CIRE scratch fields, which
// the compiler recomputes and halo-exchanges every time step. The
// anisotropy is visible in the wavefront: it propagates faster along the
// tilted symmetry axis.
//
//   ./tti_modeling [nranks] [theta-degrees]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/operator.h"
#include "models/tti.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"

using jitfd::grid::Grid;
using jitfd::models::TtiModel;
using jitfd::sparse::Injection;
using jitfd::sparse::SparseFunction;
namespace ir = jitfd::ir;

namespace {

void shot(const Grid& grid, double theta, int rank) {
  const int so = 8;
  TtiModel model(grid, so, /*velocity=*/1.5, /*epsilon=*/0.24,
                 /*delta=*/0.1, theta);

  const double lx = grid.extent()[0];
  const double ly = grid.extent()[1];
  const SparseFunction src("src", grid, {{0.5 * lx, 0.5 * ly}});
  const double dt = model.critical_dt();  // Milliseconds.
  const double f0 = 0.015;               // 15 Hz in cycles/ms.
  Injection inj_p(
      model.wavefield(), src,
      [&](std::int64_t t) { return jitfd::sparse::ricker(t * dt, f0, 1.2 / f0); },
      nullptr, 1);
  Injection inj_q(
      model.q(), src,
      [&](std::int64_t t) { return jitfd::sparse::ricker(t * dt, f0, 1.2 / f0); },
      nullptr, 1);

  auto op = model.make_operator({}, {&inj_p, &inj_q});
  if (std::system("cc --version > /dev/null 2>&1") == 0) {
    op->set_default_backend(jitfd::core::Backend::Jit);
  }
  const int steps = 180;
  op->apply({.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});

  const auto p = model.wavefield().gather((steps + 1) % 3);
  const double energy = model.field_energy(steps);  // Collective.
  if (rank == 0) {
    std::printf("TTI shot: %lld^2 grid, SDO %d, theta=%.0f deg, %d steps\n",
                static_cast<long long>(grid.shape()[0]), so,
                theta * 180.0 / M_PI, steps);
    std::printf("p-field energy: %.3e\n", energy);
    // Wavefront anisotropy: radius of the front along vs across the tilt.
    const std::int64_t n = grid.shape()[0];
    auto front_radius = [&](double angle) {
      for (std::int64_t r = n / 2 - 1; r > 0; --r) {
        const auto i =
            static_cast<std::int64_t>(n / 2 + r * std::cos(angle));
        const auto j =
            static_cast<std::int64_t>(n / 2 + r * std::sin(angle));
        if (i >= 0 && i < n && j >= 0 && j < n &&
            std::abs(p[static_cast<std::size_t>(i * n + j)]) > 1e-4) {
          return static_cast<double>(r);
        }
      }
      return 0.0;
    };
    const double along = front_radius(theta);
    const double across = front_radius(theta + M_PI / 2);
    std::printf("wavefront radius along tilt axis: %.0f points, perpendicular:\n"
                "%.0f points (anisotropic propagation; compare with\n"
                "theta=0/90 or epsilon=0 for the isotropic circle)\n",
                along, across);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 0;
  const double theta_deg = argc > 2 ? std::atof(argv[2]) : 30.0;
  const double theta = theta_deg * M_PI / 180.0;
  const std::vector<std::int64_t> shape{141, 141};
  const std::vector<double> extent{1400.0, 1400.0};
  if (nranks > 1) {
    smpi::run(nranks, [&](smpi::Communicator& comm) {
      const Grid grid(shape, extent, comm);
      shot(grid, theta, comm.rank());
    });
  } else {
    const Grid grid(shape, extent);
    shot(grid, theta, 0);
  }
  return 0;
}
