// Elastic wave propagation on a staggered grid: the coupled
// velocity-stress (Virieux) system with 22 working-set fields — the
// paper's example of a first-order-in-time, communication-heavy kernel
// whose stress update reads the *freshly computed* velocities, forcing
// the compiler into loop fission plus a second halo exchange per step.
//
//   ./elastic_modeling [nranks] [basic|diagonal|full]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/operator.h"
#include "models/elastic.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"

using jitfd::grid::Grid;
using jitfd::models::ElasticModel;
using jitfd::sparse::Injection;
using jitfd::sparse::SparseFunction;
namespace ir = jitfd::ir;

namespace {

void shot(const Grid& grid, ir::MpiMode mode, int rank) {
  const int so = 4;
  ElasticModel model(grid, so, /*vp=*/2.0, /*vs=*/1.0, /*rho=*/1.8,
                     /*nbl=*/8);

  const double lx = grid.extent()[0];
  const double ly = grid.extent()[1];
  const SparseFunction src("src", grid, {{0.5 * lx, 0.5 * ly}});
  const double dt = model.critical_dt();  // Milliseconds.
  const double f0 = 0.015;               // 15 Hz in cycles/ms.
  // Explosive source: inject the wavelet into the diagonal stress.
  Injection inj_xx(
      *model.tau_diag(0), src,
      [&](std::int64_t t) { return jitfd::sparse::ricker(t * dt, f0, 1.2 / f0); },
      nullptr, 1);
  Injection inj_yy(
      *model.tau_diag(1), src,
      [&](std::int64_t t) { return jitfd::sparse::ricker(t * dt, f0, 1.2 / f0); },
      nullptr, 1);

  ir::CompileOptions opts;
  opts.mode = mode;
  auto op = model.make_operator(opts, {&inj_xx, &inj_yy});
  if (std::system("cc --version > /dev/null 2>&1") == 0) {
    op->set_default_backend(jitfd::core::Backend::Jit);
  }

  const int steps = 120;
  const auto run = op->apply(
      {.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});

  // Collective: every rank participates in the reduction.
  const double energy = model.field_energy(steps);
  if (rank == 0) {
    std::printf("elastic shot: %lld^2 grid, SDO %d, %d steps, mode=%s\n",
                static_cast<long long>(grid.shape()[0]), so, steps,
                ir::to_string(mode));
    std::printf("%s\n", op->describe().c_str());
    std::printf("energy(v, tau) after %d steps: %.3e\n", steps, energy);
    if (run.halo.messages > 0) {
      std::printf("halo traffic: %llu messages, %.1f MB sent (this rank)\n",
                  static_cast<unsigned long long>(run.halo.messages),
                  static_cast<double>(run.halo.bytes_sent) / 1e6);
    }
  }

  // Show the radiation pattern: vx along a circle around the source.
  const auto vx = model.v(0)->gather((steps + 1) % 2);
  if (rank == 0) {
    std::printf("vx radiation sample (16 directions): ");
    const std::int64_t n = grid.shape()[0];
    for (int k = 0; k < 16; ++k) {
      const double angle = 2.0 * M_PI * k / 16;
      const auto i =
          static_cast<std::int64_t>(n / 2 + 0.25 * n * std::cos(angle));
      const auto j =
          static_cast<std::int64_t>(n / 2 + 0.25 * n * std::sin(angle));
      const float v = vx[static_cast<std::size_t>(i * n + j)];
      std::printf("%c", std::abs(v) < 1e-8 ? '.' : (v > 0 ? '+' : '-'));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 0;
  ir::MpiMode mode = ir::MpiMode::Basic;
  if (argc > 2 && std::strcmp(argv[2], "diagonal") == 0) {
    mode = ir::MpiMode::Diagonal;
  } else if (argc > 2 && std::strcmp(argv[2], "full") == 0) {
    mode = ir::MpiMode::Full;
  }
  const std::vector<std::int64_t> shape{81, 81};
  const std::vector<double> extent{800.0, 800.0};
  if (nranks > 1) {
    smpi::run(nranks, [&](smpi::Communicator& comm) {
      const Grid grid(shape, extent, comm);
      shot(grid, mode, comm.rank());
    });
  } else {
    const Grid grid(shape, extent);
    shot(grid, mode, 0);
  }
  return 0;
}
