// Full-waveform-inversion gradient via the adjoint-state method: the
// industrial workflow the paper's propagators exist for (FWI/RTM,
// Section I). Everything is expressed in the DSL — the adjoint
// propagator is just another Operator — and runs serially or distributed
// with any pattern, unchanged.
//
// Workflow (one shot, one FWI iteration's gradient):
//   1. Forward-model synthetic data in the TRUE model (sharp velocity
//      anomaly), recording at the receivers.
//   2. Forward-model in the SMOOTH starting model, recording both the
//      predicted data and wavefield snapshots u(t).
//   3. Back-propagate the data residual with the adjoint operator and
//      correlate with d2u/dt2 (the imaging condition) to form the
//      gradient dJ/dm.
// The gradient must concentrate around the hidden anomaly.
//
//   ./fwi_gradient [nranks]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/operator.h"
#include "grid/function.h"
#include "obs/events.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"
#include "symbolic/manip.h"

using jitfd::core::Operator;
using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
using jitfd::sparse::Injection;
using jitfd::sparse::Interpolation;
using jitfd::sparse::SparseFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

namespace {

constexpr std::int64_t kN = 81;
constexpr double kExtent = 800.0;  // Metres; h = 10 m.
constexpr int kSo = 4;
constexpr int kSteps = 600;
constexpr double kF0 = 0.018;  // 18 Hz in cycles/ms.
// Long propagations are exactly where in-situ health checks earn their
// keep: a NaN born at step 50 surfaces at the next check, not as a
// garbage gradient 550 steps later.
constexpr std::int64_t kHealthEvery = 100;

// Acoustic forward/adjoint skeleton sharing one slowness model.
struct Propagator {
  Propagator(const Grid& grid, const Function& m, const std::string& name)
      : u(name, grid, kSo, /*time_order=*/2), m_(&m) {}

  ir::Eq update() const {
    const sym::Ex pde = (*m_)() * u.dt2() - u.laplace();
    return ir::Eq(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()));
  }

  TimeFunction u;
  const Function* m_;
};

void run(const Grid& grid, int rank) {
  const double h = grid.spacing(0);
  const double v0 = 1.5;  // Background velocity, m/ms.
  const double dt = 0.3 * h / (v0 * 1.8 * std::sqrt(2.0));

  // True model: background slowness with a faster circular anomaly.
  Function m_true("m_true", grid, kSo);
  m_true.init([&](std::span<const std::int64_t> gi) {
    const double x = gi[0] * h - 0.55 * kExtent;
    const double y = gi[1] * h - 0.55 * kExtent;
    const double v = (x * x + y * y < 120.0 * 120.0) ? 1.9 : v0;
    return static_cast<float>(1.0 / (v * v));
  });
  // Starting model: homogeneous background.
  Function m0("m0", grid, kSo);
  m0.init([&](std::span<const std::int64_t>) {
    return static_cast<float>(1.0 / (v0 * v0));
  });

  const SparseFunction src("src", grid, {{0.15 * kExtent, 0.5 * kExtent}});
  std::vector<std::vector<double>> rec_coords;
  for (int r = 0; r < 24; ++r) {
    rec_coords.push_back({0.9 * kExtent, (0.05 + 0.038 * r) * kExtent});
  }
  const SparseFunction receivers("rec", grid, rec_coords);
  const auto wavelet = [&](std::int64_t t) {
    return jitfd::sparse::ricker(t * dt, kF0, 1.2 / kF0);
  };

  // --- 1. Observed data in the true model -------------------------------
  std::vector<std::vector<double>> observed;
  {
    Propagator fwd(grid, m_true, "ut");
    Injection inj(fwd.u, src, wavelet, nullptr, 1);
    Interpolation rec(fwd.u, receivers, 1);
    Operator op({fwd.update()}, {}, {&inj, &rec});
    op.apply({.time_m = 1,
              .time_M = kSteps,
              .scalars = {{"dt", dt}},
              .health_interval = kHealthEvery});
    observed = rec.assemble();
  }

  // --- 2. Predicted data + forward wavefield in the smooth model ---------
  // The whole history is kept with a saved TimeFunction (Devito's
  // `save=`): u0[t] stays addressable for the imaging condition below.
  TimeFunction u0("u0", grid, kSo, /*time_order=*/2, /*padding=*/0,
                  /*save=*/kSteps + 2);
  std::vector<std::vector<double>> predicted;
  {
    const sym::Ex pde = m0() * u0.dt2() - u0.laplace();
    Injection inj(u0, src, wavelet, nullptr, 1);
    Interpolation rec(u0, receivers, 1);
    Operator op({ir::Eq(u0.forward(),
                        sym::solve(pde, sym::Ex(0), u0.forward()))},
                {}, {&inj, &rec});
    op.apply({.time_m = 1,
              .time_M = kSteps,
              .scalars = {{"dt", dt}},
              .health_interval = kHealthEvery});
    predicted = rec.assemble();
  }

  // --- 3. Adjoint propagation of the residual + imaging condition --------
  // The adjoint of the acoustic operator is the same wave equation run
  // backwards in time, driven by the data residual at the receivers.
  Function gradient("grad", grid, kSo);
  {
    Propagator adj(grid, m0, "v0");
    // The adjoint field is driven by the data residual at the receivers,
    // stepping backwards in forward time (adjoint step s images forward
    // time kSteps - s).
    Operator op({adj.update()}, {});

    for (std::int64_t s = 1; s <= kSteps; ++s) {
      const std::int64_t t_fwd = kSteps - s;  // Forward time being imaged.
      op.apply({.time_m = s,
                .time_M = s,
                .scalars = {{"dt", dt}},
                .health_interval = kHealthEvery});
      // Inject the residual of forward time t_fwd into the freshly
      // written buffer (stencil update first, then sources — the same
      // ordering the compiler gives SparseOp nodes).
      double resid_sq = 0.0;
      for (int p = 0; p < receivers.npoints(); ++p) {
        const double resid =
            predicted[static_cast<std::size_t>(t_fwd)][static_cast<std::size_t>(p)] -
            observed[static_cast<std::size_t>(t_fwd)][static_cast<std::size_t>(p)];
        resid_sq += resid * resid;
        for (const auto& nw : receivers.support(p)) {
          const float cur = adj.u.get_global_or(
              static_cast<int>((s + 1) % 3), nw.node, 0.0F);
          adj.u.set_global(static_cast<int>((s + 1) % 3), nw.node,
                           cur + static_cast<float>(resid * nw.weight));
        }
      }
      // Structured solver event: the data-residual norm driving this
      // adjoint step (the quantity an inversion loop would watch). Every
      // rank computes the same value from the assembled data; rank 0
      // reports, mirroring the health monitor's convention.
      if (rank == 0) {
        jitfd::obs::events::emit(
            "fwi.residual", jitfd::obs::events::EvCat::Solver, s,
            {{"t_fwd", static_cast<double>(t_fwd)},
             {"norm", std::sqrt(resid_sq)}});
      }

      // Imaging condition: grad += v(s) * d2u/dt2 (t_fwd), correlating
      // the adjoint field with the forward second time derivative read
      // straight out of the saved history.
      if (t_fwd >= 1 && t_fwd + 1 < u0.time_buffers()) {
        const float* up = u0.buffer(static_cast<int>(t_fwd + 1));
        const float* uc = u0.buffer(static_cast<int>(t_fwd));
        const float* um = u0.buffer(static_cast<int>(t_fwd - 1));
        const float* v = adj.u.buffer(static_cast<int>((s + 1) % 3));
        float* gr = gradient.buffer(0);
        for (std::int64_t i = 0; i < gradient.buffer_points(); ++i) {
          const double d2u = (up[i] - 2.0 * uc[i] + um[i]) / (dt * dt);
          gr[i] += static_cast<float>(v[i] * d2u);
        }
      }
    }
  }

  // --- Report ---------------------------------------------------------------
  const auto grad = gradient.gather(0);
  double misfit = 0.0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    for (std::size_t p = 0; p < observed[t].size(); ++p) {
      const double r = predicted[t][p] - observed[t][p];
      misfit += 0.5 * r * r;
    }
  }
  if (rank == 0) {
    jitfd::obs::events::emit("fwi.misfit", jitfd::obs::events::EvCat::Solver,
                             kSteps, {{"misfit", misfit}});
    std::printf("FWI gradient, one shot: %lldx%lld grid, %d steps, "
                "24 receivers\n",
                static_cast<long long>(kN), static_cast<long long>(kN),
                kSteps);
    std::printf("data misfit 0.5*||d_pred - d_obs||^2 = %.4e\n", misfit);
    // Gradient energy *density* inside the (hidden) anomaly zone vs the
    // rest of the medium, muting the source/receiver vicinities (their
    // amplitudes dominate any single-shot gradient).
    double inside = 0.0;
    double outside = 0.0;
    std::int64_t n_in = 0;
    std::int64_t n_out = 0;
    for (std::int64_t i = 0; i < kN; ++i) {
      for (std::int64_t j = 0; j < kN; ++j) {
        const double xs = i * h - 0.15 * kExtent;  // Distance to source col.
        if (xs * xs < 100.0 * 100.0 || i * h > 0.82 * kExtent) {
          continue;  // Source / receiver mute.
        }
        const double x = i * h - 0.55 * kExtent;
        const double y = j * h - 0.55 * kExtent;
        const double g2 =
            std::pow(grad[static_cast<std::size_t>(i * kN + j)], 2);
        if (x * x + y * y < 160.0 * 160.0) {
          inside += g2;
          ++n_in;
        } else {
          outside += g2;
          ++n_out;
        }
      }
    }
    const double density_ratio = (inside / std::max<double>(n_in, 1)) /
                                 std::max(outside / std::max<double>(n_out, 1),
                                          1e-30);
    std::printf("gradient energy density: anomaly zone %.3e vs elsewhere "
                "%.3e (ratio %.1f)\n",
                inside / std::max<double>(n_in, 1),
                outside / std::max<double>(n_out, 1), density_ratio);
    std::printf("%s\n", density_ratio > 1.5
                             ? "gradient focuses on the hidden anomaly: the "
                               "adjoint-state machinery works"
                             : "WARNING: gradient failed to focus");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 0;
  if (nranks > 1) {
    smpi::run(nranks, [&](smpi::Communicator& comm) {
      const Grid grid({kN, kN}, {kExtent, kExtent}, comm);
      run(grid, comm.rank());
    });
  } else {
    const Grid grid({kN, kN}, {kExtent, kExtent});
    run(grid, 0);
  }
  return 0;
}
