// trace_check: CI gate validating observability artifacts.
//
//   trace_check [trace.json] [--min-ranks N] [--min-events N]
//               [--metrics FILE] [--analysis FILE] [--autotune FILE]
//               [--events FILE] [--flight FILE] [--expect-rank N]
//               [--expect-step N]
//
// The positional file is a Chrome trace-event JSON (from
// examples/quickstart --trace=..., or any RunSummary trace handle's
// write_chrome()). --metrics validates an obs::metrics export — JSON
// (obs::metrics::to_json) or Prometheus text (to_prometheus), sniffed
// from the first non-whitespace byte. --analysis checks an
// obs::analysis_json() report, --autotune a
// core::autotune_report_json() report (rejecting reports missing the
// "why" decision string or, under the attributed objective, the
// per-trial AnalysisScore), --events an obs::events::to_json()
// export, and --flight a flight-recorder bundle; --expect-rank /
// --expect-step additionally assert the bundle's culprit rank and
// step. Exits 0 when every given file passes; prints the first
// violation and exits 1 otherwise.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json_check.h"

namespace {

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::cerr << "usage: trace_check [trace.json] [--min-ranks N] "
               "[--min-events N] [--metrics FILE] [--analysis FILE] "
               "[--autotune FILE] [--events FILE] [--flight FILE] "
               "[--expect-rank N] [--expect-step N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string metrics_path;
  std::string analysis_path;
  std::string autotune_path;
  std::string events_path;
  std::string flight_path;
  int min_ranks = 1;
  long min_events = 1;
  long expect_rank = -1;
  long expect_step = -1;
  bool have_expect_rank = false;
  bool have_expect_step = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-ranks" && i + 1 < argc) {
      min_ranks = std::atoi(argv[++i]);
    } else if (arg == "--min-events" && i + 1 < argc) {
      min_events = std::atol(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--analysis" && i + 1 < argc) {
      analysis_path = argv[++i];
    } else if (arg == "--autotune" && i + 1 < argc) {
      autotune_path = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (arg == "--flight" && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (arg == "--expect-rank" && i + 1 < argc) {
      expect_rank = std::atol(argv[++i]);
      have_expect_rank = true;
    } else if (arg == "--expect-step" && i + 1 < argc) {
      expect_step = std::atol(argv[++i]);
      have_expect_step = true;
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty() && metrics_path.empty() && analysis_path.empty() &&
      autotune_path.empty() && events_path.empty() && flight_path.empty()) {
    std::cerr << "trace_check: no input file\n";
    return 2;
  }
  if ((have_expect_rank || have_expect_step) && flight_path.empty()) {
    std::cerr << "trace_check: --expect-rank/--expect-step need --flight\n";
    return 2;
  }

  if (!path.empty()) {
    std::string json;
    if (!slurp(path, json)) {
      std::cerr << "trace_check: cannot open " << path << '\n';
      return 1;
    }
    const jitfd::obs::ChromeCheck check =
        jitfd::obs::validate_chrome_trace(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << path << ": " << check.error << '\n';
      return 1;
    }
    if (static_cast<int>(check.tids.size()) < min_ranks) {
      std::cerr << "trace_check: " << path << ": expected >= " << min_ranks
                << " rank tracks, found " << check.tids.size() << '\n';
      return 1;
    }
    if (check.events < min_events) {
      std::cerr << "trace_check: " << path << ": expected >= " << min_events
                << " events, found " << check.events << '\n';
      return 1;
    }
    std::cout << "trace_check: " << path << ": ok (" << check.events
              << " events, " << check.complete << " spans, " << check.instants
              << " instants, " << check.tids.size() << " rank tracks)\n";
  }

  if (!metrics_path.empty()) {
    std::string body;
    if (!slurp(metrics_path, body)) {
      std::cerr << "trace_check: cannot open " << metrics_path << '\n';
      return 1;
    }
    // JSON export starts with '{'; anything else is Prometheus text.
    const std::size_t first = body.find_first_not_of(" \t\r\n");
    if (first != std::string::npos && body[first] == '{') {
      const jitfd::obs::SchemaCheck check =
          jitfd::obs::validate_metrics_json(body);
      if (!check.ok) {
        std::cerr << "trace_check: " << metrics_path << ": " << check.error
                  << '\n';
        return 1;
      }
      std::cout << "trace_check: " << metrics_path << ": ok (" << check.items
                << " metrics)\n";
    } else {
      const jitfd::obs::PromCheck check =
          jitfd::obs::validate_prometheus_text(body);
      if (!check.ok) {
        std::cerr << "trace_check: " << metrics_path << ": " << check.error
                  << '\n';
        return 1;
      }
      std::cout << "trace_check: " << metrics_path << ": ok (" << check.types
                << " families, " << check.helps << " help lines, "
                << check.samples << " samples)\n";
    }
  }

  if (!analysis_path.empty()) {
    std::string json;
    if (!slurp(analysis_path, json)) {
      std::cerr << "trace_check: cannot open " << analysis_path << '\n';
      return 1;
    }
    const jitfd::obs::SchemaCheck check =
        jitfd::obs::validate_analysis_json(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << analysis_path << ": " << check.error
                << '\n';
      return 1;
    }
    std::cout << "trace_check: " << analysis_path << ": ok (" << check.items
              << " sections)\n";
  }

  if (!autotune_path.empty()) {
    std::string json;
    if (!slurp(autotune_path, json)) {
      std::cerr << "trace_check: cannot open " << autotune_path << '\n';
      return 1;
    }
    const jitfd::obs::SchemaCheck check =
        jitfd::obs::validate_autotune_json(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << autotune_path << ": " << check.error
                << '\n';
      return 1;
    }
    std::cout << "trace_check: " << autotune_path << ": ok (" << check.items
              << " trials)\n";
  }

  if (!events_path.empty()) {
    std::string json;
    if (!slurp(events_path, json)) {
      std::cerr << "trace_check: cannot open " << events_path << '\n';
      return 1;
    }
    const jitfd::obs::SchemaCheck check =
        jitfd::obs::validate_events_json(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << events_path << ": " << check.error
                << '\n';
      return 1;
    }
    std::cout << "trace_check: " << events_path << ": ok (" << check.items
              << " events)\n";
  }

  if (!flight_path.empty()) {
    std::string json;
    if (!slurp(flight_path, json)) {
      std::cerr << "trace_check: cannot open " << flight_path << '\n';
      return 1;
    }
    const jitfd::obs::FlightCheck check =
        jitfd::obs::validate_flight_json(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << flight_path << ": " << check.error
                << '\n';
      return 1;
    }
    if (have_expect_rank && check.rank != expect_rank) {
      std::cerr << "trace_check: " << flight_path << ": expected rank "
                << expect_rank << ", bundle names rank " << check.rank << '\n';
      return 1;
    }
    if (have_expect_step && check.step != expect_step) {
      std::cerr << "trace_check: " << flight_path << ": expected step "
                << expect_step << ", bundle names step " << check.step << '\n';
      return 1;
    }
    std::cout << "trace_check: " << flight_path << ": ok (reason \""
              << check.reason << "\", rank " << check.rank << ", step "
              << check.step << ", " << check.health_samples
              << " health samples)\n";
  }
  return 0;
}
