// trace_check: CI gate validating observability artifacts.
//
//   trace_check <trace.json> [--min-ranks N] [--min-events N]
//               [--metrics FILE] [--analysis FILE]
//
// The positional file is a Chrome trace-event JSON (from
// examples/quickstart --trace=..., or any RunSummary trace handle's
// write_chrome()). --metrics validates an obs::metrics::to_json()
// export and --analysis an obs::analysis_json() report against their
// schemas. Exits 0 when every given file passes; prints the first
// violation and exits 1 otherwise.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json_check.h"

namespace {

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string metrics_path;
  std::string analysis_path;
  int min_ranks = 1;
  long min_events = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-ranks" && i + 1 < argc) {
      min_ranks = std::atoi(argv[++i]);
    } else if (arg == "--min-events" && i + 1 < argc) {
      min_events = std::atol(argv[++i]);
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--analysis" && i + 1 < argc) {
      analysis_path = argv[++i];
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "usage: trace_check <trace.json> [--min-ranks N] "
                   "[--min-events N] [--metrics FILE] [--analysis FILE]\n";
      return 2;
    }
  }
  if (path.empty() && metrics_path.empty() && analysis_path.empty()) {
    std::cerr << "trace_check: no input file\n";
    return 2;
  }

  if (!path.empty()) {
    std::string json;
    if (!slurp(path, json)) {
      std::cerr << "trace_check: cannot open " << path << '\n';
      return 1;
    }
    const jitfd::obs::ChromeCheck check =
        jitfd::obs::validate_chrome_trace(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << path << ": " << check.error << '\n';
      return 1;
    }
    if (static_cast<int>(check.tids.size()) < min_ranks) {
      std::cerr << "trace_check: " << path << ": expected >= " << min_ranks
                << " rank tracks, found " << check.tids.size() << '\n';
      return 1;
    }
    if (check.events < min_events) {
      std::cerr << "trace_check: " << path << ": expected >= " << min_events
                << " events, found " << check.events << '\n';
      return 1;
    }
    std::cout << "trace_check: " << path << ": ok (" << check.events
              << " events, " << check.complete << " spans, " << check.instants
              << " instants, " << check.tids.size() << " rank tracks)\n";
  }

  if (!metrics_path.empty()) {
    std::string json;
    if (!slurp(metrics_path, json)) {
      std::cerr << "trace_check: cannot open " << metrics_path << '\n';
      return 1;
    }
    const jitfd::obs::SchemaCheck check =
        jitfd::obs::validate_metrics_json(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << metrics_path << ": " << check.error
                << '\n';
      return 1;
    }
    std::cout << "trace_check: " << metrics_path << ": ok (" << check.items
              << " metrics)\n";
  }

  if (!analysis_path.empty()) {
    std::string json;
    if (!slurp(analysis_path, json)) {
      std::cerr << "trace_check: cannot open " << analysis_path << '\n';
      return 1;
    }
    const jitfd::obs::SchemaCheck check =
        jitfd::obs::validate_analysis_json(json);
    if (!check.ok) {
      std::cerr << "trace_check: " << analysis_path << ": " << check.error
                << '\n';
      return 1;
    }
    std::cout << "trace_check: " << analysis_path << ": ok (" << check.items
              << " sections)\n";
  }
  return 0;
}
