// trace_check: CI gate validating a Chrome trace-event JSON file
// produced by the obs subsystem (examples/quickstart --trace=..., or any
// RunSummary::trace.write_chrome()).
//
//   trace_check <trace.json> [--min-ranks N] [--min-events N]
//
// Exits 0 when the file parses as JSON, satisfies the trace-event
// schema, and meets the optional rank/event floors; prints the first
// violation and exits 1 otherwise.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json_check.h"

int main(int argc, char** argv) {
  std::string path;
  int min_ranks = 1;
  long min_events = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-ranks" && i + 1 < argc) {
      min_ranks = std::atoi(argv[++i]);
    } else if (arg == "--min-events" && i + 1 < argc) {
      min_events = std::atol(argv[++i]);
    } else if (path.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "usage: trace_check <trace.json> [--min-ranks N] "
                   "[--min-events N]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "trace_check: no input file\n";
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_check: cannot open " << path << '\n';
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  const jitfd::obs::ChromeCheck check =
      jitfd::obs::validate_chrome_trace(json);
  if (!check.ok) {
    std::cerr << "trace_check: " << path << ": " << check.error << '\n';
    return 1;
  }
  if (static_cast<int>(check.tids.size()) < min_ranks) {
    std::cerr << "trace_check: " << path << ": expected >= " << min_ranks
              << " rank tracks, found " << check.tids.size() << '\n';
    return 1;
  }
  if (check.events < min_events) {
    std::cerr << "trace_check: " << path << ": expected >= " << min_events
              << " events, found " << check.events << '\n';
    return 1;
  }
  std::cout << "trace_check: " << path << ": ok (" << check.events
            << " events, " << check.complete << " spans, " << check.instants
            << " instants, " << check.tids.size() << " rank tracks)\n";
  return 0;
}
