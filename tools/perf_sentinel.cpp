// perf_sentinel: CI gate comparing a freshly measured bench report
// against a committed bench/BENCH_*.json baseline (both in the shared
// bench_util.h series_json schema).
//
//   perf_sentinel --baseline=FILE --fresh=FILE
//                 [--tolerance-pct=25] [--min-seconds=0]
//                 [--counter-tolerance-pct=0] [--no-counters]
//                 [--scale-fresh=1.0] [--drift-shift=0.0]
//
// Per-series rules live in obs/sentinel.h: medians may exceed the
// baseline by tolerance-pct plus the larger committed spread_pct;
// series faster than min-seconds skip the timing check; counters must
// match within counter-tolerance-pct (exactly, by default); perfmodel
// drift gates must stay inside the band committed in the baseline.
// --scale-fresh multiplies the fresh medians — CI uses 1.2 to prove
// the gate trips on an injected 20% slowdown. --drift-shift adds to
// the fresh drift values, the equivalent self-test for drift gates.
//
// Exit codes: 0 pass, 1 regression, 2 usage or malformed input.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/sentinel.h"

namespace {

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string arg_value(int argc, char** argv, const char* key,
                      const std::string& fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  const std::string want = std::string("--") + flag;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_path = arg_value(argc, argv, "baseline", "");
  const std::string fresh_path = arg_value(argc, argv, "fresh", "");
  if (baseline_path.empty() || fresh_path.empty()) {
    std::cerr << "usage: perf_sentinel --baseline=FILE --fresh=FILE "
                 "[--tolerance-pct=N] [--min-seconds=X] "
                 "[--counter-tolerance-pct=N] [--no-counters] "
                 "[--scale-fresh=X] [--drift-shift=X]\n";
    return 2;
  }

  jitfd::obs::SentinelOptions opts;
  opts.tolerance_pct =
      std::atof(arg_value(argc, argv, "tolerance-pct", "25").c_str());
  opts.min_seconds =
      std::atof(arg_value(argc, argv, "min-seconds", "0").c_str());
  opts.counter_tolerance_pct =
      std::atof(arg_value(argc, argv, "counter-tolerance-pct", "0").c_str());
  opts.scale_fresh =
      std::atof(arg_value(argc, argv, "scale-fresh", "1").c_str());
  opts.drift_shift =
      std::atof(arg_value(argc, argv, "drift-shift", "0").c_str());
  opts.check_counters = !has_flag(argc, argv, "no-counters");

  std::string baseline_json;
  std::string fresh_json;
  if (!slurp(baseline_path, baseline_json)) {
    std::cerr << "perf_sentinel: cannot open " << baseline_path << '\n';
    return 2;
  }
  if (!slurp(fresh_path, fresh_json)) {
    std::cerr << "perf_sentinel: cannot open " << fresh_path << '\n';
    return 2;
  }

  const jitfd::obs::SentinelResult res =
      jitfd::obs::sentinel_compare(baseline_json, fresh_json, opts);
  std::cout << "perf_sentinel: " << fresh_path << " vs baseline "
            << baseline_path << '\n'
            << res.report();
  if (!res.error.empty()) {
    return 2;
  }
  return res.ok ? 0 : 1;
}
