// Measures halo-buffer pack/unpack throughput for the two slab
// orientations of the full-mode remainder discussion (paper Section
// IV-F): faces contiguous along the innermost dimension (long rows)
// versus faces perpendicular to it (rows truncated to the halo width).
// The measured throughput ratio substantiates the remainder stride
// penalty used by the analytical model (perfmodel/scaling.cpp).
//
// The kernels under test are the production ones: a RowPlan built once
// (as register_spot does) driven through copy_rows_gather/scatter,
// including the OpenMP-chunked variant the runtime selects for large
// volumes. Per-series counters (rows, row length, plan bytes) are
// reported so regressions can be attributed to geometry vs copy speed.
//
//   ./bench_pack_unpack [--reps=N] [--out=FILE.json]
//
// Output is the shared bench_util.h series schema (sentinel-consumable);
// default FILE is BENCH_pack_unpack.json in the working directory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "grid/function.h"
#include "grid/grid.h"
#include "runtime/halo.h"

namespace {

using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::runtime::HaloExchange;
using jitfd::runtime::make_row_plan;
using jitfd::runtime::RowPlan;

constexpr std::int64_t kEdge = 128;
constexpr int kWidth = 4;

struct FaceCase {
  Grid grid;
  Function field;
  HaloExchange::Box box;
  RowPlan plan;

  explicit FaceCase(bool thin_along_inner)
      : grid({kEdge, kEdge, kEdge}, {1.0, 1.0, 1.0}), field("f", grid, 8) {
    field.fill(1.0F);
    const std::int64_t L = field.lpad();
    if (thin_along_inner) {
      box.lo = {L, L, L};
      box.hi = {L + kEdge, L + kEdge, L + kWidth};
    } else {
      box.lo = {L, L, L};
      box.hi = {L + kWidth, L + kEdge, L + kEdge};
    }
    plan = make_row_plan(field, box);
  }
};

// The optimizer must not drop the copy loops; reading one element of
// the destination through a volatile after each window is enough.
volatile float g_sink = 0.0F;

// Time `inner` copies of the face and return wall seconds. The face is
// a few MB, so a handful of back-to-back copies gives a measurable
// window without adaptive iteration machinery.
template <typename F>
double timed(int inner, F&& copy_once) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < inner; ++i) {
    copy_once();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

benchutil::MeasuredSeries run_case(const std::string& name, bool pack,
                                   bool thin_along_inner, bool parallel,
                                   int reps, int inner) {
  FaceCase c(thin_along_inner);
  std::vector<float> buffer(static_cast<std::size_t>(c.plan.total()),
                            pack ? 0.0F : 2.0F);
  const auto copy_once = [&] {
    if (pack) {
      jitfd::runtime::copy_rows_gather(c.field.buffer(0), c.plan,
                                       buffer.data(), parallel);
      g_sink = buffer[0];
    } else {
      jitfd::runtime::copy_rows_scatter(c.field.buffer(0), c.plan,
                                        buffer.data(), parallel);
      g_sink = c.field.buffer(0)[0];
    }
  };
  copy_once();  // Warm up (page faults, thread pool spin-up).

  benchutil::MeasuredSeries s;
  s.name = name;
  for (int r = 0; r < reps; ++r) {
    s.seconds.push_back(timed(inner, copy_once));
  }
  const double bytes =
      static_cast<double>(c.plan.total()) * static_cast<double>(sizeof(float));
  // Counters are machine-independent by design (the sentinel checks
  // them exactly); throughput is derived from median_seconds at read
  // time and printed below, not committed.
  s.counters["rows"] = static_cast<double>(c.plan.offsets.size());
  s.counters["row_floats"] = static_cast<double>(c.plan.row);
  s.counters["face_bytes"] = bytes;
  s.counters["copies_per_rep"] = inner;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps =
      std::atoi(benchutil::arg_value(argc, argv, "reps", "5").c_str());
  const std::string out_path =
      benchutil::arg_value(argc, argv, "out", "BENCH_pack_unpack.json");
  constexpr int kInner = 8;

  // Contiguous: thin along x, rows stay full length along z (128
  // floats). Strided: thin along z, every row is kWidth floats.
  const std::vector<benchutil::MeasuredSeries> rows = {
      run_case("pack_contiguous", true, false, false, reps, kInner),
      run_case("pack_strided", true, true, false, reps, kInner),
      run_case("unpack_contiguous", false, false, false, reps, kInner),
      run_case("unpack_strided", false, true, false, reps, kInner),
      run_case("pack_contiguous_threaded", true, false, true, reps, kInner),
      run_case("pack_strided_threaded", true, true, true, reps, kInner),
  };

  for (const benchutil::MeasuredSeries& s : rows) {
    const double med = benchutil::median_of(s.seconds);
    const double gbs =
        med > 0.0 ? s.counters.at("face_bytes") * kInner / (1e9 * med) : 0.0;
    std::printf("  %-26s %9.3f ms  %7.2f GB/s  (spread %.1f%%)\n",
                s.name.c_str(), 1e3 * med, gbs,
                benchutil::spread_pct_of(s.seconds));
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << benchutil::series_json(
      "pack_unpack",
      "128^3 face pack/unpack width 4: contiguous vs strided rows through "
      "the production RowPlan copy kernels",
      rows, {{"edge", "128"}, {"width", "4"}});
  return 0;
}
