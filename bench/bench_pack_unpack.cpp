// Measures halo-buffer pack/unpack throughput for the two slab
// orientations of the full-mode remainder discussion (paper Section
// IV-F): faces contiguous along the innermost dimension (long memcpy
// rows) versus faces perpendicular to it (rows truncated to the halo
// width). The measured throughput ratio substantiates the remainder
// stride penalty used by the analytical model (perfmodel/scaling.cpp).
#include <benchmark/benchmark.h>

#include <vector>

#include "grid/function.h"
#include "grid/grid.h"
#include "runtime/halo.h"

namespace {

using jitfd::grid::Function;
using jitfd::grid::Grid;

constexpr std::int64_t kEdge = 128;
constexpr int kWidth = 4;

// Pack the x-low face (thin along x: rows stay full length along z) or
// the z-low face (thin along z: every row is kWidth floats).
template <bool ThinAlongInner>
void pack_face(benchmark::State& state) {
  const Grid g({kEdge, kEdge, kEdge}, {1.0, 1.0, 1.0});
  Function f("f", g, 8);
  f.fill(1.0F);
  const std::int64_t L = f.lpad();

  jitfd::runtime::HaloExchange::Box box;
  if (ThinAlongInner) {
    box.lo = {L, L, L};
    box.hi = {L + kEdge, L + kEdge, L + kWidth};
  } else {
    box.lo = {L, L, L};
    box.hi = {L + kWidth, L + kEdge, L + kEdge};
  }

  std::int64_t count = 1;
  for (std::size_t d = 0; d < 3; ++d) {
    count *= box.hi[d] - box.lo[d];
  }
  std::vector<float> buffer(static_cast<std::size_t>(count));

  // Reuse the runtime's row iterator through a tiny serial-mode
  // exchanger facade: the pack path is identical to production.
  const std::vector<std::int64_t> strides{
      f.padded_shape()[1] * f.padded_shape()[2], f.padded_shape()[2], 1};
  for (auto _ : state) {
    const float* base = f.buffer(0);
    std::size_t cursor = 0;
    std::vector<std::int64_t> idx(box.lo.begin(), box.lo.end());
    const std::int64_t row = box.hi[2] - box.lo[2];
    const std::int64_t rows = count / row;
    for (std::int64_t r = 0; r < rows; ++r) {
      std::int64_t off = 0;
      for (std::size_t d = 0; d < 3; ++d) {
        off += idx[d] * strides[d];
      }
      std::memcpy(buffer.data() + cursor, base + off,
                  static_cast<std::size_t>(row) * sizeof(float));
      cursor += static_cast<std::size_t>(row);
      for (std::size_t d = 2; d-- > 0;) {
        if (++idx[d] < box.hi[d]) {
          break;
        }
        idx[d] = box.lo[d];
      }
    }
    benchmark::DoNotOptimize(buffer.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          count * static_cast<std::int64_t>(sizeof(float)));
}

void BM_PackContiguousFace(benchmark::State& state) {
  pack_face<false>(state);  // Thin along x: long rows.
}
void BM_PackStridedFace(benchmark::State& state) {
  pack_face<true>(state);  // Thin along z: 4-float rows.
}

}  // namespace

BENCHMARK(BM_PackContiguousFace);
BENCHMARK(BM_PackStridedFace);

BENCHMARK_MAIN();
