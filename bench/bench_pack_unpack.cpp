// Measures halo-buffer pack/unpack throughput for the two slab
// orientations of the full-mode remainder discussion (paper Section
// IV-F): faces contiguous along the innermost dimension (long rows)
// versus faces perpendicular to it (rows truncated to the halo width).
// The measured throughput ratio substantiates the remainder stride
// penalty used by the analytical model (perfmodel/scaling.cpp).
//
// The kernels under test are the production ones: a RowPlan built once
// (as register_spot does) driven through copy_rows_gather/scatter,
// including the OpenMP-chunked variant the runtime selects for large
// volumes. Per-iteration counters (rows, row length, plan bytes) are
// reported so regressions can be attributed to geometry vs copy speed.
#include <benchmark/benchmark.h>

#include <vector>

#include "grid/function.h"
#include "grid/grid.h"
#include "runtime/halo.h"

namespace {

using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::runtime::HaloExchange;
using jitfd::runtime::make_row_plan;
using jitfd::runtime::RowPlan;

constexpr std::int64_t kEdge = 128;
constexpr int kWidth = 4;

struct FaceCase {
  Grid grid;
  Function field;
  HaloExchange::Box box;
  RowPlan plan;

  explicit FaceCase(bool thin_along_inner)
      : grid({kEdge, kEdge, kEdge}, {1.0, 1.0, 1.0}), field("f", grid, 8) {
    field.fill(1.0F);
    const std::int64_t L = field.lpad();
    if (thin_along_inner) {
      box.lo = {L, L, L};
      box.hi = {L + kEdge, L + kEdge, L + kWidth};
    } else {
      box.lo = {L, L, L};
      box.hi = {L + kWidth, L + kEdge, L + kEdge};
    }
    plan = make_row_plan(field, box);
  }
};

void report(benchmark::State& state, const RowPlan& plan) {
  const std::int64_t bytes =
      plan.total() * static_cast<std::int64_t>(sizeof(float));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bytes);
  state.counters["rows"] = static_cast<double>(plan.offsets.size());
  state.counters["row_floats"] = static_cast<double>(plan.row);
  state.counters["face_bytes"] = static_cast<double>(bytes);
}

void run_pack(benchmark::State& state, bool thin_along_inner, bool parallel) {
  FaceCase c(thin_along_inner);
  std::vector<float> buffer(static_cast<std::size_t>(c.plan.total()));
  for (auto _ : state) {
    jitfd::runtime::copy_rows_gather(c.field.buffer(0), c.plan, buffer.data(),
                                     parallel);
    benchmark::DoNotOptimize(buffer.data());
    benchmark::ClobberMemory();
  }
  report(state, c.plan);
}

void run_unpack(benchmark::State& state, bool thin_along_inner,
                bool parallel) {
  FaceCase c(thin_along_inner);
  std::vector<float> buffer(static_cast<std::size_t>(c.plan.total()), 2.0F);
  for (auto _ : state) {
    jitfd::runtime::copy_rows_scatter(c.field.buffer(0), c.plan,
                                      buffer.data(), parallel);
    benchmark::DoNotOptimize(c.field.buffer(0));
    benchmark::ClobberMemory();
  }
  report(state, c.plan);
}

// Thin along x: rows stay full length along z (128 floats).
void BM_PackContiguousFace(benchmark::State& state) {
  run_pack(state, false, false);
}
// Thin along z: every row is kWidth floats.
void BM_PackStridedFace(benchmark::State& state) {
  run_pack(state, true, false);
}
void BM_UnpackContiguousFace(benchmark::State& state) {
  run_unpack(state, false, false);
}
void BM_UnpackStridedFace(benchmark::State& state) {
  run_unpack(state, true, false);
}
void BM_PackContiguousFaceThreaded(benchmark::State& state) {
  run_pack(state, false, true);
}
void BM_PackStridedFaceThreaded(benchmark::State& state) {
  run_pack(state, true, true);
}

}  // namespace

BENCHMARK(BM_PackContiguousFace);
BENCHMARK(BM_PackStridedFace);
BENCHMARK(BM_UnpackContiguousFace);
BENCHMARK(BM_UnpackStridedFace);
BENCHMARK(BM_PackContiguousFaceThreaded);
BENCHMARK(BM_PackStridedFaceThreaded);

BENCHMARK_MAIN();
