// Regenerates the paper's weak-scaling evaluation: Figure 12 (SDO 8) and
// Figures 21-24 (SDO 4/8/12/16): runtime of the 512 ms simulated window
// with a constant 256^3 points per unit, doubling the domain with the
// unit count. The paper's headline observations are checked in
// tests/test_perfmodel.cpp: near-constant runtime and a GPU advantage at
// every node count.
//
// Usage: bench_weak_scaling [--so=8] [--kernel=...]
#include "bench_util.h"
#include "ir/lower.h"

namespace {

using namespace jitfd::perf;  // NOLINT: benchmark driver.
namespace ir = jitfd::ir;

void run_weak(const KernelSpec& spec, int so) {
  std::printf("%s so-%02d weak scaling, 256^3 per unit, %d steps "
              "(runtime, seconds)\n",
              spec.name.c_str(), so, spec.timesteps);
  std::printf("  %-22s", "units:");
  for (const int u : kUnitColumns) {
    std::printf(" %8d", u);
  }
  std::printf("\n");
  for (const Target target : {Target::Cpu, Target::Gpu}) {
    const MachineSpec mach =
        target == Target::Cpu ? archer2_node() : tursa_a100();
    const ScalingModel model(mach, spec, target);
    std::printf("  %-22s", target == Target::Cpu ? "CPU basic" : "GPU basic");
    double first = 0.0;
    double last = 0.0;
    for (const int u : kUnitColumns) {
      const auto pt = model.weak(u, so, ir::MpiMode::Basic);
      if (u == 1) {
        first = pt.runtime_seconds;
      }
      last = pt.runtime_seconds;
      std::printf(" %8.3f", pt.runtime_seconds);
    }
    std::printf("   (x%.2f from 1 to 128 units)\n", last / first);
  }
  // CPU mode comparison at weak scale (full is best when it wins on one
  // node, paper Section IV-E).
  for (const ir::MpiMode mode : {ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    const ScalingModel model(archer2_node(), spec, Target::Cpu);
    std::printf("  %-22s", (std::string("CPU ") + ir::to_string(mode)).c_str());
    for (const int u : kUnitColumns) {
      std::printf(" %8.3f", model.weak(u, so, mode).runtime_seconds);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel = benchutil::arg_value(argc, argv, "kernel", "all");
  const std::string so_s = benchutil::arg_value(argc, argv, "so", "all");
  std::printf("=== Weak scaling (paper Section IV-E; Figures 12, 21-24) "
              "===\n\n");
  for (const KernelSpec& spec : all_kernel_specs()) {
    if (kernel != "all" && kernel != spec.name) {
      continue;
    }
    for (const int so : {4, 8, 12, 16}) {
      if (so_s != "all" && std::stoi(so_s) != so) {
        continue;
      }
      run_weak(spec, so);
    }
  }
  return 0;
}
