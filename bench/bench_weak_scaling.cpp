// Regenerates the paper's weak-scaling evaluation: Figure 12 (SDO 8) and
// Figures 21-24 (SDO 4/8/12/16): runtime of the 512 ms simulated window
// with a constant 256^3 points per unit, doubling the domain with the
// unit count. The paper's headline observations are checked in
// tests/test_perfmodel.cpp: near-constant runtime and a GPU advantage at
// every node count.
//
// Usage: bench_weak_scaling [--so=8] [--kernel=...] [--out=FILE]
//
// --out=FILE additionally writes the selected tables through the shared
// bench_util.h series schema (one series per kernel/so/target/pattern;
// modeled runtime per unit column and the 1-to-128 growth ratio as
// counters) so the perf sentinel can gate the model outputs like the
// measured benches. The counters are deterministic model evaluations,
// so the committed baseline holds them exactly.
#include <fstream>

#include "bench_util.h"
#include "ir/lower.h"

namespace {

using namespace jitfd::perf;  // NOLINT: benchmark driver.
namespace ir = jitfd::ir;

void push_weak_series(std::vector<benchutil::MeasuredSeries>* out_rows,
                      const KernelSpec& spec, int so, const char* target,
                      ir::MpiMode mode, const ScalingModel& model) {
  if (out_rows == nullptr) {
    return;
  }
  benchutil::MeasuredSeries series;
  series.name = spec.name + "/so" + std::to_string(so) + "/" + target + "/" +
                ir::to_string(mode);
  double first = 0.0;
  double last = 0.0;
  for (const int u : kUnitColumns) {
    const double rt = model.weak(u, so, mode).runtime_seconds;
    if (u == kUnitColumns.front()) {
      first = rt;
    }
    last = rt;
    series.counters["runtime_u" + std::to_string(u)] = rt;
  }
  if (first > 0.0) {
    series.counters["growth_ratio"] = last / first;
  }
  series.seconds.push_back(last);
  out_rows->push_back(std::move(series));
}

void run_weak(const KernelSpec& spec, int so,
              std::vector<benchutil::MeasuredSeries>* out_rows) {
  std::printf("%s so-%02d weak scaling, 256^3 per unit, %d steps "
              "(runtime, seconds)\n",
              spec.name.c_str(), so, spec.timesteps);
  std::printf("  %-22s", "units:");
  for (const int u : kUnitColumns) {
    std::printf(" %8d", u);
  }
  std::printf("\n");
  for (const Target target : {Target::Cpu, Target::Gpu}) {
    const MachineSpec mach =
        target == Target::Cpu ? archer2_node() : tursa_a100();
    const ScalingModel model(mach, spec, target);
    std::printf("  %-22s", target == Target::Cpu ? "CPU basic" : "GPU basic");
    double first = 0.0;
    double last = 0.0;
    for (const int u : kUnitColumns) {
      const auto pt = model.weak(u, so, ir::MpiMode::Basic);
      if (u == 1) {
        first = pt.runtime_seconds;
      }
      last = pt.runtime_seconds;
      std::printf(" %8.3f", pt.runtime_seconds);
    }
    std::printf("   (x%.2f from 1 to 128 units)\n", last / first);
    push_weak_series(out_rows, spec, so,
                     target == Target::Cpu ? "cpu" : "gpu",
                     ir::MpiMode::Basic, model);
  }
  // CPU mode comparison at weak scale (full is best when it wins on one
  // node, paper Section IV-E).
  for (const ir::MpiMode mode : {ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    const ScalingModel model(archer2_node(), spec, Target::Cpu);
    std::printf("  %-22s", (std::string("CPU ") + ir::to_string(mode)).c_str());
    for (const int u : kUnitColumns) {
      std::printf(" %8.3f", model.weak(u, so, mode).runtime_seconds);
    }
    std::printf("\n");
    push_weak_series(out_rows, spec, so, "cpu", mode, model);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel = benchutil::arg_value(argc, argv, "kernel", "all");
  const std::string so_s = benchutil::arg_value(argc, argv, "so", "all");
  const std::string out = benchutil::arg_value(argc, argv, "out", "");
  std::printf("=== Weak scaling (paper Section IV-E; Figures 12, 21-24) "
              "===\n\n");
  std::vector<benchutil::MeasuredSeries> rows;
  for (const KernelSpec& spec : all_kernel_specs()) {
    if (kernel != "all" && kernel != spec.name) {
      continue;
    }
    for (const int so : {4, 8, 12, 16}) {
      if (so_s != "all" && std::stoi(so_s) != so) {
        continue;
      }
      run_weak(spec, so, out.empty() ? nullptr : &rows);
    }
  }
  if (!out.empty()) {
    const std::string json = benchutil::series_json(
        "weak_scaling",
        "Analytical weak-scaling model: runtime of the fixed simulated "
        "window per unit count (constant 256^3 points per unit) and the "
        "1-to-128 growth ratio, per kernel/order/target/pattern. Counters "
        "are deterministic model evaluations; median_seconds is the "
        "modeled 128-unit runtime (machine-independent, gate with "
        "counters only).",
        rows, {{"kernel", kernel}, {"so", so_s}});
    std::ofstream f(out);
    f << json;
  }
  return 0;
}
