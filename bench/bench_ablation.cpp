// Measured ablations of the design choices DESIGN.md calls out, on
// JIT-compiled generated code (single rank, laptop scale):
//   * flop-reducing arithmetic (factorization + invariants + CSE) on/off
//   * cache blocking on/off
// and, through the interpreter on thread-backed ranks:
//   * halo-spot optimization (drop/merge/hoist) on/off.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "core/operator.h"
#include "models/acoustic.h"
#include "models/tti.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

constexpr std::int64_t kEdge = 96;

bool have_cc() {
  static const bool ok = std::system("cc --version > /dev/null 2>&1") == 0;
  return ok;
}

template <typename Model>
void jit_kernel(benchmark::State& state, bool flop_reduce,
                std::int64_t tile) {
  if (!have_cc()) {
    state.SkipWithError("no C compiler");
    return;
  }
  const Grid g({kEdge, kEdge}, {1.0, 1.0});
  Model model(g, 8);
  model.wavefield().fill_global_box(
      0, std::vector<std::int64_t>{kEdge / 4, kEdge / 4},
      std::vector<std::int64_t>{kEdge / 2, kEdge / 2}, 1e-3F);
  ir::CompileOptions opts;
  opts.flop_reduce = flop_reduce;
  if (tile > 0) {
    opts.tile = {tile, 0};
  }
  auto op = model.make_operator(opts);
  op->set_default_backend(Operator::Backend::Jit);
  const double dt = model.critical_dt();
  std::int64_t time = 0;
  // JIT outside the timed loop.
  op->apply({.time_m = time, .time_M = time, .scalars = model.scalars(dt)});
  ++time;
  for (auto _ : state) {
    op->apply({.time_m = time, .time_M = time + 4,
               .scalars = model.scalars(dt)});
    time += 5;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5 *
                          kEdge * kEdge);
}

void BM_AcousticFlopReduceOn(benchmark::State& s) {
  jit_kernel<jitfd::models::AcousticModel>(s, true, 0);
}
void BM_AcousticFlopReduceOff(benchmark::State& s) {
  jit_kernel<jitfd::models::AcousticModel>(s, false, 0);
}
void BM_TtiFlopReduceOn(benchmark::State& s) {
  jit_kernel<jitfd::models::TtiModel>(s, true, 0);
}
void BM_TtiFlopReduceOff(benchmark::State& s) {
  jit_kernel<jitfd::models::TtiModel>(s, false, 0);
}
void BM_AcousticBlocked(benchmark::State& s) {
  jit_kernel<jitfd::models::AcousticModel>(s, true, 16);
}

// Halo-spot optimization ablation: a two-cluster operator where the
// second cluster re-reads the same field. With halo_opt the second
// exchange is dropped; without it every cluster exchanges.
void halo_opt_ablation(benchmark::State& state, bool halo_opt) {
  std::uint64_t messages = 0;
  std::int64_t steps = 0;
  for (auto _ : state) {
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({64, 64}, {1.0, 1.0}, comm);
      TimeFunction u("u", g, 4, 1);
      TimeFunction a("a", g, 4, 1);
      TimeFunction b("b", g, 4, 1);
      const ir::Eq eq1(a.forward(), u.laplace());
      const ir::Eq eq2(b.forward(),
                       u.laplace() + sym::diff(a.forward(), 0, 1, 4));
      ir::CompileOptions opts;
      opts.mode = ir::MpiMode::Basic;
      opts.halo_opt = halo_opt;
      Operator op({eq1, eq2}, opts);
      const auto run = op.apply(
          {.time_m = 0, .time_M = 9, .scalars = {{"dt", 1e-4}}});
      if (comm.rank() == 0) {
        messages += run.halo.messages;
      }
    });
    steps += 10;
  }
  state.counters["msgs/step(rank0)"] =
      static_cast<double>(messages) / static_cast<double>(steps);
}

void BM_HaloOptOn(benchmark::State& s) { halo_opt_ablation(s, true); }
void BM_HaloOptOff(benchmark::State& s) { halo_opt_ablation(s, false); }

}  // namespace

BENCHMARK(BM_AcousticFlopReduceOn);
BENCHMARK(BM_AcousticFlopReduceOff);
BENCHMARK(BM_TtiFlopReduceOn);
BENCHMARK(BM_TtiFlopReduceOff);
BENCHMARK(BM_AcousticBlocked);
BENCHMARK(BM_HaloOptOn);
BENCHMARK(BM_HaloOptOff);

BENCHMARK_MAIN();
