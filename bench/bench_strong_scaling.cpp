// Regenerates the paper's strong-scaling evaluation:
//   Figures 8-11 and Tables IV/VIII/XII/XVI (SDO 8, CPU + GPU),
//   Figures 13-16 and Tables III-XVIII (CPU, SDO 4/8/12/16),
//   Figures 17-20 and Tables XIX-XXXIV (GPU, SDO sweep, basic mode).
//
// Model throughput (GPts/s) is printed next to the paper's published
// values where the table is legible in the source. The paper's GPU runs
// support only the basic pattern (Table I), so GPU rows are basic-only.
//
// Usage:
//   bench_strong_scaling [--kernel=acoustic|elastic|tti|viscoelastic]
//                        [--target=cpu|gpu] [--so=8] [--topology=x,y,z]
//                        [--out=FILE]
//
// --out=FILE additionally writes the selected tables through the shared
// bench_util.h series schema (one series per kernel/target/so/pattern;
// GPts/s per unit column and the 128-unit efficiency as counters) so
// the perf sentinel can gate the model outputs like the measured
// benches. The counters are deterministic model evaluations, so the
// committed baseline holds them exactly.
#include <cmath>
#include <fstream>

#include "bench_util.h"
#include "ir/lower.h"

namespace {

using namespace jitfd::perf;  // NOLINT: benchmark driver.
using benchutil::arg_value;
namespace ir = jitfd::ir;

void run_table(const KernelSpec& spec, Target target, int so,
               const std::vector<int>& topology,
               std::vector<benchutil::MeasuredSeries>* out_rows) {
  const MachineSpec mach = target == Target::Cpu ? archer2_node()
                                                 : tursa_a100();
  ScalingModel model(mach, spec, target);
  if (!topology.empty()) {
    model.set_topology(topology);
  }
  std::printf("%s so-%02d strong scaling, %s, domain %lld^3 (GPts/s)\n",
              spec.name.c_str(), so, benchutil::target_name(target),
              static_cast<long long>(spec.strong_domain.at(target)));
  std::printf("  %-10s       ", "units:");
  for (const int u : kUnitColumns) {
    std::printf(" %8d", u);
  }
  std::printf("\n");

  const std::vector<ir::MpiMode> modes =
      target == Target::Cpu
          ? std::vector<ir::MpiMode>{ir::MpiMode::Basic, ir::MpiMode::Diagonal,
                                     ir::MpiMode::Full}
          : std::vector<ir::MpiMode>{ir::MpiMode::Basic};
  for (const ir::MpiMode mode : modes) {
    std::vector<double> row;
    for (const int u : kUnitColumns) {
      row.push_back(model.strong(u, so, mode).gpts);
    }
    benchutil::print_row_pair(ir::to_string(mode), row,
                              paper_strong(spec.name, target, so, mode));
    const auto last = model.strong(kUnitColumns.back(), so, mode);
    std::printf("  %-10s eff@128 = %.0f%%  (comp %.2f ms, net %.2f ms, "
                "pack %.2f ms/step)\n",
                "", 100.0 * last.efficiency, last.t_comp * 1e3,
                last.t_net * 1e3, last.t_pack * 1e3);
    if (out_rows != nullptr) {
      benchutil::MeasuredSeries series;
      series.name = spec.name + "/" +
                    (target == Target::Cpu ? "cpu" : "gpu") + "/so" +
                    std::to_string(so) + "/" + ir::to_string(mode);
      series.seconds.push_back(last.step_seconds);
      for (std::size_t i = 0; i < kUnitColumns.size(); ++i) {
        series.counters["gpts_u" + std::to_string(kUnitColumns[i])] = row[i];
      }
      series.counters["eff128_pct"] = 100.0 * last.efficiency;
      out_rows->push_back(std::move(series));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kernel = arg_value(argc, argv, "kernel", "all");
  const std::string target_s = arg_value(argc, argv, "target", "all");
  const std::string so_s = arg_value(argc, argv, "so", "all");
  const std::string topo_s = arg_value(argc, argv, "topology", "");
  const std::string out = arg_value(argc, argv, "out", "");

  std::vector<int> topology;
  if (!topo_s.empty()) {
    std::size_t pos = 0;
    while (pos < topo_s.size()) {
      topology.push_back(std::stoi(topo_s.substr(pos)));
      pos = topo_s.find(',', pos);
      if (pos == std::string::npos) {
        break;
      }
      ++pos;
    }
  }

  std::printf("=== Strong scaling (paper Section IV-D; Figures 8-11, "
              "13-20; Tables III-XXXIV) ===\n\n");
  std::vector<benchutil::MeasuredSeries> rows;
  for (const KernelSpec& spec : all_kernel_specs()) {
    if (kernel != "all" && kernel != spec.name) {
      continue;
    }
    for (const Target target : {Target::Cpu, Target::Gpu}) {
      if (target_s == "cpu" && target != Target::Cpu) {
        continue;
      }
      if (target_s == "gpu" && target != Target::Gpu) {
        continue;
      }
      for (const int so : {4, 8, 12, 16}) {
        if (so_s != "all" && std::stoi(so_s) != so) {
          continue;
        }
        run_table(spec, target, so, topology, out.empty() ? nullptr : &rows);
      }
    }
  }
  if (!out.empty()) {
    const std::string json = benchutil::series_json(
        "strong_scaling",
        "Analytical strong-scaling model: GPts/s per unit count and "
        "128-unit parallel efficiency per kernel/target/order/pattern. "
        "Counters are deterministic model evaluations; median_seconds is "
        "the modeled 128-unit step time (machine-independent, gate with "
        "counters only).",
        rows, {{"kernel", kernel}, {"target", target_s}, {"so", so_s}});
    std::ofstream f(out);
    f << json;
  }
  return 0;
}
