// Measures the compilation pipeline itself (the paper's Figure 1 stages):
// symbolic lowering with flop reduction and halo analysis (Operator
// construction), C emission, and — when a system compiler is available —
// the external JIT build. Devito-style DSLs pay these costs once per
// Operator; they should stay interactive even for the TTI kernel at high
// space orders.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "codegen/jit.h"
#include "models/acoustic.h"
#include "models/tti.h"

namespace {

using jitfd::grid::Grid;

template <typename Model>
void lowering(benchmark::State& state) {
  const int so = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Grid g({16, 16, 16}, {1.0, 1.0, 1.0});
    Model model(g, so);
    auto op = model.make_operator({});
    benchmark::DoNotOptimize(op->iet().get());
  }
}

template <typename Model>
void emission(benchmark::State& state) {
  const int so = static_cast<int>(state.range(0));
  const Grid g({16, 16, 16}, {1.0, 1.0, 1.0});
  Model model(g, so);
  auto op = model.make_operator({});
  std::int64_t bytes = 0;
  for (auto _ : state) {
    // ccode() caches; re-lower to measure the emitter each iteration.
    auto fresh = model.make_operator({});
    bytes += static_cast<std::int64_t>(fresh->ccode().size());
    benchmark::DoNotOptimize(fresh->ccode().data());
  }
  state.SetBytesProcessed(bytes);
}

void BM_LowerAcoustic(benchmark::State& s) {
  lowering<jitfd::models::AcousticModel>(s);
}
void BM_LowerTti(benchmark::State& s) { lowering<jitfd::models::TtiModel>(s); }
void BM_EmitAcoustic(benchmark::State& s) {
  emission<jitfd::models::AcousticModel>(s);
}
void BM_EmitTti(benchmark::State& s) { emission<jitfd::models::TtiModel>(s); }

void BM_JitCompileAcoustic(benchmark::State& state) {
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    state.SkipWithError("no C compiler");
    return;
  }
  const Grid g({16, 16, 16}, {1.0, 1.0, 1.0});
  jitfd::models::AcousticModel model(g, 8);
  auto op = model.make_operator({});
  const std::string& code = op->ccode();
  // The compile cache would serve every iteration after the first from
  // the same .so; salt the source per iteration so each one measures a
  // real external-compiler invocation.
  std::int64_t salt = 0;
  for (auto _ : state) {
    jitfd::codegen::JitKernel kernel(
        code + "\n/* bench-salt " + std::to_string(salt++) + " */\n",
        /*openmp=*/true);
    benchmark::DoNotOptimize(&kernel);
  }
  state.counters["compiles"] =
      static_cast<double>(jitfd::codegen::JitKernel::cache_misses());
}

void BM_JitCacheHitAcoustic(benchmark::State& state) {
  // The counterpart: repeat builds of an identical kernel are served
  // from the in-memory compile cache (dlopen only, no compiler).
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    state.SkipWithError("no C compiler");
    return;
  }
  const Grid g({16, 16, 16}, {1.0, 1.0, 1.0});
  jitfd::models::AcousticModel model(g, 8);
  auto op = model.make_operator({});
  const std::string& code = op->ccode();
  jitfd::codegen::JitKernel warmup(code, /*openmp=*/true);
  for (auto _ : state) {
    jitfd::codegen::JitKernel kernel(code, /*openmp=*/true);
    if (!kernel.cache_hit()) {
      state.SkipWithError("expected a cache hit");
      return;
    }
    benchmark::DoNotOptimize(&kernel);
  }
}

}  // namespace

BENCHMARK(BM_LowerAcoustic)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_LowerTti)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_EmitAcoustic)->Arg(8);
BENCHMARK(BM_EmitTti)->Arg(8);
BENCHMARK(BM_JitCompileAcoustic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JitCacheHitAcoustic)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
