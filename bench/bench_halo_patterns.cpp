// Measured halo-exchange step time of the three DMP patterns on the
// thread-backed substrate (2-8 ranks). Complements the analytical model:
// these are *real* exchanges through the runtime used by every test, at
// laptop scale, demonstrating the relative per-exchange costs (buffer
// allocation in basic, message count in diagonal, start/wait split in
// full) and the halo-spot optimization ablation.
#include <benchmark/benchmark.h>

#include "core/operator.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

constexpr std::int64_t kEdge = 96;
constexpr int kStepsPerIteration = 20;

void run_steps(benchmark::State& state, ir::MpiMode mode, int nranks,
               int space_order, bool halo_opt) {
  std::int64_t steps_done = 0;
  for (auto _ : state) {
    smpi::run(nranks, [&](smpi::Communicator& comm) {
      const Grid g({kEdge, kEdge}, {1.0, 1.0}, comm);
      TimeFunction u("u", g, space_order, 1);
      u.fill_global_box(0, std::vector<std::int64_t>{kEdge / 4, kEdge / 4},
                        std::vector<std::int64_t>{kEdge / 2, kEdge / 2},
                        1.0F);
      ir::CompileOptions opts;
      opts.mode = mode;
      opts.halo_opt = halo_opt;
      Operator op({ir::Eq(u.forward(),
                          sym::solve(u.dt() - u.laplace(), sym::Ex(0),
                                     u.forward()))},
                  opts);
      const auto run = op.apply({.time_m = 0,
                                 .time_M = kStepsPerIteration - 1,
                                 .scalars = {{"dt", 1e-4}}});
      if (comm.rank() == 0) {
        const auto& stats = run.halo;
        state.counters["msgs/step"] = static_cast<double>(stats.messages) /
                                      kStepsPerIteration;
        state.counters["bytes/step"] =
            static_cast<double>(stats.bytes_sent) / kStepsPerIteration;
        // Transport-level evidence for the zero-copy hot path: mean
        // payload copies per message (1.0 = every delivery rendezvous)
        // and the unexpected-payload pool's allocation behaviour
        // (misses stop after warmup, hits take over).
        state.counters["copies/msg"] = stats.copies_per_message;
        state.counters["pool_hits"] = static_cast<double>(stats.pool_hits);
        state.counters["pool_misses"] =
            static_cast<double>(stats.pool_misses);
      }
    });
    steps_done += kStepsPerIteration;
  }
  state.SetItemsProcessed(steps_done * kEdge * kEdge);
  state.counters["steps"] = static_cast<double>(steps_done);
}

void BM_HaloBasic(benchmark::State& state) {
  run_steps(state, ir::MpiMode::Basic, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), true);
}
void BM_HaloDiagonal(benchmark::State& state) {
  run_steps(state, ir::MpiMode::Diagonal, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), true);
}
void BM_HaloFull(benchmark::State& state) {
  run_steps(state, ir::MpiMode::Full, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), true);
}
void BM_HaloBasicNoOpt(benchmark::State& state) {
  // Ablation: halo-spot drop/merge disabled — redundant exchanges remain.
  run_steps(state, ir::MpiMode::Basic, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), false);
}

}  // namespace

BENCHMARK(BM_HaloBasic)->Args({4, 4})->Args({4, 8})->Args({8, 8});
BENCHMARK(BM_HaloDiagonal)->Args({4, 4})->Args({4, 8})->Args({8, 8});
BENCHMARK(BM_HaloFull)->Args({4, 4})->Args({4, 8})->Args({8, 8});
BENCHMARK(BM_HaloBasicNoOpt)->Args({4, 8});

BENCHMARK_MAIN();
