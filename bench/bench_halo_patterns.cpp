// Measured halo-exchange step time of the three DMP patterns on the
// thread-backed substrate (2-8 ranks). Complements the analytical model:
// these are *real* exchanges through the runtime used by every test, at
// laptop scale, demonstrating the relative per-exchange costs (buffer
// allocation in basic, message count in diagonal, start/wait split in
// full) and the halo-spot optimization ablation.
//
// A second entry point, --comm-avoid, measures communication-avoiding
// deep-halo stepping: pattern x exchange-depth wall times on a small,
// latency-bound grid, emitted through the shared JSON reporter
// (bench/BENCH_comm_avoid.json is a committed run of it).
//
// A third entry point, --drift, runs one traced diffusion step loop per
// pattern, lifts the trace into the perfmodel's measured-vs-predicted
// comparison (perfmodel/compare.h), and emits the drift gates (overlap
// efficiency, comm fraction, redundant share) through the series
// schema's "drift" object — bench/BENCH_drift.json is a committed run,
// and the perf sentinel holds fresh runs inside the committed bands.
// --band=X sets the allowed |measured - predicted| drift recorded in
// the emitted report (only the BASELINE's band is contractual);
// --band-overlap/--band-comm/--band-redundant override it per metric.
//
// --transport=threads|process_shm selects the rank realization for every
// benchmark in this binary (default: threads, or JITFD_TRANSPORT).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>

#include "bench_util.h"
#include "core/operator.h"
#include "grid/function.h"
#include "obs/analysis.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "perfmodel/compare.h"
#include "perfmodel/kernel_spec.h"
#include "perfmodel/machine.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

constexpr std::int64_t kEdge = 96;
constexpr int kStepsPerIteration = 20;

// Set once in main() from --transport=; unset follows JITFD_TRANSPORT.
std::optional<smpi::TransportKind> g_transport;

void run_steps(benchmark::State& state, ir::MpiMode mode, int nranks,
               int space_order, bool halo_opt) {
  std::int64_t steps_done = 0;
  for (auto _ : state) {
    smpi::launch({.nranks = nranks, .transport = g_transport},
                 [&](smpi::Communicator& comm) {
      const Grid g({kEdge, kEdge}, {1.0, 1.0}, comm);
      TimeFunction u("u", g, space_order, 1);
      u.fill_global_box(0, std::vector<std::int64_t>{kEdge / 4, kEdge / 4},
                        std::vector<std::int64_t>{kEdge / 2, kEdge / 2},
                        1.0F);
      ir::CompileOptions opts;
      opts.mode = mode;
      opts.halo_opt = halo_opt;
      Operator op({ir::Eq(u.forward(),
                          sym::solve(u.dt() - u.laplace(), sym::Ex(0),
                                     u.forward()))},
                  opts);
      const auto run = op.apply({.time_m = 0,
                                 .time_M = kStepsPerIteration - 1,
                                 .scalars = {{"dt", 1e-4}}});
      if (comm.rank() == 0) {
        const auto& stats = run.halo;
        state.counters["msgs/step"] = static_cast<double>(stats.messages) /
                                      kStepsPerIteration;
        state.counters["bytes/step"] =
            static_cast<double>(stats.bytes_sent) / kStepsPerIteration;
        // Transport-level evidence for the zero-copy hot path: mean
        // payload copies per message (1.0 = every delivery rendezvous)
        // and the unexpected-payload pool's allocation behaviour
        // (misses stop after warmup, hits take over).
        state.counters["copies/msg"] = stats.copies_per_message;
        state.counters["pool_hits"] = static_cast<double>(stats.pool_hits);
        state.counters["pool_misses"] =
            static_cast<double>(stats.pool_misses);
      }
                 });
    steps_done += kStepsPerIteration;
  }
  state.SetItemsProcessed(steps_done * kEdge * kEdge);
  state.counters["steps"] = static_cast<double>(steps_done);
}

void BM_HaloBasic(benchmark::State& state) {
  run_steps(state, ir::MpiMode::Basic, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), true);
}
void BM_HaloDiagonal(benchmark::State& state) {
  run_steps(state, ir::MpiMode::Diagonal, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), true);
}
void BM_HaloFull(benchmark::State& state) {
  run_steps(state, ir::MpiMode::Full, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), true);
}
void BM_HaloBasicNoOpt(benchmark::State& state) {
  // Ablation: halo-spot drop/merge disabled — redundant exchanges remain.
  run_steps(state, ir::MpiMode::Basic, static_cast<int>(state.range(0)),
            static_cast<int>(state.range(1)), false);
}

// --comm-avoid: wall time of pattern x exchange-depth on a small grid
// with many ranks, where per-exchange overhead (message posting, pack
// scheduling, rendezvous synchronization) is a large share of the step
// and amortizing it over k steps should pay despite the redundant
// ghost-zone compute.
int run_comm_avoid(int argc, char** argv) {
  using jitfd::core::Backend;
  namespace grid = jitfd::grid;

  const int nranks =
      std::stoi(benchutil::arg_value(argc, argv, "ranks", "8"));
  const std::int64_t edge =
      std::stoll(benchutil::arg_value(argc, argv, "edge", "64"));
  const int steps = std::stoi(benchutil::arg_value(argc, argv, "steps", "40"));
  const int reps = std::stoi(benchutil::arg_value(argc, argv, "reps", "5"));
  const int so = std::stoi(benchutil::arg_value(argc, argv, "so", "4"));
  const std::string backend_name =
      benchutil::arg_value(argc, argv, "backend", "interpret");
  const Backend backend =
      backend_name == "jit" ? Backend::Jit : Backend::Interpret;
  const std::string out = benchutil::arg_value(argc, argv, "out", "");

  std::vector<benchutil::MeasuredSeries> rows;
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    for (const int depth : {1, 2, 4}) {
      // Halo capacity is fixed at Function construction, so the depth is
      // selected process-wide before fields exist.
      grid::Function::set_default_exchange_depth(depth);
      benchutil::MeasuredSeries series;
      series.name =
          std::string(ir::to_string(mode)) + "/k" + std::to_string(depth);
      // One untimed warmup run per configuration (JIT compilation, SMPI
      // payload-pool fills), then `reps` timed repetitions.
      for (int rep = -1; rep < reps; ++rep) {
        double seconds = 0.0;
        smpi::launch({.nranks = nranks, .transport = g_transport},
                     [&](smpi::Communicator& comm) {
          const Grid g({edge, edge}, {1.0, 1.0}, comm);
          TimeFunction u("u", g, so, 1);
          u.fill_global_box(0, std::vector<std::int64_t>{edge / 4, edge / 4},
                            std::vector<std::int64_t>{edge / 2, edge / 2},
                            1.0F);
          ir::CompileOptions opts;
          opts.mode = mode;
          opts.exchange_depth = depth;
          Operator op({ir::Eq(u.forward(),
                              sym::solve(u.dt() - u.laplace(), sym::Ex(0),
                                         u.forward()))},
                      opts);
          comm.barrier();
          const auto start = std::chrono::steady_clock::now();
          const auto run = op.apply({.time_m = 0,
                                     .time_M = steps - 1,
                                     .scalars = {{"dt", 1e-4}},
                                     .backend = backend});
          comm.barrier();
          if (comm.rank() == 0) {
            seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
            series.counters["exchange_depth"] =
                static_cast<double>(run.halo.exchange_depth);
            series.counters["msgs_per_step"] =
                static_cast<double>(run.halo.messages) / steps;
            series.counters["bytes_per_step"] =
                static_cast<double>(run.halo.bytes_sent) / steps;
            series.counters["steps_covered"] =
                static_cast<double>(run.halo.steps_covered);
          }
                     });
        if (rep >= 0) {
          series.seconds.push_back(seconds);
        }
      }
      rows.push_back(std::move(series));
    }
  }
  grid::Function::set_default_exchange_depth(1);

  const std::string json = benchutil::series_json(
      "comm_avoid",
      "Communication-avoiding deep-halo stepping: wall time per pattern and "
      "exchange depth k. One exchange round per k steps; its depth grows "
      "with k and the skipped rounds are replaced by redundant ghost-zone "
      "compute, so k > 1 pays exactly when per-exchange overhead dominates.",
      rows,
      {{"geometry", std::to_string(edge) + "^2 grid, " +
                        std::to_string(nranks) + " ranks, space order " +
                        std::to_string(so)},
       {"steps_per_repetition", std::to_string(steps)},
       {"backend", backend_name}});
  std::fputs(json.c_str(), stdout);
  if (!out.empty()) {
    std::ofstream f(out);
    f << json;
  }
  return 0;
}

// --drift: model-vs-measured drift gates per pattern. Each repetition
// is a traced diffusion run; the trace is collected in the parent after
// launch() returns (so it works under both transports — the process
// transport merges child traces at that point), distilled into a
// RunProfile + cross-rank AnalysisReport, and compared against the
// ScalingModel. The |measured - predicted| drift of overlap efficiency,
// comm fraction and redundant share lands in the series' "drift"
// object; wall seconds and the structural message counters ride along.
int run_drift(int argc, char** argv) {
  namespace obs = jitfd::obs;
  namespace perf = jitfd::perf;

  const int nranks =
      std::stoi(benchutil::arg_value(argc, argv, "ranks", "4"));
  const std::int64_t edge =
      std::stoll(benchutil::arg_value(argc, argv, "edge", "64"));
  const int steps = std::stoi(benchutil::arg_value(argc, argv, "steps", "20"));
  const int reps = std::stoi(benchutil::arg_value(argc, argv, "reps", "3"));
  const int so = std::stoi(benchutil::arg_value(argc, argv, "so", "4"));
  const std::string band_s = benchutil::arg_value(argc, argv, "band", "0.25");
  const double band_overlap = std::stod(
      benchutil::arg_value(argc, argv, "band-overlap", band_s));
  const double band_comm =
      std::stod(benchutil::arg_value(argc, argv, "band-comm", band_s));
  const double band_redundant = std::stod(
      benchutil::arg_value(argc, argv, "band-redundant", band_s));
  const std::string out = benchutil::arg_value(argc, argv, "out", "");

  // Near-square 2-D process grid, chosen parent-side so the structural
  // comparison knows the topology without a communicator.
  int rows_n = static_cast<int>(std::sqrt(static_cast<double>(nranks)));
  while (rows_n > 1 && nranks % rows_n != 0) {
    --rows_n;
  }
  const std::vector<int> topology{nranks / rows_n, rows_n};

  const perf::ScalingModel model(perf::archer2_node(), perf::acoustic_spec(),
                                 perf::Target::Cpu);
  perf::DriftBands bands;
  bands.overlap_efficiency = band_overlap;
  bands.comm_fraction = band_comm;
  bands.redundant_share = band_redundant;

  std::vector<benchutil::MeasuredSeries> rows;
  std::vector<perf::Comparison> comparisons;
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    benchutil::MeasuredSeries series;
    series.name = ir::to_string(mode);
    for (int rep = -1; rep < reps; ++rep) {
      obs::reset();
      smpi::launch({.nranks = nranks, .transport = g_transport},
                   [&](smpi::Communicator& comm) {
        const Grid g({edge, edge}, {1.0, 1.0}, comm, topology);
        TimeFunction u("u", g, so, 1);
        u.fill_global_box(0, std::vector<std::int64_t>{edge / 4, edge / 4},
                          std::vector<std::int64_t>{edge / 2, edge / 2},
                          1.0F);
        ir::CompileOptions opts;
        opts.mode = mode;
        Operator op({ir::Eq(u.forward(),
                            sym::solve(u.dt() - u.laplace(), sym::Ex(0),
                                       u.forward()))},
                    opts);
        op.apply({.time_m = 0,
                  .time_M = steps - 1,
                  .scalars = {{"dt", 1e-4}},
                  .trace = true});
                   });
      const obs::TraceData data = obs::collect();
      const obs::RunProfile profile = obs::profile_from(data);
      if (rep < 0) {
        continue;  // Warmup (JIT of nothing, SMPI pools): not recorded.
      }
      series.seconds.push_back(profile.wall_s());
      if (rep + 1 == reps) {
        // Final repetition carries the comparison: structural counters
        // are identical across reps, timing uses this run's trace.
        const obs::AnalysisReport analysis = obs::analyze(data);
        const perf::MeasuredRun measured = perf::measured_from(
            profile, analysis, "diffusion", mode, so, edge * edge * steps,
            steps);
        const perf::Comparison cmp =
            perf::compare_run(measured, model, topology, {edge, edge});
        series.counters["msgs_per_step"] =
            static_cast<double>(measured.messages) / steps;
        series.counters["bytes_per_step"] = cmp.measured_bytes_per_step;
        series.counters["messages_match"] = cmp.messages_match() ? 1.0 : 0.0;
        for (const perf::DriftGate& gate : perf::drift_gates(cmp, bands)) {
          series.drift[gate.metric] = {gate.drift, gate.band};
        }
        comparisons.push_back(cmp);
      }
    }
    rows.push_back(std::move(series));
  }

  std::fputs(perf::comparison_table(comparisons).c_str(), stdout);
  const std::string json = benchutil::series_json(
      "drift",
      "Model-vs-measured drift gates per halo pattern: traced diffusion "
      "runs distilled into overlap-efficiency, comm-fraction and "
      "redundant-share drifts against the analytical model. The committed "
      "baseline's band per metric is the perfmodel contract the sentinel "
      "enforces.",
      rows,
      {{"geometry", std::to_string(edge) + "^2 grid, " +
                        std::to_string(nranks) + " ranks, space order " +
                        std::to_string(so)},
       {"steps_per_repetition", std::to_string(steps)}});
  std::fputs(json.c_str(), stdout);
  if (!out.empty()) {
    std::ofstream f(out);
    f << json;
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_HaloBasic)->Args({4, 4})->Args({4, 8})->Args({8, 8});
BENCHMARK(BM_HaloDiagonal)->Args({4, 4})->Args({4, 8})->Args({8, 8});
BENCHMARK(BM_HaloFull)->Args({4, 4})->Args({4, 8})->Args({8, 8});
BENCHMARK(BM_HaloBasicNoOpt)->Args({4, 8});

int main(int argc, char** argv) {
  // Consume --transport= before google-benchmark sees (and rejects) it.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--transport=", 12) == 0) {
      try {
        g_transport = smpi::transport_from_string(argv[i] + 12);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (benchutil::has_flag(argc, argv, "comm-avoid")) {
    return run_comm_avoid(argc, argv);
  }
  if (benchutil::has_flag(argc, argv, "drift")) {
    return run_drift(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
