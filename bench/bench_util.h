// Shared helpers for the table/figure regenerator benchmarks.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "perfmodel/paper_data.h"
#include "perfmodel/scaling.h"

namespace benchutil {

using jitfd::perf::Target;

inline const char* target_name(Target t) {
  return t == Target::Cpu ? "CPU (ARCHER2 node)" : "GPU (Tursa A100-80)";
}

/// Parse "--key=value" style arguments.
inline std::string arg_value(int argc, char** argv, const char* key,
                             const std::string& fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  const std::string want = std::string("--") + flag;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) {
      return true;
    }
  }
  return false;
}

/// Print one model row and, if available, the paper's published values.
inline void print_row_pair(const char* label,
                           const std::vector<double>& model,
                           const jitfd::perf::PaperRow& paper) {
  std::printf("  %-10s model:", label);
  for (const double v : model) {
    std::printf(" %8.1f", v);
  }
  std::printf("\n");
  if (paper.available()) {
    std::printf("  %-10s paper:", "");
    for (const double v : paper.gpts) {
      if (std::isnan(v)) {
        std::printf(" %8s", "-");
      } else {
        std::printf(" %8.1f", v);
      }
    }
    std::printf("\n");
  }
}

}  // namespace benchutil
