// Shared helpers for the table/figure regenerator benchmarks.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perfmodel/paper_data.h"
#include "perfmodel/scaling.h"

namespace benchutil {

using jitfd::perf::Target;

inline const char* target_name(Target t) {
  return t == Target::Cpu ? "CPU (ARCHER2 node)" : "GPU (Tursa A100-80)";
}

/// Parse "--key=value" style arguments.
inline std::string arg_value(int argc, char** argv, const char* key,
                             const std::string& fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool has_flag(int argc, char** argv, const char* flag) {
  const std::string want = std::string("--") + flag;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) {
      return true;
    }
  }
  return false;
}

/// Print one model row and, if available, the paper's published values.
inline void print_row_pair(const char* label,
                           const std::vector<double>& model,
                           const jitfd::perf::PaperRow& paper) {
  std::printf("  %-10s model:", label);
  for (const double v : model) {
    std::printf(" %8.1f", v);
  }
  std::printf("\n");
  if (paper.available()) {
    std::printf("  %-10s paper:", "");
    for (const double v : paper.gpts) {
      if (std::isnan(v)) {
        std::printf(" %8s", "-");
      } else {
        std::printf(" %8.1f", v);
      }
    }
    std::printf("\n");
  }
}

/// One measured configuration: N repetitions of the same run plus exact
/// counters (message counts etc.) that do not vary between repetitions.
struct MeasuredSeries {
  std::string name;              ///< e.g. "full/k4".
  std::vector<double> seconds;   ///< Wall seconds, one per repetition.
  std::map<std::string, double> counters;
  /// Perfmodel drift gates: metric -> {|measured - predicted| drift,
  /// allowed band}. The committed baseline's band is the contract the
  /// sentinel holds fresh runs to (src/obs/sentinel.h).
  std::map<std::string, std::pair<double, double>> drift;
};

inline double median_of(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Relative spread (max - min) / median, in percent. The honesty metric
/// committed next to every median: large spreads mean the machine was
/// noisy and the median is soft.
inline double spread_pct_of(const std::vector<double>& v) {
  const double med = median_of(v);
  if (v.empty() || med <= 0.0) {
    return 0.0;
  }
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return 100.0 * (*hi - *lo) / med;
}

inline void json_number(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

/// Machine-readable report for a measured benchmark: median-of-N wall
/// time + spread per series, the machine fields needed to interpret the
/// numbers, and free-form string metadata. This is the shared emitter
/// behind the committed BENCH_*.json artifacts.
inline std::string series_json(
    const std::string& benchmark, const std::string& description,
    const std::vector<MeasuredSeries>& rows,
    const std::vector<std::pair<std::string, std::string>>& meta = {}) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"benchmark\": \"" << benchmark << "\",\n";
  os << "  \"description\": \"" << description << "\",\n";
  os << "  \"machine\": {\n";
  os << "    \"threads_available\": " << std::thread::hardware_concurrency()
     << ",\n";
#if defined(__VERSION__)
  os << "    \"compiler\": \"" << __VERSION__ << "\",\n";
#endif
  os << "    \"pointer_bits\": " << 8 * sizeof(void*) << "\n";
  os << "  },\n";
  for (const auto& [key, value] : meta) {
    os << "  \"" << key << "\": \"" << value << "\",\n";
  }
  os << "  \"series\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MeasuredSeries& s = rows[i];
    os << "    {\n";
    os << "      \"name\": \"" << s.name << "\",\n";
    os << "      \"repetitions\": " << s.seconds.size() << ",\n";
    os << "      \"median_seconds\": ";
    json_number(os, median_of(s.seconds));
    os << ",\n      \"spread_pct\": ";
    json_number(os, spread_pct_of(s.seconds));
    for (const auto& [key, value] : s.counters) {
      os << ",\n      \"" << key << "\": ";
      json_number(os, value);
    }
    if (!s.drift.empty()) {
      os << ",\n      \"drift\": {";
      bool first = true;
      for (const auto& [metric, gate] : s.drift) {
        os << (first ? "" : ", ") << "\"" << metric << "\": {\"value\": ";
        json_number(os, gate.first);
        os << ", \"band\": ";
        json_number(os, gate.second);
        os << "}";
        first = false;
      }
      os << "}";
    }
    os << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace benchutil
