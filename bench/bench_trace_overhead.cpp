// Tracing-overhead proof: the acoustic propagator with tracing enabled
// must run within 2% of the same run with tracing disabled (the obs
// subsystem's headline cost claim).
//
//   ./bench_trace_overhead [--check] [--steps=N] [--out=FILE.json]
//
// --check exits nonzero when the measured overhead exceeds the 2%
// threshold (retrying a few times first — the comparison of two ~100 ms
// wall-clock runs is noisy on shared CI hosts); the JSON report goes to
// --out (default BENCH_trace.json in the working directory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/operator.h"
#include "models/acoustic.h"
#include "obs/trace.h"

using jitfd::grid::Grid;
using jitfd::models::AcousticModel;

namespace {

constexpr double kThresholdPct = 2.0;

struct Sample {
  double seconds = 0.0;
  std::uint64_t events = 0;
};

// One acoustic shot (serial, interpreter backend: the instrumented
// per-step path, deterministic and compiler-independent).
Sample shot(bool trace, int steps) {
  jitfd::obs::reset();
  const Grid grid({64, 64}, {640.0, 640.0});
  AcousticModel model(
      grid, /*so=*/4, [](std::span<const std::int64_t>) { return 1.5; },
      /*vmax=*/1.5, /*nbl=*/8);
  model.wavefield().fill_global_box(0, std::vector<std::int64_t>{30, 30},
                                    std::vector<std::int64_t>{34, 34}, 1e-3F);
  auto op = model.make_operator({});
  const double dt = model.critical_dt();

  const auto t0 = std::chrono::steady_clock::now();
  const auto run = op->apply({.time_m = 1,
                              .time_M = steps,
                              .scalars = model.scalars(dt),
                              .trace = trace});
  const auto t1 = std::chrono::steady_clock::now();

  Sample s;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  s.events = run.trace.active() ? run.trace.data().events.size() : 0;
  return s;
}

// Best-of-n for both configurations, interleaved so slow background
// noise hits them evenly.
struct Measurement {
  double disabled_s = 0.0;
  double enabled_s = 0.0;
  std::uint64_t events = 0;
  double overhead_pct() const {
    return disabled_s > 0.0 ? 100.0 * (enabled_s - disabled_s) / disabled_s
                            : 0.0;
  }
};

Measurement measure(int steps, int reps) {
  Measurement m;
  m.disabled_s = 1e30;
  m.enabled_s = 1e30;
  shot(false, steps);  // Warm up allocators and code paths.
  for (int r = 0; r < reps; ++r) {
    m.disabled_s = std::min(m.disabled_s, shot(false, steps).seconds);
    const Sample on = shot(true, steps);
    m.enabled_s = std::min(m.enabled_s, on.seconds);
    m.events = std::max(m.events, on.events);
  }
  return m;
}

void write_report(const std::string& path, const Measurement& m, int steps,
                  bool passed) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  char buf[640];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"benchmark\": \"trace_overhead\",\n"
                "  \"kernel\": \"acoustic\",\n"
                "  \"grid\": [64, 64],\n"
                "  \"space_order\": 4,\n"
                "  \"steps\": %d,\n"
                "  \"backend\": \"interpret\",\n"
                "  \"seconds_disabled\": %.6f,\n"
                "  \"seconds_enabled\": %.6f,\n"
                "  \"overhead_pct\": %.3f,\n"
                "  \"events_recorded\": %llu,\n"
                "  \"threshold_pct\": %.1f,\n"
                "  \"passed\": %s\n"
                "}\n",
                steps, m.disabled_s, m.enabled_s, m.overhead_pct(),
                static_cast<unsigned long long>(m.events), kThresholdPct,
                passed ? "true" : "false");
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  int steps = 400;
  std::string out_path = "BENCH_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--steps=", 8) == 0) {
      steps = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  Measurement m = measure(steps, /*reps=*/3);
  // A noisy host can make two identical runs differ by more than the
  // threshold; retry before declaring the instrumentation guilty.
  int retries = check ? 3 : 0;
  while (m.overhead_pct() > kThresholdPct && retries-- > 0) {
    std::printf("overhead %.2f%% > %.1f%%, retrying (%d left)...\n",
                m.overhead_pct(), kThresholdPct, retries + 1);
    const Measurement again = measure(steps, /*reps=*/5);
    m.disabled_s = std::min(m.disabled_s, again.disabled_s);
    m.enabled_s = std::min(m.enabled_s, again.enabled_s);
    m.events = std::max(m.events, again.events);
  }

  const bool passed = m.overhead_pct() <= kThresholdPct;
  std::printf("acoustic 64x64, %d steps (interpreter):\n", steps);
  std::printf("  tracing disabled: %8.3f ms\n", 1e3 * m.disabled_s);
  std::printf("  tracing enabled:  %8.3f ms  (%llu events)\n",
              1e3 * m.enabled_s, static_cast<unsigned long long>(m.events));
  std::printf("  overhead: %+.2f%%  (threshold %.1f%%) -> %s\n",
              m.overhead_pct(), kThresholdPct, passed ? "PASS" : "FAIL");
  write_report(out_path, m, steps, passed);

  return check && !passed ? 1 : 0;
}
