// Tracing-overhead proof: the acoustic propagator with tracing enabled
// must run within 2% of the same run with tracing disabled (the obs
// subsystem's headline cost claim). The cross-rank analysis runs
// offline on the collected snapshot — after the timed window — and its
// cost is reported separately to prove it stays off the hot path.
//
//   ./bench_trace_overhead [--check] [--steps=N] [--out=FILE.json]
//
// --check exits nonzero when the measured overhead exceeds the 2%
// threshold (retrying a few times first — the comparison of two ~100 ms
// wall-clock runs is noisy on shared CI hosts); the JSON report
// (shared bench_util.h series schema, sentinel-consumable) goes to
// --out (default BENCH_trace.json in the working directory).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/operator.h"
#include "models/acoustic.h"
#include "obs/analysis.h"
#include "obs/trace.h"

using jitfd::grid::Grid;
using jitfd::models::AcousticModel;

namespace {

constexpr double kThresholdPct = 2.0;

struct Sample {
  double seconds = 0.0;
  std::uint64_t events = 0;
  double analysis_seconds = 0.0;
};

// One acoustic shot (serial, interpreter backend: the instrumented
// per-step path, deterministic and compiler-independent). For traced
// shots the cross-rank analysis runs after the timed window.
Sample shot(bool trace, int steps) {
  jitfd::obs::reset();
  const Grid grid({64, 64}, {640.0, 640.0});
  AcousticModel model(
      grid, /*so=*/4, [](std::span<const std::int64_t>) { return 1.5; },
      /*vmax=*/1.5, /*nbl=*/8);
  model.wavefield().fill_global_box(0, std::vector<std::int64_t>{30, 30},
                                    std::vector<std::int64_t>{34, 34}, 1e-3F);
  auto op = model.make_operator({});
  const double dt = model.critical_dt();

  const auto t0 = std::chrono::steady_clock::now();
  const auto run = op->apply({.time_m = 1,
                              .time_M = steps,
                              .scalars = model.scalars(dt),
                              .trace = trace});
  const auto t1 = std::chrono::steady_clock::now();

  Sample s;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (run.trace.active()) {
    const jitfd::obs::TraceData data = run.trace.data();
    s.events = data.events.size();
    // Offline analysis: outside the timed window by construction.
    const auto a0 = std::chrono::steady_clock::now();
    const jitfd::obs::AnalysisReport rep = jitfd::obs::analyze(data);
    const auto a1 = std::chrono::steady_clock::now();
    s.analysis_seconds = std::chrono::duration<double>(a1 - a0).count();
    if (rep.steps == 0) {
      std::fprintf(stderr, "analysis saw no steps in a traced run\n");
    }
  }
  return s;
}

// Best-of-n for both configurations, interleaved so slow background
// noise hits them evenly. All repetitions are kept for the series
// report; the pass/fail verdict uses best-of (least noise-sensitive).
struct Measurement {
  double disabled_s = 1e30;
  double enabled_s = 1e30;
  std::uint64_t events = 0;
  double analysis_s = 0.0;
  std::vector<double> disabled_samples;
  std::vector<double> enabled_samples;
  double overhead_pct() const {
    return disabled_s > 0.0 && disabled_s < 1e29
               ? 100.0 * (enabled_s - disabled_s) / disabled_s
               : 0.0;
  }
};

void measure(Measurement& m, int steps, int reps) {
  shot(false, steps);  // Warm up allocators and code paths.
  for (int r = 0; r < reps; ++r) {
    const Sample off = shot(false, steps);
    m.disabled_s = std::min(m.disabled_s, off.seconds);
    m.disabled_samples.push_back(off.seconds);
    const Sample on = shot(true, steps);
    m.enabled_s = std::min(m.enabled_s, on.seconds);
    m.enabled_samples.push_back(on.seconds);
    m.events = std::max(m.events, on.events);
    m.analysis_s = std::max(m.analysis_s, on.analysis_seconds);
  }
}

void write_report(const std::string& path, const Measurement& m, int steps,
                  bool passed) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  // Counters are machine-independent by design (the sentinel checks
  // them exactly); volatile measured values (overhead %, analysis
  // time, verdict) go into the free-form meta strings instead.
  benchutil::MeasuredSeries off;
  off.name = "tracing_off";
  off.seconds = m.disabled_samples;
  off.counters["steps"] = steps;
  benchutil::MeasuredSeries on;
  on.name = "tracing_on";
  on.seconds = m.enabled_samples;
  on.counters["steps"] = steps;
  on.counters["events_recorded"] = static_cast<double>(m.events);
  on.counters["threshold_pct"] = kThresholdPct;
  char overhead[32];
  std::snprintf(overhead, sizeof(overhead), "%.3f", m.overhead_pct());
  char analysis_ms[32];
  std::snprintf(analysis_ms, sizeof(analysis_ms), "%.3f",
                1e3 * m.analysis_s);
  out << benchutil::series_json(
      "trace_overhead",
      "acoustic 64x64 so=4 interpreter: traced vs untraced wall time; "
      "cross-rank analysis runs offline after the timed window",
      {off, on},
      {{"kernel", "acoustic"},
       {"backend", "interpret"},
       {"overhead_pct", overhead},
       {"analysis_ms", analysis_ms},
       {"passed", passed ? "true" : "false"}});
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  int steps = 400;
  std::string out_path = "BENCH_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strncmp(argv[i], "--steps=", 8) == 0) {
      steps = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  Measurement m;
  measure(m, steps, /*reps=*/3);
  // A noisy host can make two identical runs differ by more than the
  // threshold; retry before declaring the instrumentation guilty.
  int retries = check ? 3 : 0;
  while (m.overhead_pct() > kThresholdPct && retries-- > 0) {
    std::printf("overhead %.2f%% > %.1f%%, retrying (%d left)...\n",
                m.overhead_pct(), kThresholdPct, retries + 1);
    measure(m, steps, /*reps=*/5);
  }

  const bool passed = m.overhead_pct() <= kThresholdPct;
  std::printf("acoustic 64x64, %d steps (interpreter):\n", steps);
  std::printf("  tracing disabled: %8.3f ms\n", 1e3 * m.disabled_s);
  std::printf("  tracing enabled:  %8.3f ms  (%llu events)\n",
              1e3 * m.enabled_s, static_cast<unsigned long long>(m.events));
  std::printf("  offline analysis: %8.3f ms (post-run, untimed window)\n",
              1e3 * m.analysis_s);
  std::printf("  overhead: %+.2f%%  (threshold %.1f%%) -> %s\n",
              m.overhead_pct(), kThresholdPct, passed ? "PASS" : "FAIL");
  write_report(out_path, m, steps, passed);

  return check && !passed ? 1 : 0;
}
