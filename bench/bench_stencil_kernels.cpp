// Measured single-rank update throughput of the four wave-propagator
// kernels through both execution backends: the reference interpreter and
// JIT-compiled generated C (when a system C compiler is present). The
// JIT/interpreter ratio shows what the code-generation path buys; the
// per-kernel ordering mirrors the flops-per-point ordering of Figure 7.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "models/acoustic.h"
#include "models/elastic.h"
#include "models/tti.h"
#include "models/viscoelastic.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
namespace ir = jitfd::ir;

constexpr std::int64_t kEdge = 48;

bool have_cc() {
  static const bool ok = std::system("cc --version > /dev/null 2>&1") == 0;
  return ok;
}

template <typename Model>
void run_kernel(benchmark::State& state, Operator::Backend backend, int so) {
  if (backend == Operator::Backend::Jit && !have_cc()) {
    state.SkipWithError("no C compiler for the JIT backend");
    return;
  }
  const Grid g({kEdge, kEdge}, {1.0, 1.0});
  Model model(g, so);
  model.wavefield().fill_global_box(
      0, std::vector<std::int64_t>{kEdge / 4, kEdge / 4},
      std::vector<std::int64_t>{kEdge / 2, kEdge / 2}, 1.0F);
  auto op = model.make_operator({});
  op->set_default_backend(backend);
  const double dt = model.critical_dt();
  std::int64_t time = 0;
  // Warm up (forces the JIT compile outside the timed loop).
  op->apply({.time_m = time, .time_M = time, .scalars = model.scalars(dt)});
  ++time;
  for (auto _ : state) {
    op->apply({.time_m = time, .time_M = time + 4,
               .scalars = model.scalars(dt)});
    time += 5;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5 *
                          kEdge * kEdge);
  state.counters["GPts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 5 * kEdge * kEdge / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_AcousticInterp(benchmark::State& s) {
  run_kernel<jitfd::models::AcousticModel>(s, Operator::Backend::Interpret,
                                           static_cast<int>(s.range(0)));
}
void BM_AcousticJit(benchmark::State& s) {
  run_kernel<jitfd::models::AcousticModel>(s, Operator::Backend::Jit,
                                           static_cast<int>(s.range(0)));
}
void BM_TtiInterp(benchmark::State& s) {
  run_kernel<jitfd::models::TtiModel>(s, Operator::Backend::Interpret,
                                      static_cast<int>(s.range(0)));
}
void BM_TtiJit(benchmark::State& s) {
  run_kernel<jitfd::models::TtiModel>(s, Operator::Backend::Jit,
                                      static_cast<int>(s.range(0)));
}
void BM_ElasticInterp(benchmark::State& s) {
  run_kernel<jitfd::models::ElasticModel>(s, Operator::Backend::Interpret,
                                          static_cast<int>(s.range(0)));
}
void BM_ElasticJit(benchmark::State& s) {
  run_kernel<jitfd::models::ElasticModel>(s, Operator::Backend::Jit,
                                          static_cast<int>(s.range(0)));
}
void BM_ViscoelasticInterp(benchmark::State& s) {
  run_kernel<jitfd::models::ViscoelasticModel>(
      s, Operator::Backend::Interpret, static_cast<int>(s.range(0)));
}
void BM_ViscoelasticJit(benchmark::State& s) {
  run_kernel<jitfd::models::ViscoelasticModel>(s, Operator::Backend::Jit,
                                               static_cast<int>(s.range(0)));
}

}  // namespace

BENCHMARK(BM_AcousticInterp)->Arg(4)->Arg(8);
BENCHMARK(BM_AcousticJit)->Arg(4)->Arg(8);
BENCHMARK(BM_TtiInterp)->Arg(4);
BENCHMARK(BM_TtiJit)->Arg(4);
BENCHMARK(BM_ElasticInterp)->Arg(4);
BENCHMARK(BM_ElasticJit)->Arg(4);
BENCHMARK(BM_ViscoelasticInterp)->Arg(4);
BENCHMARK(BM_ViscoelasticJit)->Arg(4);

BENCHMARK_MAIN();
