// Measured single-rank update throughput of the four wave-propagator
// kernels through both execution backends: the reference interpreter and
// JIT-compiled generated C (when a system C compiler is present). The
// JIT/interpreter ratio shows what the code-generation path buys; the
// per-kernel ordering mirrors the flops-per-point ordering of Figure 7.
//
//   ./bench_stencil_kernels [--reps=N] [--out=FILE.json]
//
// Output is the shared bench_util.h series schema (sentinel-consumable);
// default FILE is BENCH_stencil.json in the working directory. JIT
// series are skipped (not emitted) when no C compiler is available, so
// the sentinel baseline for CI should be generated on a host with one.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "models/acoustic.h"
#include "models/elastic.h"
#include "models/tti.h"
#include "models/viscoelastic.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;

constexpr std::int64_t kEdge = 48;
// A multiple of the health-probe interval below, so every rep of the
// health series amortizes exactly one check (5 steps would put a check
// in only 5 of 8 reps and make the median rep meaningless).
constexpr int kStepsPerRep = 8;

bool have_cc() {
  static const bool ok = std::system("cc --version > /dev/null 2>&1") == 0;
  return ok;
}

template <typename Model>
benchutil::MeasuredSeries run_kernel(const std::string& name,
                                     Operator::Backend backend, int so,
                                     int reps,
                                     std::int64_t health_interval = 0,
                                     std::vector<std::int64_t> tile = {}) {
  const Grid g({kEdge, kEdge}, {1.0, 1.0});
  Model model(g, so);
  model.wavefield().fill_global_box(
      0, std::vector<std::int64_t>{kEdge / 4, kEdge / 4},
      std::vector<std::int64_t>{kEdge / 2, kEdge / 2}, 1.0F);
  jitfd::ir::CompileOptions opts;
  opts.tile = std::move(tile);
  auto op = model.make_operator(opts);
  op->set_default_backend(backend);
  const double dt = model.critical_dt();
  std::int64_t time = 0;
  // Warm up (forces the JIT compile outside the timed loop).
  op->apply({.time_m = time, .time_M = time, .scalars = model.scalars(dt),
             .health_interval = health_interval});
  ++time;

  benchutil::MeasuredSeries s;
  s.name = name;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    op->apply({.time_m = time, .time_M = time + kStepsPerRep - 1,
               .scalars = model.scalars(dt),
               .health_interval = health_interval});
    const auto t1 = std::chrono::steady_clock::now();
    time += kStepsPerRep;
    s.seconds.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  // Counters are machine-independent by design (the sentinel checks
  // them exactly); throughput is derived from median_seconds at read
  // time and printed below, not committed.
  s.counters["so"] = so;
  s.counters["steps_per_rep"] = kStepsPerRep;
  s.counters["points_per_rep"] =
      static_cast<double>(kStepsPerRep) * kEdge * kEdge;
  if (health_interval > 0) {
    s.counters["health_interval"] = static_cast<double>(health_interval);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps =
      std::atoi(benchutil::arg_value(argc, argv, "reps", "5").c_str());
  const std::string out_path =
      benchutil::arg_value(argc, argv, "out", "BENCH_stencil.json");
  const bool jit = have_cc();
  if (!jit) {
    std::printf("no C compiler found: JIT series skipped\n");
  }

  using jitfd::models::AcousticModel;
  using jitfd::models::ElasticModel;
  using jitfd::models::TtiModel;
  using jitfd::models::ViscoelasticModel;
  constexpr auto kInterp = Operator::Backend::Interpret;
  constexpr auto kJit = Operator::Backend::Jit;

  std::vector<benchutil::MeasuredSeries> rows;
  rows.push_back(
      run_kernel<AcousticModel>("acoustic_interp/so4", kInterp, 4, reps));
  rows.push_back(
      run_kernel<AcousticModel>("acoustic_interp/so8", kInterp, 8, reps));
  rows.push_back(run_kernel<TtiModel>("tti_interp/so4", kInterp, 4, reps));
  rows.push_back(
      run_kernel<ElasticModel>("elastic_interp/so4", kInterp, 4, reps));
  rows.push_back(run_kernel<ViscoelasticModel>("viscoelastic_interp/so4",
                                               kInterp, 4, reps));
  // Health-check overhead probe: the same acoustic kernel with the
  // generated NaN/Inf/min/max/L2 reductions firing every 8 steps.
  rows.push_back(run_kernel<AcousticModel>("acoustic_interp/so4/health8",
                                           kInterp, 4, reps, 8));
  if (jit) {
    rows.push_back(
        run_kernel<AcousticModel>("acoustic_jit/so4", kJit, 4, reps));
    rows.push_back(
        run_kernel<AcousticModel>("acoustic_jit/so8", kJit, 8, reps));
    rows.push_back(run_kernel<TtiModel>("tti_jit/so4", kJit, 4, reps));
    rows.push_back(
        run_kernel<ElasticModel>("elastic_jit/so4", kJit, 4, reps));
    rows.push_back(run_kernel<ViscoelasticModel>("viscoelastic_jit/so4",
                                                 kJit, 4, reps));
    rows.push_back(run_kernel<AcousticModel>("acoustic_jit/so4/health8",
                                             kJit, 4, reps, 8));
    // The flagship propagator is the representative overhead series:
    // the sweep touches each checked field once, so its relative cost
    // shrinks with the kernel's arithmetic density. The 48^2 acoustic
    // pair above is the adversarial case (an L1-resident minimal
    // stencil where one field sweep is comparable to one step).
    rows.push_back(
        run_kernel<TtiModel>("tti_jit/so4/health8", kJit, 4, reps, 8));
    // Tiled/untiled pairs: the untiled series above are the baselines.
    // At 48^2 the working set is cache-resident, so this measures the
    // tiling machinery's overhead (window ternaries, tile-loop startup),
    // which the sentinel keeps honest; the cache win itself needs grids
    // past LLC size (DESIGN.md, tiling section).
    rows.push_back(run_kernel<AcousticModel>("acoustic_jit/so4/tile16", kJit,
                                             4, reps, 0, {16, 0}));
    rows.push_back(
        run_kernel<TtiModel>("tti_jit/so4/tile16", kJit, 4, reps, 0, {16, 0}));
  }

  for (const benchutil::MeasuredSeries& s : rows) {
    const double med = benchutil::median_of(s.seconds);
    const double gpts =
        med > 0.0 ? s.counters.at("points_per_rep") / med / 1e9 : 0.0;
    std::printf("  %-26s %9.3f ms  %8.4f GPts/s  (spread %.1f%%)\n",
                s.name.c_str(), 1e3 * med, gpts,
                benchutil::spread_pct_of(s.seconds));
  }

  // Health overhead relative to the matching plain series.
  auto median_by = [&rows](const std::string& name) -> double {
    for (const benchutil::MeasuredSeries& s : rows) {
      if (s.name == name) {
        return benchutil::median_of(s.seconds);
      }
    }
    return 0.0;
  };
  for (const auto& [plain, checked] :
       std::vector<std::pair<std::string, std::string>>{
           {"acoustic_interp/so4", "acoustic_interp/so4/health8"},
           {"acoustic_jit/so4", "acoustic_jit/so4/health8"},
           {"tti_jit/so4", "tti_jit/so4/health8"}}) {
    const double base = median_by(plain);
    const double with = median_by(checked);
    if (base > 0.0 && with > 0.0) {
      std::printf("  health_interval=8 overhead on %s: %+.2f%%\n",
                  plain.c_str(), 100.0 * (with - base) / base);
    }
  }

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << benchutil::series_json(
      "stencil_kernels",
      "48^2 single-rank propagator throughput: four kernels through the "
      "interpreter and (when a C compiler exists) the JIT backend",
      rows, {{"edge", "48"}, {"jit_available", jit ? "true" : "false"}});
  return 0;
}
