// Regenerates the paper's Figure 7: single-node roofline placement of the
// four flop-optimized kernels on CPU and GPU. Operational intensity is
// computed at compile time from the lowered AST (the paper's own
// methodology, Section IV-C); attained GFLOP/s comes from the calibrated
// node model. Both rooflines (DRAM bandwidth slope, FP32 peak ceiling)
// are printed so the "mainly DRAM BW bound" claim can be checked per
// kernel.
#include "bench_util.h"

namespace {

using namespace jitfd::perf;  // NOLINT: benchmark driver.

void run(Target target) {
  const MachineSpec mach = target == Target::Cpu ? archer2_node()
                                                 : tursa_a100();
  std::printf("%s: DRAM roof %.0f GB/s, FP32 peak %.0f GFLOP/s\n",
              benchutil::target_name(target), mach.mem_bw_gbs,
              mach.peak_gflops);
  std::printf("  %-14s %8s %12s %10s %14s %s\n", "kernel", "OI", "GFLOP/s",
              "GPts/s", "DRAM-roof@OI", "bound");
  for (const KernelSpec& spec : all_kernel_specs()) {
    const RooflinePoint rp = roofline_point(mach, spec, target, 8);
    const double dram_roof = mach.mem_bw_gbs * rp.oi;
    const bool mem_bound = rp.gflops < 0.999 * mach.peak_gflops &&
                           dram_roof < mach.peak_gflops;
    std::printf("  %-14s %8.2f %12.1f %10.2f %14.1f %s\n", spec.name.c_str(),
                rp.oi, rp.gflops, rp.gpts, dram_roof,
                mem_bound ? "DRAM" : "compute");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Single-node roofline (paper Figure 7, SDO 8) ===\n\n");
  run(Target::Cpu);
  run(Target::Gpu);
  std::printf("Operational intensity is derived from the compiler's lowered\n"
              "AST (flops and field traffic per updated point); see\n"
              "src/models/common.h (analyze) and perfmodel/kernel_spec.h.\n");
  return 0;
}
