// End-to-end Operator tests: correctness of the executed lowered IET on
// serial and distributed grids, equivalence of all three MPI patterns
// with the serial reference, JIT-vs-interpreter agreement, and the
// ablation options (flop reduction, blocking).
#include <gtest/gtest.h>

#include <cmath>

#include "core/operator.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

// The paper's Listing 1 diffusion setup on an n x n grid.
struct Diffusion {
  explicit Diffusion(const Grid& g, int so = 2)
      : u("u", g, so, 1),
        eq(u.forward(),
           sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward())) {}
  TimeFunction u;
  ir::Eq eq;
};

// Run `steps` diffusion steps; initial condition: ones in the global box
// [1, n-1)^2 (Listing 1 line 14).
std::vector<float> run_diffusion(const Grid& g, ir::CompileOptions opts,
                                 int steps, double dt,
                                 Operator::Backend backend =
                                     Operator::Backend::Interpret,
                                 jitfd::runtime::HaloStats* stats = nullptr) {
  Diffusion d(g);
  const std::vector<std::int64_t> lo{1, 1};
  const std::vector<std::int64_t> hi{g.shape()[0] - 1, g.shape()[1] - 1};
  d.u.fill_global_box(0, lo, hi, 1.0F);
  Operator op({d.eq}, opts);
  op.set_default_backend(backend);
  const auto run = op.apply(
      {.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
  if (stats != nullptr) {
    *stats = run.halo;
  }
  return d.u.gather(steps % d.u.time_buffers());
}

TEST(Operator, SerialDiffusionMatchesHandComputedStep) {
  const Grid g({4, 4}, {2.0, 2.0});
  const double h = g.spacing(0);
  const double dt = 0.25 * h * h / 0.5;  // Listing 1's sigma*dx*dy/nu.
  const auto result = run_diffusion(g, {}, /*steps=*/1, dt);
  ASSERT_EQ(result.size(), 16U);

  // Reference: u' = u + dt * laplacian(u), ghost values 0.
  auto u0 = [](std::int64_t i, std::int64_t j) {
    return (i >= 1 && i < 3 && j >= 1 && j < 3) ? 1.0 : 0.0;
  };
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      const double lap =
          (u0(i + 1, j) + u0(i - 1, j) - 2 * u0(i, j)) / (h * h) +
          (u0(i, j + 1) + u0(i, j - 1) - 2 * u0(i, j)) / (h * h);
      const double expected = u0(i, j) + dt * lap;
      EXPECT_NEAR(result[static_cast<std::size_t>(4 * i + j)], expected, 1e-5)
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Operator, UnboundScalarThrows) {
  const Grid g({4, 4}, {1.0, 1.0});
  Diffusion d(g);
  Operator op({d.eq});
  EXPECT_THROW(op.apply({.time_m = 0, .time_M = 0}),
               std::invalid_argument);  // dt missing.
}

TEST(Operator, PointsUpdatedTracksGptsNumerator) {
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  Operator op({d.eq});
  const auto run = op.apply(
      {.time_m = 0, .time_M = 4, .scalars = {{"dt", 1e-3}}});
  EXPECT_EQ(run.points_updated, 64 * 5);
  EXPECT_EQ(run.steps, 5);
  EXPECT_GT(run.gpts_per_s, 0.0);
}

class ModeEquivalence
    : public ::testing::TestWithParam<std::tuple<ir::MpiMode, int>> {};

TEST_P(ModeEquivalence, DistributedDiffusionMatchesSerial) {
  const auto [mode, nranks] = GetParam();
  const std::int64_t n = 12;
  const int steps = 5;
  const double dt = 1e-3;

  const Grid serial({n, n}, {1.0, 1.0});
  const auto expected = run_diffusion(serial, {}, steps, dt);

  smpi::run(nranks, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    ir::CompileOptions opts;
    opts.mode = mode;
    const auto got = run_diffusion(g, opts, steps, dt);
    if (comm.rank() == 0) {
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6) << "at " << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeEquivalence,
    ::testing::Values(std::tuple{ir::MpiMode::Basic, 4},
                      std::tuple{ir::MpiMode::Diagonal, 4},
                      std::tuple{ir::MpiMode::Full, 4},
                      std::tuple{ir::MpiMode::Basic, 3},
                      std::tuple{ir::MpiMode::Diagonal, 6},
                      std::tuple{ir::MpiMode::Full, 2}));

TEST(Operator, HigherOrderStencilAcrossRanks) {
  // SDO 8 reads 4 halo points: exercises multi-point-wide exchanges.
  const std::int64_t n = 24;
  const int steps = 3;
  const double dt = 1e-4;

  const Grid serial({n, n}, {1.0, 1.0});
  std::vector<float> expected;
  {
    TimeFunction u("u", serial, 8, 1);
    const std::vector<std::int64_t> lo{n / 2 - 1, n / 2 - 1};
    const std::vector<std::int64_t> hi{n / 2 + 1, n / 2 + 1};
    u.fill_global_box(0, lo, hi, 1.0F);
    Operator op({ir::Eq(
        u.forward(),
        sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()))});
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    expected = u.gather(steps % 2);
  }

  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      TimeFunction u("u", g, 8, 1);
      const std::vector<std::int64_t> lo{n / 2 - 1, n / 2 - 1};
      const std::vector<std::int64_t> hi{n / 2 + 1, n / 2 + 1};
      u.fill_global_box(0, lo, hi, 1.0F);
      ir::CompileOptions opts;
      opts.mode = mode;
      Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                                  sym::Ex(0), u.forward()))},
                  opts);
      op.apply({.time_m = 0, .time_M = steps - 1,
                .scalars = {{"dt", dt}}});
      const auto got = u.gather(steps % 2);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_NEAR(got[i], expected[i], 1e-6)
              << "mode " << ir::to_string(mode) << " at " << i;
        }
      }
    });
  }
}

TEST(Operator, SecondOrderInTimeBufferCycling) {
  // A wave-like second-order update over several steps checks the
  // 3-buffer modulo indexing against a direct reference recurrence.
  const std::int64_t n = 8;
  const Grid g({n, n}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 2);
  const std::vector<std::int64_t> pt{4, 4};
  u.set_global(1, pt, 1.0F);  // u at t=0 lives in buffer (0+0)%3... seed t0=1.

  // u[t+1] = 2u[t] - u[t-1] + c * lap(u[t]).
  const double c = 1e-3;
  Operator op({ir::Eq(u.forward(),
                      2 * u.now() - u.backward() + sym::Ex(c) * u.laplace())});
  op.apply({.time_m = 1, .time_M = 6});

  // Reference recurrence on dense arrays.
  const double h = g.spacing(0);
  std::vector<std::vector<double>> prev(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> now(n, std::vector<double>(n, 0.0));
  now[4][4] = 1.0;
  for (int step = 0; step < 6; ++step) {
    std::vector<std::vector<double>> next(n, std::vector<double>(n, 0.0));
    auto at = [&](const std::vector<std::vector<double>>& a, std::int64_t i,
                  std::int64_t j) {
      return (i >= 0 && i < n && j >= 0 && j < n)
                 ? a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                 : 0.0;
    };
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const double lap = (at(now, i + 1, j) + at(now, i - 1, j) +
                            at(now, i, j + 1) + at(now, i, j - 1) -
                            4 * at(now, i, j)) /
                           (h * h);
        next[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            2 * at(now, i, j) - at(prev, i, j) + c * lap;
      }
    }
    prev = now;
    now = next;
  }

  // After steps 1..6, u[t+1] last written at time=6 -> buffer (6+1)%3 = 1.
  const auto result = u.gather(1);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(result[static_cast<std::size_t>(n * i + j)],
                  now[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  1e-5);
    }
  }
}

TEST(Operator, FlopReduceAndBlockingPreserveResults) {
  const std::int64_t n = 16;
  const double dt = 1e-3;
  const Grid g({n, n}, {1.0, 1.0});
  const auto reference = run_diffusion(g, {}, 4, dt);

  for (const bool reduce : {false, true}) {
    for (const std::int64_t tile : {std::int64_t{0}, std::int64_t{5}}) {
      const Grid g2({n, n}, {1.0, 1.0});
      ir::CompileOptions opts;
      opts.flop_reduce = reduce;
      if (tile > 0) {
        opts.tile = {tile, 0};
      }
      const auto got = run_diffusion(g2, opts, 4, dt);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], reference[i], 1e-5)
            << "reduce=" << reduce << " tile=" << tile << " at " << i;
      }
    }
  }
}

TEST(Operator, CoupledFirstOrderSystemDistributed) {
  // A staggered-style first-order system (velocity/stress toy model):
  // checks multi-cluster lowering + exchange of freshly written fields.
  const std::int64_t n = 16;
  const int steps = 4;
  const double dt = 1e-2;

  auto run = [&](const Grid& g, ir::CompileOptions opts) {
    TimeFunction v("v", g, 4, 1);
    TimeFunction s("s", g, 4, 1);
    const std::vector<std::int64_t> lo{n / 2, n / 2};
    const std::vector<std::int64_t> hi{n / 2 + 1, n / 2 + 1};
    s.fill_global_box(0, lo, hi, 1.0F);
    const sym::Ex dts = jitfd::grid::dt_symbol();
    const ir::Eq eq1(v.forward(), v.now() + dts * s.dx_stag(0, -1));
    const ir::Eq eq2(
        s.forward(),
        s.now() + dts * sym::diff_stag(v.forward(), 0, 4, +1));
    Operator op({eq1, eq2}, opts);
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    return std::pair{v.gather(steps % 2), s.gather(steps % 2)};
  };

  const Grid serial({n, n}, {1.0, 1.0});
  const auto [v_ref, s_ref] = run(serial, {});
  ASSERT_GT(s_ref.size(), 0U);
  // The pulse must have propagated (stress changed away from centre).
  double spread = 0.0;
  for (const float x : s_ref) {
    spread += std::abs(x);
  }
  EXPECT_GT(spread, 1.0);

  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      ir::CompileOptions opts;
      opts.mode = mode;
      const auto [v_got, s_got] = run(g, opts);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < s_got.size(); ++i) {
          ASSERT_NEAR(s_got[i], s_ref[i], 1e-5)
              << "mode " << ir::to_string(mode);
          ASSERT_NEAR(v_got[i], v_ref[i], 1e-5);
        }
      }
    });
  }
}

TEST(Operator, AutoUpgradesModeOnDistributedGrids) {
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    Diffusion d(g);
    Operator op({d.eq});  // mode None requested.
    EXPECT_EQ(op.options().mode, ir::MpiMode::Basic);
  });
}

TEST(Operator, DescribeReportsCompilationSummary) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    Diffusion d(g);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Diagonal;
    Operator op({d.eq}, opts);
    const std::string s = op.describe();
    if (comm.rank() == 0) {
      EXPECT_NE(s.find("1 equation(s)"), std::string::npos) << s;
      EXPECT_NE(s.find("4 ranks"), std::string::npos);
      EXPECT_NE(s.find("topology (2,2)"), std::string::npos);
      EXPECT_NE(s.find("mode diagonal"), std::string::npos);
      EXPECT_NE(s.find("u[x2]"), std::string::npos);
      EXPECT_NE(s.find("clusters: 1"), std::string::npos);
      EXPECT_NE(s.find("halo spots: 1"), std::string::npos);
      EXPECT_NE(s.find("flops/point:"), std::string::npos);
    }
  });
}

TEST(Operator, ExchangeDepthClampsOnSerialGrids) {
  // Communication-avoiding stepping is pointless without exchanges: a
  // serial grid clamps any requested depth back to 1, with the reason
  // surfaced through the lowering info and describe().
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  ir::CompileOptions opts;
  opts.exchange_depth = 4;
  Operator op({d.eq}, opts);
  EXPECT_EQ(op.info().exchange_depth, 1);
  EXPECT_NE(op.info().exchange_depth_clamp_reason.find("serial"),
            std::string::npos)
      << op.info().exchange_depth_clamp_reason;
  EXPECT_NE(op.describe().find("clamped"), std::string::npos)
      << op.describe();
  // The clamped operator still runs as a plain depth-1 schedule.
  const auto run = op.apply({.time_m = 0, .time_M = 4,
                             .scalars = {{"dt", 1e-3}}});
  EXPECT_EQ(run.points_updated, 64 * 5);
  EXPECT_EQ(run.halo.messages, 0U);  // Serial grid: no exchanges.
}

TEST(Operator, HaloStatsMatchTableOneMessageCounts) {
  // 2D, 2x2 ranks: every rank has 2 face neighbours (basic) and 3 star
  // neighbours (diagonal) -> totals 8 vs 12 messages per exchange.
  const std::int64_t n = 8;
  for (const auto& [mode, expected_total] :
       std::initializer_list<std::pair<ir::MpiMode, std::uint64_t>>{
           {ir::MpiMode::Basic, 8},
           {ir::MpiMode::Diagonal, 12},
           {ir::MpiMode::Full, 12}}) {
    const ir::MpiMode m = mode;
    const std::uint64_t expect = expected_total;
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      ir::CompileOptions opts;
      opts.mode = m;
      jitfd::runtime::HaloStats stats;
      run_diffusion(g, opts, /*steps=*/1, 1e-3,
                    Operator::Backend::Interpret, &stats);
      std::vector<std::int64_t> total{
          static_cast<std::int64_t>(stats.messages)};
      comm.allreduce(std::span<std::int64_t>(total), smpi::ReduceOp::Sum);
      if (comm.rank() == 0) {
        EXPECT_EQ(static_cast<std::uint64_t>(total[0]), expect)
            << "mode " << ir::to_string(m);
      }
      if (m == ir::MpiMode::Full) {
        EXPECT_GT(stats.progress_calls, 0U);
        EXPECT_EQ(stats.starts, 1U);
      }
    });
  }
}

TEST(Operator, DeepHaloAmortizesTableOneMessagesOverStrips) {
  // The communication-avoiding acceptance check: with exchange_depth k,
  // the p2p messages for k timesteps equal the Table I count for ONE
  // timestep of the depth-1 schedule — the deep exchange changes widths,
  // not the message structure.
  const std::int64_t n = 8;
  const int depth = 2;
  for (const auto& [mode, expected_per_strip] :
       std::initializer_list<std::pair<ir::MpiMode, std::uint64_t>>{
           {ir::MpiMode::Basic, 8},
           {ir::MpiMode::Diagonal, 12},
           {ir::MpiMode::Full, 12}}) {
    const ir::MpiMode m = mode;
    const std::uint64_t expect = expected_per_strip;
    jitfd::grid::Function::set_default_exchange_depth(depth);
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      ir::CompileOptions opts;
      opts.mode = m;
      opts.exchange_depth = depth;
      jitfd::runtime::HaloStats stats;
      // Two strips: 2 * depth steps -> exactly 2x the one-step Table I
      // count, where the depth-1 schedule would send 4x.
      run_diffusion(g, opts, /*steps=*/2 * depth, 1e-3,
                    Operator::Backend::Interpret, &stats);
      EXPECT_EQ(stats.exchange_depth, depth);
      // Each rank's exchanges covered every timestep exactly once.
      EXPECT_EQ(stats.steps_covered, static_cast<std::uint64_t>(2 * depth));
      std::vector<std::int64_t> total{
          static_cast<std::int64_t>(stats.messages)};
      comm.allreduce(std::span<std::int64_t>(total), smpi::ReduceOp::Sum);
      if (comm.rank() == 0) {
        EXPECT_EQ(static_cast<std::uint64_t>(total[0]), 2 * expect)
            << "mode " << ir::to_string(m);
      }
      if (m == ir::MpiMode::Full) {
        // One start per strip, overlapped with the widened core.
        EXPECT_EQ(stats.starts, 2U);
        EXPECT_GT(stats.progress_calls, 0U);
      }
    });
    jitfd::grid::Function::set_default_exchange_depth(1);
  }
}

}  // namespace
