// Tests for off-grid sparse operations: multilinear support/weights,
// rank-ownership semantics (paper Figure 3), injection and interpolation
// in serial and distributed settings, and the Ricker wavelet.
#include <gtest/gtest.h>

#include <cmath>

#include "core/operator.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
using jitfd::sparse::Injection;
using jitfd::sparse::Interpolation;
using jitfd::sparse::SparseFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

TEST(Ricker, PeakAndSymmetry) {
  const double f0 = 10.0;
  const double t0 = 0.1;
  EXPECT_NEAR(jitfd::sparse::ricker(t0, f0, t0), 1.0, 1e-12);
  EXPECT_NEAR(jitfd::sparse::ricker(t0 + 0.01, f0, t0),
              jitfd::sparse::ricker(t0 - 0.01, f0, t0), 1e-12);
  // Decays far from the peak.
  EXPECT_LT(std::abs(jitfd::sparse::ricker(t0 + 0.5, f0, t0)), 1e-6);
}

TEST(SparseFunction, SupportWeightsFormPartitionOfUnity) {
  const Grid g({5, 5}, {4.0, 4.0});  // h = 1.
  const SparseFunction pts("p", g,
                           {{0.25, 0.75}, {2.0, 2.0}, {4.0, 4.0}, {3.5, 0.0}});
  for (int p = 0; p < pts.npoints(); ++p) {
    double total = 0.0;
    for (const auto& nw : pts.support(p)) {
      total += nw.weight;
      for (int d = 0; d < 2; ++d) {
        EXPECT_GE(nw.node[static_cast<std::size_t>(d)], 0);
        EXPECT_LT(nw.node[static_cast<std::size_t>(d)], 5);
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "point " << p;
  }
}

TEST(SparseFunction, OnNodePointHasSingleSupport) {
  const Grid g({5, 5}, {4.0, 4.0});
  const SparseFunction pts("p", g, {{2.0, 3.0}});
  const auto sup = pts.support(0);
  ASSERT_EQ(sup.size(), 1U);
  EXPECT_EQ(sup[0].node, (std::vector<std::int64_t>{2, 3}));
  EXPECT_NEAR(sup[0].weight, 1.0, 1e-12);
}

TEST(SparseFunction, RejectsOutOfDomainPoints) {
  const Grid g({5, 5}, {4.0, 4.0});
  EXPECT_THROW(SparseFunction("p", g, {{-0.1, 0.0}}), std::invalid_argument);
  EXPECT_THROW(SparseFunction("p", g, {{0.0, 4.5}}), std::invalid_argument);
}

TEST(SparseFunction, SharedBoundaryPointIsLocalToAllAdjacentRanks) {
  // Paper Figure 3: a point on the cross-point of 4 ranks is local to all
  // four; a clearly interior point is local to exactly one.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {7.0, 7.0}, comm);  // h = 1; ranks own 4x4 blocks.
    // Point C: dead centre, between nodes 3 and 4 in both dims.
    // Point A: inside rank 0's block.
    const SparseFunction pts("p", g, {{3.5, 3.5}, {1.25, 1.5}});
    std::vector<std::int64_t> counts{pts.is_local(0) ? 1 : 0,
                                     pts.is_local(1) ? 1 : 0};
    comm.allreduce(std::span<std::int64_t>(counts), smpi::ReduceOp::Sum);
    EXPECT_EQ(counts[0], 4);  // C shared by every rank.
    EXPECT_EQ(counts[1], 1);  // A owned by one rank.
  });
}

TEST(Injection, DistributedInjectionEqualsSerial) {
  const std::int64_t n = 9;
  auto run = [&](const Grid& g) {
    TimeFunction u("u", g, 2, 1);
    // One point between nodes (mid-cell), one on a rank boundary.
    const SparseFunction src("src", g, {{3.3, 4.7}, {4.0, 4.0}});
    Injection inj(
        u, src, [](std::int64_t t) { return 1.0 + static_cast<double>(t); },
        nullptr, /*time_offset=*/1);
    inj.apply(0);
    inj.apply(1);
    // apply(0) wrote buffer (0+1)%2 = 1; apply(1) wrote buffer 0 — gather
    // the latter: it carries amplitude 2.0 into each of the two points.
    return u.gather(0);
  };
  const Grid serial({n, n}, {8.0, 8.0});
  const auto expected = run(serial);
  // Total injected mass = amplitude at t=1 times number of points
  // (multilinear weights are a partition of unity per point).
  double total = 0.0;
  for (const float v : expected) {
    total += v;
  }
  EXPECT_NEAR(total, 2.0 * 2, 1e-5);

  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {8.0, 8.0}, comm);
    const auto got = run(g);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6) << "at " << i;
      }
    }
  });
}

TEST(Interpolation, ReadsBackInjectedField) {
  const Grid g({9, 9}, {8.0, 8.0});
  TimeFunction u("u", g, 2, 1);
  const std::vector<std::int64_t> pt{4, 4};
  u.set_global(0, pt, 2.0F);
  // Interpolating exactly at the node reads the nodal value; at mid-cell
  // it averages the cell's corners.
  const SparseFunction rec("rec", g, {{4.0, 4.0}, {4.5, 4.0}});
  Interpolation interp(u, rec, /*time_offset=*/0);
  interp.apply(0);
  const auto data = interp.assemble();
  ASSERT_EQ(data.size(), 1U);
  EXPECT_NEAR(data[0][0], 2.0, 1e-6);
  EXPECT_NEAR(data[0][1], 1.0, 1e-6);  // (2 + 0) / 2.
}

TEST(Interpolation, DistributedAssembleMatchesSerial) {
  const std::int64_t n = 9;
  const int steps = 3;
  auto run = [&](const Grid& g) {
    TimeFunction u("u", g, 2, 1);
    u.init([](std::span<const std::int64_t> gi) {
      return static_cast<float>(gi[0]) + 0.5F * static_cast<float>(gi[1]);
    });
    const SparseFunction rec("rec", g, {{3.7, 2.1}, {4.0, 4.0}, {0.5, 7.5}});
    Interpolation interp(u, rec, 0);
    for (int t = 0; t < steps; ++t) {
      interp.apply(t);
    }
    return interp.assemble();
  };
  const Grid serial({n, n}, {8.0, 8.0});
  const auto expected = run(serial);
  // Linear field: multilinear interpolation is exact.
  EXPECT_NEAR(expected[0][0], 3.7 + 0.5 * 2.1, 1e-5);

  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {8.0, 8.0}, comm);
    const auto got = run(g);
    for (int t = 0; t < steps; ++t) {
      for (std::size_t p = 0; p < 3; ++p) {
        ASSERT_NEAR(got[static_cast<std::size_t>(t)][p],
                    expected[static_cast<std::size_t>(t)][p], 1e-5);
      }
    }
  });
}

TEST(Injection, ScaleCallbackAppliesPerNode) {
  // The DSL's src.inject(expr=src * dt^2 / m) pattern: the per-node scale
  // reads a parameter field at the support node.
  const Grid g({9, 9}, {8.0, 8.0});
  TimeFunction u("u", g, 2, 1);
  Function m("m", g, 2);
  m.init([](std::span<const std::int64_t> gi) {
    return static_cast<float>(1 + gi[0]);  // Varies along x.
  });
  const SparseFunction src("src", g, {{3.5, 4.0}});  // Between x=3 and x=4.
  Injection inj(
      u, src, [](std::int64_t) { return 2.0; },
      [&](int /*p*/, std::span<const std::int64_t> node) {
        return 1.0 / m.get_global_or(0, node, 1.0F);
      },
      1);
  inj.apply(0);
  // Nodes (3,4) and (4,4) get 2.0 * 0.5 / m(node).
  const float at3 = u.get_global_or(1, std::vector<std::int64_t>{3, 4}, -1);
  const float at4 = u.get_global_or(1, std::vector<std::int64_t>{4, 4}, -1);
  EXPECT_NEAR(at3, 2.0 * 0.5 / 4.0, 1e-6);
  EXPECT_NEAR(at4, 2.0 * 0.5 / 5.0, 1e-6);
}

TEST(SparseFunction, ThreeDimensionalSupportAndInjection) {
  const Grid g({5, 5, 5}, {4.0, 4.0, 4.0});
  const SparseFunction pts("p", g, {{1.5, 2.25, 3.75}});
  const auto sup = pts.support(0);
  ASSERT_EQ(sup.size(), 8U);  // 2^3 corners.
  double total = 0.0;
  for (const auto& nw : sup) {
    total += nw.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);

  TimeFunction u("u", g, 2, 1);
  Injection inj(u, pts, [](std::int64_t) { return 1.0; }, nullptr, 1);
  inj.apply(0);
  double mass = 0.0;
  for (const float v : u.gather(1)) {
    mass += v;
  }
  EXPECT_NEAR(mass, 1.0, 1e-6);
}

TEST(SparseInOperator, SourceDrivenWavePropagatesIdenticallyAcrossModes) {
  // Full pipeline: stencil update + source injection + receiver
  // interpolation inside one Operator, compared across serial and all
  // three distributed modes — the paper's "operations beyond stencils".
  const std::int64_t n = 16;
  const int steps = 20;
  const double dt = 0.05;
  const double f0 = 4.0;

  auto run = [&](const Grid& g, ir::CompileOptions opts,
                 std::vector<std::vector<double>>& rec_out) {
    TimeFunction u("u", g, 2, 2);
    const SparseFunction src("src", g, {{7.3, 7.9}});
    // One receiver inside the source cell (records immediately), one far
    // away (records the propagating front later).
    const SparseFunction rec("rec", g, {{7.0, 7.5}, {11.5, 11.5}});
    Injection inj(
        u, src,
        [&](std::int64_t t) {
          return jitfd::sparse::ricker(static_cast<double>(t) * dt, f0, 0.15);
        },
        nullptr, /*time_offset=*/1);
    Interpolation interp(u, rec, /*time_offset=*/1);
    const sym::Ex c2 = sym::Ex(0.25);  // Wave speed squared.
    Operator op({ir::Eq(u.forward(),
                        sym::solve(u.dt2() - c2 * u.laplace(), sym::Ex(0),
                                   u.forward()))},
                opts, {&inj, &interp});
    op.apply({.time_m = 1, .time_M = steps, .scalars = {{"dt", dt}}});
    rec_out = interp.assemble();
    return u.gather((steps + 1) % 3);
  };

  const Grid serial({n, n}, {15.0, 15.0});
  std::vector<std::vector<double>> rec_ref;
  const auto u_ref = run(serial, {}, rec_ref);
  // The wave reached the near receiver.
  double energy = 0.0;
  for (const auto& row : rec_ref) {
    energy += std::abs(row[0]);
  }
  EXPECT_GT(energy, 1e-6);

  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {15.0, 15.0}, comm);
      ir::CompileOptions opts;
      opts.mode = mode;
      std::vector<std::vector<double>> rec_got;
      const auto u_got = run(g, opts, rec_got);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < u_got.size(); ++i) {
          ASSERT_NEAR(u_got[i], u_ref[i], 1e-5)
              << "mode " << ir::to_string(mode) << " at " << i;
        }
      }
      for (std::size_t t = 0; t < rec_got.size(); ++t) {
        for (std::size_t p = 0; p < rec_got[t].size(); ++p) {
          ASSERT_NEAR(rec_got[t][p], rec_ref[t][p], 1e-5);
        }
      }
    });
  }
}

}  // namespace
