// Tests for the tiling pass: per-dimension cache blocking lowered as
// BlockLoop IET nodes, tiled-vs-untiled bitwise equivalence across MPI
// patterns x exchange depths x backends (the tiled schedule must be a
// pure traversal-order change *within* each loop nest, so owned values
// come out bit-identical), the JITFD_TILE process default, and time
// tiling composed with the communication-avoiding strip machinery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <stdexcept>

#include "core/operator.h"
#include "grid/function.h"
#include "ir/lower.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

bool have_cc() {
  static const bool ok = std::system("cc --version > /dev/null 2>&1") == 0;
  return ok;
}

ir::Eq diffusion_eq(const TimeFunction& u) {
  return ir::Eq(u.forward(),
                sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()));
}

int count_type(const ir::NodePtr& root, ir::NodeType type) {
  int n = 0;
  const std::function<void(const ir::NodePtr&)> visit =
      [&](const ir::NodePtr& node) {
        n += node->type == type ? 1 : 0;
        for (const ir::NodePtr& c : node->body) {
          visit(c);
        }
      };
  visit(root);
  return n;
}

// --- Distributed equivalence matrix ----------------------------------------

/// One distributed diffusion run; returns rank 0's gathered final buffer.
/// 21x21 over 4 ranks: odd extents, and tile 5 divides neither the 11-
/// nor the 10-point local blocks.
std::vector<float> run_distributed(ir::MpiMode mode, int depth,
                                   Operator::Backend backend,
                                   const std::vector<std::int64_t>& tile) {
  const std::int64_t n = 21;
  const int steps = 5;  // Partial strip at depth 2.
  std::vector<float> out;
  jitfd::grid::Function::set_default_exchange_depth(2 * depth);
  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{3, 5},
                      std::vector<std::int64_t>{15, 17}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = mode;
    opts.exchange_depth = depth;
    opts.tile = tile;
    Operator op({diffusion_eq(u)}, opts);
    ASSERT_EQ(op.info().exchange_depth, depth)
        << op.info().exchange_depth_clamp_reason;
    if (!tile.empty()) {
      ASSERT_TRUE(op.info().tile_clamp_reason.empty())
          << op.info().tile_clamp_reason;
    }
    op.set_default_backend(backend);
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", 1e-3}}});
    const auto got = u.gather(steps % u.time_buffers());
    if (comm.rank() == 0) {
      out = got;
    }
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
  return out;
}

void check_tiled_equivalence(ir::MpiMode mode) {
  for (const int depth : {1, 2}) {
    for (const Operator::Backend backend :
         {Operator::Backend::Interpret, Operator::Backend::Jit}) {
      if (backend == Operator::Backend::Jit && !have_cc()) {
        continue;
      }
      const auto plain = run_distributed(mode, depth, backend, {});
      const auto tiled = run_distributed(mode, depth, backend, {5, 0});
      ASSERT_EQ(plain.size(), tiled.size());
      ASSERT_FALSE(plain.empty());
      double mass = 0.0;
      for (std::size_t i = 0; i < plain.size(); ++i) {
        // Bitwise: tiling reorders whole-row traversal, not arithmetic.
        ASSERT_EQ(plain[i], tiled[i])
            << "mode " << ir::to_string(mode) << " depth " << depth
            << " backend " << jitfd::core::to_string(backend) << " at " << i;
        mass += std::abs(static_cast<double>(plain[i]));
      }
      EXPECT_GT(mass, 0.0) << "reference field is empty";
    }
  }
}

TEST(Tiling, TiledMatchesUntiledBasicBothDepthsBothBackends) {
  check_tiled_equivalence(ir::MpiMode::Basic);
}

TEST(Tiling, TiledMatchesUntiledDiagonalBothDepthsBothBackends) {
  check_tiled_equivalence(ir::MpiMode::Diagonal);
}

TEST(Tiling, TiledMatchesUntiledFullBothDepthsBothBackends) {
  check_tiled_equivalence(ir::MpiMode::Full);
}

// --- Serial 3-D, mid-dimension tiles ---------------------------------------

TEST(Tiling, SerialThreeDimNonDividingTilesMatchUntiled) {
  // Odd extents, neither tile divides its extent, and the middle
  // dimension is tiled too (the innermost never is).
  const std::int64_t steps = 3;
  auto run = [&](Operator::Backend backend,
                 const std::vector<std::int64_t>& tile) {
    const Grid g({13, 11, 9}, {1.0, 1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{3, 2, 2},
                      std::vector<std::int64_t>{9, 8, 7}, 1.0F);
    ir::CompileOptions opts;
    opts.tile = tile;
    Operator op({diffusion_eq(u)}, opts);
    op.set_default_backend(backend);
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", 1e-4}}});
    return u.gather(static_cast<int>(steps % 2));
  };
  for (const Operator::Backend backend :
       {Operator::Backend::Interpret, Operator::Backend::Jit}) {
    if (backend == Operator::Backend::Jit && !have_cc()) {
      continue;
    }
    const auto plain = run(backend, {});
    for (const std::vector<std::int64_t>& tile :
         {std::vector<std::int64_t>{5, 0, 0},
          std::vector<std::int64_t>{5, 3, 0},
          std::vector<std::int64_t>{7, 3, 0}}) {
      const auto tiled = run(backend, tile);
      ASSERT_EQ(plain.size(), tiled.size());
      for (std::size_t i = 0; i < plain.size(); ++i) {
        ASSERT_EQ(plain[i], tiled[i])
            << "backend " << jitfd::core::to_string(backend) << " at " << i;
      }
    }
  }
}

TEST(Tiling, TileLargerThanExtentClampsWithReasonAndStillRuns) {
  const Grid g({13, 11}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  ir::CompileOptions opts;
  opts.tile = {15, 0};  // 15 >= the 13-point extent.
  Operator op({diffusion_eq(u)}, opts);
  EXPECT_EQ(op.info().tile, (std::vector<std::int64_t>{0, 0}));
  EXPECT_FALSE(op.info().tile_clamp_reason.empty());
  op.apply({.time_m = 0, .time_M = 1, .scalars = {{"dt", 1e-4}}});
  EXPECT_NE(op.describe().find("clamped"), std::string::npos);
}

// --- Strip sub-steps carry tile loops --------------------------------------

TEST(Tiling, StripSubStepsCarryTileLoops) {
  // Classic (non-time-tiled) depth-2 strips with a spatial tile: every
  // substep section's nest must be wrapped in a dim-0 BlockLoop so both
  // backends execute the same tiled schedule inside strips.
  jitfd::grid::Function::set_default_exchange_depth(2);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({32, 32}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    opts.exchange_depth = 2;
    opts.tile = {4, 0};
    const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);
    ASSERT_EQ(info.exchange_depth, 2) << info.exchange_depth_clamp_reason;
    ASSERT_TRUE(info.tile_clamp_reason.empty()) << info.tile_clamp_reason;

    const ir::NodePtr* time_loop = nullptr;
    for (const ir::NodePtr& c : iet->body) {
      if (c->type == ir::NodeType::TimeLoop) {
        time_loop = &c;
      }
    }
    ASSERT_NE(time_loop, nullptr);
    EXPECT_EQ((*time_loop)->time_stride, 2);
    int substeps = 0;
    for (const ir::NodePtr& c : (*time_loop)->body) {
      if (c->type != ir::NodeType::Section || c->name != "substep") {
        continue;
      }
      ++substeps;
      ASSERT_FALSE(c->body.empty());
      const ir::NodePtr& nest = c->body.front();
      ASSERT_EQ(nest->type, ir::NodeType::BlockLoop) << "sub-step untiled";
      EXPECT_EQ(nest->dim, 0);
      EXPECT_EQ(nest->tile, 4);
    }
    EXPECT_EQ(substeps, 2);
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(Tiling, TimeTiledStripWalksSubStepsInsideBlockLoop) {
  // Time tiling: the strip's sub-steps move INSIDE a serial dim-0
  // BlockLoop (the walker), each sub-step's dim-0 Iteration carrying the
  // trapezoid expansion; health checks trail as guarded sub-steps.
  jitfd::grid::Function::set_default_exchange_depth(2);
  jitfd::grid::Function::set_default_time_slack(1);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({32, 32}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    opts.exchange_depth = 2;
    opts.tile = {4, 0};
    opts.time_tile = true;
    const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);
    ASSERT_EQ(info.exchange_depth, 2) << info.exchange_depth_clamp_reason;
    ASSERT_TRUE(info.time_tile) << info.time_tile_clamp_reason;

    const ir::NodePtr* time_loop = nullptr;
    for (const ir::NodePtr& c : iet->body) {
      if (c->type == ir::NodeType::TimeLoop) {
        time_loop = &c;
      }
    }
    ASSERT_NE(time_loop, nullptr);
    const ir::NodePtr* walker = nullptr;
    for (const ir::NodePtr& c : (*time_loop)->body) {
      if (c->type == ir::NodeType::BlockLoop) {
        walker = &c;
      }
    }
    ASSERT_NE(walker, nullptr) << "no tile walker in the strip";
    EXPECT_EQ((*walker)->dim, 0);
    EXPECT_EQ((*walker)->tile, 4);
    EXPECT_FALSE((*walker)->props.parallel);  // The walker is serial.
    // Both sub-steps live inside the walker; sub-step 0's dim-0
    // Iteration expands the window by the full chain width (so/2 = 1
    // per remaining sub-step), sub-step 1 by none.
    int inside = 0;
    for (const ir::NodePtr& c : (*walker)->body) {
      ASSERT_EQ(c->type, ir::NodeType::Section);
      ASSERT_EQ(c->name, "substep");
      const std::int64_t shift = c->time_shift;
      const ir::NodePtr& x_loop = c->body.front();
      ASSERT_EQ(x_loop->type, ir::NodeType::Iteration);
      EXPECT_EQ(x_loop->dim, 0);
      EXPECT_EQ(x_loop->tile_expand, 1 - shift);
      ++inside;
    }
    EXPECT_EQ(inside, 2);
  });
  jitfd::grid::Function::set_default_time_slack(0);
  jitfd::grid::Function::set_default_exchange_depth(1);
}

// --- Time-tiling equivalence ------------------------------------------------

TEST(Tiling, TimeTiledStripMatchesClassicStrip) {
  const std::int64_t n = 21;
  const int steps = 5;  // Partial strip: the walker's last sub-step guards.
  auto run = [&](Operator::Backend backend, bool time_tile, int slack) {
    std::vector<float> out;
    jitfd::grid::Function::set_default_exchange_depth(4);
    jitfd::grid::Function::set_default_time_slack(slack);
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      TimeFunction u("u", g, 2, 1);
      u.fill_global_box(0, std::vector<std::int64_t>{3, 5},
                        std::vector<std::int64_t>{15, 17}, 1.0F);
      ir::CompileOptions opts;
      opts.mode = ir::MpiMode::Basic;
      opts.exchange_depth = 2;
      if (time_tile) {
        opts.tile = {4, 0};
        opts.time_tile = true;
      }
      Operator op({diffusion_eq(u)}, opts);
      ASSERT_EQ(op.info().exchange_depth, 2)
          << op.info().exchange_depth_clamp_reason;
      if (time_tile) {
        ASSERT_TRUE(op.info().time_tile) << op.info().time_tile_clamp_reason;
      }
      op.set_default_backend(backend);
      op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", 1e-3}}});
      const auto got = u.gather(steps % u.time_buffers());
      if (comm.rank() == 0) {
        out = got;
      }
    });
    jitfd::grid::Function::set_default_time_slack(0);
    jitfd::grid::Function::set_default_exchange_depth(1);
    return out;
  };
  for (const Operator::Backend backend :
       {Operator::Backend::Interpret, Operator::Backend::Jit}) {
    if (backend == Operator::Backend::Jit && !have_cc()) {
      continue;
    }
    const auto classic = run(backend, false, 0);
    const auto tiled = run(backend, true, 1);
    ASSERT_EQ(classic.size(), tiled.size());
    ASSERT_FALSE(classic.empty());
    double mass = 0.0;
    for (std::size_t i = 0; i < classic.size(); ++i) {
      ASSERT_EQ(classic[i], tiled[i])
          << "backend " << jitfd::core::to_string(backend) << " at " << i;
      mass += std::abs(static_cast<double>(classic[i]));
    }
    EXPECT_GT(mass, 0.0);
  }
}

TEST(Tiling, TimeTileWithoutBufferSlackClampsWithReason) {
  // Without extra time buffers a tile finishing all k sub-steps would
  // clobber slots later tiles still read: the request must clamp, name
  // the field, and fall back to the classic (still correct) strip walk.
  jitfd::grid::Function::set_default_exchange_depth(2);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({32, 32}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    opts.exchange_depth = 2;
    opts.tile = {4, 0};
    opts.time_tile = true;
    Operator op({diffusion_eq(u)}, opts);
    EXPECT_FALSE(op.info().time_tile);
    EXPECT_NE(op.info().time_tile_clamp_reason.find("u"), std::string::npos)
        << op.info().time_tile_clamp_reason;
    op.apply({.time_m = 0, .time_M = 3, .scalars = {{"dt", 1e-3}}});
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

// --- JITFD_TILE / process defaults -----------------------------------------

TEST(Tiling, ParseTileIsStrict) {
  EXPECT_TRUE(Function::parse_tile("").empty());
  EXPECT_EQ(Function::parse_tile("16"), (std::vector<std::int64_t>{16}));
  EXPECT_EQ(Function::parse_tile("16,8,0"),
            (std::vector<std::int64_t>{16, 8, 0}));
  // Empty tokens mean "untiled in this dimension"; anything non-numeric
  // is a hard configuration error rather than a silent 0.
  EXPECT_EQ(Function::parse_tile("8,,2"), (std::vector<std::int64_t>{8, 0, 2}));
  EXPECT_THROW(Function::parse_tile("x,4"), std::invalid_argument);
  EXPECT_THROW(Function::parse_tile("16,8cols"), std::invalid_argument);
}

TEST(Tiling, DefaultTileAppliesWhenOptionsLeaveTileEmpty) {
  // The JITFD_TILE path: the env var initializes this same process-wide
  // default, so the setter exercises identical plumbing.
  Function::set_default_tile({4, 0});
  {
    const Grid g({32, 32}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    Operator op({diffusion_eq(u)});
    EXPECT_EQ(op.info().tile, (std::vector<std::int64_t>{4, 0}));
    EXPECT_TRUE(op.info().tile_clamp_reason.empty());
  }
  // Clamp-and-record: an infeasible default is not an error.
  {
    const Grid g({32, 32}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    ir::CompileOptions opts;
    opts.tile = {0, 0};  // Explicit (non-empty) options win over defaults.
    Operator op({diffusion_eq(u)}, opts);
    EXPECT_EQ(op.info().tile, (std::vector<std::int64_t>{0, 0}));
  }
  Function::set_default_tile({64, 4});
  {
    const Grid g({32, 32}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    Operator op({diffusion_eq(u)});
    EXPECT_EQ(op.info().tile, (std::vector<std::int64_t>{0, 0}));
    EXPECT_FALSE(op.info().tile_clamp_reason.empty());
  }
  Function::set_default_tile({});
}

TEST(Tiling, TimeSlackSetterValidatesAndWidensBuffers) {
  EXPECT_THROW(Function::set_default_time_slack(-1), std::invalid_argument);
  Function::set_default_time_slack(2);
  const Grid g({8, 8}, {1.0, 1.0});
  const TimeFunction u("u", g, 2, 1);
  EXPECT_EQ(u.time_buffers(), 4);  // time_order + 1 + slack.
  Function::set_default_time_slack(0);
  const TimeFunction v("v", g, 2, 1);
  EXPECT_EQ(v.time_buffers(), 2);
  // Saved fields ignore slack (identity indexing needs no window).
  Function::set_default_time_slack(3);
  const TimeFunction w("w", g, 2, 1, 0, /*save=*/6);
  EXPECT_EQ(w.time_buffers(), 6);
  Function::set_default_time_slack(0);
}

// --- Emitted SIMD annotations ----------------------------------------------

TEST(Tiling, EmitterAnnotatesInnermostLoopWithAlignedSimd) {
  const Grid g({32, 32}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  ir::CompileOptions opts;
  opts.tile = {8, 0};
  Operator op({diffusion_eq(u)}, opts);
  const std::string& code = op.ccode();
  EXPECT_NE(code.find("simd"), std::string::npos) << code;
  EXPECT_NE(code.find("aligned(u:64)"), std::string::npos) << code;
  EXPECT_EQ(count_type(op.iet(), ir::NodeType::BlockLoop), 1);
}

}  // namespace
