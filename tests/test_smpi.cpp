// Unit tests for the SMPI substrate: point-to-point semantics, matching
// order, collectives, Cartesian topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "smpi/cart.h"
#include "smpi/pool.h"
#include "smpi/runtime.h"

namespace {

using smpi::CartComm;
using smpi::Communicator;
using smpi::ReduceOp;
using smpi::Request;

TEST(SmpiRuntime, SingleRankRuns) {
  int visits = 0;
  smpi::run(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(SmpiRuntime, AllRanksRunExactlyOnce) {
  // Observing every rank through one shared atomic only works when ranks
  // share an address space, so pin the thread transport regardless of
  // JITFD_TRANSPORT (test_transport covers the cross-transport variant).
  std::atomic<int> mask{0};
  smpi::launch({.nranks = 4, .transport = smpi::TransportKind::Threads},
               [&](Communicator& comm) {
    mask.fetch_or(1 << comm.rank());
               });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(SmpiRuntime, ExceptionsPropagateAfterJoin) {
  EXPECT_THROW(
      smpi::run(2,
                [](Communicator& comm) {
                  if (comm.rank() == 1) {
                    throw std::runtime_error("boom");
                  }
                }),
      std::runtime_error);
}

TEST(SmpiP2P, BlockingSendRecvRoundTrip) {
  smpi::run(2, [](Communicator& comm) {
    const int tag = 7;
    if (comm.rank() == 0) {
      const double payload = 3.25;
      comm.send_n(&payload, 1, 1, tag);
    } else {
      double got = 0.0;
      const auto st = comm.recv_n(&got, 1, 0, tag);
      EXPECT_DOUBLE_EQ(got, 3.25);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, tag);
      EXPECT_EQ(st.bytes, sizeof(double));
    }
  });
}

TEST(SmpiP2P, MessagesAreNonOvertakingPerSourceAndTag) {
  // Two messages with the same (source, tag) must be received in send order.
  smpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 16; ++i) {
        comm.send_n(&i, 1, 1, 3);
      }
    } else {
      for (int i = 0; i < 16; ++i) {
        int got = -1;
        comm.recv_n(&got, 1, 0, 3);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(SmpiP2P, TagSelectsAmongPendingMessages) {
  smpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int a = 10;
      const int b = 20;
      comm.send_n(&a, 1, 1, 1);
      comm.send_n(&b, 1, 1, 2);
      comm.barrier();
    } else {
      comm.barrier();  // Ensure both messages are pending before receiving.
      int got = 0;
      comm.recv_n(&got, 1, 0, 2);
      EXPECT_EQ(got, 20);
      comm.recv_n(&got, 1, 0, 1);
      EXPECT_EQ(got, 10);
    }
  });
}

TEST(SmpiP2P, AnySourceAndAnyTagMatch) {
  smpi::run(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      const int payload = comm.rank() * 100;
      comm.send_n(&payload, 1, 0, comm.rank());
    } else {
      int seen_sum = 0;
      for (int i = 0; i < 2; ++i) {
        int got = 0;
        const auto st = comm.recv_n(&got, 1, smpi::kAnySource, smpi::kAnyTag);
        EXPECT_EQ(got, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        seen_sum += got;
      }
      EXPECT_EQ(seen_sum, 300);
    }
  });
}

TEST(SmpiP2P, NonblockingRecvCompletesViaWait) {
  smpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      std::vector<float> buf(128, 0.0F);
      Request rx = comm.irecv(buf.data(), buf.size() * sizeof(float), 0, 5);
      comm.barrier();  // Sender fires after the receive is posted.
      const auto st = rx.wait();
      EXPECT_EQ(st.bytes, buf.size() * sizeof(float));
      EXPECT_FLOAT_EQ(buf[17], 17.0F);
    } else {
      std::vector<float> buf(128);
      std::iota(buf.begin(), buf.end(), 0.0F);
      comm.barrier();
      comm.isend(buf.data(), buf.size() * sizeof(float), 1, 5).wait();
    }
  });
}

TEST(SmpiP2P, TestReportsCompletionWithoutBlocking) {
  smpi::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      int got = 0;
      Request rx = comm.irecv(&got, sizeof(int), 0, 9);
      EXPECT_FALSE(rx.test());  // Nothing has been sent yet.
      comm.barrier();
      comm.barrier();  // Sender has delivered between the two barriers.
      EXPECT_TRUE(rx.test());
      EXPECT_EQ(got, 42);
    } else {
      comm.barrier();
      const int v = 42;
      comm.send_n(&v, 1, 1, 9);
      comm.barrier();
    }
  });
}

TEST(SmpiP2P, SendToProcNullIsNoOp) {
  smpi::run(1, [](Communicator& comm) {
    const int v = 1;
    comm.send_n(&v, 1, smpi::kProcNull, 0);
    int dummy = 7;
    const auto st = comm.recv_n(&dummy, 1, smpi::kProcNull, 0);
    EXPECT_EQ(st.source, smpi::kProcNull);
    EXPECT_EQ(dummy, 7);  // Buffer untouched.
  });
}

TEST(SmpiP2P, SendRecvExchangesBetweenNeighbours) {
  smpi::run(4, [](Communicator& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    const int mine = comm.rank() * 11;
    int theirs = -1;
    comm.sendrecv(&mine, sizeof(int), right, 0, &theirs, sizeof(int), left, 0);
    EXPECT_EQ(theirs, left * 11);
  });
}

TEST(SmpiCollectives, AllreduceSumMinMaxProd) {
  smpi::run(4, [](Communicator& comm) {
    const double r = comm.rank() + 1.0;  // 1..4

    std::vector<double> sum{r};
    comm.allreduce(std::span<double>(sum), ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum[0], 10.0);

    std::vector<double> mn{r};
    comm.allreduce(std::span<double>(mn), ReduceOp::Min);
    EXPECT_DOUBLE_EQ(mn[0], 1.0);

    std::vector<double> mx{r};
    comm.allreduce(std::span<double>(mx), ReduceOp::Max);
    EXPECT_DOUBLE_EQ(mx[0], 4.0);

    std::vector<double> pr{r};
    comm.allreduce(std::span<double>(pr), ReduceOp::Prod);
    EXPECT_DOUBLE_EQ(pr[0], 24.0);
  });
}

TEST(SmpiCollectives, AllreduceVectorInt64) {
  smpi::run(3, [](Communicator& comm) {
    std::vector<std::int64_t> v{comm.rank(), 10 * comm.rank()};
    comm.allreduce(std::span<std::int64_t>(v), ReduceOp::Sum);
    EXPECT_EQ(v[0], 3);
    EXPECT_EQ(v[1], 30);
  });
}

TEST(SmpiCollectives, BcastFromNonzeroRoot) {
  smpi::run(4, [](Communicator& comm) {
    int value = (comm.rank() == 2) ? 123 : 0;
    comm.bcast(&value, sizeof(int), 2);
    EXPECT_EQ(value, 123);
  });
}

TEST(SmpiCollectives, GatherCollectsInRankOrder) {
  smpi::run(4, [](Communicator& comm) {
    const int mine = comm.rank() + 1;
    std::vector<int> all(comm.rank() == 0 ? 4 : 0);
    comm.gather(&mine, sizeof(int), all.data(), 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(SmpiCollectives, BackToBackCollectivesDoNotCrossMatch) {
  smpi::run(4, [](Communicator& comm) {
    for (int round = 0; round < 8; ++round) {
      std::vector<double> v{static_cast<double>(round)};
      comm.allreduce(std::span<double>(v), ReduceOp::Sum);
      EXPECT_DOUBLE_EQ(v[0], 4.0 * round);
    }
  });
}

TEST(SmpiP2P, SimultaneousBidirectionalLargeMessagesDoNotDeadlock) {
  // Buffered-send semantics: both ranks send a large payload before
  // either posts its receive — this must not deadlock (the basic halo
  // pattern relies on it).
  smpi::run(2, [](Communicator& comm) {
    const int other = 1 - comm.rank();
    std::vector<double> out(1 << 16, comm.rank() + 1.0);
    std::vector<double> in(1 << 16, 0.0);
    comm.send(out.data(), out.size() * sizeof(double), other, 11);
    comm.recv(in.data(), in.size() * sizeof(double), other, 11);
    EXPECT_DOUBLE_EQ(in.front(), other + 1.0);
    EXPECT_DOUBLE_EQ(in.back(), other + 1.0);
  });
}

TEST(SmpiRuntime, WorldCountsDeliveredMessages) {
  smpi::run(3, [](Communicator& comm) {
    // Capture the baseline before the barrier: every send below happens
    // after all ranks passed the barrier, hence after every capture.
    // (Capturing after the barrier races with rank 0's sends.)
    const std::uint64_t before = comm.world().message_count();
    comm.barrier();
    if (comm.rank() == 0) {
      const int v = 1;
      comm.send_n(&v, 1, 1, 0);
      comm.send_n(&v, 1, 2, 0);
    } else {
      int v = 0;
      comm.recv_n(&v, 1, 0, 0);
    }
    comm.barrier();
    EXPECT_GE(comm.world().message_count(), before + 2);
  });
}

TEST(SmpiDims, DimsCreateBalancedFactorizations) {
  EXPECT_EQ(smpi::dims_create(8, 3), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(smpi::dims_create(16, 3), (std::vector<int>{4, 2, 2}));
  EXPECT_EQ(smpi::dims_create(12, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(smpi::dims_create(7, 2), (std::vector<int>{7, 1}));
  EXPECT_EQ(smpi::dims_create(1, 3), (std::vector<int>{1, 1, 1}));
}

TEST(SmpiDims, DimsCreateHonoursFixedEntries) {
  EXPECT_EQ(smpi::dims_create(16, 3, {0, 0, 1}), (std::vector<int>{4, 4, 1}));
  EXPECT_EQ(smpi::dims_create(16, 3, {2, 0, 0}), (std::vector<int>{2, 4, 2}));
  EXPECT_THROW(smpi::dims_create(16, 3, {3, 0, 0}), std::invalid_argument);
}

TEST(SmpiCart, CoordsRoundTrip) {
  smpi::run(8, [](Communicator& comm) {
    CartComm cart(comm, {2, 2, 2});
    for (int r = 0; r < cart.size(); ++r) {
      EXPECT_EQ(cart.rank_of(cart.coords(r)), r);
    }
    EXPECT_EQ(cart.rank_of({0, 0, 0}), 0);
    EXPECT_EQ(cart.rank_of({0, 0, 1}), 1);  // Last dim varies fastest.
    EXPECT_EQ(cart.rank_of({1, 0, 0}), 4);
  });
}

TEST(SmpiCart, ShiftAtBoundaryIsProcNull) {
  smpi::run(4, [](Communicator& comm) {
    CartComm cart(comm, {4});
    const auto sh = cart.shift(0, 1);
    if (comm.rank() == 0) {
      EXPECT_EQ(sh.source, smpi::kProcNull);
      EXPECT_EQ(sh.dest, 1);
    } else if (comm.rank() == 3) {
      EXPECT_EQ(sh.source, 2);
      EXPECT_EQ(sh.dest, smpi::kProcNull);
    } else {
      EXPECT_EQ(sh.source, comm.rank() - 1);
      EXPECT_EQ(sh.dest, comm.rank() + 1);
    }
  });
}

TEST(SmpiCart, NeighborhoodCountsMatchPaperTableI) {
  // Paper Table I: 6 face messages (basic) and 26 messages (diagonal/full)
  // per interior rank of a 3D decomposition.
  smpi::run(27, [](Communicator& comm) {
    CartComm cart(comm, {3, 3, 3});
    if (cart.my_coords() == std::vector<int>{1, 1, 1}) {
      EXPECT_EQ(cart.face_neighborhood().size(), 6U);
      EXPECT_EQ(cart.star_neighborhood().size(), 26U);
    }
    if (cart.my_coords() == std::vector<int>{0, 0, 0}) {
      EXPECT_EQ(cart.face_neighborhood().size(), 3U);
      EXPECT_EQ(cart.star_neighborhood().size(), 7U);
    }
  });
}

TEST(SmpiCart, TopologyValidation) {
  smpi::run(4, [](Communicator& comm) {
    EXPECT_THROW(CartComm(comm, {3, 1}), std::invalid_argument);
    EXPECT_THROW(CartComm(comm, {0, 4}), std::invalid_argument);
  });
}

TEST(BufferPool, MissThenHitOnSameBucket) {
  smpi::BufferPool pool;
  smpi::PoolBuffer a = pool.acquire(100);
  EXPECT_EQ(a.size, 100U);
  EXPECT_GE(a.capacity, 100U);
  EXPECT_EQ(pool.stats().misses, 1U);
  EXPECT_EQ(pool.stats().hits, 0U);

  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().pooled_buffers, 1U);

  // Any size that rounds to the same power-of-two bucket is a hit.
  smpi::PoolBuffer b = pool.acquire(128);
  EXPECT_EQ(b.size, 128U);
  EXPECT_EQ(pool.stats().hits, 1U);
  EXPECT_EQ(pool.stats().misses, 1U);
  EXPECT_EQ(pool.stats().pooled_buffers, 0U);
}

TEST(BufferPool, DifferentBucketsDoNotAlias) {
  smpi::BufferPool pool;
  smpi::PoolBuffer small = pool.acquire(64);
  pool.release(std::move(small));
  // A 1 MiB request must not be served by the 64-byte buffer.
  smpi::PoolBuffer big = pool.acquire(1 << 20);
  EXPECT_GE(big.capacity, static_cast<std::size_t>(1) << 20);
  EXPECT_EQ(pool.stats().misses, 2U);
  EXPECT_EQ(pool.stats().hits, 0U);
}

TEST(BufferPool, ZeroByteAcquireRoundTrips) {
  smpi::BufferPool pool;
  smpi::PoolBuffer z = pool.acquire(0);
  EXPECT_EQ(z.size, 0U);
  EXPECT_TRUE(static_cast<bool>(z));  // Storage exists (smallest bucket).
  pool.release(std::move(z));
  smpi::PoolBuffer again = pool.acquire(0);
  EXPECT_EQ(pool.stats().hits, 1U);
  pool.release(std::move(again));
}

TEST(BufferPool, TrimFreesIdleBuffers) {
  smpi::BufferPool pool;
  pool.release(pool.acquire(256));
  pool.release(pool.acquire(4096));
  EXPECT_EQ(pool.stats().pooled_buffers, 2U);
  EXPECT_GT(pool.stats().pooled_bytes, 0U);
  pool.trim();
  EXPECT_EQ(pool.stats().pooled_buffers, 0U);
  EXPECT_EQ(pool.stats().pooled_bytes, 0U);
}

TEST(SmpiTransport, PrePostedReceiveIsSingleCopyRendezvous) {
  smpi::run(2, [](Communicator& comm) {
    const auto& tc = comm.world().transport();
    std::vector<float> payload(1024, 2.5F);
    std::vector<float> sink(1024, 0.0F);
    const std::uint64_t r0 = tc.rendezvous.load();
    const std::uint64_t c0 = tc.payload_copies.load();
    const std::uint64_t q0 = tc.queued.load();

    Request rx;
    if (comm.rank() == 1) {
      rx = comm.irecv(sink.data(), sink.size() * sizeof(float), 0, 5);
    }
    // Rank 0 sends only after the receive is posted: the delivery must
    // copy straight into `sink` (rendezvous) without touching the pool.
    comm.barrier();
    if (comm.rank() == 0) {
      comm.send(payload.data(), payload.size() * sizeof(float), 1, 5);
    } else {
      const smpi::Status st = rx.wait();
      EXPECT_EQ(st.bytes, payload.size() * sizeof(float));
      EXPECT_FLOAT_EQ(sink.front(), 2.5F);
      EXPECT_FLOAT_EQ(sink.back(), 2.5F);
    }
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(tc.rendezvous.load() - r0, 1U);
      EXPECT_EQ(tc.queued.load() - q0, 0U);
      EXPECT_EQ(tc.payload_copies.load() - c0, 1U);  // Exactly one copy.
    }
  });
}

TEST(SmpiTransport, UnexpectedMessageIsPooledTwoCopy) {
  // Copy counts and pool behaviour are thread-transport properties (the
  // process transport streams through shared-memory rings), so pin the
  // transport: this test must hold regardless of JITFD_TRANSPORT.
  smpi::launch({.nranks = 2, .transport = smpi::TransportKind::Threads},
               [](Communicator& comm) {
    const auto& tc = comm.world().transport();
    const smpi::BufferPool& pool = comm.world().pool();
    const std::uint64_t q0 = tc.queued.load();
    const std::uint64_t c0 = tc.payload_copies.load();
    const std::uint64_t miss0 = pool.stats().misses;
    const std::uint64_t hit0 = pool.stats().hits;

    constexpr int kRounds = 8;
    std::vector<double> buf(512);
    for (int round = 0; round < kRounds; ++round) {
      if (comm.rank() == 0) {
        std::fill(buf.begin(), buf.end(), 1.0 + round);
        comm.send(buf.data(), buf.size() * sizeof(double), 1, round);
      }
      // The receive is posted strictly after the send has been queued.
      comm.barrier();
      if (comm.rank() == 1) {
        comm.recv(buf.data(), buf.size() * sizeof(double), 0, round);
        EXPECT_DOUBLE_EQ(buf.front(), 1.0 + round);
      }
      comm.barrier();
    }
    if (comm.rank() == 0) {
      // Every round was unexpected: two copies per message, and the pool
      // misses exactly once (warmup) then hits — zero steady-state
      // allocations.
      EXPECT_EQ(tc.queued.load() - q0, static_cast<std::uint64_t>(kRounds));
      EXPECT_EQ(tc.payload_copies.load() - c0,
                static_cast<std::uint64_t>(2 * kRounds));
      EXPECT_EQ(pool.stats().misses - miss0, 1U);
      EXPECT_EQ(pool.stats().hits - hit0,
                static_cast<std::uint64_t>(kRounds - 1));
    }
               });
}

}  // namespace
