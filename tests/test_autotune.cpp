// Tests for the communication-pattern autotuner (the paper's Section
// IV-F future-work item): trial side effects must be rolled back, the
// choice must be one of the three patterns, and the tuned operator must
// produce results identical to the serial reference.
#include <gtest/gtest.h>

#include "core/autotune.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::autotune_operator;
using jitfd::core::AutotuneReport;
using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

ir::Eq diffusion_eq(const TimeFunction& u) {
  return ir::Eq(u.forward(),
                sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()));
}

TEST(Autotune, SerialGridSkipsTrialsAndUsesNoComm) {
  const Grid g({8, 8}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  AutotuneReport report;
  auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                              &report);
  EXPECT_EQ(op->options().mode, ir::MpiMode::None);
  EXPECT_TRUE(report.seconds.empty());
  op->apply({.time_m = 0, .time_M = 0, .scalars = {{"dt", 1e-3}}});
}

TEST(Autotune, TrialsAllPatternsAndRestoresData) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    const std::vector<float> before(u.raw_storage().begin(),
                                    u.raw_storage().end());
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    // All three patterns were measured.
    ASSERT_EQ(report.seconds.size(), 3U);
    EXPECT_EQ(report.trial_steps, 2);
    EXPECT_GT(report.seconds.at(ir::MpiMode::Basic), 0.0);
    EXPECT_TRUE(op->options().mode == ir::MpiMode::Basic ||
                op->options().mode == ir::MpiMode::Diagonal ||
                op->options().mode == ir::MpiMode::Full);
    // The winner is the pattern with the smallest measured time.
    for (const auto& [mode, secs] : report.seconds) {
      EXPECT_GE(secs, report.seconds.at(op->options().mode));
    }
    // Trial side effects were rolled back.
    const std::vector<float> after(u.raw_storage().begin(),
                                   u.raw_storage().end());
    EXPECT_EQ(before, after);
    // Every rank agrees on the winner (timings were max-reduced).
    std::vector<std::int64_t> mode_id{static_cast<int>(op->options().mode)};
    std::vector<std::int64_t> mode_max = mode_id;
    comm.allreduce(std::span<std::int64_t>(mode_max), smpi::ReduceOp::Max);
    EXPECT_EQ(mode_id[0], mode_max[0]);
  });
}

TEST(Autotune, TrialsExchangeDepthsJointlyWithPatterns) {
  // With halos deep enough for depth 4, the trial grid covers
  // {basic, diagonal, full} x {1, 2, 4} and the winner carries both the
  // pattern and the depth into the returned operator.
  jitfd::grid::Function::set_default_exchange_depth(4);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    // Per-pattern summary stays 3 rows (best over depths and tiles)...
    ASSERT_EQ(report.seconds.size(), 3U);
    // ...and the full grid ran 18 trials: {basic, diagonal, full} x
    // {1, 2, 4} x {untiled, {4, 0}} — nothing clamped here (the 16x16
    // grid over a 2x2 topology admits a 4-row outer tile).
    EXPECT_EQ(report.seconds_by_depth.size(), 18U);
    EXPECT_TRUE(report.skipped.empty());
    for (const auto& [key, secs] : report.seconds_by_depth) {
      EXPECT_GT(secs, 0.0);
      EXPECT_LE(report.seconds.at(std::get<0>(key)), secs);
    }
    EXPECT_TRUE(report.best_depth == 1 || report.best_depth == 2 ||
                report.best_depth == 4);
    EXPECT_EQ(op->options().exchange_depth, report.best_depth);
    EXPECT_EQ(op->options().mode, report.best);
    EXPECT_EQ(op->options().tile, report.best_tile);
    EXPECT_EQ(report.seconds_by_depth.at(
                  {report.best, report.best_depth, report.best_tile}),
              report.seconds.at(report.best));
    // Every rank agrees on the winning depth.
    std::vector<std::int64_t> depth{report.best_depth};
    std::vector<std::int64_t> depth_max = depth;
    comm.allreduce(std::span<std::int64_t>(depth_max), smpi::ReduceOp::Max);
    EXPECT_EQ(depth[0], depth_max[0]);
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(Autotune, ClampedDepthsAreSkippedNotDuplicated) {
  // Default halo capacity (depth 1 allocation, space order 2) admits
  // depth 2 but not depth 4: the depth-4 trials must be skipped as
  // duplicates — with a recorded reason — leaving a 3x2x2 grid.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    EXPECT_EQ(report.seconds_by_depth.size(), 12U);
    for (const auto& [key, secs] : report.seconds_by_depth) {
      EXPECT_NE(std::get<1>(key), 4) << "clamped depth was trialled";
    }
    // The depth-4 requests surface in `skipped` with the clamp reason.
    EXPECT_EQ(report.skipped.size(), 6U);
    for (const auto& [key, reason] : report.skipped) {
      EXPECT_EQ(std::get<1>(key), 4);
      EXPECT_FALSE(reason.empty());
    }
    EXPECT_NE(report.best_depth, 4);
    (void)op;
  });
}

TEST(Autotune, TunedOperatorMatchesSerialReference) {
  const std::int64_t n = 12;
  const int steps = 4;
  const double dt = 1e-3;
  std::vector<float> expected;
  {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{n - 1, n - 1}, 1.0F);
    Operator op({diffusion_eq(u)});
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    expected = u.gather(steps % 2);
  }
  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{n - 1, n - 1}, 1.0F);
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", dt}}, 0, 2);
    op->apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    const auto got = u.gather(steps % 2);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6) << "at " << i;
      }
    }
  });
}

}  // namespace
