// Tests for the communication-pattern autotuner (the paper's Section
// IV-F future-work item): trial side effects must be rolled back, the
// choice must be one of the three patterns, and the tuned operator must
// produce results identical to the serial reference. The attributed
// objective adds a pure decision kernel (choose_attributed on synthetic
// scores), env-driven objective resolution, and a constructed-imbalance
// run that must pin the delayed rank in every trial's score and
// recommend a rebalance.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/autotune.h"
#include "grid/function.h"
#include "obs/json_check.h"
#include "obs/trace.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::AnalysisScore;
using jitfd::core::autotune_operator;
using jitfd::core::AttributedChoice;
using jitfd::core::AutotuneReport;
using jitfd::core::choose_attributed;
using jitfd::core::Objective;
using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;
namespace sym = jitfd::sym;

bool obs_built() {
  obs::set_enabled(true);
  const bool on = obs::enabled();
  obs::set_enabled(false);
  return on;
}

// setenv/unsetenv wrapper that restores on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

ir::Eq diffusion_eq(const TimeFunction& u) {
  return ir::Eq(u.forward(),
                sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()));
}

TEST(Autotune, SerialGridSkipsTrialsAndUsesNoComm) {
  const Grid g({8, 8}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  AutotuneReport report;
  auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                              &report);
  EXPECT_EQ(op->options().mode, ir::MpiMode::None);
  EXPECT_TRUE(report.seconds.empty());
  // The decision trail is never empty, even without trials.
  EXPECT_NE(report.why.find("serial"), std::string::npos) << report.why;
  op->apply({.time_m = 0, .time_M = 0, .scalars = {{"dt", 1e-3}}});
}

TEST(Autotune, TrialsAllPatternsAndRestoresData) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    const std::vector<float> before(u.raw_storage().begin(),
                                    u.raw_storage().end());
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    // All three patterns were measured.
    ASSERT_EQ(report.seconds.size(), 3U);
    EXPECT_EQ(report.trial_steps, 2);
    EXPECT_GT(report.seconds.at(ir::MpiMode::Basic), 0.0);
    EXPECT_TRUE(op->options().mode == ir::MpiMode::Basic ||
                op->options().mode == ir::MpiMode::Diagonal ||
                op->options().mode == ir::MpiMode::Full);
    // The winner is the pattern with the smallest measured time.
    for (const auto& [mode, secs] : report.seconds) {
      EXPECT_GE(secs, report.seconds.at(op->options().mode));
    }
    // Trial side effects were rolled back.
    const std::vector<float> after(u.raw_storage().begin(),
                                   u.raw_storage().end());
    EXPECT_EQ(before, after);
    // Every rank agrees on the winner (timings were max-reduced).
    std::vector<std::int64_t> mode_id{static_cast<int>(op->options().mode)};
    std::vector<std::int64_t> mode_max = mode_id;
    comm.allreduce(std::span<std::int64_t>(mode_max), smpi::ReduceOp::Max);
    EXPECT_EQ(mode_id[0], mode_max[0]);
  });
}

TEST(Autotune, TrialsExchangeDepthsJointlyWithPatterns) {
  // With halos deep enough for depth 4, the trial grid covers
  // {basic, diagonal, full} x {1, 2, 4} and the winner carries both the
  // pattern and the depth into the returned operator.
  jitfd::grid::Function::set_default_exchange_depth(4);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    // Per-pattern summary stays 3 rows (best over depths and tiles)...
    ASSERT_EQ(report.seconds.size(), 3U);
    // ...and the full grid ran 18 trials: {basic, diagonal, full} x
    // {1, 2, 4} x {untiled, {4, 0}} — nothing clamped here (the 16x16
    // grid over a 2x2 topology admits a 4-row outer tile).
    EXPECT_EQ(report.seconds_by_depth.size(), 18U);
    EXPECT_TRUE(report.skipped.empty());
    for (const auto& [key, secs] : report.seconds_by_depth) {
      EXPECT_GT(secs, 0.0);
      EXPECT_LE(report.seconds.at(std::get<0>(key)), secs);
    }
    EXPECT_TRUE(report.best_depth == 1 || report.best_depth == 2 ||
                report.best_depth == 4);
    EXPECT_EQ(op->options().exchange_depth, report.best_depth);
    EXPECT_EQ(op->options().mode, report.best);
    EXPECT_EQ(op->options().tile, report.best_tile);
    EXPECT_EQ(report.seconds_by_depth.at(
                  {report.best, report.best_depth, report.best_tile}),
              report.seconds.at(report.best));
    // Every rank agrees on the winning depth.
    std::vector<std::int64_t> depth{report.best_depth};
    std::vector<std::int64_t> depth_max = depth;
    comm.allreduce(std::span<std::int64_t>(depth_max), smpi::ReduceOp::Max);
    EXPECT_EQ(depth[0], depth_max[0]);
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(Autotune, ClampedDepthsAreSkippedNotDuplicated) {
  // Default halo capacity (depth 1 allocation, space order 2) admits
  // depth 2 but not depth 4: the depth-4 trials must be skipped as
  // duplicates — with a recorded reason — leaving a 3x2x2 grid.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    EXPECT_EQ(report.seconds_by_depth.size(), 12U);
    for (const auto& [key, secs] : report.seconds_by_depth) {
      EXPECT_NE(std::get<1>(key), 4) << "clamped depth was trialled";
    }
    // The depth-4 requests surface in `skipped` with the clamp reason.
    EXPECT_EQ(report.skipped.size(), 6U);
    for (const auto& [key, reason] : report.skipped) {
      EXPECT_EQ(std::get<1>(key), 4);
      EXPECT_FALSE(reason.empty());
    }
    EXPECT_NE(report.best_depth, 4);
    (void)op;
  });
}

// ---------------------------------------------------------------------
// Attributed objective: pure decision kernel on synthetic scores.
// ---------------------------------------------------------------------

AnalysisScore score(double wait, double redundant, double penalty,
                    int nranks, double ratio = 1.0, int critical = -1) {
  AnalysisScore s;
  s.wait_s = wait;
  s.redundant_s = redundant;
  s.imbalance_penalty_s = penalty;
  s.imbalance_ratio = ratio;
  s.critical_rank = critical;
  s.attributed_cost_s = (wait + redundant) / nranks + penalty;
  return s;
}

AutotuneReport::TrialKey key(ir::MpiMode mode, int depth) {
  return {mode, depth, {}};
}

TEST(Autotune, ChooseAttributedPicksMinCostAndNamesDecisiveTerm) {
  std::map<AutotuneReport::TrialKey, AnalysisScore> scores;
  // Basic waits hard; full hides the exchange: full must win on wait.
  scores[key(ir::MpiMode::Basic, 1)] = score(0.40, 0.0, 0.0, 4);
  scores[key(ir::MpiMode::Full, 1)] = score(0.04, 0.0, 0.0, 4);
  const AttributedChoice choice = choose_attributed(scores, 4);
  EXPECT_EQ(std::get<0>(choice.best), ir::MpiMode::Full);
  EXPECT_NE(choice.why.find("full"), std::string::npos) << choice.why;
  EXPECT_NE(choice.why.find("wait"), std::string::npos) << choice.why;

  // Deep halo trades wait for redundant ghost compute; when the
  // redundant term dominates the diff, the why must say so.
  scores.clear();
  scores[key(ir::MpiMode::Basic, 1)] = score(0.05, 0.0, 0.0, 4);
  scores[key(ir::MpiMode::Basic, 4)] = score(0.01, 0.30, 0.0, 4);
  const AttributedChoice depth_choice = choose_attributed(scores, 4);
  EXPECT_EQ(std::get<1>(depth_choice.best), 1);
  EXPECT_NE(depth_choice.why.find("redundant compute"), std::string::npos)
      << depth_choice.why;
}

TEST(Autotune, ChooseAttributedChargesHiddenImbalance) {
  // The overlap-vs-wall blind spot the attributed objective exists for:
  // "full" has the lower wall-style wait (it hides comm under compute)
  // but only because one rank is overloaded — its imbalance penalty
  // makes it the worse choice, and the why names the penalty.
  std::map<AutotuneReport::TrialKey, AnalysisScore> scores;
  scores[key(ir::MpiMode::Full, 1)] =
      score(0.01, 0.0, 0.20, 4, 3.0, 2);
  scores[key(ir::MpiMode::Basic, 1)] =
      score(0.10, 0.0, 0.01, 4, 1.1, -1);
  const AttributedChoice choice = choose_attributed(scores, 4);
  EXPECT_EQ(std::get<0>(choice.best), ir::MpiMode::Basic);
  EXPECT_NE(choice.why.find("imbalance penalty"), std::string::npos)
      << choice.why;

  // Empty and single-candidate inputs still explain themselves.
  EXPECT_FALSE(choose_attributed({}, 4).why.empty());
  std::map<AutotuneReport::TrialKey, AnalysisScore> one;
  one[key(ir::MpiMode::Diagonal, 1)] = score(0.1, 0.0, 0.0, 4);
  const AttributedChoice only = choose_attributed(one, 4);
  EXPECT_EQ(std::get<0>(only.best), ir::MpiMode::Diagonal);
  EXPECT_NE(only.why.find("only scored candidate"), std::string::npos)
      << only.why;
}

// ---------------------------------------------------------------------
// Attributed objective on real runs.
// ---------------------------------------------------------------------

TEST(Autotune, ObjectiveResolvesFromEnvRegistry) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  // JITFD_AUTOTUNE_OBJECTIVE drives the default (FromEnv) resolution;
  // the report records which objective actually scored the trials.
  ScopedEnv objective("JITFD_AUTOTUNE_OBJECTIVE", "attributed");
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report);
    EXPECT_EQ(report.objective, Objective::Attributed);
    EXPECT_FALSE(report.scores.empty());
    (void)op;
  });
}

TEST(Autotune, AttributedRunScoresEveryTrialAndExportsValidJson) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report, {}, Objective::Attributed);
    EXPECT_EQ(report.objective, Objective::Attributed);
    // Every measured trial carries a score; the trial set is unchanged
    // from the wall objective (12 trials, 6 depth-4 skips — the
    // objective must never change WHICH trials run).
    EXPECT_EQ(report.seconds_by_depth.size(), 12U);
    EXPECT_EQ(report.skipped.size(), 6U);
    EXPECT_EQ(report.scores.size(), report.seconds_by_depth.size());
    for (const auto& [k, sc] : report.scores) {
      EXPECT_GE(sc.attributed_cost_s, 0.0);
      EXPECT_GE(sc.imbalance_ratio, 1.0);
    }
    EXPECT_FALSE(report.why.empty());
    // The winner is the minimum attributed cost.
    const auto best_key = AutotuneReport::TrialKey{
        report.best, report.best_depth, report.best_tile};
    for (const auto& [k, sc] : report.scores) {
      EXPECT_GE(sc.attributed_cost_s,
                report.scores.at(best_key).attributed_cost_s);
    }
    // Rank agreement on the winner (scores were allreduced).
    std::vector<std::int64_t> mode_id{static_cast<int>(report.best)};
    std::vector<std::int64_t> mode_max = mode_id;
    comm.allreduce(std::span<std::int64_t>(mode_max), smpi::ReduceOp::Max);
    EXPECT_EQ(mode_id[0], mode_max[0]);
    // The machine-readable report validates, including per-trial scores.
    if (comm.rank() == 0) {
      const std::string json = jitfd::core::autotune_report_json(report);
      const obs::SchemaCheck check = obs::validate_autotune_json(json);
      EXPECT_TRUE(check.ok) << check.error << "\n" << json;
      EXPECT_EQ(check.items, 12);
    }
    (void)op;
  });
}

TEST(Autotune, InjectedImbalancePinsRankAndRecommendsRebalance) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  const int kSlowRank = 2;
  // 4 ms per step on a 16x16 problem: dominates real compute and an OS
  // timeslice, so every trial's score must blame the same rank even on
  // a loaded one-core box.
  ScopedEnv delay_rank("JITFD_DELAY_RANK", std::to_string(kSlowRank));
  ScopedEnv delay_us("JITFD_DELAY_US", "4000");
  smpi::run(4, [kSlowRank](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{12, 12}, 1.0F);
    AutotuneReport report;
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", 1e-3}}, 0, 2,
                                &report, {}, Objective::Attributed);
    ASSERT_FALSE(report.scores.empty());
    for (const auto& [k, sc] : report.scores) {
      EXPECT_EQ(sc.critical_rank, kSlowRank);
      EXPECT_GT(sc.imbalance_ratio, report.rebalance_threshold);
      EXPECT_GT(sc.imbalance_penalty_s, 0.0);
    }
    // The persistent skew surfaces as a rebalance recommendation with
    // the pinned rank, and the decision trail says so.
    EXPECT_TRUE(report.rebalance_recommended);
    EXPECT_EQ(report.rebalance_rank, kSlowRank);
    EXPECT_NE(report.why.find("rebalance recommended"), std::string::npos)
        << report.why;
    EXPECT_NE(report.why.find("rank " + std::to_string(kSlowRank)),
              std::string::npos)
        << report.why;
    (void)op;
    (void)comm;
  });
}

TEST(Autotune, ReportJsonRejectsMissingWhy) {
  AutotuneReport report;
  report.why = "wall objective: basic depth 1 untiled wins";
  report.seconds_by_depth[{ir::MpiMode::Basic, 1, {}}] = 0.5;
  const std::string good = jitfd::core::autotune_report_json(report);
  EXPECT_TRUE(obs::validate_autotune_json(good).ok)
      << obs::validate_autotune_json(good).error << "\n" << good;

  report.why.clear();
  const std::string bad = jitfd::core::autotune_report_json(report);
  const obs::SchemaCheck check = obs::validate_autotune_json(bad);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("why"), std::string::npos) << check.error;
}

TEST(Autotune, TunedOperatorMatchesSerialReference) {
  const std::int64_t n = 12;
  const int steps = 4;
  const double dt = 1e-3;
  std::vector<float> expected;
  {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{n - 1, n - 1}, 1.0F);
    Operator op({diffusion_eq(u)});
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    expected = u.gather(steps % 2);
  }
  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{n - 1, n - 1}, 1.0F);
    auto op = autotune_operator({diffusion_eq(u)}, {}, {{"dt", dt}}, 0, 2);
    op->apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    const auto got = u.gather(steps % 2);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6) << "at " << i;
      }
    }
  });
}

}  // namespace
