// Tests for the compiler pipeline: clustering/loop fission, flop
// reduction placement, halo detection with drop/merge/hoist, scheduling,
// and the three pattern lowerings (paper Section III).
#include <gtest/gtest.h>

#include "grid/function.h"
#include "ir/lower.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

// Count nodes of a given type in the IET.
int count_nodes(const ir::NodePtr& root, ir::NodeType type,
                ir::HaloCommKind kind = ir::HaloCommKind::Update,
                bool filter_kind = false) {
  int n = 0;
  const std::function<void(const ir::NodePtr&)> visit =
      [&](const ir::NodePtr& node) {
        if (node->type == type &&
            (!filter_kind || node->comm_kind == kind)) {
          ++n;
        }
        for (const ir::NodePtr& c : node->body) {
          visit(c);
        }
      };
  visit(root);
  return n;
}

ir::Eq diffusion_eq(const TimeFunction& u) {
  return ir::Eq(u.forward(),
                sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()));
}

TEST(Lowering, SerialDiffusionSchedule) {
  const Grid g({8, 8}, {1.0, 1.0});
  const TimeFunction u("u", g, 2, 1);
  ir::LoweringInfo info;
  ir::CompileOptions opts;
  const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);

  EXPECT_EQ(iet->type, ir::NodeType::Callable);
  EXPECT_EQ(count_nodes(iet, ir::NodeType::TimeLoop), 1);
  EXPECT_EQ(count_nodes(iet, ir::NodeType::Iteration), 2);  // x, y.
  EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloComm), 0);
  EXPECT_TRUE(info.spots.empty());
  // Invariants hoisted: at least the 1/h^2 factors.
  EXPECT_GE(info.invariants.size(), 1U);
  // Scalars include spacings and dt.
  EXPECT_NE(std::find(info.scalar_order.begin(), info.scalar_order.end(),
                      "dt"),
            info.scalar_order.end());
}

TEST(Lowering, ScheduleDumpShowsHaloSpotInsideTimeLoop) {
  // The paper's Listing 4/5: the halo exchange is scheduled inside the
  // time loop, before the stencil loop nest.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);
    EXPECT_NE(info.schedule_dump.find("Iteration time"), std::string::npos);
    EXPECT_NE(info.schedule_dump.find("HaloSpot"), std::string::npos);
    EXPECT_LT(info.schedule_dump.find("Iteration time"),
              info.schedule_dump.find("HaloSpot"));
    // Final IET has the spot lowered to an update call.
    EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloSpot), 0);
    EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloComm), 1);
    ASSERT_EQ(info.spots.size(), 1U);
    EXPECT_FALSE(info.spots[0].hoisted);
    EXPECT_EQ(info.spots[0].needs[0].widths, (std::vector<int>{1, 1}));
  });
}

TEST(Lowering, DeepHaloStripScheduleForDiffusion) {
  // exchange_depth 2 on diffusion: the time loop strides by 2, ONE
  // depth-2 exchange sits at the strip top, and the two sub-steps are
  // substep sections whose loop bounds carry the ghost extension —
  // sub-step 0 computes one point into the ghost zone, sub-step 1 none.
  jitfd::grid::Function::set_default_exchange_depth(2);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    opts.exchange_depth = 2;
    const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);

    EXPECT_EQ(info.exchange_depth, 2);
    EXPECT_TRUE(info.exchange_depth_clamp_reason.empty())
        << info.exchange_depth_clamp_reason;
    // One exchange per strip, widened to cover both sub-steps.
    EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloComm), 1);
    ASSERT_EQ(info.spots.size(), 1U);
    ASSERT_EQ(info.spots[0].needs.size(), 1U);
    EXPECT_EQ(info.spots[0].needs[0].time_offset, 0);
    EXPECT_EQ(info.spots[0].needs[0].widths, (std::vector<int>{2, 2}));

    // Structure: TimeLoop(stride 2) -> [HaloComm, substep t+0, substep t+1].
    const ir::NodePtr* time_loop = nullptr;
    for (const ir::NodePtr& c : iet->body) {
      if (c->type == ir::NodeType::TimeLoop) {
        time_loop = &c;
      }
    }
    ASSERT_NE(time_loop, nullptr);
    EXPECT_EQ((*time_loop)->time_stride, 2);
    ASSERT_EQ((*time_loop)->body.size(), 3U);
    EXPECT_EQ((*time_loop)->body[0]->type, ir::NodeType::HaloComm);
    for (const std::int64_t shift : {0, 1}) {
      const ir::NodePtr& sub = (*time_loop)->body[1 + shift];
      ASSERT_EQ(sub->type, ir::NodeType::Section);
      EXPECT_EQ(sub->name, "substep");
      EXPECT_EQ(sub->time_shift, shift);
      // The loop nest under the sub-step carries ghost extension
      // (k - 1 - j) * width: 1 for sub-step 0, 0 for sub-step 1. Each
      // sub-step also ends with the per-field health check so a check
      // inside a guarded sub-step is skipped along with its compute
      // (unless the obs layer is compiled out entirely).
#ifdef JITFD_OBS_DISABLED
      ASSERT_EQ(sub->body.size(), 1U);
#else
      ASSERT_EQ(sub->body.size(), 2U);
      EXPECT_EQ(sub->body[1]->type, ir::NodeType::HealthCheck);
#endif
      const ir::NodePtr& x_loop = sub->body[0];
      ASSERT_EQ(x_loop->type, ir::NodeType::Iteration);
      EXPECT_EQ(x_loop->lo.ghost, 1 - shift);
      EXPECT_EQ(x_loop->hi.ghost, 1 - shift);
    }
    if (comm.rank() == 0) {
      EXPECT_NE(info.schedule_dump.find("stride 2"), std::string::npos)
          << info.schedule_dump;
      EXPECT_NE(info.schedule_dump.find("substep"), std::string::npos);
    }
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(Lowering, DeepHaloDowngradesWhenHaloCapacityTooShallow) {
  // Space order 2 with halos allocated for depth 2 (4 points): depth 8
  // would need an 8-point-deep exchange, so the planner walks the
  // request down to the deepest feasible depth (4: one stencil radius
  // per sub-step fills the 4-point halo) and records why it could not
  // go deeper.
  jitfd::grid::Function::set_default_exchange_depth(2);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Diagonal;
    opts.exchange_depth = 8;
    (void)ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);
    EXPECT_EQ(info.exchange_depth, 4);
    EXPECT_FALSE(info.exchange_depth_clamp_reason.empty());
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(Lowering, DeepHaloClampsOnSparseOps) {
  // Sparse injections update owned points only; ghost-zone recompute
  // would miss them, so any sparse op forces depth 1.
  jitfd::grid::Function::set_default_exchange_depth(4);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    opts.exchange_depth = 4;
    (void)ir::lower_to_iet({diffusion_eq(u)}, g, opts,
                           {ir::SparseOpDesc{0}}, info);
    EXPECT_EQ(info.exchange_depth, 1);
    EXPECT_NE(info.exchange_depth_clamp_reason.find("sparse"),
              std::string::npos)
        << info.exchange_depth_clamp_reason;
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(Lowering, CoupledSystemSplitsIntoTwoClusters) {
  // v is updated from tau and tau from the *new* v at nonzero offsets:
  // the flow dependence forces loop fission, and the second cluster needs
  // a halo exchange of v at t+1.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction v("v", g, 4, 1);
    const TimeFunction tau("tau", g, 4, 1);
    const sym::Ex dt = jitfd::grid::dt_symbol();

    const ir::Eq eq1(v.forward(), v.now() + dt * tau.dx(0));
    const sym::Ex v_new_dx = sym::diff(v.forward(), 0, 1, 4);
    const ir::Eq eq2(tau.forward(), tau.now() + dt * v_new_dx);

    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    const auto iet = ir::lower_to_iet({eq1, eq2}, g, opts, {}, info);

    // Two loop nests (two clusters), each with a preceding halo update:
    // tau@t for cluster 1, v@t+1 for cluster 2.
    EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloComm), 2);
    ASSERT_EQ(info.spots.size(), 2U);
    EXPECT_EQ(info.spots[0].needs[0].field_id, tau.field_id().id);
    EXPECT_EQ(info.spots[0].needs[0].time_offset, 0);
    EXPECT_EQ(info.spots[1].needs[0].field_id, v.field_id().id);
    EXPECT_EQ(info.spots[1].needs[0].time_offset, 1);
  });
}

TEST(Lowering, PointwiseCoupledEquationsStayFused) {
  // A second equation reading the first's result only at the iteration
  // point carries no cross-point dependence: one cluster, one nest.
  const Grid g({8, 8}, {1.0, 1.0});
  const TimeFunction a("a", g, 2, 1);
  const TimeFunction b("b", g, 2, 1);
  const ir::Eq eq1(a.forward(), a.now() + 1);
  const ir::Eq eq2(b.forward(), a.forward() * 2);
  ir::LoweringInfo info;
  const auto iet = ir::lower_to_iet({eq1, eq2}, g, {}, {}, info);
  EXPECT_EQ(count_nodes(iet, ir::NodeType::Iteration), 2);  // One x-y nest.
}

TEST(Lowering, ParameterFieldExchangeIsHoisted) {
  // A time-invariant field read at offsets (the TTI trig-coefficient
  // pattern) is exchanged once, before the time loop.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    const Function c("c", g, 2);
    // rhs reads c at x+-1 through a derivative of a product.
    const sym::Ex rhs = u.now() + sym::diff(c() * u.now(), 0, 1, 2);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    const auto iet = ir::lower_to_iet({ir::Eq(u.forward(), rhs)}, g, opts, {},
                                      info);
    ASSERT_EQ(info.spots.size(), 2U);
    // One hoisted spot for c, one per-timestep spot for u.
    const auto& hoisted = info.spots[0].hoisted ? info.spots[0]
                                                : info.spots[1];
    const auto& cyclic = info.spots[0].hoisted ? info.spots[1]
                                               : info.spots[0];
    EXPECT_TRUE(hoisted.hoisted);
    EXPECT_EQ(hoisted.needs[0].field_id, c.field_id().id);
    EXPECT_FALSE(cyclic.hoisted);
    EXPECT_EQ(cyclic.needs[0].field_id, u.field_id().id);
    // The hoisted update call sits before the time loop in the IET.
    ASSERT_GE(iet->body.size(), 2U);
    bool seen_hoisted_before_loop = false;
    for (const auto& n : iet->body) {
      if (n->type == ir::NodeType::HaloComm) {
        seen_hoisted_before_loop = true;
      }
      if (n->type == ir::NodeType::TimeLoop) {
        break;
      }
    }
    EXPECT_TRUE(seen_hoisted_before_loop);
  });
}

TEST(Lowering, RedundantExchangeIsDropped) {
  // Two clusters read u@t at offsets but nothing writes u@t in between:
  // the second HaloSpot must be dropped (paper Section III-g).
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 2, 1);
    const TimeFunction a("a", g, 2, 1);
    const TimeFunction b("b", g, 2, 1);
    // Both write different fields from u's laplacian; the a-write forces
    // fission only if a dependence exists — force two clusters via
    // reading a.forward at offsets in eq2.
    const ir::Eq eq1(a.forward(), u.laplace());
    const ir::Eq eq2(b.forward(),
                     u.laplace() + sym::diff(a.forward(), 0, 1, 2));
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    ir::lower_to_iet({eq1, eq2}, g, opts, {}, info);
    // Spot 1: u@t (+ nothing else); spot 2: a@t+1 only — u@t was dropped.
    ASSERT_EQ(info.spots.size(), 2U);
    EXPECT_EQ(info.spots[0].needs.size(), 1U);
    EXPECT_EQ(info.spots[0].needs[0].field_id, u.field_id().id);
    ASSERT_EQ(info.spots[1].needs.size(), 1U);
    EXPECT_EQ(info.spots[1].needs[0].field_id, a.field_id().id);

    // Ablation: with halo_opt off, the second cluster re-exchanges u.
    ir::LoweringInfo info2;
    opts.halo_opt = false;
    ir::lower_to_iet({eq1, eq2}, g, opts, {}, info2);
    ASSERT_EQ(info2.spots.size(), 2U);
    EXPECT_EQ(info2.spots[1].needs.size(), 2U);
  });
}

TEST(Lowering, FullModeSplitsCoreAndRemainder) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    const TimeFunction u("u", g, 4, 1);
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Full;
    const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);

    EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloComm, ir::HaloCommKind::Start,
                          true),
              1);
    EXPECT_EQ(count_nodes(iet, ir::NodeType::HaloComm, ir::HaloCommKind::Wait,
                          true),
              1);
    EXPECT_EQ(count_nodes(iet, ir::NodeType::Section), 2);  // core+remainder.
    // Remainder: 2 slabs per decomposed dimension -> 4 nests of 2 loops,
    // plus the core nest of 2 loops.
    EXPECT_EQ(count_nodes(iet, ir::NodeType::Iteration), 2 + 4 * 2);
    // The dump shows start before core and wait before remainder.
    const std::string s = ir::to_debug_string(iet);
    EXPECT_LT(s.find("HaloUpdateStart"), s.find("Section core"));
    EXPECT_LT(s.find("Section core"), s.find("HaloWaitCall"));
    EXPECT_LT(s.find("HaloWaitCall"), s.find("Section remainder"));
  });
}

TEST(Lowering, FlopReductionLowersOperationCount) {
  const Grid g({16, 16}, {1.0, 1.0});
  const TimeFunction u("u", g, 8, 2);
  const Function m("m", g, 8);
  const sym::Ex eq = m() * u.dt2() - u.laplace();
  const ir::Eq update(u.forward(), sym::solve(eq, sym::Ex(0), u.forward()));

  auto flops_of = [&](bool reduce) {
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.flop_reduce = reduce;
    const auto iet = ir::lower_to_iet({update}, g, opts, {}, info);
    // Sum flops of all innermost statements (temps + stores).
    int flops = 0;
    const std::function<void(const ir::NodePtr&)> visit =
        [&](const ir::NodePtr& n) {
          if (n->type == ir::NodeType::Expression) {
            flops += sym::count_flops(n->value);
          }
          for (const auto& c : n->body) {
            visit(c);
          }
        };
    // Only count inside the time loop (invariants are amortized).
    for (const auto& top : iet->body) {
      if (top->type == ir::NodeType::TimeLoop) {
        visit(top);
      }
    }
    return flops;
  };

  EXPECT_LT(flops_of(true), flops_of(false));
}

TEST(Lowering, TilingWrapsOuterLoopInBlockLoop) {
  const Grid g({32, 32}, {1.0, 1.0});
  const TimeFunction u("u", g, 2, 1);
  ir::LoweringInfo info;
  ir::CompileOptions opts;
  opts.tile = {8, 0};
  const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);
  EXPECT_EQ(info.tile, (std::vector<std::int64_t>{8, 0}));
  EXPECT_TRUE(info.tile_clamp_reason.empty()) << info.tile_clamp_reason;
  bool outer_tiled = false;
  bool inner_untiled = true;
  const std::function<void(const ir::NodePtr&)> visit =
      [&](const ir::NodePtr& n) {
        if (n->type == ir::NodeType::BlockLoop) {
          if (n->dim == 0 && n->tile == 8) {
            outer_tiled = true;
            // The tile loop owns the parallel annotation; its enclosed
            // Iteration over the same dim must exist (window execution).
            EXPECT_TRUE(n->props.parallel);
            bool has_dim0_iter = false;
            const std::function<void(const ir::NodePtr&)> scan =
                [&](const ir::NodePtr& c) {
                  if (c->type == ir::NodeType::Iteration && c->dim == 0) {
                    has_dim0_iter = true;
                  }
                  for (const auto& cc : c->body) {
                    scan(cc);
                  }
                };
            for (const auto& c : n->body) {
              scan(c);
            }
            EXPECT_TRUE(has_dim0_iter);
          }
          if (n->dim == 1) {
            inner_untiled = false;
          }
        }
        for (const auto& c : n->body) {
          visit(c);
        }
      };
  visit(iet);
  EXPECT_TRUE(outer_tiled);
  EXPECT_TRUE(inner_untiled);
}

TEST(Lowering, TileClampsInnermostAndOversized) {
  const Grid g({32, 16}, {1.0, 1.0});
  const TimeFunction u("u", g, 2, 1);
  ir::LoweringInfo info;
  ir::CompileOptions opts;
  // Innermost stays contiguous for SIMD; 64 >= the dim-0 extent.
  opts.tile = {64, 4};
  const auto iet = ir::lower_to_iet({diffusion_eq(u)}, g, opts, {}, info);
  (void)iet;
  EXPECT_EQ(info.tile, (std::vector<std::int64_t>{0, 0}));
  EXPECT_FALSE(info.tile_clamp_reason.empty());
}

TEST(Lowering, RejectsReservedSymbolNamesAndDuplicateFieldNames) {
  const Grid g({8, 8}, {1.0, 1.0});
  const TimeFunction u("dup", g, 2, 1);
  ir::LoweringInfo info;
  // A user symbol in the compiler's temp namespace (r0, r1, ...).
  EXPECT_THROW(ir::lower_to_iet({ir::Eq(u.forward(),
                                        u.now() * sym::symbol("r7"))},
                                g, {}, {}, info),
               std::invalid_argument);
  // Two distinct fields sharing one name would collide in generated C.
  const TimeFunction u2("dup", g, 2, 1);
  ir::LoweringInfo info2;
  EXPECT_THROW(
      ir::lower_to_iet({ir::Eq(u.forward(), u2.now() + 1)}, g, {}, {}, info2),
      std::invalid_argument);
  // User symbols in the runtime's reserved prefix would collide with
  // generated health/observability plumbing.
  ir::LoweringInfo info_res;
  EXPECT_THROW(
      ir::lower_to_iet(
          {ir::Eq(u.forward(), u.now() * sym::symbol("jitfd_foo"))}, g, {},
          {}, info_res),
      std::invalid_argument);
  // Symbols that merely start with 'r' are fine. The user scalar comes
  // first; lowering appends the reserved health-interval scalar (absent
  // when the obs layer is compiled out).
  ir::LoweringInfo info3;
  ir::lower_to_iet({ir::Eq(u.forward(), u.now() * sym::symbol("rho"))}, g, {},
                   {}, info3);
#ifdef JITFD_OBS_DISABLED
  ASSERT_EQ(info3.scalar_order.size(), 1U);
  EXPECT_EQ(info3.scalar_order[0], "rho");
#else
  ASSERT_EQ(info3.scalar_order.size(), 2U);
  EXPECT_EQ(info3.scalar_order[0], "rho");
  EXPECT_EQ(info3.scalar_order[1], ir::kHealthIntervalScalar);
#endif
}

TEST(Lowering, UndecomposedDimensionNeedsNoExchange) {
  // topology (4,1): reads at y-offsets only cross no rank boundary.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm, {4, 1});
    const TimeFunction u("u", g, 2, 1);
    const sym::Ex rhs = u.now() + sym::diff(u.now(), 1, 2, 2);  // d2/dy2.
    ir::LoweringInfo info;
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    ir::lower_to_iet({ir::Eq(u.forward(), rhs)}, g, opts, {}, info);
    EXPECT_TRUE(info.spots.empty());
  });
}

}  // namespace
