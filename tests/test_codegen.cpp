// Code-generation tests: structure of the emitted C (the paper's
// Listing 11 analogue), OpenACC variant, and JIT-vs-interpreter
// functional equivalence.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "codegen/jit.h"
#include "core/operator.h"
#include "grid/function.h"
#include "models/tti.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

bool have_cc() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

Operator diffusion_operator(const Grid& /*grid*/, TimeFunction& u,
                            ir::CompileOptions opts = {}) {
  return Operator({ir::Eq(
      u.forward(), sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward()))},
                  opts);
}

TEST(Codegen, DiffusionKernelStructureMatchesListing11) {
  // The paper's Listing 11: hoisted reciprocal temps, a modulo-indexed
  // time loop, aligned accesses u[t][x + halo][y + halo], and the stencil
  // assignment built from r-temps.
  const Grid g({4, 4}, {2.0, 2.0});
  TimeFunction u("u", g, 2, 1);
  Operator op = diffusion_operator(g, u);
  const std::string& code = op.ccode();

  // Hoisted invariants (r0 = 1/dt-like and the 1/h^2 factors).
  EXPECT_NE(code.find("const float r0"), std::string::npos) << code;
  // Time loop and modulo buffer indices for a 2-buffer field.
  EXPECT_NE(code.find("for (long time = time_m; time <= time_M; time += 1)"),
            std::string::npos);
  EXPECT_NE(code.find("(time + 2) % 2"), std::string::npos);
  EXPECT_NE(code.find("(time + 3) % 2"), std::string::npos);
  // Access alignment: SDO 2 => halo 2, so the write is u[...][x + 2][y + 2].
  EXPECT_NE(code.find("[x + 2][y + 2] ="), std::string::npos) << code;
  // OpenMP annotations on the loop nest.
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(code.find("#pragma omp simd"), std::string::npos);
  // No communication calls on a serial grid.
  EXPECT_EQ(code.find("ops->update"), std::string::npos);
}

TEST(Codegen, BasicModeEmitsHaloUpdateInsideTimeLoop) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    Operator op = diffusion_operator(g, u, opts);
    const std::string& code = op.ccode();
    const auto loop_pos =
        code.find("for (long time = time_m; time <= time_M; time += 1)");
    const auto update_pos = code.find("ops->update(hctx, 0, time);");
    ASSERT_NE(loop_pos, std::string::npos);
    ASSERT_NE(update_pos, std::string::npos);
    EXPECT_LT(loop_pos, update_pos);
  });
}

TEST(Codegen, FullModeEmitsStartCoreWaitRemainderAndProgress) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({32, 32}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Full;
    opts.tile = {8, 0};
    Operator op = diffusion_operator(g, u, opts);
    const std::string& code = op.ccode();
    const auto start = code.find("ops->start(hctx, 0, time);");
    const auto core = code.find("/* section: core */");
    const auto progress = code.find("ops->progress(hctx);");
    const auto wait = code.find("ops->wait(hctx, 0);");
    const auto remainder = code.find("/* section: remainder */");
    ASSERT_NE(start, std::string::npos) << code;
    ASSERT_NE(progress, std::string::npos);
    EXPECT_LT(start, core);
    EXPECT_LT(core, progress);
    EXPECT_LT(progress, wait);
    EXPECT_LT(wait, remainder);
  });
}

TEST(Codegen, DeepHaloEmitsStripLoopWithGuardedSubSteps) {
  // exchange_depth 2: the time loop strides by 2, one exchange happens
  // at the strip top, and each sub-step is a guarded block with its own
  // `time` constant (the last strip may be partial).
  jitfd::grid::Function::set_default_exchange_depth(2);
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    opts.exchange_depth = 2;
    Operator op = diffusion_operator(g, u, opts);
    ASSERT_EQ(op.info().exchange_depth, 2)
        << op.info().exchange_depth_clamp_reason;
    const std::string& code = op.ccode();
    const auto strip = code.find(
        "for (long strip_t = time_m; strip_t <= time_M; strip_t += 2)");
    const auto update = code.find("ops->update(hctx, 0, time);");
    const auto sub0 = code.find("/* sub-step 0 */");
    const auto sub1 = code.find("/* sub-step 1 */");
    const auto guard = code.find("if (strip_t + 1 <= time_M)");
    ASSERT_NE(strip, std::string::npos) << code;
    ASSERT_NE(update, std::string::npos) << code;
    ASSERT_NE(sub0, std::string::npos) << code;
    ASSERT_NE(sub1, std::string::npos) << code;
    ASSERT_NE(guard, std::string::npos) << code;
    EXPECT_LT(strip, update);
    EXPECT_LT(update, sub0);
    EXPECT_LT(sub0, sub1);
    // Sub-step 0 is unguarded (the strip exists, so its first step does);
    // the guard belongs to sub-step 1.
    EXPECT_LT(sub1, guard);
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

TEST(CodegenJit, DeepHaloJitMatchesPerStepInterpreter) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  // The strided strip loop emitted for exchange_depth 2 must produce the
  // same field as the per-step interpreter schedule, including a partial
  // final strip (5 steps at depth 2).
  const std::int64_t n = 16;
  const double dt = 1e-3;
  const int steps = 5;
  for (const ir::MpiMode mode : {ir::MpiMode::Basic, ir::MpiMode::Full}) {
    std::vector<float> expected;
    std::vector<float> got;
    for (const int depth : {1, 2}) {
      jitfd::grid::Function::set_default_exchange_depth(2);
      smpi::run(4, [&](smpi::Communicator& comm) {
        const Grid g({n, n}, {1.0, 1.0}, comm);
        TimeFunction u("u", g, 2, 1);
        u.fill_global_box(0, std::vector<std::int64_t>{n / 4, n / 4},
                          std::vector<std::int64_t>{n / 2, n / 2}, 1.0F);
        ir::CompileOptions opts;
        opts.mode = mode;
        opts.exchange_depth = depth;
        Operator op = diffusion_operator(g, u, opts);
        ASSERT_EQ(op.info().exchange_depth, depth)
            << op.info().exchange_depth_clamp_reason;
        const auto run = op.apply({.time_m = 0,
                                   .time_M = steps - 1,
                                   .scalars = {{"dt", dt}},
                                   .backend = depth == 1
                                       ? Operator::Backend::Interpret
                                       : Operator::Backend::Jit});
        const auto gathered = u.gather(steps % 2);
        if (comm.rank() == 0) {
          (depth == 1 ? expected : got) = gathered;
        }
      });
      jitfd::grid::Function::set_default_exchange_depth(1);
    }
    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(expected[i], got[i], 1e-6)
          << "mode " << ir::to_string(mode) << " at " << i;
    }
  }
}

TEST(Codegen, OpenAccVariantUsesAccPragmas) {
  const Grid g({8, 8, 8}, {1.0, 1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  ir::CompileOptions opts;
  opts.lang = ir::Lang::OpenAcc;
  Operator op = diffusion_operator(g, u, opts);
  const std::string& code = op.ccode();
  EXPECT_NE(code.find("#pragma acc parallel loop collapse(3)"),
            std::string::npos)
      << code;
  EXPECT_EQ(code.find("#pragma omp"), std::string::npos);
}

TEST(Codegen, TiledLoopsEmitBlockLoopAndWindowIntersection) {
  const Grid g({32, 32}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  ir::CompileOptions opts;
  opts.tile = {8, 0};
  Operator op = diffusion_operator(g, u, opts);
  const std::string& code = op.ccode();
  EXPECT_NE(code.find("for (long xb = 0; xb < 32; xb += 8)"),
            std::string::npos)
      << code;
  // The enclosed x loop runs the intersection with the active window.
  EXPECT_NE(code.find("xb + 8 < 32 ? xb + 8 : 32"), std::string::npos)
      << code;
}

TEST(CodegenJit, JitMatchesInterpreterOnDiffusion) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  const std::int64_t n = 12;
  const double dt = 1e-3;
  auto run = [&](Operator::Backend backend) {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 4, 1);
    const std::vector<std::int64_t> lo{2, 3};
    const std::vector<std::int64_t> hi{7, 9};
    u.fill_global_box(0, lo, hi, 1.0F);
    Operator op = diffusion_operator(g, u);
    op.set_default_backend(backend);
    const auto run = op.apply(
        {.time_m = 0, .time_M = 4, .scalars = {{"dt", dt}}});
    EXPECT_EQ(run.backend, backend);
    if (backend == Operator::Backend::Jit) {
      // Either a fresh external-compiler build took measurable time, or
      // the identical source was already in the compile cache.
      EXPECT_TRUE(run.jit_cache_hit || run.jit_compile_seconds > 0.0);
    }
    return u.gather(5 % 2);
  };
  const auto interp = run(Operator::Backend::Interpret);
  const auto jit = run(Operator::Backend::Jit);
  ASSERT_EQ(interp.size(), jit.size());
  for (std::size_t i = 0; i < interp.size(); ++i) {
    ASSERT_NEAR(interp[i], jit[i], 1e-6) << "at " << i;
  }
}

TEST(CodegenJit, JitRunsDistributedBasicMode) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  const std::int64_t n = 12;
  const double dt = 1e-3;
  // Serial interpreter reference.
  std::vector<float> expected;
  {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    const std::vector<std::int64_t> lo{1, 1};
    const std::vector<std::int64_t> hi{n - 1, n - 1};
    u.fill_global_box(0, lo, hi, 1.0F);
    Operator op = diffusion_operator(g, u);
    op.apply({.time_m = 0, .time_M = 3, .scalars = {{"dt", dt}}});
    expected = u.gather(0);
  }
  smpi::run(2, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    const std::vector<std::int64_t> lo{1, 1};
    const std::vector<std::int64_t> hi{n - 1, n - 1};
    u.fill_global_box(0, lo, hi, 1.0F);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    Operator op = diffusion_operator(g, u, opts);
    op.set_default_backend(Operator::Backend::Jit);
    op.apply({.time_m = 0, .time_M = 3, .scalars = {{"dt", dt}}});
    const auto got = u.gather(0);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6) << "at " << i;
      }
    }
  });
}

TEST(Codegen, ThreeDimensionalEmissionIndexesAllDims) {
  const Grid g({6, 7, 8}, {1.0, 1.0, 1.0});
  TimeFunction u("u", g, 2, 1);
  Operator op = diffusion_operator(g, u);
  const std::string& code = op.ccode();
  EXPECT_NE(code.find("for (long z = 0; z < 8; z += 1)"), std::string::npos)
      << code;
  EXPECT_NE(code.find("[x + 2][y + 2][z + 2] ="), std::string::npos);
  // VLA-pointer cast bakes the padded extents of the two inner dims.
  EXPECT_NE(code.find("[11][12]"), std::string::npos) << code;
}

TEST(Codegen, EnvVarSelectsPattern) {
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    ::setenv("JITFD_MPI", "diag", 1);
    Operator op = diffusion_operator(g, u);  // Mode None requested.
    ::unsetenv("JITFD_MPI");
    EXPECT_EQ(op.options().mode, ir::MpiMode::Diagonal);
  });
  EXPECT_EQ(ir::mode_from_string("full"), ir::MpiMode::Full);
  EXPECT_EQ(ir::mode_from_string("1"), ir::MpiMode::Basic);
  EXPECT_THROW(ir::mode_from_string("bogus"), std::invalid_argument);
}

TEST(CodegenJit, TiledKernelMatchesUntiled) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  const std::int64_t n = 21;  // Not a multiple of the tile size.
  const double dt = 1e-3;
  auto run = [&](std::int64_t tile) {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{3, 5},
                      std::vector<std::int64_t>{15, 17}, 1.0F);
    ir::CompileOptions opts;
    if (tile > 0) {
      opts.tile = {tile, 0};
    }
    Operator op = diffusion_operator(g, u, opts);
    op.set_default_backend(Operator::Backend::Jit);
    op.apply({.time_m = 0, .time_M = 3, .scalars = {{"dt", dt}}});
    return u.gather(4 % 2);
  };
  const auto plain = run(0);
  const auto tiled = run(8);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i], tiled[i]) << "at " << i;
  }
}

TEST(CodegenJit, TtiKernelWithSqrtCompilesAndRuns) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  // TTI's sqrt(1 + 2*delta) exercises Call emission (sqrtf).
  const Grid g({16, 16}, {1.0, 1.0});
  jitfd::models::TtiModel model(g, 4);
  model.wavefield().fill_global_box(0, std::vector<std::int64_t>{7, 7},
                                    std::vector<std::int64_t>{9, 9}, 1e-3F);
  auto op = model.make_operator({});
  EXPECT_NE(op->ccode().find("sqrtf("), std::string::npos);
  // Interpreter reference.
  op->apply({.time_m = 0, .time_M = 3,
             .scalars = model.scalars(model.critical_dt())});
  const auto expected = model.wavefield().gather(4 % 3);

  const Grid g2({16, 16}, {1.0, 1.0});
  jitfd::models::TtiModel model2(g2, 4);
  model2.wavefield().fill_global_box(0, std::vector<std::int64_t>{7, 7},
                                     std::vector<std::int64_t>{9, 9}, 1e-3F);
  auto op2 = model2.make_operator({});
  op2->set_default_backend(Operator::Backend::Jit);
  op2->apply({.time_m = 0, .time_M = 3,
              .scalars = model2.scalars(model2.critical_dt())});
  const auto got = model2.wavefield().gather(4 % 3);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-7) << "at " << i;
  }
}

TEST(CodegenJit, OneDimensionalKernelCompiles) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  const Grid g({17}, {1.0});
  TimeFunction u("u", g, 2, 1);
  u.set_global(0, std::vector<std::int64_t>{8}, 1.0F);
  const sym::Ex pde = u.dt() - sym::diff(u.now(), 0, 2, 2);
  Operator op({ir::Eq(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()))});
  op.set_default_backend(Operator::Backend::Jit);
  op.apply({.time_m = 0, .time_M = 9, .scalars = {{"dt", 1e-3}}});
  const auto data = u.gather(10 % 2);
  double mass = 0.0;
  for (const float v : data) {
    mass += v;
  }
  EXPECT_NEAR(mass, 1.0, 1e-3);  // Diffusion conserves interior mass.
}

TEST(CodegenJit, PaddedFieldsIndexThroughTheFullLeftOffset) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  // padding > 0 shifts the data region by halo+padding; the generated
  // code must match the interpreter exactly.
  const std::int64_t n = 10;
  auto run = [&](Operator::Backend backend) {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1, /*padding=*/3);
    u.fill_global_box(0, std::vector<std::int64_t>{2, 2},
                      std::vector<std::int64_t>{8, 8}, 1.0F);
    Operator op = diffusion_operator(g, u);
    EXPECT_NE(op.ccode().find("[x + 5][y + 5]"), std::string::npos)
        << op.ccode();  // lpad = halo(2) + padding(3).
    op.set_default_backend(backend);
    op.apply({.time_m = 0, .time_M = 2, .scalars = {{"dt", 1e-3}}});
    return u.gather(3 % 2);
  };
  const auto interp = run(Operator::Backend::Interpret);
  const auto jit = run(Operator::Backend::Jit);
  for (std::size_t i = 0; i < interp.size(); ++i) {
    ASSERT_NEAR(interp[i], jit[i], 1e-6) << "at " << i;
  }
}

TEST(Operator, RejectsMixedGridsAndDeadFields) {
  const Grid g1({8, 8}, {1.0, 1.0});
  const Grid g2({8, 8}, {1.0, 1.0});
  TimeFunction u("u", g1, 2, 1);
  TimeFunction v("v", g2, 2, 1);
  EXPECT_THROW(Operator({ir::Eq(u.forward(), v.now() + 1)}),
               std::invalid_argument);

  sym::Ex dangling;
  {
    TimeFunction w("w", g1, 2, 1);
    dangling = w.forward();
  }  // w destroyed: the registry entry is gone.
  EXPECT_THROW(Operator({ir::Eq(dangling, sym::Ex(1))}),
               std::invalid_argument);
}

TEST(CodegenJit, CompileFailureSurfacesDiagnostics) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  EXPECT_THROW(jitfd::codegen::JitKernel("this is not C;", false),
               std::runtime_error);
}

TEST(CodegenJit, CompileCacheServesRepeatBuilds) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  // Salt the source so the first build is a guaranteed miss even against
  // a persistent $JITFD_CACHE_DIR left over from earlier runs.
  std::ostringstream src;
  src << "int kernel(float** f, const double* s, long m, long M, void* c,\n"
         "           const void* o) {\n"
         "  (void)f; (void)s; (void)m; (void)M; (void)c; (void)o;\n"
         "  return 7;\n"
         "}\n/* salt "
      << ::getpid() << '.'
      << std::chrono::system_clock::now().time_since_epoch().count()
      << " */\n";

  const std::uint64_t hits_before = jitfd::codegen::JitKernel::cache_hits();
  jitfd::codegen::JitKernel first(src.str(), false);
  EXPECT_FALSE(first.cache_hit());
  EXPECT_GT(first.compile_seconds(), 0.0);

  jitfd::codegen::JitKernel second(src.str(), false);
  EXPECT_TRUE(second.cache_hit());
  EXPECT_EQ(second.compile_seconds(), 0.0);
  EXPECT_GE(jitfd::codegen::JitKernel::cache_hits(), hits_before + 1);

  // The cached object is the same loadable kernel.
  EXPECT_EQ(second.run(nullptr, nullptr, 0, 0, nullptr, nullptr), 7);
}

TEST(CodegenJit, IdenticalOperatorsShareOneCompile) {
  if (!have_cc()) {
    GTEST_SKIP() << "no C compiler available";
  }
  const std::uint64_t misses_before =
      jitfd::codegen::JitKernel::cache_misses();
  auto build_and_run = [] {
    const Grid g({10, 10}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1);
    const std::vector<std::int64_t> lo{3, 3};
    const std::vector<std::int64_t> hi{7, 7};
    u.fill_global_box(0, lo, hi, 1.0F);
    Operator op = diffusion_operator(g, u);
    op.set_default_backend(Operator::Backend::Jit);
    const auto run = op.apply(
        {.time_m = 0, .time_M = 2, .scalars = {{"dt", 1e-3}}});
    return run.jit_cache_hit;
  };
  build_and_run();
  const bool second_hit = build_and_run();
  EXPECT_TRUE(second_hit);
  // At most one external-compiler invocation for the pair.
  EXPECT_LE(jitfd::codegen::JitKernel::cache_misses(), misses_before + 1);
}

}  // namespace
