// Cross-rank trace analysis, the metrics registry, the metrics/analysis
// JSON schema validators, and the perf-regression sentinel.
//
// The analyzer tests run on hand-built TraceData snapshots with exact
// nanosecond timestamps, so the wait-state split, overlap pairing and
// strip accounting are asserted to the nanosecond rather than within
// noise bands; the constructed-imbalance tests then drive the real
// interpreter with the env-gated per-rank delay hook and check the
// analyzer pins the slow rank across all three patterns and both
// exchange depths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/operator.h"
#include "grid/function.h"
#include "obs/analysis.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sentinel.h"
#include "obs/trace.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;
namespace sym = jitfd::sym;

// Whether the obs subsystem was compiled in (JITFD_OBS=ON). Under
// JITFD_OBS_DISABLED the run-based tests are vacuous; the synthetic
// analyzer tests and the sentinel tests still run (analyze() and
// sentinel_compare() are pure functions of their inputs).
bool obs_built() {
  obs::set_enabled(true);
  const bool on = obs::enabled();
  obs::set_enabled(false);
  return on;
}

obs::TraceData::Rec rec(const char* name, obs::Cat cat, int rank,
                        std::uint64_t t0, std::uint64_t t1,
                        std::int64_t a0 = 0, std::int32_t a1 = 0) {
  obs::TraceData::Rec r;
  r.name = name;
  r.cat = cat;
  r.rank = rank;
  r.t0_ns = t0;
  r.t1_ns = t1;
  r.a0 = a0;
  r.a1 = a1;
  return r;
}

constexpr double kNs = 1e-9;

// ---------------------------------------------------------------------
// Analyzer: synthetic snapshots with exact expectations.
// ---------------------------------------------------------------------

TEST(Analysis, EmptySnapshotYieldsZeroReport) {
  const obs::AnalysisReport rep = obs::analyze(obs::TraceData{});
  EXPECT_EQ(rep.nranks, 0);
  EXPECT_EQ(rep.steps, 0U);
  EXPECT_EQ(rep.matched_waits, 0U);
  EXPECT_EQ(rep.late_sender_culprit, -1);
  EXPECT_EQ(rep.overlap_efficiency, 0.0);
  // The empty report still exports schema-valid JSON.
  const obs::SchemaCheck check =
      obs::validate_analysis_json(obs::analysis_json(rep));
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.items, 4);
}

TEST(Analysis, LateSenderSplitIsExact) {
  // Rank 1 waits on rank 0 during [1000, 2000]; rank 0's matching send
  // runs [1500, 1600]. The receiver idled 500 ns before the send began
  // (late sender); the rest of the wait is transfer.
  obs::TraceData data;
  data.events.push_back(
      rec("halo.wait", obs::Cat::Wait, 1, 1000, 2000, 0, /*peer=*/0));
  data.events.push_back(
      rec("halo.send", obs::Cat::Send, 0, 1500, 1600, 64, /*peer=*/1));
  const obs::AnalysisReport rep = obs::analyze(data);

  EXPECT_EQ(rep.nranks, 2);
  EXPECT_EQ(rep.matched_waits, 1U);
  EXPECT_EQ(rep.unmatched_waits, 0U);
  EXPECT_NEAR(rep.late_sender_s, 500 * kNs, 1e-12);
  EXPECT_NEAR(rep.late_receiver_s, 0.0, 1e-12);
  EXPECT_NEAR(rep.transfer_s, 500 * kNs, 1e-12);
  EXPECT_EQ(rep.late_sender_culprit, 0);

  ASSERT_EQ(rep.rank_waits.size(), 2U);
  for (const obs::RankWaitStats& w : rep.rank_waits) {
    if (w.rank == 0) {
      EXPECT_NEAR(w.blamed_s, 500 * kNs, 1e-12);
      EXPECT_NEAR(w.late_sender_s, 0.0, 1e-12);
    } else {
      EXPECT_NEAR(w.late_sender_s, 500 * kNs, 1e-12);
      EXPECT_NEAR(w.blamed_s, 0.0, 1e-12);
    }
  }
}

TEST(Analysis, LateReceiverSplitIsExact) {
  // The send completed (buffered) at 200; the receiver only showed up
  // at 1000: the message waited 800 ns for the receiver, and the whole
  // 400 ns wait is transfer/completion, not sender's fault.
  obs::TraceData data;
  data.events.push_back(
      rec("halo.send", obs::Cat::Send, 0, 100, 200, 64, /*peer=*/1));
  data.events.push_back(
      rec("halo.wait", obs::Cat::Wait, 1, 1000, 1400, 0, /*peer=*/0));
  const obs::AnalysisReport rep = obs::analyze(data);

  EXPECT_EQ(rep.matched_waits, 1U);
  EXPECT_NEAR(rep.late_sender_s, 0.0, 1e-12);
  EXPECT_NEAR(rep.late_receiver_s, 800 * kNs, 1e-12);
  EXPECT_NEAR(rep.transfer_s, 400 * kNs, 1e-12);
  // No late-sender time anywhere: nobody to blame.
  EXPECT_EQ(rep.late_sender_culprit, -1);
}

TEST(Analysis, WaitsWithoutSendsCountAsUnmatched) {
  obs::TraceData data;
  data.events.push_back(
      rec("halo.wait", obs::Cat::Wait, 1, 0, 100, 0, /*peer=*/0));
  data.events.push_back(
      rec("halo.wait", obs::Cat::Wait, 1, 200, 300, 0, /*peer=*/0));
  data.events.push_back(
      rec("halo.send", obs::Cat::Send, 0, 10, 20, 64, /*peer=*/1));
  const obs::AnalysisReport rep = obs::analyze(data);
  EXPECT_EQ(rep.matched_waits, 1U);
  EXPECT_EQ(rep.unmatched_waits, 1U);
}

TEST(Analysis, OverlapEfficiencyFromStartFinishPairs) {
  // Async exchange on (rank 0, spot 0): start [0, 100], finish
  // [500, 600]. Window 600 ns, hidden gap 400 ns -> 2/3 efficiency.
  obs::TraceData data;
  data.events.push_back(
      rec("halo.start", obs::Cat::Halo, 0, 0, 100, 0, /*spot=*/0));
  data.events.push_back(
      rec("halo.finish", obs::Cat::Halo, 0, 500, 600, 0, /*spot=*/0));
  const obs::AnalysisReport rep = obs::analyze(data);
  EXPECT_EQ(rep.async_exchanges, 1U);
  EXPECT_NEAR(rep.overlap_window_s, 600 * kNs, 1e-12);
  EXPECT_NEAR(rep.overlap_hidden_s, 400 * kNs, 1e-12);
  EXPECT_NEAR(rep.overlap_efficiency, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(rep.exchanges, 1U);  // halo.start counts as one exchange.
}

TEST(Analysis, DeepHaloStripAccountingAndRedundancy) {
  // One rank, two 2-step strips. In each strip the first sub-step's
  // compute (300 ns, ghost-extended bounds) exceeds the second's
  // (200 ns): 100 ns of redundancy per strip.
  obs::TraceData data;
  data.events.push_back(rec("strip", obs::Cat::Run, 0, 0, 1000, 0));
  data.events.push_back(rec("step", obs::Cat::Run, 0, 0, 400, 0));
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 10, 310, 0));
  data.events.push_back(rec("step", obs::Cat::Run, 0, 500, 1000, 1));
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 510, 710, 1));
  data.events.push_back(rec("strip", obs::Cat::Run, 0, 1000, 2000, 1));
  data.events.push_back(rec("step", obs::Cat::Run, 0, 1000, 1400, 2));
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 1010, 1310, 2));
  data.events.push_back(rec("step", obs::Cat::Run, 0, 1500, 2000, 3));
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 1510, 1710, 3));
  const obs::AnalysisReport rep = obs::analyze(data);

  EXPECT_EQ(rep.steps, 4U);
  EXPECT_EQ(rep.strips, 2U);
  EXPECT_EQ(rep.exchange_depth, 2);
  EXPECT_EQ(rep.saved_exchanges, 2U);
  EXPECT_NEAR(rep.redundant_compute_s, 200 * kNs, 1e-12);
  // Per-step loads carried the timestep from compute a0.
  ASSERT_EQ(rep.step_loads.size(), 4U);
  EXPECT_EQ(rep.step_loads[0].step, 0);
  EXPECT_NEAR(rep.step_loads[0].max_compute_s, 300 * kNs, 1e-12);
}

TEST(Analysis, ImbalanceFindsCriticalRankPerStepAndOverall) {
  // Two ranks, one step: rank 1 computes 600 ns vs rank 0's 300 ns.
  obs::TraceData data;
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 0, 300, 0));
  data.events.push_back(rec("compute", obs::Cat::Compute, 1, 0, 600, 0));
  const obs::AnalysisReport rep = obs::analyze(data);

  EXPECT_EQ(rep.nranks, 2);
  EXPECT_NEAR(rep.max_compute_s, 600 * kNs, 1e-12);
  EXPECT_NEAR(rep.mean_compute_s, 450 * kNs, 1e-12);
  EXPECT_NEAR(rep.imbalance_ratio, 600.0 / 450.0, 1e-9);
  EXPECT_EQ(rep.critical_path_rank, 1);
  ASSERT_EQ(rep.step_loads.size(), 1U);
  EXPECT_EQ(rep.step_loads[0].critical_rank, 1);
  EXPECT_NEAR(rep.step_loads[0].max_compute_s, 600 * kNs, 1e-12);
  EXPECT_NEAR(rep.step_loads[0].mean_compute_s, 450 * kNs, 1e-12);
}

TEST(Analysis, RankLoadsExportedPerRankAndSorted) {
  // Three ranks with distinct compute: the report must carry one load
  // per rank, sorted by rank, with exact seconds — this is the feed for
  // Grid::plan_rebalance and the quickstart --rebalance loop.
  obs::TraceData data;
  data.events.push_back(rec("compute", obs::Cat::Compute, 2, 0, 900, 0));
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 0, 300, 0));
  data.events.push_back(rec("compute", obs::Cat::Compute, 1, 0, 600, 0));
  const obs::AnalysisReport rep = obs::analyze(data);
  ASSERT_EQ(rep.rank_loads.size(), 3U);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(rep.rank_loads[static_cast<std::size_t>(r)].rank, r);
  }
  EXPECT_NEAR(rep.rank_loads[0].compute_s, 300 * kNs, 1e-12);
  EXPECT_NEAR(rep.rank_loads[1].compute_s, 600 * kNs, 1e-12);
  EXPECT_NEAR(rep.rank_loads[2].compute_s, 900 * kNs, 1e-12);

  // The JSON export nests the per-rank loads inside "imbalance", and
  // the validator requires them.
  const std::string json = obs::analysis_json(rep);
  EXPECT_NE(json.find("\"ranks\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"compute_seconds\":"), std::string::npos) << json;
  EXPECT_TRUE(obs::validate_analysis_json(json).ok)
      << obs::validate_analysis_json(json).error;
}

TEST(Analysis, JitComputeDerivedFromRunUmbrellaMinusHalo) {
  // A JIT rank records no compute spans; its compute is the jit.run
  // umbrella (1000 ns) minus the nested halo umbrellas (150 ns).
  obs::TraceData data;
  data.events.push_back(rec("jit.run", obs::Cat::Run, 0, 0, 1000, 0));
  data.events.push_back(rec("halo.update", obs::Cat::Halo, 0, 100, 200, 0));
  data.events.push_back(rec("halo.update", obs::Cat::Halo, 0, 300, 350, 0));
  const obs::RunProfile prof = obs::profile_from(data);
  ASSERT_EQ(prof.ranks.size(), 1U);
  EXPECT_NEAR(prof.ranks[0].compute_s, 850 * kNs, 1e-12);
  EXPECT_EQ(prof.ranks[0].steps, 0U);  // No per-step spans in JIT runs.

  // The analyzer inherits the same attribution for its imbalance view.
  const obs::AnalysisReport rep = obs::analyze(data);
  EXPECT_NEAR(rep.max_compute_s, 850 * kNs, 1e-12);
  EXPECT_EQ(rep.critical_path_rank, 0);
  EXPECT_EQ(rep.exchanges, 2U);
}

TEST(Analysis, JsonExportValidatesAndCarriesSections) {
  obs::TraceData data;
  data.events.push_back(
      rec("halo.wait", obs::Cat::Wait, 1, 1000, 2000, 0, 0));
  data.events.push_back(
      rec("halo.send", obs::Cat::Send, 0, 1500, 1600, 64, 1));
  data.events.push_back(rec("compute", obs::Cat::Compute, 0, 0, 300, 0));
  const obs::AnalysisReport rep = obs::analyze(data);
  const std::string json = obs::analysis_json(rep);

  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err;
  const obs::SchemaCheck check = obs::validate_analysis_json(json);
  EXPECT_TRUE(check.ok) << check.error << "\n" << json;
  EXPECT_EQ(check.items, 4);
  EXPECT_NE(json.find("\"culprit_rank\": 0"), std::string::npos) << json;

  // The human digest names the culprit too.
  const std::string digest = obs::analysis_summary(rep);
  EXPECT_NE(digest.find("culprit rank 0"), std::string::npos) << digest;

  // Schema violations are rejected.
  EXPECT_FALSE(obs::validate_analysis_json("{\"analysis\": {}}").ok);
  EXPECT_FALSE(obs::validate_analysis_json("[1, 2]").ok);
}

// ---------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------

TEST(Metrics, KindMismatchThrows) {
  obs::metrics::counter("test.kind_probe");
  EXPECT_THROW(obs::metrics::gauge("test.kind_probe"), std::logic_error);
  EXPECT_THROW(obs::metrics::histogram("test.kind_probe"), std::logic_error);
  // Same-kind lookups return the same instrument.
  EXPECT_EQ(&obs::metrics::counter("test.kind_probe"),
            &obs::metrics::counter("test.kind_probe"));
}

TEST(Metrics, CounterAndGaugeGateOnEnabled) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::metrics::Counter& c = obs::metrics::counter("test.counter");
  obs::metrics::Gauge& g = obs::metrics::gauge("test.gauge");
  obs::metrics::set_enabled(false);
  c.add(5);
  g.set(2.5);
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(g.value(), 0.0);

  obs::metrics::set_enabled(true);
  c.add(5);
  c.add(2);
  g.set(2.5);
  EXPECT_EQ(c.value(), 7U);
  EXPECT_EQ(g.value(), 2.5);
  obs::metrics::set_enabled(false);

  // reset() zeroes values but keeps registrations (and their kinds).
  obs::metrics::reset();
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_THROW(obs::metrics::gauge("test.counter"), std::logic_error);
}

TEST(Metrics, HistogramBucketsAndBounds) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::metrics::Histogram& h = obs::metrics::histogram("test.hist");
  h.reset();
  obs::metrics::set_enabled(true);
  h.observe(0.5e-6);  // <= 1e-6: bucket 0.
  h.observe(1.5e-6);  // <= 2e-6: bucket 1.
  h.observe(1e9);     // Beyond every finite bound: last bucket.
  obs::metrics::set_enabled(false);

  EXPECT_EQ(h.count(), 3U);
  EXPECT_NEAR(h.sum(), 1e9 + 2e-6, 1.0);
  EXPECT_EQ(h.bucket(0), 1U);
  EXPECT_EQ(h.bucket(1), 1U);
  EXPECT_EQ(h.bucket(obs::metrics::Histogram::kBuckets - 1), 1U);

  EXPECT_DOUBLE_EQ(obs::metrics::Histogram::upper_bound(0), 1e-6);
  for (int i = 1; i < obs::metrics::Histogram::kBuckets - 1; ++i) {
    EXPECT_GT(obs::metrics::Histogram::upper_bound(i),
              obs::metrics::Histogram::upper_bound(i - 1));
  }
  EXPECT_TRUE(std::isinf(obs::metrics::Histogram::upper_bound(
      obs::metrics::Histogram::kBuckets - 1)));
  h.reset();
  EXPECT_EQ(h.count(), 0U);
}

TEST(Metrics, ExportsValidateInBothFormats) {
  obs::metrics::counter("test.export_counter");
  obs::metrics::gauge("test.export_gauge");
  obs::metrics::histogram("test.export_hist");

  const std::string json = obs::metrics::to_json();
  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err;
  const obs::SchemaCheck check = obs::validate_metrics_json(json);
  EXPECT_TRUE(check.ok) << check.error << "\n" << json;
  EXPECT_GE(check.items, 3);

  const std::string prom = obs::metrics::to_prometheus();
  EXPECT_NE(prom.find("# TYPE jitfd_test_export_counter counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE jitfd_test_export_gauge gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("jitfd_test_export_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("jitfd_test_export_hist_count"), std::string::npos);

  // Schema violations are rejected.
  EXPECT_FALSE(obs::validate_metrics_json("{\"metrics\": [{}]}").ok);
  EXPECT_FALSE(
      obs::validate_metrics_json(
          R"({"metrics": [{"name": "x", "type": "nonsense", "value": 1}]})")
          .ok);
}

TEST(Metrics, AnalysisReportExportsGauges) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::TraceData data;
  data.events.push_back(
      rec("halo.wait", obs::Cat::Wait, 1, 1000, 2000, 0, 0));
  data.events.push_back(
      rec("halo.send", obs::Cat::Send, 0, 1500, 1600, 64, 1));
  const obs::AnalysisReport rep = obs::analyze(data);

  obs::metrics::set_enabled(true);
  obs::export_metrics(rep);
  obs::metrics::set_enabled(false);
  EXPECT_NEAR(obs::metrics::gauge("analysis.late_sender_seconds").value(),
              500 * kNs, 1e-12);
  EXPECT_NEAR(obs::metrics::gauge("analysis.matched_waits").value(), 1.0,
              1e-12);
  obs::metrics::reset();
}

// ---------------------------------------------------------------------
// Perf-regression sentinel (pure comparison rules; no obs needed).
// ---------------------------------------------------------------------

std::string mini_report(double median, double spread, double msgs) {
  std::ostringstream os;
  os << R"({"benchmark": "mini", "series": [{"name": "s1", )"
     << "\"repetitions\": 3, \"median_seconds\": " << median
     << ", \"spread_pct\": " << spread << ", \"msgs\": " << msgs << "}]}";
  return os.str();
}

TEST(Sentinel, PassesOnIdenticalReports) {
  const std::string doc = mini_report(0.1, 5.0, 42);
  const obs::SentinelResult res = obs::sentinel_compare(doc, doc);
  EXPECT_TRUE(res.ok) << res.report();
  EXPECT_EQ(res.series_checked, 1);
  EXPECT_TRUE(res.failures.empty());
  EXPECT_TRUE(res.error.empty());
}

TEST(Sentinel, FailsOnTimingRegressionBeyondBand) {
  // Band = tolerance 25% + spread 5% = 30%; a 2x median blows it.
  const obs::SentinelResult res = obs::sentinel_compare(
      mini_report(0.1, 5.0, 42), mini_report(0.2, 5.0, 42));
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.failures.size(), 1U);
  EXPECT_NE(res.failures[0].find("regressed"), std::string::npos)
      << res.report();
  // +28% stays inside the band.
  const obs::SentinelResult close = obs::sentinel_compare(
      mini_report(0.1, 5.0, 42), mini_report(0.128, 5.0, 42));
  EXPECT_TRUE(close.ok) << close.report();
}

TEST(Sentinel, SpreadWidensTheBand) {
  // A noisy baseline (30% spread) buys a wider allowance: tolerance 10
  // + spread 30 = 40%.
  obs::SentinelOptions opts;
  opts.tolerance_pct = 10.0;
  EXPECT_TRUE(obs::sentinel_compare(mini_report(0.1, 30.0, 1),
                                    mini_report(0.135, 0.0, 1), opts)
                  .ok);
  EXPECT_FALSE(obs::sentinel_compare(mini_report(0.1, 30.0, 1),
                                     mini_report(0.145, 0.0, 1), opts)
                   .ok);
}

TEST(Sentinel, InjectedSlowdownSelfTest) {
  // The CI self-test: identical reports must FAIL once the fresh side
  // is scaled by 1.2 against a 10% tolerance, proving the gate bites.
  const std::string doc = mini_report(0.1, 0.0, 42);
  obs::SentinelOptions opts;
  opts.tolerance_pct = 10.0;
  EXPECT_TRUE(obs::sentinel_compare(doc, doc, opts).ok);
  opts.scale_fresh = 1.2;
  EXPECT_FALSE(obs::sentinel_compare(doc, doc, opts).ok);
}

TEST(Sentinel, MissingSeriesAndMalformedInputs) {
  const std::string base =
      R"({"series": [{"name": "s1", "median_seconds": 0.1},)"
      R"( {"name": "s2", "median_seconds": 0.1}]})";
  const std::string fresh =
      R"({"series": [{"name": "s1", "median_seconds": 0.1}]})";
  const obs::SentinelResult res = obs::sentinel_compare(base, fresh);
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.failures.size(), 1U);
  EXPECT_NE(res.failures[0].find("missing"), std::string::npos);

  // Malformed documents set error (exit 2 in the CLI), not failures.
  const obs::SentinelResult bad = obs::sentinel_compare("{nope", fresh);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_TRUE(bad.failures.empty());
  const obs::SentinelResult empty =
      obs::sentinel_compare(R"({"series": []})", fresh);
  EXPECT_FALSE(empty.ok);
  EXPECT_FALSE(empty.error.empty());
}

TEST(Sentinel, MinSecondsSkipsTimingButCountersStillGate) {
  // Sub-threshold medians are too fast to time reliably: a 100x
  // "regression" is ignored, but a counter drift still fails.
  obs::SentinelOptions opts;
  opts.min_seconds = 0.01;
  EXPECT_TRUE(obs::sentinel_compare(mini_report(1e-4, 0.0, 42),
                                    mini_report(1e-2, 0.0, 42), opts)
                  .ok);
  const obs::SentinelResult drift = obs::sentinel_compare(
      mini_report(1e-4, 0.0, 42), mini_report(1e-4, 0.0, 43), opts);
  EXPECT_FALSE(drift.ok);
  ASSERT_EQ(drift.failures.size(), 1U);
  EXPECT_NE(drift.failures[0].find("drifted"), std::string::npos);
}

TEST(Sentinel, CounterToleranceAndOptOut) {
  // Exact by default; a relative tolerance admits the drift; opting out
  // ignores counters entirely.
  const std::string base = mini_report(0.1, 0.0, 100);
  const std::string fresh = mini_report(0.1, 0.0, 130);
  EXPECT_FALSE(obs::sentinel_compare(base, fresh).ok);
  obs::SentinelOptions tol;
  tol.counter_tolerance_pct = 50.0;
  EXPECT_TRUE(obs::sentinel_compare(base, fresh, tol).ok);
  obs::SentinelOptions off;
  off.check_counters = false;
  EXPECT_TRUE(obs::sentinel_compare(base, fresh, off).ok);

  // A counter missing from the fresh report fails regardless.
  const std::string lost =
      R"({"series": [{"name": "s1", "median_seconds": 0.1}]})";
  const obs::SentinelResult res = obs::sentinel_compare(base, lost, tol);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.failures[0].find("lost counter"), std::string::npos);
}

// ---------------------------------------------------------------------
// Drift sentinels: model-vs-measured gates with committed bands.
// ---------------------------------------------------------------------

std::string drift_report(double value, double band) {
  std::ostringstream os;
  os << R"({"benchmark": "drift", "series": [{"name": "full", )"
     << "\"repetitions\": 1, \"median_seconds\": 0.01, "
     << "\"drift\": {\"comm_fraction\": {\"value\": " << value
     << ", \"band\": " << band << "}}}]}";
  return os.str();
}

TEST(Sentinel, DriftGatesHoldFreshInsideCommittedBand) {
  // The BASELINE's band is the contract; the fresh file's own band is
  // ignored (a fresh run cannot loosen the committed contract).
  const std::string base = drift_report(0.10, 0.20);
  EXPECT_TRUE(obs::sentinel_compare(base, drift_report(0.15, 0.20)).ok);
  const obs::SentinelResult wide =
      obs::sentinel_compare(base, drift_report(0.25, 99.0));
  EXPECT_FALSE(wide.ok);
  ASSERT_EQ(wide.failures.size(), 1U);
  EXPECT_NE(wide.failures[0].find("left the perfmodel band"),
            std::string::npos)
      << wide.report();
}

TEST(Sentinel, DriftShiftSelfTestTripsTheGate) {
  // CI's injected-regression self-test: identical reports must fail
  // once the fresh drift is shifted past the committed band.
  const std::string doc = drift_report(0.10, 0.20);
  obs::SentinelOptions opts;
  EXPECT_TRUE(obs::sentinel_compare(doc, doc, opts).ok);
  opts.drift_shift = 0.15;  // 0.10 + 0.15 > 0.20.
  const obs::SentinelResult res = obs::sentinel_compare(doc, doc, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.report().find("left the perfmodel band"), std::string::npos)
      << res.report();
}

TEST(Sentinel, LostDriftMetricFails) {
  // Coverage only grows: a drift metric present in the baseline must
  // stay in the fresh report.
  const std::string base = drift_report(0.10, 0.20);
  const std::string fresh =
      R"({"series": [{"name": "full", "median_seconds": 0.01}]})";
  const obs::SentinelResult res = obs::sentinel_compare(base, fresh);
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.failures.size(), 1U);
  EXPECT_NE(res.failures[0].find("lost drift metric"), std::string::npos);

  // A malformed drift entry is a schema error, not a regression.
  const std::string broken =
      R"({"series": [{"name": "full", "median_seconds": 0.01, )"
      R"("drift": {"comm_fraction": {"value": 0.1}}}]})";
  const obs::SentinelResult bad = obs::sentinel_compare(base, broken);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
}

// ---------------------------------------------------------------------
// Constructed imbalance on real runs: the env-gated per-rank delay hook
// makes one rank measurably slow; the analyzer must pin it.
// ---------------------------------------------------------------------

// setenv/unsetenv wrapper that restores on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

jitfd::core::RunSummary traced_diffusion(int nranks, ir::MpiMode mode,
                                         std::int64_t n, int steps,
                                         int exchange_depth) {
  jitfd::core::RunSummary rank0;
  obs::reset();
  jitfd::grid::Function::set_default_exchange_depth(exchange_depth);
  smpi::run(nranks, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{n - 1, n - 1}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = mode;
    opts.exchange_depth = exchange_depth;
    Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                                sym::Ex(0), u.forward()))},
                opts);
    const auto run = op.apply({.time_m = 0,
                               .time_M = steps - 1,
                               .scalars = {{"dt", 1e-3}},
                               .trace = true});
    if (comm.rank() == 0) {
      rank0 = run;
    }
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
  return rank0;
}

class ConstructedImbalance : public ::testing::TestWithParam<ir::MpiMode> {};

TEST_P(ConstructedImbalance, AnalyzerPinsTheSlowRank) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  const ir::MpiMode mode = GetParam();
  const int kSlowRank = 3;
  // 6 ms of extra compute per step on one rank of a tiny 12x12
  // problem: orders of magnitude above the real per-step compute and
  // above an OS timeslice, so the verdicts below are noise-proof even
  // on an oversubscribed one-core CI box (the binary also runs
  // RUN_SERIAL so sibling test processes don't add load).
  ScopedEnv delay_rank("JITFD_DELAY_RANK", std::to_string(kSlowRank));
  ScopedEnv delay_us("JITFD_DELAY_US", "6000");

  for (const int depth : {1, 2}) {
    const int steps = 4;
    const auto run = traced_diffusion(4, mode, 12, steps, depth);
    ASSERT_TRUE(run.trace.active());
    const obs::AnalysisReport rep = run.trace.analysis();

    EXPECT_EQ(rep.nranks, 4) << "depth " << depth;
    EXPECT_EQ(rep.steps, static_cast<std::uint64_t>(steps));
    // The padded rank dominates compute: it is the critical path and
    // clearly above the mean.
    EXPECT_EQ(rep.critical_path_rank, kSlowRank)
        << "mode " << ir::to_string(mode) << " depth " << depth;
    EXPECT_GT(rep.imbalance_ratio, 2.0);
    // Every pattern blocks on the slow rank's sends: wait matching must
    // find pairs and late-sender attribution must blame the slow rank.
    EXPECT_GT(rep.matched_waits, 0U);
    EXPECT_GT(rep.late_sender_s, 0.0);
    EXPECT_EQ(rep.late_sender_culprit, kSlowRank)
        << "mode " << ir::to_string(mode) << " depth " << depth << "\n"
        << obs::analysis_summary(rep);
    // The per-step loads see the same culprit on every step.
    ASSERT_FALSE(rep.step_loads.empty());
    for (const obs::StepLoad& sl : rep.step_loads) {
      EXPECT_EQ(sl.critical_rank, kSlowRank) << "step " << sl.step;
    }

    if (depth == 2) {
      EXPECT_EQ(rep.strips, 2U);
      EXPECT_EQ(rep.exchange_depth, 2);
      EXPECT_EQ(rep.saved_exchanges, 2U);
    } else {
      EXPECT_EQ(rep.strips, 0U);
      EXPECT_EQ(rep.exchange_depth, 1);
    }

    // The full report exports schema-valid JSON end to end.
    const obs::SchemaCheck check =
        obs::validate_analysis_json(obs::analysis_json(rep));
    EXPECT_TRUE(check.ok) << check.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, ConstructedImbalance,
                         ::testing::Values(ir::MpiMode::Basic,
                                           ir::MpiMode::Diagonal,
                                           ir::MpiMode::Full));

}  // namespace
