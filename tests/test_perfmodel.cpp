// Tests for the analytical scaling model: self-consistency of the
// checked-in kernel facts with live compiler derivation, calibration
// anchors, and the qualitative claims of the paper's evaluation section
// (mode orderings, crossovers, efficiency trends, weak-scaling flatness).
#include <gtest/gtest.h>

#include "perfmodel/scaling.h"

namespace {

using namespace jitfd::perf;  // NOLINT: test file.
namespace ir = jitfd::ir;

TEST(KernelSpec, CheckedInFactsMatchLiveDerivation) {
  // The hard-coded flop tables and communication structure must equal
  // what the compiler derives — they are a cache, not an assumption.
  for (const KernelSpec& cached : all_kernel_specs(false)) {
    const DerivedFacts live = derive_facts(cached.name);
    EXPECT_EQ(cached.flops_by_so, live.flops_by_so) << cached.name;
    EXPECT_EQ(cached.comm_fields, live.comm_fields) << cached.name;
    EXPECT_EQ(cached.nspots, live.nspots) << cached.name;
  }
}

TEST(KernelSpec, FlopInterpolationIsMonotone) {
  const KernelSpec s = tti_spec();
  EXPECT_DOUBLE_EQ(s.flops_per_point(8), 1134.0);
  EXPECT_GT(s.flops_per_point(10), s.flops_per_point(8));
  EXPECT_LT(s.flops_per_point(10), s.flops_per_point(12));
}

TEST(KernelSpec, WorkingSetsMatchPaper) {
  EXPECT_EQ(acoustic_spec().fields, 5);
  EXPECT_EQ(tti_spec().fields, 12);
  EXPECT_EQ(elastic_spec().fields, 22);
  EXPECT_EQ(viscoelastic_spec().fields, 36);
}

struct Anchor {
  const char* kernel;
  Target target;
  double single_unit_gpts;  // Paper 1-unit SDO-8 throughput.
  double eff128;            // Paper 128-unit SDO-8 basic efficiency.
};

// Paper Tables IV/VIII/XII/XVI (CPU) and XX/XXIV/XXVIII/XXXII (GPU),
// single-unit column and the efficiency quoted in Section IV-D.
const Anchor kAnchors[] = {
    {"acoustic", Target::Cpu, 12.7, 0.64},
    {"elastic", Target::Cpu, 1.7, 0.46},
    {"tti", Target::Cpu, 3.5, 0.69},
    {"viscoelastic", Target::Cpu, 1.15, 0.46},
    {"acoustic", Target::Gpu, 31.2, 0.37},
    {"elastic", Target::Gpu, 5.2, 0.246},
    {"tti", Target::Gpu, 8.5, 0.423},
    {"viscoelastic", Target::Gpu, 2.8, 0.30},
};

KernelSpec spec_of(const std::string& name) {
  for (KernelSpec s : all_kernel_specs()) {
    if (s.name == name) {
      return s;
    }
  }
  throw std::runtime_error("unknown kernel");
}

TEST(ScalingModel, SingleUnitThroughputMatchesPaperWithinTenPercent) {
  for (const Anchor& a : kAnchors) {
    const MachineSpec mach =
        a.target == Target::Cpu ? archer2_node() : tursa_a100();
    const ScalingModel m(mach, spec_of(a.kernel), a.target);
    const auto pt = m.strong(1, 8, ir::MpiMode::None);
    EXPECT_NEAR(pt.gpts, a.single_unit_gpts, 0.10 * a.single_unit_gpts)
        << a.kernel << (a.target == Target::Cpu ? " cpu" : " gpu");
  }
}

TEST(ScalingModel, Efficiency128MatchesPaperAnchors) {
  for (const Anchor& a : kAnchors) {
    const MachineSpec mach =
        a.target == Target::Cpu ? archer2_node() : tursa_a100();
    const ScalingModel m(mach, spec_of(a.kernel), a.target);
    const auto pt = m.strong(128, 8, ir::MpiMode::Basic);
    EXPECT_NEAR(pt.efficiency, a.eff128, 0.05)
        << a.kernel << (a.target == Target::Cpu ? " cpu" : " gpu");
  }
}

TEST(ScalingModel, EfficiencyDecreasesMonotonicallyWithScale) {
  for (const KernelSpec& k : all_kernel_specs()) {
    const ScalingModel m(archer2_node(), k, Target::Cpu);
    double prev = 1.1;
    for (const int u : {2, 8, 32, 128}) {
      const auto pt = m.strong(u, 8, ir::MpiMode::Basic);
      EXPECT_LT(pt.efficiency, prev + 1e-9) << k.name << " u=" << u;
      prev = pt.efficiency;
    }
  }
}

TEST(ScalingModel, TtiScalesBestAcousticBeatsElastic) {
  // Paper Section IV-D: TTI has the highest computation-to-communication
  // ratio and the highest strong-scaling efficiency; elastic and
  // viscoelastic the lowest.
  auto eff = [](const char* name) {
    const ScalingModel m(archer2_node(), spec_of(name), Target::Cpu);
    return m.strong(128, 8, ir::MpiMode::Basic).efficiency;
  };
  EXPECT_GT(eff("tti"), eff("acoustic"));
  EXPECT_GT(eff("acoustic"), eff("elastic"));
  EXPECT_GE(eff("elastic"), eff("viscoelastic") - 0.02);
}

TEST(ScalingModel, CommAvoidingDepthOneIsIdentity) {
  // exchange_depth defaults to 1 and must not change any prediction.
  const ScalingModel m(archer2_node(), acoustic_spec(), Target::Cpu);
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    const auto implicit = m.strong(128, 8, mode);
    const auto explicit1 = m.strong(128, 8, mode, 0, 1);
    EXPECT_EQ(implicit.step_seconds, explicit1.step_seconds);
    EXPECT_EQ(implicit.t_redundant, 0.0);
  }
}

TEST(ScalingModel, CommAvoidingTradesMessagesForRedundantCompute) {
  const ScalingModel m(archer2_node(), acoustic_spec(), Target::Cpu);
  const auto k1 = m.strong(128, 8, ir::MpiMode::Basic);
  const auto k2 = m.strong(128, 8, ir::MpiMode::Basic, 0, 2);
  const auto k4 = m.strong(128, 8, ir::MpiMode::Basic, 0, 4);
  // The redundant ghost-zone compute term appears and grows with depth.
  EXPECT_GT(k2.t_redundant, 0.0);
  EXPECT_GT(k4.t_redundant, k2.t_redundant);
  // Per-step network and sync time amortize: latency and per-message
  // overhead divide by k while the (deeper) volume stays first-order
  // constant.
  EXPECT_LT(k2.t_net, k1.t_net);
  EXPECT_LT(k4.t_net, k2.t_net);
  EXPECT_LT(k2.t_sync, k1.t_sync);
  // The owned-region compute term is untouched.
  EXPECT_EQ(k2.t_comp, k1.t_comp);
}

TEST(ScalingModel, AcousticModeCrossoverWithSpaceOrder) {
  // Paper Tables III vs VI: basic wins the low-order acoustic regime
  // (message rate binds diagonal's 26 small messages); diagonal wins at
  // SDO 16 (volume binds, single-step batching helps).
  const ScalingModel m(archer2_node(), acoustic_spec(), Target::Cpu);
  const double basic4 = m.strong(128, 4, ir::MpiMode::Basic).gpts;
  const double diag4 = m.strong(128, 4, ir::MpiMode::Diagonal).gpts;
  EXPECT_GT(basic4, diag4);
  const double basic16 = m.strong(128, 16, ir::MpiMode::Basic).gpts;
  const double diag16 = m.strong(128, 16, ir::MpiMode::Diagonal).gpts;
  EXPECT_GT(diag16, basic16);
}

TEST(ScalingModel, FullModeIsWorstForTtiAtScale) {
  // Paper Section IV-D: "there are better candidates than full mode for
  // TTI kernels" — the remainder cost outweighs the hidden communication.
  const ScalingModel m(archer2_node(), tti_spec(), Target::Cpu);
  for (const int so : {4, 8, 12, 16}) {
    const double full = m.strong(128, so, ir::MpiMode::Full).gpts;
    const double basic = m.strong(128, so, ir::MpiMode::Basic).gpts;
    const double diag = m.strong(128, so, ir::MpiMode::Diagonal).gpts;
    EXPECT_LT(full, std::max(basic, diag)) << "so=" << so;
  }
}

TEST(ScalingModel, ElasticDiagonalBeatsBasicAtHighOrder) {
  // Paper Tables VIII-X: diagonal leads elastic from SDO 8 upward.
  const ScalingModel m(archer2_node(), elastic_spec(), Target::Cpu);
  for (const int so : {8, 12, 16}) {
    EXPECT_GT(m.strong(128, so, ir::MpiMode::Diagonal).gpts,
              m.strong(128, so, ir::MpiMode::Basic).gpts)
        << "so=" << so;
  }
}

TEST(ScalingModel, FullModeMidScaleSweetSpotForElastic) {
  // Paper: "full mode shows improved throughput for a number of
  // experiments, but it tends to be less efficient at scale".
  const ScalingModel m(archer2_node(), elastic_spec(), Target::Cpu);
  EXPECT_GT(m.strong(8, 8, ir::MpiMode::Full).gpts,
            m.strong(8, 8, ir::MpiMode::Basic).gpts);
  EXPECT_LT(m.strong(128, 8, ir::MpiMode::Full).gpts,
            m.strong(128, 8, ir::MpiMode::Basic).gpts);
}

TEST(ScalingModel, CustomTopologyHelpsFullModeAtModerateScale) {
  // Paper Section IV-F: restricting the decomposition to x and y avoids
  // strided remainders over z and boosts full mode — but "continuous
  // decomposition across x and y may lead to early shrinking", so the
  // benefit holds at moderate scale and inverts at large rank counts.
  ScalingModel def(archer2_node(), elastic_spec(), Target::Cpu);
  ScalingModel xy(archer2_node(), elastic_spec(), Target::Cpu);
  xy.set_topology({0, 0, 1});
  EXPECT_GT(xy.strong(8, 8, ir::MpiMode::Full).gpts,
            def.strong(8, 8, ir::MpiMode::Full).gpts);
  // Early shrinking: at 128 nodes the xy-only split stops paying off.
  EXPECT_LT(xy.strong(128, 16, ir::MpiMode::Full).gpts,
            def.strong(128, 16, ir::MpiMode::Full).gpts);
}

TEST(ScalingModel, WeakScalingRuntimeIsNearlyFlat) {
  // Paper Figure 12: runtime nearly constant (slight decrease) as nodes
  // and problem grow together.
  for (const KernelSpec& k : all_kernel_specs()) {
    for (const Target t : {Target::Cpu, Target::Gpu}) {
      const MachineSpec mach = t == Target::Cpu ? archer2_node() : tursa_a100();
      const ScalingModel m(mach, k, t);
      const double r1 = m.weak(1, 8, ir::MpiMode::Basic).runtime_seconds;
      const double r128 = m.weak(128, 8, ir::MpiMode::Basic).runtime_seconds;
      // CPU nodes stay within ~1/3 of the single-node runtime; the GPU
      // bound is looser — each A100's exchange rides a single 200 Gb/s
      // IB port against ~2 TB/s of HBM compute, a known deviation from
      // the paper's flat Figure 12 (recorded in EXPERIMENTS.md).
      EXPECT_LT(r128, (t == Target::Cpu ? 1.35 : 2.0) * r1) << k.name;
      EXPECT_GT(r128, 0.95 * r1) << k.name;
    }
  }
}

TEST(ScalingModel, WeakScalingGpuRoughlyFourTimesFaster) {
  // Paper Figure 12: "GPU is constantly 4 times faster".
  for (const KernelSpec& k : all_kernel_specs()) {
    const ScalingModel cpu(archer2_node(), k, Target::Cpu);
    const ScalingModel gpu(tursa_a100(), k, Target::Gpu);
    const double tc = cpu.weak(64, 8, ir::MpiMode::Basic).runtime_seconds;
    const double tg = gpu.weak(64, 8, ir::MpiMode::Basic).runtime_seconds;
    // The paper reports ~4x; the model yields ~2x because it credits the
    // CPU node with its strong-scaling throughput at equal per-node
    // volume (deviation recorded in EXPERIMENTS.md).
    const double speedup = tc / tg;
    EXPECT_GT(speedup, 1.5) << k.name;
    EXPECT_LT(speedup, 7.0) << k.name;
  }
}

TEST(ScalingModel, GpuLessEfficientThanCpuInStrongScaling) {
  // Paper: GPUs win absolute throughput but lose efficiency as local
  // problems shrink (acoustic: 37% vs 64% at 128 units).
  const ScalingModel cpu(archer2_node(), acoustic_spec(), Target::Cpu);
  const ScalingModel gpu(tursa_a100(), acoustic_spec(), Target::Gpu);
  EXPECT_GT(gpu.strong(128, 8, ir::MpiMode::Basic).gpts,
            cpu.strong(128, 8, ir::MpiMode::Basic).gpts);
  EXPECT_LT(gpu.strong(128, 8, ir::MpiMode::Basic).efficiency,
            cpu.strong(128, 8, ir::MpiMode::Basic).efficiency);
}

TEST(Roofline, TtiHasHighestOperationalIntensity) {
  // Paper Figures 6-7.
  const MachineSpec mach = archer2_node();
  const auto oi = [&](const KernelSpec& k) {
    return roofline_point(mach, k, Target::Cpu, 8).oi;
  };
  const double ac = oi(acoustic_spec());
  const double tti = oi(tti_spec());
  const double el = oi(elastic_spec());
  const double ve = oi(viscoelastic_spec());
  EXPECT_GT(tti, ac);
  EXPECT_GT(tti, el);
  EXPECT_GT(tti, ve);
  // All kernels sit below the DRAM roof (memory-bound region claims).
  for (const KernelSpec& k : all_kernel_specs()) {
    const auto rp = roofline_point(mach, k, Target::Cpu, 8);
    EXPECT_LE(rp.gflops, mach.mem_bw_gbs * rp.oi * 1.0001) << k.name;
  }
}

}  // namespace
