// Direct unit tests of the halo-exchange runtime: box geometry, corner
// propagation, multi-field spots, width-limited exchanges, uneven
// decompositions, asynchronous start/wait semantics and statistics —
// exercised through HaloExchange itself rather than through an Operator.
#include <gtest/gtest.h>

#include "grid/function.h"
#include "ir/lower.h"
#include "runtime/halo.h"
#include "smpi/runtime.h"

namespace {

using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
using jitfd::runtime::HaloExchange;
namespace ir = jitfd::ir;

// Fill the owned region of `f` with a rank-unique encoding of the global
// coordinates so any unpacked halo value identifies its source point.
void fill_coded(Function& f, int buf) {
  const Grid& g = f.grid();
  const auto& shape = f.local_shape();
  std::vector<std::int64_t> idx(shape.size(), 0);
  const std::function<void(std::size_t)> rec = [&](std::size_t d) {
    if (d == shape.size()) {
      float code = 0.0F;
      for (std::size_t q = 0; q < shape.size(); ++q) {
        code = 1000.0F * code +
               static_cast<float>(g.local_start(static_cast<int>(q)) +
                                  idx[q]);
      }
      f.at_local(buf, idx) = code + 1.0F;  // +1: zero means "never written".
      return;
    }
    for (idx[d] = 0; idx[d] < shape[d]; ++idx[d]) {
      rec(d + 1);
    }
  };
  rec(0);
}

float expected_code(std::span<const std::int64_t> g) {
  float code = 0.0F;
  for (const std::int64_t v : g) {
    code = 1000.0F * code + static_cast<float>(v);
  }
  return code + 1.0F;
}

ir::SpotInfo one_field_spot(const Function& f, std::vector<int> widths,
                            int time_offset = 0) {
  ir::SpotInfo spot;
  spot.id = 0;
  spot.needs.push_back(
      ir::HaloNeed{f.field_id().id, time_offset, std::move(widths)});
  return spot;
}

class HaloModeGeometry : public ::testing::TestWithParam<ir::MpiMode> {};

TEST_P(HaloModeGeometry, FacesAndCornersCarryNeighbourData) {
  // 2D, 2x2 ranks: after one exchange of width 2, every halo point that
  // maps into the global domain must hold the owner's coded value —
  // including the corner regions (basic gets them via the multi-step
  // sweep, diagonal/full via explicit corner messages).
  const ir::MpiMode mode = GetParam();
  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    Function f("f", g, 4);
    fill_coded(f, 0);

    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, mode);
    halo.register_spot(one_field_spot(f, {2, 2}), table);
    if (mode == ir::MpiMode::Full) {
      halo.start(0, 0);
      halo.wait(0);
    } else {
      halo.update(0, 0);
    }

    // Check every point of the width-2 ring around the owned block.
    const auto& shape = f.local_shape();
    for (std::int64_t i = -2; i < shape[0] + 2; ++i) {
      for (std::int64_t j = -2; j < shape[1] + 2; ++j) {
        const bool in_owned =
            i >= 0 && i < shape[0] && j >= 0 && j < shape[1];
        if (in_owned) {
          continue;
        }
        const std::int64_t gi = g.local_start(0) + i;
        const std::int64_t gj = g.local_start(1) + j;
        const std::array<std::int64_t, 2> idx{i, j};
        const float got = f.at_local(0, idx);
        if (gi >= 0 && gi < 8 && gj >= 0 && gj < 8) {
          const std::array<std::int64_t, 2> gg{gi, gj};
          EXPECT_FLOAT_EQ(got, expected_code(gg))
              << "halo (" << i << "," << j << ") mode "
              << ir::to_string(mode);
        } else {
          EXPECT_FLOAT_EQ(got, 0.0F) << "physical-boundary halo must stay 0";
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, HaloModeGeometry,
                         ::testing::Values(ir::MpiMode::Basic,
                                           ir::MpiMode::Diagonal,
                                           ir::MpiMode::Full));

TEST(HaloRuntime, WidthLimitsExchangedRing) {
  // Width 1 with halo 4: only the innermost ghost ring is filled.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    Function f("f", g, 8);  // halo() == 8.
    fill_coded(f, 0);
    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, ir::MpiMode::Diagonal);
    halo.register_spot(one_field_spot(f, {1, 1}), table);
    halo.update(0, 0);

    const auto& shape = f.local_shape();
    // Inner ring filled where it maps into the domain...
    const std::array<std::int64_t, 2> inner{-1, 0};
    const std::int64_t gi = g.local_start(0) - 1;
    if (gi >= 0) {
      EXPECT_NE(f.at_local(0, inner), 0.0F);
    }
    // ...but the second ring stays untouched everywhere.
    const std::array<std::int64_t, 2> outer{-2, 0};
    EXPECT_FLOAT_EQ(f.at_local(0, outer), 0.0F);
    (void)shape;
  });
}

TEST(HaloRuntime, TimeOffsetsSelectModuloBuffer) {
  // Exchanging u@+1 at time=1 must move buffer (1+1)%3 = 2 and leave the
  // other buffers' halos untouched.
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm, {2, 1});
    TimeFunction u("u", g, 2, 2);
    for (int b = 0; b < 3; ++b) {
      fill_coded(u, b);
    }
    ir::FieldTable table;
    table.add(&u);
    HaloExchange halo(g, ir::MpiMode::Basic);
    halo.register_spot(one_field_spot(u, {1, 0}, /*time_offset=*/1), table);
    halo.update(0, /*time=*/1);

    const std::array<std::int64_t, 2> ghost{-1, 3};
    const std::int64_t gi = g.local_start(0) - 1;
    if (gi >= 0) {
      const std::array<std::int64_t, 2> gg{gi, 3};
      EXPECT_FLOAT_EQ(u.at_local(2, ghost), expected_code(gg));
      EXPECT_FLOAT_EQ(u.at_local(0, ghost), 0.0F);
      EXPECT_FLOAT_EQ(u.at_local(1, ghost), 0.0F);
    }
  });
}

TEST(HaloRuntime, MultiFieldSpotMovesEveryField) {
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({6, 6}, {1.0, 1.0}, comm, {2, 1});
    Function a("a", g, 2);
    Function b("b", g, 2);
    fill_coded(a, 0);
    fill_coded(b, 0);
    ir::FieldTable table;
    table.add(&a);
    table.add(&b);
    ir::SpotInfo spot;
    spot.id = 0;
    spot.needs.push_back(ir::HaloNeed{a.field_id().id, 0, {1, 0}});
    spot.needs.push_back(ir::HaloNeed{b.field_id().id, 0, {1, 0}});
    HaloExchange halo(g, ir::MpiMode::Diagonal);
    halo.register_spot(spot, table);
    halo.update(0, 0);
    const std::array<std::int64_t, 2> ghost{-1, 2};
    if (g.local_start(0) > 0) {
      EXPECT_NE(a.at_local(0, ghost), 0.0F);
      EXPECT_NE(b.at_local(0, ghost), 0.0F);
    }
  });
}

TEST(HaloRuntime, UnevenBlocksExchangeConsistently) {
  // 9 points over 2 ranks (5/4): face sizes along the undecomposed
  // dimension are equal, and the exchange must still be exact.
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({9, 7}, {1.0, 1.0}, comm, {2, 1});
    Function f("f", g, 4);
    fill_coded(f, 0);
    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, ir::MpiMode::Basic);
    halo.register_spot(one_field_spot(f, {2, 0}), table);
    halo.update(0, 0);
    for (std::int64_t i : {-2, -1}) {
      const std::int64_t gi = g.local_start(0) + i;
      if (gi < 0) {
        continue;
      }
      for (std::int64_t j = 0; j < 7; ++j) {
        const std::array<std::int64_t, 2> idx{i, j};
        const std::array<std::int64_t, 2> gg{gi, j};
        EXPECT_FLOAT_EQ(f.at_local(0, idx), expected_code(gg));
      }
    }
  });
}

TEST(HaloRuntime, StartWithoutWaitThenWaitCompletes) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    Function f("f", g, 2);
    fill_coded(f, 0);
    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, ir::MpiMode::Full);
    halo.register_spot(one_field_spot(f, {1, 1}), table);
    halo.start(0, 0);
    halo.progress();  // Must be safe while in flight.
    halo.progress();
    halo.wait(0);
    halo.wait(0);  // Second wait is a no-op.
    EXPECT_EQ(halo.stats().starts, 1U);
    EXPECT_GE(halo.stats().progress_calls, 2U);
    const std::array<std::int64_t, 2> ghost{
        g.local_start(0) > 0 ? -1 : static_cast<std::int64_t>(4), 0};
    EXPECT_NE(f.at_local(0, ghost), 0.0F);
  });
}

TEST(HaloRuntime, StatsCountMessagesAndBytes) {
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm, {2, 1});
    Function f("f", g, 2);
    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, ir::MpiMode::Basic);
    halo.register_spot(one_field_spot(f, {2, 0}), table);
    halo.update(0, 0);
    // One neighbour, one face of 2x8 floats.
    EXPECT_EQ(halo.stats().messages, 1U);
    EXPECT_EQ(halo.stats().bytes_sent, 2U * 8U * sizeof(float));
    EXPECT_EQ(halo.stats().updates, 1U);
  });
}

TEST(HaloRuntime, SerialGridIsNoOp) {
  const Grid g({8, 8}, {1.0, 1.0});
  Function f("f", g, 2);
  HaloExchange halo(g, ir::MpiMode::Diagonal);
  ir::FieldTable table;
  table.add(&f);
  halo.register_spot(one_field_spot(f, {1, 1}), table);
  halo.update(0, 0);
  halo.start(0, 0);
  halo.wait(0);
  EXPECT_EQ(halo.stats().messages, 0U);
}

class HaloZeroCopy : public ::testing::TestWithParam<ir::MpiMode> {};

TEST_P(HaloZeroCopy, PostFenceMakesEveryDeliveryRendezvous) {
  // With the post fence, every send finds its receive already posted, so
  // the transport copies each payload exactly once (sender's buffer ->
  // posted receive buffer) and the unexpected-message pool is never
  // touched. This is the PR's zero-copy claim, asserted end to end for
  // all three patterns on a 2x2x2 decomposition.
  const ir::MpiMode mode = GetParam();
  smpi::run(8, [&](smpi::Communicator& comm) {
    const Grid g({8, 8, 8}, {1.0, 1.0, 1.0}, comm);
    Function f("f", g, 2);
    fill_coded(f, 0);
    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, mode);
    halo.set_post_fence(true);
    halo.register_spot(one_field_spot(f, {1, 1, 1}), table);

    const auto& tc = comm.world().transport();
    const auto pool_before = comm.world().pool().stats();
    std::uint64_t r0 = 0, q0 = 0, c0 = 0;
    comm.barrier();  // Quiesce, then sample a stable baseline.
    if (comm.rank() == 0) {
      r0 = tc.rendezvous.load();
      q0 = tc.queued.load();
      c0 = tc.payload_copies.load();
    }
    comm.barrier();

    constexpr int kSteps = 4;
    for (int step = 0; step < kSteps; ++step) {
      if (mode == ir::MpiMode::Full) {
        halo.start(0, 0);
        halo.wait(0);
      } else {
        halo.update(0, 0);
      }
    }

    // Per-rank bookkeeping: every byte sent was received by symmetry
    // (all 8 ranks are corners of the cube).
    EXPECT_GT(halo.stats().bytes_sent, 0U);
    EXPECT_EQ(halo.stats().bytes_received, halo.stats().bytes_sent);
    EXPECT_EQ(halo.stats().copies_per_message, 1.0);

    comm.barrier();
    if (comm.rank() == 0) {
      const std::uint64_t sent = tc.rendezvous.load() - r0;
      EXPECT_GT(sent, 0U);
      EXPECT_EQ(tc.queued.load() - q0, 0U);          // Nothing unexpected.
      EXPECT_EQ(tc.payload_copies.load() - c0, sent);  // One copy each.
      const auto pool_after = comm.world().pool().stats();
      EXPECT_EQ(pool_after.hits, pool_before.hits);
      EXPECT_EQ(pool_after.misses, pool_before.misses);
      EXPECT_EQ(halo.stats().pool_hits, pool_after.hits);
      EXPECT_EQ(halo.stats().pool_misses, pool_after.misses);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, HaloZeroCopy,
                         ::testing::Values(ir::MpiMode::Basic,
                                           ir::MpiMode::Diagonal,
                                           ir::MpiMode::Full));

TEST(HaloRuntime, TableOneMessageCountsPerCornerRank3D) {
  // 2x2x2: every rank is a corner with 1 face neighbour per axis (3
  // messages under basic) and 7 star neighbours (diagonal/full) — the
  // corner-rank column of the paper's Table I.
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    smpi::run(8, [&](smpi::Communicator& comm) {
      const Grid g({8, 8, 8}, {1.0, 1.0, 1.0}, comm);
      Function f("f", g, 2);
      ir::FieldTable table;
      table.add(&f);
      HaloExchange halo(g, mode);
      halo.register_spot(one_field_spot(f, {1, 1, 1}), table);
      if (mode == ir::MpiMode::Full) {
        halo.start(0, 0);
        halo.wait(0);
      } else {
        halo.update(0, 0);
      }
      const std::uint64_t expect = mode == ir::MpiMode::Basic ? 3U : 7U;
      EXPECT_EQ(halo.stats().messages, expect)
          << "mode " << ir::to_string(mode);
      EXPECT_EQ(halo.stats().bytes_received, halo.stats().bytes_sent);
    });
  }
}

TEST(HaloRuntime, RejectsOutOfOrderRegistration) {
  smpi::run(2, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm, {2, 1});
    Function f("f", g, 2);
    ir::FieldTable table;
    table.add(&f);
    HaloExchange halo(g, ir::MpiMode::Basic);
    ir::SpotInfo wrong = one_field_spot(f, {1, 0});
    wrong.id = 3;
    EXPECT_THROW(halo.register_spot(wrong, table), std::logic_error);
  });
}

}  // namespace
