// Unit and property tests for the symbolic expression system: canonical
// simplification, manipulation, solve(), CSE/factorization, FD weights.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "symbolic/cse.h"
#include "symbolic/expr.h"
#include "symbolic/fd_weights.h"
#include "symbolic/manip.h"

namespace {

using namespace jitfd::sym;  // NOLINT: test file.

FieldId make_u() { return FieldId{0, "u", 2, true}; }
FieldId make_m() { return FieldId{1, "m", 2, false}; }

TEST(Expr, NumberFoldingAndIdentityRules) {
  const Ex x = symbol("x");
  EXPECT_TRUE((x + 0).node().kind == Kind::Symbol);
  EXPECT_TRUE((x * 1) == x);
  EXPECT_TRUE((x * 0).is_zero());
  EXPECT_TRUE((Ex(2) + Ex(3)) == Ex(5));
  EXPECT_TRUE((Ex(2) * Ex(3)) == Ex(6));
  EXPECT_TRUE(pow(x, 0).is_one());
  EXPECT_TRUE(pow(x, 1) == x);
  EXPECT_TRUE(pow(Ex(2), 10) == Ex(1024));
}

TEST(Expr, AddCollectsLikeTerms) {
  const Ex x = symbol("x");
  const Ex y = symbol("y");
  EXPECT_TRUE(x + x == 2 * x);
  EXPECT_TRUE(3 * x + 5 * x == 8 * x);
  EXPECT_TRUE(x - x == Ex(0));
  EXPECT_TRUE(2 * x + y - x - y == x);
}

TEST(Expr, MulCollectsPowers) {
  const Ex x = symbol("x");
  EXPECT_TRUE(x * x == pow(x, 2));
  EXPECT_TRUE(pow(x, 2) * pow(x, 3) == pow(x, 5));
  EXPECT_TRUE(x / x == Ex(1));
  EXPECT_TRUE(pow(x, 2) / x == x);
}

TEST(Expr, PowNesting) {
  const Ex x = symbol("x");
  EXPECT_TRUE(pow(pow(x, 2), 3) == pow(x, 6));
  EXPECT_TRUE(pow(pow(x, 2), -1) == pow(x, -2));
}

TEST(Expr, CanonicalOrderIsDeterministic) {
  const Ex a = symbol("a");
  const Ex b = symbol("b");
  EXPECT_TRUE(a + b == b + a);
  EXPECT_TRUE(a * b == b * a);
  EXPECT_EQ((a + b).to_string(), (b + a).to_string());
}

TEST(Expr, AdditionIsAssociative) {
  const Ex a = symbol("a");
  const Ex b = symbol("b");
  const Ex c = symbol("c");
  EXPECT_TRUE((a + b) + c == a + (b + c));
  EXPECT_TRUE((a * b) * c == a * (b * c));
}

TEST(Expr, DivisionBySymbolicZeroThrows) {
  EXPECT_THROW(symbol("x") / Ex(0), std::domain_error);
  EXPECT_THROW(pow(Ex(0), -1), std::domain_error);
}

TEST(Expr, FieldAccessEqualityAndPrinting) {
  const FieldId u = make_u();
  const Ex a1 = access(u, 0, {1, -2});
  const Ex a2 = access(u, 0, {1, -2});
  const Ex a3 = access(u, 1, {1, -2});
  EXPECT_TRUE(a1 == a2);
  EXPECT_FALSE(a1 == a3);
  EXPECT_EQ(a1.to_string(), "u[t, x+1, y-2]");
  EXPECT_EQ(a3.to_string(), "u[t+1, x+1, y-2]");
  EXPECT_EQ(access(make_m(), {0, 0}).to_string(), "m[x, y]");
}

TEST(Manip, SubstituteReplacesAllOccurrences) {
  const Ex x = symbol("x");
  const Ex y = symbol("y");
  const Ex e = x * x + 2 * x + y;
  const Ex got = substitute(e, x, Ex(3));
  EXPECT_TRUE(got == y + 15);
}

TEST(Manip, ContainsFindsDeepSubtrees) {
  const FieldId u = make_u();
  const Ex target = access(u, 1, {0, 0});
  const Ex e = symbol("m") * (access(u, 0, {0, 0}) - 2 * target);
  EXPECT_TRUE(contains(e, target));
  EXPECT_FALSE(contains(e, access(u, -1, {0, 0})));
}

TEST(Manip, CollectLinearSplitsCoefficientAndRest) {
  const Ex x = symbol("x");
  const Ex a = symbol("a");
  const Ex b = symbol("b");
  const auto parts = collect_linear(a * x + b, x);
  EXPECT_TRUE(parts.coeff == a);
  EXPECT_TRUE(parts.rest == b);
}

TEST(Manip, CollectLinearRejectsNonlinearTargets) {
  const Ex x = symbol("x");
  EXPECT_THROW(collect_linear(x * x, x), std::domain_error);
  EXPECT_THROW(collect_linear(pow(x, 2) + x, x), std::domain_error);
}

TEST(Manip, SolveLinearEquation) {
  const Ex x = symbol("x");
  const Ex a = symbol("a");
  const Ex b = symbol("b");
  // a*x + b == 0  =>  x == -b/a
  const Ex sol = solve(a * x + b, Ex(0), x);
  EXPECT_TRUE(sol == -b / a);
}

TEST(Manip, SolveWaveEquationUpdate) {
  // The paper's Listing 9: m*u.dt2 - laplace(u) solved for u[t+1].
  // With dt2 = (u[t+1] - 2u[t] + u[t-1]) / dt^2 the update must be
  // u[t+1] = 2u[t] - u[t-1] + dt^2/m * laplace.
  const FieldId u = make_u();
  const Ex dt = symbol("dt");
  const Ex m = access(make_m(), {0, 0});
  const Ex fwd = access(u, 1, {0, 0});
  const Ex now = access(u, 0, {0, 0});
  const Ex bwd = access(u, -1, {0, 0});
  const Ex lap = symbol("LAP");  // Stand-in for the spatial part.
  const Ex dt2 = (fwd - 2 * now + bwd) / (dt * dt);

  const Ex sol = solve(m * dt2 - lap, Ex(0), fwd);
  const Ex expected = 2 * now - bwd + lap * dt * dt / m;
  EXPECT_TRUE(sol == expected) << sol.to_string();
}

TEST(Manip, FieldAccessHarvest) {
  const FieldId u = make_u();
  const Ex e = access(u, 0, {1, 0}) + access(u, 0, {-1, 0}) + symbol("c");
  EXPECT_EQ(field_accesses(e).size(), 2U);
}

TEST(Manip, FlopCounting) {
  const Ex x = symbol("x");
  const Ex y = symbol("y");
  EXPECT_EQ(count_flops(x + y), 1);
  EXPECT_EQ(count_flops(x + y + symbol("z")), 2);
  EXPECT_EQ(count_flops(x * y + 2 * x), 3);
  EXPECT_EQ(count_flops(pow(x, -1)), 1);
  EXPECT_EQ(count_flops(x), 0);
}

TEST(Cse, ExtractsRepeatedSubexpressions) {
  const Ex x = symbol("x");
  const Ex y = symbol("y");
  const Ex common = (x + y) * (x + y);
  const auto result = cse({common + x, common + y});
  ASSERT_FALSE(result.temps.empty());
  // The shared (x+y)^2 (and possibly x+y itself) must be extracted, and the
  // rewritten expressions must reference the same final temp.
  const Ex last = symbol(result.temps.back().name);
  EXPECT_TRUE(result.exprs[0] == last + x);
  EXPECT_TRUE(result.exprs[1] == last + y);
}

TEST(Cse, RewritingPreservesValue) {
  // Property: gluing the temps back in reproduces the original expression.
  const Ex x = symbol("x");
  const Ex y = symbol("y");
  const Ex orig = (x + y) * (x + y) + pow(x + y, 3) + x * y + x * y;
  auto result = cse({orig});
  Ex rebuilt = result.exprs[0];
  for (auto it = result.temps.rbegin(); it != result.temps.rend(); ++it) {
    rebuilt = substitute(rebuilt, symbol(it->name), it->value);
  }
  EXPECT_TRUE(rebuilt == orig);
}

TEST(Cse, InvariantExtractionHoistsSpacingFactors) {
  const FieldId u = make_u();
  const Ex h = symbol("h_x");
  const Ex e = access(u, 0, {1, 0}) / (h * h) + access(u, 0, {-1, 0}) / (h * h);
  const auto result = extract_invariants({e});
  ASSERT_EQ(result.temps.size(), 1U);
  EXPECT_TRUE(result.temps[0].value == pow(h, -2));
  EXPECT_FALSE(contains(result.exprs[0], pow(h, -2)));
}

TEST(Cse, InvariantExtractionIgnoresFieldDependentTerms) {
  const FieldId u = make_u();
  const Ex e = access(u, 0, {0, 0}) * access(u, 0, {1, 0});
  const auto result = extract_invariants({e});
  EXPECT_TRUE(result.temps.empty());
  EXPECT_TRUE(result.exprs[0] == e);
}

TEST(Cse, FactorizationGroupsSharedCoefficients) {
  const Ex a = symbol("a");
  const Ex b = symbol("b");
  const Ex c = symbol("c");
  const Ex e = 0.25 * a + 0.25 * b + 0.25 * c;
  const Ex f = factorize(e);
  EXPECT_LT(count_flops(f), count_flops(e));
  // Semantics preserved: substitute values and compare.
  const std::vector<std::pair<Ex, Ex>> vals{{a, Ex(2)}, {b, Ex(3)}, {c, Ex(5)}};
  EXPECT_TRUE(substitute(f, vals) == substitute(e, vals));
}

// --- FD weights -----------------------------------------------------------

TEST(FdWeights, SecondOrderCentralSecondDerivative) {
  const auto st = central_stencil(2, 2);
  ASSERT_EQ(st.offsets, (std::vector<int>{-1, 0, 1}));
  EXPECT_NEAR(st.weights[0], 1.0, 1e-12);
  EXPECT_NEAR(st.weights[1], -2.0, 1e-12);
  EXPECT_NEAR(st.weights[2], 1.0, 1e-12);
}

TEST(FdWeights, FourthOrderCentralFirstDerivative) {
  const auto st = central_stencil(1, 4);
  ASSERT_EQ(st.offsets, (std::vector<int>{-2, -1, 0, 1, 2}));
  const std::vector<double> expected{1.0 / 12, -2.0 / 3, 0.0, 2.0 / 3,
                                     -1.0 / 12};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(st.weights[i], expected[i], 1e-12) << "tap " << i;
  }
}

TEST(FdWeights, SecondOrderStaggeredFirstDerivative) {
  const auto st = staggered_stencil(2, +1);
  ASSERT_EQ(st.offsets, (std::vector<int>{0, 1}));
  EXPECT_NEAR(st.weights[0], -1.0, 1e-12);
  EXPECT_NEAR(st.weights[1], 1.0, 1e-12);
}

class FdWeightsOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(FdWeightsOrderSweep, WeightsSumToZeroAndReproduceMonomials) {
  // Property: an order-p stencil for the m-th derivative must be exact on
  // all monomials x^k, k <= p (derivative at 0 of x^k is k! [k==m]).
  const int so = GetParam();
  for (const int m : {1, 2}) {
    const auto st = central_stencil(m, so);
    for (int k = 0; k <= so; ++k) {
      double sum = 0.0;
      double magnitude = 0.0;  // Cancellation scale for the tolerance.
      for (std::size_t i = 0; i < st.offsets.size(); ++i) {
        const double term = st.weights[i] * std::pow(st.offsets[i], k);
        sum += term;
        magnitude += std::abs(term);
      }
      const double expected = (k == m) ? std::tgamma(k + 1) : 0.0;
      EXPECT_NEAR(sum, expected, 1e-11 * std::max(1.0, magnitude))
          << "so=" << so << " m=" << m << " k=" << k;
    }
  }
}

TEST_P(FdWeightsOrderSweep, StaggeredWeightsReproduceMonomialsAtHalfPoint) {
  const int so = GetParam();
  for (const int side : {+1, -1}) {
    const auto st = staggered_stencil(so, side);
    ASSERT_EQ(st.offsets.size(), static_cast<std::size_t>(so));
    for (int k = 0; k <= so; ++k) {
      double sum = 0.0;
      double magnitude = 0.0;
      for (std::size_t i = 0; i < st.offsets.size(); ++i) {
        const double pos = st.offsets[i] - side * 0.5;
        const double term = st.weights[i] * std::pow(pos, k);
        sum += term;
        magnitude += std::abs(term);
      }
      const double expected = (k == 1) ? 1.0 : 0.0;
      EXPECT_NEAR(sum, expected, 1e-11 * std::max(1.0, magnitude))
          << "so=" << so << " side=" << side << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, FdWeightsOrderSweep,
                         ::testing::Values(2, 4, 8, 12, 16));

TEST(FdWeights, InvalidArguments) {
  EXPECT_THROW(central_stencil(2, 3), std::invalid_argument);
  EXPECT_THROW(central_stencil(3, 4), std::invalid_argument);
  EXPECT_THROW(staggered_stencil(4, 0), std::invalid_argument);
  const std::vector<double> dup{0.0, 0.0};
  EXPECT_THROW(fornberg_weights(1, 0.0, dup), std::invalid_argument);
}

}  // namespace
