// Observability subsystem tests: span lifecycle and nesting, ring-buffer
// wraparound accounting, the Chrome trace-event export schema from a
// real 4-rank run, and the perfmodel measured-vs-predicted comparison
// fed by a traced run (message counts must match the Table I structural
// expectation exactly).
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "core/operator.h"
#include "grid/function.h"
#include "obs/json_check.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "perfmodel/compare.h"
#include "perfmodel/kernel_spec.h"
#include "perfmodel/machine.h"
#include "perfmodel/scaling.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;
namespace perf = jitfd::perf;
namespace sym = jitfd::sym;

// Whether the obs subsystem was compiled in (JITFD_OBS=ON). Under
// JITFD_OBS_DISABLED every site folds away and these tests are vacuous.
bool obs_built() {
  obs::set_enabled(true);
  const bool on = obs::enabled();
  obs::set_enabled(false);
  return on;
}

TEST(Trace, SpanNestingAndOrdering) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::reset();
  obs::set_enabled(true);
  {
    obs::Span outer("test.outer", obs::Cat::Run, 11, 3);
    {
      obs::Span inner("test.inner", obs::Cat::Compute);
      obs::instant("test.instant", obs::Cat::Msg, 42, 7);
    }
  }
  obs::set_enabled(false);

  const obs::TraceData data = obs::collect();
  ASSERT_EQ(data.events.size(), 3U);
  EXPECT_EQ(data.dropped, 0U);

  const obs::TraceData::Rec* outer = nullptr;
  const obs::TraceData::Rec* inner = nullptr;
  const obs::TraceData::Rec* inst = nullptr;
  for (const auto& e : data.events) {
    if (e.name == "test.outer") {
      outer = &e;
    } else if (e.name == "test.inner") {
      inner = &e;
    } else if (e.name == "test.instant") {
      inst = &e;
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(inst, nullptr);

  // Nesting depth: outer is top-level, inner one below, the instant
  // fired while both spans were open.
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(inst->depth, 2);
  // Containment: the child interval lies inside the parent's.
  EXPECT_LE(outer->t0_ns, inner->t0_ns);
  EXPECT_GE(outer->t1_ns, inner->t1_ns);
  EXPECT_LE(inner->t0_ns, inst->t0_ns);
  // Instants have zero duration; spans have t1 >= t0.
  EXPECT_EQ(inst->t0_ns, inst->t1_ns);
  EXPECT_GE(inner->t1_ns, inner->t0_ns);
  // Payload arguments survive the ring.
  EXPECT_EQ(outer->a0, 11);
  EXPECT_EQ(outer->a1, 3);
  EXPECT_EQ(inst->a0, 42);
  EXPECT_EQ(inst->a1, 7);
  EXPECT_EQ(inst->cat, obs::Cat::Msg);

  // collect() returns events sorted by (rank, start time).
  for (std::size_t i = 1; i < data.events.size(); ++i) {
    const auto& a = data.events[i - 1];
    const auto& b = data.events[i];
    EXPECT_TRUE(a.rank < b.rank ||
                (a.rank == b.rank && a.t0_ns <= b.t0_ns));
  }
}

TEST(Trace, SpanClosedEarlyRecordsOnceAndInertWhenDisabled) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::reset();
  obs::set_enabled(true);
  {
    obs::Span s("test.early", obs::Cat::Compute);
    s.set_arg(99);
    s.close();
    s.close();  // Idempotent: must not double-record.
  }
  obs::set_enabled(false);
  {
    obs::Span s("test.dark", obs::Cat::Compute);  // Tracing off: inert.
  }
  obs::instant("test.dark", obs::Cat::Msg);
  const obs::TraceData data = obs::collect();
  ASSERT_EQ(data.events.size(), 1U);
  EXPECT_EQ(data.events[0].name, "test.early");
  EXPECT_EQ(data.events[0].a0, 99);
}

TEST(Trace, RingWraparoundKeepsTailAndCountsDropped) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::reset();
  // Capacity applies to buffers created after the call; a fresh thread
  // gets a fresh (small) ring.
  obs::set_ring_capacity(64);
  obs::set_enabled(true);
  std::thread writer([] {
    obs::set_thread_rank(5);
    for (int i = 0; i < 200; ++i) {
      obs::instant("test.wrap", obs::Cat::Msg, i);
    }
  });
  writer.join();
  obs::set_enabled(false);
  const obs::TraceData data = obs::collect();
  obs::set_ring_capacity(std::size_t{1} << 16);  // Restore the default.

  std::size_t kept = 0;
  std::int64_t min_a0 = 1'000'000;
  for (const auto& e : data.events) {
    if (e.rank == 5 && e.name == "test.wrap") {
      ++kept;
      min_a0 = std::min(min_a0, e.a0);
    }
  }
  // The ring holds the newest 64 events; the oldest 136 are dropped and
  // accounted for rather than silently lost.
  EXPECT_EQ(kept, 64U);
  EXPECT_EQ(data.dropped, 136U);
  EXPECT_EQ(min_a0, 136);
}

// A traced 4-rank diffusion run used by the export/perfmodel tests.
struct TracedRun {
  jitfd::core::RunSummary rank0;
  std::int64_t global_points = 0;
};

TracedRun traced_diffusion(
    int nranks, ir::MpiMode mode, std::int64_t n, int steps,
    int exchange_depth = 1,
    Operator::Backend backend = Operator::Backend::Interpret) {
  TracedRun out;
  out.global_points = n * n;
  obs::reset();
  jitfd::grid::Function::set_default_exchange_depth(exchange_depth);
  smpi::run(nranks, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{n - 1, n - 1}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = mode;
    opts.exchange_depth = exchange_depth;
    Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                                sym::Ex(0), u.forward()))},
                opts);
    op.set_default_backend(backend);
    const auto run = op.apply({.time_m = 0,
                               .time_M = steps - 1,
                               .scalars = {{"dt", 1e-3}},
                               .trace = true});
    if (comm.rank() == 0) {
      out.rank0 = run;
    }
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
  return out;
}

TEST(TraceExport, ChromeJsonSchemaFromFourRankRun) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  const TracedRun traced = traced_diffusion(4, ir::MpiMode::Basic, 12, 4);
  ASSERT_TRUE(traced.rank0.trace.active());

  const obs::TraceData data = traced.rank0.trace.data();
  ASSERT_FALSE(data.empty());
  EXPECT_EQ(data.dropped, 0U);

  const std::string json = obs::chrome_trace_string(data);
  const obs::ChromeCheck check = obs::validate_chrome_trace(json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.complete, 0);
  // One track per rank.
  EXPECT_EQ(check.tids, (std::set<int>{0, 1, 2, 3}));
  EXPECT_EQ(check.events, static_cast<std::int64_t>(data.events.size()));

  // The per-step and halo leaf spans made it into the stream.
  EXPECT_NE(json.find("\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"halo.pack\""), std::string::npos);
  EXPECT_NE(json.find("\"halo.send\""), std::string::npos);
  EXPECT_NE(json.find("\"halo.unpack\""), std::string::npos);

  // The human summary aggregates every rank.
  const std::string summary = traced.rank0.trace.summary();
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(summary.find("rank " + std::to_string(r)), std::string::npos)
        << summary;
  }
}

TEST(TraceExport, ProfileDistillsStepsMessagesAndPhases) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  const int steps = 5;
  const TracedRun traced = traced_diffusion(4, ir::MpiMode::Basic, 12, steps);
  const obs::RunProfile profile = traced.rank0.trace.profile();
  ASSERT_EQ(profile.ranks.size(), 4U);
  EXPECT_EQ(profile.steps(), static_cast<std::uint64_t>(steps));
  // 2x2 process grid, basic pattern: 2 face neighbours per rank, so 8
  // messages per exchange and one exchange per step (Table I).
  EXPECT_EQ(profile.messages(), static_cast<std::uint64_t>(8 * steps));
  EXPECT_GT(profile.bytes_sent(), 0U);
  EXPECT_GT(profile.wall_s(), 0.0);
  for (const auto& rank : profile.ranks) {
    EXPECT_GT(rank.compute_s, 0.0) << "rank " << rank.rank;
    EXPECT_GT(rank.comm_s(), 0.0) << "rank " << rank.rank;
  }
  const double fraction = profile.comm_fraction();
  EXPECT_GT(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
}

class MeasuredVsPredicted : public ::testing::TestWithParam<ir::MpiMode> {};

TEST_P(MeasuredVsPredicted, SmokeAgainstScalingModel) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  const ir::MpiMode mode = GetParam();
  const std::int64_t n = 16;
  const int steps = 4;
  const TracedRun traced = traced_diffusion(4, mode, n, steps);

  const obs::RunProfile profile = traced.rank0.trace.profile();
  const perf::MeasuredRun measured = perf::measured_from(
      profile, "diffusion", mode, /*so=*/2,
      traced.global_points * steps);
  EXPECT_EQ(measured.ranks, 4);
  EXPECT_EQ(measured.steps, steps);
  EXPECT_GT(measured.wall_seconds, 0.0);

  const perf::ScalingModel model(perf::archer2_node(), perf::acoustic_spec(),
                                 perf::Target::Cpu);
  const std::vector<int> topology{2, 2};
  const perf::Comparison cmp =
      perf::compare_run(measured, model, topology, {n, n});

  // The measured message count must equal the Table I structural
  // expectation exactly — a mismatch is a runtime bug, not model error.
  EXPECT_EQ(cmp.expected_messages,
            perf::table1_messages(topology, mode) *
                static_cast<std::uint64_t>(steps));
  EXPECT_TRUE(cmp.messages_match())
      << "mode " << ir::to_string(mode) << ": measured "
      << cmp.measured.messages << " expected " << cmp.expected_messages;

  EXPECT_GT(cmp.measured_gpts, 0.0);
  EXPECT_GT(cmp.predicted_gpts, 0.0);
  EXPECT_GT(cmp.predicted_step_seconds, 0.0);
  EXPECT_GE(cmp.predicted_comm_fraction, 0.0);
  EXPECT_LE(cmp.predicted_comm_fraction, 1.0);
  EXPECT_GT(cmp.measured_bytes_per_step, 0.0);
  EXPECT_GT(cmp.predicted_bytes_per_step, 0.0);

  // Both report formats are well-formed and carry the row.
  const std::string table = perf::comparison_table({cmp});
  EXPECT_NE(table.find(ir::to_string(mode)), std::string::npos) << table;
  EXPECT_EQ(table.find("MESSAGE MISMATCH"), std::string::npos) << table;
  const std::string json = perf::comparison_json({cmp});
  EXPECT_NE(json.find("\"diffusion\""), std::string::npos);
  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err << "\n" << json;
}

INSTANTIATE_TEST_SUITE_P(Patterns, MeasuredVsPredicted,
                         ::testing::Values(ir::MpiMode::Basic,
                                           ir::MpiMode::Diagonal,
                                           ir::MpiMode::Full));

TEST(Table1, StructuralMessageCounts) {
  // 2x2: 8 face / 12 star. 1x4 chain: 6 both ways. 2x2x2: every rank
  // has 3 face and 7 star neighbours.
  EXPECT_EQ(perf::table1_messages({2, 2}, ir::MpiMode::Basic), 8U);
  EXPECT_EQ(perf::table1_messages({2, 2}, ir::MpiMode::Diagonal), 12U);
  EXPECT_EQ(perf::table1_messages({2, 2}, ir::MpiMode::Full), 12U);
  EXPECT_EQ(perf::table1_messages({1, 4}, ir::MpiMode::Basic), 6U);
  EXPECT_EQ(perf::table1_messages({1, 4}, ir::MpiMode::Diagonal), 6U);
  EXPECT_EQ(perf::table1_messages({2, 2, 2}, ir::MpiMode::Basic), 24U);
  EXPECT_EQ(perf::table1_messages({2, 2, 2}, ir::MpiMode::Full), 56U);
  // Single rank: no neighbours, no messages.
  EXPECT_EQ(perf::table1_messages({1, 1}, ir::MpiMode::Full), 0U);
}

TEST(TraceExport, DeepHaloRunTracesStripsAndRealSteps) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  // exchange_depth 2 over 5 steps: the profile still counts 5 real
  // timesteps (per-sub-step "step" spans), wrapped in 3 "strip" spans,
  // and messages amortize to one Table I round per strip.
  const int steps = 5;
  const TracedRun traced =
      traced_diffusion(4, ir::MpiMode::Basic, 12, steps, /*exchange_depth=*/2);
  const obs::RunProfile profile = traced.rank0.trace.profile();
  ASSERT_EQ(profile.ranks.size(), 4U);
  EXPECT_EQ(profile.steps(), static_cast<std::uint64_t>(steps));
  // 2x2 basic: 8 messages per exchange round, one round per strip.
  EXPECT_EQ(profile.messages(), 8U * 3U);
  const std::string json = obs::chrome_trace_string(traced.rank0.trace.data());
  EXPECT_NE(json.find("\"strip\""), std::string::npos);
  EXPECT_NE(json.find("\"step\""), std::string::npos);
}

TEST(Table1, DeepHaloExpectationScalesWithStrips) {
  // A communication-avoiding run exchanges once per strip of
  // `exchange_depth` steps, so the structural expectation is
  // Table I x ceil(steps / depth) — including a partial final strip.
  const perf::ScalingModel model(perf::archer2_node(), perf::acoustic_spec(),
                                 perf::Target::Cpu);
  const std::vector<int> topology{2, 2};
  perf::MeasuredRun measured;
  measured.kernel = "diffusion";
  measured.mode = ir::MpiMode::Diagonal;
  measured.ranks = 4;
  measured.so = 2;
  measured.steps = 5;
  measured.exchange_depth = 2;
  measured.points_updated = 16 * 16 * 5;
  measured.wall_seconds = 0.1;
  measured.messages = 12 * 3;  // 3 strips: 2 full + 1 partial.
  const perf::Comparison cmp =
      perf::compare_run(measured, model, topology, {16, 16});
  EXPECT_EQ(cmp.expected_messages, 12U * 3U);
  EXPECT_TRUE(cmp.messages_match());
  // The report formats surface the depth.
  const std::string json = perf::comparison_json({cmp});
  EXPECT_NE(json.find("\"exchange_depth\": 2"), std::string::npos) << json;
  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err;
  const std::string table = perf::comparison_table({cmp});
  EXPECT_NE(table.find("diagonal"), std::string::npos) << table;
}

TEST(Trace, CatToStringIsExhaustiveAndDistinct) {
  // Every enumerator in [0, kCatCount) must map to a real name — "?" is
  // the out-of-range fallback — and no two categories may share one
  // (they are aggregation keys). Guards the enum against a new category
  // being appended without updating to_string or kCatCount.
  std::set<std::string> seen;
  for (int i = 0; i < obs::kCatCount; ++i) {
    const char* name = obs::to_string(static_cast<obs::Cat>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "category " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "category " << i << " duplicates name \"" << name << "\"";
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(obs::kCatCount));
  EXPECT_EQ(obs::to_string(obs::Cat::Run), std::string("run"));
  // Out-of-range values hit the fallback rather than UB.
  EXPECT_STREQ(obs::to_string(static_cast<obs::Cat>(obs::kCatCount)), "?");
}

TEST(TraceExport, JitProfileAttributionMatchesInterpreter) {
  if (!obs_built()) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C compiler available";
  }
  // The same 4-rank diffusion through both backends. JIT ranks record
  // no per-step or compute spans — their compute is derived from the
  // jit.run umbrella minus the halo callbacks — so the profiles must
  // agree on every deterministic dimension (messages, bytes) while the
  // JIT side still reports a positive, wall-bounded compute split.
  const std::int64_t n = 12;
  const int steps = 4;
  const TracedRun interp =
      traced_diffusion(4, ir::MpiMode::Basic, n, steps, 1,
                       Operator::Backend::Interpret);
  const obs::RunProfile pi = interp.rank0.trace.profile();
  const TracedRun jit = traced_diffusion(4, ir::MpiMode::Basic, n, steps, 1,
                                         Operator::Backend::Jit);
  const obs::RunProfile pj = jit.rank0.trace.profile();

  ASSERT_EQ(pi.ranks.size(), 4U);
  ASSERT_EQ(pj.ranks.size(), 4U);
  // Deterministic dimensions match exactly across backends.
  EXPECT_EQ(pj.messages(), pi.messages());
  EXPECT_EQ(pj.bytes_sent(), pi.bytes_sent());
  // The interpreter counts steps from per-step spans; the generated
  // loop records none, so its steps come out zero and compute falls
  // back to the umbrella split.
  EXPECT_EQ(pi.steps(), static_cast<std::uint64_t>(steps));
  EXPECT_EQ(pj.steps(), 0U);
  for (const obs::RankProfile& r : pj.ranks) {
    EXPECT_GT(r.compute_s, 0.0) << "jit rank " << r.rank;
    EXPECT_LE(r.compute_s, r.wall_s) << "jit rank " << r.rank;
    EXPECT_GT(r.comm_s(), 0.0) << "jit rank " << r.rank;
  }
  // Both feed the same comm_fraction contract.
  EXPECT_GT(pj.comm_fraction(), 0.0);
  EXPECT_LE(pj.comm_fraction(), 1.0);
}

TEST(TraceJson, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(obs::json_valid(R"({"a": [1, 2.5e3, "x\n", true, null]})"));
  std::string err;
  EXPECT_FALSE(obs::json_valid("{\"a\": }", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(obs::json_valid("{} trailing"));

  const obs::ChromeCheck bad = obs::validate_chrome_trace("[1, 2]");
  EXPECT_FALSE(bad.ok);
  const obs::ChromeCheck good = obs::validate_chrome_trace(
      R"({"traceEvents": [)"
      R"({"name": "m", "ph": "M", "ts": 0, "pid": 0, "tid": 1},)"
      R"({"name": "s", "ph": "X", "ts": 1, "dur": 5, "pid": 0, "tid": 1},)"
      R"({"name": "i", "ph": "i", "ts": 2, "pid": 0, "tid": 2}]})");
  EXPECT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.complete, 1);
  EXPECT_EQ(good.instants, 1);
  EXPECT_EQ(good.events, 2);
  EXPECT_EQ(good.tids, (std::set<int>{1, 2}));
}

}  // namespace
