// Numerical property tests of the full pipeline: formal convergence
// order of the generated FD operators on smooth fields, 1D end-to-end
// coverage, and long-run stability at the CFL limit.
#include <gtest/gtest.h>

#include <cmath>

#include "core/operator.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

// Apply the compiled Laplacian of a smooth field and return the maximum
// relative error against the analytic Laplacian over interior points.
double laplacian_error(std::int64_t n, int so) {
  const Grid g({n, n}, {1.0, 1.0});
  Function f("f", g, so);
  TimeFunction out("out", g, so, 1);  // Write target with a time axis.
  constexpr double kTau = 2.0 * M_PI;
  // Phase shifts avoid symmetry zeros at grid centres.
  constexpr double kPx = 0.7;
  constexpr double kPy = 0.3;
  f.init([&](std::span<const std::int64_t> gi) {
    const double x = static_cast<double>(gi[0]) / static_cast<double>(n - 1);
    const double y = static_cast<double>(gi[1]) / static_cast<double>(n - 1);
    return static_cast<float>(std::sin(kTau * x + kPx) *
                              std::sin(kTau * y + kPy));
  });

  sym::Ex lap;
  for (int d = 0; d < 2; ++d) {
    lap += sym::diff(f(), d, 2, so);
  }
  Operator op({ir::Eq(out.forward(), lap)});
  op.apply({.time_m = 0, .time_M = 0});

  double max_err = 0.0;
  // Skip points whose stencil reads ghost values (radius so/2).
  const std::int64_t margin = so / 2 + 1;
  for (std::int64_t i = margin; i < n - margin; ++i) {
    for (std::int64_t j = margin; j < n - margin; ++j) {
      const double x = static_cast<double>(i) / static_cast<double>(n - 1);
      const double y = static_cast<double>(j) / static_cast<double>(n - 1);
      const double exact = -2.0 * kTau * kTau * std::sin(kTau * x + kPx) *
                           std::sin(kTau * y + kPy);
      const std::array<std::int64_t, 2> idx{i, j};
      const double got = out.at_local(1, idx);
      max_err = std::max(max_err, std::abs(got - exact));
    }
  }
  return max_err / (2.0 * kTau * kTau);  // Relative to the field scale.
}

TEST(Convergence, LaplacianOrderMatchesSpaceOrder) {
  // Property: halving h divides the truncation error by ~2^so. Only
  // orders 2 and 4 are sweepable in single precision: at order >= 6 the
  // truncation error of any grid the stencil fits on is already below
  // the float32 rounding floor (~1e-6 relative), so those orders are
  // covered by the fixed-grid monotonicity test below instead.
  const std::pair<int, std::pair<std::int64_t, std::int64_t>> cases[] = {
      {2, {17, 33}}, {4, {17, 33}}};
  for (const auto& [so, grids] : cases) {
    const double coarse = laplacian_error(grids.first, so);
    const double fine = laplacian_error(grids.second, so);
    ASSERT_GT(coarse, 0.0);
    ASSERT_GT(fine, 0.0);
    // General grid ratio (h ~ 1/(n-1)); the so=6 pair is 1.5x, not 2x.
    const double h_ratio = static_cast<double>(grids.second - 1) /
                           static_cast<double>(grids.first - 1);
    const double observed_order =
        std::log(coarse / fine) / std::log(h_ratio);
    EXPECT_GT(observed_order, 0.7 * so) << "so=" << so << " coarse=" << coarse
                                        << " fine=" << fine;
  }
}

TEST(Convergence, HighOrderIsMoreAccurateAtFixedGrid) {
  const double e2 = laplacian_error(33, 2);
  const double e4 = laplacian_error(33, 4);
  const double e8 = laplacian_error(33, 8);
  EXPECT_LT(e4, e2);
  EXPECT_LT(e8, e4);
}

TEST(OneDimensional, DiffusionEndToEnd) {
  // Full pipeline in 1D (codegen-relevant edge case: rank-1 arrays).
  const std::int64_t n = 33;
  const Grid g({n}, {1.0});
  TimeFunction u("u", g, 2, 1);
  u.fill_global_box(0, std::vector<std::int64_t>{12},
                    std::vector<std::int64_t>{21}, 1.0F);
  const sym::Ex pde = u.dt() - sym::diff(u.now(), 0, 2, 2);
  Operator op({ir::Eq(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()))});
  const double h = g.spacing(0);
  const double dt = 0.4 * h * h;  // Stable explicit diffusion step.
  op.apply({.time_m = 0, .time_M = 49, .scalars = {{"dt", dt}}});
  const auto data = u.gather(50 % 2);
  // Mass spreads but the total decreases only via the boundaries.
  double mass = 0.0;
  double peak = 0.0;
  for (const float v : data) {
    EXPECT_GE(v, -1e-5);
    mass += v;
    peak = std::max<double>(peak, v);
  }
  EXPECT_GT(mass, 1.0);
  EXPECT_LT(mass, 9.0 + 1e-3);
  EXPECT_LT(peak, 1.0);  // The plateau has diffused down.
  // Symmetry about the centre is preserved.
  for (std::int64_t i = 0; i < n / 2; ++i) {
    EXPECT_NEAR(data[static_cast<std::size_t>(i)],
                data[static_cast<std::size_t>(n - 1 - i)], 1e-5);
  }
}

TEST(OneDimensional, DistributedMatchesSerial) {
  const std::int64_t n = 37;  // Uneven over 3 ranks.
  const int steps = 12;
  std::vector<float> expected;
  {
    const Grid g({n}, {1.0});
    TimeFunction u("u", g, 4, 1);
    u.set_global(0, std::vector<std::int64_t>{18}, 1.0F);
    const sym::Ex pde = u.dt() - sym::diff(u.now(), 0, 2, 4);
    Operator op(
        {ir::Eq(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()))});
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", 1e-4}}});
    expected = u.gather(steps % 2);
  }
  smpi::run(3, [&](smpi::Communicator& comm) {
    const Grid g({n}, {1.0}, comm);
    TimeFunction u("u", g, 4, 1);
    u.set_global(0, std::vector<std::int64_t>{18}, 1.0F);
    const sym::Ex pde = u.dt() - sym::diff(u.now(), 0, 2, 4);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    Operator op({ir::Eq(u.forward(), sym::solve(pde, sym::Ex(0),
                                                u.forward()))},
                opts);
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", 1e-4}}});
    const auto got = u.gather(steps % 2);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-7) << "at " << i;
      }
    }
  });
}

TEST(Stability, AcousticAtCflLimitStaysBoundedFor500Steps) {
  const std::int64_t n = 25;
  const Grid g({n, n}, {1.0, 1.0});
  TimeFunction u("u", g, 4, 2);
  const Function m("m", g, 4);
  const_cast<Function&>(m).fill(1.0F);  // Unit slowness.
  u.set_global(1, std::vector<std::int64_t>{12, 12}, 1e-3F);
  const sym::Ex pde = m() * u.dt2() - u.laplace();
  Operator op({ir::Eq(u.forward(), sym::solve(pde, sym::Ex(0), u.forward()))});
  const double h = g.spacing(0);
  const double dt = 0.5 * h / std::sqrt(2.0);  // ~70% of the 2D CFL bound.
  op.apply({.time_m = 1, .time_M = 500, .scalars = {{"dt", dt}}});
  EXPECT_TRUE(std::isfinite(u.norm2((501) % 3)));
  EXPECT_LT(u.norm2(501 % 3), 1.0);
}

}  // namespace
