// Unit tests for the IET data structures: bounds, constructors, body
// rewriting, and the paper-style debug rendering (Listings 4-6).
#include <gtest/gtest.h>

#include "ir/iet.h"
#include "symbolic/expr.h"

namespace {

using namespace jitfd::ir;  // NOLINT: test file.
namespace sym = jitfd::sym;

TEST(Bound, ResolvesAbsoluteAndSizeRelative) {
  EXPECT_EQ(Bound::absolute(0).resolve(100), 0);
  EXPECT_EQ(Bound::absolute(4).resolve(100), 4);
  EXPECT_EQ(Bound::from_size(0).resolve(100), 100);
  EXPECT_EQ(Bound::from_size(-4).resolve(100), 96);
}

TEST(Bound, GhostExtensionAppliesOnlyTowardNeighbours) {
  // The communication-avoiding extension grows a bound into the ghost
  // zone, but only where a Cartesian neighbour exists — physical
  // boundaries keep the unextended bound.
  Bound lo = Bound::absolute(0);
  lo.ghost = 3;
  EXPECT_EQ(lo.resolve_lo(10, /*has_neighbor=*/true), -3);
  EXPECT_EQ(lo.resolve_lo(10, /*has_neighbor=*/false), 0);
  Bound hi = Bound::from_size(0);
  hi.ghost = 2;
  EXPECT_EQ(hi.resolve_hi(10, /*has_neighbor=*/true), 12);
  EXPECT_EQ(hi.resolve_hi(10, /*has_neighbor=*/false), 10);
  // Plain resolve() ignores the extension (depth-1 consumers).
  EXPECT_EQ(hi.resolve(10), 10);
}

TEST(Iet, StridedTimeLoopAndSubstepRendering) {
  const auto stmt = make_expression(sym::symbol("a"), sym::Ex(1));
  LoopProps props;
  Bound lo = Bound::absolute(0);
  Bound hi = Bound::from_size(0);
  lo.ghost = hi.ghost = 2;
  const auto loop = make_iteration(0, lo, hi, props, {stmt});
  const auto time_loop = make_time_loop(
      {make_substep(0, {loop}), make_substep(1, {loop})}, 2);
  EXPECT_EQ(time_loop->time_stride, 2);
  const std::string s = to_debug_string(time_loop);
  EXPECT_NE(s.find("Iteration time stride 2"), std::string::npos) << s;
  EXPECT_NE(s.find("<Section substep t+0>"), std::string::npos) << s;
  EXPECT_NE(s.find("<Section substep t+1>"), std::string::npos) << s;
  // Ghost-extended bounds render with the per-side extension marker.
  EXPECT_NE(s.find("-g2"), std::string::npos) << s;
  EXPECT_NE(s.find("+g2"), std::string::npos) << s;
}

TEST(Iet, PlainTimeLoopRendersWithoutStride) {
  const auto time_loop =
      make_time_loop({make_expression(sym::symbol("a"), sym::Ex(1))});
  EXPECT_EQ(time_loop->time_stride, 1);
  const std::string s = to_debug_string(time_loop);
  EXPECT_EQ(s.find("stride"), std::string::npos) << s;
}

TEST(Iet, ConstructorsSetFields) {
  const sym::Ex t = sym::symbol("r0");
  const auto expr = make_expression(t, sym::Ex(2) * sym::symbol("x"));
  EXPECT_EQ(expr->type, NodeType::Expression);
  EXPECT_TRUE(expr->target == t);

  LoopProps props;
  props.parallel = true;
  const auto loop = make_iteration(0, Bound::absolute(0), Bound::from_size(0),
                                   props, {expr});
  EXPECT_EQ(loop->type, NodeType::Iteration);
  EXPECT_EQ(loop->dim, 0);
  EXPECT_TRUE(loop->props.parallel);
  EXPECT_EQ(loop->body.size(), 1U);

  const auto block =
      make_block_loop(0, Bound::absolute(0), Bound::from_size(0), 8,
                      LoopProps{}, {loop});
  EXPECT_EQ(block->type, NodeType::BlockLoop);
  EXPECT_EQ(block->tile, 8);
  EXPECT_NE(to_debug_string(block).find("BlockLoop"), std::string::npos);

  const auto spot = make_halo_spot({HaloNeed{7, 1, {2, 2}}});
  EXPECT_EQ(spot->needs.size(), 1U);
  EXPECT_EQ(spot->needs[0].field_id, 7);

  const auto comm = make_halo_comm(HaloCommKind::Start, spot->needs, 3);
  EXPECT_EQ(comm->comm_kind, HaloCommKind::Start);
  EXPECT_EQ(comm->spot_id, 3);
}

TEST(Iet, WithBodyRewritesChildrenOnly) {
  LoopProps props;
  props.vector = true;
  const auto inner = make_expression(sym::symbol("a"), sym::Ex(1));
  const auto loop = make_iteration(1, Bound::absolute(2), Bound::from_size(-2),
                                   props, {inner});
  const auto replacement = make_expression(sym::symbol("b"), sym::Ex(2));
  const auto rewritten = with_body(*loop, {replacement, replacement});
  EXPECT_EQ(rewritten->dim, 1);
  EXPECT_EQ(rewritten->lo, Bound::absolute(2));
  EXPECT_EQ(rewritten->props, props);
  EXPECT_EQ(rewritten->body.size(), 2U);
  // The original is untouched (immutability).
  EXPECT_EQ(loop->body.size(), 1U);
}

TEST(Iet, DebugStringRendersPaperStyle) {
  // Build the shape of the paper's Listing 6 and check the rendering.
  sym::FieldId u{0, "u", 2, true};
  const auto stmt = make_expression(
      sym::access(u, 1, {0, 0}),
      sym::symbol("dt") * sym::access(u, 0, {0, 0}));
  LoopProps inner_props;
  inner_props.vector = true;
  const auto y_loop = make_iteration(1, Bound::absolute(0),
                                     Bound::from_size(0), inner_props, {stmt});
  LoopProps outer_props;
  outer_props.parallel = true;
  const auto x_loop = make_iteration(0, Bound::absolute(0),
                                     Bound::from_size(0), outer_props,
                                     {y_loop});
  const auto update =
      make_halo_comm(HaloCommKind::Update, {HaloNeed{0, 0, {1, 1}}}, 0);
  const auto time_loop = make_time_loop({update, x_loop});
  const auto root = make_callable("Kernel", {time_loop});

  const std::string s = to_debug_string(root);
  EXPECT_NE(s.find("<Callable Kernel>"), std::string::npos) << s;
  EXPECT_NE(s.find("[affine,sequential] Iteration time"), std::string::npos);
  EXPECT_NE(s.find("<HaloUpdateCall spot0>"), std::string::npos);
  EXPECT_NE(s.find("[affine,parallel] Iteration x"), std::string::npos);
  EXPECT_NE(s.find("[affine,vector-dim] Iteration y"), std::string::npos);
  EXPECT_NE(s.find("u[t+1, x, y] = dt*u[t, x, y]"), std::string::npos);
  // Nesting order: time before halo before x before y before the store.
  EXPECT_LT(s.find("Iteration time"), s.find("HaloUpdateCall"));
  EXPECT_LT(s.find("HaloUpdateCall"), s.find("Iteration x"));
  EXPECT_LT(s.find("Iteration x"), s.find("Iteration y"));
}

TEST(Iet, HaloSpotRendering) {
  const auto spot = make_halo_spot(
      {HaloNeed{3, 0, {1, 1}}, HaloNeed{5, 1, {2, 2}}});
  const std::string s = to_debug_string(spot);
  EXPECT_NE(s.find("f3@t"), std::string::npos) << s;
  EXPECT_NE(s.find("f5@t+1"), std::string::npos);
}

TEST(Iet, SectionAndSparseRendering) {
  const auto root = make_callable(
      "K", {make_section("core", {make_sparse_op(2)})});
  const std::string s = to_debug_string(root);
  EXPECT_NE(s.find("<Section core>"), std::string::npos);
  EXPECT_NE(s.find("<SparseOp 2>"), std::string::npos);
}

}  // namespace
