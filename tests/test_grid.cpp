// Tests for the grid layer: block decomposition, global<->local index
// conversion, Grid topologies, Function storage layout and the
// distributed NumPy-style data view (paper Listings 1-2 semantics).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "grid/function.h"
#include "grid/grid.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::grid::Decomposition;
using jitfd::grid::Function;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace sym = jitfd::sym;

TEST(Decomposition, EvenSplit) {
  const Decomposition d(12, 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d.size_of(p), 3);
    EXPECT_EQ(d.start_of(p), 3 * p);
  }
}

TEST(Decomposition, UnevenSplitFrontLoadsExtras) {
  const Decomposition d(10, 4);  // 3,3,2,2
  EXPECT_EQ(d.size_of(0), 3);
  EXPECT_EQ(d.size_of(1), 3);
  EXPECT_EQ(d.size_of(2), 2);
  EXPECT_EQ(d.size_of(3), 2);
  EXPECT_EQ(d.start_of(2), 6);
  EXPECT_EQ(d.start_of(3), 8);
}

TEST(Decomposition, OwnerAndRoundTripProperty) {
  // Property: every global index maps to exactly one owner, and
  // local_to_global(global_to_local(g)) == g.
  for (const auto& [n, p] : std::initializer_list<std::pair<int, int>>{
           {17, 4}, {64, 8}, {5, 5}, {100, 7}, {3, 1}}) {
    const Decomposition d(n, p);
    std::int64_t covered = 0;
    for (int part = 0; part < p; ++part) {
      covered += d.size_of(part);
    }
    EXPECT_EQ(covered, n);
    for (std::int64_t g = 0; g < n; ++g) {
      const int owner = d.owner_of(g);
      const std::int64_t l = d.global_to_local(owner, g);
      ASSERT_GE(l, 0);
      EXPECT_EQ(d.local_to_global(owner, l), g);
      // No other part owns it.
      for (int part = 0; part < p; ++part) {
        if (part != owner) {
          EXPECT_EQ(d.global_to_local(part, g), -1);
        }
      }
    }
  }
}

TEST(Decomposition, SliceLocalization) {
  const Decomposition d(8, 2);  // parts: [0,4) and [4,8)
  // Global slice [1,7) -> local [1,4) on part 0 and [0,3) on part 1.
  EXPECT_EQ(d.localize_slice(0, 1, 7), (std::pair<std::int64_t, std::int64_t>{1, 4}));
  EXPECT_EQ(d.localize_slice(1, 1, 7), (std::pair<std::int64_t, std::int64_t>{0, 3}));
  // Non-overlapping slice is empty.
  const auto empty = d.localize_slice(1, 0, 3);
  EXPECT_GE(empty.first, empty.second);
}

TEST(Grid, SerialGridBasics) {
  const Grid g({4, 4}, {2.0, 2.0});
  EXPECT_EQ(g.ndims(), 2);
  EXPECT_FALSE(g.distributed());
  EXPECT_DOUBLE_EQ(g.spacing(0), 2.0 / 3.0);
  EXPECT_EQ(g.local_shape(), (std::vector<std::int64_t>{4, 4}));
  EXPECT_EQ(g.points(), 16);
  EXPECT_EQ(g.spacing_symbol(1).to_string(), "h_y");
}

TEST(Grid, RejectsInvalidShapes) {
  EXPECT_THROW(Grid({4}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Grid({1, 4}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Grid({4, 4}, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Grid({2, 2, 2, 2}, {1., 1., 1., 1.}), std::invalid_argument);
}

TEST(Grid, DistributedDefaultTopology) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    EXPECT_TRUE(g.distributed());
    EXPECT_EQ(g.topology(), (std::vector<int>{2, 2}));
    EXPECT_EQ(g.local_shape(), (std::vector<std::int64_t>{4, 4}));
    EXPECT_EQ(g.local_start(0), 4 * g.cart()->my_coords()[0]);
  });
}

TEST(Grid, NeighborPredicatesFollowCartesianTopology) {
  // 2x2 ranks on a non-periodic grid: each rank has exactly one
  // neighbour per dimension, on the side facing the domain interior.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    const auto& coords = g.cart()->my_coords();
    for (int d = 0; d < 2; ++d) {
      EXPECT_EQ(g.has_neighbor_low(d), coords[static_cast<std::size_t>(d)] == 1);
      EXPECT_EQ(g.has_neighbor_high(d),
                coords[static_cast<std::size_t>(d)] == 0);
    }
  });
  // Serial grids have no neighbours anywhere.
  const Grid serial({8, 8}, {1.0, 1.0});
  EXPECT_FALSE(serial.has_neighbor_low(0));
  EXPECT_FALSE(serial.has_neighbor_high(1));
}

TEST(Function, DefaultExchangeDepthScalesHaloCapacity) {
  // Deep-halo stepping needs room for k stencil radii; the process-wide
  // default depth multiplies the allocated halo at construction time.
  using jitfd::grid::Function;
  const Grid g({8, 8}, {1.0, 1.0});
  Function::set_default_exchange_depth(3);
  const Function deep("deep", g, /*space_order=*/4);
  Function::set_default_exchange_depth(1);
  const Function shallow("shallow", g, /*space_order=*/4);
  EXPECT_EQ(deep.halo(), 12);
  EXPECT_EQ(shallow.halo(), 4);
  EXPECT_THROW(Function::set_default_exchange_depth(0),
               std::invalid_argument);
}

TEST(Grid, CustomTopologyMatchesPaperFigure2) {
  // Paper Figure 2: 16 ranks decomposed as (4,2,2), (2,2,4), (4,4,1).
  smpi::run(16, [](smpi::Communicator& comm) {
    for (const auto& topo :
         {std::vector<int>{4, 2, 2}, {2, 2, 4}, {4, 4, 1}}) {
      const Grid g({16, 16, 16}, {1., 1., 1.}, comm, topo);
      EXPECT_EQ(g.topology(), topo);
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(g.local_shape()[static_cast<std::size_t>(d)],
                  16 / topo[static_cast<std::size_t>(d)]);
      }
    }
  });
}

TEST(Function, StorageLayoutIncludesHaloAndPadding) {
  const Grid g({8, 6}, {1.0, 1.0});
  const Function f("f", g, /*space_order=*/4, /*padding=*/2);
  EXPECT_EQ(f.halo(), 4);
  EXPECT_EQ(f.lpad(), 6);
  EXPECT_EQ(f.padded_shape(), (std::vector<std::int64_t>{20, 18}));
  EXPECT_EQ(f.buffer_points(), 20 * 18);
  EXPECT_EQ(f.time_buffers(), 1);
}

TEST(Function, LocalAccessReachesHalo) {
  const Grid g({4, 4}, {1.0, 1.0});
  Function f("f", g, 2);
  const std::array<std::int64_t, 2> interior{0, 0};
  const std::array<std::int64_t, 2> halo_pt{-2, 3};
  f.at_local(0, interior) = 1.5F;
  f.at_local(0, halo_pt) = 2.5F;
  EXPECT_FLOAT_EQ(f.at_local(0, interior), 1.5F);
  EXPECT_FLOAT_EQ(f.at_local(0, halo_pt), 2.5F);
}

TEST(Function, RejectsOddSpaceOrder) {
  const Grid g({4, 4}, {1.0, 1.0});
  EXPECT_THROW(Function("f", g, 3), std::invalid_argument);
  EXPECT_THROW(Function("f", g, 0), std::invalid_argument);
}

TEST(Function, FillGlobalBoxMatchesListing2) {
  // The paper's Listing 1, line 14: u.data[1:-1, 1:-1] = 1 on a 4x4 grid
  // over 4 ranks, each owning a 2x2 block (Listing 2 output).
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({4, 4}, {2.0, 2.0}, comm);
    TimeFunction u("u", g, 2, 2);
    const std::array<std::int64_t, 2> lo{1, 1};
    const std::array<std::int64_t, 2> hi{3, 3};
    u.fill_global_box(0, lo, hi, 1.0F);

    // Each rank sees exactly one written point, in the corner adjacent to
    // the grid centre — Listing 2's per-rank pattern.
    int ones = 0;
    for (std::int64_t i = 0; i < 2; ++i) {
      for (std::int64_t j = 0; j < 2; ++j) {
        const std::array<std::int64_t, 2> idx{i, j};
        if (u.at_local(0, idx) == 1.0F) {
          ++ones;
          // The written point's global coords must be inside [1,3)x[1,3).
          const std::int64_t gx = g.local_start(0) + i;
          const std::int64_t gy = g.local_start(1) + j;
          EXPECT_GE(gx, 1);
          EXPECT_LT(gx, 3);
          EXPECT_GE(gy, 1);
          EXPECT_LT(gy, 3);
        }
      }
    }
    EXPECT_EQ(ones, 1);
  });
}

TEST(Function, SetAndGetGlobalRespectOwnership) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({8, 8}, {1.0, 1.0}, comm);
    Function f("f", g, 2);
    const std::array<std::int64_t, 2> pt{5, 2};
    const bool wrote = f.set_global(0, pt, 9.0F);
    // Exactly one rank owns (5,2).
    std::vector<std::int64_t> count{wrote ? 1 : 0};
    comm.allreduce(std::span<std::int64_t>(count), smpi::ReduceOp::Sum);
    EXPECT_EQ(count[0], 1);
    EXPECT_FLOAT_EQ(f.get_global_or(0, pt, -1.0F), wrote ? 9.0F : -1.0F);
  });
}

TEST(Function, GatherReassemblesGlobalArray) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({6, 6}, {1.0, 1.0}, comm);
    Function f("f", g, 2);
    // Initialize with a recognizable global pattern.
    f.init([](std::span<const std::int64_t> gidx) {
      return static_cast<float>(10 * gidx[0] + gidx[1]);
    });
    const std::vector<float> global = f.gather(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(global.size(), 36U);
      for (std::int64_t i = 0; i < 6; ++i) {
        for (std::int64_t j = 0; j < 6; ++j) {
          EXPECT_FLOAT_EQ(global[static_cast<std::size_t>(6 * i + j)],
                          static_cast<float>(10 * i + j));
        }
      }
    } else {
      EXPECT_TRUE(global.empty());
    }
  });
}

TEST(Function, Norm2ReducesAcrossRanks) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({4, 4}, {1.0, 1.0}, comm);
    Function f("f", g, 2);
    f.fill(2.0F);
    EXPECT_DOUBLE_EQ(f.norm2(0), 16 * 4.0);
  });
}

TEST(TimeFunction, BuffersAndSymbolicAccessors) {
  const Grid g({4, 4}, {2.0, 2.0});
  const TimeFunction u("u", g, 2, 2);
  EXPECT_EQ(u.time_buffers(), 3);
  EXPECT_EQ(u.forward().to_string(), "u[t+1, x, y]");
  EXPECT_EQ(u.backward().to_string(), "u[t-1, x, y]");
  EXPECT_EQ(u.now().to_string(), "u[t, x, y]");
  EXPECT_THROW(TimeFunction("v", g, 2, 3), std::invalid_argument);
}

TEST(TimeFunction, TimeDerivativesExpandCorrectly) {
  const Grid g({4, 4}, {2.0, 2.0});
  const TimeFunction u("u", g, 2, 2);
  const sym::Ex dt = jitfd::grid::dt_symbol();
  EXPECT_TRUE(sym::expand(u.dt2()) ==
              sym::expand((u.forward() - 2 * u.now() + u.backward()) /
                          (dt * dt)));
  const TimeFunction v("v", g, 2, 1);
  EXPECT_TRUE(sym::expand(v.dt()) ==
              sym::expand((v.forward() - v.now()) / dt));
  EXPECT_THROW(v.dt2(), std::logic_error);
}

TEST(Function, LaplaceMatchesListing11Stencil) {
  // The 2nd-order 2D Laplacian weights of the paper's generated code
  // (Listing 11): -2 centre per dimension, +1 neighbours, scaled by 1/h^2.
  const Grid g({4, 4}, {2.0, 2.0});
  const TimeFunction u("u", g, 2, 1);
  const sym::Ex lap = u.laplace();
  const sym::Ex hx = g.spacing_symbol(0);
  const sym::Ex hy = g.spacing_symbol(1);
  const sym::Ex expected =
      (u.at_shifted(0, {1, 0}) - 2 * u.now() + u.at_shifted(0, {-1, 0})) /
          (hx * hx) +
      (u.at_shifted(0, {0, 1}) - 2 * u.now() + u.at_shifted(0, {0, -1})) /
          (hy * hy);
  EXPECT_TRUE(sym::expand(lap) == sym::expand(expected))
      << lap.to_string();
}

TEST(Function, DerivativeOfProductExpressionShiftsWholeSubtree) {
  // diff must act on composite expressions (the TTI rotated Laplacian
  // pattern): d/dx (c * du/dx) with so=2 references c at x+-1.
  const Grid g({8, 8}, {1.0, 1.0});
  const Function c("c", g, 2);
  const TimeFunction u("u", g, 2, 1);
  const sym::Ex inner = c() * sym::diff(u.now(), 0, 1, 2);
  const sym::Ex outer = sym::diff(inner, 0, 1, 2);
  bool saw_shifted_c = false;
  for (const sym::Ex& a : sym::field_accesses(outer)) {
    if (a.node().field.id == c.field_id().id &&
        a.node().space_offsets[0] != 0) {
      saw_shifted_c = true;
    }
  }
  EXPECT_TRUE(saw_shifted_c) << outer.to_string();
}

TEST(Function, UnevenDistributionStillCoversDomain) {
  // 7x5 grid over 3 ranks in one dimension: sizes 3,2,2.
  smpi::run(3, [](smpi::Communicator& comm) {
    const Grid g({7, 5}, {1.0, 1.0}, comm, {3, 1});
    Function f("f", g, 2);
    f.init([](std::span<const std::int64_t> gi) {
      return static_cast<float>(gi[0] + 100 * gi[1]);
    });
    const auto global = f.gather(0);
    if (comm.rank() == 0) {
      ASSERT_EQ(global.size(), 35U);
      EXPECT_FLOAT_EQ(global[5 * 6 + 4], 6.0F + 400.0F);
    }
  });
}

}  // namespace
