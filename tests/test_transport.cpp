// Cross-transport contract tests: the process_shm transport must be
// observably identical to the threads transport through the public
// Communicator surface — p2p matching, Request wait/test, collectives,
// the error contract (first failure by rank order, rank 0 with its
// original type), trace aggregation, and bitwise solver results.
//
// gtest caveat under process_shm: EXPECT/ASSERT failures inside forked
// rank processes are invisible to the parent's test result. Every check
// here therefore either runs on rank 0 (the launching process) or is
// funneled to rank 0 through a collective first.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "models/acoustic.h"
#include "models/elastic.h"
#include "models/tti.h"
#include "obs/trace.h"
#include "smpi/cart.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"

namespace {

using jitfd::grid::Grid;
using jitfd::models::AcousticModel;
using jitfd::models::ElasticModel;
using jitfd::models::TtiModel;
using jitfd::sparse::Injection;
using jitfd::sparse::SparseFunction;
using smpi::CartComm;
using smpi::Communicator;
using smpi::RankError;
using smpi::ReduceOp;
using smpi::Request;
using smpi::TransportKind;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;

/// Scoped environment override (process-wide; tests run single-threaded).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    old_ = had_ ? old : "";
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_;
  std::string old_;
};

// --- Transport selection ----------------------------------------------------

TEST(TransportSelect, FromStringIsStrict) {
  EXPECT_EQ(smpi::transport_from_string("threads"), TransportKind::Threads);
  EXPECT_EQ(smpi::transport_from_string("process_shm"),
            TransportKind::ProcessShm);
  try {
    smpi::transport_from_string("pthread");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    // The error must name the valid values, not just reject.
    EXPECT_NE(std::string(ex.what()).find("threads"), std::string::npos);
    EXPECT_NE(std::string(ex.what()).find("process_shm"), std::string::npos);
  }
}

TEST(TransportSelect, DefaultFollowsEnvStrictly) {
  {
    const ScopedEnv env("JITFD_TRANSPORT", "process_shm");
    EXPECT_EQ(smpi::default_transport(), TransportKind::ProcessShm);
  }
  {
    const ScopedEnv env("JITFD_TRANSPORT", "threads");
    EXPECT_EQ(smpi::default_transport(), TransportKind::Threads);
  }
  {
    const ScopedEnv env("JITFD_TRANSPORT", "forks");
    EXPECT_THROW(smpi::default_transport(), std::invalid_argument);
  }
}

TEST(TransportSelect, ExplicitOptionBeatsEnv) {
  const ScopedEnv env("JITFD_TRANSPORT", "process_shm");
  // Pinning Threads must ignore the env var: verify via a shared-memory
  // side effect that only rank threads (same address space) can produce.
  int visits = 0;
  smpi::launch({.nranks = 3, .transport = TransportKind::Threads},
               [&](Communicator& comm) {
                 (void)comm;
                 __atomic_fetch_add(&visits, 1, __ATOMIC_RELAXED);
               });
  EXPECT_EQ(visits, 3);
}

// --- Cross-transport parity (parameterized) ---------------------------------

class TransportParity : public ::testing::TestWithParam<TransportKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportParity,
    ::testing::Values(TransportKind::Threads, TransportKind::ProcessShm),
    [](const ::testing::TestParamInfo<TransportKind>& info) {
      return info.param == TransportKind::Threads ? "Threads" : "ProcessShm";
    });

TEST_P(TransportParity, EveryRankRunsAndSeesItsOwnRank) {
  std::vector<std::int64_t> sums;
  smpi::launch({.nranks = 4, .transport = GetParam()},
               [&](Communicator& comm) {
                 std::vector<std::int64_t> v{comm.rank(), 1};
                 comm.allreduce(std::span<std::int64_t>(v), ReduceOp::Sum);
                 if (comm.rank() == 0) {
                   sums = v;
                 }
               });
  ASSERT_EQ(sums.size(), 2U);
  EXPECT_EQ(sums[0], 0 + 1 + 2 + 3);
  EXPECT_EQ(sums[1], 4);  // Each rank ran exactly once.
}

TEST_P(TransportParity, RequestWaitAndTestAgree) {
  smpi::launch({.nranks = 2, .transport = GetParam()}, [](Communicator& comm) {
    if (comm.rank() == 0) {
      int a = 0;
      std::vector<float> b(512, 0.0F);
      Request ra = comm.irecv(&a, sizeof(int), 1, 1);
      Request rb = comm.irecv(b.data(), b.size() * sizeof(float), 1, 2);
      EXPECT_FALSE(ra.test());  // Nothing sent yet.
      comm.barrier();           // Sender fires after both are posted.
      while (!ra.test()) {
      }
      EXPECT_EQ(a, 77);
      const smpi::Status st = rb.wait();
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.tag, 2);
      EXPECT_EQ(st.bytes, b.size() * sizeof(float));
      EXPECT_FLOAT_EQ(b[13], 13.0F);
      // A completed request stays completed.
      EXPECT_TRUE(ra.test());
      EXPECT_TRUE(rb.test());
    } else {
      comm.barrier();
      const int v = 77;
      comm.send_n(&v, 1, 0, 1);
      std::vector<float> payload(512);
      std::iota(payload.begin(), payload.end(), 0.0F);
      comm.send(payload.data(), payload.size() * sizeof(float), 0, 2);
    }
  });
}

TEST_P(TransportParity, MatchingSemanticsObservedFromRankZero) {
  smpi::launch({.nranks = 3, .transport = GetParam()}, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.barrier();  // Both senders have queued their messages.
      // Tag selection among pending messages.
      int got = 0;
      comm.recv_n(&got, 1, 1, 2);
      EXPECT_EQ(got, 20);
      comm.recv_n(&got, 1, 1, 1);
      EXPECT_EQ(got, 10);
      // Non-overtaking per (source, tag).
      for (int i = 0; i < 16; ++i) {
        comm.recv_n(&got, 1, 2, 3);
        EXPECT_EQ(got, i);
      }
      // Any-source / any-tag still drains in arrival order.
      const int fin = 99;
      (void)fin;
      comm.barrier();
    } else if (comm.rank() == 1) {
      const int a = 10;
      const int b = 20;
      comm.send_n(&a, 1, 0, 1);
      comm.send_n(&b, 1, 0, 2);
      comm.barrier();
      comm.barrier();
    } else {
      for (int i = 0; i < 16; ++i) {
        comm.send_n(&i, 1, 0, 3);
      }
      comm.barrier();
      comm.barrier();
    }
  });
}

TEST_P(TransportParity, CollectivesAgree) {
  std::vector<double> stats;
  std::vector<int> gathered;
  int bcast_seen_sum = -1;
  smpi::launch({.nranks = 4, .transport = GetParam()},
               [&](Communicator& comm) {
                 const double r = comm.rank() + 1.0;
                 std::vector<double> v{r, r, r, r};
                 comm.allreduce(std::span<double>(v).subspan(0, 1),
                                ReduceOp::Sum);
                 comm.allreduce(std::span<double>(v).subspan(1, 1),
                                ReduceOp::Min);
                 comm.allreduce(std::span<double>(v).subspan(2, 1),
                                ReduceOp::Max);
                 comm.allreduce(std::span<double>(v).subspan(3, 1),
                                ReduceOp::Prod);

                 int root_val = (comm.rank() == 2) ? 123 : 0;
                 comm.bcast(&root_val, sizeof(int), 2);
                 // Prove every rank saw the broadcast, not just rank 0.
                 std::vector<std::int64_t> ok{root_val == 123 ? 1 : 0};
                 comm.allreduce(std::span<std::int64_t>(ok), ReduceOp::Sum);

                 const int mine = comm.rank() + 1;
                 std::vector<int> all(comm.rank() == 0 ? 4 : 0);
                 comm.gather(&mine, sizeof(int), all.data(), 0);

                 if (comm.rank() == 0) {
                   stats = v;
                   gathered = all;
                   bcast_seen_sum = static_cast<int>(ok[0]);
                 }
               });
  ASSERT_EQ(stats.size(), 4U);
  EXPECT_DOUBLE_EQ(stats[0], 10.0);
  EXPECT_DOUBLE_EQ(stats[1], 1.0);
  EXPECT_DOUBLE_EQ(stats[2], 4.0);
  EXPECT_DOUBLE_EQ(stats[3], 24.0);
  EXPECT_EQ(gathered, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(bcast_seen_sum, 4);
}

TEST_P(TransportParity, LargeBidirectionalMessagesDoNotDeadlock) {
  // Payloads far beyond the shared ring capacity, sent from both sides
  // before either receive is posted: buffered-send semantics must hold
  // on every transport (the basic halo pattern relies on it).
  smpi::launch({.nranks = 2, .transport = GetParam(), .shm_ring_kb = 16},
               [](Communicator& comm) {
                 const int other = 1 - comm.rank();
                 std::vector<double> out(1 << 16, comm.rank() + 1.0);
                 std::vector<double> in(1 << 16, 0.0);
                 comm.send(out.data(), out.size() * sizeof(double), other, 11);
                 comm.recv(in.data(), in.size() * sizeof(double), other, 11);
                 std::vector<std::int64_t> ok{
                     in.front() == other + 1.0 && in.back() == other + 1.0
                         ? 1
                         : 0};
                 comm.allreduce(std::span<std::int64_t>(ok), ReduceOp::Sum);
                 if (comm.rank() == 0) {
                   EXPECT_EQ(ok[0], 2);
                 }
               });
}

TEST_P(TransportParity, FirstErrorByRankOrderWins) {
  // Ranks 1 and 3 both fail; the contract reports rank 1 regardless of
  // which one's failure is noticed first.
  try {
    smpi::launch({.nranks = 4, .transport = GetParam()},
                 [](Communicator& comm) {
                   if (comm.rank() == 1) {
                     throw std::runtime_error("boom from 1");
                   }
                   if (comm.rank() == 3) {
                     throw std::runtime_error("boom from 3");
                   }
                 });
    FAIL() << "expected an exception";
  } catch (const std::exception& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find("boom from 1"), std::string::npos) << what;
    EXPECT_EQ(what.find("boom from 3"), std::string::npos) << what;
  }
}

// --- Error contract specifics of process_shm --------------------------------

struct CustomFailure : std::runtime_error {
  CustomFailure() : std::runtime_error("custom failure on rank 0") {}
};

TEST(TransportErrors, RankZeroKeepsItsOriginalExceptionType) {
  // Rank 0 runs in the launching process, so its exception must arrive
  // unflattened even though child errors cross a process boundary.
  EXPECT_THROW(
      smpi::launch({.nranks = 3, .transport = TransportKind::ProcessShm},
                   [](Communicator& comm) {
                     if (comm.rank() == 0) {
                       throw CustomFailure();
                     }
                   }),
      CustomFailure);
}

TEST(TransportErrors, ChildFailureArrivesAsRankErrorWithRankAndMessage) {
  try {
    smpi::launch({.nranks = 4, .transport = TransportKind::ProcessShm},
                 [](Communicator& comm) {
                   if (comm.rank() == 2) {
                     throw std::logic_error("child detonated");
                   }
                 });
    FAIL() << "expected RankError";
  } catch (const RankError& ex) {
    EXPECT_EQ(ex.rank(), 2);
    EXPECT_NE(std::string(ex.what()).find("child detonated"),
              std::string::npos);
  }
}

TEST(TransportErrors, CleanLaunchAfterFailedLaunch) {
  // A failed launch must fully reap its children and shared segment so
  // the next launch starts from a clean slate.
  EXPECT_THROW(
      smpi::launch({.nranks = 2, .transport = TransportKind::ProcessShm},
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       throw std::runtime_error("first launch fails");
                     }
                   }),
      RankError);
  std::int64_t sum = -1;
  smpi::launch({.nranks = 2, .transport = TransportKind::ProcessShm},
               [&](Communicator& comm) {
                 std::vector<std::int64_t> v{comm.rank() + 1};
                 comm.allreduce(std::span<std::int64_t>(v), ReduceOp::Sum);
                 if (comm.rank() == 0) {
                   sum = v[0];
                 }
               });
  EXPECT_EQ(sum, 3);
}

// --- Oversubscription -------------------------------------------------------

TEST(TransportOversubscribe, SixteenRankCartOnProcessShm) {
  // 16 rank processes on whatever cores the runner has: far past core
  // count on CI. A 2x2x4 topology exercises coords, shifts and a full
  // neighbour exchange along the fastest-varying dimension.
  std::int64_t rank_sum = -1;
  std::int64_t mismatches = -1;
  smpi::launch(
      {.nranks = 16, .transport = TransportKind::ProcessShm},
      [&](Communicator& comm) {
        CartComm cart(comm, {2, 2, 4});
        std::int64_t bad = 0;
        if (cart.rank_of(cart.my_coords()) != comm.rank()) {
          ++bad;
        }
        // Neighbour exchange along dim 2: send my rank right, receive
        // from the left; boundaries are kProcNull (no-op partners).
        const auto sh = cart.shift(2, 1);
        const std::int64_t mine = comm.rank();
        std::int64_t theirs = -1;
        comm.sendrecv(&mine, sizeof(mine), sh.dest, 7, &theirs,
                      sizeof(theirs), sh.source, 7);
        if (sh.source != smpi::kProcNull && theirs != sh.source) {
          ++bad;
        }
        std::vector<std::int64_t> v{comm.rank(), bad};
        comm.allreduce(std::span<std::int64_t>(v), ReduceOp::Sum);
        if (comm.rank() == 0) {
          rank_sum = v[0];
          mismatches = v[1];
        }
      });
  EXPECT_EQ(rank_sum, 16 * 15 / 2);
  EXPECT_EQ(mismatches, 0);
}

// --- Trace aggregation ------------------------------------------------------

TEST(TransportTrace, ChildTracesMergeIntoParentRegistry) {
  obs::set_enabled(true);
  const bool obs_built = obs::enabled();
  obs::set_enabled(false);
  if (!obs_built) {
    GTEST_SKIP() << "built with JITFD_OBS=OFF";
  }
  obs::reset();
  const obs::EnableScope scope(true);  // Inherited by forked children.
  smpi::launch({.nranks = 3, .transport = TransportKind::ProcessShm},
               [](Communicator& comm) {
                 {
                   const obs::Span span("transport.trace_probe",
                                        obs::Cat::Run, comm.rank());
                 }
                 comm.barrier();
               });
  const obs::TraceData data = obs::collect();
  bool seen[3] = {false, false, false};
  std::uint64_t t0[3] = {0, 0, 0};
  for (const auto& rec : data.events) {
    if (rec.name == "transport.trace_probe" && rec.rank >= 0 &&
        rec.rank < 3) {
      seen[rec.rank] = true;
      t0[rec.rank] = rec.t0_ns;
    }
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);  // Imported from the rank-1 process.
  EXPECT_TRUE(seen[2]);
  // Epoch realignment: all three probes ran within one launch, so after
  // the monotonic-clock shift they must land within a few seconds of
  // each other rather than ages apart.
  const std::uint64_t lo = std::min({t0[0], t0[1], t0[2]});
  const std::uint64_t hi = std::max({t0[0], t0[1], t0[2]});
  EXPECT_LT(hi - lo, 30ull * 1000 * 1000 * 1000);

  obs::reset();  // Imported records are dropped with everything else.
  const obs::TraceData after = obs::collect();
  for (const auto& rec : after.events) {
    EXPECT_NE(rec.name, "transport.trace_probe");
  }
}

// --- Bitwise solver equivalence ---------------------------------------------

/// Drives one source-injected simulation of `Model` on 4 ranks over the
/// given transport and returns the rank-0 gather of the final wavefield.
template <typename Model>
std::vector<float> run_distributed(TransportKind kind, ir::MpiMode mode,
                                   int exchange_depth) {
  const std::int64_t n = 20;
  const int steps = 8;
  const int so = 4;
  std::vector<float> out;
  smpi::launch({.nranks = 4, .transport = kind}, [&](Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    Model model(g, so);
    const SparseFunction src(
        "src", g, {{g.extent()[0] / 2 + 0.013, g.extent()[1] / 2 - 0.027}});
    const double dt = model.critical_dt();
    Injection inj(
        model.wavefield(), src,
        [dt](std::int64_t t) { return jitfd::sparse::ricker(t * dt, 6.0, 0.3); },
        nullptr, 1);
    ir::CompileOptions opts;
    opts.mode = mode;
    opts.exchange_depth = exchange_depth;
    auto op = model.make_operator(opts, {&inj});
    op->apply({.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});
    const int nb = model.wavefield().time_buffers();
    auto got = model.wavefield().gather((steps + 1) % nb);
    if (comm.rank() == 0) {
      out = std::move(got);
    }
  });
  return out;
}

/// The acceptance gate: identical rank counts and compile options must
/// produce byte-identical wavefields on both transports, for every halo
/// pattern and exchange depth.
template <typename Model>
void expect_bitwise_transport_equivalence() {
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    for (const int depth : {1, 2}) {
      SCOPED_TRACE(std::string("mode=") + ir::to_string(mode) +
                   " depth=" + std::to_string(depth));
      const std::vector<float> threads =
          run_distributed<Model>(TransportKind::Threads, mode, depth);
      const std::vector<float> procs =
          run_distributed<Model>(TransportKind::ProcessShm, mode, depth);
      ASSERT_FALSE(threads.empty());
      ASSERT_EQ(threads.size(), procs.size());
      const int cmp = std::memcmp(threads.data(), procs.data(),
                                  threads.size() * sizeof(float));
      if (cmp != 0) {
        for (std::size_t i = 0; i < threads.size(); ++i) {
          ASSERT_EQ(threads[i], procs[i]) << "first divergence at " << i;
        }
      }
      EXPECT_EQ(cmp, 0);
    }
  }
}

TEST(TransportEquivalence, AcousticBitwiseAcrossTransports) {
  expect_bitwise_transport_equivalence<AcousticModel>();
}

TEST(TransportEquivalence, ElasticBitwiseAcrossTransports) {
  expect_bitwise_transport_equivalence<ElasticModel>();
}

TEST(TransportEquivalence, TtiBitwiseAcrossTransports) {
  expect_bitwise_transport_equivalence<TtiModel>();
}

}  // namespace
