// Direct tests of the IET interpreter on hand-built trees: loop bounds,
// temp scoping, sections, the time loop, and error handling — independent
// of the lowering pipeline.
#include <gtest/gtest.h>

#include "grid/function.h"
#include "ir/eq.h"
#include "ir/iet.h"
#include "runtime/interpreter.h"

namespace {

using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
using jitfd::runtime::Interpreter;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

struct Fixture {
  Fixture() : grid({6, 5}, {1.0, 1.0}), u("ui", grid, 2, 1) {
    table.add(&u);
  }
  Grid grid;
  TimeFunction u;
  ir::FieldTable table;

  ir::NodePtr nest(ir::Bound xlo, ir::Bound xhi, ir::Bound ylo, ir::Bound yhi,
                   std::vector<ir::NodePtr> body) const {
    auto y = ir::make_iteration(1, ylo, yhi, {}, std::move(body));
    return ir::make_iteration(0, xlo, xhi, {}, {y});
  }
};

TEST(InterpreterDirect, WritesExactlyTheLoopBounds) {
  Fixture f;
  // u[t+1, x, y] = 1 over x in [1, size-1), y in [2, size).
  const auto stmt = ir::make_expression(f.u.forward(), sym::Ex(1));
  const auto loop = f.nest(ir::Bound::absolute(1), ir::Bound::from_size(-1),
                           ir::Bound::absolute(2), ir::Bound::from_size(0),
                           {stmt});
  const auto root = ir::make_callable("K", {ir::make_time_loop({loop})});
  Interpreter interp(root, f.table, nullptr);
  interp.run(0, 0, {});
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      const std::array<std::int64_t, 2> idx{i, j};
      const bool inside = i >= 1 && i < 5 && j >= 2;
      EXPECT_FLOAT_EQ(f.u.at_local(1, idx), inside ? 1.0F : 0.0F)
          << i << "," << j;
    }
  }
}

TEST(InterpreterDirect, TempsAreRecomputedPerPoint) {
  Fixture f;
  // r = x-varying value via a field read; u[t+1] = r * 2. Seed u[t]
  // with distinct values to verify per-point recomputation.
  f.u.init([](std::span<const std::int64_t> gi) {
    return static_cast<float>(gi[0] + 10 * gi[1]);
  });
  const auto t0 = ir::make_expression(sym::symbol("rt"), f.u.now());
  const auto st =
      ir::make_expression(f.u.forward(), sym::symbol("rt") * sym::Ex(2));
  const auto loop = f.nest(ir::Bound::absolute(0), ir::Bound::from_size(0),
                           ir::Bound::absolute(0), ir::Bound::from_size(0),
                           {t0, st});
  const auto root = ir::make_callable("K", {ir::make_time_loop({loop})});
  Interpreter interp(root, f.table, nullptr);
  interp.run(0, 0, {});
  const std::array<std::int64_t, 2> idx{3, 2};
  EXPECT_FLOAT_EQ(f.u.at_local(1, idx), 2.0F * (3 + 20));
}

TEST(InterpreterDirect, TimeLoopRunsInclusiveRange) {
  Fixture f;
  // u[t+1] = u[t] + 1 at one point; after steps 2..5 the value is 4.
  const auto stmt =
      ir::make_expression(f.u.forward(), f.u.now() + sym::Ex(1));
  const auto loop = f.nest(ir::Bound::absolute(0), ir::Bound::absolute(1),
                           ir::Bound::absolute(0), ir::Bound::absolute(1),
                           {stmt});
  const auto root = ir::make_callable("K", {ir::make_time_loop({loop})});
  Interpreter interp(root, f.table, nullptr);
  interp.run(2, 5, {});
  // 4 steps executed; the final write landed in buffer (5+1)%2 = 0.
  const std::array<std::int64_t, 2> idx{0, 0};
  EXPECT_FLOAT_EQ(f.u.at_local(0, idx), 4.0F);
}

TEST(InterpreterDirect, PrologueStatementsRunOnce) {
  Fixture f;
  // Invariant temp defined before the time loop, used inside it.
  const auto inv =
      ir::make_expression(sym::symbol("r0"), sym::symbol("dt") * sym::Ex(3));
  const auto stmt = ir::make_expression(f.u.forward(), sym::symbol("r0"));
  const auto loop = f.nest(ir::Bound::absolute(0), ir::Bound::absolute(2),
                           ir::Bound::absolute(0), ir::Bound::absolute(2),
                           {stmt});
  const auto root =
      ir::make_callable("K", {inv, ir::make_time_loop({loop})});
  Interpreter interp(root, f.table, nullptr);
  interp.run(0, 0, {{"dt", 0.5}});
  const std::array<std::int64_t, 2> idx{1, 1};
  EXPECT_FLOAT_EQ(f.u.at_local(1, idx), 1.5F);
}

TEST(InterpreterDirect, SectionsExecuteChildrenInOrder) {
  Fixture f;
  const auto w1 = ir::make_expression(f.u.forward(), sym::Ex(7));
  const auto w2 =
      ir::make_expression(f.u.forward(), f.u.forward() + sym::Ex(1));
  const auto l1 = f.nest(ir::Bound::absolute(0), ir::Bound::absolute(1),
                         ir::Bound::absolute(0), ir::Bound::absolute(1),
                         {w1});
  const auto l2 = f.nest(ir::Bound::absolute(0), ir::Bound::absolute(1),
                         ir::Bound::absolute(0), ir::Bound::absolute(1),
                         {w2});
  const auto root = ir::make_callable(
      "K", {ir::make_time_loop({ir::make_section("core", {l1, l2})})});
  Interpreter interp(root, f.table, nullptr);
  interp.run(0, 0, {});
  const std::array<std::int64_t, 2> idx{0, 0};
  EXPECT_FLOAT_EQ(f.u.at_local(1, idx), 8.0F);
}

TEST(InterpreterDirect, UnboundScalarThrows) {
  Fixture f;
  const auto stmt = ir::make_expression(f.u.forward(), sym::symbol("mystery"));
  const auto loop = f.nest(ir::Bound::absolute(0), ir::Bound::absolute(1),
                           ir::Bound::absolute(0), ir::Bound::absolute(1),
                           {stmt});
  const auto root = ir::make_callable("K", {ir::make_time_loop({loop})});
  Interpreter interp(root, f.table, nullptr);
  EXPECT_THROW(interp.run(0, 0, {}), std::invalid_argument);
}

TEST(InterpreterDirect, EmptyBoundsExecuteNothing) {
  Fixture f;
  const auto stmt = ir::make_expression(f.u.forward(), sym::Ex(9));
  // lo >= hi: zero iterations.
  const auto loop = f.nest(ir::Bound::absolute(3), ir::Bound::absolute(3),
                           ir::Bound::absolute(0), ir::Bound::from_size(0),
                           {stmt});
  const auto root = ir::make_callable("K", {ir::make_time_loop({loop})});
  Interpreter interp(root, f.table, nullptr);
  interp.run(0, 0, {});
  EXPECT_DOUBLE_EQ(f.u.norm2(1), 0.0);
}

}  // namespace
