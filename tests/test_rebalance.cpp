// Imbalance-aware decomposition: the rebalance planning math
// (rate-proportional biased splits, clamps, deterministic rounding) and
// the correctness bar behind it — a biased dimension-0 split must
// produce bitwise-identical wavefields to the uniform split on every
// pattern, exchange depth and transport, because decomposition
// placement is never allowed to change the model.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "core/operator.h"
#include "grid/function.h"
#include "grid/grid.h"
#include "obs/analysis.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Decomposition;
using jitfd::grid::Grid;
using jitfd::grid::RebalanceOptions;
using jitfd::grid::RebalancePlan;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace obs = jitfd::obs;
namespace sym = jitfd::sym;

// ---------------------------------------------------------------------
// Decomposition: explicit-sizes splits.
// ---------------------------------------------------------------------

TEST(Decomposition, ExplicitSizesIndexArithmetic) {
  const Decomposition d(28, std::vector<std::int64_t>{10, 10, 4, 4});
  EXPECT_FALSE(d.uniform());
  EXPECT_EQ(d.parts(), 4);
  EXPECT_EQ(d.global_size(), 28);
  EXPECT_EQ(d.size_of(0), 10);
  EXPECT_EQ(d.size_of(2), 4);
  EXPECT_EQ(d.start_of(0), 0);
  EXPECT_EQ(d.start_of(1), 10);
  EXPECT_EQ(d.start_of(3), 24);
  EXPECT_EQ(d.owner_of(0), 0);
  EXPECT_EQ(d.owner_of(9), 0);
  EXPECT_EQ(d.owner_of(10), 1);
  EXPECT_EQ(d.owner_of(23), 2);
  EXPECT_EQ(d.owner_of(27), 3);
  EXPECT_EQ(d.global_to_local(1, 15), 5);
  EXPECT_EQ(d.global_to_local(0, 15), -1);
  EXPECT_EQ(d.local_to_global(2, 3), 23);
  // localize_slice against the biased boundaries.
  const auto [lo, hi] = d.localize_slice(1, 8, 14);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 4);
  EXPECT_EQ(d.sizes(), (std::vector<std::int64_t>{10, 10, 4, 4}));
}

TEST(Decomposition, ExplicitSizesMatchingUniformStaysUniform) {
  // 10 = 3+3+2+2 is exactly the uniform split of 10 over 4: the
  // explicit form must degrade to the uniform representation so
  // uniform() keeps meaning "no bias applied".
  const Decomposition d(10, std::vector<std::int64_t>{3, 3, 2, 2});
  EXPECT_TRUE(d.uniform());
  const Decomposition u(10, 4);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d.size_of(p), u.size_of(p));
    EXPECT_EQ(d.start_of(p), u.start_of(p));
  }
}

TEST(Decomposition, ExplicitSizesRejectsMalformedRequests) {
  EXPECT_THROW(Decomposition(8, std::vector<std::int64_t>{}),
               std::invalid_argument);
  EXPECT_THROW(Decomposition(8, std::vector<std::int64_t>{4, 0, 4}),
               std::invalid_argument);
  EXPECT_THROW(Decomposition(8, std::vector<std::int64_t>{4, 5}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Rebalance planning math.
// ---------------------------------------------------------------------

TEST(Rebalance, BalancedLoadKeepsUniformSplit) {
  const Decomposition d(32, 4);
  const RebalancePlan plan =
      d.rebalance(std::vector<double>{1.0, 1.05, 1.0, 0.95});
  EXPECT_FALSE(plan.changed);
  EXPECT_NE(plan.reason.find("balanced"), std::string::npos) << plan.reason;
  EXPECT_EQ(plan.sizes, d.sizes());
  EXPECT_LT(plan.measured_ratio, 1.25);
}

TEST(Rebalance, SlowPartShrinksAndSumIsPreserved) {
  const Decomposition d(32, 4);
  const RebalancePlan plan =
      d.rebalance(std::vector<double>{1.0, 1.0, 3.0, 1.0});
  EXPECT_TRUE(plan.changed) << plan.reason;
  EXPECT_EQ(plan.critical_part, 2);
  EXPECT_NEAR(plan.measured_ratio, 2.0, 1e-12);
  ASSERT_EQ(plan.sizes.size(), 4U);
  EXPECT_EQ(std::accumulate(plan.sizes.begin(), plan.sizes.end(),
                            std::int64_t{0}),
            32);
  // The slow part ends with strictly fewer points than every fast part,
  // but never below the max_shrink floor (half of uniform 8 = 4).
  for (int p = 0; p < 4; ++p) {
    if (p != 2) {
      EXPECT_GT(plan.sizes[static_cast<std::size_t>(p)], plan.sizes[2]);
    }
  }
  EXPECT_GE(plan.sizes[2], 4);
  // The decision trail names the ratio, the threshold and the shrink.
  EXPECT_NE(plan.reason.find("ratio"), std::string::npos) << plan.reason;
  EXPECT_NE(plan.reason.find("part 2"), std::string::npos) << plan.reason;
}

TEST(Rebalance, RoundingIsDeterministicAcrossCalls) {
  const Decomposition d(29, 4);  // Non-divisible global: remainders matter.
  const std::vector<double> seconds{1.0, 2.2, 1.3, 1.1};
  const RebalancePlan a = d.rebalance(seconds);
  const RebalancePlan b = d.rebalance(seconds);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(std::accumulate(a.sizes.begin(), a.sizes.end(), std::int64_t{0}),
            29);
}

TEST(Rebalance, ClampFloorsRespectOptions) {
  const Decomposition d(32, 4);
  RebalanceOptions opts;
  opts.max_shrink = 0.75;
  // A 100x slow part would shrink to nearly nothing; the floor holds it
  // at ceil-like 0.75 * 8 = 6 and the reason records the clamp.
  const RebalancePlan plan =
      d.rebalance(std::vector<double>{1.0, 1.0, 100.0, 1.0}, opts);
  EXPECT_TRUE(plan.changed) << plan.reason;
  EXPECT_GE(plan.sizes[2], 6);
  EXPECT_NE(plan.reason.find("clamped"), std::string::npos) << plan.reason;
}

TEST(Rebalance, MalformedMeasurementsKeepTheSplitWithReason) {
  const Decomposition d(32, 4);
  const RebalancePlan wrong_arity =
      d.rebalance(std::vector<double>{1.0, 2.0});
  EXPECT_FALSE(wrong_arity.changed);
  EXPECT_FALSE(wrong_arity.reason.empty());
  const RebalancePlan non_positive =
      d.rebalance(std::vector<double>{1.0, 0.0, 1.0, 1.0});
  EXPECT_FALSE(non_positive.changed);
  EXPECT_FALSE(non_positive.reason.empty());
}

TEST(Rebalance, AnalysisReportOverloadMapsRanksToParts) {
  const Decomposition d(32, 4);
  obs::AnalysisReport rep;
  for (int r = 0; r < 4; ++r) {
    rep.rank_loads.push_back({r, r == 1 ? 3.0 : 1.0});
  }
  const RebalancePlan plan = d.rebalance(rep);
  EXPECT_TRUE(plan.changed) << plan.reason;
  EXPECT_EQ(plan.critical_part, 1);

  obs::AnalysisReport short_rep;
  short_rep.rank_loads.push_back({0, 1.0});
  const RebalancePlan bad = d.rebalance(short_rep);
  EXPECT_FALSE(bad.changed);
  EXPECT_FALSE(bad.reason.empty());
}

// ---------------------------------------------------------------------
// Grid-level correctness bar: biased splits never change the model.
// ---------------------------------------------------------------------

constexpr std::int64_t kEdge = 24;
constexpr int kSteps = 4;

// One diffusion run on 4 ranks over a pinned {4, 1} topology, gathered
// on rank 0 (the parent under both transports, so the returned field is
// valid in the caller). Empty `dim0_sizes` = uniform split.
std::vector<float> gathered_diffusion(
    smpi::TransportKind transport, ir::MpiMode mode, int depth,
    const std::vector<std::int64_t>& dim0_sizes) {
  std::vector<float> out;
  jitfd::grid::Function::set_default_exchange_depth(depth);
  smpi::launch({.nranks = 4, .transport = transport},
               [&](smpi::Communicator& comm) {
    const std::vector<int> topo{4, 1};
    std::optional<Grid> g;
    if (dim0_sizes.empty()) {
      g.emplace(std::vector<std::int64_t>{kEdge, kEdge},
                std::vector<double>{1.0, 1.0}, comm, topo);
    } else {
      g.emplace(std::vector<std::int64_t>{kEdge, kEdge},
                std::vector<double>{1.0, 1.0}, comm, topo, dim0_sizes);
    }
    TimeFunction u("u", *g, 2, 1);
    u.fill_global_box(0, std::vector<std::int64_t>{1, 1},
                      std::vector<std::int64_t>{kEdge - 1, kEdge - 1}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = mode;
    opts.exchange_depth = depth;
    Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                                sym::Ex(0), u.forward()))},
                opts);
    op.apply({.time_m = 0,
              .time_M = kSteps - 1,
              .scalars = {{"dt", 1e-3}}});
    const auto data = u.gather(kSteps % 2);
    if (comm.rank() == 0) {
      out = data;
    }
               });
  jitfd::grid::Function::set_default_exchange_depth(1);
  return out;
}

class BiasedSplitEquality
    : public ::testing::TestWithParam<std::tuple<ir::MpiMode, int>> {};

TEST_P(BiasedSplitEquality, BitwiseEqualToUniformOnBothTransports) {
  const auto [mode, depth] = GetParam();
  // An aggressively skewed dimension-0 split of 24 rows: {8, 4, 6, 6}
  // (uniform would be {6, 6, 6, 6}).
  const std::vector<std::int64_t> biased{8, 4, 6, 6};
  for (const smpi::TransportKind transport :
       {smpi::TransportKind::Threads, smpi::TransportKind::ProcessShm}) {
    const std::vector<float> uniform =
        gathered_diffusion(transport, mode, depth, {});
    const std::vector<float> rebalanced =
        gathered_diffusion(transport, mode, depth, biased);
    ASSERT_EQ(uniform.size(),
              static_cast<std::size_t>(kEdge * kEdge));
    ASSERT_EQ(rebalanced.size(), uniform.size());
    EXPECT_EQ(std::memcmp(uniform.data(), rebalanced.data(),
                          uniform.size() * sizeof(float)),
              0)
        << "mode " << ir::to_string(mode) << " depth " << depth
        << " transport " << smpi::to_string(transport);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndDepths, BiasedSplitEquality,
    ::testing::Combine(::testing::Values(ir::MpiMode::Basic,
                                         ir::MpiMode::Diagonal,
                                         ir::MpiMode::Full),
                       ::testing::Values(1, 2)));

TEST(GridRebalance, RankDivergentSizesRejectedOnAllRanks) {
  // Each rank requests a different biased split: the allreduce check
  // must reject the bias on EVERY rank (uniform fallback, recorded
  // clamp reason) instead of deadlocking or diverging.
  smpi::run(4, [](smpi::Communicator& comm) {
    std::vector<std::int64_t> sizes{8, 4, 6, 6};
    if (comm.rank() % 2 == 1) {
      sizes = {4, 8, 6, 6};
    }
    const Grid g({kEdge, kEdge}, {1.0, 1.0}, comm, {4, 1}, sizes);
    EXPECT_FALSE(g.rebalance_clamp_reason().empty());
    EXPECT_NE(g.rebalance_clamp_reason().find("diverge"), std::string::npos)
        << g.rebalance_clamp_reason();
    // The grid fell back to the uniform split.
    EXPECT_TRUE(g.decomposition(0).uniform());
    EXPECT_EQ(g.local_shape()[0], kEdge / 4);
  });
}

TEST(GridRebalance, UniformRequestIsAppliedAndShrinksMinLocalSize) {
  smpi::run(4, [](smpi::Communicator& comm) {
    const std::vector<std::int64_t> sizes{8, 4, 6, 6};
    const Grid g({kEdge, kEdge}, {1.0, 1.0}, comm, {4, 1}, sizes);
    EXPECT_TRUE(g.rebalance_clamp_reason().empty())
        << g.rebalance_clamp_reason();
    EXPECT_FALSE(g.decomposition(0).uniform());
    EXPECT_EQ(g.min_local_size(0), 4);
    EXPECT_EQ(g.local_shape()[0],
              sizes[static_cast<std::size_t>(
                  g.cart()->my_coords()[0])]);
  });
}

TEST(GridRebalance, PlanRebalanceClampsOnSerialAndArityMismatch) {
  const Grid serial({kEdge, kEdge}, {1.0, 1.0});
  obs::AnalysisReport rep;
  rep.rank_loads.push_back({0, 1.0});
  const RebalancePlan plan = serial.plan_rebalance(rep);
  EXPECT_FALSE(plan.changed);
  EXPECT_FALSE(plan.reason.empty());

  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({kEdge, kEdge}, {1.0, 1.0}, comm, {4, 1});
    obs::AnalysisReport bad;
    bad.rank_loads.push_back({0, 1.0});  // 1 load for 4 ranks.
    const RebalancePlan p = g.plan_rebalance(bad);
    EXPECT_FALSE(p.changed);
    EXPECT_FALSE(p.reason.empty());
  });
}

TEST(GridRebalance, PlanRebalancePinsTheLoadedSlab) {
  // Rank-uniform loads with rank 2 three times slower: the plan must
  // shrink part 2 of the dimension-0 decomposition.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({kEdge, kEdge}, {1.0, 1.0}, comm, {4, 1});
    obs::AnalysisReport rep;
    for (int r = 0; r < 4; ++r) {
      rep.rank_loads.push_back({r, r == 2 ? 3.0 : 1.0});
    }
    const RebalancePlan plan = g.plan_rebalance(rep);
    EXPECT_TRUE(plan.changed) << plan.reason;
    EXPECT_EQ(plan.critical_part, 2);
    ASSERT_EQ(plan.sizes.size(), 4U);
    for (int p = 0; p < 4; ++p) {
      if (p != 2) {
        EXPECT_GT(plan.sizes[static_cast<std::size_t>(p)], plan.sizes[2]);
      }
    }
  });
}

}  // namespace
