// Tests for the four wave-propagator models: construction, working-set
// field counts (paper Section IV-B), kernel-intensity ordering, physical
// sanity (causality, boundedness), and serial-vs-distributed equivalence
// of full source-driven simulations for each model.
#include <gtest/gtest.h>

#include <cmath>

#include "models/acoustic.h"
#include "models/elastic.h"
#include "models/tti.h"
#include "models/viscoelastic.h"
#include "smpi/runtime.h"
#include "sparse/sparse_function.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::models::AcousticModel;
using jitfd::models::ElasticModel;
using jitfd::models::TtiModel;
using jitfd::models::ViscoelasticModel;
using jitfd::sparse::Injection;
using jitfd::sparse::SparseFunction;
namespace ir = jitfd::ir;

TEST(Models, WorkingSetFieldCountsMatchPaper) {
  // Paper Section IV-B: acoustic 5, elastic 22, viscoelastic 36 fields in
  // 3D. TTI: the paper counts 12 with theta/phi; we store four
  // precomputed direction cosines instead of the two angles and add the
  // two CIRE scratch fields -> 16 (see DESIGN.md).
  const Grid g3({8, 8, 8}, {1.0, 1.0, 1.0});
  ElasticModel elastic(g3, 4);
  EXPECT_EQ(elastic.field_count(), 22);
  ViscoelasticModel visco(g3, 4);
  EXPECT_EQ(visco.field_count(), 36);
  TtiModel tti(g3, 4);
  EXPECT_EQ(tti.field_count(), 16);
}

TEST(Models, KernelIntensityOrderingMatchesFigure7) {
  // TTI is by far the most flop-intensive per point; acoustic the least
  // per field. Compile each 3D kernel at SDO 8 and compare AST-derived
  // flop counts (the paper's compile-time OI methodology).
  const Grid g({8, 8, 8}, {1.0, 1.0, 1.0});
  AcousticModel ac(g, 8);
  TtiModel tti(g, 8);
  auto op_ac = ac.make_operator({});
  auto op_tti = tti.make_operator({});
  const auto facts_ac = jitfd::models::analyze(*op_ac, "acoustic", 8, 5);
  const auto facts_tti = jitfd::models::analyze(*op_tti, "tti", 8, 14);
  EXPECT_GT(facts_ac.flops_per_point, 10);
  EXPECT_GT(facts_tti.flops_per_point, 5 * facts_ac.flops_per_point);
  EXPECT_GT(facts_tti.reads_per_point, facts_ac.reads_per_point);
}

TEST(Models, AcousticWaveIsCausalAndDamped) {
  const std::int64_t n = 33;
  const Grid g({n, n}, {1.0, 1.0});
  AcousticModel model(g, 4, /*velocity=*/1.0, /*nbl=*/4);
  const SparseFunction src("src", g, {{0.5, 0.5}});
  const double dt = model.critical_dt();
  Injection inj(
      model.wavefield(), src,
      [&](std::int64_t t) {
        return jitfd::sparse::ricker(t * dt, 8.0, 0.15);
      },
      nullptr, 1);
  auto op = model.make_operator({}, {&inj});
  const int steps = 10;
  op->apply({.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});

  // Causality: after `steps` steps the wave travelled at most
  // c * steps * dt (+ stencil radius widening); the far corner is silent.
  const std::vector<std::int64_t> corner{1, 1};
  EXPECT_EQ(model.wavefield().get_global_or((steps + 1) % 3, corner, 0.0F),
            0.0F);
  // But energy was injected.
  EXPECT_GT(model.field_energy(steps), 0.0);

  // Longer run with absorbing boundaries remains bounded.
  op->apply({.time_m = steps + 1, .time_M = 120, .scalars = model.scalars(dt)});
  const double e = model.field_energy(120);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_LT(e, 1e6);
}

TEST(Models, AcousticStandingModeFrequencyIsCorrect) {
  // Seed u with one interior bump and check the discrete solution decays
  // and oscillates without blowup for several periods at the CFL dt
  // (a cheap stability/consistency check of the 2nd-order-in-time update).
  const std::int64_t n = 17;
  const Grid g({n, n}, {1.0, 1.0});
  AcousticModel model(g, 4, 1.0);
  const double dt = model.critical_dt();
  // Smooth initial condition in both t0-equivalent buffers.
  for (const int buf : {0, 1}) {
    model.wavefield().init([&](std::span<const std::int64_t> gi) {
      const double x = static_cast<double>(gi[0]) / (n - 1);
      const double y = static_cast<double>(gi[1]) / (n - 1);
      return static_cast<float>(std::sin(M_PI * x) * std::sin(M_PI * y));
    });
    (void)buf;
  }
  auto op = model.make_operator({});
  op->apply({.time_m = 1, .time_M = 200, .scalars = model.scalars(dt)});
  EXPECT_TRUE(std::isfinite(model.field_energy(200)));
  EXPECT_LT(model.field_energy(200), 1e4);
}

template <typename Model>
void run_mode_equivalence(int so, std::int64_t n, int steps,
                          double tolerance) {
  // Serial reference with a point source.
  std::vector<float> expected;
  double ref_energy = 0.0;
  auto drive = [&](Model& model, const Grid& g) {
    const SparseFunction src(
        "src", g, {{g.extent()[0] / 2 + 0.013, g.extent()[1] / 2 - 0.027}});
    const double dt = model.critical_dt();
    Injection inj(
        model.wavefield(), src,
        [dt](std::int64_t t) {
          return jitfd::sparse::ricker(t * dt, 6.0, 0.3);
        },
        nullptr, 1);
    ir::CompileOptions opts;
    auto op = model.make_operator(opts, {&inj});
    op->apply({.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});
    const int nb = model.wavefield().time_buffers();
    return model.wavefield().gather((steps + 1) % nb);
  };
  {
    const Grid g({n, n}, {1.0, 1.0});
    Model model(g, so);
    expected = drive(model, g);
    ref_energy = model.field_energy(steps);
    EXPECT_GT(ref_energy, 0.0) << "wave did not start";
  }

  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      Model model(g, so);
      const SparseFunction src(
          "src", g, {{g.extent()[0] / 2 + 0.013, g.extent()[1] / 2 - 0.027}});
      const double dt = model.critical_dt();
      Injection inj(
          model.wavefield(), src,
          [dt](std::int64_t t) {
            return jitfd::sparse::ricker(t * dt, 6.0, 0.3);
          },
          nullptr, 1);
      ir::CompileOptions opts;
      opts.mode = mode;
      auto op = model.make_operator(opts, {&inj});
      op->apply({.time_m = 1, .time_M = steps, .scalars = model.scalars(dt)});
      const int nb = model.wavefield().time_buffers();
      const auto got = model.wavefield().gather((steps + 1) % nb);
      if (comm.rank() == 0) {
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_NEAR(got[i], expected[i], tolerance)
              << "mode " << ir::to_string(mode) << " at " << i;
        }
      }
    });
  }
}

TEST(Models, AcousticModesMatchSerial) {
  run_mode_equivalence<AcousticModel>(4, 20, 12, 1e-6);
}

TEST(Models, TtiModesMatchSerial) {
  run_mode_equivalence<TtiModel>(4, 20, 8, 1e-6);
}

TEST(Models, ElasticModesMatchSerial) {
  run_mode_equivalence<ElasticModel>(4, 20, 10, 1e-6);
}

TEST(Models, ViscoelasticModesMatchSerial) {
  run_mode_equivalence<ViscoelasticModel>(4, 20, 10, 1e-6);
}

TEST(Models, Acoustic3DDistributedSmoke) {
  // Small 3D run across 8 ranks (2x2x2) in diagonal mode: exercises the
  // 26-neighbour exchange including corners.
  const std::int64_t n = 12;
  const int steps = 4;
  std::vector<float> expected;
  {
    const Grid g({n, n, n}, {1.0, 1.0, 1.0});
    AcousticModel model(g, 4);
    model.wavefield().fill_global_box(
        0, std::vector<std::int64_t>{5, 5, 5},
        std::vector<std::int64_t>{7, 7, 7}, 1.0F);
    model.wavefield().fill_global_box(
        1, std::vector<std::int64_t>{5, 5, 5},
        std::vector<std::int64_t>{7, 7, 7}, 1.0F);
    auto op = model.make_operator({});
    op->apply({.time_m = 1, .time_M = steps,
               .scalars = model.scalars(model.critical_dt())});
    expected = model.wavefield().gather((steps + 1) % 3);
  }
  smpi::run(8, [&](smpi::Communicator& comm) {
    const Grid g({n, n, n}, {1.0, 1.0, 1.0}, comm);
    AcousticModel model(g, 4);
    model.wavefield().fill_global_box(
        0, std::vector<std::int64_t>{5, 5, 5},
        std::vector<std::int64_t>{7, 7, 7}, 1.0F);
    model.wavefield().fill_global_box(
        1, std::vector<std::int64_t>{5, 5, 5},
        std::vector<std::int64_t>{7, 7, 7}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Diagonal;
    auto op = model.make_operator(opts);
    op->apply({.time_m = 1, .time_M = steps,
               .scalars = model.scalars(model.critical_dt())});
    const auto got = model.wavefield().gather((steps + 1) % 3);
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6) << "at " << i;
      }
    }
  });
}

TEST(Models, TtiExchangesCireTemporariesEveryStep) {
  // The CIRE formulation materializes the inner rotated derivative into
  // scratch fields (zdp/zdq) that are recomputed each step and read at
  // offsets by the outer application: the compiler must give them a
  // per-step (never hoisted) halo exchange, after the p/q exchange of
  // the first cluster. The direction-cosine fields are only read at the
  // iteration point and need no exchange at all.
  smpi::run(4, [](smpi::Communicator& comm) {
    const Grid g({12, 12}, {1.0, 1.0}, comm);
    TtiModel model(g, 4);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    auto op = model.make_operator(opts);
    const auto& spots = op->info().spots;
    ASSERT_EQ(spots.size(), 2U);
    EXPECT_FALSE(spots[0].hoisted);
    EXPECT_FALSE(spots[1].hoisted);
    // Spot 0: the wavefields p@t, q@t; spot 1: the scratch fields.
    EXPECT_EQ(spots[0].needs.size(), 2U);
    EXPECT_EQ(spots[1].needs.size(), 2U);
    for (const auto& need : spots[1].needs) {
      EXPECT_EQ(need.time_offset, 0);
    }
  });
}

template <typename Model>
void run_3d_equivalence(ir::MpiMode mode, int so, std::int64_t n, int steps) {
  // Regression for the CSE-temporary halo-detection bug: in 3D the CSE
  // pass factors many single-access reads of v@t+1 into temporaries, and
  // halo analysis must still see them. Fill every first-buffer field of
  // the model through its wavefield proxy and compare distributed vs
  // serial.
  std::vector<float> expected;
  {
    const Grid g({n, n, n}, {1.0, 1.0, 1.0});
    Model model(g, so);
    model.wavefield().fill_global_box(
        0, std::vector<std::int64_t>{n / 2 - 1, n / 2 - 1, n / 2 - 1},
        std::vector<std::int64_t>{n / 2 + 1, n / 2 + 1, n / 2 + 1}, 1.0F);
    auto op = model.make_operator({});
    op->apply({.time_m = 0, .time_M = steps - 1,
               .scalars = model.scalars(model.critical_dt())});
    const int nb = model.wavefield().time_buffers();
    expected = model.wavefield().gather(steps % nb);
  }
  smpi::run(8, [&](smpi::Communicator& comm) {
    const Grid g({n, n, n}, {1.0, 1.0, 1.0}, comm);
    Model model(g, so);
    model.wavefield().fill_global_box(
        0, std::vector<std::int64_t>{n / 2 - 1, n / 2 - 1, n / 2 - 1},
        std::vector<std::int64_t>{n / 2 + 1, n / 2 + 1, n / 2 + 1}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = mode;
    auto op = model.make_operator(opts);
    op->apply({.time_m = 0, .time_M = steps - 1,
               .scalars = model.scalars(model.critical_dt())});
    const int nb = model.wavefield().time_buffers();
    const auto got = model.wavefield().gather(steps % nb);
    if (comm.rank() == 0) {
      double ref_mass = 0.0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-6)
            << "mode " << ir::to_string(mode) << " at " << i;
        ref_mass += std::abs(expected[i]);
      }
      EXPECT_GT(ref_mass, 0.0) << "reference field is empty";
    }
  });
}

TEST(Models, Elastic3DDistributedMatchesSerial) {
  run_3d_equivalence<ElasticModel>(ir::MpiMode::Basic, 4, 12, 4);
  run_3d_equivalence<ElasticModel>(ir::MpiMode::Full, 4, 12, 4);
}

TEST(Models, Viscoelastic3DDistributedMatchesSerial) {
  run_3d_equivalence<ViscoelasticModel>(ir::MpiMode::Diagonal, 4, 12, 4);
}

TEST(Models, Tti3DDistributedMatchesSerial) {
  run_3d_equivalence<TtiModel>(ir::MpiMode::Basic, 4, 12, 3);
}

template <typename Model>
void run_deep_halo_equivalence(int so, std::int64_t n, int steps, int depth) {
  // Communication-avoiding stepping must be a pure schedule change: with
  // exchange depth k the ghost zones are recomputed redundantly from
  // deeper halos instead of being refreshed every step, and the owned
  // values must come out bitwise identical to the per-step schedule.
  // Serial reference (depth clamps to 1 there; it IS the k=1 answer).
  std::vector<float> expected;
  {
    const Grid g({n, n}, {1.0, 1.0});
    Model model(g, so);
    model.wavefield().fill_global_box(
        0, std::vector<std::int64_t>{n / 2 - 1, n / 2 - 1},
        std::vector<std::int64_t>{n / 2 + 1, n / 2 + 1}, 1.0F);
    auto op = model.make_operator({});
    op->apply({.time_m = 0, .time_M = steps - 1,
               .scalars = model.scalars(model.critical_dt())});
    const int nb = model.wavefield().time_buffers();
    expected = model.wavefield().gather(steps % nb);
  }

  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    // Halo capacity is fixed at Function construction; allocate deeper
    // than the requested depth needs so the planner never clamps on
    // capacity. Set outside smpi::run: the default is process-wide and
    // ranks construct their fields concurrently.
    jitfd::grid::Function::set_default_exchange_depth(2 * depth);
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({n, n}, {1.0, 1.0}, comm);
      Model model(g, so);
      model.wavefield().fill_global_box(
          0, std::vector<std::int64_t>{n / 2 - 1, n / 2 - 1},
          std::vector<std::int64_t>{n / 2 + 1, n / 2 + 1}, 1.0F);
      ir::CompileOptions opts;
      opts.mode = mode;
      opts.exchange_depth = depth;
      auto op = model.make_operator(opts);
      ASSERT_EQ(op->info().exchange_depth, depth)
          << "clamped: " << op->info().exchange_depth_clamp_reason;
      op->apply({.time_m = 0, .time_M = steps - 1,
                 .scalars = model.scalars(model.critical_dt())});
      const int nb = model.wavefield().time_buffers();
      const auto got = model.wavefield().gather(steps % nb);
      if (comm.rank() == 0) {
        ASSERT_EQ(got.size(), expected.size());
        double mass = 0.0;
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_NEAR(got[i], expected[i], 1e-6)
              << "mode " << ir::to_string(mode) << " depth " << depth
              << " at " << i;
          mass += std::abs(expected[i]);
        }
        EXPECT_GT(mass, 0.0) << "reference field is empty";
      }
    });
    jitfd::grid::Function::set_default_exchange_depth(1);
  }
}

TEST(Models, AcousticDeepHaloMatchesPerStepExchange) {
  run_deep_halo_equivalence<AcousticModel>(4, 20, 12, 2);
}

TEST(Models, AcousticDeepHaloDepth4WithPartialStrip) {
  // 10 steps at depth 4: the last strip covers only 2 steps and must
  // skip its out-of-range sub-steps.
  run_deep_halo_equivalence<AcousticModel>(4, 24, 10, 4);
}

TEST(Models, ElasticDeepHaloMatchesPerStepExchange) {
  // Multi-cluster kernel: in-strip cross-field reads (stress from
  // just-updated velocities) exercise the coverage analysis.
  run_deep_halo_equivalence<ElasticModel>(4, 20, 10, 2);
}

TEST(Models, ViscoelasticEnergyDecaysOverTime) {
  // Viscous attenuation: after the source stops, energy must decrease.
  const Grid g({25, 25}, {1.0, 1.0});
  ViscoelasticModel model(g, 4);
  model.wavefield().fill_global_box(0, std::vector<std::int64_t>{11, 11},
                                    std::vector<std::int64_t>{14, 14}, 1.0F);
  const double dt = model.critical_dt();
  auto op = model.make_operator({});
  // Start at time 0 so the first step's now() reads buffer 0 (the fill).
  op->apply({.time_m = 0, .time_M = 29, .scalars = model.scalars(dt)});
  const double e30 = model.field_energy(29);
  EXPECT_GT(e30, 0.0);
  op->apply({.time_m = 30, .time_M = 119, .scalars = model.scalars(dt)});
  const double e120 = model.field_energy(119);
  EXPECT_TRUE(std::isfinite(e120));
  EXPECT_LT(e120, e30);
}

}  // namespace
