// Numerical-health layer tests: the compiler-generated per-field
// reduction kernels (interpreter and JIT, every MPI pattern, shallow
// and deep halos), the OnNan policies, the flight-recorder bundle, the
// JITFD_INJECT_NAN fault hook, and bitwise neutrality of the checks.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/operator.h"
#include "grid/function.h"
#include "obs/events.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/json_check.h"
#include "smpi/runtime.h"
#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;
namespace obs = jitfd::obs;
namespace health = jitfd::obs::health;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

// Whether the obs subsystem (and with it the health layer) was
// compiled in; under JITFD_OBS=OFF lowering emits no health checks and
// these tests are vacuous.
constexpr bool kObsBuilt =
#ifdef JITFD_OBS_DISABLED
    false;
#else
    true;
#endif

#define SKIP_WITHOUT_OBS()                       \
  do {                                           \
    if (!kObsBuilt) {                            \
      GTEST_SKIP() << "built with JITFD_OBS=OFF"; \
    }                                            \
  } while (false)

struct Diffusion {
  explicit Diffusion(const Grid& g, int so = 2)
      : u("u", g, so, 1),
        eq(u.forward(),
           sym::solve(u.dt() - u.laplace(), sym::Ex(0), u.forward())) {}
  TimeFunction u;
  ir::Eq eq;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// A NaN seeded in one rank's owned interior must be reported by the
// next health check, on every pattern, both backends, and both halo
// depths — and the reduced summary must agree on every rank, naming
// the owning rank.
class SeededNan
    : public ::testing::TestWithParam<
          std::tuple<ir::MpiMode, int, Operator::Backend>> {};

TEST_P(SeededNan, DetectedOnNextCheckAndCulpritRankNamed) {
  SKIP_WITHOUT_OBS();
  const auto [mode, depth, backend] = GetParam();
  jitfd::grid::Function::set_default_exchange_depth(depth);
  smpi::run(4, [&](smpi::Communicator& comm) {
    const std::int64_t n = 16;
    const Grid g({n, n}, {1.0, 1.0}, comm);
    Diffusion d(g);
    d.u.fill(0.5F);
    // Interior point far from any rank boundary, so at step 0 only the
    // owning rank's region is poisoned.
    const std::vector<std::int64_t> seed{3, 3};
    const bool mine = d.u.set_global(0, seed, kNan);
    std::int64_t owner[1] = {mine ? comm.rank()
                                  : std::numeric_limits<std::int64_t>::max()};
    comm.allreduce(std::span<std::int64_t>(owner), smpi::ReduceOp::Min);

    ir::CompileOptions opts;
    opts.mode = mode;
    opts.exchange_depth = depth;
    Operator op({d.eq}, opts);
    op.set_default_backend(backend);
    const auto run = op.apply({.time_m = 0,
                               .time_M = 3,
                               .scalars = {{"dt", 1e-3}},
                               .health_interval = 1,
                               .on_nan = health::OnNan::Record});

    // Every rank holds the same reduced summary.
    EXPECT_FALSE(run.health.healthy());
    EXPECT_EQ(run.health.first_bad_step, 0);
    EXPECT_EQ(run.health.first_bad_rank, static_cast<int>(owner[0]));
    EXPECT_EQ(run.health.first_bad_field, "u");
    EXPECT_EQ(run.health.checks, 4);
    EXPECT_GT(run.health.nan_points, 0);
    ASSERT_FALSE(run.health.series.empty());
    EXPECT_TRUE(run.health.series.front().bad());
  });
  jitfd::grid::Function::set_default_exchange_depth(1);
}

INSTANTIATE_TEST_SUITE_P(
    PatternsBackendsDepths, SeededNan,
    ::testing::Combine(::testing::Values(ir::MpiMode::Basic,
                                         ir::MpiMode::Diagonal,
                                         ir::MpiMode::Full),
                       ::testing::Values(1, 2),
                       ::testing::Values(Operator::Backend::Interpret,
                                         Operator::Backend::Jit)));

TEST(Health, CleanRunStaysHealthyAndSamplesNorms) {
  SKIP_WITHOUT_OBS();
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  d.u.fill(1.0F);
  Operator op({d.eq});
  const auto run = op.apply({.time_m = 0,
                             .time_M = 5,
                             .scalars = {{"dt", 1e-3}},
                             .health_interval = 2});
  EXPECT_TRUE(run.health.healthy());
  // time % 2 == 0 at steps 0, 2, 4.
  EXPECT_EQ(run.health.checks, 3);
  EXPECT_EQ(run.health.nan_points, 0);
  ASSERT_EQ(run.health.series.size(), 3U);
  for (const health::Sample& s : run.health.series) {
    EXPECT_EQ(s.field, "u");
    EXPECT_FALSE(s.bad());
    EXPECT_GT(s.l2, 0.0);
    EXPECT_LE(s.min, s.max);
    EXPECT_EQ(s.first_bad_rank, -1);
  }
}

TEST(Health, GhostNansBeyondStencilRadiusAreNotReported) {
  // Space order 4 (stencil radius 2) on a serial grid: a NaN planted in
  // the halo at depth 3 is outside every stencil's reach and outside
  // the owned interior the health kernels reduce over — the run must
  // stay healthy and the result must be untouched.
  const Grid g({8, 8}, {1.0, 1.0});
  const int steps = 3;
  std::vector<float> clean;
  {
    Diffusion d(g, /*so=*/4);
    d.u.fill(1.0F);
    Operator op({d.eq});
    (void)op.apply({.time_m = 0,
                    .time_M = steps - 1,
                    .scalars = {{"dt", 1e-3}}});
    clean = d.u.gather(steps % d.u.time_buffers());
  }
  Diffusion d(g, /*so=*/4);
  d.u.fill(1.0F);
  const std::vector<std::int64_t> ghost{-3, 4};
  d.u.at_local(0, ghost) = kNan;
  Operator op({d.eq});
  const auto run = op.apply({.time_m = 0,
                             .time_M = steps - 1,
                             .scalars = {{"dt", 1e-3}},
                             .health_interval = 1});
  EXPECT_TRUE(run.health.healthy());
  EXPECT_EQ(run.health.nan_points, 0);
  const auto got = d.u.gather(steps % d.u.time_buffers());
  ASSERT_EQ(got.size(), clean.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], clean[i]) << "at " << i;
  }
}

TEST(Health, ChecksAreBitwiseNeutralToSolverOutput) {
  SKIP_WITHOUT_OBS();
  for (const Operator::Backend backend :
       {Operator::Backend::Interpret, Operator::Backend::Jit}) {
    const Grid g({12, 12}, {1.0, 1.0});
    const int steps = 6;
    std::vector<float> without;
    {
      Diffusion d(g);
      const std::vector<std::int64_t> lo{1, 1};
      const std::vector<std::int64_t> hi{11, 11};
      d.u.fill_global_box(0, lo, hi, 1.0F);
      Operator op({d.eq});
      op.set_default_backend(backend);
      (void)op.apply({.time_m = 0,
                      .time_M = steps - 1,
                      .scalars = {{"dt", 1e-3}}});
      without = d.u.gather(steps % d.u.time_buffers());
    }
    Diffusion d(g);
    const std::vector<std::int64_t> lo{1, 1};
    const std::vector<std::int64_t> hi{11, 11};
    d.u.fill_global_box(0, lo, hi, 1.0F);
    Operator op({d.eq});
    op.set_default_backend(backend);
    const auto run = op.apply({.time_m = 0,
                               .time_M = steps - 1,
                               .scalars = {{"dt", 1e-3}},
                               .health_interval = 1});
    EXPECT_EQ(run.health.checks, steps);
    const auto with = d.u.gather(steps % d.u.time_buffers());
    ASSERT_EQ(with.size(), without.size());
    // Bitwise, not approximate: the reductions must only read.
    EXPECT_EQ(std::memcmp(with.data(), without.data(),
                          with.size() * sizeof(float)),
              0);
  }
}

TEST(Health, HealthKernelIsVisibleInGeneratedSource) {
  SKIP_WITHOUT_OBS();
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  Operator op({d.eq});
  const std::string src = op.ccode();
  EXPECT_NE(src.find("jitfd_health_every"), std::string::npos);
  EXPECT_NE(src.find("jitfd_hc_nan"), std::string::npos);
  EXPECT_NE(src.find("jitfd_hc_l2"), std::string::npos);
  EXPECT_NE(src.find("ops->health"), std::string::npos);
  EXPECT_NE(src.find("ops->step"), std::string::npos);
}

TEST(Health, OnNanIgnoreSamplesButDoesNotDump) {
  SKIP_WITHOUT_OBS();
  obs::flight::reset_for_testing();
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  d.u.fill(1.0F);
  const std::vector<std::int64_t> seed{4, 4};
  ASSERT_TRUE(d.u.set_global(0, seed, kNan));
  Operator op({d.eq});
  const auto run = op.apply({.time_m = 0,
                             .time_M = 2,
                             .scalars = {{"dt", 1e-3}},
                             .health_interval = 1,
                             .on_nan = health::OnNan::Ignore});
  EXPECT_FALSE(run.health.healthy());  // Sampled...
  EXPECT_FALSE(obs::flight::dumped());  // ...but no bundle, no throw.
}

TEST(Health, AbortDumpThrowsOnEveryRankAndWritesValidBundle) {
  SKIP_WITHOUT_OBS();
  char dir_template[] = "/tmp/jitfd_flight_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);
  ::setenv("JITFD_FLIGHT_DIR", dir.c_str(), 1);
  obs::flight::reset_for_testing();

  std::int64_t owner = -1;
  try {
    smpi::run(4, [&](smpi::Communicator& comm) {
      const Grid g({16, 16}, {1.0, 1.0}, comm);
      Diffusion d(g);
      d.u.fill(1.0F);
      const std::vector<std::int64_t> seed{12, 12};
      const bool mine = d.u.set_global(0, seed, kNan);
      std::int64_t own[1] = {mine ? comm.rank()
                                  : std::numeric_limits<std::int64_t>::max()};
      comm.allreduce(std::span<std::int64_t>(own), smpi::ReduceOp::Min);
      if (comm.rank() == 0) {
        owner = own[0];
      }
      ir::CompileOptions opts;
      opts.mode = ir::MpiMode::Basic;
      Operator op({d.eq}, opts);
      (void)op.apply({.time_m = 0,
                      .time_M = 3,
                      .scalars = {{"dt", 1e-3}},
                      .health_interval = 1,
                      .on_nan = health::OnNan::AbortDump});
      FAIL() << "apply() should have thrown DivergenceError";
    });
    FAIL() << "smpi::run should have rethrown DivergenceError";
  } catch (const health::DivergenceError& e) {
    EXPECT_EQ(e.step(), 0);
    EXPECT_EQ(e.rank(), static_cast<int>(owner));
    EXPECT_EQ(e.field(), "u");
    ASSERT_FALSE(e.dump_path().empty());

    const std::string bundle = slurp(e.dump_path());
    ASSERT_FALSE(bundle.empty());
    const obs::FlightCheck check = obs::validate_flight_json(bundle);
    ASSERT_TRUE(check.ok) << check.error;
    EXPECT_EQ(check.reason, "nan_detected");
    EXPECT_EQ(check.rank, static_cast<int>(owner));
    EXPECT_EQ(check.step, 0);
    EXPECT_GE(check.health_samples, 1);
    std::remove(e.dump_path().c_str());
  }
  ::unsetenv("JITFD_FLIGHT_DIR");
  ::rmdir(dir.c_str());
  obs::flight::reset_for_testing();
}

TEST(Health, InjectNanHookPoisonsConfiguredRankAndStep) {
  SKIP_WITHOUT_OBS();
  // The CI self-test's fault injector: JITFD_INJECT_NAN=rank:step
  // poisons one interior point of the checked field at the top of that
  // step on that rank; the same step's check must catch it.
  ::setenv("JITFD_INJECT_NAN", "2:1", 1);
  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({16, 16}, {1.0, 1.0}, comm);
    Diffusion d(g);
    d.u.fill(1.0F);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Basic;
    Operator op({d.eq}, opts);
    const auto run = op.apply({.time_m = 0,
                               .time_M = 3,
                               .scalars = {{"dt", 1e-3}},
                               .health_interval = 1,
                               .on_nan = health::OnNan::Record});
    EXPECT_FALSE(run.health.healthy());
    EXPECT_EQ(run.health.first_bad_step, 1);
    EXPECT_EQ(run.health.first_bad_rank, 2);
  });
  ::unsetenv("JITFD_INJECT_NAN");
}

TEST(Health, ChecksEmitStructuredEventsThatValidate) {
  SKIP_WITHOUT_OBS();
  obs::events::EnableScope scope(true);
  obs::events::reset();
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  d.u.fill(1.0F);
  Operator op({d.eq});
  (void)op.apply({.time_m = 0,
                  .time_M = 3,
                  .scalars = {{"dt", 1e-3}},
                  .health_interval = 2});
  const obs::events::EventData data = obs::events::collect();
  std::int64_t health_checks = 0;
  for (const auto& rec : data.events) {
    if (rec.name == "health.check") {
      ++health_checks;
      EXPECT_EQ(rec.cat, obs::events::EvCat::Health);
    }
  }
  EXPECT_EQ(health_checks, 2);  // Steps 0 and 2.
  const obs::SchemaCheck check =
      obs::validate_events_json(obs::events::to_json(data));
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.items, static_cast<std::int64_t>(data.events.size()));
  obs::events::reset();
}

TEST(Health, OnNanPolicyParsesAndPrints) {
  EXPECT_EQ(health::on_nan_from_string("ignore"), health::OnNan::Ignore);
  EXPECT_EQ(health::on_nan_from_string("record"), health::OnNan::Record);
  EXPECT_EQ(health::on_nan_from_string("abort_dump"),
            health::OnNan::AbortDump);
  EXPECT_EQ(health::on_nan_from_string("abort"), health::OnNan::AbortDump);
  EXPECT_THROW(health::on_nan_from_string("explode"), std::invalid_argument);
  EXPECT_STREQ(health::to_string(health::OnNan::Ignore), "ignore");
  EXPECT_STREQ(health::to_string(health::OnNan::Record), "record");
  EXPECT_STREQ(health::to_string(health::OnNan::AbortDump), "abort_dump");
}

TEST(Health, HealthIntervalZeroRunsNoChecks) {
  const Grid g({8, 8}, {1.0, 1.0});
  Diffusion d(g);
  d.u.fill(1.0F);
  Operator op({d.eq});
  const auto run =
      op.apply({.time_m = 0, .time_M = 3, .scalars = {{"dt", 1e-3}}});
  EXPECT_EQ(run.health.checks, 0);
  EXPECT_TRUE(run.health.healthy());
  EXPECT_TRUE(run.health.series.empty());
}

}  // namespace
