// Randomized property tests.
//
// Expression system: canonical construction must be deterministic and
// value-preserving under every flop-reducing transformation (expand,
// factorize, CSE round trip) — checked by evaluating random expression
// trees at random bindings. Substrate: a deterministic message storm
// must deliver every payload exactly once in per-pair order.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>

#include "grid/function.h"
#include "runtime/halo.h"
#include "smpi/runtime.h"
#include "symbolic/cse.h"
#include "symbolic/expr.h"
#include "symbolic/manip.h"

namespace {

namespace sym = jitfd::sym;
using sym::Ex;

// Deterministic random expression over symbols a..d with bounded depth.
Ex random_expr(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth <= 0 ? 1 : 5);
  static const char* kNames[] = {"a", "b", "c", "d"};
  switch (kind(rng)) {
    case 0: {
      std::uniform_int_distribution<int> v(-4, 4);
      return Ex(v(rng));
    }
    case 1: {
      std::uniform_int_distribution<int> s(0, 3);
      return sym::symbol(kNames[s(rng)]);
    }
    case 2:
      return random_expr(rng, depth - 1) + random_expr(rng, depth - 1);
    case 3:
      return random_expr(rng, depth - 1) - random_expr(rng, depth - 1);
    case 4:
      return random_expr(rng, depth - 1) * random_expr(rng, depth - 1);
    default: {
      std::uniform_int_distribution<int> e(1, 3);
      return pow(random_expr(rng, depth - 1), e(rng));
    }
  }
}

// Reference evaluator (double precision, no simplification assumptions).
double eval(const Ex& e, const std::map<std::string, double>& env) {
  const sym::ExprNode& n = e.node();
  switch (n.kind) {
    case sym::Kind::Number:
      return n.value;
    case sym::Kind::Symbol:
      return env.at(n.name);
    case sym::Kind::Add: {
      double acc = 0.0;
      for (const Ex& a : n.args) {
        acc += eval(a, env);
      }
      return acc;
    }
    case sym::Kind::Mul: {
      double acc = 1.0;
      for (const Ex& a : n.args) {
        acc *= eval(a, env);
      }
      return acc;
    }
    case sym::Kind::Pow:
      return std::pow(eval(n.args[0], env), eval(n.args[1], env));
    case sym::Kind::Call: {
      const double a = eval(n.args[0], env);
      if (n.name == "sqrt") return std::sqrt(a);
      if (n.name == "sin") return std::sin(a);
      if (n.name == "cos") return std::cos(a);
      if (n.name == "exp") return std::exp(a);
      return std::fabs(a);
    }
    default:
      ADD_FAILURE() << "unexpected node kind";
      return 0.0;
  }
}

// Bindings chosen to avoid poles of 1/x terms.
const std::map<std::string, double> kEnv{
    {"a", 1.37}, {"b", -0.82}, {"c", 2.05}, {"d", 0.51}};

constexpr double kTol = 1e-6;

double rel_tol(double reference) {
  return kTol * std::max(1.0, std::abs(reference));
}

TEST(ExprProperties, TransformationsPreserveValue) {
  std::mt19937 rng(20260704);
  for (int trial = 0; trial < 200; ++trial) {
    const Ex e = random_expr(rng, 4);
    const double reference = eval(e, kEnv);
    if (!std::isfinite(reference) || std::abs(reference) > 1e9) {
      continue;  // Overflowing trees are not interesting here.
    }
    EXPECT_NEAR(eval(sym::expand(e), kEnv), reference, rel_tol(reference))
        << "expand broke: " << e.to_string();
    EXPECT_NEAR(eval(sym::factorize(e), kEnv), reference, rel_tol(reference))
        << "factorize broke: " << e.to_string();

    // CSE round trip: substitute the temps back in.
    auto result = sym::cse({e});
    Ex rebuilt = result.exprs[0];
    for (auto it = result.temps.rbegin(); it != result.temps.rend(); ++it) {
      rebuilt = sym::substitute(rebuilt, sym::symbol(it->name), it->value);
    }
    EXPECT_NEAR(eval(rebuilt, kEnv), reference, rel_tol(reference))
        << "cse broke: " << e.to_string();

    // Invariant extraction round trip.
    auto inv = sym::extract_invariants({e});
    Ex rebuilt2 = inv.exprs[0];
    for (auto it = inv.temps.rbegin(); it != inv.temps.rend(); ++it) {
      rebuilt2 = sym::substitute(rebuilt2, sym::symbol(it->name), it->value);
    }
    EXPECT_NEAR(eval(rebuilt2, kEnv), reference, rel_tol(reference))
        << "invariants broke: " << e.to_string();
  }
}

TEST(ExprProperties, CanonicalFormIsOrderIndependent) {
  // Building the same sum/product from shuffled operand orders must give
  // structurally identical (hash-equal, print-equal) expressions.
  std::mt19937 rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Ex> terms;
    for (int i = 0; i < 6; ++i) {
      terms.push_back(random_expr(rng, 2));
    }
    std::vector<Ex> shuffled = terms;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const Ex sum1 = sym::make_add(terms);
    const Ex sum2 = sym::make_add(shuffled);
    EXPECT_TRUE(sum1 == sum2) << sum1.to_string() << " vs "
                              << sum2.to_string();
    EXPECT_EQ(sum1.hash(), sum2.hash());
    const Ex mul1 = sym::make_mul(terms);
    const Ex mul2 = sym::make_mul(shuffled);
    EXPECT_TRUE(mul1 == mul2);
  }
}

TEST(ExprProperties, FlopReductionNeverIncreasesCost) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const Ex e = random_expr(rng, 4);
    EXPECT_LE(sym::count_flops(sym::factorize(e)), sym::count_flops(e))
        << e.to_string();
    auto result = sym::cse({e});
    int total = sym::count_flops(result.exprs[0]);
    for (const auto& t : result.temps) {
      total += sym::count_flops(t.value);
    }
    EXPECT_LE(total, sym::count_flops(e)) << e.to_string();
  }
}

TEST(PackUnpackProperties, RoundTripOverRandomStridedBoxes) {
  // pack_box followed by unpack_box over an arbitrary axis-aligned box of
  // the padded storage must (a) pack exactly the box elements in
  // row-major order, (b) restore them bit-exactly, (c) write nothing
  // outside the box, and (d) produce identical results on the serial and
  // threaded paths. Boxes are randomized over 1/2/3-D geometries and
  // forced through the degenerate shapes the halo patterns produce:
  // 1-wide rows (strided remainder faces) and full faces.
  using jitfd::grid::Function;
  using jitfd::grid::Grid;
  using Box = jitfd::runtime::HaloExchange::Box;

  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 150; ++trial) {
    const int nd = 1 + trial % 3;
    std::vector<std::int64_t> shape;
    std::vector<double> spacing;
    std::uniform_int_distribution<int> extent(4, 12);
    for (int d = 0; d < nd; ++d) {
      shape.push_back(extent(rng));
      spacing.push_back(1.0);
    }
    const Grid g(shape, spacing);
    Function f("f", g, 4);
    const auto& P = f.padded_shape();
    std::int64_t total = 1;
    for (const std::int64_t p : P) {
      total *= p;
    }
    // Unique value per cell, ghosts included.
    float* base = f.buffer(0);
    for (std::int64_t i = 0; i < total; ++i) {
      base[i] = static_cast<float>(i) + 1.0F;
    }

    // Random box in raw (ghost-inclusive) coordinates; every few trials
    // force a degenerate shape.
    Box box;
    box.lo.resize(static_cast<std::size_t>(nd));
    box.hi.resize(static_cast<std::size_t>(nd));
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (trial % 5 == 3) {  // Full face along every dimension.
        box.lo[ud] = 0;
        box.hi[ud] = P[ud];
      } else if (trial % 5 == 4) {  // 1-wide in every dimension.
        std::uniform_int_distribution<std::int64_t> at(0, P[ud] - 1);
        box.lo[ud] = at(rng);
        box.hi[ud] = box.lo[ud] + 1;
      } else {
        std::uniform_int_distribution<std::int64_t> lo(0, P[ud] - 1);
        box.lo[ud] = lo(rng);
        std::uniform_int_distribution<std::int64_t> hi(box.lo[ud] + 1, P[ud]);
        box.hi[ud] = hi(rng);
      }
    }

    // Reference: row-major enumeration of the box.
    std::vector<float> expected;
    expected.reserve(static_cast<std::size_t>(box.count()));
    std::vector<std::int64_t> idx(box.lo.begin(), box.lo.end());
    std::vector<std::int64_t> strides(static_cast<std::size_t>(nd), 1);
    for (int d = nd - 2; d >= 0; --d) {
      strides[static_cast<std::size_t>(d)] =
          strides[static_cast<std::size_t>(d + 1)] *
          P[static_cast<std::size_t>(d + 1)];
    }
    while (true) {
      std::int64_t off = 0;
      for (int d = 0; d < nd; ++d) {
        off += idx[static_cast<std::size_t>(d)] *
               strides[static_cast<std::size_t>(d)];
      }
      expected.push_back(base[off]);
      int d = nd - 1;
      for (; d >= 0; --d) {
        const auto ud = static_cast<std::size_t>(d);
        if (++idx[ud] < box.hi[ud]) {
          break;
        }
        idx[ud] = box.lo[ud];
      }
      if (d < 0) {
        break;
      }
    }

    std::vector<float> packed(expected.size(), -1.0F);
    jitfd::runtime::pack_box(f, 0, box, packed.data(), /*parallel=*/false);
    ASSERT_EQ(packed, expected) << "trial " << trial;

    std::vector<float> packed_par(expected.size(), -2.0F);
    jitfd::runtime::pack_box(f, 0, box, packed_par.data(), /*parallel=*/true);
    ASSERT_EQ(packed_par, expected) << "threaded pack, trial " << trial;

    // Unpack into a scrubbed copy: the box is restored, the rest is
    // untouched.
    std::vector<float> original(base, base + total);
    for (std::int64_t i = 0; i < total; ++i) {
      base[i] = -7.0F;
    }
    jitfd::runtime::unpack_box(f, 0, box, packed.data(), trial % 2 == 1);
    std::size_t inside = 0;
    std::vector<std::int64_t> probe(static_cast<std::size_t>(nd), 0);
    for (std::int64_t i = 0; i < total; ++i) {
      std::int64_t rem = i;
      bool in_box = true;
      for (int d = 0; d < nd; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        probe[ud] = rem / strides[ud];
        rem %= strides[ud];
        in_box = in_box && probe[ud] >= box.lo[ud] && probe[ud] < box.hi[ud];
      }
      if (in_box) {
        ASSERT_EQ(base[i], original[i]) << "trial " << trial << " cell " << i;
        ++inside;
      } else {
        ASSERT_EQ(base[i], -7.0F)
            << "unpack wrote outside the box, trial " << trial;
      }
    }
    ASSERT_EQ(inside, expected.size());
  }
}

TEST(SmpiProperties, MessageStormDeliversExactlyOnceInOrder) {
  // Every rank sends `kMsgs` tagged payloads to every other rank; the
  // receiver must observe each (source, tag) stream complete and in
  // order. Deterministic per-pair payload encoding makes loss, drop,
  // duplication or reordering detectable.
  constexpr int kRanks = 4;
  constexpr int kMsgs = 50;
  smpi::run(kRanks, [](smpi::Communicator& comm) {
    const int me = comm.rank();
    for (int dst = 0; dst < kRanks; ++dst) {
      if (dst == me) {
        continue;
      }
      for (int k = 0; k < kMsgs; ++k) {
        const std::int64_t payload = 1000000LL * me + 1000LL * dst + k;
        comm.send_n(&payload, 1, dst, /*tag=*/k % 5);
      }
    }
    // Receive: per (source, tag) streams must be ordered by k.
    std::map<std::pair<int, int>, int> next_k;
    for (int i = 0; i < (kRanks - 1) * kMsgs; ++i) {
      std::int64_t payload = -1;
      const auto st = comm.recv_n(&payload, 1, smpi::kAnySource,
                                  smpi::kAnyTag);
      const int src = static_cast<int>(payload / 1000000LL);
      const int dst = static_cast<int>((payload / 1000LL) % 1000LL);
      const int k = static_cast<int>(payload % 1000LL);
      ASSERT_EQ(src, st.source);
      ASSERT_EQ(dst, me);
      ASSERT_EQ(k % 5, st.tag);
      // Within one (source, tag) stream the k values sent were
      // tag, tag+5, tag+10, ... and must arrive in that order.
      auto& seen = next_k[{st.source, st.tag}];
      ASSERT_EQ(k, st.tag + 5 * seen)
          << "stream (" << st.source << "," << st.tag << ")";
      ++seen;
    }
    comm.barrier();
  });
}

TEST(SmpiProperties, ConcurrentCollectivesStayCoherent) {
  smpi::run(6, [](smpi::Communicator& comm) {
    for (int round = 0; round < 25; ++round) {
      std::vector<double> v{static_cast<double>(comm.rank() + round)};
      comm.allreduce(std::span<double>(v), smpi::ReduceOp::Sum);
      const double expected = 15.0 + 6.0 * round;  // sum(0..5) + 6*round.
      ASSERT_DOUBLE_EQ(v[0], expected);
      int token = comm.rank() == round % 6 ? round : -1;
      comm.bcast(&token, sizeof(int), round % 6);
      ASSERT_EQ(token, round);
    }
  });
}

}  // namespace
