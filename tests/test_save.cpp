// Tests for saved TimeFunctions (Devito's `save=N`): the full time
// history is stored instead of a modulo window, through both execution
// backends and under distribution — the storage mode adjoint/FWI
// workflows rely on.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/operator.h"
#include "grid/function.h"
#include "smpi/runtime.h"
#include "symbolic/manip.h"

namespace {

using jitfd::core::Operator;
using jitfd::grid::Grid;
using jitfd::grid::TimeFunction;
namespace ir = jitfd::ir;
namespace sym = jitfd::sym;

TEST(Save, ValidationAndMetadata) {
  const Grid g({8, 8}, {1.0, 1.0});
  const TimeFunction u("u", g, 2, 1, 0, /*save=*/10);
  EXPECT_TRUE(u.saved());
  EXPECT_EQ(u.time_buffers(), 10);
  EXPECT_EQ(u.save_steps(), 10);
  const TimeFunction v("v", g, 2, 1);
  EXPECT_FALSE(v.saved());
  EXPECT_THROW(TimeFunction("w", g, 2, 2, 0, /*save=*/2),
               std::invalid_argument);
  EXPECT_THROW(TimeFunction("w", g, 2, 1, 0, -3), std::invalid_argument);
}

TEST(Save, BufferIndexIsAbsoluteForSavedFields) {
  const Grid g({8, 8}, {1.0, 1.0});
  const TimeFunction u("u", g, 2, 1, 0, /*save=*/8);
  EXPECT_EQ(u.buffer_index(0, 3), 3);
  EXPECT_EQ(u.buffer_index(1, 3), 4);
  EXPECT_EQ(u.buffer_index(-1, 3), 2);
  const TimeFunction v("v", g, 2, 2);
  EXPECT_EQ(v.buffer_index(1, 5), 0);  // (5+1) % 3.
}

// Diffusion with a saved field must reproduce, step by step, the history
// of the modulo-buffered run.
TEST(Save, HistoryMatchesModuloRunStepByStep) {
  const std::int64_t n = 12;
  const int steps = 6;
  const double dt = 1e-3;

  // Saved run: one apply over the whole window.
  const Grid g({n, n}, {1.0, 1.0});
  TimeFunction us("us", g, 2, 1, 0, /*save=*/steps + 1);
  us.fill_global_box(0, std::vector<std::int64_t>{2, 2},
                     std::vector<std::int64_t>{10, 10}, 1.0F);
  Operator ops({ir::Eq(us.forward(), sym::solve(us.dt() - us.laplace(),
                                                sym::Ex(0), us.forward()))});
  ops.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});

  // Modulo run, snapshotting after every step.
  const Grid g2({n, n}, {1.0, 1.0});
  TimeFunction um("um", g2, 2, 1);
  um.fill_global_box(0, std::vector<std::int64_t>{2, 2},
                     std::vector<std::int64_t>{10, 10}, 1.0F);
  Operator opm({ir::Eq(um.forward(), sym::solve(um.dt() - um.laplace(),
                                                sym::Ex(0), um.forward()))});
  for (int t = 0; t < steps; ++t) {
    opm.apply({.time_m = t, .time_M = t, .scalars = {{"dt", dt}}});
    const auto expected = um.gather((t + 1) % 2);
    const auto got = us.gather(t + 1);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expected[i]) << "step " << t << " at " << i;
    }
  }
}

TEST(Save, JitBackendWritesAbsoluteIndices) {
  if (std::system("cc --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no C compiler available";
  }
  const std::int64_t n = 10;
  const int steps = 5;
  const Grid g({n, n}, {1.0, 1.0});
  TimeFunction u("u", g, 2, 1, 0, /*save=*/steps + 1);
  u.fill_global_box(0, std::vector<std::int64_t>{3, 3},
                    std::vector<std::int64_t>{7, 7}, 1.0F);
  Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                              sym::Ex(0), u.forward()))});
  // Generated code must index with the absolute time, no modulo.
  EXPECT_NE(op.ccode().find("const long ts_p0 = time + 0;"),
            std::string::npos)
      << op.ccode();
  EXPECT_NE(op.ccode().find("const long ts_p1 = time + 1;"),
            std::string::npos);
  op.set_default_backend(Operator::Backend::Jit);
  op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", 1e-3}}});
  // Mass is conserved per stored step (interior plateau, no boundary
  // leakage in this window), and history is non-trivial.
  double mass0 = 0.0;
  double mass_last = 0.0;
  for (const float v : u.gather(0)) {
    mass0 += v;
  }
  for (const float v : u.gather(steps)) {
    mass_last += v;
  }
  EXPECT_NEAR(mass0, 16.0, 1e-4);
  EXPECT_NEAR(mass_last, 16.0, 0.05);  // Slight boundary leakage by step 5.
  EXPECT_NE(u.gather(1), u.gather(steps));
}

TEST(Save, DistributedSavedHistoryMatchesSerial) {
  const std::int64_t n = 12;
  const int steps = 5;
  const double dt = 1e-3;
  std::vector<std::vector<float>> expected;
  {
    const Grid g({n, n}, {1.0, 1.0});
    TimeFunction u("u", g, 2, 1, 0, steps + 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{8, 8}, 1.0F);
    Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                                sym::Ex(0), u.forward()))});
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    for (int t = 0; t <= steps; ++t) {
      expected.push_back(u.gather(t));
    }
  }
  smpi::run(4, [&](smpi::Communicator& comm) {
    const Grid g({n, n}, {1.0, 1.0}, comm);
    TimeFunction u("u", g, 2, 1, 0, steps + 1);
    u.fill_global_box(0, std::vector<std::int64_t>{4, 4},
                      std::vector<std::int64_t>{8, 8}, 1.0F);
    ir::CompileOptions opts;
    opts.mode = ir::MpiMode::Diagonal;
    Operator op({ir::Eq(u.forward(), sym::solve(u.dt() - u.laplace(),
                                                sym::Ex(0), u.forward()))},
                opts);
    op.apply({.time_m = 0, .time_M = steps - 1, .scalars = {{"dt", dt}}});
    for (int t = 0; t <= steps; ++t) {
      const auto got = u.gather(t);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_NEAR(got[i], expected[static_cast<std::size_t>(t)][i], 1e-6)
              << "step " << t << " at " << i;
        }
      }
    }
  });
}

}  // namespace
