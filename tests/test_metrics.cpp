// Metrics registry tests: log2 histogram bucket boundaries, help-text
// registration, and the JSON / Prometheus exporters with their schema
// validators (including # HELP / # TYPE pairing).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "obs/json_check.h"
#include "obs/metrics.h"

namespace {

namespace metrics = jitfd::obs::metrics;
namespace obs = jitfd::obs;
using metrics::Histogram;

class MetricsEnabled : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    if (!metrics::enabled()) {
      GTEST_SKIP() << "built with JITFD_OBS=OFF";
    }
  }
  void TearDown() override { metrics::set_enabled(false); }
};

TEST_F(MetricsEnabled, HistogramUpperBoundsDoubleFromBase) {
  EXPECT_DOUBLE_EQ(Histogram::upper_bound(0), Histogram::kBucketBase);
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::upper_bound(i),
                     2.0 * Histogram::upper_bound(i - 1))
        << "bucket " << i;
  }
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));
}

TEST_F(MetricsEnabled, HistogramBucketBoundariesAreInclusive) {
  Histogram h;
  // Exactly on a bucket's upper bound lands in that bucket (le
  // semantics); one ulp above lands in the next.
  for (const int i : {0, 5, 13, Histogram::kBuckets - 2}) {
    h.reset();
    const double ub = Histogram::upper_bound(i);
    h.observe(ub);
    EXPECT_EQ(h.bucket(i), 1U) << "upper bound of bucket " << i;
    h.observe(std::nextafter(ub, std::numeric_limits<double>::infinity()));
    EXPECT_EQ(h.bucket(i + 1), 1U) << "just above bucket " << i;
  }
}

TEST_F(MetricsEnabled, HistogramPlacesValuesByLog2) {
  Histogram h;
  // 1.0 s with base 1e-6: 1e-6 * 2^19 ~ 0.52 < 1.0 <= 1e-6 * 2^20 ~ 1.05.
  h.observe(1.0);
  EXPECT_EQ(h.bucket(20), 1U);
  // At or below the base, including zero and negatives: bucket 0.
  h.observe(Histogram::kBucketBase);
  h.observe(0.0);
  h.observe(-3.5);
  EXPECT_EQ(h.bucket(0), 3U);
  // Beyond the last finite bound: the +Inf overflow bucket.
  h.observe(1e30);
  h.observe(std::numeric_limits<double>::max());
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 2U);
  EXPECT_EQ(h.count(), 6U);
  EXPECT_NEAR(h.sum(), 1.0 + Histogram::kBucketBase + 0.0 - 3.5 + 1e30 +
                           std::numeric_limits<double>::max(),
              std::numeric_limits<double>::max() * 1e-9);
}

TEST_F(MetricsEnabled, HistogramDisabledRecordsNothing) {
  metrics::set_enabled(false);
  Histogram h;
  h.observe(1.0);
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.bucket(20), 0U);
}

TEST_F(MetricsEnabled, HelpTextSticksToTheInstrumentFirstNonEmptyWins) {
  metrics::counter("test.help.sticky", "the original help");
  metrics::counter("test.help.sticky", "a late different help");
  metrics::counter("test.help.late");  // No help: keeps the original.
  metrics::gauge("test.help.filled");  // Registered helpless...
  metrics::gauge("test.help.filled", "filled in later");

  std::string sticky_help;
  std::string filled_help;
  for (const metrics::Snapshot& s : metrics::snapshot()) {
    if (s.name == "test.help.sticky") {
      sticky_help = s.help;
    } else if (s.name == "test.help.filled") {
      filled_help = s.help;
    }
  }
  EXPECT_EQ(sticky_help, "the original help");
  EXPECT_EQ(filled_help, "filled in later");
}

TEST_F(MetricsEnabled, ExportsCarryHelpAndValidate) {
  metrics::counter("test.export.count", "counts test things").add(3);
  metrics::histogram("test.export.lat", "latency of test things")
      .observe(2e-6);

  const std::string json = metrics::to_json();
  EXPECT_NE(json.find("\"help\": \"counts test things\""), std::string::npos);
  const obs::SchemaCheck jcheck = obs::validate_metrics_json(json);
  EXPECT_TRUE(jcheck.ok) << jcheck.error;

  const std::string prom = metrics::to_prometheus();
  EXPECT_NE(prom.find("# HELP jitfd_test_export_count counts test things"),
            std::string::npos);
  // HELP precedes TYPE for the same family.
  EXPECT_LT(prom.find("# HELP jitfd_test_export_count"),
            prom.find("# TYPE jitfd_test_export_count"));
  const obs::PromCheck pcheck = obs::validate_prometheus_text(prom);
  EXPECT_TRUE(pcheck.ok) << pcheck.error;
  EXPECT_EQ(pcheck.helps, pcheck.types);
  EXPECT_GT(pcheck.samples, 0);
}

TEST(MetricsValidator, PrometheusPairingViolationsAreCaught) {
  // TYPE without its HELP line.
  obs::PromCheck c = obs::validate_prometheus_text(
      "# TYPE jitfd_orphan counter\njitfd_orphan 1\n");
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("not preceded"), std::string::npos) << c.error;

  // HELP for a different family does not pair.
  c = obs::validate_prometheus_text(
      "# HELP jitfd_other help text\n# TYPE jitfd_orphan counter\n");
  EXPECT_FALSE(c.ok);

  // Unknown kind.
  c = obs::validate_prometheus_text(
      "# HELP jitfd_m h\n# TYPE jitfd_m summary\njitfd_m 1\n");
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("unknown kind"), std::string::npos) << c.error;

  // Sample outside the announced family.
  c = obs::validate_prometheus_text(
      "# HELP jitfd_a h\n# TYPE jitfd_a counter\njitfd_b 1\n");
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("outside"), std::string::npos) << c.error;

  // A well-formed histogram family passes, le labels and all.
  c = obs::validate_prometheus_text(
      "# HELP jitfd_h latency\n"
      "# TYPE jitfd_h histogram\n"
      "jitfd_h_bucket{le=\"1e-06\"} 0\n"
      "jitfd_h_bucket{le=\"+Inf\"} 2\n"
      "jitfd_h_sum 3.5\n"
      "jitfd_h_count 2\n");
  EXPECT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.types, 1);
  EXPECT_EQ(c.samples, 4);
}

TEST(MetricsValidator, EventsSchemaViolationsAreCaught) {
  obs::SchemaCheck c = obs::validate_events_json(
      "{\"events\": [{\"name\": \"e\", \"cat\": \"health\", \"rank\": 0, "
      "\"step\": 1, \"t_ns\": 2, \"kv\": {\"x\": 1.5}}], \"dropped\": 0}");
  EXPECT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.items, 1);

  c = obs::validate_events_json("{\"events\": [], \"dropped\": 0}");
  EXPECT_TRUE(c.ok) << c.error;

  // Missing "dropped".
  c = obs::validate_events_json("{\"events\": []}");
  EXPECT_FALSE(c.ok);

  // Non-numeric kv value.
  c = obs::validate_events_json(
      "{\"events\": [{\"name\": \"e\", \"cat\": \"halo\", \"rank\": 0, "
      "\"step\": 0, \"t_ns\": 0, \"kv\": {\"x\": \"oops\"}}], "
      "\"dropped\": 0}");
  EXPECT_FALSE(c.ok);
}

}  // namespace
