// Off-grid sparse operations (paper Sections III-c and IV-C).
//
// A SparseFunction is a set of points with physical coordinates that need
// not align with grid nodes (sources, receivers). Under domain
// decomposition each point is handled by the ranks owning the grid nodes
// of its surrounding cell — points on shared boundaries are handled by
// every adjacent rank for exactly the nodes that rank owns (the paper's
// Figure 3 ownership rule), which makes distributed injection add each
// nodal contribution exactly once.
//
// Injection scatters a time signature into a field with multilinear
// weights; Interpolation gathers multilinear samples of a field at the
// points (each rank accumulates its owned-node partial sums; assemble()
// reduces them across ranks).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "grid/function.h"
#include "runtime/interpreter.h"

namespace jitfd::sparse {

/// Ricker wavelet (the standard seismic source signature):
/// r(t) = (1 - 2 (pi f0 (t - t0))^2) exp(-(pi f0 (t - t0))^2).
double ricker(double t, double f0, double t0);

class SparseFunction {
 public:
  /// `coords[p]` holds the physical coordinates of point p (size ndims,
  /// within the grid extent).
  SparseFunction(std::string name, const grid::Grid& grid,
                 std::vector<std::vector<double>> coords);

  const std::string& name() const { return name_; }
  const grid::Grid& grid() const { return *grid_; }
  int npoints() const { return static_cast<int>(coords_.size()); }
  const std::vector<double>& coords(int p) const {
    return coords_[static_cast<std::size_t>(p)];
  }

  /// The surrounding-cell nodes of point p and their multilinear weights:
  /// 2^ndims (node, weight) pairs in global indices. Nodes are clamped to
  /// the domain (points on the far boundary collapse onto it).
  struct NodeWeight {
    std::vector<std::int64_t> node;
    double weight;
  };
  std::vector<NodeWeight> support(int p) const;

  /// True if this rank owns at least one support node of point p (i.e.
  /// the point is "local" in the sense of the paper's Figure 3).
  bool is_local(int p) const;

 private:
  std::string name_;
  const grid::Grid* grid_;
  std::vector<std::vector<double>> coords_;
};

/// Scatter `amplitude(time)` into `target` at buffer (time + time_offset)
/// with multilinear weights, scaled by `scale_expr_value` — the DSL's
/// src.inject(field=u.forward, expr=src * dt**2 / m) with the scale
/// evaluated per support node via a callback (which may read fields).
class Injection : public runtime::SparseOp {
 public:
  /// `scale(p, node)` returns the per-node scale factor (e.g. dt^2/m at
  /// the node); `amplitude(time)` the source time signature.
  Injection(grid::Function& target, const SparseFunction& points,
            std::function<double(std::int64_t)> amplitude,
            std::function<double(int, std::span<const std::int64_t>)> scale,
            int time_offset = 1);

  void apply(std::int64_t time) override;

 private:
  grid::Function* target_;
  const SparseFunction* points_;
  std::function<double(std::int64_t)> amplitude_;
  std::function<double(int, std::span<const std::int64_t>)> scale_;
  int time_offset_;
};

/// Gather multilinear samples of `field` at the sparse points into a
/// [row][point] record, one row per applied time step.
class Interpolation : public runtime::SparseOp {
 public:
  /// Rows index time steps in application order. `time_offset` selects
  /// the sampled buffer relative to the loop variable.
  Interpolation(const grid::Function& field, const SparseFunction& points,
                int time_offset = 0);

  void apply(std::int64_t time) override;

  /// Number of recorded rows so far.
  int rows() const { return static_cast<int>(partial_.size()); }

  /// Reduce partial sums across ranks and return the assembled record
  /// (collective when the grid is distributed; every rank gets the full
  /// data, mirroring the paper's logically-centralized data view).
  std::vector<std::vector<double>> assemble() const;

 private:
  const grid::Function* field_;
  const SparseFunction* points_;
  int time_offset_;
  std::vector<std::vector<double>> partial_;  ///< [row][point] local sums.
};

}  // namespace jitfd::sparse
