#include "sparse/sparse_function.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace jitfd::sparse {

double ricker(double t, double f0, double t0) {
  const double a = std::numbers::pi * f0 * (t - t0);
  const double a2 = a * a;
  return (1.0 - 2.0 * a2) * std::exp(-a2);
}

SparseFunction::SparseFunction(std::string name, const grid::Grid& grid,
                               std::vector<std::vector<double>> coords)
    : name_(std::move(name)), grid_(&grid), coords_(std::move(coords)) {
  for (const auto& c : coords_) {
    if (static_cast<int>(c.size()) != grid.ndims()) {
      throw std::invalid_argument("SparseFunction: coordinate rank mismatch");
    }
    for (int d = 0; d < grid.ndims(); ++d) {
      const double hi = grid.extent()[static_cast<std::size_t>(d)];
      if (c[static_cast<std::size_t>(d)] < 0.0 ||
          c[static_cast<std::size_t>(d)] > hi) {
        throw std::invalid_argument(
            "SparseFunction: point outside the physical domain");
      }
    }
  }
}

std::vector<SparseFunction::NodeWeight> SparseFunction::support(int p) const {
  const std::vector<double>& c = coords_[static_cast<std::size_t>(p)];
  const int nd = grid_->ndims();

  // Cell index and fractional position per dimension.
  std::vector<std::int64_t> cell(static_cast<std::size_t>(nd));
  std::vector<double> frac(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    const double h = grid_->spacing(d);
    double pos = c[ud] / h;
    std::int64_t lo = static_cast<std::int64_t>(std::floor(pos));
    // Clamp so the far-boundary point uses the last cell.
    lo = std::clamp<std::int64_t>(lo, 0, grid_->shape()[ud] - 2);
    cell[ud] = lo;
    frac[ud] = std::clamp(pos - static_cast<double>(lo), 0.0, 1.0);
  }

  std::vector<NodeWeight> out;
  const int corners = 1 << nd;
  out.reserve(static_cast<std::size_t>(corners));
  for (int mask = 0; mask < corners; ++mask) {
    NodeWeight nw;
    nw.node.resize(static_cast<std::size_t>(nd));
    nw.weight = 1.0;
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      const bool high = (mask >> d) & 1;
      nw.node[ud] = cell[ud] + (high ? 1 : 0);
      nw.weight *= high ? frac[ud] : 1.0 - frac[ud];
    }
    if (nw.weight != 0.0) {
      out.push_back(std::move(nw));
    }
  }
  return out;
}

bool SparseFunction::is_local(int p) const {
  const std::vector<int> coords_rank =
      grid_->distributed() ? grid_->cart()->my_coords()
                           : std::vector<int>(static_cast<std::size_t>(
                                                  grid_->ndims()),
                                              0);
  for (const NodeWeight& nw : support(p)) {
    bool owned = true;
    for (int d = 0; d < grid_->ndims(); ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (grid_->decomposition(d).global_to_local(coords_rank[ud],
                                                  nw.node[ud]) < 0) {
        owned = false;
        break;
      }
    }
    if (owned) {
      return true;
    }
  }
  return false;
}

Injection::Injection(
    grid::Function& target, const SparseFunction& points,
    std::function<double(std::int64_t)> amplitude,
    std::function<double(int, std::span<const std::int64_t>)> scale,
    int time_offset)
    : target_(&target),
      points_(&points),
      amplitude_(std::move(amplitude)),
      scale_(std::move(scale)),
      time_offset_(time_offset) {}

void Injection::apply(std::int64_t time) {
  const int buf = target_->buffer_index(time_offset_, time);
  const double amp = amplitude_(time);
  for (int p = 0; p < points_->npoints(); ++p) {
    for (const SparseFunction::NodeWeight& nw : points_->support(p)) {
      // Each rank updates only the nodes it owns: points shared between
      // ranks are thereby injected exactly once per node.
      const double add =
          amp * nw.weight * (scale_ ? scale_(p, nw.node) : 1.0);
      const float current = target_->get_global_or(buf, nw.node, 0.0F);
      if (!target_->set_global(buf, nw.node,
                               current + static_cast<float>(add))) {
        continue;
      }
    }
  }
}

Interpolation::Interpolation(const grid::Function& field,
                             const SparseFunction& points, int time_offset)
    : field_(&field), points_(&points), time_offset_(time_offset) {}

void Interpolation::apply(std::int64_t time) {
  const int buf = field_->buffer_index(time_offset_, time);
  std::vector<double> row(static_cast<std::size_t>(points_->npoints()), 0.0);
  for (int p = 0; p < points_->npoints(); ++p) {
    double sum = 0.0;
    for (const SparseFunction::NodeWeight& nw : points_->support(p)) {
      // Owned-node partial sums; assemble() completes the reduction.
      const float v = field_->get_global_or(buf, nw.node, 0.0F);
      sum += nw.weight * v;
    }
    row[static_cast<std::size_t>(p)] = sum;
  }
  partial_.push_back(std::move(row));
}

std::vector<std::vector<double>> Interpolation::assemble() const {
  std::vector<std::vector<double>> out = partial_;
  const grid::Grid& g = points_->grid();
  if (!g.distributed()) {
    return out;
  }
  for (std::vector<double>& row : out) {
    g.cart()->comm().allreduce(std::span<double>(row), smpi::ReduceOp::Sum);
  }
  return out;
}

}  // namespace jitfd::sparse
