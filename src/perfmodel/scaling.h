// Analytical strong/weak scaling model (paper Section IV-D/E).
//
// Step time of one kernel on U units (CPU nodes or GPU devices):
//
//   T_comp = local_points * max(bytes_pt / BW_eff, flops_pt / F_eff)
//   V      = halo volume leaving one unit (unit-level decomposition)
//   T_net  = latency + per-message overhead + V / B_net   (per pattern)
//   T_pack = 2 * rank-level halo volume / BW_mem          (pack + unpack)
//   T_sync = sync_cost * spots * log2(ranks)              (jitter/imbalance)
//
//   basic    : T_comp + T_net(6 msgs, multi-step, +alloc copy) + T_pack + T_sync
//   diagonal : T_comp + T_net(26 msgs, single-step)            + T_pack + T_sync
//   full     : max(T_core, T_net) + T_remainder + T_pack + T_sync
//              with T_core/T_remainder from the rank-level CORE fraction
//              and a strided-access penalty on the remainder
//              (paper Section IV-F), plus one sacrificed progress thread.
//
// Machine constants are public hardware specs; the only fitted values are
// the per-kernel single-node efficiency pair (kernel_spec.cpp) and the
// global sync-cost constant. Everything else — crossovers, mode
// orderings, efficiency-vs-SDO trends — is predicted.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/lower.h"
#include "perfmodel/kernel_spec.h"
#include "perfmodel/machine.h"

namespace jitfd::perf {

struct ScalingPoint {
  int units = 1;
  double gpts = 0.0;        ///< Global grid points updated per second / 1e9.
  double step_seconds = 0.0;
  double runtime_seconds = 0.0;  ///< step_seconds * spec.timesteps.
  double efficiency = 0.0;  ///< vs. linear scaling from 1 unit.
  // Breakdown (seconds per step).
  double t_comp = 0.0;
  double t_net = 0.0;
  double t_pack = 0.0;
  double t_sync = 0.0;
  double t_remainder = 0.0;
  /// Redundant ghost-zone compute of communication-avoiding stepping
  /// (zero at exchange depth 1).
  double t_redundant = 0.0;
};

class ScalingModel {
 public:
  ScalingModel(MachineSpec machine, KernelSpec kernel, Target target)
      : machine_(std::move(machine)),
        kernel_(std::move(kernel)),
        target_(target) {}

  /// Strong scaling: the paper's fixed global cube (or a custom edge via
  /// `domain_edge` > 0) on `units` nodes/devices. `exchange_depth` > 1
  /// models communication-avoiding stepping: latency, per-message
  /// overhead and sync terms amortize by 1/depth, volume stays (deeper
  /// exchanges, 1/depth the frequency), and a redundant ghost-compute
  /// term grows with (depth - 1).
  ScalingPoint strong(int units, int so, ir::MpiMode mode,
                      std::int64_t domain_edge = 0,
                      int exchange_depth = 1) const;

  /// Weak scaling: 256^3 points per unit (paper Section IV-E).
  ScalingPoint weak(int units, int so, ir::MpiMode mode,
                    std::int64_t per_unit_edge = 256,
                    int exchange_depth = 1) const;

  /// Custom unit-level topology for the full-mode tuning experiment of
  /// Section IV-F (empty = dims_create default).
  void set_topology(std::vector<int> topology) {
    topology_ = std::move(topology);
  }

  /// Per-dimension cache-tile shape the compared run was compiled with
  /// (CompileOptions::tile layout: outermost first, 0 = untiled). Feeds
  /// the cache-traffic term: a sweep must keep ~(so + 1) planes of every
  /// working-set field cache-resident to reuse loaded neighbours; when
  /// the (tiled) plane footprint overflows MachineSpec::cache_mb, the
  /// bytes term grows by the overflow ratio, clamped at so + 1 (every
  /// reuse missing). The term is normalized against the untiled
  /// footprint, so an empty tile leaves the calibrated model unchanged.
  void set_tile(std::vector<std::int64_t> tile) { tile_ = std::move(tile); }

  const KernelSpec& kernel() const { return kernel_; }
  const MachineSpec& machine() const { return machine_; }

 private:
  ScalingPoint evaluate(const std::vector<std::int64_t>& domain, int units,
                        int so, ir::MpiMode mode, bool weak_regime = false,
                        int exchange_depth = 1) const;

  MachineSpec machine_;
  KernelSpec kernel_;
  Target target_;
  std::vector<int> topology_;
  std::vector<std::int64_t> tile_;
};

/// Roofline characterization for Figure 7: OI (flops/byte) and attained
/// GFLOP/s of a kernel on one unit.
struct RooflinePoint {
  std::string kernel;
  double oi = 0.0;
  double gflops = 0.0;
  double gpts = 0.0;
};
RooflinePoint roofline_point(const MachineSpec& machine,
                             const KernelSpec& kernel, Target target, int so);

}  // namespace jitfd::perf
