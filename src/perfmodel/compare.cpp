#include "perfmodel/compare.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "obs/analysis.h"
#include "obs/report.h"

namespace jitfd::perf {

MeasuredRun measured_from(const obs::RunProfile& profile,
                          const std::string& kernel, ir::MpiMode mode,
                          int so, std::int64_t points_updated,
                          std::int64_t steps) {
  MeasuredRun m;
  m.kernel = kernel;
  m.mode = mode;
  m.so = so;
  m.ranks = static_cast<int>(profile.ranks.size());
  m.steps = steps > 0 ? steps : static_cast<std::int64_t>(profile.steps());
  m.points_updated = points_updated;
  m.wall_seconds = profile.wall_s();
  m.comm_fraction = profile.comm_fraction();
  m.messages = profile.messages();
  m.halo_bytes = profile.bytes_sent();
  return m;
}

MeasuredRun measured_from(const obs::RunProfile& profile,
                          const obs::AnalysisReport& analysis,
                          const std::string& kernel, ir::MpiMode mode,
                          int so, std::int64_t points_updated,
                          std::int64_t steps) {
  MeasuredRun m =
      measured_from(profile, kernel, mode, so, points_updated, steps);
  m.has_analysis = true;
  m.exchange_depth = analysis.exchange_depth;
  m.overlap_efficiency = analysis.overlap_efficiency;
  m.imbalance_ratio = analysis.imbalance_ratio;
  m.redundant_seconds = analysis.redundant_compute_s;
  m.late_sender_seconds = analysis.late_sender_s;
  m.late_receiver_seconds = analysis.late_receiver_s;
  return m;
}

std::uint64_t table1_messages(const std::vector<int>& topology,
                              ir::MpiMode mode) {
  const std::size_t nd = topology.size();
  if (nd == 0 || mode == ir::MpiMode::None) {
    return 0;
  }
  const bool star =
      mode == ir::MpiMode::Diagonal || mode == ir::MpiMode::Full;

  // All nonzero direction offsets of the pattern's neighbourhood.
  std::vector<std::vector<int>> dirs;
  if (star) {
    std::vector<int> o(nd, -1);
    while (true) {
      if (std::any_of(o.begin(), o.end(), [](int v) { return v != 0; })) {
        dirs.push_back(o);
      }
      std::size_t d = nd;
      while (d-- > 0) {
        if (++o[d] <= 1) {
          break;
        }
        o[d] = -1;
        if (d == 0) {
          goto done;
        }
      }
      if (d == static_cast<std::size_t>(-1)) {
        break;
      }
    }
  done:;
  } else {
    for (std::size_t d = 0; d < nd; ++d) {
      for (const int side : {-1, +1}) {
        std::vector<int> o(nd, 0);
        o[d] = side;
        dirs.push_back(o);
      }
    }
  }

  // Every rank sends one message per in-bounds neighbour (non-periodic).
  std::uint64_t total = 0;
  std::vector<int> coord(nd, 0);
  while (true) {
    for (const auto& o : dirs) {
      bool inside = true;
      for (std::size_t d = 0; d < nd; ++d) {
        const int c = coord[d] + o[d];
        if (c < 0 || c >= topology[d]) {
          inside = false;
          break;
        }
      }
      total += inside ? 1 : 0;
    }
    std::size_t d = nd;
    bool carry = true;
    while (d-- > 0) {
      if (++coord[d] < topology[d]) {
        carry = false;
        break;
      }
      coord[d] = 0;
    }
    if (carry) {
      break;
    }
  }
  return total;
}

Comparison compare_run(const MeasuredRun& measured, const ScalingModel& model,
                       const std::vector<int>& topology,
                       const std::vector<std::int64_t>& global_shape,
                       int exchanges_per_step, std::int64_t domain_edge) {
  Comparison c;
  c.measured = measured;

  if (measured.wall_seconds > 0.0) {
    c.measured_gpts = static_cast<double>(measured.points_updated) /
                      measured.wall_seconds / 1e9;
  }
  if (measured.steps > 0) {
    c.measured_step_seconds =
        measured.wall_seconds / static_cast<double>(measured.steps);
    c.measured_bytes_per_step = static_cast<double>(measured.halo_bytes) /
                                static_cast<double>(measured.steps);
  }

  // One exchange round per strip of `exchange_depth` steps: the deep
  // halo of a communication-avoiding run carries the same message count
  // per round as a depth-1 exchange (widths grow, directions do not).
  const std::int64_t depth =
      measured.exchange_depth > 1 ? measured.exchange_depth : 1;
  const std::int64_t steps = measured.steps > 0 ? measured.steps : 0;
  const std::int64_t strips = (steps + depth - 1) / depth;
  c.expected_messages = table1_messages(topology, measured.mode) *
                        static_cast<std::uint64_t>(exchanges_per_step) *
                        static_cast<std::uint64_t>(strips);

  // Structural halo volume: every interior interface along dimension d
  // moves a width-deep slab of the domain cross-section, both ways.
  // (Corner/extension traffic of the patterns is excluded — it is a few
  // percent — so the measured volume should land slightly above this.)
  const int width = measured.so / 2;
  double bytes = 0.0;
  for (std::size_t d = 0; d < global_shape.size() && d < topology.size();
       ++d) {
    if (topology[d] <= 1) {
      continue;
    }
    double cross = 1.0;
    for (std::size_t q = 0; q < global_shape.size(); ++q) {
      if (q != d) {
        cross *= static_cast<double>(global_shape[q]);
      }
    }
    bytes += 2.0 * (topology[d] - 1) * width * cross * 4.0;
  }
  c.predicted_bytes_per_step = bytes * exchanges_per_step;

  // Evaluate the model with the run's tile shape so its cache-traffic
  // term matches the compiled schedule (no-op when untiled).
  ScalingModel tiled_model = model;
  tiled_model.set_tile(measured.tile);
  const ScalingPoint pt =
      tiled_model.strong(measured.ranks, measured.so, measured.mode,
                         domain_edge, static_cast<int>(depth));
  c.predicted_gpts = pt.gpts;
  c.predicted_step_seconds = pt.step_seconds;
  if (pt.step_seconds > 0.0) {
    const double comm =
        pt.step_seconds - pt.t_comp - pt.t_remainder;
    c.predicted_comm_fraction =
        std::clamp(comm / pt.step_seconds, 0.0, 1.0);
  }
  // Overlap ceiling: the full pattern can hide at most min(t_comp,
  // t_net) of the network time under the stencil loops; other patterns
  // block, so their overlap is structurally zero.
  if (measured.mode == ir::MpiMode::Full && pt.t_net > 0.0) {
    c.predicted_overlap_efficiency =
        std::clamp(std::min(pt.t_comp, pt.t_net) / pt.t_net, 0.0, 1.0);
  }
  c.predicted_redundant_step_seconds = pt.t_redundant;
  if (measured.has_analysis && measured.steps > 0 && measured.ranks > 0) {
    // The analyzer's total over all ranks and strips, normalized to the
    // model's per-step per-rank convention.
    c.measured_redundant_step_seconds =
        measured.redundant_seconds /
        static_cast<double>(measured.steps * measured.ranks);
  }
  return c;
}

namespace {

std::string tile_str(const std::vector<std::int64_t>& tile) {
  if (tile.empty()) {
    return "-";
  }
  std::string s;
  for (std::size_t d = 0; d < tile.size(); ++d) {
    s += (d > 0 ? "x" : "") + std::to_string(tile[d]);
  }
  return s;
}

}  // namespace

std::vector<DriftGate> drift_gates(const Comparison& row,
                                   const DriftBands& bands) {
  std::vector<DriftGate> gates;
  const auto push = [&gates](const std::string& metric, double measured,
                             double predicted, double band) {
    DriftGate g;
    g.metric = metric;
    g.measured = measured;
    g.predicted = predicted;
    g.drift = std::abs(measured - predicted);
    g.band = band;
    g.ok = g.drift <= band;
    gates.push_back(std::move(g));
  };
  if (row.measured.has_analysis) {
    push("overlap_efficiency", row.measured.overlap_efficiency,
         row.predicted_overlap_efficiency, bands.overlap_efficiency);
  }
  push("comm_fraction", row.measured.comm_fraction,
       row.predicted_comm_fraction, bands.comm_fraction);
  const double measured_share =
      row.measured_step_seconds > 0.0
          ? row.measured_redundant_step_seconds / row.measured_step_seconds
          : 0.0;
  const double predicted_share =
      row.predicted_step_seconds > 0.0
          ? row.predicted_redundant_step_seconds / row.predicted_step_seconds
          : 0.0;
  push("redundant_share", measured_share, predicted_share,
       bands.redundant_share);
  return gates;
}

std::string comparison_table(const std::vector<Comparison>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(10) << "pattern" << std::right << std::setw(4)
     << "k" << std::setw(10) << "tile" << std::setw(12) << "GPts/s"
     << std::setw(12) << "model"
     << std::setw(11) << "comm%" << std::setw(11) << "model%" << std::setw(12)
     << "msgs" << std::setw(12) << "expected" << std::setw(14) << "MB/step"
     << std::setw(14) << "model MB" << std::setw(9) << "ovl%"
     << std::setw(10) << "model%" << '\n';
  os << std::fixed;
  for (const Comparison& c : rows) {
    os << std::left << std::setw(10) << ir::to_string(c.measured.mode)
       << std::right << std::setw(4) << c.measured.exchange_depth
       << std::setw(10) << tile_str(c.measured.tile)
       << std::setprecision(4) << std::setw(12)
       << c.measured_gpts << std::setw(12) << c.predicted_gpts
       << std::setprecision(1) << std::setw(10)
       << 100.0 * c.measured.comm_fraction << "%" << std::setw(10)
       << 100.0 * c.predicted_comm_fraction << "%" << std::setw(12)
       << c.measured.messages << std::setw(12) << c.expected_messages
       << std::setprecision(3) << std::setw(14)
       << c.measured_bytes_per_step / 1e6 << std::setw(14)
       << c.predicted_bytes_per_step / 1e6 << std::setprecision(1)
       << std::setw(8) << 100.0 * c.measured.overlap_efficiency << "%"
       << std::setw(9) << 100.0 * c.predicted_overlap_efficiency << "%"
       << (c.messages_match() ? "" : "   << MESSAGE MISMATCH") << '\n';
  }
  return os.str();
}

std::string comparison_json(const std::vector<Comparison>& rows) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6);
  os << "{\n  \"comparisons\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Comparison& c = rows[i];
    os << "    {\n"
       << "      \"kernel\": \"" << c.measured.kernel << "\",\n"
       << "      \"pattern\": \"" << ir::to_string(c.measured.mode)
       << "\",\n"
       << "      \"ranks\": " << c.measured.ranks << ",\n"
       << "      \"so\": " << c.measured.so << ",\n"
       << "      \"steps\": " << c.measured.steps << ",\n"
       << "      \"exchange_depth\": " << c.measured.exchange_depth << ",\n"
       << "      \"tile\": [";
    for (std::size_t d = 0; d < c.measured.tile.size(); ++d) {
      os << (d > 0 ? ", " : "") << c.measured.tile[d];
    }
    os << "],\n"
       << "      \"measured_gpts\": " << c.measured_gpts << ",\n"
       << "      \"predicted_gpts\": " << c.predicted_gpts << ",\n"
       << "      \"measured_comm_fraction\": " << c.measured.comm_fraction
       << ",\n"
       << "      \"predicted_comm_fraction\": " << c.predicted_comm_fraction
       << ",\n"
       << "      \"measured_messages\": " << c.measured.messages << ",\n"
       << "      \"expected_messages\": " << c.expected_messages << ",\n"
       << "      \"messages_match\": "
       << (c.messages_match() ? "true" : "false") << ",\n"
       << "      \"measured_bytes_per_step\": " << c.measured_bytes_per_step
       << ",\n"
       << "      \"predicted_bytes_per_step\": "
       << c.predicted_bytes_per_step << ",\n"
       << "      \"has_analysis\": "
       << (c.measured.has_analysis ? "true" : "false") << ",\n"
       << "      \"measured_overlap_efficiency\": "
       << c.measured.overlap_efficiency << ",\n"
       << "      \"predicted_overlap_efficiency\": "
       << c.predicted_overlap_efficiency << ",\n"
       << "      \"imbalance_ratio\": " << c.measured.imbalance_ratio << ",\n"
       << "      \"late_sender_seconds\": " << c.measured.late_sender_seconds
       << ",\n"
       << "      \"late_receiver_seconds\": "
       << c.measured.late_receiver_seconds << ",\n"
       << "      \"measured_redundant_step_seconds\": "
       << c.measured_redundant_step_seconds << ",\n"
       << "      \"predicted_redundant_step_seconds\": "
       << c.predicted_redundant_step_seconds << "\n"
       << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace jitfd::perf
