// Kernel characterization for the analytical scaling model.
//
// Everything structural is derived from the library itself: flops and
// reads per point come from the compiler's lowered AST (the paper's own
// compile-time OI methodology, Section IV-C); exchanged-field counts and
// halo-spot counts come from the halo-detection pass run on a distributed
// instance of each propagator. Only two effective-efficiency factors per
// (kernel, target) are calibrated against the paper's *single-node*
// throughput — all multi-node behaviour is then predicted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace jitfd::perf {

enum class Target { Cpu, Gpu };

struct KernelSpec {
  std::string name;

  /// Working-set field count (paper Section IV-B: 5/12/22/36). Memory
  /// traffic per updated point is modeled as 4 bytes x fields, with a
  /// mild SDO-dependent cache-pressure factor.
  int fields = 0;

  /// Field instances halo-exchanged per time step (from the compiler's
  /// spot analysis: acoustic 1, TTI 4 incl. CIRE temporaries, elastic 9,
  /// viscoelastic 9).
  int comm_fields = 0;

  /// Extra communication-volume factor relative to the compiler-derived
  /// comm_fields. 1.0 except viscoelastic (1.65): the paper reports its
  /// generated code also exchanges the memory variables ("communication
  /// cost is around 65% higher, 36 vs. 22 fields", Section IV-D).
  double comm_factor = 1.0;

  /// Halo spots per time step (synchronization rounds).
  int nspots = 1;

  /// Flops per updated grid point, per space order (compiler-derived).
  std::map<int, int> flops_by_so;

  /// Paper problem setup (Section IV-C).
  std::map<Target, std::int64_t> strong_domain;  ///< Cube edge, points.
  int timesteps = 0;  ///< Steps in the 512 ms simulated window.

  /// Calibrated effective fractions of stream bandwidth / peak flops
  /// (fit on the paper's 1-unit SDO-8 throughput; see EXPERIMENTS.md).
  std::map<Target, double> eff_bw;
  std::map<Target, double> eff_flop;

  /// Effective fraction of the unit's injection bandwidth this kernel's
  /// exchange attains (second calibration point: the paper's 128-unit
  /// SDO-8 basic-mode efficiency; captures staggered-layout and
  /// memory-pressure effects the volume model cannot derive).
  std::map<Target, double> net_eff;

  /// Modeled memory traffic per updated point (bytes) at `so`.
  double bytes_per_point(int so) const;
  /// Flops per point, linearly interpolated between tabulated orders.
  double flops_per_point(int so) const;
};

/// Specs for the paper's four kernels. When `derive` is true the flop
/// table and communication structure are recomputed through the compiler
/// (a few hundred ms); otherwise the checked-in values (verified by
/// tests/test_perfmodel.cpp against live derivation) are used.
KernelSpec acoustic_spec(bool derive = false);
KernelSpec tti_spec(bool derive = false);
KernelSpec elastic_spec(bool derive = false);
KernelSpec viscoelastic_spec(bool derive = false);

/// All four, in the paper's presentation order.
std::vector<KernelSpec> all_kernel_specs(bool derive = false);

/// Live derivation of (flops_by_so, comm_fields, nspots) for one kernel
/// by building it through the compiler on a tiny distributed grid.
struct DerivedFacts {
  std::map<int, int> flops_by_so;
  int comm_fields = 0;
  int nspots = 0;
};
DerivedFacts derive_facts(const std::string& kernel_name);

}  // namespace jitfd::perf
