// The paper's published throughput tables (Appendix D/E, Tables III to
// XXXIV), embedded verbatim for side-by-side comparison in the benchmark
// harness and EXPERIMENTS.md. Entries that are illegible in the source
// PDF are NaN. These values are REFERENCE DATA ONLY: the scaling model
// never reads them except through its two documented calibration points.
#pragma once

#include <array>
#include <cmath>
#include <string>

#include "ir/lower.h"
#include "perfmodel/kernel_spec.h"

namespace jitfd::perf {

/// Unit counts of every scaling table column: 1, 2, ..., 128.
inline constexpr std::array<int, 8> kUnitColumns{1, 2, 4, 8, 16, 32, 64, 128};

/// One published table row: GPts/s per unit-count column.
struct PaperRow {
  std::array<double, 8> gpts;
  bool available() const {
    for (const double v : gpts) {
      if (!std::isnan(v)) {
        return true;
      }
    }
    return false;
  }
};

/// Strong-scaling reference: Tables III-XVIII (CPU, three modes) and
/// XIX-XXXIV (GPU, basic only — the paper's GPU runs support only basic).
/// Returns a row with all-NaN when the paper does not report the
/// combination (e.g. GPU diagonal/full).
PaperRow paper_strong(const std::string& kernel, Target target, int so,
                      ir::MpiMode mode);

}  // namespace jitfd::perf
