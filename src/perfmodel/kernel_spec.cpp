#include "perfmodel/kernel_spec.h"

#include <stdexcept>

#include "models/acoustic.h"
#include "models/elastic.h"
#include "models/tti.h"
#include "models/viscoelastic.h"
#include "smpi/runtime.h"

namespace jitfd::perf {

double KernelSpec::bytes_per_point(int so) const {
  // 4 bytes per field streamed once per step, with a mild cache-pressure
  // growth at wider stencils (more partially-used cache lines).
  return 4.0 * fields * (1.0 + 0.15 * (so - 8) / 8.0);
}

double KernelSpec::flops_per_point(int so) const {
  const auto it = flops_by_so.find(so);
  if (it != flops_by_so.end()) {
    return it->second;
  }
  // Linear interpolation/extrapolation on the tabulated orders.
  const auto lo = flops_by_so.begin();
  const auto hi = std::prev(flops_by_so.end());
  if (so <= lo->first) {
    return lo->second;
  }
  if (so >= hi->first) {
    return hi->second;
  }
  auto upper = flops_by_so.upper_bound(so);
  auto lower = std::prev(upper);
  const double t = static_cast<double>(so - lower->first) /
                   static_cast<double>(upper->first - lower->first);
  return lower->second + t * (upper->second - lower->second);
}

namespace {

template <typename Model>
DerivedFacts derive_for() {
  DerivedFacts facts;
  for (const int so : {4, 8, 12, 16}) {
    grid::Grid g({8, 8, 8}, {1.0, 1.0, 1.0});
    Model model(g, so);
    auto op = model.make_operator({});
    facts.flops_by_so[so] =
        models::analyze(*op, "probe", so, 0).flops_per_point;
  }
  // Communication structure from the halo-detection pass on a distributed
  // instance (8 ranks, 2x2x2). Pinned to the thread transport: derived
  // facts feed the perf model and must not vary with JITFD_TRANSPORT.
  smpi::launch({.nranks = 8, .transport = smpi::TransportKind::Threads},
               [&](smpi::Communicator& comm) {
    if (comm.rank() != 0) {
      grid::Grid g({8, 8, 8}, {1.0, 1.0, 1.0}, comm);
      Model model(g, 4);
      (void)model.make_operator({.mode = ir::MpiMode::Basic});
      return;
    }
    grid::Grid g({8, 8, 8}, {1.0, 1.0, 1.0}, comm);
    Model model(g, 4);
    auto op = model.make_operator({.mode = ir::MpiMode::Basic});
    for (const auto& spot : op->info().spots) {
      if (spot.hoisted) {
        continue;  // One-off parameter exchanges are amortized away.
      }
      ++facts.nspots;
      facts.comm_fields += static_cast<int>(spot.needs.size());
    }
  });
  return facts;
}

}  // namespace

DerivedFacts derive_facts(const std::string& kernel_name) {
  if (kernel_name == "acoustic") {
    return derive_for<models::AcousticModel>();
  }
  if (kernel_name == "tti") {
    return derive_for<models::TtiModel>();
  }
  if (kernel_name == "elastic") {
    return derive_for<models::ElasticModel>();
  }
  if (kernel_name == "viscoelastic") {
    return derive_for<models::ViscoelasticModel>();
  }
  throw std::invalid_argument("derive_facts: unknown kernel " + kernel_name);
}

namespace {

KernelSpec finish(KernelSpec spec, bool derive) {
  if (derive) {
    const DerivedFacts facts = derive_facts(spec.name);
    spec.flops_by_so = facts.flops_by_so;
    spec.comm_fields = facts.comm_fields;
    spec.nspots = facts.nspots;
  }
  return spec;
}

}  // namespace

KernelSpec acoustic_spec(bool derive) {
  KernelSpec s;
  s.name = "acoustic";
  s.fields = 5;
  s.comm_fields = 1;  // u@t.
  s.nspots = 1;
  s.flops_by_so = {{4, 64}, {8, 105}, {12, 145}, {16, 184}};
  s.strong_domain = {{Target::Cpu, 1024}, {Target::Gpu, 1158}};
  s.timesteps = 290;
  s.eff_bw = {{Target::Cpu, 0.726}, {Target::Gpu, 0.306}};
  s.eff_flop = {{Target::Cpu, 0.35}, {Target::Gpu, 0.30}};
    s.net_eff = {{Target::Cpu, 0.353}, {Target::Gpu, 0.390}};
return finish(std::move(s), derive);
}

KernelSpec tti_spec(bool derive) {
  KernelSpec s;
  s.name = "tti";
  s.fields = 12;
  s.comm_fields = 4;  // p@t, q@t and the CIRE temporaries zdp, zdq.
  s.nspots = 2;
  s.flops_by_so = {{4, 592}, {8, 1134}, {12, 1647}, {16, 2170}};
  s.strong_domain = {{Target::Cpu, 1024}, {Target::Gpu, 896}};
  s.timesteps = 290;
  s.eff_bw = {{Target::Cpu, 0.50}, {Target::Gpu, 0.22}};
  s.eff_flop = {{Target::Cpu, 0.42}, {Target::Gpu, 0.65}};
    s.net_eff = {{Target::Cpu, 0.588}, {Target::Gpu, 0.791}};
return finish(std::move(s), derive);
}

KernelSpec elastic_spec(bool derive) {
  KernelSpec s;
  s.name = "elastic";
  s.fields = 22;
  s.comm_fields = 9;  // tau (6) @t, v (3) @t+1.
  s.nspots = 2;
  s.flops_by_so = {{4, 207}, {8, 351}, {12, 495}, {16, 639}};
  s.strong_domain = {{Target::Cpu, 1024}, {Target::Gpu, 832}};
  s.timesteps = 363;
  s.eff_bw = {{Target::Cpu, 0.43}, {Target::Gpu, 0.23}};
  s.eff_flop = {{Target::Cpu, 0.08}, {Target::Gpu, 0.092}};
    s.net_eff = {{Target::Cpu, 0.180}, {Target::Gpu, 0.442}};
return finish(std::move(s), derive);
}

KernelSpec viscoelastic_spec(bool derive) {
  KernelSpec s;
  s.name = "viscoelastic";
  s.fields = 36;
  s.comm_fields = 9;   // tau (6) @t, v (3) @t+1 (r is read point-wise).
  s.comm_factor = 1.65;  // Paper: its code also exchanges the memory vars.
  s.nspots = 2;
  s.flops_by_so = {{4, 251}, {8, 395}, {12, 539}, {16, 683}};
  s.strong_domain = {{Target::Cpu, 768}, {Target::Gpu, 704}};
  s.timesteps = 251;
  s.eff_bw = {{Target::Cpu, 0.47}, {Target::Gpu, 0.20}};
  s.eff_flop = {{Target::Cpu, 0.052}, {Target::Gpu, 0.056}};
    s.net_eff = {{Target::Cpu, 0.280}, {Target::Gpu, 0.621}};
return finish(std::move(s), derive);
}

std::vector<KernelSpec> all_kernel_specs(bool derive) {
  return {acoustic_spec(derive), elastic_spec(derive), tti_spec(derive),
          viscoelastic_spec(derive)};
}

}  // namespace jitfd::perf
