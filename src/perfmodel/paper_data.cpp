#include "perfmodel/paper_data.h"

#include <map>

namespace jitfd::perf {

namespace {

constexpr double NA = std::numeric_limits<double>::quiet_NaN();

struct Key {
  std::string kernel;
  Target target;
  int so;
  ir::MpiMode mode;
  friend bool operator<(const Key& a, const Key& b) {
    return std::tie(a.kernel, a.target, a.so, a.mode) <
           std::tie(b.kernel, b.target, b.so, b.mode);
  }
};

using ir::MpiMode;

const std::map<Key, PaperRow>& table() {
  static const std::map<Key, PaperRow> t = {
      // --- CPU, acoustic (Tables III-VI) --------------------------------
      {{"acoustic", Target::Cpu, 4, MpiMode::Basic},
       {{13.4, 25.0, 48.0, 90.7, 170.1, 292.5, 655.4, 1415.5}}},
      {{"acoustic", Target::Cpu, 4, MpiMode::Diagonal},
       {{13.3, 25.7, 49.8, 91.0, 169.3, 287.7, 544.4, 991.6}}},
      {{"acoustic", Target::Cpu, 4, MpiMode::Full},
       {{13.9, 25.8, 49.3, 88.0, 180.0, 299.9, 589.8, 1011.1}}},
      // Table IV is partially illegible in the source; the 128-node basic
      // point (~1050 GPts/s, 64%) is quoted in the running text.
      {{"acoustic", Target::Cpu, 8, MpiMode::Basic},
       {{12.7, NA, NA, NA, 143.2, NA, NA, 1050.0}}},
      {{"acoustic", Target::Cpu, 8, MpiMode::Diagonal},
       {{NA, NA, NA, NA, 149.4, NA, NA, NA}}},
      {{"acoustic", Target::Cpu, 8, MpiMode::Full},
       {{NA, NA, NA, NA, 137.0, NA, NA, NA}}},
      {{"acoustic", Target::Cpu, 12, MpiMode::Basic},
       {{11.5, 20.1, 37.3, 62.5, 111.5, 198.1, 402.3, 769.2}}},
      {{"acoustic", Target::Cpu, 12, MpiMode::Diagonal},
       {{12.2, 22.5, 41.5, 69.3, 126.3, 221.7, 371.6, 686.6}}},
      {{"acoustic", Target::Cpu, 12, MpiMode::Full},
       {{11.8, 20.6, 37.2, 66.0, 112.1, 175.0, 307.3, 534.5}}},
      {{"acoustic", Target::Cpu, 16, MpiMode::Basic},
       {{NA, NA, NA, NA, 101.4, NA, NA, NA}}},
      {{"acoustic", Target::Cpu, 16, MpiMode::Diagonal},
       {{11.4, 20.6, 37.8, 67.1, 114.0, 194.9, 326.9, 557.2}}},
      {{"acoustic", Target::Cpu, 16, MpiMode::Full},
       {{10.7, 19.1, 34.2, 60.8, 99.7, 158.9, 253.6, 465.7}}},
      // --- CPU, elastic (Tables VII-X) -----------------------------------
      {{"elastic", Target::Cpu, 4, MpiMode::Basic},
       {{1.8, 3.3, NA, 12.0, 22.0, 40.5, 74.6, 123.0}}},
      {{"elastic", Target::Cpu, 4, MpiMode::Diagonal},
       {{1.9, 3.6, 6.8, 12.7, 23.6, 45.0, 77.5, 134.6}}},
      {{"elastic", Target::Cpu, 4, MpiMode::Full},
       {{1.9, 3.4, 6.0, 11.8, 21.4, 37.7, 66.7, 106.9}}},
      {{"elastic", Target::Cpu, 8, MpiMode::Basic},
       {{1.7, NA, NA, 10.3, NA, NA, NA, 97.3}}},
      {{"elastic", Target::Cpu, 8, MpiMode::Diagonal},
       {{1.8, 3.3, 6.1, 11.2, 20.5, 37.4, 65.0, 106.3}}},
      {{"elastic", Target::Cpu, 8, MpiMode::Full},
       {{1.7, 3.1, 5.5, 9.8, 17.0, 29.6, 51.4, 79.3}}},
      {{"elastic", Target::Cpu, 12, MpiMode::Basic},
       {{1.5, 2.7, 4.2, 8.8, 15.8, 22.2, 50.9, 80.0}}},
      {{"elastic", Target::Cpu, 12, MpiMode::Diagonal},
       {{1.5, 2.7, 5.2, 9.4, 17.1, 30.9, 53.4, 90.8}}},
      {{"elastic", Target::Cpu, 12, MpiMode::Full},
       {{1.4, 2.5, 4.9, 8.4, 14.1, 25.1, 41.0, 65.7}}},
      {{"elastic", Target::Cpu, 16, MpiMode::Basic},
       {{1.0, 2.0, 3.0, 6.9, 12.4, 20.7, 39.9, 62.3}}},
      {{"elastic", Target::Cpu, 16, MpiMode::Diagonal},
       {{1.2, 2.3, 3.9, 7.8, 14.2, 25.3, 43.7, 71.5}}},
      {{"elastic", Target::Cpu, 16, MpiMode::Full},
       {{1.2, 2.1, 3.8, 6.7, 12.0, 19.9, 35.2, 55.2}}},
      // --- CPU, TTI (Tables XI-XIV) ---------------------------------------
      {{"tti", Target::Cpu, 4, MpiMode::Basic},
       {{4.3, 8.2, 16.2, 32.8, 62.7, 118.4, 228.2, 388.7}}},
      {{"tti", Target::Cpu, 4, MpiMode::Diagonal},
       {{4.4, 8.7, 17.1, 32.8, 63.0, 117.9, 209.9, 361.9}}},
      {{"tti", Target::Cpu, 4, MpiMode::Full},
       {{4.2, 8.2, 15.9, 32.3, 60.9, 111.7, 189.7, 321.3}}},
      {{"tti", Target::Cpu, 8, MpiMode::Basic},
       {{3.5, 6.4, 11.8, 26.9, 51.0, 90.7, 178.9, 314.4}}},
      {{"tti", Target::Cpu, 8, MpiMode::Diagonal},
       {{3.6, 6.9, 13.9, 27.9, 53.6, 95.6, 176.1, 303.1}}},
      {{"tti", Target::Cpu, 8, MpiMode::Full},
       {{3.3, 6.3, 12.7, 24.4, 47.0, 84.7, 143.2, 238.6}}},
      {{"tti", Target::Cpu, 12, MpiMode::Basic},
       {{2.7, 4.6, 8.2, 20.2, NA, NA, 141.7, 235.2}}},
      {{"tti", Target::Cpu, 12, MpiMode::Diagonal},
       {{2.7, 5.2, 9.3, 22.2, 41.7, 79.9, 142.3, 241.8}}},
      {{"tti", Target::Cpu, 12, MpiMode::Full},
       {{2.8, 5.3, 9.8, 18.5, 37.1, 66.6, 111.6, 170.4}}},
      {{"tti", Target::Cpu, 16, MpiMode::Basic},
       {{2.0, 3.7, 6.4, 15.9, 30.0, 55.5, 112.2, 181.0}}},
      {{"tti", Target::Cpu, 16, MpiMode::Diagonal},
       {{2.1, 4.0, 7.6, 17.7, 32.2, 63.5, 116.3, 194.0}}},
      {{"tti", Target::Cpu, 16, MpiMode::Full},
       {{2.2, 4.3, 7.8, 14.8, 27.1, 49.5, 82.1, 166.0}}},
      // --- CPU, viscoelastic (Tables XV-XVIII) ----------------------------
      {{"viscoelastic", Target::Cpu, 4, MpiMode::Basic},
       {{1.2, 2.3, 4.4, 8.1, 14.5, 23.9, 44.1, 78.3}}},
      {{"viscoelastic", Target::Cpu, 4, MpiMode::Diagonal},
       {{1.3, 2.4, 4.6, 8.3, 15.5, 25.8, 44.2, 77.8}}},
      {{"viscoelastic", Target::Cpu, 4, MpiMode::Full},
       {{1.2, 2.2, 4.0, 7.4, 13.5, 20.5, 31.5, 51.0}}},
      {{"viscoelastic", Target::Cpu, 8, MpiMode::Basic},
       {{NA, NA, NA, NA, 11.6, NA, NA, NA}}},
      {{"viscoelastic", Target::Cpu, 8, MpiMode::Diagonal},
       {{1.2, 2.2, 4.4, 7.6, 12.8, 23.8, 41.3, 72.2}}},
      {{"viscoelastic", Target::Cpu, 8, MpiMode::Full},
       {{1.1, 1.9, 3.5, 6.5, 10.6, 17.5, 30.3, 44.0}}},
      {{"viscoelastic", Target::Cpu, 12, MpiMode::Basic},
       {{1.0, 1.9, 3.3, 6.2, 11.0, 18.3, 33.3, 54.3}}},
      {{"viscoelastic", Target::Cpu, 12, MpiMode::Diagonal},
       {{1.1, 2.0, 3.7, 6.8, 12.4, 22.1, 37.4, 62.1}}},
      {{"viscoelastic", Target::Cpu, 12, MpiMode::Full},
       {{1.0, 1.8, 3.2, 5.5, 8.7, 14.6, 23.7, 35.6}}},
      {{"viscoelastic", Target::Cpu, 16, MpiMode::Basic},
       {{0.7, 1.3, 2.7, 4.9, 8.6, 14.8, 27.0, 42.0}}},
      {{"viscoelastic", Target::Cpu, 16, MpiMode::Diagonal},
       {{0.9, 1.8, 3.4, 5.9, 10.5, 19.1, 32.0, 49.5}}},
      {{"viscoelastic", Target::Cpu, 16, MpiMode::Full},
       {{0.8, 1.5, 2.8, 4.6, 7.9, 13.6, 22.8, 33.5}}},
      // --- GPU, basic only (Tables XIX-XXXIV) ------------------------------
      {{"acoustic", Target::Gpu, 4, MpiMode::Basic},
       {{34.3, 65.6, 123.3, 200.2, 348.6, 583.0, 985.2, 1535.0}}},
      {{"acoustic", Target::Gpu, 8, MpiMode::Basic},
       {{31.2, 59.4, 121.7, 199.2, 333.1, 565.5, 970.1, 1474.5}}},
      {{"acoustic", Target::Gpu, 12, MpiMode::Basic},
       {{28.8, 61.0, 104.7, 160.2, 271.2, 434.6, 742.2, 1140.7}}},
      {{"acoustic", Target::Gpu, 16, MpiMode::Basic},
       {{25.8, 47.9, 90.7, 143.7, 242.4, 387.8, 666.2, 1017.3}}},
      {{"elastic", Target::Gpu, 4, MpiMode::Basic},
       {{6.5, 11.7, 22.0, 34.2, 58.0, 95.4, 143.9, 198.9}}},
      {{"elastic", Target::Gpu, 8, MpiMode::Basic},
       {{5.2, 9.4, 16.8, 27.2, 45.5, 72.7, 114.1, 164.2}}},
      {{"elastic", Target::Gpu, 12, MpiMode::Basic},
       {{4.0, 7.2, 13.3, 21.7, 35.8, 57.2, 92.7, 131.9}}},
      {{"elastic", Target::Gpu, 16, MpiMode::Basic},
       {{2.5, 4.6, 8.6, 15.4, 26.0, 42.4, 68.9, 100.7}}},
      {{"tti", Target::Gpu, 4, MpiMode::Basic},
       {{10.5, 20.3, 37.8, 63.8, 109.6, 200.1, 354.9, 541.8}}},
      {{"tti", Target::Gpu, 8, MpiMode::Basic},
       {{8.5, 16.2, 31.0, 53.1, 90.6, 163.8, 289.1, 460.7}}},
      {{"tti", Target::Gpu, 12, MpiMode::Basic},
       {{7.5, 14.4, 27.4, 46.0, 78.0, 138.9, 250.3, 405.1}}},
      {{"tti", Target::Gpu, 16, MpiMode::Basic},
       {{5.8, 11.2, 21.3, 38.2, 65.7, 115.8, 205.2, 322.4}}},
      {{"viscoelastic", Target::Gpu, 4, MpiMode::Basic},
       {{3.4, 6.3, 11.9, 19.2, 33.6, 57.4, 90.8, 128.1}}},
      {{"viscoelastic", Target::Gpu, 8, MpiMode::Basic},
       {{2.8, 5.3, 9.4, 16.0, 27.9, 46.0, 73.7, 107.8}}},
      {{"viscoelastic", Target::Gpu, 12, MpiMode::Basic},
       {{2.5, 4.7, 8.5, 13.1, 23.0, 37.4, 60.4, 88.4}}},
      {{"viscoelastic", Target::Gpu, 16, MpiMode::Basic},
       {{1.6, 3.1, 6.2, 10.7, 18.6, 31.0, 48.9, 71.6}}},
  };
  return t;
}

}  // namespace

PaperRow paper_strong(const std::string& kernel, Target target, int so,
                      ir::MpiMode mode) {
  const auto it = table().find(Key{kernel, target, so, mode});
  if (it == table().end()) {
    PaperRow row;
    row.gpts.fill(NA);
    return row;
  }
  return it->second;
}

}  // namespace jitfd::perf
