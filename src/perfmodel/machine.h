// Machine models for the paper's two evaluation systems (Section IV-A):
// ARCHER2 CPU nodes (2x AMD EPYC 7742, HPE Slingshot) and Tursa GPU
// nodes (4x NVIDIA A100-80, NVLink + 4x200Gb/s InfiniBand).
//
// The analytical scaling model combines these hardware constants with
// kernel facts extracted from the compiler. Hardware numbers are public
// specifications; effective-efficiency factors live with the kernel
// calibration (see calibration.h), not here.
#pragma once

#include <string>

namespace jitfd::perf {

/// One scaling "unit": a CPU node or a GPU device (the paper scales CPU
/// plots per node and GPU plots per device).
struct MachineSpec {
  std::string name;

  // Compute.
  double mem_bw_gbs = 0.0;      ///< Streaming memory bandwidth per unit (GB/s).
  double peak_gflops = 0.0;     ///< FP32 peak per unit (GFLOP/s).
  int ranks_per_unit = 1;       ///< MPI ranks per unit (8 on ARCHER2 nodes).
  int omp_threads_per_rank = 1; ///< For the full-mode sacrificed thread.
  /// Last-level cache capacity available to one rank (MB) — feeds the
  /// cache-traffic term of the tiled sweep model (0 disables it).
  double cache_mb = 0.0;

  // Interconnect (per unit).
  double net_bw_gbs = 0.0;      ///< Injection bandwidth per unit (GB/s).
  double net_latency_us = 0.0;  ///< Per-message one-way latency (us).
  double msg_overhead_us = 0.0; ///< Per-message CPU injection overhead (us).

  // GPU-specific: units per node sharing NVLink; intra-node traffic uses
  // the faster fabric.
  int units_per_node = 1;
  double intranode_bw_gbs = 0.0;
};

/// ARCHER2 compute node: dual EPYC 7742 (128 cores, 8 NUMA domains),
/// ~350 GB/s stream bandwidth, FP32 peak ~9.2 TFLOP/s, Slingshot with two
/// 200 Gb/s NICs per node.
MachineSpec archer2_node();

/// Tursa A100-80 device: 2039 GB/s HBM2e, 19.5 TFLOPS FP32, a dedicated
/// 200 Gb/s IB interface per GPU, NVLink among the 4 GPUs of a node.
MachineSpec tursa_a100();

}  // namespace jitfd::perf
