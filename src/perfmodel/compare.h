// Measured-vs-predicted cross-validation (the feedback loop between the
// generated code and the analytical model).
//
// The tracing subsystem (src/obs) distills a run into a RunProfile;
// callers lift that into a MeasuredRun (adding what tracing cannot
// know: grid points, space order, kernel identity) and compare it
// against the alpha-beta + roofline ScalingModel. The comparison
// juxtaposes GPts/s, communication fraction, and per-pattern message
// counts/volume — message counts are checked against the exact Table I
// structural expectation for the run's topology, so a mismatch flags a
// runtime bug rather than a model error.
//
// Absolute predicted times come from the modeled machine (ARCHER2 /
// Tursa specs), not from the thread-backed test host, so the value of
// the report is in the *structure*: comm fractions, pattern ordering,
// and message accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/scaling.h"

namespace jitfd::obs {
struct RunProfile;
struct AnalysisReport;
}

namespace jitfd::perf {

/// One traced run, distilled. `messages`/`halo_bytes` are totals across
/// all ranks over the whole run; `comm_fraction` is the mean over ranks
/// of comm / (comm + compute) busy time.
struct MeasuredRun {
  std::string kernel;  ///< Label for the report ("acoustic", ...).
  ir::MpiMode mode = ir::MpiMode::Basic;
  int ranks = 1;
  int so = 2;
  std::int64_t steps = 0;
  /// Communication-avoiding exchange depth the run was compiled with
  /// (1 = one exchange round per step).
  int exchange_depth = 1;
  /// Cache-tile shape the run was compiled with (CompileOptions::tile
  /// layout; empty = untiled). Feeds the model's cache-traffic term.
  std::vector<std::int64_t> tile;
  std::int64_t points_updated = 0;  ///< Global points x steps.
  double wall_seconds = 0.0;        ///< Slowest rank.
  double comm_fraction = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t halo_bytes = 0;
  // Cross-rank diagnostics (filled by the AnalysisReport overload of
  // measured_from; zero/false otherwise).
  bool has_analysis = false;
  double overlap_efficiency = 0.0;  ///< Full pattern: comm hidden / comm wall.
  double imbalance_ratio = 0.0;     ///< Max/mean compute across ranks.
  double redundant_seconds = 0.0;   ///< Deep-halo ghost-extension excess.
  double late_sender_seconds = 0.0;
  double late_receiver_seconds = 0.0;
};

/// Lift an obs::RunProfile into a MeasuredRun. `steps` overrides the
/// traced step count when nonzero (JIT runs record no per-step spans).
MeasuredRun measured_from(const obs::RunProfile& profile,
                          const std::string& kernel, ir::MpiMode mode,
                          int so, std::int64_t points_updated,
                          std::int64_t steps = 0);

/// As above, but also fold in the cross-rank AnalysisReport (overlap
/// efficiency, imbalance, wait-state split, deep-halo redundancy) so
/// the comparison can juxtapose them against the model's predictions.
MeasuredRun measured_from(const obs::RunProfile& profile,
                          const obs::AnalysisReport& analysis,
                          const std::string& kernel, ir::MpiMode mode,
                          int so, std::int64_t points_updated,
                          std::int64_t steps = 0);

/// Exact Table I structural message count for one exchange of one field
/// over a non-periodic process grid `topology`: face neighbours only
/// (basic, 2d per interior rank) or the full star neighbourhood
/// (diagonal/full, 3^d - 1 per interior rank), summed over all ranks.
std::uint64_t table1_messages(const std::vector<int>& topology,
                              ir::MpiMode mode);

/// One pattern's measured-vs-predicted row.
struct Comparison {
  MeasuredRun measured;
  double measured_gpts = 0.0;
  double predicted_gpts = 0.0;
  double measured_step_seconds = 0.0;
  double predicted_step_seconds = 0.0;
  double predicted_comm_fraction = 0.0;
  std::uint64_t expected_messages = 0;  ///< Table I x fields x spots x strips.
  double measured_bytes_per_step = 0.0;
  double predicted_bytes_per_step = 0.0;  ///< Model halo volume, all ranks.
  /// Model's overlap ceiling for the full pattern: the fraction of
  /// network time hideable under compute, min(t_comp, t_net) / t_net
  /// (0 for patterns without compute/comm overlap).
  double predicted_overlap_efficiency = 0.0;
  /// Deep-halo redundancy per step per rank, measured (from the
  /// analyzer's strip accounting) vs. the model's t_redundant.
  double measured_redundant_step_seconds = 0.0;
  double predicted_redundant_step_seconds = 0.0;

  bool messages_match() const {
    return expected_messages == measured.messages;
  }
};

/// Compare one measured run against `model` evaluated on the same unit
/// count, order and pattern. `topology` is the run's process grid and
/// `global_shape` the global grid (for the structural halo-volume
/// estimate); `exchanges_per_step` is the number of (field, spot)
/// message rounds per time step (fields x per-step spots, 1 for a
/// single-field single-spot kernel); `domain_edge` feeds the model's
/// strong-scaling evaluation (0 = the paper's default cube). When
/// `measured.exchange_depth` > 1, one exchange round covers a strip of
/// `depth` steps, so the structural expectation scales with
/// ceil(steps / depth) strips rather than steps, and the model is
/// evaluated with the matching communication-avoiding terms. When
/// `measured.tile` is non-empty the model's cache-traffic term is
/// evaluated with that tile shape (ScalingModel::set_tile).
Comparison compare_run(const MeasuredRun& measured, const ScalingModel& model,
                       const std::vector<int>& topology,
                       const std::vector<std::int64_t>& global_shape,
                       int exchanges_per_step = 1,
                       std::int64_t domain_edge = 0);

/// Allowed |measured - predicted| drift per gated metric (absolute, in
/// each metric's own unit: efficiencies and fractions are 0..1 shares).
/// These bands are the committed perfmodel contract the drift sentinel
/// enforces in CI — a run can pass its total-time gate yet fail here
/// when, say, overlap collapses but compute happens to be faster.
struct DriftBands {
  double overlap_efficiency = 0.25;
  double comm_fraction = 0.25;
  double redundant_share = 0.25;
};

/// One model-vs-measured drift gate evaluated from a Comparison row.
struct DriftGate {
  std::string metric;      ///< "overlap_efficiency" | "comm_fraction" | ...
  double measured = 0.0;
  double predicted = 0.0;
  double drift = 0.0;      ///< |measured - predicted|.
  double band = 0.0;       ///< Allowed drift.
  bool ok = false;         ///< drift <= band.
};

/// Evaluate the three drift gates for one comparison row: overlap
/// efficiency (needs measured analysis data; skipped — no gate emitted —
/// when the row carries none), communication fraction, and the
/// redundant-compute share of a step. Callers fold the resulting
/// `drift` values into a bench series (bench_util.h) so the sentinel
/// gates them against committed bands.
std::vector<DriftGate> drift_gates(const Comparison& row,
                                   const DriftBands& bands = {});

/// Human-readable table, one row per pattern.
std::string comparison_table(const std::vector<Comparison>& rows);

/// Machine-readable report (JSON), the artifact CI and BENCH files
/// record.
std::string comparison_json(const std::vector<Comparison>& rows);

}  // namespace jitfd::perf
