#include "perfmodel/scaling.h"

#include <algorithm>
#include <cmath>

#include "smpi/cart.h"

namespace jitfd::perf {

namespace {

constexpr double kGiga = 1e9;
constexpr double kMega = 1e6;

/// Load-imbalance/jitter: a small fraction of compute time per halo spot
/// per log2(ranks) (synchronous exchanges expose straggler noise).
constexpr double kSyncFraction = 0.004;

/// Strided-access penalties of full-mode remainder slabs (paper IV-F).
/// Slabs thin along the innermost (contiguous) dimension truncate the
/// vectorized loops to the halo width and are by far the least efficient;
/// slabs thin along outer dimensions keep long inner loops. Order of
/// magnitude confirmed by bench_pack_unpack.
constexpr double kRemainderPenaltyInner = 6.0;
constexpr double kRemainderPenaltyOuter = 1.7;

/// Basic mode's per-dimension rounds cannot overlap with each other.
constexpr double kMultiStepSerialization = 1.15;

/// Fraction of blocking-exchange bandwidth the asynchronous (full-mode)
/// exchange attains with MPI_Test-driven progression.
constexpr double kAsyncProgressQuality = 0.5;

struct Local {
  std::vector<std::int64_t> n;  ///< Block sizes.
  std::vector<int> dims;        ///< Topology.
  double points = 0.0;
  double surface_volume(int width, int comm_fields, double factor) const {
    double v = 0.0;
    for (std::size_t d = 0; d < n.size(); ++d) {
      if (dims[d] <= 1) {
        continue;
      }
      double s = 1.0;
      for (std::size_t q = 0; q < n.size(); ++q) {
        if (q != d) {
          s *= static_cast<double>(n[q]);
        }
      }
      v += 2.0 * width * s;
    }
    return v * 4.0 * comm_fields * factor;  // bytes
  }
  int split_dims() const {
    int k = 0;
    for (const int d : dims) {
      k += d > 1 ? 1 : 0;
    }
    return k;
  }
};

Local decompose(const std::vector<std::int64_t>& domain, int parts,
                const std::vector<int>& topology) {
  Local local;
  local.dims = smpi::dims_create(parts, static_cast<int>(domain.size()),
                                 topology);
  local.points = 1.0;
  for (std::size_t d = 0; d < domain.size(); ++d) {
    local.n.push_back(std::max<std::int64_t>(
        1, domain[d] / local.dims[d]));
    local.points *= static_cast<double>(local.n.back());
  }
  return local;
}

}  // namespace

ScalingPoint ScalingModel::evaluate(const std::vector<std::int64_t>& domain,
                                    int units, int so, ir::MpiMode mode,
                                    bool weak_regime,
                                    int exchange_depth) const {
  ScalingPoint pt;
  pt.units = units;

  const int ranks = units * machine_.ranks_per_unit;
  const Local unit = decompose(domain, units, topology_);
  // Rank-level decomposition: free except where the custom topology pins
  // a dimension to stay undecomposed (the Section IV-F tuning case).
  std::vector<int> rank_topo;
  if (!topology_.empty()) {
    for (const int d : topology_) {
      rank_topo.push_back(d == 1 ? 1 : 0);
    }
  }
  const Local rank = decompose(domain, ranks, rank_topo);

  // --- Computation ---------------------------------------------------------
  const double bytes_pt = kernel_.bytes_per_point(so);
  const double flops_pt = kernel_.flops_per_point(so);
  const double bw = machine_.mem_bw_gbs * kGiga * kernel_.eff_bw.at(target_);
  const double fl =
      machine_.peak_gflops * kGiga * kernel_.eff_flop.at(target_);
  // Cache-traffic term: reusing loaded neighbours across the stencil's
  // vertical extent keeps ~(so + 1) planes of every working-set field
  // live; when that footprint overflows the rank's cache share, the
  // bytes term grows by the overflow ratio (clamped at so + 1 — every
  // reuse missing). Tiling a non-innermost dimension below the outermost
  // shrinks the plane footprint (+so for the tile's own halo); the ratio
  // is normalized to the untiled footprint so the calibrated eff_bw
  // (which already absorbs the untiled cache pressure) stays intact.
  const double cache = machine_.cache_mb * kMega;
  const auto sweep_excess = [&](bool tiled) {
    double plane = 4.0 * kernel_.fields;
    for (std::size_t d = 1; d < rank.n.size(); ++d) {
      double ext = static_cast<double>(rank.n[d]);
      if (tiled && d < tile_.size() && tile_[d] > 0) {
        ext = std::min(ext, static_cast<double>(tile_[d] + so));
      }
      plane *= ext;
    }
    const double ws = (so + 1.0) * plane;
    return cache > 0.0 ? std::clamp(ws / cache, 1.0, so + 1.0) : 1.0;
  };
  const double cache_factor =
      tile_.empty() ? 1.0 : sweep_excess(true) / sweep_excess(false);
  const double t_point =
      std::max(bytes_pt * cache_factor / bw, flops_pt / fl);
  pt.t_comp = unit.points * t_point;

  // --- Communication -----------------------------------------------------
  // Intra-unit exchanges (shared memory / NVLink within a node) are
  // absorbed into the pack term; the network terms apply only when the
  // unit-level decomposition actually splits a dimension.
  const bool exchanging = ranks > 1 && mode != ir::MpiMode::None;
  const bool networked = exchanging && unit.split_dims() > 0;
  if (exchanging) {
    const int width = so / 2;  // Read footprint of the stencils.
    const double v_unit =
        unit.surface_volume(width, kernel_.comm_fields, kernel_.comm_factor);
    const double v_rank_total =
        rank.surface_volume(width, kernel_.comm_fields, kernel_.comm_factor) *
        machine_.ranks_per_unit;

    // Network fabric: GPUs within one node ride NVLink. The calibrated
    // per-kernel network efficiency captures strong-scaling small-block
    // contention; in the weak regime (large, steady per-unit halos) the
    // exchange pipelines at wire speed (the paper's near-flat Figure 12).
    const double net_eff =
        weak_regime ? 1.0
                    : (kernel_.net_eff.count(target_) > 0
                           ? kernel_.net_eff.at(target_)
                           : 1.0);
    double net_bw = machine_.net_bw_gbs * kGiga * net_eff;
    double latency = machine_.net_latency_us / kMega;
    if (units <= machine_.units_per_node && machine_.units_per_node > 1) {
      net_bw = machine_.intranode_bw_gbs * kGiga * net_eff;
      latency *= 0.25;
    }
    const double overhead = machine_.msg_overhead_us / kMega;
    const double mem_bw = machine_.mem_bw_gbs * kGiga;

    // Communication-avoiding amortization: one exchange (of k-fold
    // depth) covers k timesteps, so the per-exchange costs — latency,
    // per-message overhead, allocation/staging, straggler sync — divide
    // by k. The wire volume per step is unchanged to first order (k
    // times the depth at 1/k the frequency), while redundant ghost-zone
    // compute grows with (k - 1): each rank recomputes a surface ring of
    // average depth (k - 1)/2 * chain width per sub-step.
    const double depth = static_cast<double>(std::max(1, exchange_depth));
    const double amort = 1.0 / depth;

    // Pack/unpack cost at rank granularity (OpenMP-threaded in the
    // generated code, so it streams at memory bandwidth).
    pt.t_pack = 2.0 * v_rank_total / mem_bw;
    pt.t_sync = kSyncFraction * pt.t_comp * kernel_.nspots *
                std::log2(static_cast<double>(ranks)) * amort;

    // Redundant ghost points per unit per step: the one-point surface
    // ring of each rank (surface_volume at width 1, divided back by the
    // 4-byte scaling) times the average redundant depth.
    const double rank_ring_points =
        rank.surface_volume(1, kernel_.comm_fields, kernel_.comm_factor) /
        4.0;
    pt.t_redundant = (depth - 1.0) / 2.0 * (so / 2) * rank_ring_points *
                     machine_.ranks_per_unit * t_point;

    // Wire messages per unit per step: every rank of the unit issues its
    // own exchanges, serialized at the unit's NIC(s). The message-rate
    // term overlaps with the volume term (whichever binds).
    const int face_msgs = 2 * rank.split_dims() * kernel_.comm_fields *
                          machine_.ranks_per_unit;
    const int star_msgs = face_msgs * 4;  // ~26/6 message blow-up in 3D.
    const double t_face_msgs = networked ? face_msgs * overhead * amort : 0.0;
    const double t_star_msgs = networked ? star_msgs * overhead * amort : 0.0;
    const double t_volume = networked ? v_unit / net_bw : 0.0;
    if (!networked) {
      latency = 0.0;
    }
    latency *= amort;

    switch (mode) {
      case ir::MpiMode::Basic: {
        // Multi-step: the per-dimension rounds serialize (no cross-round
        // overlap), and buffers are allocated and staged in C-land per
        // exchange (Table I, "runtime" allocation).
        const double t_alloc = v_unit / mem_bw * amort;
        pt.t_net = unit.split_dims() * 2.0 * latency +
                   std::max(t_face_msgs, kMultiStepSerialization * t_volume) +
                   t_alloc;
        pt.step_seconds =
            pt.t_comp + pt.t_net + pt.t_pack + pt.t_sync + pt.t_redundant;
        break;
      }
      case ir::MpiMode::Diagonal: {
        // Single-step: one latency, all messages posted together; more,
        // smaller messages (the NIC's message rate can bind instead of
        // bandwidth — the acoustic low-order regime).
        pt.t_net = 2.0 * latency + std::max(t_star_msgs, t_volume);
        pt.step_seconds =
            pt.t_comp + pt.t_net + pt.t_pack + pt.t_sync + pt.t_redundant;
        break;
      }
      case ir::MpiMode::Full: {
        // CORE fraction at rank granularity: remainders are per rank.
        double core_frac = 1.0;
        double slab_weight = 0.0;  ///< Penalty-weighted slab fractions.
        double slab_total = 0.0;
        for (std::size_t d = 0; d < rank.n.size(); ++d) {
          if (rank.dims[d] > 1) {
            const double frac = std::min(
                1.0, 2.0 * width / static_cast<double>(rank.n[d]));
            core_frac *= std::max(0.0, 1.0 - frac);
            const double penalty = (d == rank.n.size() - 1)
                                       ? kRemainderPenaltyInner
                                       : kRemainderPenaltyOuter;
            slab_weight += frac * penalty;
            slab_total += frac;
          }
        }
        const double avg_penalty =
            slab_total > 0.0 ? slab_weight / slab_total
                             : kRemainderPenaltyOuter;
        // One OpenMP thread is sacrificed to the progress engine.
        const double thread_tax =
            machine_.omp_threads_per_rank > 1
                ? static_cast<double>(machine_.omp_threads_per_rank) /
                      (machine_.omp_threads_per_rank - 1)
                : 1.0;
        const double t_core = pt.t_comp * core_frac * thread_tax;
        pt.t_remainder =
            pt.t_comp * (1.0 - core_frac) * avg_penalty * thread_tax;
        // Asynchronous progression (MPI_Test prodding) attains only a
        // fraction of the blocking exchange's effective bandwidth.
        pt.t_net = 2.0 * latency +
                   std::max(t_star_msgs, t_volume) / kAsyncProgressQuality;
        pt.step_seconds = std::max(t_core, pt.t_net) + pt.t_remainder +
                          pt.t_pack + pt.t_sync + pt.t_redundant;
        pt.t_comp = t_core;  // Report the overlapped-core time.
        break;
      }
      case ir::MpiMode::None:
        break;
    }
  } else {
    pt.step_seconds = pt.t_comp;
  }

  double global_points = 1.0;
  for (const std::int64_t d : domain) {
    global_points *= static_cast<double>(d);
  }
  pt.gpts = global_points / pt.step_seconds / kGiga;
  pt.runtime_seconds = pt.step_seconds * kernel_.timesteps;
  return pt;
}

ScalingPoint ScalingModel::strong(int units, int so, ir::MpiMode mode,
                                  std::int64_t domain_edge,
                                  int exchange_depth) const {
  const std::int64_t edge =
      domain_edge > 0 ? domain_edge : kernel_.strong_domain.at(target_);
  const std::vector<std::int64_t> domain{edge, edge, edge};
  ScalingPoint pt =
      evaluate(domain, units, so, mode, /*weak_regime=*/false, exchange_depth);
  const ScalingPoint base =
      evaluate(domain, 1, so, ir::MpiMode::None);
  pt.efficiency = pt.gpts / (base.gpts * units);
  return pt;
}

ScalingPoint ScalingModel::weak(int units, int so, ir::MpiMode mode,
                                std::int64_t per_unit_edge,
                                int exchange_depth) const {
  const std::vector<int> udims = smpi::dims_create(units, 3, topology_);
  std::vector<std::int64_t> domain;
  for (const int d : udims) {
    domain.push_back(per_unit_edge * d);
  }
  ScalingPoint pt = evaluate(domain, units, so, mode, /*weak_regime=*/true,
                             exchange_depth);
  const std::vector<std::int64_t> one{per_unit_edge, per_unit_edge,
                                      per_unit_edge};
  const ScalingPoint base =
      evaluate(one, 1, so, ir::MpiMode::None, /*weak_regime=*/true);
  pt.efficiency = pt.gpts / (base.gpts * units);
  return pt;
}

RooflinePoint roofline_point(const MachineSpec& machine,
                             const KernelSpec& kernel, Target target, int so) {
  RooflinePoint rp;
  rp.kernel = kernel.name;
  const double bytes_pt = kernel.bytes_per_point(so);
  const double flops_pt = kernel.flops_per_point(so);
  rp.oi = flops_pt / bytes_pt;
  const double bw = machine.mem_bw_gbs * kGiga * kernel.eff_bw.at(target);
  const double fl = machine.peak_gflops * kGiga * kernel.eff_flop.at(target);
  const double t_point = std::max(bytes_pt / bw, flops_pt / fl);
  rp.gpts = 1.0 / t_point / kGiga;
  rp.gflops = rp.gpts * flops_pt;
  return rp;
}

}  // namespace jitfd::perf
