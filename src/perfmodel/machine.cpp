#include "perfmodel/machine.h"

namespace jitfd::perf {

MachineSpec archer2_node() {
  MachineSpec m;
  m.name = "ARCHER2 (2x EPYC 7742)";
  m.mem_bw_gbs = 350.0;      // STREAM triad, dual-socket Rome.
  m.peak_gflops = 9216.0;    // 128 cores x 2.25 GHz x 32 SP flops/cycle.
  m.ranks_per_unit = 8;      // One rank per NUMA domain (paper setup).
  m.omp_threads_per_rank = 16;
  m.cache_mb = 32.0;         // 2 CCXs' L3 per NUMA-domain rank share.
  m.net_bw_gbs = 50.0;       // 2 NICs x 200 Gb/s.
  m.net_latency_us = 2.0;    // Slingshot P2P.
  m.msg_overhead_us = 2.0;
  m.units_per_node = 1;
  m.intranode_bw_gbs = 350.0;
  return m;
}

MachineSpec tursa_a100() {
  MachineSpec m;
  m.name = "Tursa (A100-80)";
  m.mem_bw_gbs = 2039.0;   // HBM2e.
  m.peak_gflops = 19500.0; // FP32.
  m.ranks_per_unit = 1;
  m.omp_threads_per_rank = 1;
  m.cache_mb = 40.0;    // A100 L2.
  m.net_bw_gbs = 25.0;  // One 200 Gb/s IB interface per GPU.
  m.net_latency_us = 3.5;
  m.msg_overhead_us = 1.5;  // Host-driven staging (no device buffers yet).
  m.units_per_node = 4;
  m.intranode_bw_gbs = 250.0;  // NVLink pairwise effective.
  return m;
}

}  // namespace jitfd::perf
