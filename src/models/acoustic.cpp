#include "models/acoustic.h"

#include <cmath>

#include "symbolic/manip.h"

namespace jitfd::models {

AcousticModel::AcousticModel(const grid::Grid& grid, int space_order,
                             double velocity, int nbl)
    : AcousticModel(
          grid, space_order,
          [velocity](std::span<const std::int64_t>) { return velocity; },
          velocity, nbl) {}

AcousticModel::AcousticModel(
    const grid::Grid& grid, int space_order,
    const std::function<double(std::span<const std::int64_t>)>& velocity_fn,
    double vmax, int nbl)
    : grid_(&grid),
      velocity_(vmax),
      u_("u", grid, space_order, /*time_order=*/2),
      m_("m", grid, space_order),
      damp_("damp", grid, space_order) {
  m_.init([&](std::span<const std::int64_t> gi) {
    const double v = velocity_fn(gi);
    return static_cast<float>(1.0 / (v * v));
  });
  init_damp(damp_, nbl);
}

std::unique_ptr<core::Operator> AcousticModel::make_operator(
    ir::CompileOptions opts, std::vector<runtime::SparseOp*> sparse_ops) {
  // The paper's Listing 9: eq = m * u.dt2 - u.laplace (+ damping);
  // stencil = Eq(u.forward, solve(eq, u.forward)).
  const sym::Ex pde = m_() * u_.dt2() - u_.laplace() + damp_() * u_.dt();
  const ir::Eq update(u_.forward(),
                      sym::solve(pde, sym::Ex(0), u_.forward()));
  return std::make_unique<core::Operator>(std::vector<ir::Eq>{update}, opts,
                                          std::move(sparse_ops));
}

double AcousticModel::critical_dt() const {
  // CFL for the explicit scheme: dt <= h_min / (c * sqrt(ndims)), with a
  // conventional safety factor.
  double h_min = grid_->spacing(0);
  for (int d = 1; d < grid_->ndims(); ++d) {
    h_min = std::min(h_min, grid_->spacing(d));
  }
  return 0.38 * h_min / (velocity_ * std::sqrt(grid_->ndims()));
}

std::map<std::string, double> AcousticModel::scalars(double dt) const {
  return {{"dt", dt}};
}

double AcousticModel::field_energy(std::int64_t time) const {
  const int nb = u_.time_buffers();
  return u_.norm2(static_cast<int>((((time + 1) % nb) + nb) % nb));
}

}  // namespace jitfd::models
