#include "models/tti.h"

#include <cmath>

#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace jitfd::models {

TtiModel::TtiModel(const grid::Grid& grid, int space_order, double velocity,
                   double epsilon, double delta, double theta, double phi)
    : grid_(&grid),
      velocity_(velocity),
      epsilon_(epsilon),
      delta_(delta),
      p_("p", grid, space_order, 2),
      q_("q", grid, space_order, 2),
      m_("m", grid, space_order),
      damp_("damp", grid, space_order),
      eps_("eps", grid, space_order),
      del_("del", grid, space_order) {
  const float m_val = static_cast<float>(1.0 / (velocity * velocity));
  m_.init([m_val](std::span<const std::int64_t>) { return m_val; });
  init_damp(damp_, /*nbl=*/0);
  eps_.init([epsilon](std::span<const std::int64_t>) {
    return static_cast<float>(epsilon);
  });
  del_.init([delta](std::span<const std::int64_t>) {
    return static_cast<float>(delta);
  });

  costh_ = std::make_unique<grid::Function>("costh", grid, space_order);
  sinth_ = std::make_unique<grid::Function>("sinth", grid, space_order);
  costh_->init([theta](std::span<const std::int64_t>) {
    return static_cast<float>(std::cos(theta));
  });
  sinth_->init([theta](std::span<const std::int64_t>) {
    return static_cast<float>(std::sin(theta));
  });
  if (grid.ndims() == 3) {
    cosph_ = std::make_unique<grid::Function>("cosph", grid, space_order);
    sinph_ = std::make_unique<grid::Function>("sinph", grid, space_order);
    cosph_->init([phi](std::span<const std::int64_t>) {
      return static_cast<float>(std::cos(phi));
    });
    sinph_->init([phi](std::span<const std::int64_t>) {
      return static_cast<float>(std::sin(phi));
    });
  }
  zdp_ = std::make_unique<grid::Function>("zdp", grid, space_order);
  zdq_ = std::make_unique<grid::Function>("zdq", grid, space_order);
}

sym::Ex TtiModel::dzbar(const sym::Ex& f, int so) const {
  const int nd = grid_->ndims();
  if (nd == 2) {
    // Tilt in the x-z plane: Dzbar = sin(th) d/dx + cos(th) d/dz.
    return (*sinth_)() * sym::diff(f, 0, 1, so) +
           (*costh_)() * sym::diff(f, 1, 1, so);
  }
  return (*sinth_)() * (*cosph_)() * sym::diff(f, 0, 1, so) +
         (*sinth_)() * (*sinph_)() * sym::diff(f, 1, 1, so) +
         (*costh_)() * sym::diff(f, 2, 1, so);
}

std::unique_ptr<core::Operator> TtiModel::make_operator(
    ir::CompileOptions opts, std::vector<runtime::SparseOp*> sparse_ops) {
  const int so = p_.space_order();

  // Rotated operators through CIRE temporaries: the inner rotated first
  // derivative is materialized into zdp/zdq once per point, then the
  // outer application reads the temporaries at stencil offsets. The
  // compiler's dependence analysis splits the clusters and inserts the
  // temporaries' halo exchanges automatically.
  const auto lap = [&](const grid::TimeFunction& f) {
    sym::Ex sum;
    for (int d = 0; d < grid_->ndims(); ++d) {
      sum += sym::diff(f.now(), d, 2, so);
    }
    return sum;
  };

  std::vector<ir::Eq> eqs;
  eqs.emplace_back((*zdp_)(), dzbar(p_.now(), so));
  eqs.emplace_back((*zdq_)(), dzbar(q_.now(), so));

  const sym::Ex gzz_p = dzbar((*zdp_)(), so);
  const sym::Ex gzz_q = dzbar((*zdq_)(), so);
  const sym::Ex ghh_p = lap(p_) - gzz_p;

  const sym::Ex a = 1 + 2 * eps_();
  const sym::Ex b = sym::call("sqrt", 1 + 2 * del_());

  const sym::Ex pde_p =
      m_() * p_.dt2() + damp_() * p_.dt() - (a * ghh_p + b * gzz_q);
  const sym::Ex pde_q =
      m_() * q_.dt2() + damp_() * q_.dt() - (b * ghh_p + gzz_q);

  eqs.emplace_back(p_.forward(), sym::solve(pde_p, sym::Ex(0), p_.forward()));
  eqs.emplace_back(q_.forward(), sym::solve(pde_q, sym::Ex(0), q_.forward()));
  return std::make_unique<core::Operator>(std::move(eqs), opts,
                                          std::move(sparse_ops));
}

double TtiModel::critical_dt() const {
  double h_min = grid_->spacing(0);
  for (int d = 1; d < grid_->ndims(); ++d) {
    h_min = std::min(h_min, grid_->spacing(d));
  }
  const double vmax = velocity_ * std::sqrt(1.0 + 2.0 * epsilon_);
  return 0.3 * h_min / (vmax * std::sqrt(grid_->ndims()));
}

std::map<std::string, double> TtiModel::scalars(double dt) const {
  return {{"dt", dt}};
}

double TtiModel::field_energy(std::int64_t time) const {
  const int nb = p_.time_buffers();
  const int buf = static_cast<int>((((time + 1) % nb) + nb) % nb);
  return p_.norm2(buf) + q_.norm2(buf);
}

int TtiModel::field_count() const {
  // {p, q} x3 buffers + {m, damp, eps, del} + direction cosines + the two
  // CIRE temporaries.
  return 6 + 4 + (grid_->ndims() == 3 ? 4 : 2) + 2;
}

}  // namespace jitfd::models
