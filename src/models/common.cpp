#include "models/common.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "symbolic/manip.h"

namespace jitfd::models {

void init_damp(grid::Function& damp, int nbl, double peak) {
  const grid::Grid& g = damp.grid();
  damp.init([&](std::span<const std::int64_t> gi) {
    double w = 0.0;
    for (int d = 0; d < g.ndims(); ++d) {
      const auto ud = static_cast<std::size_t>(d);
      const std::int64_t n = g.shape()[ud];
      const std::int64_t dist = std::min<std::int64_t>(gi[ud], n - 1 - gi[ud]);
      if (dist < nbl) {
        const double s =
            (static_cast<double>(nbl - dist)) / static_cast<double>(nbl);
        w = std::max(w, s * s);
      }
    }
    return static_cast<float>(peak * w);
  });
}

KernelFacts analyze(core::Operator& op, const std::string& name,
                    int space_order, int fields) {
  KernelFacts facts;
  facts.name = name;
  facts.space_order = space_order;
  facts.fields = fields;

  // Walk the innermost statements of every loop nest inside the time loop
  // (skipping remainder duplicates: count the DOMAIN/CORE nest only once
  // per cluster — we simply count the first section occurrence).
  std::set<std::size_t> seen_values;
  const std::function<void(const ir::NodePtr&, bool)> visit =
      [&](const ir::NodePtr& n, bool in_remainder) {
        if (n->type == ir::NodeType::Section) {
          const bool rem = n->name == "remainder";
          for (const auto& c : n->body) {
            visit(c, in_remainder || rem);
          }
          return;
        }
        if (n->type == ir::NodeType::Expression && !in_remainder) {
          if (!seen_values.insert(n->value.hash()).second) {
            return;  // Same statement replicated (core vs remainder).
          }
          facts.flops_per_point += sym::count_flops(n->value);
          facts.reads_per_point +=
              static_cast<int>(sym::field_accesses(n->value).size());
          if (n->target.kind() == sym::Kind::FieldAccess) {
            ++facts.writes_per_point;
          }
          return;
        }
        for (const auto& c : n->body) {
          visit(c, in_remainder);
        }
      };
  for (const auto& top : op.iet()->body) {
    if (top->type == ir::NodeType::TimeLoop) {
      visit(top, false);
    }
  }
  return facts;
}

}  // namespace jitfd::models
