// Anisotropic acoustic (TTI) wave propagator (paper Section IV-B.2,
// Appendix A.2).
//
// Pseudo-acoustic coupled system in tilted transversely isotropic media:
// two wavefields p, q driven by a *rotated* anisotropic Laplacian whose
// direction cosines depend on the spatially varying tilt (theta) and
// azimuth (phi) angles. The rotated operator is built by composing first
// derivatives with trigonometric coefficient fields:
//
//   Dzbar  = sin(th)cos(ph) d/dx + sin(th)sin(ph) d/dy + cos(th) d/dz
//   Gzz(f) = Dzbar(Dzbar f)           (rotated vertical second derivative)
//   Ghh(f) = laplace(f) - Gzz(f)      (rotated horizontal Laplacian)
//
//   m p_tt + damp p_t = (1 + 2 eps) Ghh(p) + sqrt(1 + 2 del) Gzz(q)
//   m q_tt + damp q_t = sqrt(1 + 2 del) Ghh(p) + Gzz(q)
//
// This makes TTI by far the most flop-intensive of the four kernels (the
// paper's 769-point stencil at SDO 16) with a 12-field working set:
// {p, q} x3 buffers + {m, damp, eps, del} + 2-4 precomputed trig fields.
// The trig fields are time-invariant but read at stencil offsets, so
// their halo exchange is hoisted out of the time loop by the compiler.
#pragma once

#include "models/common.h"

namespace jitfd::models {

class TtiModel : public WaveModel {
 public:
  /// Homogeneous background velocity plus constant Thomsen parameters
  /// (epsilon, delta) and constant tilt/azimuth angles in radians (the
  /// fields are spatially varying in general; tests use constants).
  TtiModel(const grid::Grid& grid, int space_order, double velocity = 1.5,
           double epsilon = 0.2, double delta = 0.1, double theta = 0.35,
           double phi = 0.6);

  const std::string& name() const override { return name_; }
  const grid::Grid& grid() const override { return *grid_; }

  std::unique_ptr<core::Operator> make_operator(
      ir::CompileOptions opts,
      std::vector<runtime::SparseOp*> sparse_ops = {}) override;

  double critical_dt() const override;
  std::map<std::string, double> scalars(double dt) const override;

  grid::TimeFunction& wavefield() override { return p_; }
  grid::TimeFunction& q() { return q_; }

  double field_energy(std::int64_t time) const override;
  int field_count() const;

 private:
  /// The rotated first derivative Dzbar applied to an expression.
  sym::Ex dzbar(const sym::Ex& f, int so) const;

  std::string name_ = "tti";
  const grid::Grid* grid_;
  double velocity_;
  double epsilon_;
  double delta_;
  grid::TimeFunction p_;
  grid::TimeFunction q_;
  grid::Function m_;
  grid::Function damp_;
  grid::Function eps_;
  grid::Function del_;
  // Precomputed direction cosines (cos/sin of theta and, in 3D, phi).
  std::unique_ptr<grid::Function> costh_;
  std::unique_ptr<grid::Function> sinth_;
  std::unique_ptr<grid::Function> cosph_;
  std::unique_ptr<grid::Function> sinph_;
  // CIRE-style derivative temporaries: zdp = Dzbar(p), zdq = Dzbar(q) are
  // materialized per time step so Gzz costs two 27-point applications
  // instead of a 729-term expansion (the paper's cross-iteration
  // redundancy elimination). They are recomputed and halo-exchanged every
  // step, exactly like Devito's CIRE arrays.
  std::unique_ptr<grid::Function> zdp_;
  std::unique_ptr<grid::Function> zdq_;
};

}  // namespace jitfd::models
