// Viscoelastic wave propagator (paper Section IV-B.4, Appendix A.4,
// after Robertson et al. 1994).
//
// Velocity-stress formulation with a single relaxation mode: on top of
// the elastic system, each stress component carries a memory variable
// r_ij with its own evolution equation (paper Equation 4). First order
// in time, staggered grid, and the largest working set of the four
// kernels: in 3D, (3 v + 6 tau + 6 r) x2 buffers + {b, pi, mu, t_s,
// t_ep, t_es} = 36 fields.
#pragma once

#include "models/common.h"

namespace jitfd::models {

class ViscoelasticModel : public WaveModel {
 public:
  /// Homogeneous medium: P/S velocities, density, stress relaxation time
  /// `t_s` and strain relaxation times `t_ep` (P) / `t_es` (S).
  ViscoelasticModel(const grid::Grid& grid, int space_order, double vp = 2.0,
                    double vs = 1.0, double rho = 1.0, double t_s = 0.05,
                    double t_ep = 0.06, double t_es = 0.06);

  const std::string& name() const override { return name_; }
  const grid::Grid& grid() const override { return *grid_; }

  std::unique_ptr<core::Operator> make_operator(
      ir::CompileOptions opts,
      std::vector<runtime::SparseOp*> sparse_ops = {}) override;

  double critical_dt() const override;
  std::map<std::string, double> scalars(double dt) const override;

  grid::TimeFunction& wavefield() override { return *tau_[0]; }
  double field_energy(std::int64_t time) const override;
  int field_count() const;

 private:
  int tau_index(int i, int j) const;

  std::string name_ = "viscoelastic";
  const grid::Grid* grid_;
  double vp_;
  std::vector<std::unique_ptr<grid::TimeFunction>> v_;
  std::vector<std::unique_ptr<grid::TimeFunction>> tau_;  ///< Upper triangle.
  std::vector<std::unique_ptr<grid::TimeFunction>> r_;    ///< Memory vars.
  std::unique_ptr<grid::Function> b_;
  std::unique_ptr<grid::Function> pi_;   ///< P relaxation modulus.
  std::unique_ptr<grid::Function> mu_;   ///< S relaxation modulus.
  std::unique_ptr<grid::Function> ts_;   ///< Stress relaxation time.
  std::unique_ptr<grid::Function> tep_;  ///< P strain relaxation time.
  std::unique_ptr<grid::Function> tes_;  ///< S strain relaxation time.
};

}  // namespace jitfd::models
