// Shared infrastructure of the four wave-propagator models evaluated in
// the paper (Section IV-B): absorbing-boundary damping profile, CFL time
// steps, and a common interface the examples and benchmarks drive.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/operator.h"
#include "grid/function.h"
#include "sparse/sparse_function.h"

namespace jitfd::models {

/// Fill `damp` with a Devito-style absorbing sponge: zero in the
/// interior, growing quadratically through the `nbl`-point boundary layer
/// to `peak` at the outer edge (the paper's 40-point ABC layer).
void init_damp(grid::Function& damp, int nbl, double peak = 1.0);

/// Properties the perfmodel extracts from a built operator.
struct KernelFacts {
  std::string name;
  int space_order = 0;
  int fields = 0;           ///< Working-set field count (time buffers + params).
  int flops_per_point = 0;  ///< From the lowered expressions (compile-time OI).
  int reads_per_point = 0;  ///< Distinct field reads per updated point.
  int writes_per_point = 0;
  std::int64_t halo_bytes_per_rank_face = 0;  ///< Unused by tests; see perfmodel.
};

/// Uniform interface over the four propagators.
class WaveModel {
 public:
  virtual ~WaveModel() = default;

  virtual const std::string& name() const = 0;
  virtual const grid::Grid& grid() const = 0;

  /// Build the lowered operator (sparse ops appended each step).
  virtual std::unique_ptr<core::Operator> make_operator(
      ir::CompileOptions opts,
      std::vector<runtime::SparseOp*> sparse_ops = {}) = 0;

  /// Stable time-step size for the model's wave speeds (CFL with margin).
  virtual double critical_dt() const = 0;

  /// Scalar bindings (other than spacings) apply() needs.
  virtual std::map<std::string, double> scalars(double dt) const = 0;

  /// The field a point source is injected into and receivers sample.
  virtual grid::TimeFunction& wavefield() = 0;

  /// Sum over all wavefield components of norm2 at the buffer written by
  /// the last step ending at `time` (used for cross-mode equivalence and
  /// stability checks).
  virtual double field_energy(std::int64_t time) const = 0;
};

/// Compile-time kernel analysis (the paper's AST-derived operational
/// intensity, Section IV-C): flops and memory accesses per grid point of
/// the operator's innermost statements.
KernelFacts analyze(core::Operator& op, const std::string& name,
                    int space_order, int fields);

}  // namespace jitfd::models
