// Isotropic acoustic wave propagator (paper Section IV-B.1, Appendix A.1).
//
//   m(x) d2u/dt2 - laplace(u) + damp du/dt = src
//
// Second order in time (3 time buffers), Jacobi "star" stencil, 5-field
// working set {u x3, m, damp}: the memory-bound, low-OI reference kernel
// of the paper's evaluation.
#pragma once

#include "models/common.h"

namespace jitfd::models {

class AcousticModel : public WaveModel {
 public:
  /// Constant-velocity medium: `velocity` in grid units/second, with a
  /// `nbl`-point absorbing boundary layer.
  AcousticModel(const grid::Grid& grid, int space_order,
                double velocity = 1.5, int nbl = 0);

  /// Heterogeneous medium: `velocity_fn` maps global grid coordinates to
  /// the local wave speed (e.g. a layered geological model). The CFL
  /// bound uses `vmax`, which must dominate the field.
  AcousticModel(const grid::Grid& grid, int space_order,
                const std::function<double(std::span<const std::int64_t>)>&
                    velocity_fn,
                double vmax, int nbl = 0);

  const std::string& name() const override { return name_; }
  const grid::Grid& grid() const override { return *grid_; }

  std::unique_ptr<core::Operator> make_operator(
      ir::CompileOptions opts,
      std::vector<runtime::SparseOp*> sparse_ops = {}) override;

  double critical_dt() const override;
  std::map<std::string, double> scalars(double dt) const override;

  grid::TimeFunction& wavefield() override { return u_; }
  grid::Function& m() { return m_; }
  grid::Function& damp() { return damp_; }

  double field_energy(std::int64_t time) const override;

 private:
  std::string name_ = "acoustic";
  const grid::Grid* grid_;
  double velocity_;
  grid::TimeFunction u_;
  grid::Function m_;
  grid::Function damp_;
};

}  // namespace jitfd::models
