// Isotropic elastic wave propagator (paper Section IV-B.3, Appendix A.3).
//
// Virieux velocity-stress formulation on a staggered grid:
//   rho dv/dt = div(tau),    dtau/dt = lam tr(grad v) I + mu (grad v + grad v^T)
//
// First order in time (2 buffers per field), coupled vector (v) and
// symmetric-tensor (tau) system. In 3D the working set is 22 fields:
// 3 velocity + 6 stress components x2 buffers + {lam, mu, b, damp}.
#pragma once

#include "models/common.h"

namespace jitfd::models {

class ElasticModel : public WaveModel {
 public:
  /// Homogeneous medium with P velocity `vp`, S velocity `vs`, density
  /// `rho` (grid units), and an `nbl`-point absorbing layer.
  ElasticModel(const grid::Grid& grid, int space_order, double vp = 2.0,
               double vs = 1.0, double rho = 1.0, int nbl = 0);

  const std::string& name() const override { return name_; }
  const grid::Grid& grid() const override { return *grid_; }

  std::unique_ptr<core::Operator> make_operator(
      ir::CompileOptions opts,
      std::vector<runtime::SparseOp*> sparse_ops = {}) override;

  double critical_dt() const override;
  std::map<std::string, double> scalars(double dt) const override;

  /// Sources are injected into the diagonal stress (explosive source);
  /// wavefield() exposes tau_xx for the common interface.
  grid::TimeFunction& wavefield() override { return *tau_diag(0); }

  grid::TimeFunction* v(int i) { return v_[static_cast<std::size_t>(i)].get(); }
  /// Diagonal stress component tau_ii.
  grid::TimeFunction* tau_diag(int i);
  /// Off-diagonal stress tau_ij (i < j).
  grid::TimeFunction* tau_off(int i, int j);

  double field_energy(std::int64_t time) const override;

  /// Total number of working-set fields (time buffers + parameters).
  int field_count() const;

 protected:
  std::string name_ = "elastic";
  const grid::Grid* grid_;
  double vp_;
  double vs_;
  double rho_;
  std::vector<std::unique_ptr<grid::TimeFunction>> v_;
  std::vector<std::unique_ptr<grid::TimeFunction>> tau_;  ///< Upper triangle.
  std::unique_ptr<grid::Function> lam_;
  std::unique_ptr<grid::Function> mu_;
  std::unique_ptr<grid::Function> b_;
  std::unique_ptr<grid::Function> damp_;

  /// Index of tau_ij within the packed upper triangle.
  int tau_index(int i, int j) const;
};

}  // namespace jitfd::models
