#include "models/elastic.h"

#include <cmath>

#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace jitfd::models {

ElasticModel::ElasticModel(const grid::Grid& grid, int space_order, double vp,
                           double vs, double rho, int nbl)
    : grid_(&grid), vp_(vp), vs_(vs), rho_(rho) {
  const int nd = grid.ndims();
  for (int i = 0; i < nd; ++i) {
    v_.push_back(std::make_unique<grid::TimeFunction>(
        "v" + grid::Grid::dim_name(i), grid, space_order, /*time_order=*/1));
  }
  for (int i = 0; i < nd; ++i) {
    for (int j = i; j < nd; ++j) {
      tau_.push_back(std::make_unique<grid::TimeFunction>(
          "t" + grid::Grid::dim_name(i) + grid::Grid::dim_name(j), grid,
          space_order, /*time_order=*/1));
    }
  }
  lam_ = std::make_unique<grid::Function>("lam", grid, space_order);
  mu_ = std::make_unique<grid::Function>("mu", grid, space_order);
  b_ = std::make_unique<grid::Function>("b", grid, space_order);
  damp_ = std::make_unique<grid::Function>("damp", grid, space_order);

  const float mu_val = static_cast<float>(rho * vs * vs);
  const float lam_val = static_cast<float>(rho * vp * vp - 2.0 * rho * vs * vs);
  const float b_val = static_cast<float>(1.0 / rho);
  lam_->init([lam_val](std::span<const std::int64_t>) { return lam_val; });
  mu_->init([mu_val](std::span<const std::int64_t>) { return mu_val; });
  b_->init([b_val](std::span<const std::int64_t>) { return b_val; });
  init_damp(*damp_, nbl);
}

int ElasticModel::tau_index(int i, int j) const {
  const int nd = grid_->ndims();
  // Packed upper triangle, row-major: (0,0),(0,1)..(0,nd-1),(1,1)...
  int idx = 0;
  for (int r = 0; r < i; ++r) {
    idx += nd - r;
  }
  return idx + (j - i);
}

grid::TimeFunction* ElasticModel::tau_diag(int i) {
  return tau_[static_cast<std::size_t>(tau_index(i, i))].get();
}

grid::TimeFunction* ElasticModel::tau_off(int i, int j) {
  return tau_[static_cast<std::size_t>(tau_index(i, j))].get();
}

std::unique_ptr<core::Operator> ElasticModel::make_operator(
    ir::CompileOptions opts, std::vector<runtime::SparseOp*> sparse_ops) {
  const int nd = grid_->ndims();
  const int so = v_[0]->space_order();
  const sym::Ex dt = grid::dt_symbol();
  std::vector<ir::Eq> eqs;

  // Velocity update: v_i += dt * b * sum_j D^-_j tau_ij - dt * damp * v_i.
  for (int i = 0; i < nd; ++i) {
    sym::Ex div_tau;
    for (int j = 0; j < nd; ++j) {
      grid::TimeFunction* t =
          tau_[static_cast<std::size_t>(tau_index(std::min(i, j),
                                                  std::max(i, j)))]
              .get();
      div_tau += sym::diff_stag(t->now(), j, so, -1);
    }
    const sym::Ex rhs = v_[static_cast<std::size_t>(i)]->now() +
                        dt * ((*b_)() * div_tau -
                              (*damp_)() * v_[static_cast<std::size_t>(i)]->now());
    eqs.emplace_back(v_[static_cast<std::size_t>(i)]->forward(), rhs);
  }

  // Stress update from the *new* velocities (leapfrog): forces the
  // compiler's loop fission and a halo exchange of v at t+1.
  sym::Ex div_v_new;
  for (int k = 0; k < nd; ++k) {
    div_v_new += sym::diff_stag(v_[static_cast<std::size_t>(k)]->forward(), k,
                                so, +1);
  }
  for (int i = 0; i < nd; ++i) {
    grid::TimeFunction* tii = tau_diag(i);
    const sym::Ex dii =
        sym::diff_stag(v_[static_cast<std::size_t>(i)]->forward(), i, so, +1);
    const sym::Ex rhs =
        tii->now() + dt * ((*lam_)() * div_v_new + 2 * (*mu_)() * dii -
                           (*damp_)() * tii->now());
    eqs.emplace_back(tii->forward(), rhs);
  }
  for (int i = 0; i < nd; ++i) {
    for (int j = i + 1; j < nd; ++j) {
      grid::TimeFunction* tij = tau_off(i, j);
      const sym::Ex dij =
          sym::diff_stag(v_[static_cast<std::size_t>(i)]->forward(), j, so, +1) +
          sym::diff_stag(v_[static_cast<std::size_t>(j)]->forward(), i, so, +1);
      const sym::Ex rhs = tij->now() + dt * ((*mu_)() * dij -
                                             (*damp_)() * tij->now());
      eqs.emplace_back(tij->forward(), rhs);
    }
  }

  return std::make_unique<core::Operator>(std::move(eqs), opts,
                                          std::move(sparse_ops));
}

double ElasticModel::critical_dt() const {
  double h_min = grid_->spacing(0);
  for (int d = 1; d < grid_->ndims(); ++d) {
    h_min = std::min(h_min, grid_->spacing(d));
  }
  return 0.38 * h_min / (vp_ * std::sqrt(grid_->ndims()));
}

std::map<std::string, double> ElasticModel::scalars(double dt) const {
  return {{"dt", dt}};
}

double ElasticModel::field_energy(std::int64_t time) const {
  const int buf = static_cast<int>(((time + 1) % 2 + 2) % 2);
  double e = 0.0;
  for (const auto& vi : v_) {
    e += vi->norm2(buf);
  }
  for (const auto& t : tau_) {
    e += t->norm2(buf);
  }
  return e;
}

int ElasticModel::field_count() const {
  return static_cast<int>(v_.size() + tau_.size()) * 2 + 4;
}

}  // namespace jitfd::models
