#include "models/viscoelastic.h"

#include <cmath>

#include "symbolic/fd_ops.h"
#include "symbolic/manip.h"

namespace jitfd::models {

ViscoelasticModel::ViscoelasticModel(const grid::Grid& grid, int space_order,
                                     double vp, double vs, double rho,
                                     double t_s, double t_ep, double t_es)
    : grid_(&grid), vp_(vp) {
  const int nd = grid.ndims();
  for (int i = 0; i < nd; ++i) {
    v_.push_back(std::make_unique<grid::TimeFunction>(
        "v" + grid::Grid::dim_name(i), grid, space_order, 1));
  }
  for (int i = 0; i < nd; ++i) {
    for (int j = i; j < nd; ++j) {
      tau_.push_back(std::make_unique<grid::TimeFunction>(
          "t" + grid::Grid::dim_name(i) + grid::Grid::dim_name(j), grid,
          space_order, 1));
      r_.push_back(std::make_unique<grid::TimeFunction>(
          "r" + grid::Grid::dim_name(i) + grid::Grid::dim_name(j), grid,
          space_order, 1));
    }
  }
  b_ = std::make_unique<grid::Function>("b", grid, space_order);
  pi_ = std::make_unique<grid::Function>("pi0", grid, space_order);
  mu_ = std::make_unique<grid::Function>("mu", grid, space_order);
  ts_ = std::make_unique<grid::Function>("t_s", grid, space_order);
  tep_ = std::make_unique<grid::Function>("t_ep", grid, space_order);
  tes_ = std::make_unique<grid::Function>("t_es", grid, space_order);

  const float b_val = static_cast<float>(1.0 / rho);
  const float mu_val = static_cast<float>(rho * vs * vs);
  const float pi_val = static_cast<float>(rho * vp * vp);
  b_->init([b_val](std::span<const std::int64_t>) { return b_val; });
  mu_->init([mu_val](std::span<const std::int64_t>) { return mu_val; });
  pi_->init([pi_val](std::span<const std::int64_t>) { return pi_val; });
  ts_->init([t_s](std::span<const std::int64_t>) {
    return static_cast<float>(t_s);
  });
  tep_->init([t_ep](std::span<const std::int64_t>) {
    return static_cast<float>(t_ep);
  });
  tes_->init([t_es](std::span<const std::int64_t>) {
    return static_cast<float>(t_es);
  });
}

int ViscoelasticModel::tau_index(int i, int j) const {
  const int nd = grid_->ndims();
  int idx = 0;
  for (int row = 0; row < i; ++row) {
    idx += nd - row;
  }
  return idx + (j - i);
}

std::unique_ptr<core::Operator> ViscoelasticModel::make_operator(
    ir::CompileOptions opts, std::vector<runtime::SparseOp*> sparse_ops) {
  const int nd = grid_->ndims();
  const int so = v_[0]->space_order();
  const sym::Ex dt = grid::dt_symbol();
  std::vector<ir::Eq> eqs;

  const sym::Ex inv_ts = 1 / (*ts_)();
  const sym::Ex pep = (*pi_)() * (*tep_)() * inv_ts;      // pi tau_ep/tau_s.
  const sym::Ex mes = (*mu_)() * (*tes_)() * inv_ts;      // mu tau_es/tau_s.

  // 4a: velocity update from the stress divergence.
  for (int i = 0; i < nd; ++i) {
    sym::Ex div_tau;
    for (int j = 0; j < nd; ++j) {
      grid::TimeFunction* t =
          tau_[static_cast<std::size_t>(
                   tau_index(std::min(i, j), std::max(i, j)))]
              .get();
      div_tau += sym::diff_stag(t->now(), j, so, -1);
    }
    eqs.emplace_back(v_[static_cast<std::size_t>(i)]->forward(),
                     v_[static_cast<std::size_t>(i)]->now() +
                         dt * (*b_)() * div_tau);
  }

  // Velocity gradients at t+1 (leapfrog).
  sym::Ex div_v;
  for (int k = 0; k < nd; ++k) {
    div_v += sym::diff_stag(v_[static_cast<std::size_t>(k)]->forward(), k, so,
                            +1);
  }

  // 4d/4e: memory-variable updates; 4b/4c: stress updates using the new
  // memory variables (paper Equation 4, single relaxation mode).
  for (int i = 0; i < nd; ++i) {
    grid::TimeFunction* rii = r_[static_cast<std::size_t>(tau_index(i, i))].get();
    const sym::Ex dii =
        sym::diff_stag(v_[static_cast<std::size_t>(i)]->forward(), i, so, +1);
    const sym::Ex rdot = -inv_ts * (rii->now() + (pep - 2 * mes) * div_v +
                                    2 * mes * dii);
    eqs.emplace_back(rii->forward(), rii->now() + dt * rdot);
  }
  for (int i = 0; i < nd; ++i) {
    for (int j = i + 1; j < nd; ++j) {
      grid::TimeFunction* rij =
          r_[static_cast<std::size_t>(tau_index(i, j))].get();
      const sym::Ex dij =
          sym::diff_stag(v_[static_cast<std::size_t>(i)]->forward(), j, so,
                         +1) +
          sym::diff_stag(v_[static_cast<std::size_t>(j)]->forward(), i, so,
                         +1);
      const sym::Ex rdot = -inv_ts * (rij->now() + mes * dij);
      eqs.emplace_back(rij->forward(), rij->now() + dt * rdot);
    }
  }
  for (int i = 0; i < nd; ++i) {
    grid::TimeFunction* tii =
        tau_[static_cast<std::size_t>(tau_index(i, i))].get();
    grid::TimeFunction* rii = r_[static_cast<std::size_t>(tau_index(i, i))].get();
    const sym::Ex dii =
        sym::diff_stag(v_[static_cast<std::size_t>(i)]->forward(), i, so, +1);
    const sym::Ex sdot =
        pep * div_v + 2 * mes * (dii - div_v) + rii->forward();
    eqs.emplace_back(tii->forward(), tii->now() + dt * sdot);
  }
  for (int i = 0; i < nd; ++i) {
    for (int j = i + 1; j < nd; ++j) {
      grid::TimeFunction* tij =
          tau_[static_cast<std::size_t>(tau_index(i, j))].get();
      grid::TimeFunction* rij =
          r_[static_cast<std::size_t>(tau_index(i, j))].get();
      const sym::Ex dij =
          sym::diff_stag(v_[static_cast<std::size_t>(i)]->forward(), j, so,
                         +1) +
          sym::diff_stag(v_[static_cast<std::size_t>(j)]->forward(), i, so,
                         +1);
      const sym::Ex sdot = mes * dij + rij->forward();
      eqs.emplace_back(tij->forward(), tij->now() + dt * sdot);
    }
  }

  return std::make_unique<core::Operator>(std::move(eqs), opts,
                                          std::move(sparse_ops));
}

double ViscoelasticModel::critical_dt() const {
  double h_min = grid_->spacing(0);
  for (int d = 1; d < grid_->ndims(); ++d) {
    h_min = std::min(h_min, grid_->spacing(d));
  }
  return 0.3 * h_min / (vp_ * std::sqrt(grid_->ndims()));
}

std::map<std::string, double> ViscoelasticModel::scalars(double dt) const {
  return {{"dt", dt}};
}

double ViscoelasticModel::field_energy(std::int64_t time) const {
  const int buf = static_cast<int>(((time + 1) % 2 + 2) % 2);
  double e = 0.0;
  for (const auto& f : v_) {
    e += f->norm2(buf);
  }
  for (const auto& f : tau_) {
    e += f->norm2(buf);
  }
  for (const auto& f : r_) {
    e += f->norm2(buf);
  }
  return e;
}

int ViscoelasticModel::field_count() const {
  return static_cast<int>(v_.size() + tau_.size() + r_.size()) * 2 + 6;
}

}  // namespace jitfd::models
