#include "symbolic/manip.h"

#include <cmath>
#include <stdexcept>

namespace jitfd::sym {

void walk(const Ex& e, const std::function<void(const Ex&)>& visit) {
  visit(e);
  for (const Ex& a : e.node().args) {
    walk(a, visit);
  }
}

bool contains(const Ex& haystack, const Ex& needle) {
  if (haystack == needle) {
    return true;
  }
  for (const Ex& a : haystack.node().args) {
    if (contains(a, needle)) {
      return true;
    }
  }
  return false;
}

Ex substitute(const Ex& e, const Ex& from, const Ex& to) {
  return substitute(e, {{from, to}});
}

Ex substitute(const Ex& e, const std::vector<std::pair<Ex, Ex>>& repls) {
  for (const auto& [from, to] : repls) {
    if (e == from) {
      return to;
    }
  }
  const ExprNode& n = e.node();
  if (n.args.empty()) {
    return e;
  }
  bool changed = false;
  std::vector<Ex> new_args;
  new_args.reserve(n.args.size());
  for (const Ex& a : n.args) {
    Ex na = substitute(a, repls);
    changed = changed || !(na == a);
    new_args.push_back(std::move(na));
  }
  if (!changed) {
    return e;
  }
  return rebuild(e, std::move(new_args));
}

LinearParts collect_linear(const Ex& e, const Ex& target) {
  if (e == target) {
    return {number(1.0), number(0.0)};
  }
  if (!contains(e, target)) {
    return {number(0.0), e};
  }
  const ExprNode& n = e.node();
  switch (n.kind) {
    case Kind::Add: {
      std::vector<Ex> coeffs;
      std::vector<Ex> rests;
      for (const Ex& a : n.args) {
        LinearParts p = collect_linear(a, target);
        coeffs.push_back(std::move(p.coeff));
        rests.push_back(std::move(p.rest));
      }
      return {make_add(std::move(coeffs)), make_add(std::move(rests))};
    }
    case Kind::Mul: {
      // Exactly one factor may contain the target, and it must be linear.
      Ex linear_factor;
      std::vector<Ex> others;
      bool found = false;
      for (const Ex& a : n.args) {
        if (contains(a, target)) {
          if (found) {
            throw std::domain_error(
                "collect_linear: target appears in multiple factors");
          }
          found = true;
          linear_factor = a;
        } else {
          others.push_back(a);
        }
      }
      const Ex rest_product = make_mul(std::move(others));
      LinearParts inner = collect_linear(linear_factor, target);
      return {inner.coeff * rest_product, inner.rest * rest_product};
    }
    case Kind::Pow:
    case Kind::Call:
      throw std::domain_error(
          "collect_linear: target appears under a nonlinear operation");
    default:
      throw std::domain_error("collect_linear: unexpected containment");
  }
}

Ex expand(const Ex& e) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case Kind::Add: {
      std::vector<Ex> args;
      args.reserve(n.args.size());
      for (const Ex& a : n.args) {
        args.push_back(expand(a));
      }
      return make_add(std::move(args));
    }
    case Kind::Pow: {
      const Ex base = expand(n.args[0]);
      const Ex exp = expand(n.args[1]);
      // (a*b)^n -> a^n * b^n (valid over the reals our kernels use).
      if (base.kind() == Kind::Mul) {
        std::vector<Ex> factors;
        for (const Ex& f : base.node().args) {
          factors.push_back(make_pow(f, exp));
        }
        return expand(make_mul(std::move(factors)));
      }
      return make_pow(base, exp);
    }
    case Kind::Mul: {
      // Expand args first, then distribute over each Add operand.
      std::vector<Ex> sums{number(1.0)};  // Running cartesian expansion.
      for (const Ex& raw : n.args) {
        const Ex a = expand(raw);
        std::vector<Ex> next;
        if (a.kind() == Kind::Add) {
          for (const Ex& term : a.node().args) {
            for (const Ex& partial : sums) {
              next.push_back(make_mul({partial, term}));
            }
          }
        } else {
          for (const Ex& partial : sums) {
            next.push_back(make_mul({partial, a}));
          }
        }
        sums = std::move(next);
      }
      return make_add(std::move(sums));
    }
    case Kind::Call:
      return rebuild(e, {expand(n.args[0])});
    default:
      return e;
  }
}

Ex solve(const Ex& lhs, const Ex& rhs, const Ex& target) {
  const Ex residual = lhs - rhs;
  const LinearParts p = collect_linear(residual, target);
  if (p.coeff.is_zero()) {
    throw std::domain_error("solve: equation does not involve the target");
  }
  return expand(-p.rest / p.coeff);
}

std::vector<Ex> field_accesses(const Ex& e) {
  std::vector<Ex> out;
  walk(e, [&](const Ex& sub) {
    if (sub.kind() == Kind::FieldAccess) {
      out.push_back(sub);
    }
  });
  return out;
}

int count_flops(const Ex& e) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case Kind::Number:
    case Kind::Symbol:
    case Kind::FieldAccess:
      return 0;
    case Kind::Add:
    case Kind::Mul: {
      int ops = static_cast<int>(n.args.size()) - 1;
      for (const Ex& a : n.args) {
        ops += count_flops(a);
      }
      return ops;
    }
    case Kind::Pow: {
      const Ex& base = n.args[0];
      const Ex& exp = n.args[1];
      int ops = count_flops(base);
      if (exp.is_number()) {
        const double v = exp.number();
        if (v == -1.0) {
          return ops + 1;  // One division.
        }
        if (v == std::floor(v) && std::abs(v) <= 8.0) {
          return ops + static_cast<int>(std::abs(v)) - 1 + (v < 0 ? 1 : 0);
        }
      }
      return ops + count_flops(exp) + 1;
    }
    case Kind::Call:
      return 1 + count_flops(n.args[0]);
  }
  return 0;
}

}  // namespace jitfd::sym
