// Symbolic expression system.
//
// A small, self-contained computer-algebra core playing the role SymPy
// plays for Devito: immutable expression trees with canonical,
// automatically-simplifying constructors. Expressions are built from
// numbers, named symbols (grid spacings, the time step, ...), and
// FieldAccess leaves that reference a point of a discrete function at an
// integer offset from the current iteration point (e.g. u[t+1, x-2, y]).
//
// Simplification invariants maintained by the constructors:
//   * Add and Mul are flattened n-ary nodes with >= 2 operands;
//   * numeric subterms are folded; like terms / like bases are collected;
//   * operands are held in a deterministic canonical order;
//   * Pow has exactly two operands and never a numeric-literal result that
//     could be folded (0^-, x^0, x^1, number^number are all folded away).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace jitfd::sym {

/// Identity of a discrete function referenced by FieldAccess leaves.
/// The grid layer owns richer metadata; the symbolic layer needs just
/// enough to print, compare, and reason about accesses.
struct FieldId {
  int id = -1;                ///< Unique per Function within a problem.
  std::string name;           ///< For printing ("u", "m", "damp", ...).
  int ndims = 0;              ///< Number of *space* dimensions.
  bool time_varying = false;  ///< TimeFunction (has a time index)?

  friend bool operator==(const FieldId& a, const FieldId& b) {
    return a.id == b.id;
  }
};

enum class Kind : std::uint8_t {
  Number,       ///< Double-precision literal.
  Symbol,       ///< Named scalar bound at run time (h_x, dt, ...).
  FieldAccess,  ///< f[t + k_t, x + k_0, y + k_1, ...].
  Add,          ///< n-ary sum.
  Mul,          ///< n-ary product.
  Pow,          ///< base ^ exponent.
  Call,         ///< Elementary function application: sqrt, sin, cos, exp.
};

class ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

/// Value-semantics handle to an immutable expression tree.
class Ex {
 public:
  Ex();  ///< Zero.
  explicit Ex(ExprPtr node) : node_(std::move(node)) {}
  Ex(double v);  // NOLINT(google-explicit-constructor): numeric literals
                 // must participate in expression arithmetic.
  Ex(int v) : Ex(static_cast<double>(v)) {}  // NOLINT

  const ExprNode& node() const { return *node_; }
  const ExprPtr& ptr() const { return node_; }

  Kind kind() const;
  bool is_number() const { return kind() == Kind::Number; }
  bool is_zero() const;
  bool is_one() const;
  /// Value of a Number node (asserts on other kinds).
  double number() const;

  std::size_t hash() const;

  /// Structural equality (uses hash as a fast path).
  friend bool operator==(const Ex& a, const Ex& b);
  friend bool operator!=(const Ex& a, const Ex& b) { return !(a == b); }

  /// Human-readable rendering, deterministic, used in tests and debugging.
  std::string to_string() const;

 private:
  ExprPtr node_;
};

/// Immutable expression node. Construct through the factory functions
/// below, never directly; the factories enforce the canonical form.
class ExprNode {
 public:
  Kind kind;
  // Number:
  double value = 0.0;
  // Symbol:
  std::string name;
  // FieldAccess:
  FieldId field;
  int time_offset = 0;            ///< Offset from the current time point.
  std::vector<int> space_offsets; ///< One entry per space dimension.
  // Add / Mul / Pow:
  std::vector<Ex> args;

  std::size_t hash = 0;

  ExprNode() : kind(Kind::Number) {}
};

// --- Factories ------------------------------------------------------------

Ex number(double v);
Ex symbol(const std::string& name);
/// Access to a non-time-varying field (parameters like velocity models).
Ex access(const FieldId& field, std::vector<int> space_offsets);
/// Access to a time-varying field at `time_offset` from the iteration point.
Ex access(const FieldId& field, int time_offset,
          std::vector<int> space_offsets);

/// Canonicalizing n-ary constructors (exposed for pass implementations).
Ex make_add(std::vector<Ex> terms);
Ex make_mul(std::vector<Ex> factors);
Ex make_pow(const Ex& base, const Ex& exponent);

/// Elementary function application. Known single-argument functions
/// (sqrt, sin, cos, exp, fabs) fold when the argument is a literal.
Ex call(const std::string& fn, const Ex& arg);

/// Rebuild a non-leaf node of the same kind (and, for Call, name) as
/// `node` with replacement operands, re-canonicalizing. Leaves are
/// returned unchanged. The workhorse of tree-rewriting passes.
Ex rebuild(const Ex& node, std::vector<Ex> new_args);

// --- Operators --------------------------------------------------------------

Ex operator+(const Ex& a, const Ex& b);
Ex operator-(const Ex& a, const Ex& b);
Ex operator*(const Ex& a, const Ex& b);
Ex operator/(const Ex& a, const Ex& b);
Ex operator-(const Ex& a);
Ex pow(const Ex& base, const Ex& exponent);
Ex pow(const Ex& base, int exponent);

Ex& operator+=(Ex& a, const Ex& b);
Ex& operator-=(Ex& a, const Ex& b);
Ex& operator*=(Ex& a, const Ex& b);
Ex& operator/=(Ex& a, const Ex& b);

/// Total deterministic order used for canonical argument sorting.
/// Returns <0, 0, >0 like strcmp.
int compare(const Ex& a, const Ex& b);

}  // namespace jitfd::sym
