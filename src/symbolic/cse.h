// Flop-reducing arithmetic passes operating on symbolic expressions:
// common sub-expression elimination (CSE), loop-invariant extraction, and
// coefficient factorization. These mirror the Cluster-level optimizations
// of the paper's compiler (Section II): CSE, CIRE-style extraction, and
// factorization.
#pragma once

#include <string>
#include <vector>

#include "symbolic/expr.h"

namespace jitfd::sym {

/// One extracted temporary: `name = value`, to be emitted before the
/// expressions that reference it (as symbol(name)).
struct Temp {
  std::string name;
  Ex value;
};

/// Result of a CSE/extraction pass over a set of right-hand sides.
struct CseResult {
  std::vector<Temp> temps;  ///< In dependency order (later may use earlier).
  std::vector<Ex> exprs;    ///< Rewritten inputs, same order as the inputs.
};

/// Eliminate common sub-expressions across `exprs`. Subtrees costing at
/// least one flop that occur two or more times (within one expression or
/// across expressions) are extracted into temporaries named
/// `prefix0, prefix1, ...` starting at `first_index`.
CseResult cse(std::vector<Ex> exprs, const std::string& prefix = "r",
              int first_index = 0);

/// Extract maximal subtrees that are invariant in space and time — i.e.
/// contain no FieldAccess — and cost at least one flop (e.g. 1/(h_x*h_x)).
/// These can be hoisted out of all loops. Numbering continues from
/// `first_index` with the same naming scheme as cse().
CseResult extract_invariants(std::vector<Ex> exprs,
                             const std::string& prefix = "r",
                             int first_index = 0);

/// Factor numeric coefficients out of sums: 0.1*a + 0.1*b - 0.1*c becomes
/// 0.1*(a + b - c), recursively. Reduces the multiply count of FD stencils
/// whose taps share weights (Devito's "factorization").
Ex factorize(const Ex& e);

}  // namespace jitfd::sym
