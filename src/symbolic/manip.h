// Expression manipulation: traversal, substitution, linear collection and
// equation solving, access harvesting, and operation counting.
#pragma once

#include <functional>
#include <vector>

#include "symbolic/expr.h"

namespace jitfd::sym {

/// Pre-order visit of every node in the tree (including the root).
void walk(const Ex& e, const std::function<void(const Ex&)>& visit);

/// True if `needle` occurs as a subtree of `haystack`.
bool contains(const Ex& haystack, const Ex& needle);

/// Replace every occurrence of `from` (structural match) with `to`.
Ex substitute(const Ex& e, const Ex& from, const Ex& to);

/// Replace several pairs in one traversal (applied leaf-to-root, no
/// re-substitution into replaced subtrees).
Ex substitute(const Ex& e, const std::vector<std::pair<Ex, Ex>>& repls);

/// Decompose `e` as `coeff * target + rest` where neither `coeff` nor
/// `rest` contains `target`. Throws std::domain_error if `e` is not linear
/// in `target` (e.g. target appears inside a Pow or a product with itself).
struct LinearParts {
  Ex coeff;
  Ex rest;
};
LinearParts collect_linear(const Ex& e, const Ex& target);

/// Distribute products over sums and powers over products, recursively:
/// a*(b + c) -> a*b + a*c and (a*b)^n -> a^n * b^n. Together with the
/// canonical constructors this yields a normal form where structural
/// equality coincides with algebraic equality for polynomial expressions.
Ex expand(const Ex& e);

/// Solve `lhs == rhs` for `target` (which must appear linearly):
/// returns the expanded expression the target equals. Mirrors
/// devito.solve().
Ex solve(const Ex& lhs, const Ex& rhs, const Ex& target);

/// All FieldAccess leaves in `e`, in deterministic (traversal) order,
/// duplicates included.
std::vector<Ex> field_accesses(const Ex& e);

/// Floating-point operation count of the *evaluated* expression:
/// n-ary Add/Mul of k operands count k-1 ops; Pow counts 1 (division) for
/// exponent -1, otherwise |exponent| - 1 multiplies for small integer
/// exponents and 1 op for the general case.
int count_flops(const Ex& e);

}  // namespace jitfd::sym
