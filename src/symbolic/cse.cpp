#include "symbolic/cse.h"

#include <map>
#include <unordered_map>
#include <utility>

#include "symbolic/manip.h"

namespace jitfd::sym {

namespace {

struct ExLess {
  bool operator()(const Ex& a, const Ex& b) const { return compare(a, b) < 0; }
};

int node_count(const Ex& e) {
  int n = 1;
  for (const Ex& a : e.node().args) {
    n += node_count(a);
  }
  return n;
}

bool is_invariant(const Ex& e) {
  if (e.kind() == Kind::FieldAccess) {
    return false;
  }
  for (const Ex& a : e.node().args) {
    if (!is_invariant(a)) {
      return false;
    }
  }
  return true;
}

// Hash-based counting: deep structural compares only on hash collisions,
// which matters for the multi-thousand-node TTI expressions.
struct ExHash {
  std::size_t operator()(const Ex& e) const { return e.hash(); }
};
struct ExEq {
  bool operator()(const Ex& a, const Ex& b) const { return a == b; }
};
using CountMap = std::unordered_map<Ex, int, ExHash, ExEq>;

void count_subtrees(const Ex& e, CountMap& counts) {
  if (count_flops(e) >= 1) {
    ++counts[e];
  }
  for (const Ex& a : e.node().args) {
    count_subtrees(a, counts);
  }
}

}  // namespace

CseResult cse(std::vector<Ex> exprs, const std::string& prefix,
              int first_index) {
  CseResult result;
  int next = first_index;
  while (true) {
    CountMap counts;
    for (const Ex& e : exprs) {
      count_subtrees(e, counts);
    }
    // Smallest repeated subtree first: extracting inner expressions first
    // lets outer repeats be expressed in terms of earlier temps.
    bool found = false;
    Ex best;
    int best_size = 0;
    for (const auto& [sub, count] : counts) {
      if (count < 2) {
        continue;
      }
      const int size = node_count(sub);
      if (!found || size < best_size ||
          (size == best_size && compare(sub, best) < 0)) {
        found = true;
        best = sub;
        best_size = size;
      }
    }
    if (!found) {
      break;
    }
    const std::string name = prefix + std::to_string(next++);
    const Ex temp_sym = symbol(name);
    for (Ex& e : exprs) {
      e = substitute(e, best, temp_sym);
    }
    result.temps.push_back(Temp{name, best});
  }
  result.exprs = std::move(exprs);
  return result;
}

namespace {

class InvariantExtractor {
 public:
  explicit InvariantExtractor(const std::string& prefix, int first_index)
      : prefix_(prefix), next_(first_index) {}

  Ex rewrite(const Ex& e) {
    if (is_invariant(e)) {
      return count_flops(e) >= 1 ? intern(e) : e;
    }
    const ExprNode& n = e.node();
    switch (n.kind) {
      case Kind::Add:
      case Kind::Mul: {
        // Split off the invariant portion of the operand list and extract
        // it as one combined temporary when it is worth a flop.
        std::vector<Ex> invariant;
        std::vector<Ex> varying;
        for (const Ex& a : n.args) {
          (is_invariant(a) ? invariant : varying).push_back(a);
        }
        std::vector<Ex> new_args;
        if (!invariant.empty()) {
          Ex combined = (n.kind == Kind::Add) ? make_add(std::move(invariant))
                                              : make_mul(std::move(invariant));
          new_args.push_back(count_flops(combined) >= 1 ? intern(combined)
                                                        : combined);
        }
        for (const Ex& a : varying) {
          new_args.push_back(rewrite(a));
        }
        return (n.kind == Kind::Add) ? make_add(std::move(new_args))
                                     : make_mul(std::move(new_args));
      }
      case Kind::Pow:
        return make_pow(rewrite(n.args[0]), rewrite(n.args[1]));
      case Kind::Call:
        return rebuild(e, {rewrite(n.args[0])});
      default:
        return e;
    }
  }

  std::vector<Temp> take_temps() { return std::move(temps_); }

 private:
  Ex intern(const Ex& e) {
    const auto it = interned_.find(e);
    if (it != interned_.end()) {
      return it->second;
    }
    const std::string name = prefix_ + std::to_string(next_++);
    const Ex sym = symbol(name);
    interned_.emplace(e, sym);
    temps_.push_back(Temp{name, e});
    return sym;
  }

  std::string prefix_;
  int next_;
  std::map<Ex, Ex, ExLess> interned_;
  std::vector<Temp> temps_;
};

}  // namespace

CseResult extract_invariants(std::vector<Ex> exprs, const std::string& prefix,
                             int first_index) {
  InvariantExtractor extractor(prefix, first_index);
  CseResult result;
  result.exprs.reserve(exprs.size());
  for (const Ex& e : exprs) {
    result.exprs.push_back(extractor.rewrite(e));
  }
  result.temps = extractor.take_temps();
  return result;
}

namespace {

std::pair<double, Ex> split_numeric_coefficient(const Ex& term) {
  if (term.kind() == Kind::Mul) {
    const auto& args = term.node().args;
    if (!args.empty() && args.front().kind() == Kind::Number) {
      std::vector<Ex> rest(args.begin() + 1, args.end());
      return {args.front().number(), make_mul(std::move(rest))};
    }
  }
  return {1.0, term};
}

}  // namespace

Ex factorize(const Ex& e) {
  const ExprNode& n = e.node();
  switch (n.kind) {
    case Kind::Add: {
      // Recurse first, then group terms sharing a numeric coefficient.
      std::map<double, std::vector<Ex>> groups;
      std::vector<Ex> out;
      for (const Ex& a : n.args) {
        const Ex fa = factorize(a);
        const auto [coeff, rest] = split_numeric_coefficient(fa);
        if (coeff != 1.0 && !rest.is_one()) {
          groups[coeff].push_back(rest);
        } else {
          out.push_back(fa);
        }
      }
      for (auto& [coeff, rests] : groups) {
        if (rests.size() >= 2) {
          out.push_back(make_mul({number(coeff), make_add(std::move(rests))}));
        } else {
          out.push_back(make_mul({number(coeff), rests.front()}));
        }
      }
      return make_add(std::move(out));
    }
    case Kind::Mul: {
      std::vector<Ex> args;
      args.reserve(n.args.size());
      for (const Ex& a : n.args) {
        args.push_back(factorize(a));
      }
      return make_mul(std::move(args));
    }
    case Kind::Pow:
      return make_pow(factorize(n.args[0]), factorize(n.args[1]));
    case Kind::Call:
      return rebuild(e, {factorize(n.args[0])});
    default:
      return e;
  }
}

}  // namespace jitfd::sym
