// Finite-difference operators on symbolic expressions.
//
// Derivatives act on whole expressions, not just single field accesses:
// diff(cos_theta * diff(u, x), x) expands to a weighted sum of shifted
// copies of the inner expression, which is exactly how the rotated
// (TTI) Laplacian of the paper composes first derivatives with spatially
// varying trigonometric coefficient fields.
#pragma once

#include "symbolic/expr.h"

namespace jitfd::sym {

/// Shift every FieldAccess in `e` by `k` points along space dimension
/// `dim`. Symbols and numbers are unaffected.
Ex shift_space(const Ex& e, int dim, int k);

/// Spacing symbol for dimension `dim` ("h_x", "h_y", "h_z").
Ex spacing_symbol(int dim);

/// Central finite-difference approximation of the `deriv_order`-th
/// derivative of `e` along `dim` with formal accuracy `space_order`,
/// including the 1/h^m factor (as a symbolic Pow of the spacing symbol).
Ex diff(const Ex& e, int dim, int deriv_order, int space_order);

/// Staggered first derivative of `e` along `dim`, evaluated half a cell
/// toward `side` (+1 or -1), accuracy `space_order`, including 1/h.
Ex diff_stag(const Ex& e, int dim, int space_order, int side);

}  // namespace jitfd::sym
