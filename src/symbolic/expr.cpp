#include "symbolic/expr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

namespace jitfd::sym {

namespace {

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::size_t compute_hash(const ExprNode& n) {
  std::size_t h = static_cast<std::size_t>(n.kind) * 0x9e3779b97f4a7c15ULL;
  switch (n.kind) {
    case Kind::Number:
      return hash_combine(h, std::hash<double>{}(n.value));
    case Kind::Symbol:
      return hash_combine(h, std::hash<std::string>{}(n.name));
    case Kind::FieldAccess: {
      h = hash_combine(h, std::hash<int>{}(n.field.id));
      h = hash_combine(h, std::hash<int>{}(n.time_offset));
      for (const int o : n.space_offsets) {
        h = hash_combine(h, std::hash<int>{}(o));
      }
      return h;
    }
    case Kind::Call:
      h = hash_combine(h, std::hash<std::string>{}(n.name));
      [[fallthrough]];
    case Kind::Add:
    case Kind::Mul:
    case Kind::Pow: {
      for (const Ex& a : n.args) {
        h = hash_combine(h, a.hash());
      }
      return h;
    }
  }
  return h;
}

ExprPtr finalize(std::unique_ptr<ExprNode> n) {
  n->hash = compute_hash(*n);
  return ExprPtr(n.release());
}

const Ex& zero_constant() {
  static const Ex z = number(0.0);
  return z;
}

}  // namespace

Ex::Ex() : node_(zero_constant().ptr()) {}
Ex::Ex(double v) : node_(jitfd::sym::number(v).ptr()) {}

Kind Ex::kind() const { return node_->kind; }

bool Ex::is_zero() const {
  return node_->kind == Kind::Number && node_->value == 0.0;
}

bool Ex::is_one() const {
  return node_->kind == Kind::Number && node_->value == 1.0;
}

double Ex::number() const {
  assert(node_->kind == Kind::Number);
  return node_->value;
}

std::size_t Ex::hash() const { return node_->hash; }

int compare(const Ex& a, const Ex& b) {
  if (a.ptr() == b.ptr()) {
    return 0;
  }
  const ExprNode& na = a.node();
  const ExprNode& nb = b.node();
  if (na.kind != nb.kind) {
    return static_cast<int>(na.kind) < static_cast<int>(nb.kind) ? -1 : 1;
  }
  switch (na.kind) {
    case Kind::Number:
      if (na.value != nb.value) {
        return na.value < nb.value ? -1 : 1;
      }
      return 0;
    case Kind::Symbol:
      return na.name.compare(nb.name);
    case Kind::FieldAccess: {
      if (na.field.id != nb.field.id) {
        return na.field.id < nb.field.id ? -1 : 1;
      }
      if (na.time_offset != nb.time_offset) {
        return na.time_offset < nb.time_offset ? -1 : 1;
      }
      if (na.space_offsets != nb.space_offsets) {
        return na.space_offsets < nb.space_offsets ? -1 : 1;
      }
      return 0;
    }
    case Kind::Call:
      if (const int c = na.name.compare(nb.name); c != 0) {
        return c;
      }
      [[fallthrough]];
    case Kind::Add:
    case Kind::Mul:
    case Kind::Pow: {
      if (na.args.size() != nb.args.size()) {
        return na.args.size() < nb.args.size() ? -1 : 1;
      }
      for (std::size_t i = 0; i < na.args.size(); ++i) {
        const int c = compare(na.args[i], nb.args[i]);
        if (c != 0) {
          return c;
        }
      }
      return 0;
    }
  }
  return 0;
}

bool operator==(const Ex& a, const Ex& b) {
  if (a.ptr() == b.ptr()) {
    return true;
  }
  if (a.hash() != b.hash()) {
    return false;
  }
  return compare(a, b) == 0;
}

// --- Leaf factories ---------------------------------------------------------

Ex number(double v) {
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::Number;
  n->value = v;
  return Ex(finalize(std::move(n)));
}

Ex symbol(const std::string& name) {
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::Symbol;
  n->name = name;
  return Ex(finalize(std::move(n)));
}

Ex access(const FieldId& field, std::vector<int> space_offsets) {
  assert(!field.time_varying);
  assert(static_cast<int>(space_offsets.size()) == field.ndims);
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::FieldAccess;
  n->field = field;
  n->time_offset = 0;
  n->space_offsets = std::move(space_offsets);
  return Ex(finalize(std::move(n)));
}

Ex access(const FieldId& field, int time_offset,
          std::vector<int> space_offsets) {
  assert(field.time_varying);
  assert(static_cast<int>(space_offsets.size()) == field.ndims);
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::FieldAccess;
  n->field = field;
  n->time_offset = time_offset;
  n->space_offsets = std::move(space_offsets);
  return Ex(finalize(std::move(n)));
}

// --- Canonicalizing constructors ---------------------------------------------

namespace {

struct ExLess {
  bool operator()(const Ex& a, const Ex& b) const { return compare(a, b) < 0; }
};

// Split a term into (numeric coefficient, non-numeric remainder). Used by
// make_add to collect like terms: 3*x and 5*x share the remainder x.
std::pair<double, Ex> split_coefficient(const Ex& term) {
  if (term.kind() == Kind::Number) {
    return {term.number(), number(1.0)};
  }
  if (term.kind() == Kind::Mul) {
    const auto& args = term.node().args;
    if (!args.empty() && args.front().kind() == Kind::Number) {
      std::vector<Ex> rest(args.begin() + 1, args.end());
      if (rest.size() == 1) {
        return {args.front().number(), rest.front()};
      }
      // Rebuild without re-sorting: the tail of a canonical Mul is already
      // canonical.
      auto n = std::make_unique<ExprNode>();
      n->kind = Kind::Mul;
      n->args = std::move(rest);
      return {args.front().number(), Ex(finalize(std::move(n)))};
    }
  }
  return {1.0, term};
}

// Split a factor into (base, numeric exponent) for power collection in
// make_mul; non-numeric exponents are treated as opaque bases.
std::pair<Ex, double> split_power(const Ex& factor) {
  if (factor.kind() == Kind::Pow) {
    const auto& args = factor.node().args;
    if (args[1].kind() == Kind::Number) {
      return {args[0], args[1].number()};
    }
  }
  return {factor, 1.0};
}

}  // namespace

Ex make_add(std::vector<Ex> terms) {
  // Flatten nested Adds.
  std::vector<Ex> flat;
  flat.reserve(terms.size());
  for (Ex& t : terms) {
    if (t.kind() == Kind::Add) {
      const auto& args = t.node().args;
      flat.insert(flat.end(), args.begin(), args.end());
    } else {
      flat.push_back(std::move(t));
    }
  }

  // Collect like terms by remainder; fold numbers into `constant`.
  double constant = 0.0;
  std::map<Ex, double, ExLess> collected;
  for (const Ex& t : flat) {
    const auto [coeff, rest] = split_coefficient(t);
    if (rest.is_one()) {
      constant += coeff;
    } else {
      collected[rest] += coeff;
    }
  }

  std::vector<Ex> out;
  out.reserve(collected.size() + 1);
  if (constant != 0.0) {
    out.push_back(number(constant));
  }
  for (const auto& [rest, coeff] : collected) {
    if (coeff == 0.0) {
      continue;
    }
    if (coeff == 1.0) {
      out.push_back(rest);
    } else {
      out.push_back(make_mul({number(coeff), rest}));
    }
  }

  if (out.empty()) {
    return number(0.0);
  }
  if (out.size() == 1) {
    return out.front();
  }
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::Add;
  n->args = std::move(out);
  return Ex(finalize(std::move(n)));
}

Ex make_mul(std::vector<Ex> factors) {
  std::vector<Ex> flat;
  flat.reserve(factors.size());
  for (Ex& f : factors) {
    if (f.kind() == Kind::Mul) {
      const auto& args = f.node().args;
      flat.insert(flat.end(), args.begin(), args.end());
    } else {
      flat.push_back(std::move(f));
    }
  }

  double coefficient = 1.0;
  std::map<Ex, double, ExLess> powers;  // base -> accumulated exponent
  for (const Ex& f : flat) {
    if (f.kind() == Kind::Number) {
      coefficient *= f.number();
      continue;
    }
    const auto [base, exp] = split_power(f);
    powers[base] += exp;
  }

  if (coefficient == 0.0) {
    return number(0.0);
  }

  std::vector<Ex> out;
  out.reserve(powers.size() + 1);
  if (coefficient != 1.0) {
    out.push_back(number(coefficient));
  }
  for (const auto& [base, exp] : powers) {
    if (exp == 0.0) {
      continue;
    }
    if (exp == 1.0) {
      out.push_back(base);
    } else {
      out.push_back(make_pow(base, number(exp)));
    }
  }

  if (out.empty()) {
    return number(1.0);
  }
  if (out.size() == 1) {
    return out.front();
  }
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::Mul;
  n->args = std::move(out);
  return Ex(finalize(std::move(n)));
}

Ex make_pow(const Ex& base, const Ex& exponent) {
  if (exponent.is_zero()) {
    return number(1.0);
  }
  if (exponent.is_one()) {
    return base;
  }
  if (base.is_one()) {
    return number(1.0);
  }
  if (base.is_zero()) {
    if (exponent.is_number() && exponent.number() < 0.0) {
      throw std::domain_error("pow: zero base with negative exponent");
    }
    return number(0.0);
  }
  if (base.is_number() && exponent.is_number()) {
    return number(std::pow(base.number(), exponent.number()));
  }
  // (b^m)^n -> b^(m*n) when n is an integer literal (always safe then).
  if (base.kind() == Kind::Pow && exponent.is_number() &&
      exponent.number() == std::floor(exponent.number())) {
    const Ex inner_base = base.node().args[0];
    const Ex inner_exp = base.node().args[1];
    return make_pow(inner_base, inner_exp * exponent);
  }
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::Pow;
  n->args = {base, exponent};
  return Ex(finalize(std::move(n)));
}

Ex call(const std::string& fn, const Ex& arg) {
  if (arg.is_number()) {
    const double v = arg.number();
    if (fn == "sqrt" && v >= 0.0) {
      return number(std::sqrt(v));
    }
    if (fn == "sin") {
      return number(std::sin(v));
    }
    if (fn == "cos") {
      return number(std::cos(v));
    }
    if (fn == "exp") {
      return number(std::exp(v));
    }
    if (fn == "fabs") {
      return number(std::fabs(v));
    }
  }
  auto n = std::make_unique<ExprNode>();
  n->kind = Kind::Call;
  n->name = fn;
  n->args = {arg};
  return Ex(finalize(std::move(n)));
}

Ex rebuild(const Ex& node, std::vector<Ex> new_args) {
  switch (node.kind()) {
    case Kind::Add:
      return make_add(std::move(new_args));
    case Kind::Mul:
      return make_mul(std::move(new_args));
    case Kind::Pow:
      assert(new_args.size() == 2);
      return make_pow(new_args[0], new_args[1]);
    case Kind::Call:
      assert(new_args.size() == 1);
      return call(node.node().name, new_args[0]);
    default:
      return node;
  }
}

// --- Operators ----------------------------------------------------------------

Ex operator+(const Ex& a, const Ex& b) { return make_add({a, b}); }
Ex operator-(const Ex& a, const Ex& b) {
  return make_add({a, make_mul({number(-1.0), b})});
}
Ex operator*(const Ex& a, const Ex& b) { return make_mul({a, b}); }
Ex operator/(const Ex& a, const Ex& b) {
  if (b.is_zero()) {
    throw std::domain_error("division by symbolic zero");
  }
  return make_mul({a, make_pow(b, number(-1.0))});
}
Ex operator-(const Ex& a) { return make_mul({number(-1.0), a}); }
Ex pow(const Ex& base, const Ex& exponent) { return make_pow(base, exponent); }
Ex pow(const Ex& base, int exponent) {
  return make_pow(base, number(exponent));
}

Ex& operator+=(Ex& a, const Ex& b) { return a = a + b; }
Ex& operator-=(Ex& a, const Ex& b) { return a = a - b; }
Ex& operator*=(Ex& a, const Ex& b) { return a = a * b; }
Ex& operator/=(Ex& a, const Ex& b) { return a = a / b; }

// --- Printing -------------------------------------------------------------------

namespace {

void print(std::ostringstream& os, const Ex& e, int parent_prec);

// Precedence: Add=1, Mul=2, Pow=3, leaves=4.
int precedence(Kind k) {
  switch (k) {
    case Kind::Add:
      return 1;
    case Kind::Mul:
      return 2;
    case Kind::Pow:
      return 3;
    default:
      return 4;
  }
}

void print_number(std::ostringstream& os, double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

void print(std::ostringstream& os, const Ex& e, int parent_prec) {
  const ExprNode& n = e.node();
  const int prec = precedence(n.kind);
  const bool parens = prec < parent_prec;
  if (parens) {
    os << '(';
  }
  switch (n.kind) {
    case Kind::Number:
      if (n.value < 0.0) {
        os << '(';
        print_number(os, n.value);
        os << ')';
      } else {
        print_number(os, n.value);
      }
      break;
    case Kind::Symbol:
      os << n.name;
      break;
    case Kind::FieldAccess: {
      os << n.field.name << '[';
      if (n.field.time_varying) {
        os << 't';
        if (n.time_offset > 0) {
          os << '+' << n.time_offset;
        } else if (n.time_offset < 0) {
          os << n.time_offset;
        }
        os << ", ";
      }
      static constexpr const char* kDimNames[] = {"x", "y", "z", "w"};
      for (int d = 0; d < n.field.ndims; ++d) {
        if (d > 0) {
          os << ", ";
        }
        os << (d < 4 ? kDimNames[d] : "d");
        const int o = n.space_offsets[static_cast<std::size_t>(d)];
        if (o > 0) {
          os << '+' << o;
        } else if (o < 0) {
          os << o;
        }
      }
      os << ']';
      break;
    }
    case Kind::Add:
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        if (i > 0) {
          os << " + ";
        }
        print(os, n.args[i], prec);
      }
      break;
    case Kind::Mul:
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        if (i > 0) {
          os << '*';
        }
        print(os, n.args[i], prec + 1);
      }
      break;
    case Kind::Pow:
      print(os, n.args[0], prec + 1);
      os << "**";
      print(os, n.args[1], prec + 1);
      break;
    case Kind::Call:
      os << n.name << '(';
      print(os, n.args[0], 0);
      os << ')';
      break;
  }
  if (parens) {
    os << ')';
  }
}

}  // namespace

std::string Ex::to_string() const {
  std::ostringstream os;
  print(os, *this, 0);
  return os.str();
}

}  // namespace jitfd::sym
