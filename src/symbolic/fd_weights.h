// Finite-difference weight generation (Fornberg's algorithm).
//
// Given arbitrary node positions and an evaluation point, computes the
// weights of the interpolating-polynomial derivative approximation. The
// DSL layer uses this to expand u.dx, u.dx2, u.laplace, and the staggered
// derivatives of the elastic/viscoelastic propagators into weighted sums
// of shifted field accesses.
#pragma once

#include <span>
#include <vector>

namespace jitfd::sym {

/// Fornberg weights for the `deriv_order`-th derivative at `x0` from
/// samples at `nodes` (all positions in units of the grid spacing).
/// Requires nodes.size() > deriv_order; nodes must be distinct.
std::vector<double> fornberg_weights(int deriv_order, double x0,
                                     std::span<const double> nodes);

/// A one-dimensional stencil: integer grid offsets plus their weights
/// (weights exclude the 1/h^m spacing factor, which the caller applies
/// symbolically).
struct Stencil1D {
  std::vector<int> offsets;
  std::vector<double> weights;
};

/// Central stencil of formal accuracy `space_order` for the
/// `deriv_order`-th derivative (deriv_order in {1, 2}), evaluated at the
/// node itself: offsets -r..r with r = space_order/2.
/// `space_order` must be even and >= 2.
Stencil1D central_stencil(int deriv_order, int space_order);

/// Staggered first-derivative stencil of accuracy `space_order`:
/// approximates d/dx at the point lying half a cell to the given side of
/// the stored samples. With side=+1 the samples live at offsets
/// {-r+1, ..., r} and the derivative is taken at +1/2 relative to offset 0
/// (i.e. nodes k sit at positions k - 1/2 relative to the evaluation
/// point); side=-1 mirrors this. Used by the staggered-grid elastic and
/// viscoelastic propagators.
Stencil1D staggered_stencil(int space_order, int side);

}  // namespace jitfd::sym
