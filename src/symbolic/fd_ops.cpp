#include "symbolic/fd_ops.h"

#include <stdexcept>

#include "symbolic/fd_weights.h"

namespace jitfd::sym {

Ex shift_space(const Ex& e, int dim, int k) {
  if (k == 0) {
    return e;
  }
  const ExprNode& n = e.node();
  if (n.kind == Kind::FieldAccess) {
    if (dim >= n.field.ndims) {
      throw std::out_of_range("shift_space: dimension out of range");
    }
    std::vector<int> offsets = n.space_offsets;
    offsets[static_cast<std::size_t>(dim)] += k;
    return n.field.time_varying
               ? access(n.field, n.time_offset, std::move(offsets))
               : access(n.field, std::move(offsets));
  }
  if (n.args.empty()) {
    return e;
  }
  std::vector<Ex> args;
  args.reserve(n.args.size());
  for (const Ex& a : n.args) {
    args.push_back(shift_space(a, dim, k));
  }
  return rebuild(e, std::move(args));
}

Ex spacing_symbol(int dim) {
  static constexpr const char* kNames[] = {"h_x", "h_y", "h_z"};
  if (dim < 0 || dim > 2) {
    throw std::out_of_range("spacing_symbol: dimension out of range");
  }
  return symbol(kNames[dim]);
}

namespace {

Ex apply_stencil(const Ex& e, int dim, const Stencil1D& st, int deriv_order) {
  std::vector<Ex> terms;
  terms.reserve(st.offsets.size());
  for (std::size_t i = 0; i < st.offsets.size(); ++i) {
    if (st.weights[i] == 0.0) {
      continue;
    }
    terms.push_back(number(st.weights[i]) * shift_space(e, dim, st.offsets[i]));
  }
  return make_add(std::move(terms)) *
         make_pow(spacing_symbol(dim), number(-deriv_order));
}

}  // namespace

Ex diff(const Ex& e, int dim, int deriv_order, int space_order) {
  return apply_stencil(e, dim, central_stencil(deriv_order, space_order),
                       deriv_order);
}

Ex diff_stag(const Ex& e, int dim, int space_order, int side) {
  return apply_stencil(e, dim, staggered_stencil(space_order, side), 1);
}

}  // namespace jitfd::sym
