#include "symbolic/fd_weights.h"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace jitfd::sym {

std::vector<double> fornberg_weights(int deriv_order, double x0,
                                     std::span<const double> nodes) {
  // B. Fornberg, "Generation of finite difference formulas on arbitrarily
  // spaced grids", Math. Comp. 51 (1988). Variable names follow the paper.
  const int m = deriv_order;
  const int n = static_cast<int>(nodes.size()) - 1;
  if (m < 0 || n < m) {
    throw std::invalid_argument("fornberg_weights: need more nodes than m");
  }

  // delta[k][j] = weight of node j for the k-th derivative, built
  // incrementally over nodes 0..n.
  std::vector<std::vector<double>> delta(
      static_cast<std::size_t>(m + 1),
      std::vector<double>(static_cast<std::size_t>(n + 1), 0.0));
  delta[0][0] = 1.0;
  double c1 = 1.0;
  for (int i = 1; i <= n; ++i) {
    double c2 = 1.0;
    const double xi = nodes[static_cast<std::size_t>(i)];
    const int mn = std::min(i, m);
    for (int j = 0; j < i; ++j) {
      const double xj = nodes[static_cast<std::size_t>(j)];
      const double c3 = xi - xj;
      if (c3 == 0.0) {
        throw std::invalid_argument("fornberg_weights: duplicate nodes");
      }
      c2 *= c3;
      if (j == i - 1) {
        for (int k = mn; k >= 1; --k) {
          delta[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] =
              c1 *
              (k * delta[static_cast<std::size_t>(k - 1)]
                        [static_cast<std::size_t>(i - 1)] -
               (nodes[static_cast<std::size_t>(i - 1)] - x0) *
                   delta[static_cast<std::size_t>(k)]
                        [static_cast<std::size_t>(i - 1)]) /
              c2;
        }
        delta[0][static_cast<std::size_t>(i)] =
            -c1 * (nodes[static_cast<std::size_t>(i - 1)] - x0) *
            delta[0][static_cast<std::size_t>(i - 1)] / c2;
      }
      for (int k = mn; k >= 1; --k) {
        delta[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] =
            ((xi - x0) * delta[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(j)] -
             k * delta[static_cast<std::size_t>(k - 1)]
                      [static_cast<std::size_t>(j)]) /
            c3;
      }
      delta[0][static_cast<std::size_t>(j)] =
          (xi - x0) * delta[0][static_cast<std::size_t>(j)] / c3;
    }
    c1 = c2;
  }
  return delta[static_cast<std::size_t>(m)];
}

Stencil1D central_stencil(int deriv_order, int space_order) {
  if (space_order < 2 || space_order % 2 != 0) {
    throw std::invalid_argument("central_stencil: space_order must be even");
  }
  if (deriv_order != 1 && deriv_order != 2) {
    throw std::invalid_argument("central_stencil: deriv_order must be 1 or 2");
  }
  const int r = space_order / 2;
  Stencil1D st;
  std::vector<double> nodes;
  for (int k = -r; k <= r; ++k) {
    st.offsets.push_back(k);
    nodes.push_back(static_cast<double>(k));
  }
  st.weights = fornberg_weights(deriv_order, 0.0, nodes);
  // A central first derivative has an exactly-zero centre weight; snap the
  // rounding residue so downstream simplification drops the term.
  if (deriv_order == 1) {
    st.weights[static_cast<std::size_t>(r)] = 0.0;
  }
  return st;
}

Stencil1D staggered_stencil(int space_order, int side) {
  if (space_order < 2 || space_order % 2 != 0) {
    throw std::invalid_argument("staggered_stencil: space_order must be even");
  }
  if (side != 1 && side != -1) {
    throw std::invalid_argument("staggered_stencil: side must be +1 or -1");
  }
  const int r = space_order / 2;
  Stencil1D st;
  std::vector<double> nodes;
  if (side > 0) {
    // Samples at offsets -r+1..r, derivative evaluated at +1/2.
    for (int k = -r + 1; k <= r; ++k) {
      st.offsets.push_back(k);
      nodes.push_back(static_cast<double>(k) - 0.5);
    }
  } else {
    // Samples at offsets -r..r-1, derivative evaluated at -1/2.
    for (int k = -r; k <= r - 1; ++k) {
      st.offsets.push_back(k);
      nodes.push_back(static_cast<double>(k) + 0.5);
    }
  }
  st.weights = fornberg_weights(1, 0.0, nodes);
  return st;
}

}  // namespace jitfd::sym
