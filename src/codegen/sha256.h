// Minimal SHA-256 (FIPS 180-4) for content-addressing JIT-compiled
// kernels. Not a general-purpose crypto library: one-shot hashing of
// in-memory strings only, which is all the compile cache needs.
#pragma once

#include <string>
#include <string_view>

namespace jitfd::codegen {

/// Hex digest (64 lowercase characters) of `data`.
std::string sha256_hex(std::string_view data);

}  // namespace jitfd::codegen
