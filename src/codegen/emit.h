// C code generation from the lowered IET (paper Appendix B / Listing 11).
//
// The emitted kernel is plain C (compiled by the JIT with the system C
// compiler) with OpenMP pragmas for the CPU path or OpenACC pragmas for
// the GPU path. Problem geometry (padded shapes, halo offsets, block
// sizes) is baked into the source — the kernel is JIT-generated per
// Operator instance, exactly as Devito does — while field pointers,
// scalar symbol values and the time range arrive as runtime arguments.
//
// Communication and sparse operations are dispatched through a function
// table (`jitfd_halo_ops`) so the generated code stays freestanding; the
// table is implemented by the runtime layer over HaloExchange/SparseOp.
#pragma once

#include <string>

#include "grid/grid.h"
#include "ir/eq.h"
#include "ir/iet.h"
#include "ir/lower.h"

namespace jitfd::codegen {

/// The generated kernel's C signature (kept in one place; the JIT casts
/// the dlsym'd pointer to this):
///   int kernel(float** fields, const double* scalars,
///              long time_m, long time_M,
///              void* hctx, const jitfd_halo_ops* ops);
inline constexpr const char* kKernelSymbol = "kernel";

/// Emit the complete C translation unit for `iet`.
std::string emit_c(const ir::NodePtr& iet, const ir::LoweringInfo& info,
                   const ir::FieldTable& fields, const grid::Grid& grid,
                   const ir::CompileOptions& opts);

}  // namespace jitfd::codegen
