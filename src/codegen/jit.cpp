#include "codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "codegen/emit.h"
#include "codegen/sha256.h"
#include "core/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jitfd::codegen {

namespace fs = std::filesystem;

namespace {

std::atomic<std::uint64_t> g_cache_hits{0};
std::atomic<std::uint64_t> g_cache_misses{0};

/// Removes the per-process scratch cache at exit (persistent
/// $JITFD_CACHE_DIR caches are never cleaned automatically).
struct ScratchDir {
  fs::path path;
  ~ScratchDir() {
    if (!path.empty() && !jitfd::env::is_set("JITFD_KEEP")) {
      std::error_code ec;
      fs::remove_all(path, ec);  // Best effort; never throw in a dtor.
    }
  }
};

const fs::path& cache_dir() {
  static ScratchDir scratch;
  static const fs::path dir = [] {
    const std::string persistent =
        jitfd::env::get_string("JITFD_CACHE_DIR", "");
    if (!persistent.empty()) {
      fs::path d(persistent);
      fs::create_directories(d);
      return d;
    }
    fs::path base;
    if (const char* tmp = std::getenv("TMPDIR")) {
      base = tmp;
    } else {
      base = "/tmp";
    }
    fs::path d =
        base / ("jitfd-cache-" + std::to_string(static_cast<long>(::getpid())));
    fs::create_directories(d);
    scratch.path = d;
    return d;
  }();
  return dir;
}

std::string run_command(const std::string& cmd, int& exit_code) {
  std::string output;
  FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    exit_code = -1;
    return "popen failed";
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    output += buf;
  }
  exit_code = ::pclose(pipe);
  return output;
}

/// Write `data` to `dest` atomically (tmp + rename), so a concurrent
/// process sharing $JITFD_CACHE_DIR never observes a partial file.
void write_file_atomic(const fs::path& dest, const std::string& data) {
  fs::path tmp = dest;
  tmp += "." + std::to_string(static_cast<long>(::getpid())) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << data;
    if (!out) {
      throw std::runtime_error("jit: cannot write " + tmp.string());
    }
  }
  fs::rename(tmp, dest);
}

/// One cached compilation; compile() runs at most once per process per
/// key even when many rank threads construct identical kernels
/// concurrently.
struct CacheEntry {
  std::once_flag once;
  std::string so_path;
  double compile_seconds = 0.0;
  bool from_disk = false;
};

std::shared_ptr<CacheEntry> entry_for(const std::string& key) {
  static std::mutex mtx;
  static std::unordered_map<std::string, std::shared_ptr<CacheEntry>> table;
  const std::lock_guard<std::mutex> lock(mtx);
  auto& slot = table[key];
  if (slot == nullptr) {
    slot = std::make_shared<CacheEntry>();
  }
  return slot;
}

void compile(const std::string& source, const std::string& compiler,
             const std::string& flags, const std::string& key,
             CacheEntry& entry) {
  const fs::path so_path = cache_dir() / (key + ".so");
  entry.so_path = so_path.string();
  if (fs::exists(so_path)) {
    entry.from_disk = true;
    return;
  }

  const fs::path src_path = cache_dir() / (key + ".c");
  write_file_atomic(src_path, source);

  // Compile to a process-unique name, then publish with an atomic
  // rename; concurrent processes racing on the same key both succeed
  // and the loser's rename simply replaces an identical file.
  fs::path build_path = so_path;
  build_path += "." + std::to_string(static_cast<long>(::getpid())) + ".tmp";
  std::ostringstream cmd;
  cmd << compiler << ' ' << flags << " -o " << build_path.string() << ' '
      << src_path.string() << " -lm";

  const auto start = std::chrono::steady_clock::now();
  const jitfd::obs::Span span("jit.cc", jitfd::obs::Cat::Jit,
                              static_cast<std::int64_t>(source.size()));
  int rc = 0;
  const std::string diag = run_command(cmd.str(), rc);
  entry.compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (rc != 0) {
    std::error_code ec;
    fs::remove(build_path, ec);
    throw std::runtime_error("jit: compilation failed:\n" + cmd.str() + "\n" +
                             diag);
  }
  fs::rename(build_path, so_path);
}

}  // namespace

JitKernel::JitKernel(const std::string& source, bool openmp) {
  jitfd::obs::Span build_span("jit.build", jitfd::obs::Cat::Jit,
                              static_cast<std::int64_t>(source.size()));
  const std::string compiler = jitfd::env::get_string("JITFD_CC", "cc");
  std::string flags = "-O3 -march=native -shared -fPIC";
  if (openmp) {
    flags += " -fopenmp";
  }
  const std::string key =
      sha256_hex(compiler + '\n' + flags + '\n' + source);

  auto entry = entry_for(key);
  bool compiled_now = false;
  std::call_once(entry->once, [&] {
    compiled_now = true;
    compile(source, compiler, flags, key, *entry);
  });

  cache_hit_ = !compiled_now || entry->from_disk;
  build_span.set_aux(cache_hit_ ? 1 : 0);
  static jitfd::obs::metrics::Counter& builds =
      jitfd::obs::metrics::counter("jit.builds");
  builds.add(1);
  if (cache_hit_) {
    g_cache_hits.fetch_add(1, std::memory_order_relaxed);
    static jitfd::obs::metrics::Counter& hits =
        jitfd::obs::metrics::counter("jit.cache_hits");
    hits.add(1);
  } else {
    g_cache_misses.fetch_add(1, std::memory_order_relaxed);
    compile_seconds_ = entry->compile_seconds;
    static jitfd::obs::metrics::Histogram& hist =
        jitfd::obs::metrics::histogram("jit.build_seconds");
    hist.observe(compile_seconds_);
  }

  handle_ = ::dlopen(entry->so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    throw std::runtime_error(std::string("jit: dlopen failed: ") +
                             ::dlerror());
  }
  fn_ = reinterpret_cast<KernelFn>(::dlsym(handle_, kKernelSymbol));
  if (fn_ == nullptr) {
    throw std::runtime_error("jit: kernel symbol not found");
  }
}

JitKernel::~JitKernel() {
  if (handle_ != nullptr) {
    ::dlclose(handle_);
  }
}

JitKernel::JitKernel(JitKernel&& other) noexcept
    : handle_(other.handle_),
      fn_(other.fn_),
      compile_seconds_(other.compile_seconds_),
      cache_hit_(other.cache_hit_) {
  other.handle_ = nullptr;
  other.fn_ = nullptr;
}

JitKernel& JitKernel::operator=(JitKernel&& other) noexcept {
  if (this != &other) {
    this->~JitKernel();
    new (this) JitKernel(std::move(other));
  }
  return *this;
}

std::uint64_t JitKernel::cache_hits() {
  return g_cache_hits.load(std::memory_order_relaxed);
}

std::uint64_t JitKernel::cache_misses() {
  return g_cache_misses.load(std::memory_order_relaxed);
}

int JitKernel::run(float** fields, const double* scalars, std::int64_t time_m,
                   std::int64_t time_M, void* hctx,
                   const JitHaloOps* ops) const {
  return fn_(fields, scalars, static_cast<long>(time_m),
             static_cast<long>(time_M), hctx, ops);
}

}  // namespace jitfd::codegen
