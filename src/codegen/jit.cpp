#include "codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "codegen/emit.h"

namespace jitfd::codegen {

namespace {

std::string unique_workdir() {
  static std::atomic<int> counter{0};
  std::ostringstream os;
  const char* base = std::getenv("TMPDIR");
  os << (base != nullptr ? base : "/tmp") << "/jitfd-" << ::getpid() << '-'
     << counter.fetch_add(1);
  return os.str();
}

std::string run_command(const std::string& cmd, int& exit_code) {
  std::string output;
  FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    exit_code = -1;
    return "popen failed";
  }
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    output += buf;
  }
  exit_code = ::pclose(pipe);
  return output;
}

}  // namespace

JitKernel::JitKernel(const std::string& source, bool openmp) {
  workdir_ = unique_workdir();
  int rc = 0;
  run_command("mkdir -p " + workdir_, rc);
  const std::string src_path = workdir_ + "/kernel.c";
  const std::string so_path = workdir_ + "/kernel.so";
  {
    std::ofstream out(src_path);
    out << source;
  }

  const char* cc = std::getenv("JITFD_CC");
  std::ostringstream cmd;
  cmd << (cc != nullptr ? cc : "cc") << " -O3 -march=native -shared -fPIC ";
  if (openmp) {
    cmd << "-fopenmp ";
  }
  cmd << "-o " << so_path << ' ' << src_path << " -lm";

  const auto start = std::chrono::steady_clock::now();
  const std::string diag = run_command(cmd.str(), rc);
  compile_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (rc != 0) {
    throw std::runtime_error("jit: compilation failed:\n" + cmd.str() + "\n" +
                             diag);
  }

  handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle_ == nullptr) {
    throw std::runtime_error(std::string("jit: dlopen failed: ") +
                             ::dlerror());
  }
  fn_ = reinterpret_cast<KernelFn>(::dlsym(handle_, kKernelSymbol));
  if (fn_ == nullptr) {
    throw std::runtime_error("jit: kernel symbol not found");
  }
}

JitKernel::~JitKernel() {
  if (handle_ != nullptr) {
    ::dlclose(handle_);
  }
  if (!workdir_.empty() && std::getenv("JITFD_KEEP") == nullptr) {
    int rc = 0;
    run_command("rm -rf " + workdir_, rc);
  }
}

JitKernel::JitKernel(JitKernel&& other) noexcept
    : handle_(other.handle_),
      fn_(other.fn_),
      workdir_(std::move(other.workdir_)),
      compile_seconds_(other.compile_seconds_) {
  other.handle_ = nullptr;
  other.fn_ = nullptr;
  other.workdir_.clear();
}

JitKernel& JitKernel::operator=(JitKernel&& other) noexcept {
  if (this != &other) {
    this->~JitKernel();
    new (this) JitKernel(std::move(other));
  }
  return *this;
}

int JitKernel::run(float** fields, const double* scalars, std::int64_t time_m,
                   std::int64_t time_M, void* hctx,
                   const JitHaloOps* ops) const {
  return fn_(fields, scalars, static_cast<long>(time_m),
             static_cast<long>(time_M), hctx, ops);
}

}  // namespace jitfd::codegen
