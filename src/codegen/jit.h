// JIT compilation of generated C: write source to a cache directory,
// invoke the system C compiler to build a shared object, dlopen it and
// resolve the kernel entry point — the same architecture Devito uses.
//
// Compiled objects are content-addressed by the SHA-256 of (compiler,
// flags, source), so recompiling an identical kernel — the autotuner
// rebuilding its winning mode, every rank of a symmetric decomposition,
// or a rerun of the same script — reuses the cached .so instead of
// paying the external-compiler round trip. The cache lives in
// $JITFD_CACHE_DIR when set (persistent across processes); otherwise in
// a per-process scratch directory removed at exit (set JITFD_KEEP=1 to
// keep it for inspection).
#pragma once

#include <cstdint>
#include <string>

namespace jitfd::codegen {

/// Function-pointer table handed to the generated kernel for
/// communication and sparse-operation callbacks. Layout must match the
/// `jitfd_halo_ops` struct emitted into every kernel.
struct JitHaloOps {
  void (*update)(void* ctx, int spot, long time) = nullptr;
  void (*start)(void* ctx, int spot, long time) = nullptr;
  void (*wait)(void* ctx, int spot) = nullptr;
  void (*progress)(void* ctx) = nullptr;
  void (*sparse)(void* ctx, int sparse_id, long time) = nullptr;
  /// Observability hooks (null when health monitoring is off): `step` is
  /// called at the top of every time step; `health` receives the
  /// rank-local reductions of one field's owned interior.
  void (*step)(void* ctx, long time) = nullptr;
  void (*health)(void* ctx, int field, long time, long nan_count,
                 long inf_count, double min, double max, double l2sq) =
      nullptr;
};

/// A compiled-and-loaded kernel. Movable, not copyable; unloads the
/// shared object on destruction (the cached .so stays on disk).
class JitKernel {
 public:
  /// Compile `source` (a C translation unit), or reuse a cached build of
  /// the identical (compiler, flags, source) triple. `openmp` adds
  /// -fopenmp. Throws std::runtime_error with the compiler diagnostics
  /// on failure.
  explicit JitKernel(const std::string& source, bool openmp = true);
  ~JitKernel();

  JitKernel(JitKernel&& other) noexcept;
  JitKernel& operator=(JitKernel&& other) noexcept;
  JitKernel(const JitKernel&) = delete;
  JitKernel& operator=(const JitKernel&) = delete;

  /// Invoke the kernel.
  int run(float** fields, const double* scalars, std::int64_t time_m,
          std::int64_t time_M, void* hctx, const JitHaloOps* ops) const;

  /// Wall time spent in the external compiler for THIS construction;
  /// 0.0 when the kernel came from the cache (for bench_compiler).
  double compile_seconds() const { return compile_seconds_; }

  /// Whether this construction was served from the compile cache
  /// (in-memory or on-disk) without invoking the compiler.
  bool cache_hit() const { return cache_hit_; }

  /// Process-wide cache counters (constructions served with/without an
  /// external compiler invocation).
  static std::uint64_t cache_hits();
  static std::uint64_t cache_misses();

 private:
  using KernelFn = int (*)(float**, const double*, long, long, void*,
                           const JitHaloOps*);
  void* handle_ = nullptr;
  KernelFn fn_ = nullptr;
  double compile_seconds_ = 0.0;
  bool cache_hit_ = false;
};

}  // namespace jitfd::codegen
