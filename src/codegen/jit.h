// JIT compilation of generated C: write source to a scratch directory,
// invoke the system C compiler to build a shared object, dlopen it and
// resolve the kernel entry point — the same architecture Devito uses.
#pragma once

#include <cstdint>
#include <string>

namespace jitfd::codegen {

/// Function-pointer table handed to the generated kernel for
/// communication and sparse-operation callbacks. Layout must match the
/// `jitfd_halo_ops` struct emitted into every kernel.
struct JitHaloOps {
  void (*update)(void* ctx, int spot, long time) = nullptr;
  void (*start)(void* ctx, int spot, long time) = nullptr;
  void (*wait)(void* ctx, int spot) = nullptr;
  void (*progress)(void* ctx) = nullptr;
  void (*sparse)(void* ctx, int sparse_id, long time) = nullptr;
};

/// A compiled-and-loaded kernel. Movable, not copyable; unloads the
/// shared object on destruction. Set JITFD_KEEP=1 in the environment to
/// keep the scratch directory for inspection.
class JitKernel {
 public:
  /// Compile `source` (a C translation unit). `openmp` adds -fopenmp.
  /// Throws std::runtime_error with the compiler diagnostics on failure.
  explicit JitKernel(const std::string& source, bool openmp = true);
  ~JitKernel();

  JitKernel(JitKernel&& other) noexcept;
  JitKernel& operator=(JitKernel&& other) noexcept;
  JitKernel(const JitKernel&) = delete;
  JitKernel& operator=(const JitKernel&) = delete;

  /// Invoke the kernel.
  int run(float** fields, const double* scalars, std::int64_t time_m,
          std::int64_t time_M, void* hctx, const JitHaloOps* ops) const;

  /// Wall time spent in the external compiler (for bench_compiler).
  double compile_seconds() const { return compile_seconds_; }

 private:
  using KernelFn = int (*)(float**, const double*, long, long, void*,
                           const JitHaloOps*);
  void* handle_ = nullptr;
  KernelFn fn_ = nullptr;
  std::string workdir_;
  double compile_seconds_ = 0.0;
};

}  // namespace jitfd::codegen
