#include "codegen/emit.h"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "symbolic/manip.h"

namespace jitfd::codegen {

namespace {

const char* dim_var(int d) {
  static constexpr const char* kNames[] = {"x", "y", "z"};
  return kNames[d];
}

std::string float_literal(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e9) {
    os << static_cast<long long>(v) << ".0F";
  } else {
    os.precision(9);
    os << v << "F";
  }
  return os.str();
}

/// Time-buffer variable name for a field with `nb` buffers at relative
/// offset `k` (e.g. t3_p1 = "(time + 1) % 3"); saved (non-cycling)
/// fields use the absolute index ts_p1 = "time + 1".
std::string time_var(int nb, int k, bool saved) {
  std::ostringstream os;
  if (saved) {
    os << "ts";
  } else {
    os << 't' << nb;
  }
  os << '_' << (k < 0 ? 'm' : 'p') << std::abs(k);
  return os.str();
}

class Emitter {
 public:
  Emitter(const ir::LoweringInfo& info, const ir::FieldTable& fields,
          const grid::Grid& grid, const ir::CompileOptions& opts)
      : info_(&info), fields_(&fields), grid_(&grid), opts_(&opts) {}

  std::string run(const ir::NodePtr& iet);

 private:
  // --- Expression printing -------------------------------------------------

  std::string field_access(const sym::ExprNode& n) const {
    const grid::Function& fn = fields_->at(n.field.id);
    std::ostringstream os;
    os << n.field.name;
    if (n.field.time_varying) {
      os << '[' << time_var(fn.time_buffers(), n.time_offset, fn.saved())
         << ']';
    }
    for (int d = 0; d < n.field.ndims; ++d) {
      const int shift =
          n.space_offsets[static_cast<std::size_t>(d)] + fn.lpad();
      os << '[' << dim_var(d);
      if (shift > 0) {
        os << " + " << shift;
      } else if (shift < 0) {
        os << " - " << -shift;
      }
      os << ']';
    }
    return os.str();
  }

  // Precedence: Add=1, Mul=2, unary/pow-as-call=3, leaf=4.
  std::string expr(const sym::Ex& e, int parent_prec) const {
    const sym::ExprNode& n = e.node();
    switch (n.kind) {
      case sym::Kind::Number:
        return n.value < 0 ? "(" + float_literal(n.value) + ")"
                           : float_literal(n.value);
      case sym::Kind::Symbol:
        return n.name;
      case sym::Kind::FieldAccess:
        return field_access(n);
      case sym::Kind::Add: {
        std::ostringstream os;
        const bool parens = parent_prec > 1;
        if (parens) {
          os << '(';
        }
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i > 0) {
            os << " + ";
          }
          os << expr(n.args[i], 1);
        }
        if (parens) {
          os << ')';
        }
        return os.str();
      }
      case sym::Kind::Mul: {
        std::ostringstream os;
        const bool parens = parent_prec > 2;
        if (parens) {
          os << '(';
        }
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i > 0) {
            os << '*';
          }
          os << expr(n.args[i], 3);
        }
        if (parens) {
          os << ')';
        }
        return os.str();
      }
      case sym::Kind::Pow: {
        const sym::Ex& base = n.args[0];
        const sym::Ex& e2 = n.args[1];
        if (e2.is_number()) {
          const double v = e2.number();
          if (v == std::floor(v) && std::abs(v) <= 4.0 && v != 0.0) {
            // Expand small integer powers into multiplications/divisions.
            const std::string b = expr(base, 4);
            std::ostringstream os;
            if (v < 0) {
              os << "(1.0F/";
            }
            os << '(' << b;
            for (int i = 1; i < static_cast<int>(std::abs(v)); ++i) {
              os << '*' << b;
            }
            os << ')';
            if (v < 0) {
              os << ')';
            }
            return os.str();
          }
        }
        return "powf(" + expr(base, 1) + ", " + expr(e2, 1) + ")";
      }
      case sym::Kind::Call:
        return n.name + "f(" + expr(n.args[0], 1) + ")";
    }
    return "0.0F";
  }

  // --- Statement emission ---------------------------------------------------

  void line(const std::string& s) {
    out_ << std::string(static_cast<std::size_t>(indent_) * 2, ' ') << s
         << '\n';
  }

  void emit_expression(const ir::Node& n) {
    if (n.target.kind() == sym::Kind::Symbol) {
      line("const float " + n.target.node().name + " = " +
           expr(n.value, 0) + ";");
    } else {
      line(field_access(n.target.node()) + " = " + expr(n.value, 0) + ";");
    }
  }

  void emit_halo_comm(const ir::Node& n) {
    switch (n.comm_kind) {
      case ir::HaloCommKind::Update:
        line("ops->update(hctx, " + std::to_string(n.spot_id) + ", time);");
        break;
      case ir::HaloCommKind::Start:
        line("ops->start(hctx, " + std::to_string(n.spot_id) + ", time);");
        break;
      case ir::HaloCommKind::Wait:
        line("ops->wait(hctx, " + std::to_string(n.spot_id) + ");");
        break;
    }
  }

  void emit_loop(const ir::Node& n, bool in_core) {
    const auto d = static_cast<std::size_t>(n.dim);
    const std::int64_t size = grid_->local_shape()[d];
    // Bounds are baked per rank (each rank emits its own kernel), so the
    // per-side ghost extension of communication-avoiding stepping resolves
    // here against this rank's neighbour topology.
    const std::int64_t lo =
        n.lo.resolve_lo(size, grid_->has_neighbor_low(n.dim));
    const std::int64_t hi =
        n.hi.resolve_hi(size, grid_->has_neighbor_high(n.dim));
    const std::string v = dim_var(n.dim);

    if (n.props.parallel && opts_->openmp) {
      if (opts_->lang == ir::Lang::OpenMP) {
        line(n.props.vector ? "#pragma omp parallel for simd schedule(static)"
                            : "#pragma omp parallel for schedule(static)");
      } else {
        line("#pragma acc parallel loop collapse(" +
             std::to_string(grid_->ndims()) + ") present(" + acc_present_ +
             ")");
      }
    } else if (n.props.vector && opts_->lang == ir::Lang::OpenMP) {
      line("#pragma omp simd");
    }

    const bool blocked = n.props.block > 0 && opts_->lang == ir::Lang::OpenMP;
    if (blocked) {
      const std::string bv = v + "b";
      line("for (long " + bv + " = " + std::to_string(lo) + "; " + bv +
           " < " + std::to_string(hi) + "; " + bv + " += " +
           std::to_string(n.props.block) + ")");
      line("{");
      ++indent_;
      if (in_core && opts_->mode == ir::MpiMode::Full) {
        // Prod the asynchronous progress engine once per tile block
        // (paper Section III-h: a call to MPI_Test before each new block).
        line("ops->progress(hctx);");
      }
      line("for (long " + v + " = " + bv + "; " + v + " < (" + bv + " + " +
           std::to_string(n.props.block) + " < " + std::to_string(hi) +
           " ? " + bv + " + " + std::to_string(n.props.block) + " : " +
           std::to_string(hi) + "); " + v + " += 1)");
    } else {
      line("for (long " + v + " = " + std::to_string(lo) + "; " + v + " < " +
           std::to_string(hi) + "; " + v + " += 1)");
    }
    line("{");
    ++indent_;
    for (const ir::NodePtr& child : n.body) {
      emit_node(*child, in_core);
    }
    --indent_;
    line("}");
    if (blocked) {
      --indent_;
      line("}");
    }
  }

  void emit_node(const ir::Node& n, bool in_core) {
    switch (n.type) {
      case ir::NodeType::Expression:
        emit_expression(n);
        return;
      case ir::NodeType::Iteration:
        emit_loop(n, in_core);
        return;
      case ir::NodeType::HaloComm:
        emit_halo_comm(n);
        return;
      case ir::NodeType::SparseOp:
        line("ops->sparse(hctx, " + std::to_string(n.sparse_id) + ", time);");
        return;
      case ir::NodeType::Section: {
        line("/* section: " + n.name + " */");
        const bool core = n.name == "core";
        for (const ir::NodePtr& child : n.body) {
          emit_node(*child, core);
        }
        return;
      }
      default:
        return;  // Callable/TimeLoop handled by run(); HaloSpot never here.
    }
  }

  const ir::LoweringInfo* info_;
  const ir::FieldTable* fields_;
  const grid::Grid* grid_;
  const ir::CompileOptions* opts_;
  std::ostringstream out_;
  int indent_ = 0;
  std::string acc_present_;
};

std::string Emitter::run(const ir::NodePtr& iet) {
  out_ << "/* Generated by jitfd (" << to_string(opts_->mode)
       << " mode). Do not edit. */\n";
  out_ << "#include <math.h>\n\n";
  out_ << "typedef struct jitfd_halo_ops {\n"
          "  void (*update)(void* ctx, int spot, long time);\n"
          "  void (*start)(void* ctx, int spot, long time);\n"
          "  void (*wait)(void* ctx, int spot);\n"
          "  void (*progress)(void* ctx);\n"
          "  void (*sparse)(void* ctx, int sparse_id, long time);\n"
          "} jitfd_halo_ops;\n\n";
  out_ << "int " << kKernelSymbol
       << "(float** restrict fields, const double* restrict scalars,\n"
          "           long time_m, long time_M, void* hctx,\n"
          "           const jitfd_halo_ops* ops)\n{\n";
  indent_ = 1;

  // Field pointer casts with baked padded shapes (the VLA-pointer idiom of
  // the paper's Listing 11 context).
  {
    std::ostringstream present;
    for (std::size_t i = 0; i < info_->field_order.size(); ++i) {
      const grid::Function& fn = fields_->at(info_->field_order[i]);
      std::ostringstream decl;
      decl << "float (*restrict " << fn.name() << ")";
      std::ostringstream dims;
      const auto& ps = fn.padded_shape();
      // Leading dimension (time buffer or first space dim) is unsized.
      for (std::size_t d = 1; d < ps.size(); ++d) {
        dims << '[' << ps[d] << ']';
      }
      if (fn.field_id().time_varying) {
        // u[t][x]...[z]: all space dims sized.
        dims.str("");
        for (const std::int64_t p : ps) {
          dims << '[' << p << ']';
        }
      }
      decl << dims.str() << " = (float (*restrict)" << dims.str()
           << ") fields[" << i << "];";
      line(decl.str());
      if (i > 0) {
        present << ", ";
      }
      present << fn.name();
    }
    acc_present_ = present.str();
  }
  out_ << '\n';

  // Scalar bindings.
  for (std::size_t i = 0; i < info_->scalar_order.size(); ++i) {
    line("const float " + info_->scalar_order[i] + " = (float)scalars[" +
         std::to_string(i) + "];");
  }
  out_ << '\n';

  // Which (nb, k, saved) time indices are needed anywhere in the tree.
  std::set<std::tuple<int, int, bool>> tvars;
  const std::function<void(const ir::Node&)> scan = [&](const ir::Node& n) {
    if (n.type == ir::NodeType::Expression) {
      for (const sym::Ex& e : {n.target, n.value}) {
        sym::walk(e, [&](const sym::Ex& sub) {
          if (sub.kind() == sym::Kind::FieldAccess &&
              sub.node().field.time_varying) {
            const grid::Function& fn = fields_->at(sub.node().field.id);
            tvars.emplace(fn.time_buffers(), sub.node().time_offset,
                          fn.saved());
          }
        });
      }
    }
    for (const ir::NodePtr& c : n.body) {
      scan(*c);
    }
  };
  scan(*iet);

  // Prologue (invariants + hoisted exchanges), then the time loop.
  for (const ir::NodePtr& top : iet->body) {
    if (top->type != ir::NodeType::TimeLoop) {
      if (top->type == ir::NodeType::HaloComm) {
        // Hoisted exchange of parameter fields: time index is irrelevant.
        line("ops->update(hctx, " + std::to_string(top->spot_id) + ", 0);");
      } else {
        emit_node(*top, /*in_core=*/false);
      }
      continue;
    }
    const auto emit_tvars = [&] {
      for (const auto& [nb, k, is_saved] : tvars) {
        if (is_saved) {
          line("const long " + time_var(nb, k, true) + " = time + " +
               std::to_string(k) + ";");
        } else {
          line("const long " + time_var(nb, k, false) + " = (time + " +
               std::to_string(nb + k) + ") % " + std::to_string(nb) + ";");
        }
      }
    };
    if (top->time_stride <= 1) {
      line("for (long time = time_m; time <= time_M; time += 1)");
      line("{");
      ++indent_;
      emit_tvars();
      for (const ir::NodePtr& child : top->body) {
        emit_node(*child, /*in_core=*/false);
      }
      --indent_;
      line("}");
      continue;
    }
    // Communication-avoiding strips: one exchange per strip of
    // time_stride sub-steps; shifted sub-steps are guarded against
    // running past time_M on the final (partial) strip.
    line("for (long strip_t = time_m; strip_t <= time_M; strip_t += " +
         std::to_string(top->time_stride) + ")");
    line("{");
    ++indent_;
    for (const ir::NodePtr& child : top->body) {
      if (child->type == ir::NodeType::HaloComm) {
        line("{");
        ++indent_;
        line("const long time = strip_t;");
        emit_node(*child, /*in_core=*/false);
        --indent_;
        line("}");
        continue;
      }
      line("/* sub-step " + std::to_string(child->time_shift) + " */");
      if (child->time_shift > 0) {
        line("if (strip_t + " + std::to_string(child->time_shift) +
             " <= time_M)");
      }
      line("{");
      ++indent_;
      line(child->time_shift > 0
               ? "const long time = strip_t + " +
                     std::to_string(child->time_shift) + ";"
               : "const long time = strip_t;");
      emit_tvars();
      for (const ir::NodePtr& inner : child->body) {
        emit_node(*inner, /*in_core=*/false);
      }
      --indent_;
      line("}");
    }
    --indent_;
    line("}");
  }

  out_ << "  return 0;\n}\n";
  return out_.str();
}

}  // namespace

std::string emit_c(const ir::NodePtr& iet, const ir::LoweringInfo& info,
                   const ir::FieldTable& fields, const grid::Grid& grid,
                   const ir::CompileOptions& opts) {
  Emitter emitter(info, fields, grid, opts);
  return emitter.run(iet);
}

}  // namespace jitfd::codegen
