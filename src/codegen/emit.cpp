#include "codegen/emit.h"

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "symbolic/manip.h"

namespace jitfd::codegen {

namespace {

const char* dim_var(int d) {
  static constexpr const char* kNames[] = {"x", "y", "z"};
  return kNames[d];
}

std::string float_literal(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e9) {
    os << static_cast<long long>(v) << ".0F";
  } else {
    os.precision(9);
    os << v << "F";
  }
  return os.str();
}

/// Time-buffer variable name for a field with `nb` buffers at relative
/// offset `k` (e.g. t3_p1 = "(time + 1) % 3"); saved (non-cycling)
/// fields use the absolute index ts_p1 = "time + 1".
std::string time_var(int nb, int k, bool saved) {
  std::ostringstream os;
  if (saved) {
    os << "ts";
  } else {
    os << 't' << nb;
  }
  os << '_' << (k < 0 ? 'm' : 'p') << std::abs(k);
  return os.str();
}

class Emitter {
 public:
  Emitter(const ir::LoweringInfo& info, const ir::FieldTable& fields,
          const grid::Grid& grid, const ir::CompileOptions& opts)
      : info_(&info), fields_(&fields), grid_(&grid), opts_(&opts) {}

  std::string run(const ir::NodePtr& iet);

 private:
  // --- Expression printing -------------------------------------------------

  std::string field_access(const sym::ExprNode& n) const {
    const grid::Function& fn = fields_->at(n.field.id);
    std::ostringstream os;
    os << n.field.name;
    if (n.field.time_varying) {
      os << '[' << time_var(fn.time_buffers(), n.time_offset, fn.saved())
         << ']';
    }
    for (int d = 0; d < n.field.ndims; ++d) {
      const int shift =
          n.space_offsets[static_cast<std::size_t>(d)] + fn.lpad();
      os << '[' << dim_var(d);
      if (shift > 0) {
        os << " + " << shift;
      } else if (shift < 0) {
        os << " - " << -shift;
      }
      os << ']';
    }
    return os.str();
  }

  // Precedence: Add=1, Mul=2, unary/pow-as-call=3, leaf=4.
  std::string expr(const sym::Ex& e, int parent_prec) const {
    const sym::ExprNode& n = e.node();
    switch (n.kind) {
      case sym::Kind::Number:
        return n.value < 0 ? "(" + float_literal(n.value) + ")"
                           : float_literal(n.value);
      case sym::Kind::Symbol:
        return n.name;
      case sym::Kind::FieldAccess:
        return field_access(n);
      case sym::Kind::Add: {
        std::ostringstream os;
        const bool parens = parent_prec > 1;
        if (parens) {
          os << '(';
        }
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i > 0) {
            os << " + ";
          }
          os << expr(n.args[i], 1);
        }
        if (parens) {
          os << ')';
        }
        return os.str();
      }
      case sym::Kind::Mul: {
        std::ostringstream os;
        const bool parens = parent_prec > 2;
        if (parens) {
          os << '(';
        }
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i > 0) {
            os << '*';
          }
          os << expr(n.args[i], 3);
        }
        if (parens) {
          os << ')';
        }
        return os.str();
      }
      case sym::Kind::Pow: {
        const sym::Ex& base = n.args[0];
        const sym::Ex& e2 = n.args[1];
        if (e2.is_number()) {
          const double v = e2.number();
          if (v == std::floor(v) && std::abs(v) <= 4.0 && v != 0.0) {
            // Expand small integer powers into multiplications/divisions.
            const std::string b = expr(base, 4);
            std::ostringstream os;
            if (v < 0) {
              os << "(1.0F/";
            }
            os << '(' << b;
            for (int i = 1; i < static_cast<int>(std::abs(v)); ++i) {
              os << '*' << b;
            }
            os << ')';
            if (v < 0) {
              os << ')';
            }
            return os.str();
          }
        }
        return "powf(" + expr(base, 1) + ", " + expr(e2, 1) + ")";
      }
      case sym::Kind::Call:
        return n.name + "f(" + expr(n.args[0], 1) + ")";
    }
    return "0.0F";
  }

  // --- Statement emission ---------------------------------------------------

  void line(const std::string& s) {
    out_ << std::string(static_cast<std::size_t>(indent_) * 2, ' ') << s
         << '\n';
  }

  void emit_expression(const ir::Node& n) {
    if (n.target.kind() == sym::Kind::Symbol) {
      line("const float " + n.target.node().name + " = " +
           expr(n.value, 0) + ";");
    } else {
      line(field_access(n.target.node()) + " = " + expr(n.value, 0) + ";");
    }
  }

  void emit_halo_comm(const ir::Node& n) {
    switch (n.comm_kind) {
      case ir::HaloCommKind::Update:
        line("ops->update(hctx, " + std::to_string(n.spot_id) + ", time);");
        break;
      case ir::HaloCommKind::Start:
        line("ops->start(hctx, " + std::to_string(n.spot_id) + ", time);");
        break;
      case ir::HaloCommKind::Wait:
        line("ops->wait(hctx, " + std::to_string(n.spot_id) + ");");
        break;
    }
  }

  /// SIMD legality clauses for a vector (innermost) loop. The aligned
  /// claim is provable: every fields[i] the kernel receives is the start
  /// of a 64-byte-aligned Function allocation (grid/function.cpp). The
  /// safelen bound comes from the cluster fission rules: an equation
  /// reading its own cluster's written (field, time) at a nonzero space
  /// offset is fissioned into a separate nest, so innermost loop-carried
  /// dependences cannot normally occur — the scan below is a defensive
  /// proof, emitting safelen(min distance) if one ever appears.
  std::string simd_clauses(const ir::Node& loop) const {
    std::set<std::string> names;
    std::set<std::pair<int, int>> writes;
    std::int64_t min_dist = 0;  // 0 = unbounded (no carried dependence).
    const std::function<void(const ir::Node&)> scan =
        [&](const ir::Node& n) {
          if (n.type == ir::NodeType::Expression) {
            if (n.target.kind() == sym::Kind::FieldAccess) {
              writes.emplace(n.target.node().field.id,
                             n.target.node().time_offset);
            }
            for (const sym::Ex& e : {n.target, n.value}) {
              sym::walk(e, [&](const sym::Ex& sub) {
                if (sub.kind() == sym::Kind::FieldAccess) {
                  names.insert(sub.node().field.name);
                }
              });
            }
          }
          for (const ir::NodePtr& c : n.body) {
            scan(*c);
          }
        };
    scan(loop);
    const std::function<void(const ir::Node&)> dep_scan =
        [&](const ir::Node& n) {
          if (n.type == ir::NodeType::Expression) {
            sym::walk(n.value, [&](const sym::Ex& sub) {
              if (sub.kind() != sym::Kind::FieldAccess) {
                return;
              }
              const sym::ExprNode& a = sub.node();
              if (writes.count({a.field.id, a.time_offset}) == 0) {
                return;
              }
              const int off = a.space_offsets[static_cast<std::size_t>(
                  a.field.ndims - 1)];
              if (off != 0) {
                const std::int64_t dist = std::abs(off);
                min_dist = min_dist == 0 ? dist : std::min(min_dist, dist);
              }
            });
          }
          for (const ir::NodePtr& c : n.body) {
            dep_scan(*c);
          }
        };
    dep_scan(loop);
    std::string clauses;
    if (!names.empty()) {
      clauses += " aligned(";
      bool first = true;
      for (const std::string& name : names) {
        if (!first) {
          clauses += ',';
        }
        clauses += name;
        first = false;
      }
      clauses += ":64)";
    }
    if (min_dist > 0) {
      clauses += " safelen(" + std::to_string(min_dist) + ")";
    }
    return clauses;
  }

  void emit_loop(const ir::Node& n, bool in_core) {
    const auto d = static_cast<std::size_t>(n.dim);
    const std::int64_t size = grid_->local_shape()[d];
    // Bounds are baked per rank (each rank emits its own kernel), so the
    // per-side ghost extension of communication-avoiding stepping resolves
    // here against this rank's neighbour topology.
    const std::int64_t lo =
        n.lo.resolve_lo(size, grid_->has_neighbor_low(n.dim));
    const std::int64_t hi =
        n.hi.resolve_hi(size, grid_->has_neighbor_high(n.dim));
    const std::string v = dim_var(n.dim);

    if (n.props.parallel && opts_->openmp) {
      if (opts_->lang == ir::Lang::OpenMP) {
        line(n.props.vector ? "#pragma omp parallel for simd schedule(static)" +
                                  simd_clauses(n)
                            : "#pragma omp parallel for schedule(static)");
      } else {
        line("#pragma acc parallel loop collapse(" +
             std::to_string(grid_->ndims()) + ") present(" + acc_present_ +
             ")");
      }
    } else if (n.props.vector && opts_->lang == ir::Lang::OpenMP) {
      line("#pragma omp simd" + simd_clauses(n));
    }

    // Inside an enclosing tile loop over the same dimension, execute the
    // intersection of this loop's bounds with the active tile window
    // (widened by tile_expand for time-tiled sub-steps).
    std::string lo_s = std::to_string(lo);
    std::string hi_s = std::to_string(hi);
    const auto win = block_win_.find(n.dim);
    if (win != block_win_.end()) {
      const std::string& bv = win->second.first;
      const std::string end = bv + " + " + std::to_string(win->second.second);
      if (n.tile_expand > 0) {
        const std::string e = std::to_string(n.tile_expand);
        lo_s = "(" + bv + " - " + e + " > " + lo_s + " ? " + bv + " - " + e +
               " : " + lo_s + ")";
        hi_s = "(" + end + " + " + e + " < " + hi_s + " ? " + end + " + " +
               e + " : " + hi_s + ")";
      } else {
        // Tile loops carry the same bounds as the nest, so the window
        // start needs no lower clamp.
        lo_s = bv;
        hi_s = "(" + end + " < " + hi_s + " ? " + end + " : " + hi_s + ")";
      }
    }
    line("for (long " + v + " = " + lo_s + "; " + v + " < " + hi_s + "; " +
         v + " += 1)");
    line("{");
    ++indent_;
    for (const ir::NodePtr& child : n.body) {
      emit_node(*child, in_core);
    }
    --indent_;
    line("}");
  }

  void emit_block_loop(const ir::Node& n, bool in_core) {
    const auto d = static_cast<std::size_t>(n.dim);
    const std::int64_t size = grid_->local_shape()[d];
    const std::int64_t lo =
        n.lo.resolve_lo(size, grid_->has_neighbor_low(n.dim));
    const std::int64_t hi =
        n.hi.resolve_hi(size, grid_->has_neighbor_high(n.dim));
    const std::string bv = std::string(dim_var(n.dim)) + "b";
    if (n.props.parallel && opts_->openmp) {
      if (opts_->lang == ir::Lang::OpenMP) {
        line("#pragma omp parallel for schedule(static)");
      } else {
        line("#pragma acc parallel loop present(" + acc_present_ + ")");
      }
    }
    line("for (long " + bv + " = " + std::to_string(lo) + "; " + bv + " < " +
         std::to_string(hi) + "; " + bv + " += " + std::to_string(n.tile) +
         ")");
    line("{");
    ++indent_;
    if (in_core && opts_->mode == ir::MpiMode::Full) {
      // Prod the asynchronous progress engine once per tile block
      // (paper Section III-h: a call to MPI_Test before each new block).
      line("ops->progress(hctx);");
    }
    block_win_[n.dim] = {bv, n.tile};
    for (const ir::NodePtr& child : n.body) {
      emit_node(*child, in_core);
    }
    block_win_.erase(n.dim);
    --indent_;
    line("}");
  }

  /// In-situ numerical-health reductions (paper-style generated
  /// diagnostics): per checked field, NaN/Inf counts, finite min/max and
  /// the sum of squares over the owned interior — ghosts excluded, so
  /// stale or redundantly-computed halo points never pollute the stats.
  void emit_health_check(const ir::Node& n) {
    line("if (jitfd_health_every > 0 && (time % jitfd_health_every) == 0 && "
         "ops->health)");
    line("{");
    ++indent_;
    const int nd = grid_->ndims();
    for (const ir::HaloNeed& need : n.needs) {
      const grid::Function& fn = fields_->at(need.field_id);
      line("{");
      ++indent_;
      line("long jitfd_hc_nan = 0;");
      line("long jitfd_hc_inf = 0;");
      line("float jitfd_hc_min = INFINITY;");
      line("float jitfd_hc_max = -INFINITY;");
      line("double jitfd_hc_l2 = 0.0;");
      // Shapes are baked, so the owned-interior size is known here:
      // skip the parallel region when it is too small to amortize the
      // fork/join (the inner simd sweep still runs).
      std::int64_t interior_points = 1;
      for (int d = 0; d < nd; ++d) {
        interior_points *= grid_->local_shape()[static_cast<std::size_t>(d)];
      }
      const bool omp = opts_->openmp && opts_->lang == ir::Lang::OpenMP;
      if (omp && nd > 1 && interior_points >= 32768) {
        line("#pragma omp parallel for "
             "reduction(+:jitfd_hc_nan,jitfd_hc_inf,jitfd_hc_l2) "
             "reduction(min:jitfd_hc_min) reduction(max:jitfd_hc_max) "
             "schedule(static)");
      }
      for (int d = 0; d + 1 < nd; ++d) {
        const std::string v = dim_var(d);
        line("for (long " + v + " = 0; " + v + " < " +
             std::to_string(
                 grid_->local_shape()[static_cast<std::size_t>(d)]) +
             "; " + v + " += 1)");
        line("{");
        ++indent_;
      }
      // Innermost dimension: narrow row accumulators (int counts,
      // float min/max/l2) with an explicit simd reduction — the
      // reassociation license FP reductions need to vectorize without
      // fast-math (which would fold the NaN tests away). Row partials
      // fold into the wide accumulators, so l2 keeps double accuracy
      // across rows.
      line("int jitfd_hc_rnan = 0;");
      line("int jitfd_hc_rinf = 0;");
      line("float jitfd_hc_rmin = INFINITY;");
      line("float jitfd_hc_rmax = -INFINITY;");
      line("float jitfd_hc_rl2 = 0.0f;");
      if (omp) {
        line("#pragma omp simd "
             "reduction(+:jitfd_hc_rnan,jitfd_hc_rinf,jitfd_hc_rl2) "
             "reduction(min:jitfd_hc_rmin) reduction(max:jitfd_hc_rmax)");
      }
      {
        const std::string v = dim_var(nd - 1);
        line("for (long " + v + " = 0; " + v + " < " +
             std::to_string(
                 grid_->local_shape()[static_cast<std::size_t>(nd - 1)]) +
             "; " + v + " += 1)");
        line("{");
        ++indent_;
      }
      {
        std::ostringstream access;
        access << fn.name();
        if (fn.field_id().time_varying) {
          access << '['
                 << time_var(fn.time_buffers(), need.time_offset, fn.saved())
                 << ']';
        }
        for (int d = 0; d < nd; ++d) {
          access << '[' << dim_var(d) << " + " << fn.lpad() << ']';
        }
        line("const float jitfd_hc_v = " + access.str() + ";");
      }
      // Branchless float-native classification (v != v spots NaN,
      // v - v != 0 spots Inf among non-NaNs) so every lane blends
      // instead of branching.
      line("const int jitfd_hc_isn = (jitfd_hc_v != jitfd_hc_v);");
      line("const int jitfd_hc_isi = !jitfd_hc_isn && "
           "(jitfd_hc_v - jitfd_hc_v != 0.0f);");
      line("const int jitfd_hc_fin = !(jitfd_hc_isn || jitfd_hc_isi);");
      line("jitfd_hc_rnan += jitfd_hc_isn;");
      line("jitfd_hc_rinf += jitfd_hc_isi;");
      line("const float jitfd_hc_lo = jitfd_hc_fin ? jitfd_hc_v : "
           "INFINITY;");
      line("const float jitfd_hc_hi = jitfd_hc_fin ? jitfd_hc_v : "
           "-INFINITY;");
      line("jitfd_hc_rmin = jitfd_hc_lo < jitfd_hc_rmin ? jitfd_hc_lo : "
           "jitfd_hc_rmin;");
      line("jitfd_hc_rmax = jitfd_hc_hi > jitfd_hc_rmax ? jitfd_hc_hi : "
           "jitfd_hc_rmax;");
      line("jitfd_hc_rl2 += jitfd_hc_fin ? jitfd_hc_v*jitfd_hc_v : 0.0f;");
      --indent_;
      line("}");
      line("jitfd_hc_nan += jitfd_hc_rnan;");
      line("jitfd_hc_inf += jitfd_hc_rinf;");
      line("jitfd_hc_min = jitfd_hc_rmin < jitfd_hc_min ? jitfd_hc_rmin : "
           "jitfd_hc_min;");
      line("jitfd_hc_max = jitfd_hc_rmax > jitfd_hc_max ? jitfd_hc_rmax : "
           "jitfd_hc_max;");
      line("jitfd_hc_l2 += (double)jitfd_hc_rl2;");
      for (int d = 0; d + 1 < nd; ++d) {
        --indent_;
        line("}");
      }
      // The positional index in field_order, not the global field id:
      // ids are process-unique, and baking one in would make otherwise
      // identical kernels hash differently in the JIT compile cache.
      std::size_t field_pos = 0;
      while (field_pos < info_->field_order.size() &&
             info_->field_order[field_pos] != need.field_id) {
        ++field_pos;
      }
      line("ops->health(hctx, " + std::to_string(field_pos) +
           ", time, jitfd_hc_nan, jitfd_hc_inf, jitfd_hc_min, jitfd_hc_max, "
           "jitfd_hc_l2);");
      --indent_;
      line("}");
    }
    --indent_;
    line("}");
  }

  void emit_node(const ir::Node& n, bool in_core) {
    switch (n.type) {
      case ir::NodeType::Expression:
        emit_expression(n);
        return;
      case ir::NodeType::Iteration:
        emit_loop(n, in_core);
        return;
      case ir::NodeType::BlockLoop:
        emit_block_loop(n, in_core);
        return;
      case ir::NodeType::HaloComm:
        emit_halo_comm(n);
        return;
      case ir::NodeType::HealthCheck:
        emit_health_check(n);
        return;
      case ir::NodeType::SparseOp:
        line("ops->sparse(hctx, " + std::to_string(n.sparse_id) + ", time);");
        return;
      case ir::NodeType::Section: {
        line("/* section: " + n.name + " */");
        const bool core = n.name == "core";
        for (const ir::NodePtr& child : n.body) {
          emit_node(*child, core);
        }
        return;
      }
      default:
        return;  // Callable/TimeLoop handled by run(); HaloSpot never here.
    }
  }

  const ir::LoweringInfo* info_;
  const ir::FieldTable* fields_;
  const grid::Grid* grid_;
  const ir::CompileOptions* opts_;
  std::ostringstream out_;
  int indent_ = 0;
  std::string acc_present_;
  /// Active tile windows: dim -> (block variable name, tile size).
  std::map<int, std::pair<std::string, std::int64_t>> block_win_;
};

std::string Emitter::run(const ir::NodePtr& iet) {
  out_ << "/* Generated by jitfd (" << to_string(opts_->mode)
       << " mode). Do not edit. */\n";
  out_ << "#include <math.h>\n\n";
  out_ << "typedef struct jitfd_halo_ops {\n"
          "  void (*update)(void* ctx, int spot, long time);\n"
          "  void (*start)(void* ctx, int spot, long time);\n"
          "  void (*wait)(void* ctx, int spot);\n"
          "  void (*progress)(void* ctx);\n"
          "  void (*sparse)(void* ctx, int sparse_id, long time);\n"
          "  void (*step)(void* ctx, long time);\n"
          "  void (*health)(void* ctx, int field, long time, long nan_count,\n"
          "                 long inf_count, double min, double max,\n"
          "                 double l2sq);\n"
          "} jitfd_halo_ops;\n\n";
  out_ << "int " << kKernelSymbol
       << "(float** restrict fields, const double* restrict scalars,\n"
          "           long time_m, long time_M, void* hctx,\n"
          "           const jitfd_halo_ops* ops)\n{\n";
  indent_ = 1;

  // Field pointer casts with baked padded shapes (the VLA-pointer idiom of
  // the paper's Listing 11 context).
  {
    std::ostringstream present;
    for (std::size_t i = 0; i < info_->field_order.size(); ++i) {
      const grid::Function& fn = fields_->at(info_->field_order[i]);
      std::ostringstream decl;
      decl << "float (*restrict " << fn.name() << ")";
      std::ostringstream dims;
      const auto& ps = fn.padded_shape();
      // Leading dimension (time buffer or first space dim) is unsized.
      for (std::size_t d = 1; d < ps.size(); ++d) {
        dims << '[' << ps[d] << ']';
      }
      if (fn.field_id().time_varying) {
        // u[t][x]...[z]: all space dims sized.
        dims.str("");
        for (const std::int64_t p : ps) {
          dims << '[' << p << ']';
        }
      }
      decl << dims.str() << " = (float (*restrict)" << dims.str()
           << ") fields[" << i << "];";
      line(decl.str());
      if (i > 0) {
        present << ", ";
      }
      present << fn.name();
    }
    acc_present_ = present.str();
  }
  out_ << '\n';

  // Scalar bindings. The reserved health-interval scalar stays integral:
  // it feeds the `time % jitfd_health_every` guard, not arithmetic.
  for (std::size_t i = 0; i < info_->scalar_order.size(); ++i) {
    if (info_->scalar_order[i] == ir::kHealthIntervalScalar) {
      line("const long " + info_->scalar_order[i] + " = (long)scalars[" +
           std::to_string(i) + "];");
    } else {
      line("const float " + info_->scalar_order[i] + " = (float)scalars[" +
           std::to_string(i) + "];");
    }
  }
  out_ << '\n';

  // Which (nb, k, saved) time indices are needed anywhere in the tree.
  std::set<std::tuple<int, int, bool>> tvars;
  const std::function<void(const ir::Node&)> scan = [&](const ir::Node& n) {
    if (n.type == ir::NodeType::Expression) {
      for (const sym::Ex& e : {n.target, n.value}) {
        sym::walk(e, [&](const sym::Ex& sub) {
          if (sub.kind() == sym::Kind::FieldAccess &&
              sub.node().field.time_varying) {
            const grid::Function& fn = fields_->at(sub.node().field.id);
            tvars.emplace(fn.time_buffers(), sub.node().time_offset,
                          fn.saved());
          }
        });
      }
    }
    for (const ir::NodePtr& c : n.body) {
      scan(*c);
    }
  };
  scan(*iet);

  // Prologue (invariants + hoisted exchanges), then the time loop.
  for (const ir::NodePtr& top : iet->body) {
    if (top->type != ir::NodeType::TimeLoop) {
      if (top->type == ir::NodeType::HaloComm) {
        // Hoisted exchange of parameter fields: time index is irrelevant.
        line("ops->update(hctx, " + std::to_string(top->spot_id) + ", 0);");
      } else {
        emit_node(*top, /*in_core=*/false);
      }
      continue;
    }
    const auto emit_tvars = [&] {
      for (const auto& [nb, k, is_saved] : tvars) {
        if (is_saved) {
          line("const long " + time_var(nb, k, true) + " = time + " +
               std::to_string(k) + ";");
        } else {
          line("const long " + time_var(nb, k, false) + " = (time + " +
               std::to_string(nb + k) + ") % " + std::to_string(nb) + ";");
        }
      }
    };
    // Per-step observability hook (flight recorder step tracking); one
    // null check when the monitor is not installed.
    const auto emit_step_hook = [&] {
      if (!info_->health_checks.empty()) {
        line("if (ops->step) { ops->step(hctx, time); }");
      }
    };
    if (top->time_stride <= 1) {
      line("for (long time = time_m; time <= time_M; time += 1)");
      line("{");
      ++indent_;
      emit_tvars();
      emit_step_hook();
      for (const ir::NodePtr& child : top->body) {
        emit_node(*child, /*in_core=*/false);
      }
      --indent_;
      line("}");
      continue;
    }
    // Communication-avoiding strips: one exchange per strip of
    // time_stride sub-steps; shifted sub-steps are guarded against
    // running past time_M on the final (partial) strip.
    line("for (long strip_t = time_m; strip_t <= time_M; strip_t += " +
         std::to_string(top->time_stride) + ")");
    line("{");
    ++indent_;
    for (const ir::NodePtr& child : top->body) {
      if (child->type == ir::NodeType::HaloComm) {
        line("{");
        ++indent_;
        line("const long time = strip_t;");
        emit_node(*child, /*in_core=*/false);
        --indent_;
        line("}");
        continue;
      }
      if (child->type == ir::NodeType::BlockLoop) {
        // Time-tiled walker: the sub-step sequence advances inside each
        // tile window. Guards and time bindings replicate per window; the
        // per-step hook stays with the trailing health sub-steps (a
        // sub-step only completes once all windows have run).
        const auto bd = static_cast<std::size_t>(child->dim);
        const std::int64_t bsize = grid_->local_shape()[bd];
        const std::int64_t blo =
            child->lo.resolve_lo(bsize, grid_->has_neighbor_low(child->dim));
        const std::int64_t bhi =
            child->hi.resolve_hi(bsize, grid_->has_neighbor_high(child->dim));
        const std::string bv = std::string(dim_var(child->dim)) + "b";
        line("for (long " + bv + " = " + std::to_string(blo) + "; " + bv +
             " < " + std::to_string(bhi) + "; " + bv + " += " +
             std::to_string(child->tile) + ")");
        line("{");
        ++indent_;
        block_win_[child->dim] = {bv, child->tile};
        for (const ir::NodePtr& sub : child->body) {
          line("/* sub-step " + std::to_string(sub->time_shift) +
               " (tiled) */");
          if (sub->time_shift > 0) {
            line("if (strip_t + " + std::to_string(sub->time_shift) +
                 " <= time_M)");
          }
          line("{");
          ++indent_;
          line(sub->time_shift > 0
                   ? "const long time = strip_t + " +
                         std::to_string(sub->time_shift) + ";"
                   : "const long time = strip_t;");
          emit_tvars();
          for (const ir::NodePtr& inner : sub->body) {
            emit_node(*inner, /*in_core=*/false);
          }
          --indent_;
          line("}");
        }
        block_win_.erase(child->dim);
        --indent_;
        line("}");
        continue;
      }
      line("/* sub-step " + std::to_string(child->time_shift) + " */");
      if (child->time_shift > 0) {
        line("if (strip_t + " + std::to_string(child->time_shift) +
             " <= time_M)");
      }
      line("{");
      ++indent_;
      line(child->time_shift > 0
               ? "const long time = strip_t + " +
                     std::to_string(child->time_shift) + ";"
               : "const long time = strip_t;");
      emit_tvars();
      emit_step_hook();
      for (const ir::NodePtr& inner : child->body) {
        emit_node(*inner, /*in_core=*/false);
      }
      --indent_;
      line("}");
    }
    --indent_;
    line("}");
  }

  out_ << "  return 0;\n}\n";
  return out_.str();
}

}  // namespace

std::string emit_c(const ir::NodePtr& iet, const ir::LoweringInfo& info,
                   const ir::FieldTable& fields, const grid::Grid& grid,
                   const ir::CompileOptions& opts) {
  Emitter emitter(info, fields, grid, opts);
  return emitter.run(iet);
}

}  // namespace jitfd::codegen
