// Discrete functions on a Grid: the DSL's Function / TimeFunction objects.
//
// Storage of each rank follows the paper's three-region layout
// (Section III-d): an owned *data* region aligned with the grid block,
// surrounded by a *halo* ring of space_order points per side (ghost cells
// exchanged between ranks or read-only at physical boundaries), optionally
// surrounded by *padding* for alignment. Array accesses in user equations
// are written relative to the data region; the compiler's access-alignment
// pass adds the halo+padding offset.
//
// The data() view provides the "logically centralized, physically
// distributed" NumPy-style access of Section III-b: global indices and
// slices are converted to rank-local ones and applied only where owned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "grid/grid.h"
#include "symbolic/expr.h"

namespace jitfd::grid {

/// 64-byte-aligned allocator for field storage. Generated kernels receive
/// each field's storage start as its base pointer, so this is what makes
/// the emitter's `aligned(field:64)` simd clauses provable.
template <typename T>
struct AlignedAlloc {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }
  template <typename U>
  bool operator==(const AlignedAlloc<U>&) const {
    return true;
  }
};

/// A (possibly time-varying) discrete function over a Grid.
class Function {
 public:
  /// A plain (time-invariant) function, e.g. a velocity model.
  /// `padding` adds extra allocated-but-never-communicated points per side.
  Function(std::string name, const Grid& grid, int space_order,
           int padding = 0);

  virtual ~Function();
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  // --- Metadata -----------------------------------------------------------

  const std::string& name() const { return id_.name; }
  const sym::FieldId& field_id() const { return id_; }
  const Grid& grid() const { return *grid_; }
  int space_order() const { return space_order_; }
  /// Halo width per side. space_order (the Devito default the paper's
  /// alignment example relies on) when the process-wide exchange-depth
  /// capacity is 1; space_order * capacity when a deeper default was set
  /// (communication-avoiding stepping needs k stencil radii per fused
  /// step chain — see default_exchange_depth()).
  int halo() const { return halo_; }
  int padding() const { return padding_; }
  /// Total left offset from the raw allocation to the data region.
  int lpad() const { return halo_ + padding_; }

  /// Process-wide default halo capacity for communication-avoiding
  /// (exchange_depth > 1) stepping, read at construction time: fields
  /// allocate halo = space_order * depth per side. Initialized from the
  /// JITFD_EXCHANGE_DEPTH environment variable (default 1); the setter
  /// affects only Functions constructed afterwards.
  static void set_default_exchange_depth(int depth);
  static int default_exchange_depth();

  /// Process-wide default per-dimension tile shape, used by Operator when
  /// CompileOptions::tile is left empty. Initialized once from the
  /// JITFD_TILE environment variable ("tz,ty,tx"; unset/empty = untiled);
  /// the setter affects Operators constructed afterwards. Infeasible
  /// entries are clamped (and recorded) at lowering time, not here.
  static void set_default_tile(std::vector<std::int64_t> tile);
  static std::vector<std::int64_t> default_tile();
  /// Parse a JITFD_TILE-style comma-separated list ("16,8"). Lenient:
  /// unparsable entries become 0 (untiled) — lowering records clamps.
  static std::vector<std::int64_t> parse_tile(const std::string& text);

  /// Extra time buffers allocated beyond time_order+1 for unsaved
  /// TimeFunctions constructed afterwards. Time tiling
  /// (CompileOptions::time_tile) needs a strip's whole absolute
  /// time-index window held in distinct buffers; without enough slack the
  /// request is clamped at lowering time with a recorded reason.
  /// Initialized from the JITFD_TIME_SLACK environment variable.
  static void set_default_time_slack(int slack);
  static int default_time_slack();

  /// Number of time buffers (1 for plain Functions).
  virtual int time_buffers() const { return 1; }

  /// Saved fields (TimeFunction with save=N) store every time step
  /// instead of cycling a modulo window.
  bool saved() const { return saved_; }

  /// Map an absolute time step plus relative offset to the storage
  /// buffer: identity for saved fields, modulo time_buffers() for
  /// cycling fields, 0 for plain Functions. The single source of truth
  /// used by the interpreter, the halo runtime, the sparse operations
  /// and (in emitted form) the generated code.
  int buffer_index(int time_offset, std::int64_t time) const;

  /// Rank-local owned sizes (the data region, no ghosts).
  const std::vector<std::int64_t>& local_shape() const {
    return grid_->local_shape();
  }
  /// Rank-local allocated sizes including halo and padding.
  const std::vector<std::int64_t>& padded_shape() const {
    return padded_shape_;
  }
  /// Points in one time buffer (allocated, including ghosts).
  std::int64_t buffer_points() const { return buffer_points_; }

  // --- Raw storage ----------------------------------------------------------

  /// Pointer to time buffer `t` (0 for plain Functions).
  float* buffer(int t);
  const float* buffer(int t) const;

  /// The whole allocation (every buffer, ghosts included) — used for
  /// checkpoint/restore (e.g. the communication-pattern autotuner).
  std::span<float> raw_storage() { return {storage_.data(), storage_.size()}; }
  std::span<const float> raw_storage() const {
    return {storage_.data(), storage_.size()};
  }

  /// Element access with *data-region-relative* local indices
  /// (idx[d] == 0 is the first owned point; negative indices reach into
  /// the halo).
  float& at_local(int t, std::span<const std::int64_t> idx);
  float at_local(int t, std::span<const std::int64_t> idx) const;

  // --- Distributed (global-view) data access ---------------------------------

  /// Set every owned point (and ghost point) of every buffer to `v`.
  void fill(float v);

  /// Assign `v` over the global half-open box [lo, hi) — each rank writes
  /// only its owned intersection (the Listing 1 / Listing 2 semantics).
  void fill_global_box(int t, std::span<const std::int64_t> lo,
                       std::span<const std::int64_t> hi, float v);

  /// Write one global point if owned by this rank; returns whether it was.
  bool set_global(int t, std::span<const std::int64_t> g, float v);

  /// Read one global point; returns `fallback` when not owned locally.
  float get_global_or(int t, std::span<const std::int64_t> g,
                      float fallback) const;

  /// Initialize owned points (and surrounding ghosts, clamped to the
  /// domain) from a callback over *global* coordinates. Intended for
  /// parameter fields (velocity/density models).
  void init(const std::function<float(std::span<const std::int64_t>)>& fn);

  /// Collect the full global data region of buffer `t` on rank 0 (other
  /// ranks get an empty vector). Collective over the grid's communicator
  /// when distributed.
  std::vector<float> gather(int t) const;

  /// Sum of squares over owned points of buffer `t`, reduced across ranks
  /// when distributed (collective in that case).
  double norm2(int t) const;

  // --- Symbolic accessors ------------------------------------------------------

  /// Access at the iteration point shifted by `offsets` (size == ndims).
  sym::Ex at(std::vector<int> offsets) const;
  /// Access at the iteration point.
  sym::Ex operator()() const;

  /// Central first derivative along dimension `d` (accuracy space_order).
  sym::Ex dx(int d) const;
  /// Central second derivative along dimension `d`.
  sym::Ex dx2(int d) const;
  /// Sum of second derivatives over all space dimensions (u.laplace).
  sym::Ex laplace() const;
  /// Staggered first derivative along `d` evaluated half a cell toward
  /// `side` (+1/-1) relative to this function's sample points.
  sym::Ex dx_stag(int d, int side) const;

 protected:
  Function(std::string name, const Grid& grid, int space_order, int padding,
           bool time_varying, int buffers, bool saved = false);

  /// Time offset used by symbolic accessors of subclasses.
  sym::Ex at_time(int time_offset, std::vector<int> offsets) const;

 private:
  std::int64_t raw_linear(int t, std::span<const std::int64_t> raw) const;

  sym::FieldId id_;
  const Grid* grid_;
  int space_order_;
  int halo_;
  int padding_;
  int buffers_;
  bool saved_ = false;
  std::vector<std::int64_t> padded_shape_;
  std::vector<std::int64_t> strides_;
  std::int64_t buffer_points_ = 0;
  std::vector<float, AlignedAlloc<float>> storage_;
};

/// A time-varying function with modulo-buffered time storage:
/// time_order+1 buffers, so a second-order-in-time field u keeps
/// {t-1, t, t+1} live (paper Section IV-B).
class TimeFunction : public Function {
 public:
  /// `save` == 0 (default): modulo-buffered with time_order+1 buffers.
  /// `save` > 0: store every time step 0..save-1 explicitly (Devito's
  /// `save=` argument, used by adjoint/FWI workflows); apply() may then
  /// only run steps whose accesses stay within [0, save).
  TimeFunction(std::string name, const Grid& grid, int space_order,
               int time_order, int padding = 0, int save = 0);

  int time_order() const { return time_order_; }
  int time_buffers() const override {
    return saved() ? save_ : time_order_ + 1 + slack_;
  }
  int save_steps() const { return save_; }

  /// u[t + k, x + offsets...] for explicit k.
  sym::Ex at_shifted(int time_offset, std::vector<int> offsets) const {
    return at_time(time_offset, std::move(offsets));
  }
  /// u[t+1] at the iteration point (the usual write target).
  sym::Ex forward() const;
  /// u[t-1] at the iteration point.
  sym::Ex backward() const;
  /// u[t] at the iteration point.
  sym::Ex now() const;

  /// First time derivative: forward difference (u[t+1]-u[t])/dt for
  /// time_order 1, centred for time_order >= 2.
  sym::Ex dt() const;
  /// Second time derivative (requires time_order >= 2).
  sym::Ex dt2() const;

 private:
  int time_order_;
  int save_ = 0;
  /// Extra cycling buffers (default_time_slack at construction time).
  int slack_ = 0;
};

/// The symbolic time-step size, shared by all TimeFunctions.
sym::Ex dt_symbol();

/// Process-wide registry resolving a symbolic field id back to the live
/// Function that owns the data (thread-safe; Functions register on
/// construction and deregister on destruction). This is what lets an
/// Operator be constructed from equations alone, Devito-style.
Function* lookup_field(int field_id);

}  // namespace jitfd::grid
