// The structured computational grid and its domain decomposition
// (paper Section III-a): a Grid logically spans the full problem domain;
// when constructed over a Cartesian communicator it is block-decomposed
// per dimension, with an optional user-specified topology
// (Grid(..., topology=(4,2,2)) in the DSL).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "grid/decomposition.h"
#include "smpi/cart.h"
#include "symbolic/expr.h"

namespace jitfd::grid {

/// Structured grid over a physical extent. Spacing follows the
/// vertex-centred convention of the paper's Listing 1:
/// h_d = extent_d / (shape_d - 1).
class Grid {
 public:
  /// Serial grid (no decomposition).
  Grid(std::vector<std::int64_t> shape, std::vector<double> extent);

  /// Distributed grid over `comm`. The process topology is derived with
  /// dims_create unless `topology` pins it (entries > 0 fixed, 0 free —
  /// the DSL's Grid(..., topology=...) argument). The CartComm is created
  /// internally and owned by the Grid.
  Grid(std::vector<std::int64_t> shape, std::vector<double> extent,
       smpi::Communicator comm, std::vector<int> topology = {});

  /// Distributed grid with an explicit (biased) dimension-0 split: one
  /// owned extent per dimension-0 process row, as produced by
  /// plan_rebalance(). The request must be rank-uniform: every rank
  /// allreduce-checks the sizes against its peers, and a divergent
  /// request is rejected on ALL ranks — the grid falls back to the
  /// uniform split and records the clamp reason (collectives stay
  /// deadlock-free because every rank takes the same branch).
  Grid(std::vector<std::int64_t> shape, std::vector<double> extent,
       smpi::Communicator comm, std::vector<int> topology,
       std::vector<std::int64_t> dim0_sizes);

  int ndims() const { return static_cast<int>(shape_.size()); }
  const std::vector<std::int64_t>& shape() const { return shape_; }
  const std::vector<double>& extent() const { return extent_; }
  double spacing(int d) const;
  /// Spacing symbol for dimension `d` ("h_x", "h_y", "h_z").
  sym::Ex spacing_symbol(int d) const;
  /// Canonical dimension name ("x", "y", "z").
  static std::string dim_name(int d);

  bool distributed() const { return cart_ != nullptr; }
  /// Cartesian communicator (nullptr for serial grids).
  const smpi::CartComm* cart() const { return cart_.get(); }
  /// Whether this rank has a Cartesian neighbour on the low/high side of
  /// dimension `d` (false on serial grids and at physical boundaries).
  /// Drives the per-side ghost-zone extension of deep-halo stepping.
  bool has_neighbor_low(int d) const {
    return cart_ != nullptr &&
           cart_->my_coords()[static_cast<std::size_t>(d)] > 0;
  }
  bool has_neighbor_high(int d) const {
    return cart_ != nullptr &&
           cart_->my_coords()[static_cast<std::size_t>(d)] + 1 <
               cart_->dims()[static_cast<std::size_t>(d)];
  }
  /// Process-grid extents; all ones for serial grids.
  const std::vector<int>& topology() const { return topology_; }

  const Decomposition& decomposition(int d) const;
  /// Smallest owned extent along `d` over all process rows — the
  /// feasibility bound tiling must respect under biased splits (uniform
  /// splits make this shape/topology rounded down, the historical bound).
  std::int64_t min_local_size(int d) const;
  /// Why a requested biased split was rejected (empty when none was
  /// requested or the request was applied).
  const std::string& rebalance_clamp_reason() const {
    return rebalance_clamp_reason_;
  }
  /// Plan a biased dimension-0 split from measured per-rank compute:
  /// aggregates the report's rank loads onto dimension-0 slabs of the
  /// process grid and delegates to Decomposition::rebalance. The report
  /// must be rank-uniform (merge traces or allreduce loads first).
  RebalancePlan plan_rebalance(const obs::AnalysisReport& report,
                               const RebalanceOptions& opts = {}) const;
  /// Sizes of this rank's owned block (the whole grid when serial).
  const std::vector<std::int64_t>& local_shape() const { return local_shape_; }
  /// Global index of this rank's first owned point along `d`.
  std::int64_t local_start(int d) const;

  /// Total number of grid points in the global domain.
  std::int64_t points() const;

 private:
  void init_decomposition();

  std::vector<std::int64_t> shape_;
  std::vector<double> extent_;
  std::unique_ptr<smpi::CartComm> cart_;
  std::vector<int> topology_;
  std::vector<Decomposition> decomp_;
  std::vector<std::int64_t> local_shape_;
  std::string rebalance_clamp_reason_;
};

}  // namespace jitfd::grid
