#include "grid/decomposition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "obs/analysis.h"

namespace jitfd::grid {

Decomposition::Decomposition(std::int64_t global_size, int parts)
    : global_(global_size), parts_(parts) {
  if (global_size < 0 || parts < 1) {
    throw std::invalid_argument("Decomposition: invalid size or parts");
  }
  base_ = global_ / parts_;
  extra_ = global_ % parts_;
}

Decomposition::Decomposition(std::int64_t global_size,
                             std::vector<std::int64_t> sizes)
    : Decomposition(global_size, sizes.empty() ? 1
                                               : static_cast<int>(sizes.size())) {
  if (sizes.empty()) {
    throw std::invalid_argument("Decomposition: empty explicit sizes");
  }
  std::int64_t sum = 0;
  for (const std::int64_t s : sizes) {
    if (s < 1) {
      throw std::invalid_argument(
          "Decomposition: explicit part size below 1");
    }
    sum += s;
  }
  if (sum != global_size) {
    throw std::invalid_argument(
        "Decomposition: explicit sizes do not sum to the global extent");
  }
  // Degenerate explicit splits that match the uniform one stay uniform,
  // so uniform() keeps meaning "no bias applied".
  bool matches_uniform = true;
  for (int p = 0; p < parts_; ++p) {
    if (sizes[p] != base_ + (p < extra_ ? 1 : 0)) {
      matches_uniform = false;
      break;
    }
  }
  if (matches_uniform) {
    return;
  }
  starts_.resize(parts_ + 1);
  starts_[0] = 0;
  for (int p = 0; p < parts_; ++p) {
    starts_[p + 1] = starts_[p] + sizes[p];
  }
}

std::vector<std::int64_t> Decomposition::sizes() const {
  std::vector<std::int64_t> out(parts_);
  for (int p = 0; p < parts_; ++p) {
    out[p] = size_of(p);
  }
  return out;
}

std::int64_t Decomposition::start_of(int part) const {
  assert(part >= 0 && part < parts_);
  if (!starts_.empty()) {
    return starts_[part];
  }
  const std::int64_t p = part;
  return p * base_ + std::min<std::int64_t>(p, extra_);
}

std::int64_t Decomposition::size_of(int part) const {
  assert(part >= 0 && part < parts_);
  if (!starts_.empty()) {
    return starts_[part + 1] - starts_[part];
  }
  return base_ + (part < extra_ ? 1 : 0);
}

int Decomposition::owner_of(std::int64_t g) const {
  assert(g >= 0 && g < global_);
  if (!starts_.empty()) {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), g);
    return static_cast<int>(it - starts_.begin()) - 1;
  }
  // Chunks with an extra point occupy the first extra_*(base_+1) indices.
  const std::int64_t boundary = extra_ * (base_ + 1);
  if (g < boundary) {
    return static_cast<int>(g / (base_ + 1));
  }
  return static_cast<int>(extra_ + (g - boundary) / base_);
}

std::int64_t Decomposition::global_to_local(int part, std::int64_t g) const {
  const std::int64_t start = start_of(part);
  if (g < start || g >= start + size_of(part)) {
    return -1;
  }
  return g - start;
}

std::int64_t Decomposition::local_to_global(int part, std::int64_t l) const {
  assert(l >= 0 && l < size_of(part));
  return start_of(part) + l;
}

std::pair<std::int64_t, std::int64_t> Decomposition::localize_slice(
    int part, std::int64_t lo, std::int64_t hi) const {
  const std::int64_t start = start_of(part);
  const std::int64_t size = size_of(part);
  const std::int64_t l = std::max<std::int64_t>(lo - start, 0);
  const std::int64_t h = std::min<std::int64_t>(hi - start, size);
  return {l, std::max(l, h)};
}

RebalancePlan Decomposition::rebalance(const std::vector<double>& part_seconds,
                                       const RebalanceOptions& opts) const {
  RebalancePlan plan;
  plan.sizes = sizes();
  if (static_cast<int>(part_seconds.size()) != parts_) {
    plan.reason = "rebalance clamped: expected " + std::to_string(parts_) +
                  " per-part measurements, got " +
                  std::to_string(part_seconds.size());
    return plan;
  }
  double total = 0.0;
  double max_s = 0.0;
  for (int p = 0; p < parts_; ++p) {
    const double s = part_seconds[p];
    if (!(s > 0.0) || !std::isfinite(s)) {
      plan.reason = "rebalance clamped: part " + std::to_string(p) +
                    " has no measured compute";
      return plan;
    }
    total += s;
    if (s > max_s) {
      max_s = s;
      plan.critical_part = p;
    }
  }
  plan.measured_ratio = max_s / (total / parts_);
  if (plan.measured_ratio < opts.threshold) {
    std::ostringstream os;
    os << "balanced: measured ratio " << plan.measured_ratio
       << " below threshold " << opts.threshold;
    plan.reason = os.str();
    return plan;
  }

  // Ideal extents are proportional to each part's measured rate
  // (points per second): slow parts shrink by exactly their compute
  // excess, fast parts absorb the difference.
  std::vector<double> rate(parts_);
  double rate_sum = 0.0;
  for (int p = 0; p < parts_; ++p) {
    rate[p] = static_cast<double>(size_of(p)) / part_seconds[p];
    rate_sum += rate[p];
  }
  std::vector<double> ideal(parts_);
  std::vector<std::int64_t> floor_v(parts_);
  std::vector<std::int64_t> lo(parts_);
  std::ostringstream clamps;
  for (int p = 0; p < parts_; ++p) {
    ideal[p] = static_cast<double>(global_) * rate[p] / rate_sum;
    lo[p] = std::max<std::int64_t>(
        opts.min_points,
        static_cast<std::int64_t>(
            std::floor(opts.max_shrink * static_cast<double>(size_of(p)))));
    if (ideal[p] < static_cast<double>(lo[p])) {
      clamps << (clamps.tellp() > 0 ? "; " : "") << "part " << p
             << " clamped to minimum extent " << lo[p];
      ideal[p] = static_cast<double>(lo[p]);
    }
  }
  // Deterministic largest-remainder rounding: floor everything (not
  // below the per-part minimum), then hand out the remaining points by
  // descending fractional part, ties broken by part index — every rank
  // runs this on identical allreduced inputs and lands on one split.
  std::int64_t assigned = 0;
  for (int p = 0; p < parts_; ++p) {
    floor_v[p] = std::max(lo[p], static_cast<std::int64_t>(
                                     std::floor(ideal[p])));
    assigned += floor_v[p];
  }
  std::vector<int> order(parts_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = ideal[a] - std::floor(ideal[a]);
    const double fb = ideal[b] - std::floor(ideal[b]);
    return fa != fb ? fa > fb : a < b;
  });
  std::size_t cursor = 0;
  while (assigned < global_) {
    ++floor_v[order[cursor % order.size()]];
    ++assigned;
    ++cursor;
  }
  // Clamps can over-assign; shave the excess from the largest parts.
  while (assigned > global_) {
    const int big = static_cast<int>(
        std::max_element(floor_v.begin(), floor_v.end()) - floor_v.begin());
    if (floor_v[big] <= lo[big]) {
      plan.reason = "rebalance clamped: minimum extents exceed the domain";
      plan.sizes = sizes();
      return plan;
    }
    --floor_v[big];
    --assigned;
  }

  if (floor_v == plan.sizes) {
    plan.reason = "balanced: rounding left the split unchanged";
    return plan;
  }
  plan.changed = true;
  std::ostringstream os;
  os << "rebalanced: ratio " << plan.measured_ratio << " >= threshold "
     << opts.threshold << ", critical part " << plan.critical_part
     << " shrunk from " << size_of(plan.critical_part) << " to "
     << floor_v[plan.critical_part] << " points";
  if (clamps.tellp() > 0) {
    os << " (" << clamps.str() << ")";
  }
  plan.reason = os.str();
  plan.sizes = std::move(floor_v);
  return plan;
}

RebalancePlan Decomposition::rebalance(const obs::AnalysisReport& report,
                                       const RebalanceOptions& opts) const {
  std::vector<double> seconds(parts_, 0.0);
  if (static_cast<int>(report.rank_loads.size()) != parts_) {
    RebalancePlan plan;
    plan.sizes = sizes();
    plan.reason = "rebalance clamped: analysis covers " +
                  std::to_string(report.rank_loads.size()) +
                  " ranks, decomposition has " + std::to_string(parts_) +
                  " parts";
    return plan;
  }
  for (const obs::RankLoad& load : report.rank_loads) {
    if (load.rank < 0 || load.rank >= parts_) {
      RebalancePlan plan;
      plan.sizes = sizes();
      plan.reason = "rebalance clamped: analysis rank " +
                    std::to_string(load.rank) + " outside the decomposition";
      return plan;
    }
    seconds[load.rank] = load.compute_s;
  }
  return rebalance(seconds, opts);
}

}  // namespace jitfd::grid
