#include "grid/decomposition.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace jitfd::grid {

Decomposition::Decomposition(std::int64_t global_size, int parts)
    : global_(global_size), parts_(parts) {
  if (global_size < 0 || parts < 1) {
    throw std::invalid_argument("Decomposition: invalid size or parts");
  }
  base_ = global_ / parts_;
  extra_ = global_ % parts_;
}

std::int64_t Decomposition::start_of(int part) const {
  assert(part >= 0 && part < parts_);
  const std::int64_t p = part;
  return p * base_ + std::min<std::int64_t>(p, extra_);
}

std::int64_t Decomposition::size_of(int part) const {
  assert(part >= 0 && part < parts_);
  return base_ + (part < extra_ ? 1 : 0);
}

int Decomposition::owner_of(std::int64_t g) const {
  assert(g >= 0 && g < global_);
  // Chunks with an extra point occupy the first extra_*(base_+1) indices.
  const std::int64_t boundary = extra_ * (base_ + 1);
  if (g < boundary) {
    return static_cast<int>(g / (base_ + 1));
  }
  return static_cast<int>(extra_ + (g - boundary) / base_);
}

std::int64_t Decomposition::global_to_local(int part, std::int64_t g) const {
  const std::int64_t start = start_of(part);
  if (g < start || g >= start + size_of(part)) {
    return -1;
  }
  return g - start;
}

std::int64_t Decomposition::local_to_global(int part, std::int64_t l) const {
  assert(l >= 0 && l < size_of(part));
  return start_of(part) + l;
}

std::pair<std::int64_t, std::int64_t> Decomposition::localize_slice(
    int part, std::int64_t lo, std::int64_t hi) const {
  const std::int64_t start = start_of(part);
  const std::int64_t size = size_of(part);
  const std::int64_t l = std::max<std::int64_t>(lo - start, 0);
  const std::int64_t h = std::min<std::int64_t>(hi - start, size);
  return {l, std::max(l, h)};
}

}  // namespace jitfd::grid
