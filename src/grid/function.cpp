#include "grid/function.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "core/env.h"
#include "symbolic/fd_ops.h"

namespace jitfd::grid {

namespace {

int next_field_id() {
  static std::atomic<int> counter{0};
  return counter.fetch_add(1);
}

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<int, Function*>& registry() {
  static std::map<int, Function*> r;
  return r;
}

std::atomic<int>& exchange_depth_default() {
  static std::atomic<int> depth{[] {
    const int v = static_cast<int>(env::get_int("JITFD_EXCHANGE_DEPTH", 1));
    return v > 1 ? v : 1;
  }()};
  return depth;
}

std::mutex& tile_default_mutex() {
  static std::mutex m;
  return m;
}

std::vector<std::int64_t>& tile_default_storage() {
  static std::vector<std::int64_t> tile = env::get_int_list("JITFD_TILE");
  return tile;
}

std::atomic<int>& time_slack_default() {
  static std::atomic<int> slack{[] {
    const int v = static_cast<int>(env::get_int("JITFD_TIME_SLACK", 0));
    return v > 0 ? v : 0;
  }()};
  return slack;
}

// Reserved user-channel tag for Function::gather traffic, far above the
// halo-exchange tag space. A single fixed tag suffices: gathers are
// collective (all ranks call in the same program order) and the mailbox
// matches messages per (source, tag) in FIFO order. Field ids must NOT be
// used here — rank threads construct their own Function objects, so ids
// are not equal across ranks.
constexpr int kGatherTag = 1 << 24;

}  // namespace

Function::Function(std::string name, const Grid& grid, int space_order,
                   int padding)
    : Function(std::move(name), grid, space_order, padding,
               /*time_varying=*/false, /*buffers=*/1) {}

Function::Function(std::string name, const Grid& grid, int space_order,
                   int padding, bool time_varying, int buffers, bool saved)
    : grid_(&grid),
      space_order_(space_order),
      halo_(space_order * default_exchange_depth()),
      padding_(padding),
      buffers_(buffers),
      saved_(saved) {
  if (space_order < 2 || space_order % 2 != 0) {
    throw std::invalid_argument("Function: space_order must be even and >= 2");
  }
  if (padding < 0 || buffers < 1) {
    throw std::invalid_argument("Function: invalid padding or buffer count");
  }
  id_.id = next_field_id();
  id_.name = std::move(name);
  id_.ndims = grid.ndims();
  id_.time_varying = time_varying;

  const std::int64_t ghost = 2 * static_cast<std::int64_t>(lpad());
  buffer_points_ = 1;
  for (const std::int64_t s : grid.local_shape()) {
    padded_shape_.push_back(s + ghost);
    buffer_points_ *= padded_shape_.back();
  }
  strides_.assign(padded_shape_.size(), 1);
  for (int d = grid.ndims() - 2; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    strides_[ud] = strides_[ud + 1] * padded_shape_[ud + 1];
  }
  storage_.assign(static_cast<std::size_t>(buffer_points_) *
                      static_cast<std::size_t>(buffers_),
                  0.0F);
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    registry().emplace(id_.id, this);
  }
}

Function::~Function() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  registry().erase(id_.id);
}

int Function::buffer_index(int time_offset, std::int64_t time) const {
  if (!id_.time_varying) {
    return 0;
  }
  if (saved_) {
    const std::int64_t idx = time + time_offset;
    assert(idx >= 0 && idx < buffers_ &&
           "saved TimeFunction accessed outside its stored range");
    return static_cast<int>(idx);
  }
  const int nb = buffers_;
  return static_cast<int>((((time + time_offset) % nb) + nb) % nb);
}

void Function::set_default_exchange_depth(int depth) {
  if (depth < 1) {
    throw std::invalid_argument(
        "Function::set_default_exchange_depth: depth must be >= 1");
  }
  exchange_depth_default().store(depth);
}

int Function::default_exchange_depth() {
  return exchange_depth_default().load();
}

void Function::set_default_tile(std::vector<std::int64_t> tile) {
  const std::lock_guard<std::mutex> lock(tile_default_mutex());
  tile_default_storage() = std::move(tile);
}

std::vector<std::int64_t> Function::default_tile() {
  const std::lock_guard<std::mutex> lock(tile_default_mutex());
  return tile_default_storage();
}

std::vector<std::int64_t> Function::parse_tile(const std::string& text) {
  // Strict shared grammar with JITFD_TILE (env::get_int_list): elided
  // entries ("8,,2") stay untiled, non-numeric tokens are a hard error.
  // Negative or oversized values are still clamped (and recorded) at
  // lowering time.
  return env::parse_int_list("tile", text);
}

void Function::set_default_time_slack(int slack) {
  if (slack < 0) {
    throw std::invalid_argument(
        "Function::set_default_time_slack: slack must be >= 0");
  }
  time_slack_default().store(slack);
}

int Function::default_time_slack() { return time_slack_default().load(); }

Function* lookup_field(int field_id) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(field_id);
  return it == registry().end() ? nullptr : it->second;
}

float* Function::buffer(int t) {
  assert(t >= 0 && t < buffers_);
  return storage_.data() + static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(buffer_points_);
}

const float* Function::buffer(int t) const {
  assert(t >= 0 && t < buffers_);
  return storage_.data() + static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(buffer_points_);
}

std::int64_t Function::raw_linear(int t,
                                  std::span<const std::int64_t> raw) const {
  assert(static_cast<int>(raw.size()) == grid_->ndims());
  std::int64_t idx = 0;
  for (std::size_t d = 0; d < raw.size(); ++d) {
    assert(raw[d] >= 0 && raw[d] < padded_shape_[d]);
    idx += raw[d] * strides_[d];
  }
  return static_cast<std::int64_t>(t) * buffer_points_ + idx;
}

float& Function::at_local(int t, std::span<const std::int64_t> idx) {
  std::vector<std::int64_t> raw(idx.begin(), idx.end());
  for (std::int64_t& r : raw) {
    r += lpad();
  }
  return storage_[static_cast<std::size_t>(raw_linear(t, raw))];
}

float Function::at_local(int t, std::span<const std::int64_t> idx) const {
  return const_cast<Function*>(this)->at_local(t, idx);
}

void Function::fill(float v) { std::fill(storage_.begin(), storage_.end(), v); }

namespace {

// Iterate an n-dimensional half-open box, invoking fn(idx) per point.
void for_each_point(
    std::span<const std::int64_t> lo, std::span<const std::int64_t> hi,
    const std::function<void(std::span<const std::int64_t>)>& fn) {
  const std::size_t nd = lo.size();
  for (std::size_t d = 0; d < nd; ++d) {
    if (lo[d] >= hi[d]) {
      return;
    }
  }
  std::vector<std::int64_t> idx(lo.begin(), lo.end());
  while (true) {
    fn(idx);
    std::size_t d = nd;
    while (d-- > 0) {
      if (++idx[d] < hi[d]) {
        break;
      }
      idx[d] = lo[d];
      if (d == 0) {
        return;
      }
    }
  }
}

}  // namespace

void Function::fill_global_box(int t, std::span<const std::int64_t> lo,
                               std::span<const std::int64_t> hi, float v) {
  assert(static_cast<int>(lo.size()) == grid_->ndims());
  // Convert the global box to this rank's owned local box, then write.
  std::vector<std::int64_t> llo(lo.size());
  std::vector<std::int64_t> lhi(hi.size());
  const std::vector<int> coords =
      grid_->distributed() ? grid_->cart()->my_coords()
                           : std::vector<int>(lo.size(), 0);
  for (std::size_t d = 0; d < lo.size(); ++d) {
    const auto [l, h] = grid_->decomposition(static_cast<int>(d))
                            .localize_slice(coords[d], lo[d], hi[d]);
    llo[d] = l;
    lhi[d] = h;
  }
  for_each_point(llo, lhi, [&](std::span<const std::int64_t> idx) {
    at_local(t, idx) = v;
  });
}

bool Function::set_global(int t, std::span<const std::int64_t> g, float v) {
  std::vector<std::int64_t> local(g.size());
  const std::vector<int> coords =
      grid_->distributed() ? grid_->cart()->my_coords()
                           : std::vector<int>(g.size(), 0);
  for (std::size_t d = 0; d < g.size(); ++d) {
    local[d] = grid_->decomposition(static_cast<int>(d))
                   .global_to_local(coords[d], g[d]);
    if (local[d] < 0) {
      return false;
    }
  }
  at_local(t, local) = v;
  return true;
}

float Function::get_global_or(int t, std::span<const std::int64_t> g,
                              float fallback) const {
  std::vector<std::int64_t> local(g.size());
  const std::vector<int> coords =
      grid_->distributed() ? grid_->cart()->my_coords()
                           : std::vector<int>(g.size(), 0);
  for (std::size_t d = 0; d < g.size(); ++d) {
    local[d] = grid_->decomposition(static_cast<int>(d))
                   .global_to_local(coords[d], g[d]);
    if (local[d] < 0) {
      return fallback;
    }
  }
  return at_local(t, local);
}

void Function::init(
    const std::function<float(std::span<const std::int64_t>)>& fn) {
  // Fill the data region plus ghosts; ghost coordinates are clamped to the
  // physical domain so boundary halos carry sensible parameter values.
  const int nd = grid_->ndims();
  std::vector<std::int64_t> lo(static_cast<std::size_t>(nd));
  std::vector<std::int64_t> hi(padded_shape_.begin(), padded_shape_.end());
  std::vector<std::int64_t> g(static_cast<std::size_t>(nd));
  for_each_point(lo, hi, [&](std::span<const std::int64_t> raw) {
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      const std::int64_t global = grid_->local_start(d) + raw[ud] - lpad();
      g[ud] = std::clamp<std::int64_t>(global, 0, grid_->shape()[ud] - 1);
    }
    const float v = fn(g);
    for (int t = 0; t < buffers_; ++t) {
      storage_[static_cast<std::size_t>(raw_linear(t, raw))] = v;
    }
  });
}

std::vector<float> Function::gather(int t) const {
  const int nd = grid_->ndims();
  // Pack this rank's owned block contiguously.
  std::vector<std::int64_t> lo(static_cast<std::size_t>(nd), 0);
  const auto& mine = grid_->local_shape();
  std::vector<float> block;
  block.reserve(static_cast<std::size_t>(
      std::accumulate(mine.begin(), mine.end(), std::int64_t{1},
                      std::multiplies<>())));
  for_each_point(lo, mine, [&](std::span<const std::int64_t> idx) {
    block.push_back(at_local(t, idx));
  });

  if (!grid_->distributed()) {
    return block;
  }
  const smpi::CartComm& cart = *grid_->cart();
  const smpi::Communicator& comm = cart.comm();
  const int tag = kGatherTag;
  if (comm.rank() != 0) {
    comm.send(block.data(), block.size() * sizeof(float), 0, tag);
    return {};
  }

  std::vector<float> global(
      static_cast<std::size_t>(grid_->points()));
  // Global row-major strides.
  std::vector<std::int64_t> gstrides(static_cast<std::size_t>(nd), 1);
  for (int d = nd - 2; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    gstrides[ud] = gstrides[ud + 1] * grid_->shape()[ud + 1];
  }
  for (int src = 0; src < comm.size(); ++src) {
    const std::vector<int> coords = cart.coords(src);
    std::vector<std::int64_t> starts(static_cast<std::size_t>(nd));
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(nd));
    std::int64_t count = 1;
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      starts[ud] = grid_->decomposition(d).start_of(coords[ud]);
      sizes[ud] = grid_->decomposition(d).size_of(coords[ud]);
      count *= sizes[ud];
    }
    std::vector<float> incoming;
    const float* src_data = nullptr;
    if (src == 0) {
      src_data = block.data();
    } else {
      incoming.resize(static_cast<std::size_t>(count));
      comm.recv(incoming.data(), incoming.size() * sizeof(float), src, tag);
      src_data = incoming.data();
    }
    std::size_t cursor = 0;
    std::vector<std::int64_t> zero(static_cast<std::size_t>(nd), 0);
    for_each_point(zero, sizes, [&](std::span<const std::int64_t> idx) {
      std::int64_t g = 0;
      for (int d = 0; d < nd; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        g += (starts[ud] + idx[ud]) * gstrides[ud];
      }
      global[static_cast<std::size_t>(g)] = src_data[cursor++];
    });
  }
  return global;
}

double Function::norm2(int t) const {
  const int nd = grid_->ndims();
  std::vector<std::int64_t> lo(static_cast<std::size_t>(nd), 0);
  double sum = 0.0;
  for_each_point(lo, grid_->local_shape(),
                 [&](std::span<const std::int64_t> idx) {
                   const double v = at_local(t, idx);
                   sum += v * v;
                 });
  if (grid_->distributed()) {
    std::vector<double> acc{sum};
    grid_->cart()->comm().allreduce(std::span<double>(acc),
                                    smpi::ReduceOp::Sum);
    sum = acc[0];
  }
  return sum;
}

// --- Symbolic accessors -------------------------------------------------------

sym::Ex Function::at(std::vector<int> offsets) const {
  assert(static_cast<int>(offsets.size()) == grid_->ndims());
  return sym::access(id_, std::move(offsets));
}

sym::Ex Function::operator()() const {
  return at(std::vector<int>(static_cast<std::size_t>(grid_->ndims()), 0));
}

sym::Ex Function::at_time(int time_offset, std::vector<int> offsets) const {
  assert(id_.time_varying);
  assert(static_cast<int>(offsets.size()) == grid_->ndims());
  return sym::access(id_, time_offset, std::move(offsets));
}

sym::Ex Function::dx(int d) const {
  return sym::diff((*this)(), d, 1, space_order_);
}

sym::Ex Function::dx2(int d) const {
  return sym::diff((*this)(), d, 2, space_order_);
}

sym::Ex Function::laplace() const {
  sym::Ex sum;
  for (int d = 0; d < grid_->ndims(); ++d) {
    sum += dx2(d);
  }
  return sum;
}

sym::Ex Function::dx_stag(int d, int side) const {
  return sym::diff_stag((*this)(), d, space_order_, side);
}

// --- TimeFunction ---------------------------------------------------------------

TimeFunction::TimeFunction(std::string name, const Grid& grid, int space_order,
                           int time_order, int padding, int save)
    : Function(std::move(name), grid, space_order, padding,
               /*time_varying=*/true,
               /*buffers=*/save > 0
                   ? save
                   : time_order + 1 + Function::default_time_slack(),
               /*saved=*/save > 0),
      time_order_(time_order),
      save_(save),
      slack_(save > 0 ? 0 : Function::default_time_slack()) {
  if (time_order < 1 || time_order > 2) {
    throw std::invalid_argument("TimeFunction: time_order must be 1 or 2");
  }
  if (save < 0 || (save > 0 && save < time_order + 1)) {
    throw std::invalid_argument(
        "TimeFunction: save must be 0 or >= time_order + 1");
  }
}

namespace {
std::vector<int> zero_offsets(const Grid& g) {
  return std::vector<int>(static_cast<std::size_t>(g.ndims()), 0);
}
}  // namespace

sym::Ex TimeFunction::forward() const {
  return at_shifted(1, zero_offsets(grid()));
}

sym::Ex TimeFunction::backward() const {
  return at_shifted(-1, zero_offsets(grid()));
}

sym::Ex TimeFunction::now() const { return at_shifted(0, zero_offsets(grid())); }

sym::Ex TimeFunction::dt() const {
  if (time_order_ == 1) {
    return (forward() - now()) / dt_symbol();
  }
  return (forward() - backward()) / (2 * dt_symbol());
}

sym::Ex TimeFunction::dt2() const {
  if (time_order_ < 2) {
    throw std::logic_error("dt2 requires time_order >= 2");
  }
  return (forward() - 2 * now() + backward()) /
         (dt_symbol() * dt_symbol());
}

sym::Ex dt_symbol() { return sym::symbol("dt"); }

}  // namespace jitfd::grid
