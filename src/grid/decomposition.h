// One-dimensional block decomposition of a global index range over a
// number of parts, plus the global<->local index conversion routines that
// back the distributed-array abstraction (paper Section III-b).
#pragma once

#include <cstdint>
#include <vector>

namespace jitfd::grid {

/// Block decomposition of [0, global_size) into `parts` contiguous chunks.
/// The first global_size % parts chunks carry one extra point (the MPI
/// convention), so chunk sizes differ by at most one.
class Decomposition {
 public:
  Decomposition() : Decomposition(0, 1) {}
  Decomposition(std::int64_t global_size, int parts);

  std::int64_t global_size() const { return global_; }
  int parts() const { return parts_; }

  /// First global index owned by `part`.
  std::int64_t start_of(int part) const;
  /// Number of points owned by `part`.
  std::int64_t size_of(int part) const;

  /// The part owning global index `g` (g must be in range).
  int owner_of(std::int64_t g) const;

  /// Convert a global index to a local index within `part`; returns -1 if
  /// `part` does not own `g`.
  std::int64_t global_to_local(int part, std::int64_t g) const;

  /// Convert a local index within `part` back to the global index.
  std::int64_t local_to_global(int part, std::int64_t l) const;

  /// Intersect the global half-open slice [lo, hi) with `part`'s owned
  /// range, returned as a local half-open slice; empty (first >= second)
  /// when there is no overlap. This is the kernel of the "logically
  /// centralized, physically distributed" data view.
  std::pair<std::int64_t, std::int64_t> localize_slice(int part,
                                                       std::int64_t lo,
                                                       std::int64_t hi) const;

 private:
  std::int64_t global_;
  int parts_;
  std::int64_t base_;   ///< global / parts.
  std::int64_t extra_;  ///< global % parts (chunks with one extra point).
};

}  // namespace jitfd::grid
