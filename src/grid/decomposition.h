// One-dimensional block decomposition of a global index range over a
// number of parts, plus the global<->local index conversion routines that
// back the distributed-array abstraction (paper Section III-b).
//
/// Two split shapes exist: the uniform block split (chunk sizes differ by
// at most one, the MPI convention) and an explicit-sizes split produced
// by rebalance(), which biases chunk extents against measured per-part
// compute so the critical-path rank owns fewer points. Both are plain
// index arithmetic; the solver semantics are split-independent, which is
// what the bitwise-equality tests in tests/test_rebalance.cpp pin down.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jitfd::obs {
struct AnalysisReport;
}  // namespace jitfd::obs

namespace jitfd::grid {

/// Tunables for Decomposition::rebalance.
struct RebalanceOptions {
  /// Minimum measured max/mean compute ratio before a bias is proposed
  /// (below this the plan reports "balanced" and keeps the split).
  double threshold = 1.25;
  /// No part may shrink below this fraction of its uniform size — a
  /// pathological measurement must not starve a rank of points.
  double max_shrink = 0.5;
  /// Absolute floor on any part's extent.
  std::int64_t min_points = 1;
};

/// Outcome of Decomposition::rebalance: a proposed per-part size vector
/// plus the decision trail (why the split changed, or why it did not —
/// the clamp-reason convention tile_clamp_reason established).
struct RebalancePlan {
  bool changed = false;
  std::vector<std::int64_t> sizes;  ///< Proposed sizes (current when !changed).
  std::string reason;               ///< Decision / clamp trail, never empty.
  double measured_ratio = 0.0;      ///< max/mean of the input seconds.
  int critical_part = -1;           ///< Slowest part (argmax seconds).
};

/// Block decomposition of [0, global_size) into `parts` contiguous chunks.
/// The first global_size % parts chunks carry one extra point (the MPI
/// convention), so chunk sizes differ by at most one.
class Decomposition {
 public:
  Decomposition() : Decomposition(0, 1) {}
  Decomposition(std::int64_t global_size, int parts);
  /// Explicit-sizes split (rebalance output). Every size must be >= 1
  /// and the sizes must sum to global_size.
  Decomposition(std::int64_t global_size, std::vector<std::int64_t> sizes);

  std::int64_t global_size() const { return global_; }
  int parts() const { return parts_; }
  /// False for explicit-sizes splits that differ from the uniform one.
  bool uniform() const { return starts_.empty(); }
  /// Owned extent of every part, in part order.
  std::vector<std::int64_t> sizes() const;

  /// First global index owned by `part`.
  std::int64_t start_of(int part) const;
  /// Number of points owned by `part`.
  std::int64_t size_of(int part) const;

  /// The part owning global index `g` (g must be in range).
  int owner_of(std::int64_t g) const;

  /// Convert a global index to a local index within `part`; returns -1 if
  /// `part` does not own `g`.
  std::int64_t global_to_local(int part, std::int64_t g) const;

  /// Convert a local index within `part` back to the global index.
  std::int64_t local_to_global(int part, std::int64_t l) const;

  /// Intersect the global half-open slice [lo, hi) with `part`'s owned
  /// range, returned as a local half-open slice; empty (first >= second)
  /// when there is no overlap. This is the kernel of the "logically
  /// centralized, physically distributed" data view.
  std::pair<std::int64_t, std::int64_t> localize_slice(int part,
                                                       std::int64_t lo,
                                                       std::int64_t hi) const;

  /// Propose a biased split from measured per-part compute seconds (one
  /// entry per part, rank-uniform on every caller — Grid allreduces the
  /// loads first). Parts get extents proportional to their measured
  /// points-per-second rate, clamped by opts and rounded with a
  /// deterministic largest-remainder scheme so every rank derives the
  /// identical plan. Does not mutate this decomposition.
  RebalancePlan rebalance(const std::vector<double>& part_seconds,
                          const RebalanceOptions& opts = {}) const;

  /// Convenience overload: read per-part seconds from an analysis
  /// report's per-rank compute loads (rank i = part i; requires the
  /// report to cover exactly parts() ranks).
  RebalancePlan rebalance(const obs::AnalysisReport& report,
                          const RebalanceOptions& opts = {}) const;

 private:
  std::int64_t global_;
  int parts_;
  std::int64_t base_;   ///< global / parts.
  std::int64_t extra_;  ///< global % parts (chunks with one extra point).
  /// Explicit splits only: parts_+1 prefix starts (empty when uniform).
  std::vector<std::int64_t> starts_;
};

}  // namespace jitfd::grid
