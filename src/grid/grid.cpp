#include "grid/grid.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <stdexcept>

#include "obs/analysis.h"

namespace jitfd::grid {

namespace {

void validate(const std::vector<std::int64_t>& shape,
              const std::vector<double>& extent) {
  if (shape.empty() || shape.size() > 3) {
    throw std::invalid_argument("Grid: 1, 2 or 3 dimensions supported");
  }
  if (shape.size() != extent.size()) {
    throw std::invalid_argument("Grid: shape/extent rank mismatch");
  }
  for (const std::int64_t s : shape) {
    if (s < 2) {
      throw std::invalid_argument("Grid: each dimension needs >= 2 points");
    }
  }
  for (const double e : extent) {
    if (e <= 0.0) {
      throw std::invalid_argument("Grid: extent must be positive");
    }
  }
}

}  // namespace

Grid::Grid(std::vector<std::int64_t> shape, std::vector<double> extent)
    : shape_(std::move(shape)), extent_(std::move(extent)) {
  validate(shape_, extent_);
  topology_.assign(shape_.size(), 1);
  init_decomposition();
}

Grid::Grid(std::vector<std::int64_t> shape, std::vector<double> extent,
           smpi::Communicator comm, std::vector<int> topology)
    : shape_(std::move(shape)), extent_(std::move(extent)) {
  validate(shape_, extent_);
  topology_ = smpi::dims_create(comm.size(), ndims(), std::move(topology));
  cart_ = std::make_unique<smpi::CartComm>(comm, topology_);
  init_decomposition();
}

Grid::Grid(std::vector<std::int64_t> shape, std::vector<double> extent,
           smpi::Communicator comm, std::vector<int> topology,
           std::vector<std::int64_t> dim0_sizes)
    : shape_(std::move(shape)), extent_(std::move(extent)) {
  validate(shape_, extent_);
  topology_ = smpi::dims_create(comm.size(), ndims(), std::move(topology));
  if (static_cast<int>(dim0_sizes.size()) != topology_[0]) {
    throw std::invalid_argument(
        "Grid: dim0_sizes must have one entry per dimension-0 process row");
  }
  // Rank-uniformity gate before the sizes influence anything: if any
  // peer requested a different split, EVERY rank sees min != max and
  // every rank takes the uniform-fallback branch together.
  std::vector<std::int64_t> mn = dim0_sizes;
  std::vector<std::int64_t> mx = dim0_sizes;
  comm.allreduce(std::span<std::int64_t>(mn), smpi::ReduceOp::Min);
  comm.allreduce(std::span<std::int64_t>(mx), smpi::ReduceOp::Max);
  cart_ = std::make_unique<smpi::CartComm>(comm, topology_);
  init_decomposition();
  if (mn != mx) {
    rebalance_clamp_reason_ =
        "rebalance clamped: requested dimension-0 sizes diverge across "
        "ranks; keeping the uniform split";
    return;
  }
  // The request is identical everywhere, so a value error (bad sum,
  // empty part) throws uniformly too.
  decomp_[0] = Decomposition(shape_[0], std::move(dim0_sizes));
  local_shape_[0] = decomp_[0].size_of(cart_->my_coords()[0]);
}

void Grid::init_decomposition() {
  decomp_.clear();
  local_shape_.clear();
  const std::vector<int> coords =
      cart_ ? cart_->my_coords() : std::vector<int>(shape_.size(), 0);
  for (int d = 0; d < ndims(); ++d) {
    const auto ud = static_cast<std::size_t>(d);
    decomp_.emplace_back(shape_[ud], topology_[ud]);
    if (decomp_.back().size_of(coords[ud]) < 1) {
      throw std::invalid_argument(
          "Grid: decomposition leaves a rank with an empty block");
    }
    local_shape_.push_back(decomp_.back().size_of(coords[ud]));
  }
}

double Grid::spacing(int d) const {
  const auto ud = static_cast<std::size_t>(d);
  return extent_[ud] / static_cast<double>(shape_[ud] - 1);
}

sym::Ex Grid::spacing_symbol(int d) const {
  return sym::symbol("h_" + dim_name(d));
}

std::string Grid::dim_name(int d) {
  static constexpr const char* kNames[] = {"x", "y", "z"};
  if (d < 0 || d > 2) {
    throw std::out_of_range("Grid::dim_name");
  }
  return kNames[d];
}

const Decomposition& Grid::decomposition(int d) const {
  return decomp_.at(static_cast<std::size_t>(d));
}

std::int64_t Grid::min_local_size(int d) const {
  const Decomposition& dec = decomposition(d);
  std::int64_t mn = dec.size_of(0);
  for (int p = 1; p < dec.parts(); ++p) {
    mn = std::min(mn, dec.size_of(p));
  }
  return mn;
}

RebalancePlan Grid::plan_rebalance(const obs::AnalysisReport& report,
                                   const RebalanceOptions& opts) const {
  RebalancePlan plan;
  plan.sizes = decomposition(0).sizes();
  if (!distributed()) {
    plan.reason = "rebalance clamped: serial grid has nothing to split";
    return plan;
  }
  const int nranks = cart_->comm().size();
  if (static_cast<int>(report.rank_loads.size()) != nranks) {
    plan.reason = "rebalance clamped: analysis covers " +
                  std::to_string(report.rank_loads.size()) +
                  " ranks, communicator has " + std::to_string(nranks);
    return plan;
  }
  // Collapse per-rank compute onto dimension-0 slabs: ranks sharing a
  // dimension-0 coordinate own the same index range along the split.
  std::vector<double> slab(static_cast<std::size_t>(topology_[0]), 0.0);
  for (const obs::RankLoad& load : report.rank_loads) {
    if (load.rank < 0 || load.rank >= nranks) {
      plan.reason = "rebalance clamped: analysis rank " +
                    std::to_string(load.rank) + " outside the communicator";
      return plan;
    }
    slab[static_cast<std::size_t>(cart_->coords(load.rank)[0])] +=
        load.compute_s;
  }
  return decomposition(0).rebalance(slab, opts);
}

std::int64_t Grid::local_start(int d) const {
  const auto ud = static_cast<std::size_t>(d);
  const int coord = cart_ ? cart_->my_coords()[ud] : 0;
  return decomp_[ud].start_of(coord);
}

std::int64_t Grid::points() const {
  return std::accumulate(shape_.begin(), shape_.end(), std::int64_t{1},
                         std::multiplies<>());
}

}  // namespace jitfd::grid
