#include "grid/grid.h"

#include <numeric>
#include <stdexcept>

namespace jitfd::grid {

namespace {

void validate(const std::vector<std::int64_t>& shape,
              const std::vector<double>& extent) {
  if (shape.empty() || shape.size() > 3) {
    throw std::invalid_argument("Grid: 1, 2 or 3 dimensions supported");
  }
  if (shape.size() != extent.size()) {
    throw std::invalid_argument("Grid: shape/extent rank mismatch");
  }
  for (const std::int64_t s : shape) {
    if (s < 2) {
      throw std::invalid_argument("Grid: each dimension needs >= 2 points");
    }
  }
  for (const double e : extent) {
    if (e <= 0.0) {
      throw std::invalid_argument("Grid: extent must be positive");
    }
  }
}

}  // namespace

Grid::Grid(std::vector<std::int64_t> shape, std::vector<double> extent)
    : shape_(std::move(shape)), extent_(std::move(extent)) {
  validate(shape_, extent_);
  topology_.assign(shape_.size(), 1);
  init_decomposition();
}

Grid::Grid(std::vector<std::int64_t> shape, std::vector<double> extent,
           smpi::Communicator comm, std::vector<int> topology)
    : shape_(std::move(shape)), extent_(std::move(extent)) {
  validate(shape_, extent_);
  topology_ = smpi::dims_create(comm.size(), ndims(), std::move(topology));
  cart_ = std::make_unique<smpi::CartComm>(comm, topology_);
  init_decomposition();
}

void Grid::init_decomposition() {
  decomp_.clear();
  local_shape_.clear();
  const std::vector<int> coords =
      cart_ ? cart_->my_coords() : std::vector<int>(shape_.size(), 0);
  for (int d = 0; d < ndims(); ++d) {
    const auto ud = static_cast<std::size_t>(d);
    decomp_.emplace_back(shape_[ud], topology_[ud]);
    if (decomp_.back().size_of(coords[ud]) < 1) {
      throw std::invalid_argument(
          "Grid: decomposition leaves a rank with an empty block");
    }
    local_shape_.push_back(decomp_.back().size_of(coords[ud]));
  }
}

double Grid::spacing(int d) const {
  const auto ud = static_cast<std::size_t>(d);
  return extent_[ud] / static_cast<double>(shape_[ud] - 1);
}

sym::Ex Grid::spacing_symbol(int d) const {
  return sym::symbol("h_" + dim_name(d));
}

std::string Grid::dim_name(int d) {
  static constexpr const char* kNames[] = {"x", "y", "z"};
  if (d < 0 || d > 2) {
    throw std::out_of_range("Grid::dim_name");
  }
  return kNames[d];
}

const Decomposition& Grid::decomposition(int d) const {
  return decomp_.at(static_cast<std::size_t>(d));
}

std::int64_t Grid::local_start(int d) const {
  const auto ud = static_cast<std::size_t>(d);
  const int coord = cart_ ? cart_->my_coords()[ud] : 0;
  return decomp_[ud].start_of(coord);
}

std::int64_t Grid::points() const {
  return std::accumulate(shape_.begin(), shape_.end(), std::int64_t{1},
                         std::multiplies<>());
}

}  // namespace jitfd::grid
