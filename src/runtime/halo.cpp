#include "runtime/halo.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jitfd::runtime {

namespace {

// Tag layout: spot | field-slot | direction. Stays well below the
// reserved gather tag range (1 << 24).
constexpr int kMaxFieldsPerSpot = 64;
constexpr int kMaxDirections = 27;  // 3^3.

int dir_index(const std::vector<int>& o) {
  int idx = 0;
  int scale = 1;
  for (const int v : o) {
    idx += (v + 1) * scale;
    scale *= 3;
  }
  return idx;
}

std::vector<int> negate(const std::vector<int>& o) {
  std::vector<int> r(o.size());
  for (std::size_t d = 0; d < o.size(); ++d) {
    r[d] = -o[d];
  }
  return r;
}

int make_tag(int spot, int field_slot, int dir) {
  assert(field_slot < kMaxFieldsPerSpot && dir < kMaxDirections);
  return (spot * kMaxFieldsPerSpot + field_slot) * kMaxDirections + dir;
}

}  // namespace

std::int64_t HaloExchange::Box::count() const {
  std::int64_t c = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) {
    c *= hi[d] - lo[d];
  }
  return c;
}

HaloExchange::HaloExchange(const grid::Grid& grid, ir::MpiMode mode)
    : grid_(&grid), mode_(mode) {}

void HaloExchange::set_exchange_depth(int depth) {
  if (depth < 1) {
    throw std::invalid_argument("HaloExchange: exchange depth must be >= 1");
  }
  exchange_depth_ = depth;
  stats_.exchange_depth = depth;
}

namespace {

/// Compute send/recv boxes of `fn` for direction `o` with exchange widths
/// `w`. `extend_below[d]` widens zero-offset dimensions below the sweep
/// axis into the already-filled halo (the basic pattern's corner
/// propagation); it is all-false for the single-step patterns.
struct BoxPair {
  std::vector<std::int64_t> slo, shi, rlo, rhi;
};

BoxPair make_boxes(const grid::Function& fn, const std::vector<int>& w,
                   const std::vector<int>& o,
                   const std::vector<bool>& extend) {
  const auto& n = fn.local_shape();
  const std::int64_t L = fn.lpad();
  const std::size_t nd = n.size();
  BoxPair b;
  b.slo.resize(nd);
  b.shi.resize(nd);
  b.rlo.resize(nd);
  b.rhi.resize(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    const std::int64_t wd = w[d];
    switch (o[d]) {
      case -1:
        b.slo[d] = L;
        b.shi[d] = L + wd;
        b.rlo[d] = L - wd;
        b.rhi[d] = L;
        break;
      case +1:
        b.slo[d] = L + n[d] - wd;
        b.shi[d] = L + n[d];
        b.rlo[d] = L + n[d];
        b.rhi[d] = L + n[d] + wd;
        break;
      default: {
        const std::int64_t ext = extend[d] ? wd : 0;
        b.slo[d] = L - ext;
        b.shi[d] = L + n[d] + ext;
        b.rlo[d] = b.slo[d];
        b.rhi[d] = b.shi[d];
        break;
      }
    }
  }
  return b;
}

}  // namespace

RowPlan make_row_plan(const grid::Function& fn,
                      const HaloExchange::Box& box) {
  RowPlan plan;
  const std::size_t nd = box.lo.size();
  if (nd == 0) {
    return plan;
  }
  std::vector<std::int64_t> strides(nd, 1);
  for (std::size_t d = nd - 1; d-- > 0;) {
    strides[d] = strides[d + 1] * fn.padded_shape()[d + 1];
  }
  plan.row = box.hi[nd - 1] - box.lo[nd - 1];
  if (plan.row <= 0) {
    plan.row = 0;
    return plan;
  }
  std::int64_t rows = 1;
  for (std::size_t d = 0; d + 1 < nd; ++d) {
    if (box.hi[d] <= box.lo[d]) {
      return plan;
    }
    rows *= box.hi[d] - box.lo[d];
  }
  plan.offsets.reserve(static_cast<std::size_t>(rows));
  std::vector<std::int64_t> idx(box.lo.begin(), box.lo.end());
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t off = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      off += idx[d] * strides[d];
    }
    plan.offsets.push_back(off);
    for (std::size_t d = nd - 1; d-- > 0;) {
      if (++idx[d] < box.hi[d]) {
        break;
      }
      idx[d] = box.lo[d];
    }
  }
  return plan;
}

void pack_box(const grid::Function& fn, int buf_idx,
              const HaloExchange::Box& box, float* out, bool parallel) {
  const RowPlan plan = make_row_plan(fn, box);
  copy_rows_gather(fn.buffer(buf_idx), plan, out, parallel);
}

void unpack_box(grid::Function& fn, int buf_idx,
                const HaloExchange::Box& box, const float* in,
                bool parallel) {
  const RowPlan plan = make_row_plan(fn, box);
  copy_rows_scatter(fn.buffer(buf_idx), plan, in, parallel);
}

namespace {

bool parallel_worthwhile(const RowPlan& plan) {
  return plan.total() * static_cast<std::int64_t>(sizeof(float)) >=
         kParallelCopyBytes;
}

}  // namespace

int HaloExchange::register_spot(const ir::SpotInfo& spot,
                                const ir::FieldTable& fields) {
  if (static_cast<int>(spots_.size()) != spot.id) {
    throw std::logic_error("HaloExchange: spots must register in id order");
  }
  Spot s;
  s.hoisted = spot.hoisted;
  const bool star =
      mode_ == ir::MpiMode::Diagonal || mode_ == ir::MpiMode::Full;
  for (std::size_t slot = 0; slot < spot.needs.size(); ++slot) {
    const ir::HaloNeed& need = spot.needs[slot];
    FieldPlan plan;
    plan.fn = &fields.at(need.field_id);
    plan.time_offset = need.time_offset;
    plan.widths = need.widths;
    for (std::size_t d = 0; d < need.widths.size(); ++d) {
      if (need.widths[d] > plan.fn->lpad()) {
        throw std::invalid_argument(
            "HaloExchange: exchange width " + std::to_string(need.widths[d]) +
            " of field '" + plan.fn->name() + "' exceeds its allocated halo (" +
            std::to_string(plan.fn->lpad()) + " per side)");
      }
    }
    if (grid_->distributed() && star) {
      // One plan per star-neighbourhood direction whose exchanged volume
      // is nonzero; buffers and row plans preallocated here (Table I:
      // "pre-alloc").
      const std::vector<bool> no_extend(need.widths.size(), false);
      for (const auto& o : grid_->cart()->star_neighborhood()) {
        bool involved = false;
        bool degenerate = false;
        for (std::size_t d = 0; d < o.size(); ++d) {
          if (o[d] != 0) {
            involved = true;
            if (need.widths[d] == 0) {
              degenerate = true;
            }
          }
        }
        if (!involved || degenerate) {
          continue;
        }
        DirPlan dp;
        dp.neighbor = grid_->cart()->neighbor(o);
        const BoxPair b = make_boxes(*plan.fn, need.widths, o, no_extend);
        dp.send_box = Box{b.slo, b.shi};
        dp.recv_box = Box{b.rlo, b.rhi};
        dp.send_tag = make_tag(spot.id, static_cast<int>(slot), dir_index(o));
        // The message filling our halo on side `o` comes from the
        // neighbour at `o`, which sent it along `-o` in its own frame.
        dp.recv_tag =
            make_tag(spot.id, static_cast<int>(slot), dir_index(negate(o)));
        dp.send_plan = make_row_plan(*plan.fn, dp.send_box);
        dp.recv_plan = make_row_plan(*plan.fn, dp.recv_box);
        dp.send_buf.resize(static_cast<std::size_t>(dp.send_box.count()));
        dp.recv_buf.resize(static_cast<std::size_t>(dp.recv_box.count()));
        plan.dirs.push_back(std::move(dp));
      }
    } else if (grid_->distributed()) {
      // Basic (and the None fallback): one sweep per dimension, low/high
      // face plans preallocated with the corner-propagation extension of
      // the axes already swept — the seed allocated these on every
      // update(); they are now fixed at registration.
      const smpi::CartComm& cart = *grid_->cart();
      const int nd = cart.ndims();
      plan.sweeps.resize(static_cast<std::size_t>(nd));
      for (int d = 0; d < nd; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        if (plan.widths[ud] == 0 || cart.dims()[ud] == 1) {
          continue;
        }
        std::vector<bool> extend(static_cast<std::size_t>(nd), false);
        for (int q = 0; q < d; ++q) {
          extend[static_cast<std::size_t>(q)] =
              plan.widths[static_cast<std::size_t>(q)] > 0;
        }
        for (const int side : {-1, +1}) {
          std::vector<int> o(static_cast<std::size_t>(nd), 0);
          o[ud] = side;
          const int nbr = cart.neighbor(o);
          if (nbr == smpi::kProcNull) {
            continue;
          }
          DirPlan dp;
          dp.neighbor = nbr;
          const BoxPair b = make_boxes(*plan.fn, plan.widths, o, extend);
          dp.send_box = Box{b.slo, b.shi};
          dp.recv_box = Box{b.rlo, b.rhi};
          dp.send_tag =
              make_tag(spot.id, static_cast<int>(slot), dir_index(o));
          dp.recv_tag =
              make_tag(spot.id, static_cast<int>(slot), dir_index(negate(o)));
          dp.send_plan = make_row_plan(*plan.fn, dp.send_box);
          dp.recv_plan = make_row_plan(*plan.fn, dp.recv_box);
          dp.send_buf.resize(static_cast<std::size_t>(dp.send_box.count()));
          dp.recv_buf.resize(static_cast<std::size_t>(dp.recv_box.count()));
          plan.sweeps[ud].push_back(std::move(dp));
        }
      }
    }
    s.fields.push_back(std::move(plan));
  }
  spots_.push_back(std::move(s));
  inflight_time_.push_back(0);
  return spot.id;
}

int HaloExchange::buffer_index(const grid::Function& fn, int time_offset,
                               std::int64_t time) const {
  return fn.buffer_index(time_offset, time);
}

void HaloExchange::pack(const grid::Function& fn, int buf_idx, DirPlan& dp) {
  copy_rows_gather(fn.buffer(buf_idx), dp.send_plan, dp.send_buf.data(),
                   parallel_worthwhile(dp.send_plan));
}

void HaloExchange::unpack(grid::Function& fn, int buf_idx,
                          const DirPlan& dp) {
  copy_rows_scatter(fn.buffer(buf_idx), dp.recv_plan, dp.recv_buf.data(),
                    parallel_worthwhile(dp.recv_plan));
}

void HaloExchange::update(int spot, std::int64_t time) {
  if (!grid_->distributed()) {
    return;
  }
  const obs::Span span("halo.update", obs::Cat::Halo, time, spot);
  obs::events::emit("halo.update", obs::events::EvCat::Halo, time,
                    {{"spot", static_cast<double>(spot)}});
  Spot& s = spots_.at(static_cast<std::size_t>(spot));
  if (mode_ == ir::MpiMode::Basic || mode_ == ir::MpiMode::None) {
    update_basic(s, time);
  } else {
    post_star(s, time);
    complete_star(s, time);
  }
  ++stats_.updates;
  static obs::metrics::Counter& ex = obs::metrics::counter("halo.exchanges");
  ex.add(1);
  if (!s.hoisted) {
    stats_.steps_covered += static_cast<std::uint64_t>(exchange_depth_);
  }
  sync_transport_stats();
}

void HaloExchange::update_basic(Spot& s, std::int64_t time) {
  const smpi::CartComm& cart = *grid_->cart();
  const smpi::Communicator& comm = cart.comm();
  const int nd = cart.ndims();

  // One sweep per dimension; dimensions already swept were extended (at
  // registration) so corner data propagates without explicit diagonal
  // messages.
  for (int d = 0; d < nd; ++d) {
    for (std::size_t slot = 0; slot < s.fields.size(); ++slot) {
      FieldPlan& plan = s.fields[slot];
      const auto ud = static_cast<std::size_t>(d);
      if (plan.widths[ud] == 0 || cart.dims()[ud] == 1) {
        continue;
      }
      const int buf = buffer_index(*plan.fn, plan.time_offset, time);
      std::vector<DirPlan>& faces = plan.sweeps[ud];

      for (DirPlan& dp : faces) {
        s.pending.push_back(comm.irecv(dp.recv_buf.data(),
                                       dp.recv_buf.size() * sizeof(float),
                                       dp.neighbor, dp.recv_tag));
      }
      if (post_fence_) {
        // All ranks reach this barrier for the same (axis, slot)
        // iteration (the skip conditions above are rank-independent), so
        // every send below finds its receive posted: rendezvous
        // guaranteed.
        comm.barrier();
      }
      for (DirPlan& dp : faces) {
        const auto bytes =
            static_cast<std::int64_t>(dp.send_buf.size() * sizeof(float));
        {
          const obs::Span sp("halo.pack", obs::Cat::Pack, bytes, dp.neighbor);
          pack(*plan.fn, buf, dp);
        }
        {
          const obs::Span sp("halo.send", obs::Cat::Send, bytes, dp.neighbor);
          comm.send(dp.send_buf.data(), dp.send_buf.size() * sizeof(float),
                    dp.neighbor, dp.send_tag);
        }
        ++stats_.messages;
        stats_.bytes_sent += dp.send_buf.size() * sizeof(float);
        static obs::metrics::Counter& msgs =
            obs::metrics::counter("halo.messages");
        static obs::metrics::Counter& sent =
            obs::metrics::counter("halo.bytes_sent");
        msgs.add(1);
        sent.add(dp.send_buf.size() * sizeof(float));
      }
      for (std::size_t i = 0; i < faces.size(); ++i) {
        obs::Span wp("halo.wait", obs::Cat::Wait, 0, faces[i].neighbor);
        const smpi::Status st = s.pending[i].wait();
        wp.set_arg(static_cast<std::int64_t>(st.bytes));
        wp.close();
        stats_.bytes_received += st.bytes;
        const obs::Span up("halo.unpack", obs::Cat::Unpack,
                           static_cast<std::int64_t>(st.bytes),
                           faces[i].neighbor);
        unpack(*plan.fn, buf, faces[i]);
      }
      s.pending.clear();
    }
  }
}

void HaloExchange::post_star(Spot& s, std::int64_t time) {
  const smpi::Communicator& comm = grid_->cart()->comm();
  assert(!s.in_flight);
  for (FieldPlan& plan : s.fields) {
    // Post all receives first, then pack+send — the single-step schedule.
    for (DirPlan& dp : plan.dirs) {
      s.pending.push_back(comm.irecv(dp.recv_buf.data(),
                                     dp.recv_buf.size() * sizeof(float),
                                     dp.neighbor, dp.recv_tag));
    }
  }
  if (post_fence_) {
    comm.barrier();
  }
  for (FieldPlan& plan : s.fields) {
    const int buf = buffer_index(*plan.fn, plan.time_offset, time);
    for (DirPlan& dp : plan.dirs) {
      const auto bytes =
          static_cast<std::int64_t>(dp.send_buf.size() * sizeof(float));
      {
        const obs::Span sp("halo.pack", obs::Cat::Pack, bytes, dp.neighbor);
        pack(*plan.fn, buf, dp);
      }
      {
        const obs::Span sp("halo.send", obs::Cat::Send, bytes, dp.neighbor);
        comm.send(dp.send_buf.data(), dp.send_buf.size() * sizeof(float),
                  dp.neighbor, dp.send_tag);
      }
      ++stats_.messages;
      stats_.bytes_sent += dp.send_buf.size() * sizeof(float);
      static obs::metrics::Counter& msgs =
          obs::metrics::counter("halo.messages");
      static obs::metrics::Counter& sent =
          obs::metrics::counter("halo.bytes_sent");
      msgs.add(1);
      sent.add(dp.send_buf.size() * sizeof(float));
    }
  }
  s.in_flight = true;
  inflight_time_[static_cast<std::size_t>(&s - spots_.data())] = time;
}

void HaloExchange::complete_star(Spot& s, std::int64_t time) {
  // s.pending was filled by post_star in fields x dirs order; walk the
  // same order so every wait span carries its peer rank (the cross-rank
  // analyzer matches waits against the peer's sends by that id).
  std::size_t i = 0;
  for (const FieldPlan& plan : s.fields) {
    for (const DirPlan& dp : plan.dirs) {
      obs::Span wp("halo.wait", obs::Cat::Wait, 0, dp.neighbor);
      const smpi::Status st = s.pending.at(i++).wait();
      wp.set_arg(static_cast<std::int64_t>(st.bytes));
      wp.close();
      stats_.bytes_received += st.bytes;
    }
  }
  assert(i == s.pending.size());
  s.pending.clear();
  for (FieldPlan& plan : s.fields) {
    const int buf = buffer_index(*plan.fn, plan.time_offset, time);
    for (DirPlan& dp : plan.dirs) {
      const obs::Span up(
          "halo.unpack", obs::Cat::Unpack,
          static_cast<std::int64_t>(dp.recv_buf.size() * sizeof(float)),
          dp.neighbor);
      unpack(*plan.fn, buf, dp);
    }
  }
  s.in_flight = false;
}

void HaloExchange::start(int spot, std::int64_t time) {
  if (!grid_->distributed()) {
    return;
  }
  const obs::Span span("halo.start", obs::Cat::Halo, time, spot);
  obs::events::emit("halo.start", obs::events::EvCat::Halo, time,
                    {{"spot", static_cast<double>(spot)}});
  Spot& s = spots_.at(static_cast<std::size_t>(spot));
  post_star(s, time);
  ++stats_.starts;
  static obs::metrics::Counter& ex = obs::metrics::counter("halo.exchanges");
  ex.add(1);
  if (!s.hoisted) {
    stats_.steps_covered += static_cast<std::uint64_t>(exchange_depth_);
  }
  sync_transport_stats();
}

void HaloExchange::wait(int spot) {
  if (!grid_->distributed()) {
    return;
  }
  Spot& s = spots_.at(static_cast<std::size_t>(spot));
  if (!s.in_flight) {
    return;
  }
  const obs::Span span("halo.finish", obs::Cat::Halo, 0, spot);
  obs::events::emit(
      "halo.finish", obs::events::EvCat::Halo,
      inflight_time_[static_cast<std::size_t>(spot)],
      {{"spot", static_cast<double>(spot)}});
  complete_star(s, inflight_time_[static_cast<std::size_t>(spot)]);
  sync_transport_stats();
}

void HaloExchange::progress() {
  ++stats_.progress_calls;
  for (Spot& s : spots_) {
    for (const smpi::Request& r : s.pending) {
      (void)r.test();
    }
  }
}

void HaloExchange::sync_transport_stats() {
  const smpi::World& world = grid_->cart()->comm().world();
  const smpi::BufferPool::Stats pool = world.pool().stats();
  stats_.pool_hits = pool.hits;
  stats_.pool_misses = pool.misses;
  stats_.copies_per_message = world.transport().copies_per_message();
  static obs::metrics::Gauge& hits = obs::metrics::gauge("smpi.pool_hits");
  static obs::metrics::Gauge& misses =
      obs::metrics::gauge("smpi.pool_misses");
  static obs::metrics::Gauge& cpm =
      obs::metrics::gauge("halo.copies_per_message");
  hits.set(static_cast<double>(stats_.pool_hits));
  misses.set(static_cast<double>(stats_.pool_misses));
  cpm.set(stats_.copies_per_message);
}

}  // namespace jitfd::runtime
