#include "runtime/interpreter.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <stdexcept>
#include <thread>

#include "core/env.h"
#include "obs/trace.h"

namespace jitfd::runtime {

namespace {

enum class OpCode : std::uint8_t {
  Const,     ///< push immediate
  Scalar,    ///< push scalar binding [a]
  Temp,      ///< push temp slot [a]
  Field,     ///< push field value (descriptor [a])
  Add,       ///< pop a operands, push sum
  Mul,       ///< pop a operands, push product
  PowConst,  ///< pop base, push base^imm
  Pow,       ///< pop exponent then base, push base^exp
  Call,      ///< pop arg, apply builtin [a]
};

enum class Builtin : int { Sqrt, Sin, Cos, Exp, Fabs };

struct Instr {
  OpCode op;
  int a = 0;
  double imm = 0.0;
};

struct FieldRef {
  const grid::Function* fn = nullptr;
  grid::Function* mutable_fn = nullptr;
  int time_offset = 0;
  std::vector<std::int64_t> addend_offsets;  ///< space offset + lpad per dim.
  std::vector<std::int64_t> strides;
};

}  // namespace

struct Interpreter::Compiled {
  std::vector<Instr> code;
  std::vector<FieldRef> field_refs;
  // Store target: exactly one of these is set.
  int store_temp_slot = -1;
  int store_field_ref = -1;  ///< Index into field_refs.
};

namespace {

std::vector<std::int64_t> strides_of(const grid::Function& fn) {
  const auto& ps = fn.padded_shape();
  std::vector<std::int64_t> s(ps.size(), 1);
  for (std::size_t d = ps.size() - 1; d-- > 0;) {
    s[d] = s[d + 1] * ps[d + 1];
  }
  return s;
}

int builtin_id(const std::string& name) {
  if (name == "sqrt") return static_cast<int>(Builtin::Sqrt);
  if (name == "sin") return static_cast<int>(Builtin::Sin);
  if (name == "cos") return static_cast<int>(Builtin::Cos);
  if (name == "exp") return static_cast<int>(Builtin::Exp);
  if (name == "fabs") return static_cast<int>(Builtin::Fabs);
  throw std::invalid_argument("interpreter: unknown builtin " + name);
}

}  // namespace

Interpreter::Interpreter(ir::NodePtr iet, const ir::FieldTable& fields,
                         HaloExchange* halo, std::vector<SparseOp*> sparse_ops)
    : root_(std::move(iet)),
      fields_(&fields),
      halo_(halo),
      sparse_ops_(std::move(sparse_ops)) {}

std::shared_ptr<Interpreter::Compiled> Interpreter::compile(
    const ir::Node& expr_node) {
  auto it = programs_.find(&expr_node);
  if (it != programs_.end()) {
    return it->second;
  }
  auto prog = std::make_shared<Compiled>();

  // Recursive postfix emission.
  const std::function<void(const sym::Ex&)> emit = [&](const sym::Ex& e) {
    const sym::ExprNode& n = e.node();
    switch (n.kind) {
      case sym::Kind::Number:
        prog->code.push_back({OpCode::Const, 0, n.value});
        return;
      case sym::Kind::Symbol: {
        // Temps shadow nothing: scalar bindings and temps use disjoint
        // name sets (temps are compiler-generated "rN").
        auto t = temp_slots_.find(n.name);
        if (t != temp_slots_.end()) {
          prog->code.push_back({OpCode::Temp, t->second, 0.0});
          return;
        }
        auto s = scalar_slots_.find(n.name);
        if (s == scalar_slots_.end()) {
          const int slot = static_cast<int>(scalar_slots_.size());
          s = scalar_slots_.emplace(n.name, slot).first;
          scalar_values_.resize(scalar_slots_.size(), 0.0);
        }
        prog->code.push_back({OpCode::Scalar, s->second, 0.0});
        return;
      }
      case sym::Kind::FieldAccess: {
        FieldRef ref;
        grid::Function& fn = fields_->at(n.field.id);
        ref.fn = &fn;
        ref.mutable_fn = &fn;
        ref.time_offset = n.time_offset;
        ref.strides = strides_of(fn);
        ref.addend_offsets.resize(n.space_offsets.size());
        for (std::size_t d = 0; d < n.space_offsets.size(); ++d) {
          ref.addend_offsets[d] = n.space_offsets[d] + fn.lpad();
        }
        prog->field_refs.push_back(std::move(ref));
        prog->code.push_back(
            {OpCode::Field, static_cast<int>(prog->field_refs.size()) - 1,
             0.0});
        return;
      }
      case sym::Kind::Add:
      case sym::Kind::Mul: {
        for (const sym::Ex& a : n.args) {
          emit(a);
        }
        prog->code.push_back({n.kind == sym::Kind::Add ? OpCode::Add
                                                       : OpCode::Mul,
                              static_cast<int>(n.args.size()), 0.0});
        return;
      }
      case sym::Kind::Pow: {
        emit(n.args[0]);
        if (n.args[1].is_number()) {
          prog->code.push_back({OpCode::PowConst, 0, n.args[1].number()});
        } else {
          emit(n.args[1]);
          prog->code.push_back({OpCode::Pow, 0, 0.0});
        }
        return;
      }
      case sym::Kind::Call:
        emit(n.args[0]);
        prog->code.push_back({OpCode::Call, builtin_id(n.name), 0.0});
        return;
    }
  };
  emit(expr_node.value);

  // Store target.
  if (expr_node.target.kind() == sym::Kind::Symbol) {
    const std::string& name = expr_node.target.node().name;
    auto t = temp_slots_.find(name);
    if (t == temp_slots_.end()) {
      const int slot = static_cast<int>(temp_slots_.size());
      t = temp_slots_.emplace(name, slot).first;
      temp_values_.resize(temp_slots_.size(), 0.0);
    }
    prog->store_temp_slot = t->second;
  } else {
    const sym::ExprNode& n = expr_node.target.node();
    FieldRef ref;
    grid::Function& fn = fields_->at(n.field.id);
    ref.fn = &fn;
    ref.mutable_fn = &fn;
    ref.time_offset = n.time_offset;
    ref.strides = strides_of(fn);
    ref.addend_offsets.resize(n.space_offsets.size());
    for (std::size_t d = 0; d < n.space_offsets.size(); ++d) {
      ref.addend_offsets[d] = n.space_offsets[d] + fn.lpad();
    }
    prog->field_refs.push_back(std::move(ref));
    prog->store_field_ref = static_cast<int>(prog->field_refs.size()) - 1;
  }

  programs_.emplace(&expr_node, prog);
  return prog;
}

namespace {

std::int64_t field_linear(const FieldRef& ref,
                          std::span<const std::int64_t> idx) {
  std::int64_t lin = 0;
  for (std::size_t d = 0; d < idx.size(); ++d) {
    lin += (idx[d] + ref.addend_offsets[d]) * ref.strides[d];
  }
  return lin;
}

int buffer_of(const FieldRef& ref, std::int64_t time) {
  return ref.fn->buffer_index(ref.time_offset, time);
}

}  // namespace

double Interpreter::eval(const Compiled& prog) const {
  double stack[64];
  int sp = 0;
  for (const Instr& ins : prog.code) {
    switch (ins.op) {
      case OpCode::Const:
        stack[sp++] = ins.imm;
        break;
      case OpCode::Scalar:
        stack[sp++] = scalar_values_[static_cast<std::size_t>(ins.a)];
        break;
      case OpCode::Temp:
        stack[sp++] = temp_values_[static_cast<std::size_t>(ins.a)];
        break;
      case OpCode::Field: {
        const FieldRef& ref =
            prog.field_refs[static_cast<std::size_t>(ins.a)];
        const float* buf = ref.fn->buffer(buffer_of(ref, time_));
        stack[sp++] = buf[field_linear(ref, idx_)];
        break;
      }
      case OpCode::Add: {
        double acc = 0.0;
        for (int i = 0; i < ins.a; ++i) {
          acc += stack[--sp];
        }
        stack[sp++] = acc;
        break;
      }
      case OpCode::Mul: {
        double acc = 1.0;
        for (int i = 0; i < ins.a; ++i) {
          acc *= stack[--sp];
        }
        stack[sp++] = acc;
        break;
      }
      case OpCode::PowConst: {
        const double base = stack[--sp];
        const double e = ins.imm;
        double v;
        if (e == -1.0) {
          v = 1.0 / base;
        } else if (e == 2.0) {
          v = base * base;
        } else if (e == -2.0) {
          v = 1.0 / (base * base);
        } else {
          v = std::pow(base, e);
        }
        stack[sp++] = v;
        break;
      }
      case OpCode::Pow: {
        const double e = stack[--sp];
        const double base = stack[--sp];
        stack[sp++] = std::pow(base, e);
        break;
      }
      case OpCode::Call: {
        const double a = stack[sp - 1];
        switch (static_cast<Builtin>(ins.a)) {
          case Builtin::Sqrt:
            stack[sp - 1] = std::sqrt(a);
            break;
          case Builtin::Sin:
            stack[sp - 1] = std::sin(a);
            break;
          case Builtin::Cos:
            stack[sp - 1] = std::cos(a);
            break;
          case Builtin::Exp:
            stack[sp - 1] = std::exp(a);
            break;
          case Builtin::Fabs:
            stack[sp - 1] = std::fabs(a);
            break;
        }
        break;
      }
    }
    assert(sp > 0 && sp < 64);
  }
  assert(sp == 1);
  return stack[0];
}

void Interpreter::run_statement(const ir::Node& stmt) {
  assert(stmt.type == ir::NodeType::Expression);
  const auto prog = compile(stmt);
  // Generated C computes in float; mirror that by rounding through float
  // at every store so JIT and interpreter agree closely.
  const float v = static_cast<float>(eval(*prog));
  if (prog->store_temp_slot >= 0) {
    temp_values_[static_cast<std::size_t>(prog->store_temp_slot)] = v;
  } else {
    const FieldRef& ref =
        prog->field_refs[static_cast<std::size_t>(prog->store_field_ref)];
    float* buf = ref.mutable_fn->buffer(buffer_of(ref, time_));
    buf[field_linear(ref, idx_)] = v;
  }
}

void Interpreter::execute_statements(const std::vector<ir::NodePtr>& body) {
  for (const ir::NodePtr& stmt : body) {
    run_statement(*stmt);
  }
}

void Interpreter::execute_loop(const ir::Node& node) {
  const grid::Grid& grid = fields_->all().front()->grid();
  const auto& shape = grid.local_shape();
  const std::int64_t size = shape[static_cast<std::size_t>(node.dim)];
  // Ghost extensions (communication-avoiding stepping) apply per side,
  // and only toward ranks that exist: ghosts at physical boundaries hold
  // boundary-condition data and must not be touched.
  std::int64_t lo = node.lo.resolve_lo(size, grid.has_neighbor_low(node.dim));
  std::int64_t hi = node.hi.resolve_hi(size, grid.has_neighbor_high(node.dim));
  // Inside an enclosing tile loop over the same dimension: execute the
  // intersection of the bounds with the active window, widened by
  // tile_expand for time-tiled sub-steps.
  const auto win = block_win_.find(node.dim);
  if (win != block_win_.end()) {
    lo = std::max(lo, win->second.first - node.tile_expand);
    hi = std::min(hi, win->second.second + node.tile_expand);
  }

  const bool leaf = !node.body.empty() &&
                    node.body.front()->type == ir::NodeType::Expression;
  for (std::int64_t i = lo; i < hi; ++i) {
    idx_[static_cast<std::size_t>(node.dim)] = i;
    if (leaf) {
      execute_statements(node.body);
    } else {
      for (const ir::NodePtr& child : node.body) {
        execute(*child);
      }
    }
  }
}

void Interpreter::execute_block_loop(const ir::Node& node) {
  const grid::Grid& grid = fields_->all().front()->grid();
  const std::int64_t size = grid.local_shape()[static_cast<std::size_t>(node.dim)];
  const std::int64_t lo =
      node.lo.resolve_lo(size, grid.has_neighbor_low(node.dim));
  const std::int64_t hi =
      node.hi.resolve_hi(size, grid.has_neighbor_high(node.dim));
  for (std::int64_t b = lo; b < hi; b += node.tile) {
    block_win_[node.dim] = {b, b + node.tile};
    for (const ir::NodePtr& child : node.body) {
      execute(*child);
    }
  }
  block_win_.erase(node.dim);
  // Parity with the generated full-mode code, which prods the progress
  // engine once per CORE tile: the interpreter ticks per core Section
  // instead (progress frequency is a perf detail, not a semantic one).
}

void Interpreter::execute(const ir::Node& node) {
  switch (node.type) {
    case ir::NodeType::Callable:
    case ir::NodeType::Section:
      for (const ir::NodePtr& child : node.body) {
        execute(*child);
      }
      // The generated full-mode code calls the progress hook while
      // computing CORE; tick it here for parity.
      if (node.type == ir::NodeType::Section && node.name == "core" &&
          halo_ != nullptr && halo_->mode() == ir::MpiMode::Full) {
        halo_->progress();
      }
      return;
    case ir::NodeType::Expression:
      run_statement(node);
      return;
    case ir::NodeType::TimeLoop:
      throw std::logic_error("interpreter: nested time loop");
    case ir::NodeType::Iteration:
      execute_loop(node);
      return;
    case ir::NodeType::BlockLoop:
      execute_block_loop(node);
      return;
    case ir::NodeType::HaloSpot:
      throw std::logic_error("interpreter: un-lowered HaloSpot in final IET");
    case ir::NodeType::HaloComm:
      assert(halo_ != nullptr);
      switch (node.comm_kind) {
        case ir::HaloCommKind::Update:
          halo_->update(node.spot_id, time_);
          break;
        case ir::HaloCommKind::Start:
          halo_->start(node.spot_id, time_);
          break;
        case ir::HaloCommKind::Wait:
          halo_->wait(node.spot_id);
          break;
      }
      return;
    case ir::NodeType::SparseOp: {
      const obs::Span span("sparse.apply", obs::Cat::Sparse, time_,
                           node.sparse_id);
      sparse_ops_.at(static_cast<std::size_t>(node.sparse_id))->apply(time_);
      return;
    }
    case ir::NodeType::HealthCheck:
      execute_health_check(node);
      return;
  }
}

void Interpreter::execute_health_check(const ir::Node& node) {
  // Same guard the generated kernel bakes in: identical on every rank,
  // so the monitor's collectives stay in lockstep.
  if (health_sink_ == nullptr || health_every_ <= 0 ||
      time_ % health_every_ != 0) {
    return;
  }
  for (const ir::HaloNeed& need : node.needs) {
    const grid::Function& fn = fields_->at(need.field_id);
    const float* buf = fn.buffer(fn.buffer_index(need.time_offset, time_));
    const std::vector<std::int64_t> strides = strides_of(fn);
    const auto& shape = fn.grid().local_shape();
    const auto nd = shape.size();

    obs::health::LocalStats stats;
    stats.min = std::numeric_limits<double>::infinity();
    stats.max = -std::numeric_limits<double>::infinity();

    // Odometer over the owned interior; ghosts are never read (they may
    // hold stale or redundantly-computed values).
    std::vector<std::int64_t> ix(nd, 0);
    bool done = false;
    while (!done) {
      std::int64_t lin = 0;
      for (std::size_t d = 0; d < nd; ++d) {
        lin += (ix[d] + fn.lpad()) * strides[d];
      }
      const double v = static_cast<double>(buf[lin]);
      if (std::isnan(v)) {
        ++stats.nan_count;
      } else if (std::isinf(v)) {
        ++stats.inf_count;
      } else {
        if (v < stats.min) {
          stats.min = v;
        }
        if (v > stats.max) {
          stats.max = v;
        }
        stats.l2sq += v * v;
      }
      std::size_t d = nd;
      for (;;) {
        if (d == 0) {
          done = true;
          break;
        }
        --d;
        if (++ix[d] < shape[d]) {
          break;
        }
        ix[d] = 0;
      }
    }
    health_sink_->on_check(need.field_id, time_, stats);
  }
}

void Interpreter::run(std::int64_t time_m, std::int64_t time_M,
                      const std::map<std::string, double>& scalars) {
  assert(root_->type == ir::NodeType::Callable);
  idx_.assign(
      static_cast<std::size_t>(fields_->all().front()->grid().ndims()), 0);

  // Pre-compile every Expression so scalar slots exist before binding.
  const std::function<void(const ir::Node&)> precompile =
      [&](const ir::Node& n) {
        if (n.type == ir::NodeType::Expression) {
          compile(n);
          return;
        }
        for (const ir::NodePtr& c : n.body) {
          precompile(*c);
        }
      };
  precompile(*root_);

  for (const auto& [name, slot] : scalar_slots_) {
    const auto it = scalars.find(name);
    if (it == scalars.end()) {
      throw std::invalid_argument("interpreter: unbound scalar " + name);
    }
    scalar_values_[static_cast<std::size_t>(slot)] = it->second;
  }

  // Constructed-imbalance hook for the wait-state analyzer: when
  // JITFD_DELAY_RANK names this rank, every timestep's compute is
  // padded by JITFD_DELAY_US microseconds. Re-read per run (not cached)
  // so tests can retarget the slow rank between runs.
  std::int64_t delay_us = 0;
  if (env::is_set("JITFD_DELAY_RANK") && env::is_set("JITFD_DELAY_US")) {
    const grid::Grid& g = fields_->all().front()->grid();
    const int rank = g.distributed() ? g.cart()->comm().rank() : 0;
    if (env::get_int("JITFD_DELAY_RANK", -1) == rank) {
      delay_us = env::get_int("JITFD_DELAY_US", 0);
    }
  }
  const auto step_delay = [&](std::int64_t t) {
    if (delay_us > 0) {
      const obs::Span span("compute.delay", obs::Cat::Compute, t);
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  };

  // Execute: prologue statements and hoisted exchanges, then the time loop.
  time_ = time_m;
  // Halo and sparse nodes trace themselves; everything else in a step
  // body is stencil computation.
  const auto run_step_children = [&](const std::vector<ir::NodePtr>& children,
                                     std::int64_t t) {
    for (const ir::NodePtr& child : children) {
      if (child->type == ir::NodeType::HaloComm ||
          child->type == ir::NodeType::SparseOp ||
          child->type == ir::NodeType::HealthCheck) {
        execute(*child);
        continue;
      }
      const char* name = "compute";
      if (child->type == ir::NodeType::Section) {
        if (child->name == "core") {
          name = "compute.core";
        } else if (child->name == "remainder") {
          name = "compute.remainder";
        }
      }
      const obs::Span span(name, obs::Cat::Compute, t);
      execute(*child);
    }
  };

  for (const ir::NodePtr& top : root_->body) {
    if (top->type != ir::NodeType::TimeLoop) {
      execute(*top);
      continue;
    }
    if (top->time_stride <= 1) {
      for (std::int64_t t = time_m; t <= time_M; ++t) {
        time_ = t;
        if (health_sink_ != nullptr) {
          health_sink_->on_step(t);
        }
        const obs::Span step("step", obs::Cat::Run, t);
        step_delay(t);
        run_step_children(top->body, t);
      }
      continue;
    }
    // Communication-avoiding strips: one exchange per strip, then the
    // sub-steps; shifted sub-steps are skipped when the final strip runs
    // past time_M (their full-depth redundancy makes that safe).
    for (std::int64_t strip = time_m; strip <= time_M;
         strip += top->time_stride) {
      const obs::Span strip_span("strip", obs::Cat::Run, strip);
      for (const ir::NodePtr& child : top->body) {
        if (child->type == ir::NodeType::HaloComm) {
          time_ = strip;
          execute(*child);
          continue;
        }
        if (child->type == ir::NodeType::BlockLoop) {
          // Time-tiled walker: the sub-step sequence advances inside each
          // tile window, with the usual partial-strip guard and time
          // binding replicated per window. Per-step sinks/spans stay with
          // the trailing health sub-steps (a sub-step only completes once
          // all windows have run).
          const obs::Span walk_span("compute", obs::Cat::Compute, strip);
          const grid::Grid& g = fields_->all().front()->grid();
          const std::int64_t bsize =
              g.local_shape()[static_cast<std::size_t>(child->dim)];
          const std::int64_t blo =
              child->lo.resolve_lo(bsize, g.has_neighbor_low(child->dim));
          const std::int64_t bhi =
              child->hi.resolve_hi(bsize, g.has_neighbor_high(child->dim));
          for (std::int64_t b = blo; b < bhi; b += child->tile) {
            block_win_[child->dim] = {b, b + child->tile};
            for (const ir::NodePtr& sub : child->body) {
              if (strip + sub->time_shift > time_M) {
                continue;
              }
              time_ = strip + sub->time_shift;
              for (const ir::NodePtr& inner : sub->body) {
                execute(*inner);
              }
            }
          }
          block_win_.erase(child->dim);
          continue;
        }
        if (strip + child->time_shift > time_M) {
          continue;
        }
        time_ = strip + child->time_shift;
        if (health_sink_ != nullptr) {
          health_sink_->on_step(time_);
        }
        const obs::Span step("step", obs::Cat::Run, time_);
        step_delay(time_);
        run_step_children(child->body, time_);
      }
    }
  }
}

}  // namespace jitfd::runtime
