#include "runtime/rowcopy.h"

#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#define JITFD_ROWCOPY_X86 1
#include <immintrin.h>
#endif

namespace jitfd::runtime {

namespace {

using GatherFn = void (*)(const float*, const std::int64_t*, std::int64_t,
                          std::int64_t, float*);
using ScatterFn = void (*)(float*, const std::int64_t*, std::int64_t,
                           std::int64_t, const float*);

// --- Thin rows: compile-time length, copies inline to a couple of moves --

template <int N>
void gather_fixed(const float* base, const std::int64_t* offs, std::int64_t n,
                  std::int64_t /*row*/, float* dst) {
  for (std::int64_t r = 0; r < n; ++r) {
    std::memcpy(dst, base + offs[r], N * sizeof(float));
    dst += N;
  }
}

template <int N>
void scatter_fixed(float* base, const std::int64_t* offs, std::int64_t n,
                   std::int64_t /*row*/, const float* src) {
  for (std::int64_t r = 0; r < n; ++r) {
    std::memcpy(base + offs[r], src, N * sizeof(float));
    src += N;
  }
}

// --- Generic fallback ----------------------------------------------------

void gather_memcpy(const float* base, const std::int64_t* offs,
                   std::int64_t n, std::int64_t row, float* dst) {
  const std::size_t bytes = static_cast<std::size_t>(row) * sizeof(float);
  for (std::int64_t r = 0; r < n; ++r) {
    std::memcpy(dst, base + offs[r], bytes);
    dst += row;
  }
}

void scatter_memcpy(float* base, const std::int64_t* offs, std::int64_t n,
                    std::int64_t row, const float* src) {
  const std::size_t bytes = static_cast<std::size_t>(row) * sizeof(float);
  for (std::int64_t r = 0; r < n; ++r) {
    std::memcpy(base + offs[r], src, bytes);
    src += row;
  }
}

// --- Long rows: explicit vector loops (x86) ------------------------------
//
// libc memcpy pays size dispatch and alignment probing on every call; at
// the 0.5-2 KiB rows of halo faces a plain unrolled unaligned vector loop
// is ~1.5x faster and identical in semantics.

#ifdef JITFD_ROWCOPY_X86

__attribute__((target("avx512f"))) void gather_long_avx512(
    const float* base, const std::int64_t* offs, std::int64_t n,
    std::int64_t row, float* dst) {
  const std::int64_t vec = row & ~std::int64_t{15};
  const __mmask16 tail =
      static_cast<__mmask16>((1U << (row - vec)) - 1U);
  for (std::int64_t r = 0; r < n; ++r) {
    const float* src = base + offs[r];
    std::int64_t k = 0;
    for (; k < vec; k += 16) {
      _mm512_storeu_ps(dst + k, _mm512_loadu_ps(src + k));
    }
    if (tail != 0) {
      _mm512_mask_storeu_ps(dst + k, tail,
                            _mm512_maskz_loadu_ps(tail, src + k));
    }
    dst += row;
  }
}

__attribute__((target("avx512f"))) void scatter_long_avx512(
    float* base, const std::int64_t* offs, std::int64_t n, std::int64_t row,
    const float* src) {
  const std::int64_t vec = row & ~std::int64_t{15};
  const __mmask16 tail =
      static_cast<__mmask16>((1U << (row - vec)) - 1U);
  for (std::int64_t r = 0; r < n; ++r) {
    float* dst = base + offs[r];
    std::int64_t k = 0;
    for (; k < vec; k += 16) {
      _mm512_storeu_ps(dst + k, _mm512_loadu_ps(src + k));
    }
    if (tail != 0) {
      _mm512_mask_storeu_ps(dst + k, tail,
                            _mm512_maskz_loadu_ps(tail, src + k));
    }
    src += row;
  }
}

__attribute__((target("avx2"))) void gather_long_avx2(
    const float* base, const std::int64_t* offs, std::int64_t n,
    std::int64_t row, float* dst) {
  const std::int64_t vec = row & ~std::int64_t{7};
  for (std::int64_t r = 0; r < n; ++r) {
    const float* src = base + offs[r];
    std::int64_t k = 0;
    for (; k < vec; k += 8) {
      _mm256_storeu_ps(dst + k, _mm256_loadu_ps(src + k));
    }
    if (k < row) {
      std::memcpy(dst + k, src + k,
                  static_cast<std::size_t>(row - k) * sizeof(float));
    }
    dst += row;
  }
}

__attribute__((target("avx2"))) void scatter_long_avx2(
    float* base, const std::int64_t* offs, std::int64_t n, std::int64_t row,
    const float* src) {
  const std::int64_t vec = row & ~std::int64_t{7};
  for (std::int64_t r = 0; r < n; ++r) {
    float* dst = base + offs[r];
    std::int64_t k = 0;
    for (; k < vec; k += 8) {
      _mm256_storeu_ps(dst + k, _mm256_loadu_ps(src + k));
    }
    if (k < row) {
      std::memcpy(dst + k, src + k,
                  static_cast<std::size_t>(row - k) * sizeof(float));
    }
    src += row;
  }
}

enum class Isa { Generic, Avx2, Avx512 };

Isa detect_isa() {
  if (__builtin_cpu_supports("avx512f")) {
    return Isa::Avx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return Isa::Avx2;
  }
  return Isa::Generic;
}

Isa host_isa() {
  static const Isa isa = detect_isa();
  return isa;
}

#endif  // JITFD_ROWCOPY_X86

// --- Dispatch ------------------------------------------------------------

GatherFn pick_gather(std::int64_t row) {
  switch (row) {
    case 1: return gather_fixed<1>;
    case 2: return gather_fixed<2>;
    case 3: return gather_fixed<3>;
    case 4: return gather_fixed<4>;
    case 5: return gather_fixed<5>;
    case 6: return gather_fixed<6>;
    case 7: return gather_fixed<7>;
    case 8: return gather_fixed<8>;
    case 12: return gather_fixed<12>;
    case 16: return gather_fixed<16>;
    default: break;
  }
#ifdef JITFD_ROWCOPY_X86
  if (row >= 16) {
    switch (host_isa()) {
      case Isa::Avx512: return gather_long_avx512;
      case Isa::Avx2: return gather_long_avx2;
      case Isa::Generic: break;
    }
  }
#endif
  return gather_memcpy;
}

ScatterFn pick_scatter(std::int64_t row) {
  switch (row) {
    case 1: return scatter_fixed<1>;
    case 2: return scatter_fixed<2>;
    case 3: return scatter_fixed<3>;
    case 4: return scatter_fixed<4>;
    case 5: return scatter_fixed<5>;
    case 6: return scatter_fixed<6>;
    case 7: return scatter_fixed<7>;
    case 8: return scatter_fixed<8>;
    case 12: return scatter_fixed<12>;
    case 16: return scatter_fixed<16>;
    default: break;
  }
#ifdef JITFD_ROWCOPY_X86
  if (row >= 16) {
    switch (host_isa()) {
      case Isa::Avx512: return scatter_long_avx512;
      case Isa::Avx2: return scatter_long_avx2;
      case Isa::Generic: break;
    }
  }
#endif
  return scatter_memcpy;
}

}  // namespace

void copy_rows_gather(const float* base, const RowPlan& plan, float* dst,
                      bool parallel) {
  const std::int64_t n = static_cast<std::int64_t>(plan.offsets.size());
  if (n == 0 || plan.row <= 0) {
    return;
  }
  const GatherFn fn = pick_gather(plan.row);
  const std::int64_t* offs = plan.offsets.data();
#if defined(_OPENMP) && !defined(__SANITIZE_THREAD__)
  if (parallel) {
    const std::int64_t row = plan.row;
#pragma omp parallel
    {
      const std::int64_t nt = omp_get_num_threads();
      const std::int64_t chunk = (n + nt - 1) / nt;
      const std::int64_t lo = omp_get_thread_num() * chunk;
      const std::int64_t hi = lo + chunk < n ? lo + chunk : n;
      if (lo < hi) {
        fn(base, offs + lo, hi - lo, row, dst + lo * row);
      }
    }
    return;
  }
#else
  (void)parallel;
#endif
  fn(base, offs, n, plan.row, dst);
}

void copy_rows_scatter(float* base, const RowPlan& plan, const float* src,
                       bool parallel) {
  const std::int64_t n = static_cast<std::int64_t>(plan.offsets.size());
  if (n == 0 || plan.row <= 0) {
    return;
  }
  const ScatterFn fn = pick_scatter(plan.row);
  const std::int64_t* offs = plan.offsets.data();
#if defined(_OPENMP) && !defined(__SANITIZE_THREAD__)
  if (parallel) {
    const std::int64_t row = plan.row;
#pragma omp parallel
    {
      const std::int64_t nt = omp_get_num_threads();
      const std::int64_t chunk = (n + nt - 1) / nt;
      const std::int64_t lo = omp_get_thread_num() * chunk;
      const std::int64_t hi = lo + chunk < n ? lo + chunk : n;
      if (lo < hi) {
        fn(base, offs + lo, hi - lo, row, src + lo * row);
      }
    }
    return;
  }
#else
  (void)parallel;
#endif
  fn(base, offs, n, plan.row, src);
}

}  // namespace jitfd::runtime
