// Halo-exchange runtime: the three computation/communication patterns of
// the paper (Section III-h, Table I), executing over the SMPI substrate.
//
//   basic    — blocking, face-only messages, issued as one multi-step
//              sweep per dimension (corner data propagates through the
//              sweeps), exchange buffers allocated at call time.
//   diagonal — single-step: all (up to 26 in 3D) neighbours including
//              diagonals posted at once, preallocated buffers, blocking
//              completion.
//   full     — same message set as diagonal but asynchronous: start()
//              posts the exchanges, computation proceeds on the CORE
//              region, wait() completes and unpacks, after which the
//              remainder regions are computed. progress() is the
//              MPI_Test hook the generated code calls inside blocked
//              loops to prod the progress engine.
//
// Both the IET interpreter and the JIT-compiled generated code drive this
// runtime through the same spot-id interface, so pattern correctness is
// exercised by every functional test.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/function.h"
#include "ir/lower.h"
#include "smpi/cart.h"

namespace jitfd::runtime {

/// Per-exchange statistics (used by tests asserting Table I message
/// counts and by the measured benchmarks).
struct HaloStats {
  std::uint64_t updates = 0;   ///< Blocking update() calls completed.
  std::uint64_t starts = 0;    ///< Asynchronous start() calls.
  std::uint64_t messages = 0;  ///< Point-to-point messages sent.
  std::uint64_t bytes_sent = 0;
  std::uint64_t progress_calls = 0;
};

class HaloExchange {
 public:
  /// `grid` must outlive the exchanger. For a serial grid all operations
  /// are no-ops (the compiler emits no halo calls in that case anyway).
  HaloExchange(const grid::Grid& grid, ir::MpiMode mode);

  ir::MpiMode mode() const { return mode_; }

  /// Register one lowered halo spot. Must be called in spot-id order
  /// (ids are assigned 0,1,... by the compiler); `fields` resolves the
  /// symbolic field ids to data. Preallocates buffers for the
  /// diagonal/full patterns.
  int register_spot(const ir::SpotInfo& spot, const ir::FieldTable& fields);

  /// Blocking exchange of every need of `spot` at absolute time step
  /// `time` (mapped to modulo buffer indices per field).
  void update(int spot, std::int64_t time);

  /// Post the asynchronous exchange (full mode).
  void start(int spot, std::int64_t time);
  /// Complete the asynchronous exchange and unpack (full mode).
  void wait(int spot);
  /// Nonblocking progress probe (the generated code's MPI_Test call).
  void progress();

  const HaloStats& stats() const { return stats_; }

  /// An axis-aligned box in raw (ghost-inclusive) local coordinates.
  /// Public so the pack/unpack row iterator (and its tests) can use it.
  struct Box {
    std::vector<std::int64_t> lo;
    std::vector<std::int64_t> hi;
    std::int64_t count() const;
  };

 private:

  /// One neighbour message of one field of one spot.
  struct DirPlan {
    int neighbor = smpi::kProcNull;
    int send_tag = 0;
    int recv_tag = 0;
    Box send_box;
    Box recv_box;
    std::vector<float> send_buf;  ///< Preallocated (diagonal/full).
    std::vector<float> recv_buf;
  };

  struct FieldPlan {
    grid::Function* fn = nullptr;
    int time_offset = 0;
    std::vector<int> widths;
    std::vector<DirPlan> dirs;  ///< Star neighbourhood (diagonal/full).
  };

  struct Spot {
    std::vector<FieldPlan> fields;
    std::vector<smpi::Request> pending;  ///< Receive requests in flight.
    bool in_flight = false;
  };

  int buffer_index(const grid::Function& fn, int time_offset,
                   std::int64_t time) const;
  void pack(const grid::Function& fn, int buf_idx, const Box& box,
            std::vector<float>& out) const;
  void unpack(grid::Function& fn, int buf_idx, const Box& box,
              const std::vector<float>& in) const;

  void update_basic(Spot& spot, std::int64_t time);
  void post_star(Spot& spot, std::int64_t time);
  void complete_star(Spot& spot, std::int64_t time);

  const grid::Grid* grid_;
  ir::MpiMode mode_;
  std::vector<Spot> spots_;
  std::vector<std::int64_t> inflight_time_;  ///< Per spot, for unpack.
  HaloStats stats_;
};

}  // namespace jitfd::runtime
