// Halo-exchange runtime: the three computation/communication patterns of
// the paper (Section III-h, Table I), executing over the SMPI substrate.
//
//   basic    — blocking, face-only messages, issued as one multi-step
//              sweep per dimension (corner data propagates through the
//              sweeps); exchange buffers and row plans preallocated at
//              register_spot() time, like the other patterns.
//   diagonal — single-step: all (up to 26 in 3D) neighbours including
//              diagonals posted at once, preallocated buffers, blocking
//              completion.
//   full     — same message set as diagonal but asynchronous: start()
//              posts the exchanges, computation proceeds on the CORE
//              region, wait() completes and unpacks, after which the
//              remainder regions are computed. progress() is the
//              MPI_Test hook the generated code calls inside blocked
//              loops to prod the progress engine.
//
// The steady-state hot path allocates nothing: every message direction
// owns preallocated pack/unpack buffers plus a precomputed RowPlan, and
// pack/unpack are contiguous-row copies (OpenMP-chunked above a volume
// threshold) through runtime/rowcopy.h. Together with the SMPI
// single-copy rendezvous delivery, a pre-posted receive moves each halo
// byte exactly three times: field -> send buffer -> recv buffer -> field.
//
// Both the IET interpreter and the JIT-compiled generated code drive this
// runtime through the same spot-id interface, so pattern correctness is
// exercised by every functional test.
#pragma once

#include <cstdint>
#include <vector>

#include "grid/function.h"
#include "ir/lower.h"
#include "runtime/rowcopy.h"
#include "smpi/cart.h"

namespace jitfd::runtime {

/// Per-exchange statistics (used by tests asserting Table I message
/// counts and by the measured benchmarks).
struct HaloStats {
  std::uint64_t updates = 0;   ///< Blocking update() calls completed.
  std::uint64_t starts = 0;    ///< Asynchronous start() calls.
  std::uint64_t messages = 0;  ///< Point-to-point messages sent.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;  ///< Sum of matched receive sizes.
  std::uint64_t progress_calls = 0;
  /// Timesteps amortized by per-step exchanges so far: each non-hoisted
  /// update()/start() covers exchange_depth steps. With communication-
  /// avoiding stepping, messages/steps_covered stays at the depth-1
  /// per-step message count while messages/updates grows with depth.
  std::uint64_t steps_covered = 0;
  /// Gauge: the operator's effective exchange depth (1 = per-step).
  int exchange_depth = 1;
  // Transport-level counters sampled from the World (shared across the
  // ranks of one run; see smpi::TransportCounters).
  std::uint64_t pool_hits = 0;    ///< Unexpected payloads served pooled.
  std::uint64_t pool_misses = 0;  ///< Unexpected payloads allocated.
  double copies_per_message = 0.0;  ///< 1.0 when fully rendezvous.
};

class HaloExchange {
 public:
  /// `grid` must outlive the exchanger. For a serial grid all operations
  /// are no-ops (the compiler emits no halo calls in that case anyway).
  HaloExchange(const grid::Grid& grid, ir::MpiMode mode);

  ir::MpiMode mode() const { return mode_; }

  /// Declare the operator's effective exchange depth (see
  /// CompileOptions::exchange_depth) before registering spots: each
  /// non-hoisted exchange is then accounted as covering `depth`
  /// timesteps in HaloStats::steps_covered.
  void set_exchange_depth(int depth);

  /// Register one lowered halo spot. Must be called in spot-id order
  /// (ids are assigned 0,1,... by the compiler); `fields` resolves the
  /// symbolic field ids to data. Preallocates exchange buffers and row
  /// plans for every pattern.
  int register_spot(const ir::SpotInfo& spot, const ir::FieldTable& fields);

  /// Blocking exchange of every need of `spot` at absolute time step
  /// `time` (mapped to modulo buffer indices per field).
  void update(int spot, std::int64_t time);

  /// Post the asynchronous exchange (full mode).
  void start(int spot, std::int64_t time);
  /// Complete the asynchronous exchange and unpack (full mode).
  void wait(int spot);
  /// Nonblocking progress probe (the generated code's MPI_Test call).
  void progress();

  /// When enabled, a world barrier separates the receive-posting phase
  /// from the pack/send phase of every exchange, guaranteeing that each
  /// message finds its receive already posted — i.e. single-copy
  /// rendezvous delivery (copies_per_message == 1) with the unexpected
  /// queue and its pool never touched. Collective: every rank must set
  /// the same value. Used by tests asserting the zero-copy claim and
  /// useful for workloads whose unexpected queues grow pathologically.
  void set_post_fence(bool on) { post_fence_ = on; }
  bool post_fence() const { return post_fence_; }

  const HaloStats& stats() const { return stats_; }

  /// An axis-aligned box in raw (ghost-inclusive) local coordinates.
  /// Public so the pack/unpack row iterator (and its tests) can use it.
  struct Box {
    std::vector<std::int64_t> lo;
    std::vector<std::int64_t> hi;
    std::int64_t count() const;
  };

 private:

  /// One neighbour message of one field of one spot. All geometry —
  /// boxes, row plans, pack buffers — is fixed at registration.
  struct DirPlan {
    int neighbor = smpi::kProcNull;
    int send_tag = 0;
    int recv_tag = 0;
    Box send_box;
    Box recv_box;
    RowPlan send_plan;
    RowPlan recv_plan;
    std::vector<float> send_buf;
    std::vector<float> recv_buf;
  };

  struct FieldPlan {
    grid::Function* fn = nullptr;
    int time_offset = 0;
    std::vector<int> widths;
    std::vector<DirPlan> dirs;  ///< Star neighbourhood (diagonal/full).
    /// Basic pattern: per sweep axis, the low/high face plans (0-2
    /// entries; boxes carry the corner-propagation extension of the
    /// already-swept axes).
    std::vector<std::vector<DirPlan>> sweeps;
  };

  struct Spot {
    std::vector<FieldPlan> fields;
    std::vector<smpi::Request> pending;  ///< Receive requests in flight.
    bool in_flight = false;
    bool hoisted = false;  ///< One-off pre-loop exchange (no step credit).
  };

  int buffer_index(const grid::Function& fn, int time_offset,
                   std::int64_t time) const;
  void pack(const grid::Function& fn, int buf_idx, DirPlan& dp);
  void unpack(grid::Function& fn, int buf_idx, const DirPlan& dp);

  void update_basic(Spot& spot, std::int64_t time);
  void post_star(Spot& spot, std::int64_t time);
  void complete_star(Spot& spot, std::int64_t time);
  void sync_transport_stats();

  const grid::Grid* grid_;
  ir::MpiMode mode_;
  int exchange_depth_ = 1;
  bool post_fence_ = false;
  std::vector<Spot> spots_;
  std::vector<std::int64_t> inflight_time_;  ///< Per spot, for unpack.
  HaloStats stats_;
};

/// Build the row plan of `box` over the padded storage of `fn` (shared
/// with tests and benchmarks; the runtime caches these per direction).
RowPlan make_row_plan(const grid::Function& fn, const HaloExchange::Box& box);

/// Plan-less convenience pack/unpack of one box (test/bench entry
/// points; production uses cached plans via the HaloExchange internals).
void pack_box(const grid::Function& fn, int buf_idx,
              const HaloExchange::Box& box, float* out, bool parallel = false);
void unpack_box(grid::Function& fn, int buf_idx,
                const HaloExchange::Box& box, const float* in,
                bool parallel = false);

}  // namespace jitfd::runtime
