// Contiguous-row copy engine for halo pack/unpack.
//
// A RowPlan is the precomputed geometry of one box: the linear offset of
// the first element of every innermost-dimension run plus the shared run
// length. Plans are built once (at spot registration) so the steady-state
// hot path is pure data movement: a flat loop of fixed-stride memcpys with
// no index arithmetic, no carry propagation and no allocation.
//
// The copy kernels are dispatched once per call on the row length and the
// host ISA: thin rows (the strided full-mode remainder faces, where the
// run is just the halo width) use compile-time-sized inline copies; long
// rows use 64-byte AVX-512 / 32-byte AVX2 vector loops when the CPU has
// them (beating the per-call dispatch overhead of libc memcpy at the
// 0.5-2 KiB row sizes halo faces produce), falling back to memcpy
// otherwise. With `parallel`, rows are chunked statically across OpenMP
// threads; callers gate that on total volume.
#pragma once

#include <cstdint>
#include <vector>

namespace jitfd::runtime {

/// Geometry of one packed box: `offsets[r]` is the linear offset (in
/// floats, from the field buffer base) of row r; every row is `row`
/// floats long and rows are tightly concatenated in the packed buffer.
struct RowPlan {
  std::vector<std::int64_t> offsets;
  std::int64_t row = 0;

  std::int64_t total() const {
    return static_cast<std::int64_t>(offsets.size()) * row;
  }
};

/// Gather (pack): dst[r*row .. r*row+row) = base[offsets[r] ..).
void copy_rows_gather(const float* base, const RowPlan& plan, float* dst,
                      bool parallel = false);

/// Scatter (unpack): base[offsets[r] ..) = src[r*row .. r*row+row).
void copy_rows_scatter(float* base, const RowPlan& plan, const float* src,
                       bool parallel = false);

/// Volume threshold (bytes) above which the halo runtime asks for the
/// threaded path; shared with the benchmarks so both measure the same
/// policy.
inline constexpr std::int64_t kParallelCopyBytes = 1 << 20;

}  // namespace jitfd::runtime
