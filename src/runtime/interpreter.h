// Reference interpreter for the lowered IET.
//
// Executes exactly the tree the code generator would emit C for — loops,
// scalar temporaries, field stores, halo communication calls and sparse
// operations — so JIT-compiled generated code can be validated against it
// bit-for-bit-ish (same arithmetic order up to float rounding), and so
// tests run without invoking an external compiler.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/iet.h"
#include "ir/lower.h"
#include "obs/health.h"
#include "runtime/halo.h"

namespace jitfd::runtime {

/// Off-grid operation hook (source injection / receiver interpolation).
/// Implemented by the sparse layer; the interpreter and the JIT shim both
/// dispatch SparseOp IET nodes to it.
class SparseOp {
 public:
  virtual ~SparseOp() = default;
  /// Apply at absolute time step `time`.
  virtual void apply(std::int64_t time) = 0;
};

class Interpreter {
 public:
  /// `iet` is the lowered Callable; `fields` resolves field ids; `halo`
  /// may be null for serial runs with no HaloComm nodes. `sparse_ops`
  /// indexes SparseOp nodes by their sparse_id.
  Interpreter(ir::NodePtr iet, const ir::FieldTable& fields,
              HaloExchange* halo, std::vector<SparseOp*> sparse_ops = {});

  /// Run time steps time_m..time_M inclusive with the given scalar
  /// bindings (must cover every free Symbol: dt, h_x, ...).
  void run(std::int64_t time_m, std::int64_t time_M,
           const std::map<std::string, double>& scalars);

  /// Install the numerical-health sink: HealthCheck nodes reduce the
  /// owned interior and report every `every` steps (0 disables; `sink`
  /// also receives per-step notifications, mirroring the generated
  /// kernel's ops->step/ops->health hooks).
  void set_health(obs::health::Sink* sink, std::int64_t every) {
    health_sink_ = sink;
    health_every_ = every;
  }

 private:
  struct Compiled;  // Opaque per-expression program.

  void execute(const ir::Node& node);
  void execute_loop(const ir::Node& node);
  void execute_block_loop(const ir::Node& node);
  void run_statement(const ir::Node& stmt);
  void execute_statements(const std::vector<ir::NodePtr>& body);

  double eval(const Compiled& program) const;

  void execute_health_check(const ir::Node& node);

  ir::NodePtr root_;
  const ir::FieldTable* fields_;
  HaloExchange* halo_;
  std::vector<SparseOp*> sparse_ops_;
  obs::health::Sink* health_sink_ = nullptr;
  std::int64_t health_every_ = 0;

  // Execution state.
  std::vector<double> scalar_values_;
  std::map<std::string, int> scalar_slots_;
  std::vector<double> temp_values_;
  std::map<std::string, int> temp_slots_;
  std::int64_t time_ = 0;
  std::vector<std::int64_t> idx_;  ///< Current space iteration point.
  /// Active tile windows: dim -> [start, start + tile). Iterations over a
  /// windowed dimension execute the intersection of their own bounds with
  /// the window (widened by their tile_expand for time-tiled sub-steps).
  std::map<int, std::pair<std::int64_t, std::int64_t>> block_win_;

  // Per-expression compiled programs, cached by Node pointer.
  std::map<const ir::Node*, std::shared_ptr<Compiled>> programs_;
  std::shared_ptr<Compiled> compile(const ir::Node& expr_node);
};

}  // namespace jitfd::runtime
