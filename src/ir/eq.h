// User-facing equations and their lowered form.
//
// An Eq assigns a symbolic right-hand side to a field access (typically
// u.forward()). Lowering resolves which Function objects the expressions
// reference and derives the per-dimension read extents that drive both
// loop-bound generation and halo-exchange detection.
#pragma once

#include <map>
#include <vector>

#include "grid/function.h"
#include "symbolic/expr.h"

namespace jitfd::ir {

/// lhs must be a single FieldAccess with zero space offsets (writes are
/// aligned with the iteration point, as in all the paper's kernels).
struct Eq {
  sym::Ex lhs;
  sym::Ex rhs;

  Eq(sym::Ex lhs_in, sym::Ex rhs_in);

  /// Field written by this equation.
  const sym::FieldId& write_field() const { return lhs.node().field; }
  /// Time offset written (e.g. +1 for u.forward()).
  int write_time_offset() const { return lhs.node().time_offset; }
};

/// Per-field read footprint: the maximum absolute space offset read along
/// each dimension, split per time offset. Drives halo widths.
struct ReadFootprint {
  sym::FieldId field;
  /// time offset -> per-dimension maximum |offset| over all reads.
  std::map<int, std::vector<int>> widths_by_time;
};

/// Harvest the read footprints of a set of right-hand sides.
std::vector<ReadFootprint> read_footprints(const std::vector<sym::Ex>& rhss);

/// Registry mapping symbolic FieldIds back to the Function objects that
/// own the data. The Operator populates it from the equations it is given.
class FieldTable {
 public:
  void add(grid::Function* f);
  grid::Function* find(int field_id) const;
  grid::Function& at(int field_id) const;
  const std::vector<grid::Function*>& all() const { return fields_; }

 private:
  std::vector<grid::Function*> fields_;
};

}  // namespace jitfd::ir
