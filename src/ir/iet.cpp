#include "ir/iet.h"

#include <sstream>

namespace jitfd::ir {

namespace {

NodePtr finish(Node&& n) { return std::make_shared<const Node>(std::move(n)); }

}  // namespace

NodePtr make_callable(std::string name, std::vector<NodePtr> body) {
  Node n;
  n.type = NodeType::Callable;
  n.name = std::move(name);
  n.body = std::move(body);
  return finish(std::move(n));
}

NodePtr make_expression(sym::Ex target, sym::Ex value) {
  Node n;
  n.type = NodeType::Expression;
  n.target = std::move(target);
  n.value = std::move(value);
  return finish(std::move(n));
}

NodePtr make_iteration(int dim, Bound lo, Bound hi, LoopProps props,
                       std::vector<NodePtr> body, std::int64_t tile_expand) {
  Node n;
  n.type = NodeType::Iteration;
  n.dim = dim;
  n.lo = lo;
  n.hi = hi;
  n.props = props;
  n.tile_expand = tile_expand;
  n.body = std::move(body);
  return finish(std::move(n));
}

NodePtr make_block_loop(int dim, Bound lo, Bound hi, std::int64_t tile,
                        LoopProps props, std::vector<NodePtr> body) {
  Node n;
  n.type = NodeType::BlockLoop;
  n.dim = dim;
  n.lo = lo;
  n.hi = hi;
  n.tile = tile;
  n.props = props;
  n.body = std::move(body);
  return finish(std::move(n));
}

NodePtr make_time_loop(std::vector<NodePtr> body) {
  return make_time_loop(std::move(body), 1);
}

NodePtr make_time_loop(std::vector<NodePtr> body, std::int64_t stride) {
  Node n;
  n.type = NodeType::TimeLoop;
  n.time_stride = stride;
  n.body = std::move(body);
  return finish(std::move(n));
}

NodePtr make_substep(std::int64_t shift, std::vector<NodePtr> body) {
  Node n;
  n.type = NodeType::Section;
  n.name = "substep";
  n.time_shift = shift;
  n.body = std::move(body);
  return finish(std::move(n));
}

NodePtr make_halo_spot(std::vector<HaloNeed> needs) {
  Node n;
  n.type = NodeType::HaloSpot;
  n.needs = std::move(needs);
  return finish(std::move(n));
}

NodePtr make_halo_comm(HaloCommKind kind, std::vector<HaloNeed> needs,
                       int spot_id) {
  Node n;
  n.type = NodeType::HaloComm;
  n.comm_kind = kind;
  n.needs = std::move(needs);
  n.spot_id = spot_id;
  return finish(std::move(n));
}

NodePtr make_sparse_op(int sparse_id) {
  Node n;
  n.type = NodeType::SparseOp;
  n.sparse_id = sparse_id;
  return finish(std::move(n));
}

NodePtr make_health_check(std::vector<HaloNeed> needs) {
  Node n;
  n.type = NodeType::HealthCheck;
  n.needs = std::move(needs);
  return finish(std::move(n));
}

NodePtr make_section(std::string name, std::vector<NodePtr> body) {
  Node n;
  n.type = NodeType::Section;
  n.name = std::move(name);
  n.body = std::move(body);
  return finish(std::move(n));
}

NodePtr with_body(const Node& n, std::vector<NodePtr> body) {
  Node copy = n;
  copy.body = std::move(body);
  return finish(std::move(copy));
}

namespace {

const char* dim_name(int d) {
  static constexpr const char* kNames[] = {"x", "y", "z"};
  return (d >= 0 && d <= 2) ? kNames[d] : "?";
}

std::string bound_str(const Bound& b, int dim, bool is_hi) {
  std::ostringstream os;
  if (b.relative_to_size) {
    os << dim_name(dim) << (is_hi ? "_M" : "_m");
  }
  if (b.offset != 0 || !b.relative_to_size) {
    if (b.relative_to_size && b.offset > 0) {
      os << '+';
    }
    os << b.offset;
  }
  if (b.ghost != 0) {
    // Ghost-zone extension, applied only on sides with a neighbour.
    os << (is_hi ? "+g" : "-g") << b.ghost;
  }
  return os.str();
}

void dump(std::ostringstream& os, const NodePtr& node, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const Node& n = *node;
  switch (n.type) {
    case NodeType::Callable:
      os << pad << "<Callable " << n.name << ">\n";
      break;
    case NodeType::Expression:
      os << pad << "<Expression " << n.target.to_string() << " = "
         << n.value.to_string() << ">\n";
      return;
    case NodeType::TimeLoop:
      os << pad << "<[affine,sequential] Iteration time";
      if (n.time_stride > 1) {
        os << " stride " << n.time_stride;
      }
      os << ">\n";
      break;
    case NodeType::Iteration: {
      os << pad << "<[affine";
      if (n.props.parallel) {
        os << ",parallel";
      }
      if (n.props.vector) {
        os << ",vector-dim";
      }
      os << "] Iteration " << dim_name(n.dim) << " ["
         << bound_str(n.lo, n.dim, false) << ", "
         << bound_str(n.hi, n.dim, true) << ")";
      if (n.tile_expand > 0) {
        os << " expand " << n.tile_expand;
      }
      os << ">\n";
      break;
    }
    case NodeType::BlockLoop: {
      os << pad << "<[affine";
      if (n.props.parallel) {
        os << ",parallel";
      }
      os << "] BlockLoop " << dim_name(n.dim) << " tile=" << n.tile << " ["
         << bound_str(n.lo, n.dim, false) << ", "
         << bound_str(n.hi, n.dim, true) << ")>\n";
      break;
    }
    case NodeType::HaloSpot: {
      os << pad << "<HaloSpot(";
      for (std::size_t i = 0; i < n.needs.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << "f" << n.needs[i].field_id << "@t";
        if (n.needs[i].time_offset > 0) {
          os << '+' << n.needs[i].time_offset;
        } else if (n.needs[i].time_offset < 0) {
          os << n.needs[i].time_offset;
        }
      }
      os << ")>\n";
      break;
    }
    case NodeType::HaloComm: {
      const char* kind = n.comm_kind == HaloCommKind::Update ? "HaloUpdateCall"
                         : n.comm_kind == HaloCommKind::Start
                             ? "HaloUpdateStart"
                             : "HaloWaitCall";
      os << pad << "<" << kind << " spot" << n.spot_id << ">\n";
      return;
    }
    case NodeType::SparseOp:
      os << pad << "<SparseOp " << n.sparse_id << ">\n";
      return;
    case NodeType::Section:
      os << pad << "<Section " << n.name;
      if (n.name == "substep") {
        os << " t+" << n.time_shift;
      }
      os << ">\n";
      break;
    case NodeType::HealthCheck: {
      os << pad << "<HealthCheck(";
      for (std::size_t i = 0; i < n.needs.size(); ++i) {
        if (i > 0) {
          os << ", ";
        }
        os << "f" << n.needs[i].field_id << "@t";
        if (n.needs[i].time_offset > 0) {
          os << '+' << n.needs[i].time_offset;
        } else if (n.needs[i].time_offset < 0) {
          os << n.needs[i].time_offset;
        }
      }
      os << ")>\n";
      return;
    }
  }
  for (const NodePtr& child : n.body) {
    dump(os, child, indent + 1);
  }
}

}  // namespace

std::string to_debug_string(const NodePtr& root) {
  std::ostringstream os;
  dump(os, root, 0);
  return os.str();
}

}  // namespace jitfd::ir
