#include "ir/lower.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "obs/trace.h"
#include "symbolic/cse.h"
#include "symbolic/manip.h"

namespace jitfd::ir {

const char* to_string(MpiMode mode) {
  switch (mode) {
    case MpiMode::None:
      return "none";
    case MpiMode::Basic:
      return "basic";
    case MpiMode::Diagonal:
      return "diagonal";
    case MpiMode::Full:
      return "full";
  }
  return "?";
}

MpiMode mode_from_string(const std::string& name) {
  if (name == "basic" || name == "1") {
    return MpiMode::Basic;
  }
  if (name == "diagonal" || name == "diag" || name == "diag2") {
    return MpiMode::Diagonal;
  }
  if (name == "full") {
    return MpiMode::Full;
  }
  if (name == "none" || name == "0" || name.empty()) {
    return MpiMode::None;
  }
  throw std::invalid_argument("unknown MPI mode '" + name + "'");
}

namespace {

/// A group of equations sharing one loop nest.
struct Cluster {
  std::vector<Eq> eqs;
  std::vector<sym::Temp> point_temps;  ///< Innermost-scope scalar temps.
  std::vector<HaloNeed> needs;         ///< Halo exchanges due before it.
};

bool has_nonzero_offset(const sym::ExprNode& access) {
  return std::any_of(access.space_offsets.begin(), access.space_offsets.end(),
                     [](int o) { return o != 0; });
}

/// Must `eq` start a new cluster given the equations already in `c`?
/// True when fusing would break a cross-point dependence: `eq` reads, at a
/// nonzero space offset, a (field, time) that `c` writes (flow), or `eq`
/// writes a (field, time) that `c` reads at a nonzero offset (anti).
bool needs_fission(const Cluster& c, const Eq& eq) {
  for (const sym::Ex& a : sym::field_accesses(eq.rhs)) {
    const sym::ExprNode& n = a.node();
    if (!has_nonzero_offset(n)) {
      continue;
    }
    for (const Eq& prev : c.eqs) {
      if (prev.write_field().id == n.field.id &&
          prev.write_time_offset() == n.time_offset) {
        return true;
      }
    }
  }
  for (const Eq& prev : c.eqs) {
    for (const sym::Ex& a : sym::field_accesses(prev.rhs)) {
      const sym::ExprNode& n = a.node();
      if (has_nonzero_offset(n) && n.field.id == eq.write_field().id &&
          n.time_offset == eq.write_time_offset()) {
        return true;
      }
    }
  }
  return false;
}

std::vector<Cluster> build_clusters(const std::vector<Eq>& eqs) {
  std::vector<Cluster> clusters;
  for (const Eq& eq : eqs) {
    if (clusters.empty() || needs_fission(clusters.back(), eq)) {
      clusters.emplace_back();
    }
    clusters.back().eqs.push_back(eq);
  }
  return clusters;
}

/// Apply factorization, global invariant extraction and per-cluster CSE.
/// Invariant temps are returned through `info`; CSE temps stay with their
/// cluster. Temp numbering is shared so generated names never collide.
void flop_reduce(std::vector<Cluster>& clusters, LoweringInfo& info) {
  std::vector<sym::Ex> all;
  for (Cluster& c : clusters) {
    for (Eq& eq : c.eqs) {
      all.push_back(sym::factorize(eq.rhs));
    }
  }
  auto inv = sym::extract_invariants(std::move(all), "r", 0);
  info.invariants = std::move(inv.temps);
  int counter = static_cast<int>(info.invariants.size());

  std::size_t cursor = 0;
  for (Cluster& c : clusters) {
    std::vector<sym::Ex> rhss(inv.exprs.begin() + cursor,
                              inv.exprs.begin() + cursor + c.eqs.size());
    cursor += c.eqs.size();
    auto reduced = sym::cse(std::move(rhss), "r", counter);
    counter += static_cast<int>(reduced.temps.size());
    c.point_temps = std::move(reduced.temps);
    for (std::size_t i = 0; i < c.eqs.size(); ++i) {
      c.eqs[i].rhs = reduced.exprs[i];
    }
  }
}

/// Compute the halo needs of each cluster and the hoisted (one-off)
/// exchanges of time-invariant parameter fields. The clean-set analysis
/// implements the paper's HaloSpot drop/merge/hoist pass.
std::vector<HaloNeed> analyze_halos(std::vector<Cluster>& clusters,
                                    const grid::Grid& grid, bool halo_opt) {
  std::vector<HaloNeed> hoisted;
  if (!grid.distributed()) {
    return hoisted;
  }
  const std::vector<int>& topo = grid.topology();

  // Fields written inside the time loop can never have their exchange
  // hoisted, even if they are not time-varying (e.g. CIRE scratch arrays
  // recomputed every step).
  std::set<int> written;
  for (const Cluster& c : clusters) {
    for (const Eq& eq : c.eqs) {
      written.insert(eq.write_field().id);
    }
  }

  // (field id, time offset) pairs whose halo is up to date at this point
  // of a timestep.
  std::set<std::pair<int, int>> clean;
  std::set<int> hoisted_fields;

  for (Cluster& c : clusters) {
    // Reads live both in the equations and in the CSE temporaries that
    // flop reduction factored out of them.
    std::vector<sym::Ex> rhss;
    for (const Eq& eq : c.eqs) {
      rhss.push_back(eq.rhs);
    }
    for (const sym::Temp& t : c.point_temps) {
      rhss.push_back(t.value);
    }
    for (const ReadFootprint& fp : read_footprints(rhss)) {
      for (const auto& [time_offset, widths] : fp.widths_by_time) {
        // Only decomposed dimensions need exchanging.
        std::vector<int> eff(widths.size(), 0);
        bool any = false;
        for (std::size_t d = 0; d < widths.size(); ++d) {
          if (topo[d] > 1 && widths[d] > 0) {
            eff[d] = widths[d];
            any = true;
          }
        }
        if (!any) {
          continue;
        }
        if (halo_opt && !fp.field.time_varying &&
            written.count(fp.field.id) == 0) {
          // Parameter field: hoist a single exchange before the time loop
          // (widest footprint wins if seen twice).
          auto it = std::find_if(hoisted.begin(), hoisted.end(),
                                 [&](const HaloNeed& h) {
                                   return h.field_id == fp.field.id;
                                 });
          if (it == hoisted.end()) {
            hoisted.push_back(HaloNeed{fp.field.id, 0, eff});
            hoisted_fields.insert(fp.field.id);
          } else {
            for (std::size_t d = 0; d < eff.size(); ++d) {
              it->widths[d] = std::max(it->widths[d], eff[d]);
            }
          }
          continue;
        }
        const std::pair<int, int> key{fp.field.id, time_offset};
        if (halo_opt && clean.count(key) > 0) {
          continue;  // Dropped: a previous spot already updated it.
        }
        // Merge into an existing need of this cluster if present.
        auto it = std::find_if(c.needs.begin(), c.needs.end(),
                               [&](const HaloNeed& h) {
                                 return h.field_id == key.first &&
                                        h.time_offset == key.second;
                               });
        if (it == c.needs.end()) {
          c.needs.push_back(HaloNeed{fp.field.id, time_offset, eff});
        } else {
          for (std::size_t d = 0; d < eff.size(); ++d) {
            it->widths[d] = std::max(it->widths[d], eff[d]);
          }
        }
        clean.insert(key);
      }
    }
    // Writes dirty the written buffer again.
    for (const Eq& eq : c.eqs) {
      clean.erase({eq.write_field().id, eq.write_time_offset()});
    }
  }
  return hoisted;
}

LoopProps loop_props(int d, int ndims, const CompileOptions& opts,
                     bool allow_block) {
  LoopProps props;
  props.parallel = opts.openmp && d == 0;
  props.vector = d == ndims - 1;
  if (allow_block && opts.block > 0 && d < ndims - 1) {
    props.block = opts.block;
  }
  return props;
}

/// Build the loop nest of one cluster over the given per-dimension bounds.
NodePtr build_nest(const Cluster& c, int ndims, const CompileOptions& opts,
                   const std::vector<Bound>& lo, const std::vector<Bound>& hi,
                   bool allow_block) {
  std::vector<NodePtr> body;
  for (const sym::Temp& t : c.point_temps) {
    body.push_back(make_expression(sym::symbol(t.name), t.value));
  }
  for (const Eq& eq : c.eqs) {
    body.push_back(make_expression(eq.lhs, eq.rhs));
  }
  for (int d = ndims - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    body = {make_iteration(d, lo[ud], hi[ud],
                           loop_props(d, ndims, opts, allow_block),
                           std::move(body))};
  }
  return body.front();
}

std::vector<Bound> domain_lo(int nd) {
  return std::vector<Bound>(static_cast<std::size_t>(nd), Bound::absolute(0));
}
std::vector<Bound> domain_hi(int nd) {
  return std::vector<Bound>(static_cast<std::size_t>(nd), Bound::from_size(0));
}

/// Full-mode split of a cluster into CORE plus 2 slabs per decomposed
/// dimension (disjoint cover of DOMAIN \ CORE; see DESIGN.md).
void build_full_split(const Cluster& c, int nd, const CompileOptions& opts,
                      std::vector<NodePtr>& out) {
  std::vector<int> w(static_cast<std::size_t>(nd), 0);
  for (const HaloNeed& n : c.needs) {
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      w[ud] = std::max(w[ud], n.widths[ud]);
    }
  }
  // CORE nest.
  std::vector<Bound> lo(static_cast<std::size_t>(nd));
  std::vector<Bound> hi(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    lo[ud] = Bound::absolute(w[ud]);
    hi[ud] = Bound::from_size(-w[ud]);
  }
  out.push_back(make_section(
      "core", {build_nest(c, nd, opts, lo, hi, /*allow_block=*/true)}));

  // Remainder slabs, ordered low/high per dimension. Dimensions before the
  // slab dimension are restricted to their core range; later dimensions
  // span the whole domain.
  std::vector<NodePtr> remainders;
  for (int d = 0; d < nd; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (w[ud] == 0) {
      continue;
    }
    for (const bool high : {false, true}) {
      std::vector<Bound> slo(static_cast<std::size_t>(nd));
      std::vector<Bound> shi(static_cast<std::size_t>(nd));
      for (int q = 0; q < nd; ++q) {
        const auto uq = static_cast<std::size_t>(q);
        if (q < d) {
          slo[uq] = Bound::absolute(w[uq]);
          shi[uq] = Bound::from_size(-w[uq]);
        } else if (q > d) {
          slo[uq] = Bound::absolute(0);
          shi[uq] = Bound::from_size(0);
        } else if (high) {
          slo[uq] = Bound::from_size(-w[uq]);
          shi[uq] = Bound::from_size(0);
        } else {
          slo[uq] = Bound::absolute(0);
          shi[uq] = Bound::absolute(w[uq]);
        }
      }
      remainders.push_back(
          build_nest(c, nd, opts, slo, shi, /*allow_block=*/false));
    }
  }
  out.push_back(make_section("remainder", std::move(remainders)));
}

bool is_reserved_temp_name(const std::string& name) {
  if (name.size() < 2 || name[0] != 'r') {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

void collect_arg_orders(const std::vector<Eq>& eqs, LoweringInfo& info) {
  std::set<int> fields;
  std::set<std::string> field_names;
  std::set<std::string> scalars;
  for (const Eq& eq : eqs) {
    for (const sym::Ex& e : {eq.lhs, eq.rhs}) {
      sym::walk(e, [&](const sym::Ex& sub) {
        if (sub.kind() == sym::Kind::FieldAccess) {
          // Distinct fields sharing one name would collide in the
          // generated C declarations.
          if (fields.insert(sub.node().field.id).second &&
              !field_names.insert(sub.node().field.name).second) {
            throw std::invalid_argument(
                "lowering: two distinct fields are both named '" +
                sub.node().field.name + "'");
          }
        } else if (sub.kind() == sym::Kind::Symbol) {
          // rN is the compiler's temp namespace (Listing 11's r0, r1...).
          if (is_reserved_temp_name(sub.node().name)) {
            throw std::invalid_argument("lowering: symbol name '" +
                                        sub.node().name +
                                        "' is reserved for compiler temps");
          }
          scalars.insert(sub.node().name);
        }
      });
    }
  }
  info.field_order.assign(fields.begin(), fields.end());
  info.scalar_order.assign(scalars.begin(), scalars.end());
}

}  // namespace

NodePtr lower_to_iet(const std::vector<Eq>& eqs, const grid::Grid& grid,
                     const CompileOptions& opts,
                     const std::vector<SparseOpDesc>& sparse_ops,
                     LoweringInfo& info) {
  if (eqs.empty()) {
    throw std::invalid_argument("lower_to_iet: no equations");
  }
  const int nd = grid.ndims();
  {
    const obs::Span span("compile.collect_args", obs::Cat::Compile,
                         static_cast<std::int64_t>(eqs.size()));
    collect_arg_orders(eqs, info);
  }

  // Stages 1-3.
  obs::Span cluster_span("compile.cluster", obs::Cat::Compile,
                         static_cast<std::int64_t>(eqs.size()));
  std::vector<Cluster> clusters = build_clusters(eqs);
  cluster_span.close();
  if (opts.flop_reduce) {
    const obs::Span span("compile.flop_reduce", obs::Cat::Compile,
                         static_cast<std::int64_t>(clusters.size()));
    flop_reduce(clusters, info);
  }
  obs::Span halo_span("compile.halo_analyze", obs::Cat::Compile);
  std::vector<HaloNeed> hoisted =
      analyze_halos(clusters, grid, opts.halo_opt);
  halo_span.close();

  // Stage 4: schedule (pre-lowering IET, with HaloSpot placeholders).
  obs::Span schedule_span("compile.schedule", obs::Cat::Compile);
  std::vector<NodePtr> prologue;
  for (const sym::Temp& t : info.invariants) {
    prologue.push_back(make_expression(sym::symbol(t.name), t.value));
  }
  if (!hoisted.empty()) {
    prologue.push_back(make_halo_spot(hoisted));
  }

  std::vector<NodePtr> step;
  for (const Cluster& c : clusters) {
    if (!c.needs.empty()) {
      step.push_back(make_halo_spot(c.needs));
    }
    step.push_back(build_nest(c, nd, opts, domain_lo(nd), domain_hi(nd),
                              /*allow_block=*/true));
  }
  for (const SparseOpDesc& s : sparse_ops) {
    step.push_back(make_sparse_op(s.id));
    ++info.sparse_op_count;
  }

  std::vector<NodePtr> top = prologue;
  top.push_back(make_time_loop(std::move(step)));
  NodePtr scheduled = make_callable("Kernel", std::move(top));
  info.schedule_dump = to_debug_string(scheduled);
  schedule_span.close();

  // Stage 5: pattern lowering. Rebuild the callable, replacing HaloSpots.
  const obs::Span lower_span("compile.pattern_lower", obs::Cat::Compile, 0,
                             static_cast<std::int32_t>(opts.mode));
  int next_spot = 0;
  auto register_spot = [&](const std::vector<HaloNeed>& needs, bool is_hoisted) {
    info.spots.push_back(SpotInfo{next_spot, needs, is_hoisted});
    return next_spot++;
  };

  std::vector<NodePtr> new_top;
  for (const NodePtr& n : scheduled->body) {
    if (n->type == NodeType::HaloSpot) {
      if (opts.mode == MpiMode::None) {
        continue;
      }
      const int id = register_spot(n->needs, /*is_hoisted=*/true);
      new_top.push_back(make_halo_comm(HaloCommKind::Update, n->needs, id));
      continue;
    }
    if (n->type != NodeType::TimeLoop) {
      new_top.push_back(n);
      continue;
    }
    // Rewrite the time-loop body.
    std::vector<NodePtr> new_step;
    const auto& old = n->body;
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (old[i]->type != NodeType::HaloSpot) {
        new_step.push_back(old[i]);
        continue;
      }
      if (opts.mode == MpiMode::None) {
        continue;
      }
      const std::vector<HaloNeed>& needs = old[i]->needs;
      const int id = register_spot(needs, /*is_hoisted=*/false);
      if (opts.mode != MpiMode::Full) {
        new_step.push_back(make_halo_comm(HaloCommKind::Update, needs, id));
        continue;
      }
      // Full mode: start, CORE, wait, remainder — consuming the following
      // loop nest (there is always one: spots are emitted before nests).
      assert(i + 1 < old.size() && old[i + 1]->type == NodeType::Iteration);
      // Reconstruct the cluster from the nest to rebuild split nests.
      Cluster c;
      c.needs = needs;
      const Node* cursor = old[i + 1].get();
      while (cursor->type == NodeType::Iteration) {
        assert(!cursor->body.empty());
        if (cursor->body.front()->type == NodeType::Iteration) {
          cursor = cursor->body.front().get();
          continue;
        }
        break;
      }
      for (const NodePtr& stmt : cursor->body) {
        assert(stmt->type == NodeType::Expression);
        if (stmt->target.kind() == sym::Kind::Symbol) {
          c.point_temps.push_back(
              sym::Temp{stmt->target.node().name, stmt->value});
        } else {
          c.eqs.emplace_back(stmt->target, stmt->value);
        }
      }
      new_step.push_back(make_halo_comm(HaloCommKind::Start, needs, id));
      std::vector<NodePtr> split;
      build_full_split(c, nd, opts, split);
      new_step.push_back(split[0]);  // CORE section.
      new_step.push_back(make_halo_comm(HaloCommKind::Wait, needs, id));
      new_step.push_back(split[1]);  // Remainder section.
      ++i;                           // Skip the consumed nest.
    }
    new_top.push_back(make_time_loop(std::move(new_step)));
  }
  return make_callable(scheduled->name, std::move(new_top));
}

}  // namespace jitfd::ir
