#include "ir/lower.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>

#include "obs/trace.h"
#include "symbolic/cse.h"
#include "symbolic/manip.h"

namespace jitfd::ir {

const char* to_string(MpiMode mode) {
  switch (mode) {
    case MpiMode::None:
      return "none";
    case MpiMode::Basic:
      return "basic";
    case MpiMode::Diagonal:
      return "diagonal";
    case MpiMode::Full:
      return "full";
  }
  return "?";
}

MpiMode mode_from_string(const std::string& name) {
  if (name == "basic" || name == "1") {
    return MpiMode::Basic;
  }
  if (name == "diagonal" || name == "diag" || name == "diag2") {
    return MpiMode::Diagonal;
  }
  if (name == "full") {
    return MpiMode::Full;
  }
  if (name == "none" || name == "0" || name.empty()) {
    return MpiMode::None;
  }
  throw std::invalid_argument("unknown MPI mode '" + name + "'");
}

namespace {

/// A group of equations sharing one loop nest.
struct Cluster {
  std::vector<Eq> eqs;
  std::vector<sym::Temp> point_temps;  ///< Innermost-scope scalar temps.
  std::vector<HaloNeed> needs;         ///< Halo exchanges due before it.
};

bool has_nonzero_offset(const sym::ExprNode& access) {
  return std::any_of(access.space_offsets.begin(), access.space_offsets.end(),
                     [](int o) { return o != 0; });
}

/// Must `eq` start a new cluster given the equations already in `c`?
/// True when fusing would break a cross-point dependence: `eq` reads, at a
/// nonzero space offset, a (field, time) that `c` writes (flow), or `eq`
/// writes a (field, time) that `c` reads at a nonzero offset (anti).
bool needs_fission(const Cluster& c, const Eq& eq) {
  for (const sym::Ex& a : sym::field_accesses(eq.rhs)) {
    const sym::ExprNode& n = a.node();
    if (!has_nonzero_offset(n)) {
      continue;
    }
    for (const Eq& prev : c.eqs) {
      if (prev.write_field().id == n.field.id &&
          prev.write_time_offset() == n.time_offset) {
        return true;
      }
    }
  }
  for (const Eq& prev : c.eqs) {
    for (const sym::Ex& a : sym::field_accesses(prev.rhs)) {
      const sym::ExprNode& n = a.node();
      if (has_nonzero_offset(n) && n.field.id == eq.write_field().id &&
          n.time_offset == eq.write_time_offset()) {
        return true;
      }
    }
  }
  return false;
}

std::vector<Cluster> build_clusters(const std::vector<Eq>& eqs) {
  std::vector<Cluster> clusters;
  for (const Eq& eq : eqs) {
    if (clusters.empty() || needs_fission(clusters.back(), eq)) {
      clusters.emplace_back();
    }
    clusters.back().eqs.push_back(eq);
  }
  return clusters;
}

/// Apply factorization, global invariant extraction and per-cluster CSE.
/// Invariant temps are returned through `info`; CSE temps stay with their
/// cluster. Temp numbering is shared so generated names never collide.
void flop_reduce(std::vector<Cluster>& clusters, LoweringInfo& info) {
  std::vector<sym::Ex> all;
  for (Cluster& c : clusters) {
    for (Eq& eq : c.eqs) {
      all.push_back(sym::factorize(eq.rhs));
    }
  }
  auto inv = sym::extract_invariants(std::move(all), "r", 0);
  info.invariants = std::move(inv.temps);
  int counter = static_cast<int>(info.invariants.size());

  std::size_t cursor = 0;
  for (Cluster& c : clusters) {
    std::vector<sym::Ex> rhss(inv.exprs.begin() + cursor,
                              inv.exprs.begin() + cursor + c.eqs.size());
    cursor += c.eqs.size();
    auto reduced = sym::cse(std::move(rhss), "r", counter);
    counter += static_cast<int>(reduced.temps.size());
    c.point_temps = std::move(reduced.temps);
    for (std::size_t i = 0; i < c.eqs.size(); ++i) {
      c.eqs[i].rhs = reduced.exprs[i];
    }
  }
}

/// Compute the halo needs of each cluster and the hoisted (one-off)
/// exchanges of time-invariant parameter fields. The clean-set analysis
/// implements the paper's HaloSpot drop/merge/hoist pass.
std::vector<HaloNeed> analyze_halos(std::vector<Cluster>& clusters,
                                    const grid::Grid& grid, bool halo_opt) {
  std::vector<HaloNeed> hoisted;
  if (!grid.distributed()) {
    return hoisted;
  }
  const std::vector<int>& topo = grid.topology();

  // Fields written inside the time loop can never have their exchange
  // hoisted, even if they are not time-varying (e.g. CIRE scratch arrays
  // recomputed every step).
  std::set<int> written;
  for (const Cluster& c : clusters) {
    for (const Eq& eq : c.eqs) {
      written.insert(eq.write_field().id);
    }
  }

  // (field id, time offset) pairs whose halo is up to date at this point
  // of a timestep.
  std::set<std::pair<int, int>> clean;
  std::set<int> hoisted_fields;

  for (Cluster& c : clusters) {
    // Reads live both in the equations and in the CSE temporaries that
    // flop reduction factored out of them.
    std::vector<sym::Ex> rhss;
    for (const Eq& eq : c.eqs) {
      rhss.push_back(eq.rhs);
    }
    for (const sym::Temp& t : c.point_temps) {
      rhss.push_back(t.value);
    }
    for (const ReadFootprint& fp : read_footprints(rhss)) {
      for (const auto& [time_offset, widths] : fp.widths_by_time) {
        // Only decomposed dimensions need exchanging.
        std::vector<int> eff(widths.size(), 0);
        bool any = false;
        for (std::size_t d = 0; d < widths.size(); ++d) {
          if (topo[d] > 1 && widths[d] > 0) {
            eff[d] = widths[d];
            any = true;
          }
        }
        if (!any) {
          continue;
        }
        if (halo_opt && !fp.field.time_varying &&
            written.count(fp.field.id) == 0) {
          // Parameter field: hoist a single exchange before the time loop
          // (widest footprint wins if seen twice).
          auto it = std::find_if(hoisted.begin(), hoisted.end(),
                                 [&](const HaloNeed& h) {
                                   return h.field_id == fp.field.id;
                                 });
          if (it == hoisted.end()) {
            hoisted.push_back(HaloNeed{fp.field.id, 0, eff});
            hoisted_fields.insert(fp.field.id);
          } else {
            for (std::size_t d = 0; d < eff.size(); ++d) {
              it->widths[d] = std::max(it->widths[d], eff[d]);
            }
          }
          continue;
        }
        const std::pair<int, int> key{fp.field.id, time_offset};
        if (halo_opt && clean.count(key) > 0) {
          continue;  // Dropped: a previous spot already updated it.
        }
        // Merge into an existing need of this cluster if present.
        auto it = std::find_if(c.needs.begin(), c.needs.end(),
                               [&](const HaloNeed& h) {
                                 return h.field_id == key.first &&
                                        h.time_offset == key.second;
                               });
        if (it == c.needs.end()) {
          c.needs.push_back(HaloNeed{fp.field.id, time_offset, eff});
        } else {
          for (std::size_t d = 0; d < eff.size(); ++d) {
            it->widths[d] = std::max(it->widths[d], eff[d]);
          }
        }
        clean.insert(key);
      }
    }
    // Writes dirty the written buffer again.
    for (const Eq& eq : c.eqs) {
      clean.erase({eq.write_field().id, eq.write_time_offset()});
    }
  }
  return hoisted;
}

/// Strip plan for communication-avoiding stepping (exchange_depth > 1).
///
/// One strip executes k sub-steps between halo exchanges. Every ghost
/// value a sub-step reads must come either from the one exchange at the
/// strip top (reads of buffers produced before the strip) or from a
/// redundant in-strip ghost-zone write that is at least as deep as the
/// read requires. The plan records the exchanges and the per-(sub-step,
/// cluster) ghost extensions; plan_deep_halo() verifies both conditions
/// computationally and fails (-> clamp to a shallower k) otherwise.
struct DeepHaloPlan {
  int k = 1;
  std::vector<HaloNeed> strip_needs;  ///< Exchanged once at each strip top.
  std::vector<HaloNeed> hoisted;      ///< Widened parameter-field hoists.
  /// ext[j][c][d]: ghost-zone extension of cluster c at sub-step j.
  std::vector<std::vector<std::vector<int>>> ext;
  /// Per-cluster maximum read width (the full-mode CORE inset).
  std::vector<std::vector<int>> width;
  /// tile_ext[j][c]: outermost-dimension trapezoid expansion for walking
  /// the sub-steps tile-by-tile (time tiling). Same chain rule as `ext`
  /// but over the FULL read widths: a tile boundary needs recompute
  /// overlap even along undecomposed dimensions, which need no exchange.
  std::vector<std::vector<int>> tile_ext;
};

/// Try to build a depth-k strip plan. Extensions follow the chain rule:
/// with per-cluster stale-propagating widths w_c (reads of time-varying
/// fields only), W = sum_c w_c and suffix sums S_c = sum_{c'>c} w_c',
/// cluster c at sub-step j computes ghost points to depth
/// ext[j][c] = (k-1-j)*W + S_c — each consumer loses its own read width
/// relative to its producers, so the last sub-step lands exactly on the
/// owned region. Returns false (with a reason) when the plan would
/// exceed allocated halos or read a ghost value nobody provides.
bool plan_deep_halo(const std::vector<Cluster>& clusters,
                    const grid::Grid& grid, bool halo_opt, int k,
                    DeepHaloPlan& plan, std::string& why) {
  const std::vector<int>& topo = grid.topology();
  const int nd = grid.ndims();
  const std::size_t nc = clusters.size();
  const auto und = static_cast<std::size_t>(nd);

  struct Read {
    sym::FieldId field;
    int off = 0;
    std::vector<int> w;  ///< Per-dim width; zero on undecomposed dims.
    int w0_full = 0;     ///< Full outermost-dim width (for time tiling).
  };
  struct Write {
    int field = -1;
    int off = 0;
    std::size_t cluster = 0;
  };
  std::vector<std::vector<Read>> reads(nc);
  std::vector<Write> writes;
  for (std::size_t ci = 0; ci < nc; ++ci) {
    const Cluster& c = clusters[ci];
    std::vector<sym::Ex> rhss;
    for (const Eq& eq : c.eqs) {
      rhss.push_back(eq.rhs);
    }
    for (const sym::Temp& t : c.point_temps) {
      rhss.push_back(t.value);
    }
    for (const ReadFootprint& fp : read_footprints(rhss)) {
      for (const auto& [off, widths] : fp.widths_by_time) {
        std::vector<int> eff(und, 0);
        for (int d = 0; d < nd; ++d) {
          const auto ud = static_cast<std::size_t>(d);
          if (topo[ud] > 1) {
            eff[ud] = widths[ud];
          }
        }
        const int w0 = nd > 0 ? widths[0] : 0;
        reads[ci].push_back(Read{fp.field, off, std::move(eff), w0});
      }
    }
    for (const Eq& eq : c.eqs) {
      if (!eq.write_field().time_varying) {
        why = "time-invariant field '" + eq.write_field().name +
              "' is written inside the time loop";
        return false;
      }
      writes.push_back(Write{eq.write_field().id, eq.write_time_offset(), ci});
    }
  }

  auto field_halo = [&](const sym::FieldId& f) {
    const grid::Function* fn = grid::lookup_field(f.id);
    return fn != nullptr ? fn->halo() : -1;
  };

  // Stale-propagating chain widths (time-varying reads only: parameter
  // fields are refreshed to full depth up front and never go stale) and
  // the per-cluster maximum over all reads (the full-mode CORE inset,
  // which must dodge every in-flight receive).
  std::vector<std::vector<int>> cw(nc, std::vector<int>(und, 0));
  plan.width.assign(nc, std::vector<int>(und, 0));
  for (std::size_t ci = 0; ci < nc; ++ci) {
    for (const Read& r : reads[ci]) {
      for (int d = 0; d < nd; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        plan.width[ci][ud] = std::max(plan.width[ci][ud], r.w[ud]);
        if (r.field.time_varying) {
          cw[ci][ud] = std::max(cw[ci][ud], r.w[ud]);
        }
      }
    }
  }
  std::vector<int> W(und, 0);
  for (const auto& w : cw) {
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      W[ud] += w[ud];
    }
  }
  std::vector<std::vector<int>> suffix(nc, std::vector<int>(und, 0));
  for (std::size_t ci = nc; ci-- > 0;) {
    if (ci + 1 < nc) {
      for (int d = 0; d < nd; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        suffix[ci][ud] = suffix[ci + 1][ud] + cw[ci + 1][ud];
      }
    }
  }
  plan.ext.assign(static_cast<std::size_t>(k), {});
  for (int j = 0; j < k; ++j) {
    auto& per_cluster = plan.ext[static_cast<std::size_t>(j)];
    per_cluster.assign(nc, std::vector<int>(und, 0));
    for (std::size_t ci = 0; ci < nc; ++ci) {
      for (int d = 0; d < nd; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        per_cluster[ci][ud] = (k - 1 - j) * W[ud] + suffix[ci][ud];
      }
    }
  }

  // Time-tiling trapezoids: the same chain on full outermost-dim widths.
  std::vector<int> cw0(nc, 0);
  for (std::size_t ci = 0; ci < nc; ++ci) {
    for (const Read& r : reads[ci]) {
      if (r.field.time_varying) {
        cw0[ci] = std::max(cw0[ci], r.w0_full);
      }
    }
  }
  int W0 = 0;
  for (int w0 : cw0) {
    W0 += w0;
  }
  std::vector<int> suffix0(nc, 0);
  for (std::size_t ci = nc; ci-- > 0;) {
    if (ci + 1 < nc) {
      suffix0[ci] = suffix0[ci + 1] + cw0[ci + 1];
    }
  }
  plan.tile_ext.assign(static_cast<std::size_t>(k), std::vector<int>(nc, 0));
  for (int j = 0; j < k; ++j) {
    for (std::size_t ci = 0; ci < nc; ++ci) {
      plan.tile_ext[static_cast<std::size_t>(j)][ci] =
          (k - 1 - j) * W0 + suffix0[ci];
    }
  }

  // Ghost-zone writes must fit the written field's allocated halo.
  for (const Write& w : writes) {
    const grid::Function* fn = grid::lookup_field(w.field);
    if (fn == nullptr) {
      why = "written field is not registered";
      return false;
    }
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (plan.ext[0][w.cluster][ud] > fn->halo()) {
        why = "sub-step 0 writes " +
              std::to_string(plan.ext[0][w.cluster][ud]) +
              " ghost points of '" + fn->name() + "' but its halo is " +
              std::to_string(fn->halo());
        return false;
      }
    }
  }

  // Classify every read: strip-top exchange, hoisted parameter exchange,
  // or in-strip redundant-write coverage.
  std::map<std::pair<int, int>, HaloNeed> strip;  // (field, abs index) -> need
  auto merge_need = [&](std::map<std::pair<int, int>, HaloNeed>& into,
                        const sym::FieldId& f, int a,
                        const std::vector<int>& depth) -> bool {
    if (std::all_of(depth.begin(), depth.end(),
                    [](int v) { return v == 0; })) {
      return true;
    }
    const int cap = field_halo(f);
    for (int v : depth) {
      if (v > cap) {
        why = "'" + f.name + "' needs exchange depth " + std::to_string(v) +
              " but its allocated halo is " + std::to_string(cap) +
              " (construct fields under a deeper default_exchange_depth)";
        return false;
      }
    }
    auto [it, fresh] = into.try_emplace({f.id, a}, HaloNeed{f.id, a, depth});
    if (!fresh) {
      for (std::size_t d = 0; d < depth.size(); ++d) {
        it->second.widths[d] = std::max(it->second.widths[d], depth[d]);
      }
    }
    return true;
  };

  std::map<std::pair<int, int>, HaloNeed> param_map;
  for (std::size_t ci = 0; ci < nc; ++ci) {
    for (const Read& r : reads[ci]) {
      if (!r.field.time_varying) {
        // Parameter field: one exchange at the maximum extension (sub-step
        // 0) keeps it valid for the whole strip — and, once hoisted, for
        // the whole run.
        std::vector<int> depth(und, 0);
        for (int d = 0; d < nd; ++d) {
          const auto ud = static_cast<std::size_t>(d);
          depth[ud] = r.w[ud] + plan.ext[0][ci][ud];
        }
        if (!merge_need(param_map, r.field, 0, depth)) {
          return false;
        }
        continue;
      }
      for (int j = 0; j < k; ++j) {
        const int a = j + r.off;  // Absolute buffer index vs the strip top.
        std::vector<int> depth(und, 0);
        for (int d = 0; d < nd; ++d) {
          const auto ud = static_cast<std::size_t>(d);
          depth[ud] =
              r.w[ud] + plan.ext[static_cast<std::size_t>(j)][ci][ud];
        }
        if (a <= 0) {
          // Produced before the strip: refresh at the strip top.
          if (!merge_need(strip, r.field, a, depth)) {
            return false;
          }
          continue;
        }
        // Produced inside the strip: some earlier write of the same
        // buffer must reach at least as deep into the ghost zone.
        bool covered = false;
        for (const Write& w : writes) {
          if (w.field != r.field.id) {
            continue;
          }
          const int jw = a - w.off;
          if (jw < 0 || jw >= k || jw > j ||
              (jw == j && w.cluster > ci)) {
            continue;
          }
          bool dominates = true;
          for (int d = 0; d < nd; ++d) {
            const auto ud = static_cast<std::size_t>(d);
            if (plan.ext[static_cast<std::size_t>(jw)][w.cluster][ud] <
                depth[ud]) {
              dominates = false;
              break;
            }
          }
          if (dominates) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          why = "sub-step " + std::to_string(j) + " reads '" + r.field.name +
                "' at time offset " + std::to_string(r.off) +
                " with no in-strip write deep enough to cover it";
          return false;
        }
      }
    }
  }

  for (auto& [key, need] : strip) {
    plan.strip_needs.push_back(std::move(need));
  }
  for (auto& [key, need] : param_map) {
    if (halo_opt) {
      plan.hoisted.push_back(std::move(need));
    } else {
      plan.strip_needs.push_back(std::move(need));
    }
  }
  plan.k = k;
  return true;
}

/// Effective per-dimension tile sizes: the user's request clamped to what
/// this grid can honour, with every clamp recorded in
/// LoweringInfo::tile_clamp_reason. Clamping is rank-uniform (it uses the
/// global shape and topology, never the executing rank's own extent) so
/// all ranks lower the same schedule — divergent schedules would deadlock
/// the autotuner's collective trial grid.
std::vector<std::int64_t> plan_tiling(const CompileOptions& opts,
                                      const grid::Grid& grid,
                                      LoweringInfo& info) {
  const int nd = grid.ndims();
  const auto und = static_cast<std::size_t>(nd);
  std::vector<std::int64_t> tile(und, 0);
  std::string reason;
  auto note = [&](std::string r) {
    if (!reason.empty()) {
      reason += "; ";
    }
    reason += std::move(r);
  };
  for (std::size_t d = 0; d < opts.tile.size(); ++d) {
    if (d >= und) {
      note("tile entries beyond the grid dimensionality are ignored");
      break;
    }
    if (opts.tile[d] < 0) {
      note("negative tile on dimension " + std::to_string(d) + " ignored");
      continue;
    }
    tile[d] = opts.tile[d];
  }
  if (nd > 0 && tile[und - 1] > 0) {
    note("innermost dimension stays contiguous for SIMD (tile " +
         std::to_string(tile[und - 1]) + " dropped)");
    tile[und - 1] = 0;
  }
  for (int d = 0; d + 1 < nd; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (tile[ud] == 0) {
      continue;
    }
    const std::int64_t min_ext = grid.min_local_size(d);
    if (tile[ud] >= min_ext) {
      note("tile " + std::to_string(tile[ud]) +
           " covers the smallest rank-local extent " +
           std::to_string(min_ext) + " of dimension " + std::to_string(d) +
           " (untiled)");
      tile[ud] = 0;
    }
  }
  info.tile = tile;
  info.tile_clamp_reason = reason;
  return tile;
}

/// Build the loop nest of one cluster over the given per-dimension
/// bounds. A nonzero tile[d] wraps the nest in a BlockLoop over dimension
/// d (tile loops sit outermost, in dimension order) and the OpenMP
/// annotation moves to the outermost loop node. `expand` (time tiling
/// only) widens the intersection of Iteration d with the enclosing tile
/// window by expand[d] points per side.
NodePtr build_nest(const Cluster& c, int ndims, const CompileOptions& opts,
                   const std::vector<Bound>& lo, const std::vector<Bound>& hi,
                   const std::vector<std::int64_t>& tile,
                   const std::vector<std::int64_t>* expand = nullptr) {
  int outer_tiled = -1;
  for (int d = 0; d < ndims; ++d) {
    if (tile[static_cast<std::size_t>(d)] > 0) {
      outer_tiled = d;
      break;
    }
  }
  std::vector<NodePtr> body;
  for (const sym::Temp& t : c.point_temps) {
    body.push_back(make_expression(sym::symbol(t.name), t.value));
  }
  for (const Eq& eq : c.eqs) {
    body.push_back(make_expression(eq.lhs, eq.rhs));
  }
  for (int d = ndims - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    LoopProps props;
    props.vector = d == ndims - 1;
    props.parallel = opts.openmp && d == 0 && outer_tiled < 0;
    body = {make_iteration(d, lo[ud], hi[ud], props, std::move(body),
                           expand != nullptr ? (*expand)[ud] : 0)};
  }
  for (int d = ndims - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    if (tile[ud] <= 0) {
      continue;
    }
    LoopProps props;
    props.parallel = opts.openmp && d == outer_tiled;
    body = {make_block_loop(d, lo[ud], hi[ud], tile[ud], props,
                            std::move(body))};
  }
  return body.front();
}

std::vector<Bound> domain_lo(int nd) {
  return std::vector<Bound>(static_cast<std::size_t>(nd), Bound::absolute(0));
}
std::vector<Bound> domain_hi(int nd) {
  return std::vector<Bound>(static_cast<std::size_t>(nd), Bound::from_size(0));
}

/// Full-mode split of a cluster into CORE plus 2 slabs per decomposed
/// dimension (disjoint cover of (DOMAIN + ghost extension) \ CORE; see
/// DESIGN.md). `w` is the CORE inset (the cluster's read width — CORE
/// must not touch in-flight receives); `ext` is the communication-
/// avoiding ghost extension carried by the remainder slabs (all zeros at
/// exchange depth 1).
void build_full_split(const Cluster& c, int nd, const CompileOptions& opts,
                      const std::vector<int>& w, const std::vector<int>& ext,
                      const std::vector<std::int64_t>& tile,
                      std::vector<NodePtr>& out) {
  // CORE nest.
  std::vector<Bound> lo(static_cast<std::size_t>(nd));
  std::vector<Bound> hi(static_cast<std::size_t>(nd));
  for (int d = 0; d < nd; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    lo[ud] = Bound::absolute(w[ud]);
    hi[ud] = Bound::from_size(-w[ud]);
  }
  out.push_back(make_section("core", {build_nest(c, nd, opts, lo, hi, tile)}));

  // Remainder slabs, ordered low/high per dimension. Dimensions before the
  // slab dimension are restricted to their core range; later dimensions
  // span the whole (ghost-extended) domain.
  std::vector<NodePtr> remainders;
  for (int d = 0; d < nd; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (w[ud] == 0 && ext[ud] == 0) {
      continue;
    }
    for (const bool high : {false, true}) {
      std::vector<Bound> slo(static_cast<std::size_t>(nd));
      std::vector<Bound> shi(static_cast<std::size_t>(nd));
      for (int q = 0; q < nd; ++q) {
        const auto uq = static_cast<std::size_t>(q);
        if (q < d) {
          slo[uq] = Bound::absolute(w[uq]);
          shi[uq] = Bound::from_size(-w[uq]);
        } else if (q > d) {
          slo[uq] = Bound{false, 0, ext[uq]};
          shi[uq] = Bound{true, 0, ext[uq]};
        } else if (high) {
          slo[uq] = Bound::from_size(-w[uq]);
          shi[uq] = Bound{true, 0, ext[uq]};
        } else {
          slo[uq] = Bound{false, 0, ext[uq]};
          shi[uq] = Bound::absolute(w[uq]);
        }
      }
      remainders.push_back(build_nest(c, nd, opts, slo, shi, tile));
    }
  }
  out.push_back(make_section("remainder", std::move(remainders)));
}

/// CORE inset of a cluster at exchange depth 1: the merged widths of its
/// pre-lowering halo needs.
std::vector<int> needs_width(const Cluster& c, int nd) {
  std::vector<int> w(static_cast<std::size_t>(nd), 0);
  for (const HaloNeed& n : c.needs) {
    for (int d = 0; d < nd; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      w[ud] = std::max(w[ud], n.widths[ud]);
    }
  }
  return w;
}

/// Can a strip's sub-steps be walked tile-by-tile? Once a tile has run
/// all k sub-steps its writes land in time-buffer slots that later tiles
/// (still at earlier sub-steps) may need to read, so every cycling
/// time-varying field must keep the strip's whole absolute time-index
/// window in distinct buffers. Saved fields index identically and are
/// distinct by construction.
bool time_tile_buffers_ok(const std::vector<Cluster>& clusters, int k,
                          std::string& why) {
  std::map<int, std::pair<int, int>> range;  // field id -> (min, max) offset
  std::map<int, std::string> names;
  auto touch = [&](const sym::FieldId& f, int off) {
    if (!f.time_varying) {
      return;
    }
    auto [it, fresh] = range.try_emplace(f.id, std::pair<int, int>{off, off});
    if (!fresh) {
      it->second.first = std::min(it->second.first, off);
      it->second.second = std::max(it->second.second, off);
    }
    names.emplace(f.id, f.name);
  };
  for (const Cluster& c : clusters) {
    std::vector<sym::Ex> rhss;
    for (const Eq& eq : c.eqs) {
      touch(eq.write_field(), eq.write_time_offset());
      rhss.push_back(eq.rhs);
    }
    for (const sym::Temp& t : c.point_temps) {
      rhss.push_back(t.value);
    }
    for (const sym::Ex& rhs : rhss) {
      for (const sym::Ex& a : sym::field_accesses(rhs)) {
        touch(a.node().field, a.node().time_offset);
      }
    }
  }
  for (const auto& [id, mm] : range) {
    const grid::Function* fn = grid::lookup_field(id);
    if (fn == nullptr) {
      why = "field '" + names[id] + "' is not registered";
      return false;
    }
    if (fn->saved()) {
      continue;
    }
    const int window = (k - 1) + mm.second - mm.first + 1;
    if (fn->time_buffers() < window) {
      why = "'" + fn->name() + "' has " +
            std::to_string(fn->time_buffers()) +
            " time buffers but tile-by-tile sub-stepping needs " +
            std::to_string(window) +
            " distinct in-flight slots (construct fields under "
            "Function::set_default_time_slack)";
      return false;
    }
  }
  return true;
}

bool is_reserved_temp_name(const std::string& name) {
  if (name.size() < 2 || name[0] != 'r') {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

void collect_arg_orders(const std::vector<Eq>& eqs, LoweringInfo& info) {
  std::set<int> fields;
  std::set<std::string> field_names;
  std::set<std::string> scalars;
  for (const Eq& eq : eqs) {
    for (const sym::Ex& e : {eq.lhs, eq.rhs}) {
      sym::walk(e, [&](const sym::Ex& sub) {
        if (sub.kind() == sym::Kind::FieldAccess) {
          // Distinct fields sharing one name would collide in the
          // generated C declarations.
          if (fields.insert(sub.node().field.id).second &&
              !field_names.insert(sub.node().field.name).second) {
            throw std::invalid_argument(
                "lowering: two distinct fields are both named '" +
                sub.node().field.name + "'");
          }
        } else if (sub.kind() == sym::Kind::Symbol) {
          // rN is the compiler's temp namespace (Listing 11's r0, r1...).
          if (is_reserved_temp_name(sub.node().name)) {
            throw std::invalid_argument("lowering: symbol name '" +
                                        sub.node().name +
                                        "' is reserved for compiler temps");
          }
          // jitfd_* is the runtime's namespace (jitfd_health_every, the
          // generated kernel's own identifiers).
          if (sub.node().name.rfind("jitfd_", 0) == 0) {
            throw std::invalid_argument("lowering: symbol name '" +
                                        sub.node().name +
                                        "' is reserved (jitfd_ prefix)");
          }
          scalars.insert(sub.node().name);
        }
      });
    }
  }
  info.field_order.assign(fields.begin(), fields.end());
  info.scalar_order.assign(scalars.begin(), scalars.end());
}

}  // namespace

NodePtr lower_to_iet(const std::vector<Eq>& eqs, const grid::Grid& grid,
                     const CompileOptions& opts,
                     const std::vector<SparseOpDesc>& sparse_ops,
                     LoweringInfo& info) {
  if (eqs.empty()) {
    throw std::invalid_argument("lower_to_iet: no equations");
  }
  const int nd = grid.ndims();
  {
    const obs::Span span("compile.collect_args", obs::Cat::Compile,
                         static_cast<std::int64_t>(eqs.size()));
    collect_arg_orders(eqs, info);
  }

  // Stages 1-3.
  obs::Span cluster_span("compile.cluster", obs::Cat::Compile,
                         static_cast<std::int64_t>(eqs.size()));
  std::vector<Cluster> clusters = build_clusters(eqs);
  cluster_span.close();
  if (opts.flop_reduce) {
    const obs::Span span("compile.flop_reduce", obs::Cat::Compile,
                         static_cast<std::int64_t>(clusters.size()));
    flop_reduce(clusters, info);
  }
  obs::Span halo_span("compile.halo_analyze", obs::Cat::Compile);
  // Communication-avoiding stepping: try the requested exchange depth,
  // clamping toward 1 whenever a depth is infeasible for these equations
  // on this grid. At the clamped depth 1 the classic per-step analysis
  // runs unchanged.
  DeepHaloPlan ca;
  const int k_req = std::max(1, opts.exchange_depth);
  if (k_req > 1) {
    if (!grid.distributed() || opts.mode == MpiMode::None) {
      info.exchange_depth_clamp_reason = "serial grid or MPI mode 'none'";
    } else if (!sparse_ops.empty()) {
      info.exchange_depth_clamp_reason =
          "sparse operations update owned points only (ghost zones would "
          "miss injections)";
    } else {
      std::string why;
      for (int k = k_req; k >= 2; --k) {
        ca = DeepHaloPlan{};
        if (plan_deep_halo(clusters, grid, opts.halo_opt, k, ca, why)) {
          break;
        }
        ca = DeepHaloPlan{};
      }
      if (ca.k < k_req) {
        // Fully clamped (k == 1) or downgraded to a shallower depth:
        // `why` is the failure of the shallowest depth that was rejected.
        info.exchange_depth_clamp_reason = why;
      }
    }
  }
  info.exchange_depth = ca.k;
  std::vector<HaloNeed> hoisted =
      ca.k > 1 ? ca.hoisted : analyze_halos(clusters, grid, opts.halo_opt);
  halo_span.close();

  // Per-dimension cache tiling, and (when requested and legal) walking
  // strip sub-steps tile-by-tile for temporal reuse.
  const std::vector<std::int64_t> tile = plan_tiling(opts, grid, info);
  bool time_tile = false;
  if (opts.time_tile) {
    std::string why;
    if (ca.k <= 1) {
      why =
          "time tiling rides the communication-avoiding strip machinery "
          "(needs an effective exchange_depth > 1)";
    } else if (tile.empty() || tile[0] <= 0) {
      why = "time tiling needs an outermost space tile (tile[0] > 0)";
    } else if (opts.mode == MpiMode::Full) {
      why = "the full pattern interleaves its Wait inside sub-step 0";
    } else if (time_tile_buffers_ok(clusters, ca.k, why)) {
      time_tile = true;
    }
    info.time_tile = time_tile;
    info.time_tile_clamp_reason = time_tile ? "" : why;
  }

  // Stage 4: schedule (pre-lowering IET, with HaloSpot placeholders).
  obs::Span schedule_span("compile.schedule", obs::Cat::Compile);
  std::vector<NodePtr> prologue;
  for (const sym::Temp& t : info.invariants) {
    prologue.push_back(make_expression(sym::symbol(t.name), t.value));
  }
  if (!hoisted.empty()) {
    prologue.push_back(make_halo_spot(hoisted));
  }

  // Numerical-health reductions: one (field, time offset) per distinct
  // write target, checked over the owned interior at the end of every
  // (sub-)step. The emitted kernels are guarded by the reserved
  // jitfd_health_every scalar, so a zero interval costs one comparison.
  std::vector<HaloNeed> health;
  if (opts.health) {
    std::set<std::pair<int, int>> seen_writes;
    for (const Cluster& c : clusters) {
      for (const Eq& eq : c.eqs) {
        if (seen_writes.emplace(eq.write_field().id, eq.write_time_offset())
                .second) {
          health.push_back(
              HaloNeed{eq.write_field().id, eq.write_time_offset(),
                       std::vector<int>(static_cast<std::size_t>(nd), 0)});
        }
      }
    }
  }

  std::vector<NodePtr> step;
  if (ca.k > 1) {
    // One exchange at the strip top, then k sub-steps whose loop bounds
    // shrink from the widest ghost extension back to the owned region.
    if (!ca.strip_needs.empty()) {
      step.push_back(make_halo_spot(ca.strip_needs));
    }
    if (time_tile) {
      // Walk the k sub-steps tile-by-tile: a serial BlockLoop over the
      // outermost dimension whose body is the sub-step sequence. Each
      // sub-step's outermost Iteration expands the tile window by the
      // full-width trapezoid chain (tile_ext) so every in-tile read is
      // covered by the same tile's earlier writes; overlap regions are
      // recomputed bitwise-identically by neighbouring tiles. Health
      // checks cannot live inside the walker (a sub-step's domain is only
      // complete once all tiles ran), so they trail it as guarded
      // health-only sub-steps — the widened time-buffer window keeps the
      // slots they read distinct for the whole strip.
      std::vector<std::int64_t> inner = tile;
      inner[0] = 0;
      std::vector<NodePtr> walk;
      for (int j = 0; j < ca.k; ++j) {
        std::vector<NodePtr> sub;
        for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
          std::vector<Bound> lo = domain_lo(nd);
          std::vector<Bound> hi = domain_hi(nd);
          for (int d = 0; d < nd; ++d) {
            const auto ud = static_cast<std::size_t>(d);
            const int e = ca.ext[static_cast<std::size_t>(j)][ci][ud];
            lo[ud].ghost = e;
            hi[ud].ghost = e;
          }
          std::vector<std::int64_t> expand(static_cast<std::size_t>(nd), 0);
          expand[0] = ca.tile_ext[static_cast<std::size_t>(j)][ci];
          sub.push_back(
              build_nest(clusters[ci], nd, opts, lo, hi, inner, &expand));
        }
        walk.push_back(make_substep(j, std::move(sub)));
      }
      step.push_back(make_block_loop(0, Bound::absolute(0),
                                     Bound::from_size(0), tile[0],
                                     LoopProps{}, std::move(walk)));
      if (!health.empty()) {
        for (int j = 0; j < ca.k; ++j) {
          step.push_back(make_substep(j, {make_health_check(health)}));
        }
      }
    } else {
      for (int j = 0; j < ca.k; ++j) {
        std::vector<NodePtr> sub;
        for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
          std::vector<Bound> lo = domain_lo(nd);
          std::vector<Bound> hi = domain_hi(nd);
          for (int d = 0; d < nd; ++d) {
            const auto ud = static_cast<std::size_t>(d);
            const int e = ca.ext[static_cast<std::size_t>(j)][ci][ud];
            lo[ud].ghost = e;
            hi[ud].ghost = e;
          }
          sub.push_back(build_nest(clusters[ci], nd, opts, lo, hi, tile));
        }
        if (!health.empty()) {
          // Inside the substep: the substep's partial-strip guard also
          // guards the check, keeping the `time % interval` predicate (and
          // thus the cross-rank reduction schedule) identical on all ranks.
          sub.push_back(make_health_check(health));
        }
        step.push_back(make_substep(j, std::move(sub)));
      }
    }
  } else {
    for (const Cluster& c : clusters) {
      if (!c.needs.empty()) {
        step.push_back(make_halo_spot(c.needs));
      }
      step.push_back(
          build_nest(c, nd, opts, domain_lo(nd), domain_hi(nd), tile));
    }
    for (const SparseOpDesc& s : sparse_ops) {
      step.push_back(make_sparse_op(s.id));
      ++info.sparse_op_count;
    }
    if (!health.empty()) {
      step.push_back(make_health_check(health));
    }
  }
  if (!health.empty()) {
    info.health_checks = health;
    info.scalar_order.push_back(kHealthIntervalScalar);
  }

  std::vector<NodePtr> top = prologue;
  top.push_back(make_time_loop(std::move(step), ca.k));
  NodePtr scheduled = make_callable("Kernel", std::move(top));
  info.schedule_dump = to_debug_string(scheduled);
  schedule_span.close();

  // Stage 5: pattern lowering. Rebuild the callable, replacing HaloSpots.
  const obs::Span lower_span("compile.pattern_lower", obs::Cat::Compile, 0,
                             static_cast<std::int32_t>(opts.mode));
  int next_spot = 0;
  auto register_spot = [&](const std::vector<HaloNeed>& needs, bool is_hoisted) {
    info.spots.push_back(SpotInfo{next_spot, needs, is_hoisted});
    return next_spot++;
  };

  std::vector<NodePtr> new_top;
  for (const NodePtr& n : scheduled->body) {
    if (n->type == NodeType::HaloSpot) {
      if (opts.mode == MpiMode::None) {
        continue;
      }
      const int id = register_spot(n->needs, /*is_hoisted=*/true);
      new_top.push_back(make_halo_comm(HaloCommKind::Update, n->needs, id));
      continue;
    }
    if (n->type != NodeType::TimeLoop) {
      new_top.push_back(n);
      continue;
    }
    // Rewrite the time-loop body.
    std::vector<NodePtr> new_step;
    const auto& old = n->body;
    if (n->time_stride > 1) {
      // Communication-avoiding strip: a single spot at the strip top
      // (Update for basic/diagonal, Start for full), then the sub-steps.
      // In full mode the Wait moves inside sub-step 0, between the CORE
      // and remainder halves of its first cluster.
      std::size_t i = 0;
      int spot = -1;
      std::vector<HaloNeed> strip_needs;
      if (i < old.size() && old[i]->type == NodeType::HaloSpot) {
        strip_needs = old[i]->needs;
        spot = register_spot(strip_needs, /*is_hoisted=*/false);
        new_step.push_back(make_halo_comm(opts.mode == MpiMode::Full
                                              ? HaloCommKind::Start
                                              : HaloCommKind::Update,
                                          strip_needs, spot));
        ++i;
      }
      for (; i < old.size(); ++i) {
        const NodePtr& sub = old[i];
        if (opts.mode == MpiMode::Full && spot >= 0 && sub->time_shift == 0) {
          std::vector<NodePtr> body;
          std::vector<NodePtr> split;
          build_full_split(clusters.front(), nd, opts, ca.width.front(),
                           ca.ext.front().front(), tile, split);
          body.push_back(split[0]);  // CORE section.
          body.push_back(make_halo_comm(HaloCommKind::Wait, strip_needs, spot));
          body.push_back(split[1]);  // Remainder section.
          for (std::size_t q = 1; q < sub->body.size(); ++q) {
            body.push_back(sub->body[q]);
          }
          new_step.push_back(with_body(*sub, std::move(body)));
          continue;
        }
        new_step.push_back(sub);
      }
      new_top.push_back(with_body(*n, std::move(new_step)));
      continue;
    }
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (old[i]->type != NodeType::HaloSpot) {
        new_step.push_back(old[i]);
        continue;
      }
      if (opts.mode == MpiMode::None) {
        continue;
      }
      const std::vector<HaloNeed>& needs = old[i]->needs;
      const int id = register_spot(needs, /*is_hoisted=*/false);
      if (opts.mode != MpiMode::Full) {
        new_step.push_back(make_halo_comm(HaloCommKind::Update, needs, id));
        continue;
      }
      // Full mode: start, CORE, wait, remainder — consuming the following
      // loop nest (there is always one: spots are emitted before nests).
      assert(i + 1 < old.size() && (old[i + 1]->type == NodeType::Iteration ||
                                    old[i + 1]->type == NodeType::BlockLoop));
      // Reconstruct the cluster from the nest to rebuild split nests.
      Cluster c;
      c.needs = needs;
      const Node* cursor = old[i + 1].get();
      while (cursor->type == NodeType::BlockLoop) {
        assert(!cursor->body.empty());
        cursor = cursor->body.front().get();
      }
      while (cursor->type == NodeType::Iteration) {
        assert(!cursor->body.empty());
        if (cursor->body.front()->type == NodeType::Iteration) {
          cursor = cursor->body.front().get();
          continue;
        }
        break;
      }
      for (const NodePtr& stmt : cursor->body) {
        assert(stmt->type == NodeType::Expression);
        if (stmt->target.kind() == sym::Kind::Symbol) {
          c.point_temps.push_back(
              sym::Temp{stmt->target.node().name, stmt->value});
        } else {
          c.eqs.emplace_back(stmt->target, stmt->value);
        }
      }
      new_step.push_back(make_halo_comm(HaloCommKind::Start, needs, id));
      std::vector<NodePtr> split;
      build_full_split(c, nd, opts, needs_width(c, nd),
                       std::vector<int>(static_cast<std::size_t>(nd), 0),
                       tile, split);
      new_step.push_back(split[0]);  // CORE section.
      new_step.push_back(make_halo_comm(HaloCommKind::Wait, needs, id));
      new_step.push_back(split[1]);  // Remainder section.
      ++i;                           // Skip the consumed nest.
    }
    new_top.push_back(make_time_loop(std::move(new_step)));
  }
  return make_callable(scheduled->name, std::move(new_top));
}

}  // namespace jitfd::ir
