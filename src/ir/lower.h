// The compiler pipeline: equations -> clusters -> scheduled IET ->
// pattern-lowered IET (paper Section III).
//
// Stages, mirroring the paper:
//  1. Clustering + data-dependence analysis: consecutive equations fuse
//     into one loop nest unless a cross-point flow/anti dependence forces
//     loop fission (e.g. elastic tau reads v.forward at offsets).
//  2. Flop-reducing arithmetic (Cluster level): factorization,
//     loop-invariant extraction, CSE.
//  3. Halo-exchange detection (Cluster level): reads of distributed
//     fields at nonzero space offsets require exchanges; a clean-set
//     analysis drops redundant spots and hoists exchanges of
//     time-invariant parameter fields out of the time loop.
//  4. Schedule: build the IET (time loop, halo spots, loop nests).
//  5. Pattern lowering (IET level): HaloSpots become blocking update
//     calls (basic/diagonal) or start/wait pairs with CORE/remainder loop
//     splitting (full), plus OpenMP/SIMD annotation and cache blocking.
#pragma once

#include <string>
#include <vector>

#include "grid/grid.h"
#include "ir/eq.h"
#include "ir/iet.h"

namespace jitfd::ir {

/// Communication/computation pattern (paper Table I).
enum class MpiMode {
  None,      ///< Serial / single rank: halo spots are dropped.
  Basic,     ///< Blocking face exchanges, multi-step, runtime buffers.
  Diagonal,  ///< Single-step 26-neighbour exchanges, preallocated buffers.
  Full,      ///< Asynchronous exchange overlapped with CORE computation.
};

const char* to_string(MpiMode mode);

/// Parse a mode name ("basic", "diagonal"/"diag", "full", "none", or the
/// Devito-style "1" meaning basic). Throws std::invalid_argument on
/// anything else.
MpiMode mode_from_string(const std::string& name);

/// Target language for the generated code.
enum class Lang {
  OpenMP,   ///< C + OpenMP pragmas (CPU path).
  OpenAcc,  ///< C + OpenACC pragmas (GPU path; emitted, not executed here).
};

struct CompileOptions {
  MpiMode mode = MpiMode::None;
  Lang lang = Lang::OpenMP;
  bool flop_reduce = true;   ///< Factorization + invariants + CSE.
  bool halo_opt = true;      ///< HaloSpot drop/merge/hoist analysis.
  /// Per-dimension cache-tile sizes, outermost first ({tz, ty, tx} in 3D;
  /// 0 = untiled along that dimension). Missing trailing entries mean
  /// untiled; the innermost dimension is never tiled (it stays contiguous
  /// for SIMD) — a nonzero innermost request is clamped and recorded in
  /// LoweringInfo::tile_clamp_reason, as are tiles that cannot fit the
  /// smallest rank-local extent (clamping must be rank-uniform or
  /// collective trial grids would diverge across ranks).
  std::vector<std::int64_t> tile;
  /// Walk the exchange_depth sub-steps of a communication-avoiding strip
  /// tile-by-tile (outermost dimension) instead of sub-step-by-sub-step,
  /// so a tile's data stays cache-resident across the k sub-steps.
  /// Requires exchange_depth > 1, an outermost tile, a non-Full pattern,
  /// and enough time buffers to keep the in-flight time indices distinct
  /// (see Function::set_default_time_slack); otherwise clamped with
  /// LoweringInfo::time_tile_clamp_reason.
  bool time_tile = false;
  bool openmp = true;        ///< Annotate parallel loops.
  /// Communication-avoiding exchange depth k: one halo exchange (of depth
  /// up to k stencil radii per dependent cluster) is amortized over k
  /// timesteps, with the skipped exchanges replaced by redundant
  /// ghost-zone compute. 1 = classic per-step exchanges. Requests are
  /// clamped (see LoweringInfo::exchange_depth) when the allocated halos
  /// are too shallow, when sparse operations or saved fields are present,
  /// or on serial grids.
  int exchange_depth = 1;
  /// Emit per-written-field numerical-health reduction kernels
  /// (NaN/Inf counts, finite min/max, L2 over the owned interior) at
  /// the end of every time step, guarded by the reserved
  /// `jitfd_health_every` scalar — a zero interval skips the kernels
  /// entirely at runtime. Defaults to off when the observability layer
  /// is compiled out (JITFD_OBS=OFF): nothing could consume the stats.
#ifndef JITFD_OBS_DISABLED
  bool health = true;
#else
  bool health = false;
#endif
};

/// Reserved scalar (rejected as a user symbol name, like the rN
/// reduction temps): the health-check interval, bound automatically by
/// Operator::apply from ApplyArgs::health_interval.
inline constexpr const char* kHealthIntervalScalar = "jitfd_health_every";

/// A halo spot registration the runtime must be told about.
struct SpotInfo {
  int id = -1;
  std::vector<HaloNeed> needs;
  bool hoisted = false;  ///< Executed once before the time loop.
};

/// Metadata produced by lowering, consumed by the Operator, the
/// interpreter and the code generator.
struct LoweringInfo {
  std::vector<sym::Temp> invariants;      ///< Hoisted scalar temps.
  std::vector<int> field_order;           ///< Field ids in argument order.
  std::vector<std::string> scalar_order;  ///< Symbol names in arg order.
  std::vector<SpotInfo> spots;
  std::string schedule_dump;  ///< Pre-lowering IET (Listings 4-5 analogue).
  int sparse_op_count = 0;
  /// Effective exchange depth after clamping (1 when the request could
  /// not be honoured; exchange_depth_clamp_reason says why).
  int exchange_depth = 1;
  std::string exchange_depth_clamp_reason;
  /// Effective per-dimension tile sizes after clamping (size ndims; all
  /// zeros when untiled). tile_clamp_reason says why a requested tile was
  /// dropped or shrunk.
  std::vector<std::int64_t> tile;
  std::string tile_clamp_reason;
  /// Whether strips walk sub-steps tile-by-tile (time tiling); when the
  /// request could not be honoured, time_tile_clamp_reason says why.
  bool time_tile = false;
  std::string time_tile_clamp_reason;
  /// The (field, time offset) pairs each step's HealthCheck reduces
  /// (empty when CompileOptions::health was off or nothing is written).
  std::vector<HaloNeed> health_checks;
};

/// One off-grid operation appended to every timestep (see sparse/).
struct SparseOpDesc {
  int id = -1;
};

/// Run stages 1-5. Returns the final lowered IET (root Callable).
/// `sparse_ops` are appended, in order, to the end of each timestep.
NodePtr lower_to_iet(const std::vector<Eq>& eqs, const grid::Grid& grid,
                     const CompileOptions& opts,
                     const std::vector<SparseOpDesc>& sparse_ops,
                     LoweringInfo& info);

}  // namespace jitfd::ir
