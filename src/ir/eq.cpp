#include "ir/eq.h"

#include <algorithm>
#include <stdexcept>

#include "symbolic/manip.h"

namespace jitfd::ir {

Eq::Eq(sym::Ex lhs_in, sym::Ex rhs_in)
    : lhs(std::move(lhs_in)), rhs(std::move(rhs_in)) {
  if (lhs.kind() != sym::Kind::FieldAccess) {
    throw std::invalid_argument("Eq: left-hand side must be a field access");
  }
  const auto& offs = lhs.node().space_offsets;
  if (std::any_of(offs.begin(), offs.end(), [](int o) { return o != 0; })) {
    throw std::invalid_argument(
        "Eq: writes must target the iteration point (zero space offsets)");
  }
}

std::vector<ReadFootprint> read_footprints(const std::vector<sym::Ex>& rhss) {
  std::map<int, ReadFootprint> by_field;
  for (const sym::Ex& rhs : rhss) {
    for (const sym::Ex& a : sym::field_accesses(rhs)) {
      const sym::ExprNode& n = a.node();
      auto [it, inserted] = by_field.try_emplace(n.field.id);
      if (inserted) {
        it->second.field = n.field;
      }
      auto [wit, winserted] = it->second.widths_by_time.try_emplace(
          n.time_offset,
          std::vector<int>(static_cast<std::size_t>(n.field.ndims), 0));
      for (std::size_t d = 0; d < n.space_offsets.size(); ++d) {
        wit->second[d] = std::max(wit->second[d], std::abs(n.space_offsets[d]));
      }
    }
  }
  std::vector<ReadFootprint> out;
  out.reserve(by_field.size());
  for (auto& [id, fp] : by_field) {
    out.push_back(std::move(fp));
  }
  return out;
}

void FieldTable::add(grid::Function* f) {
  if (find(f->field_id().id) == nullptr) {
    fields_.push_back(f);
  }
}

grid::Function* FieldTable::find(int field_id) const {
  for (grid::Function* f : fields_) {
    if (f->field_id().id == field_id) {
      return f;
    }
  }
  return nullptr;
}

grid::Function& FieldTable::at(int field_id) const {
  grid::Function* f = find(field_id);
  if (f == nullptr) {
    throw std::out_of_range("FieldTable: unknown field id");
  }
  return *f;
}

}  // namespace jitfd::ir
