// The Iteration/Expression Tree (IET) — the paper's second IR.
//
// An immutable AST of loops and expressions, built from scheduled
// clusters, on which loop-level passes operate: halo-spot optimization,
// loop blocking, OpenMP/SIMD annotation, and communication-pattern
// lowering. Both the reference interpreter and the C code generator
// consume the final IET, so every pass is exercised by functional tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/eq.h"
#include "symbolic/cse.h"
#include "symbolic/expr.h"

namespace jitfd::ir {

// --- Loop bounds -------------------------------------------------------------

/// A loop bound of the form  (size_of(dim) if relative else 0) + offset,
/// where size_of(dim) is the rank-local owned extent of the dimension.
/// Examples: DOMAIN is [A(0), S(0)); CORE is [A(w), S(-w)); the high-side
/// remainder slab is [S(-w), S(0)).
///
/// `ghost` is the communication-avoiding extension (exchange_depth > 1):
/// the bound grows into the ghost zone by `ghost` points, but only on
/// sides that have a Cartesian neighbour — extending past a physical
/// boundary would compute (and later read back) garbage ghost values.
/// Lower bounds subtract the extension, upper bounds add it; consumers
/// resolve via resolve_lo()/resolve_hi() with the per-side neighbour
/// predicate of the executing rank.
struct Bound {
  bool relative_to_size = false;
  std::int64_t offset = 0;
  std::int64_t ghost = 0;

  static Bound absolute(std::int64_t off) { return {false, off, 0}; }
  static Bound from_size(std::int64_t off) { return {true, off, 0}; }

  std::int64_t resolve(std::int64_t size) const {
    return (relative_to_size ? size : 0) + offset;
  }
  std::int64_t resolve_lo(std::int64_t size, bool has_neighbor) const {
    return resolve(size) - (has_neighbor ? ghost : 0);
  }
  std::int64_t resolve_hi(std::int64_t size, bool has_neighbor) const {
    return resolve(size) + (has_neighbor ? ghost : 0);
  }
  friend bool operator==(const Bound&, const Bound&) = default;
};

// --- Nodes ---------------------------------------------------------------------

enum class NodeType {
  Callable,    ///< Root: the generated kernel.
  Expression,  ///< Scalar-temp definition or field assignment.
  Iteration,   ///< A space loop.
  BlockLoop,   ///< A cache-tile loop: walks dimension `dim` in `tile` steps.
  TimeLoop,    ///< The sequential time loop.
  HaloSpot,    ///< Placeholder for a required halo exchange (pre-lowering).
  HaloComm,    ///< Lowered communication call (update/start/wait).
  SparseOp,    ///< Off-grid source injection / receiver interpolation.
  Section,     ///< Named grouping (e.g. "core", "remainder-x-low").
  HealthCheck,  ///< In-situ numerical-health reductions (per written field).
};

struct Node;
using NodePtr = std::shared_ptr<const Node>;

/// Properties a space loop can carry (paper Listing 6 annotations).
struct LoopProps {
  bool parallel = false;   ///< OpenMP-parallelizable.
  bool vector = false;     ///< Innermost, SIMD-friendly.

  friend bool operator==(const LoopProps&, const LoopProps&) = default;
};

/// What a HaloSpot (or lowered HaloComm) must exchange.
struct HaloNeed {
  int field_id = -1;
  int time_offset = 0;        ///< Which time buffer (relative) to exchange.
  std::vector<int> widths;    ///< Per-dimension exchange width.

  friend bool operator==(const HaloNeed&, const HaloNeed&) = default;
};

enum class HaloCommKind {
  Update,  ///< Blocking exchange (basic/diagonal modes).
  Start,   ///< Post asynchronous exchange (full mode).
  Wait,    ///< Complete asynchronous exchange (full mode).
};

/// A single IET node. One struct with per-type fields keeps tree rewrites
/// simple (passes copy-and-modify; unused fields stay empty).
struct Node {
  NodeType type = NodeType::Section;

  // Callable:
  std::string name;

  // Expression: `target = value`. A Symbol target defines a scalar temp;
  // a FieldAccess target stores to the field.
  sym::Ex target;
  sym::Ex value;

  // Iteration / BlockLoop:
  int dim = -1;        ///< Space dimension index.
  Bound lo;            ///< Inclusive lower bound.
  Bound hi;            ///< Exclusive upper bound.
  LoopProps props;
  // BlockLoop: tile extent along `dim` (always > 0). The loop walks
  // [lo, hi) in `tile`-sized windows; enclosed Iterations over the same
  // dimension are clipped to the active window.
  std::int64_t tile = 0;
  // Iteration (time-tiled sub-steps only): widen the intersection with
  // the enclosing BlockLoop window by this many points on each side
  // (never past the Iteration's own [lo, hi)). Gives each space tile the
  // ghost-extended footprint sub-step j needs (trapezoidal time tiling).
  std::int64_t tile_expand = 0;

  // HaloSpot / HaloComm:
  std::vector<HaloNeed> needs;
  HaloCommKind comm_kind = HaloCommKind::Update;
  int spot_id = -1;    ///< Runtime registration handle (set at lowering).

  // SparseOp:
  int sparse_id = -1;  ///< Runtime registration handle.

  // TimeLoop: steps per iteration (exchange_depth; 1 = plain stepping).
  std::int64_t time_stride = 1;
  // Section "substep": time shift of this sub-step within a strip.
  // Sub-steps with shift > 0 are guarded (skipped when the last strip is
  // partial, i.e. strip_t + shift > time_M).
  std::int64_t time_shift = 0;

  // Children (Callable, TimeLoop, Iteration, Section bodies).
  std::vector<NodePtr> body;
};

// --- Constructors ----------------------------------------------------------------

NodePtr make_callable(std::string name, std::vector<NodePtr> body);
NodePtr make_expression(sym::Ex target, sym::Ex value);
NodePtr make_iteration(int dim, Bound lo, Bound hi, LoopProps props,
                       std::vector<NodePtr> body, std::int64_t tile_expand = 0);
/// A cache-tile loop over dimension `dim`: walks [lo, hi) in `tile`-point
/// windows; Iterations over `dim` inside `body` execute clipped to the
/// active window (optionally widened by their own `tile_expand`).
NodePtr make_block_loop(int dim, Bound lo, Bound hi, std::int64_t tile,
                        LoopProps props, std::vector<NodePtr> body);
NodePtr make_time_loop(std::vector<NodePtr> body);
NodePtr make_time_loop(std::vector<NodePtr> body, std::int64_t stride);
/// One sub-step of a communication-avoiding strip (Section "substep").
NodePtr make_substep(std::int64_t shift, std::vector<NodePtr> body);
NodePtr make_halo_spot(std::vector<HaloNeed> needs);
NodePtr make_halo_comm(HaloCommKind kind, std::vector<HaloNeed> needs,
                       int spot_id);
NodePtr make_sparse_op(int sparse_id);
NodePtr make_section(std::string name, std::vector<NodePtr> body);
/// Health reductions over the owned interior of each (field, time
/// offset) in `needs` (widths unused — health never reads ghosts).
/// Guarded at runtime by the reserved `jitfd_health_every` scalar.
NodePtr make_health_check(std::vector<HaloNeed> needs);

/// Shallow-copy `n` with a replaced body (the rewrite primitive).
NodePtr with_body(const Node& n, std::vector<NodePtr> body);

/// Render the tree in the abbreviated angle-bracket style of the paper's
/// Listings 4-6 (used by golden tests and --dump-iet debugging output).
std::string to_debug_string(const NodePtr& root);

}  // namespace jitfd::ir
