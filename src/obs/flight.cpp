#include "obs/flight.h"

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/env.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jitfd::obs::flight {

namespace {

/// Trace/event tail lengths per bundle: enough for a story, small
/// enough that a dump stays a few hundred KB.
constexpr std::size_t kTraceTailPerRank = 128;
constexpr std::size_t kEventTail = 256;

/// Per-rank current-step slots (ranks are threads of one process; the
/// SMPI substrate caps world sizes far below this).
constexpr int kMaxRanks = 256;

struct State {
  std::mutex mtx;
  std::map<std::string, std::string> config;
  std::deque<HealthRec> health;
  std::string dump_path;
};

State& state() {
  static State* s = new State;  // Leaked: see trace.cpp registry note.
  return *s;
}

std::atomic<std::int64_t> g_steps[kMaxRanks];
std::atomic<int> g_max_rank{-1};
std::atomic<bool> g_dumped{false};

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

std::string build_bundle(const std::string& reason, int rank,
                         std::int64_t step, const std::string& detail) {
  std::ostringstream os;
  os << "{\n\"flight\": {\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"reason\": \"" << json_escape(reason) << "\",\n";
  os << "  \"rank\": " << rank << ",\n";
  os << "  \"step\": " << step << ",\n";
  os << "  \"detail\": \"" << json_escape(detail) << "\",\n";

  State& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mtx);
    os << "  \"config\": {";
    bool first = true;
    for (const auto& [k, v] : s.config) {
      os << (first ? "\n" : ",\n") << "    \"" << json_escape(k)
         << "\": " << v;
      first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"health\": [";
    first = true;
    auto finite_or_null = [&os](double v) {
      if (std::isfinite(v)) {
        os << v;
      } else {
        os << "null";
      }
    };
    for (const HealthRec& h : s.health) {
      os << (first ? "\n" : ",\n") << "    {\"step\": " << h.step
         << ", \"field\": \"" << json_escape(h.field)
         << "\", \"field_id\": " << h.field_id << ", \"nan\": "
         << h.nan_count << ", \"inf\": " << h.inf_count << ", \"min\": ";
      finite_or_null(h.min);
      os << ", \"max\": ";
      finite_or_null(h.max);
      os << ", \"l2\": ";
      finite_or_null(h.l2);
      os << ", \"bad_rank\": " << h.bad_rank << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "],\n";
  }

  os << "  \"steps\": [";
  {
    bool first = true;
    const int max_rank = g_max_rank.load(std::memory_order_relaxed);
    for (int r = 0; r <= max_rank && r < kMaxRanks; ++r) {
      os << (first ? "\n" : ",\n") << "    {\"rank\": " << r
         << ", \"step\": " << g_steps[r].load(std::memory_order_relaxed)
         << "}";
      first = false;
    }
    os << (first ? "" : "\n  ") << "],\n";
  }

  // Recent structured events (bounded tail of the per-thread rings).
  {
    events::EventData ev = events::collect();
    if (ev.events.size() > kEventTail) {
      ev.events.erase(ev.events.begin(),
                      ev.events.end() -
                          static_cast<std::ptrdiff_t>(kEventTail));
    }
    os << "  \"events\": " << events::to_json(ev) << ",\n";
  }

  // Trace-ring tail, newest kTraceTailPerRank spans per rank.
  {
    const TraceData trace = obs::collect();
    std::map<int, std::vector<const TraceData::Rec*>> by_rank;
    for (const TraceData::Rec& rec : trace.events) {
      by_rank[rec.rank].push_back(&rec);
    }
    os << "  \"trace\": [";
    bool first = true;
    for (const auto& [r, recs] : by_rank) {
      const std::size_t begin =
          recs.size() > kTraceTailPerRank ? recs.size() - kTraceTailPerRank
                                          : 0;
      for (std::size_t i = begin; i < recs.size(); ++i) {
        const TraceData::Rec& rec = *recs[i];
        os << (first ? "\n" : ",\n") << "    {\"name\": \""
           << json_escape(rec.name) << "\", \"cat\": \""
           << obs::to_string(rec.cat) << "\", \"rank\": " << rec.rank
           << ", \"t0_ns\": " << rec.t0_ns << ", \"t1_ns\": " << rec.t1_ns
           << ", \"a0\": " << rec.a0 << ", \"a1\": " << rec.a1 << "}";
        first = false;
      }
    }
    os << (first ? "" : "\n  ") << "],\n";
  }

  os << "  \"metrics\": " << metrics::to_json();
  os << "}\n}\n";
  return os.str();
}

void signal_handler(int sig) {
  // Not async-signal-safe, but the process is dying anyway; a partial
  // bundle beats none. Restore the default disposition first so a
  // second fault during the dump terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  dump("signal:" + std::to_string(sig), -1, -1, "fatal signal");
  std::raise(sig);
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void terminate_handler() {
  std::string what = "(unknown)";
  if (const std::exception_ptr p = std::current_exception()) {
    try {
      std::rethrow_exception(p);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
  }
  dump("uncaught_exception", -1, -1, what);
  if (g_prev_terminate != nullptr) {
    g_prev_terminate();
  }
  std::abort();
}

}  // namespace

void set_config(const std::string& key, const std::string& json_value) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mtx);
  s.config[key] = json_value;
}

void record_health(const HealthRec& rec) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mtx);
  s.health.push_back(rec);
  while (s.health.size() > kHealthRing) {
    s.health.pop_front();
  }
}

void note_step(int rank, std::int64_t step) {
  if (rank < 0 || rank >= kMaxRanks) {
    return;
  }
  g_steps[rank].store(step, std::memory_order_relaxed);
  int prev = g_max_rank.load(std::memory_order_relaxed);
  while (rank > prev && !g_max_rank.compare_exchange_weak(
                            prev, rank, std::memory_order_relaxed)) {
  }
}

std::string dump(const std::string& reason, int rank, std::int64_t step,
                 const std::string& detail) {
  State& s = state();
  const std::string dir = jitfd::env::get_string("JITFD_FLIGHT_DIR", "");
  std::string path = !dir.empty() ? dir + "/jitfd_flight.json"
                                  : std::string("jitfd_flight.json");
  bool expected = false;
  if (!g_dumped.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    // A bundle exists or is being written; the path is deterministic,
    // so report it even if the winner has not finished recording it.
    const std::lock_guard<std::mutex> lock(s.mtx);
    return s.dump_path.empty() ? path : s.dump_path;
  }
  const std::string bundle = build_bundle(reason, rank, step, detail);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bundle;
  }
  const std::lock_guard<std::mutex> lock(s.mtx);
  s.dump_path = path;
  return path;
}

bool dumped() { return g_dumped.load(std::memory_order_acquire); }

void reset_for_testing() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mtx);
  g_dumped.store(false, std::memory_order_release);
  s.dump_path.clear();
  s.health.clear();
  g_max_rank.store(-1, std::memory_order_relaxed);
}

void install_crash_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_prev_terminate = std::set_terminate(&terminate_handler);
    for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGBUS}) {
      std::signal(sig, &signal_handler);
    }
  });
}

}  // namespace jitfd::obs::flight
