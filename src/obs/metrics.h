// Lightweight metrics registry: named counters, gauges and histograms
// populated by instrumented sites (halo runtime, JIT cache, SMPI
// transport, operator runs) and by the offline cross-rank analyzer
// (obs/analysis.h), exported as stable machine-readable JSON and a
// Prometheus-style text format.
//
// Cost model — identical to trace.h:
//  - compiled out      — with -DJITFD_OBS=OFF, enabled() is a constexpr
//    false and every mutation folds to nothing (the registry still
//    exists so exports stay linkable, but it only ever reports zeros).
//  - disabled at runtime (default) — one relaxed atomic load and a
//    predicted branch per site.
//  - enabled           — one relaxed atomic RMW per counter/gauge
//    update; histograms add one more for the bucket.
//
// Hot sites amortize the name lookup with a function-local static:
//
//   static obs::metrics::Counter& c = obs::metrics::counter("halo.messages");
//   c.add(1);
//
// Instruments are process-wide (ranks are threads and share one
// registry) and never destroyed, so rank threads that outlive static
// teardown stay safe — the same leak-on-purpose policy as the trace
// ring registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jitfd::obs::metrics {

#ifndef JITFD_OBS_DISABLED
namespace detail {
extern std::atomic<std::uint32_t> g_enabled;
}  // namespace detail

/// Whether sites record (the JITFD_METRICS=1 environment variable sets
/// it before main; set_enabled flips it at runtime).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed) != 0;
}
#else
constexpr bool enabled() { return false; }
#endif

void set_enabled(bool on);

/// Monotonic event count. add() is wait-free and safe from any rank
/// thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins sampled value (overlap efficiency, copies/message,
/// imbalance ratio, ...).
class Gauge {
 public:
  void set(double v) {
    if (enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution over a fixed range. Bucket i counts
/// observations <= kBucketBase * 2^i seconds (or whatever unit the
/// site observes in); the last bucket is +Inf. Exposes Prometheus-style
/// cumulative buckets plus sum and count.
class Histogram {
 public:
  static constexpr int kBuckets = 24;
  static constexpr double kBucketBase = 1e-6;  ///< First upper bound.

  void observe(double v);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Non-cumulative count of bucket i.
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (+Inf for the last).
  static double upper_bound(int i);
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Look up (registering on first use) an instrument. The returned
/// reference lives forever; a name registered as one kind must not be
/// reused as another (throws std::logic_error).
///
/// The `help` overloads attach a one-line description, exported as the
/// Prometheus `# HELP` text and the JSON "help" field. The description
/// sticks to the instrument: a later lookup without (or with an empty)
/// help keeps the existing text, and the first non-empty help wins.
Counter& counter(std::string_view name);
Counter& counter(std::string_view name, std::string_view help);
Gauge& gauge(std::string_view name);
Gauge& gauge(std::string_view name, std::string_view help);
Histogram& histogram(std::string_view name);
Histogram& histogram(std::string_view name, std::string_view help);

/// Zero every registered instrument (registrations are kept). Meant for
/// quiescent moments, like trace reset().
void reset();

/// One registered instrument, snapshotted (export order is the sorted
/// name order, so the formats are stable across runs).
struct Snapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  std::string help;  ///< One-line description ("" when never given).
  Kind kind = Kind::Counter;
  std::uint64_t count = 0;  ///< Counter value / histogram count.
  double value = 0.0;       ///< Gauge value / histogram sum.
  std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, cumulative).
};

std::vector<Snapshot> snapshot();

/// Stable machine-readable export:
///   {"metrics": [{"name": ..., "type": "counter"|"gauge"|"histogram",
///                 "value": ...} | {..., "count": N, "sum": S,
///                 "buckets": [{"le": ..., "count": ...}, ...]}]}
std::string to_json();

/// Prometheus text exposition format. Names are prefixed with "jitfd_"
/// and sanitized ('.' and any non [a-zA-Z0-9_] become '_').
std::string to_prometheus();

}  // namespace jitfd::obs::metrics
