// Cross-rank trace analysis: merges the per-rank TraceData snapshot
// into a global timeline (all ranks share one steady_clock epoch, so
// timestamps are directly comparable) and answers the distributed
// questions the per-rank RunProfile cannot:
//
//  * wait-state attribution — every blocking halo.wait on rank R for
//    peer S is matched against the corresponding halo.send on S
//    (Scalasca-style late-sender/late-receiver split). Matching keys on
//    the deterministic program order both sides share: the k-th
//    chronological send S->R pairs with the k-th chronological wait on
//    R for S, which is sound because sender and receiver enumerate
//    spots/fields/directions identically and SMPI delivery is
//    non-overtaking per (source, tag).
//  * overlap efficiency (full pattern) — fraction of each async
//    exchange's wall time (halo.start open .. halo.finish close) hidden
//    under compute (the gap between start closing and finish opening).
//  * load imbalance — max/mean compute seconds across ranks, the
//    critical-path rank, and (interpreter runs, whose compute spans
//    carry the timestep in a0) a per-step breakdown.
//  * deep-halo strip accounting — exchanges actually performed vs.
//    steps covered, and redundant compute: within each k-deep strip the
//    ghost-extended early sub-steps cost more than the last one; the
//    excess is the price paid for the saved exchanges, comparable to
//    perfmodel's t_redundant.
//
// Analysis is strictly offline: it runs over a collected snapshot after
// the ranks have joined and touches no tracing hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace jitfd::obs {

/// Per-rank wait-state accounting.
struct RankWaitStats {
  int rank = 0;
  double wait_s = 0.0;          ///< Total halo.wait time on this rank.
  double late_sender_s = 0.0;   ///< Wait time spent before the peer sent.
  double late_receiver_s = 0.0; ///< Wait time on messages already delivered.
  double blamed_s = 0.0;  ///< Late-sender wait *other* ranks spent on us.
};

/// Per-rank compute load, the raw material for imbalance-aware
/// decomposition (Grid::plan_rebalance consumes these).
struct RankLoad {
  int rank = 0;
  double compute_s = 0.0;  ///< Total compute seconds on this rank.
};

/// Per-timestep compute load across ranks (interpreter runs only; JIT
/// loops carry no per-step compute spans).
struct StepLoad {
  std::int64_t step = 0;
  double max_compute_s = 0.0;
  double mean_compute_s = 0.0;
  int critical_rank = -1;
};

struct AnalysisReport {
  int nranks = 0;
  std::uint64_t steps = 0;   ///< Max "step" spans over ranks.
  std::uint64_t strips = 0;  ///< Max "strip" spans over ranks (0 at k=1).
  int exchange_depth = 1;    ///< Inferred: ceil(steps / strips).
  double wall_s = 0.0;       ///< Global extent (max end - min start).

  // -- Wait-state attribution ------------------------------------------
  double late_sender_s = 0.0;    ///< Sum over matched waits.
  double late_receiver_s = 0.0;
  double transfer_s = 0.0;       ///< Matched wait time that is neither.
  std::uint64_t matched_waits = 0;
  std::uint64_t unmatched_waits = 0;  ///< Waits with no pairable send.
  int late_sender_culprit = -1;  ///< argmax blamed_s; -1 when no waits.
  std::uint64_t rendezvous_msgs = 0;  ///< Receiver was already waiting.
  std::uint64_t queued_msgs = 0;      ///< Receiver had not posted yet.
  std::vector<RankWaitStats> rank_waits;

  // -- Overlap (full pattern) ------------------------------------------
  std::uint64_t async_exchanges = 0;  ///< Paired halo.start/halo.finish.
  double overlap_window_s = 0.0;  ///< Sum of exchange wall times.
  double overlap_hidden_s = 0.0;  ///< Portion overlapped with compute.
  double overlap_efficiency = 0.0;  ///< hidden / window (0 when no async).

  // -- Load imbalance --------------------------------------------------
  double max_compute_s = 0.0;
  double mean_compute_s = 0.0;
  double imbalance_ratio = 0.0;  ///< max / mean; 1.0 is perfectly balanced.
  int critical_path_rank = -1;
  std::vector<RankLoad> rank_loads;  ///< Per-rank compute totals, by rank.
  std::vector<StepLoad> step_loads;

  // -- Deep-halo strip accounting --------------------------------------
  std::uint64_t exchanges = 0;  ///< halo.update + halo.start (max over ranks).
  std::uint64_t saved_exchanges = 0;    ///< steps - strips when k > 1.
  double redundant_compute_s = 0.0;  ///< Ghost-extension excess in strips.
};

/// Run the cross-rank analysis over a collected snapshot. Cheap on an
/// empty snapshot (returns a zero report).
AnalysisReport analyze(const TraceData& data);

/// Stable machine-readable export: one top-level "analysis" object with
/// "wait" / "overlap" / "imbalance" / "deep_halo" sections
/// (validated by obs::validate_analysis_json / tools/trace_check).
std::string analysis_json(const AnalysisReport& report);
bool write_analysis_file(const std::string& path,
                         const AnalysisReport& report);

/// Human-readable digest (a few lines), for logs and examples.
std::string analysis_summary(const AnalysisReport& report);

/// Publish the report into the obs::metrics registry as
/// "analysis.*" gauges (no-op while metrics are disabled).
void export_metrics(const AnalysisReport& report);

}  // namespace jitfd::obs
