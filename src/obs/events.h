// Bounded, lock-free structured event log: the narrative complement to
// trace.h's timing spans. Sites record *what happened* (a health check
// fired, a halo exchange ran, a NaN was detected, an inversion residual
// moved) as (name, category, step, key/value payload) records; the
// flight recorder's post-mortem bundle and the obs exports read them
// back at quiescent moments.
//
// Cost model — identical to trace.h:
//  - compiled out      — with -DJITFD_OBS=OFF, enabled() is a constexpr
//    false and emit() folds to nothing.
//  - disabled at runtime (default) — one relaxed atomic load and a
//    predicted branch per site.
//  - enabled           — one 0-allocation store into the calling
//    thread's single-writer ring (keys are string literals, stored by
//    pointer; values are doubles).
//
// One ring per thread; SMPI ranks are threads, so smpi::run tags each
// rank thread via set_thread_rank. collect()/reset() follow the same
// quiescence contract as trace.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace jitfd::obs::events {

/// Event category; the coarse filter of exports and the flight bundle.
enum class EvCat : std::uint8_t {
  Health,  ///< Numerical-health checks and divergence detections.
  Halo,    ///< Halo-exchange lifecycle events.
  Run,     ///< Operator/step-level events.
  Solver,  ///< Application-level events (inversion residuals, ...).
};

/// Number of categories. EvCat::Solver must stay the last enumerator.
inline constexpr int kEvCatCount = static_cast<int>(EvCat::Solver) + 1;

const char* to_string(EvCat cat);

/// Maximum key/value pairs per event; extra pairs are dropped.
inline constexpr int kMaxKv = 4;

/// One key/value payload entry. `key` must be a string literal (stored
/// by pointer, like trace event names).
struct KV {
  const char* key;
  double value;
};

namespace detail {

extern std::atomic<std::uint32_t> g_enabled;

void record(const char* name, EvCat cat, std::int64_t step,
            const KV* kvs, int nkv);

}  // namespace detail

#ifndef JITFD_OBS_DISABLED
/// Whether emit() records (JITFD_EVENTS=1 sets it before main).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed) != 0;
}
#else
constexpr bool enabled() { return false; }
#endif

/// Global on/off switch, composing with EnableScope like trace.h.
void set_enabled(bool on);

/// Ref-counted runtime enabler (concurrent SPMD ranks must not turn
/// each other's logging off).
class EnableScope {
 public:
  explicit EnableScope(bool on);
  ~EnableScope();
  EnableScope(const EnableScope&) = delete;
  EnableScope& operator=(const EnableScope&) = delete;

 private:
  bool on_ = false;
};

/// Tag the calling thread's ring with an SMPI rank id (smpi::run calls
/// this on every rank thread; untagged threads record as rank 0).
void set_thread_rank(int rank);

/// Ring capacity (events per thread) for rings created after the call;
/// rounded up to a power of two, minimum 8. Default 4096, overridable
/// via JITFD_EVENTS_RING.
void set_ring_capacity(std::size_t events);

/// Record one structured event. `name` and every key must be string
/// literals; at most kMaxKv pairs are kept.
inline void emit(const char* name, EvCat cat, std::int64_t step,
                 std::initializer_list<KV> kvs = {}) {
  if (enabled()) {
    detail::record(name, cat, step, kvs.begin(),
                   static_cast<int>(kvs.size()));
  }
}

/// A snapshot of every thread's ring, flattened and sorted by
/// (rank, record order). `dropped` counts events lost to wraparound.
struct EventData {
  struct Rec {
    std::string name;
    EvCat cat = EvCat::Run;
    int rank = 0;
    std::int64_t step = 0;
    std::uint64_t t_ns = 0;  ///< Trace-epoch timestamp (obs::now_ns).
    std::vector<std::pair<std::string, double>> kv;
  };
  std::vector<Rec> events;
  std::uint64_t dropped = 0;

  bool empty() const { return events.empty(); }
};

/// Snapshot all rings. Same quiescence contract as trace collect().
EventData collect();

/// Discard recorded events (rings are kept).
void reset();

/// Stable machine-readable export:
///   {"events": [{"name": ..., "cat": ..., "rank": N, "step": N,
///                "t_ns": N, "kv": {"key": value, ...}}, ...]}
std::string to_json(const EventData& data);

}  // namespace jitfd::obs::events
