#include "obs/json_check.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

namespace jitfd::obs {

namespace {

struct JVal {
  enum class Type { Null, Bool, Num, Str, Arr, Obj };
  Type type = Type::Null;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;

  const JVal* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  bool parse(JVal& out, std::string& err) {
    skip_ws();
    if (!value(out, err)) {
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      err = at("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  std::string at(const std::string& msg) const {
    return msg + " (offset " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool value(JVal& out, std::string& err) {
    if (pos_ >= s_.size()) {
      err = at("unexpected end of input");
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object(out, err);
      case '[':
        return array(out, err);
      case '"':
        out.type = JVal::Type::Str;
        return string(out.str, err);
      case 't':
        if (literal("true")) {
          out.type = JVal::Type::Bool;
          out.boolean = true;
          return true;
        }
        break;
      case 'f':
        if (literal("false")) {
          out.type = JVal::Type::Bool;
          out.boolean = false;
          return true;
        }
        break;
      case 'n':
        if (literal("null")) {
          out.type = JVal::Type::Null;
          return true;
        }
        break;
      default:
        return number(out, err);
    }
    err = at("invalid token");
    return false;
  }

  bool number(JVal& out, std::string& err) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      err = at("invalid number");
      return false;
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err = at("invalid fraction");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err = at("invalid exponent");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    out.type = JVal::Type::Num;
    out.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                          nullptr);
    return true;
  }

  bool string(std::string& out, std::string& err) {
    ++pos_;  // Opening quote.
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        err = at("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          break;
        }
        switch (s_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            out += ' ';
            break;
          case 'u': {
            for (int i = 1; i <= 4; ++i) {
              if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(
                      s_[pos_ + static_cast<std::size_t>(i)]))) {
                err = at("invalid \\u escape");
                return false;
              }
            }
            pos_ += 4;
            out += '?';
            break;
          }
          default:
            err = at("invalid escape");
            return false;
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    err = at("unterminated string");
    return false;
  }

  bool array(JVal& out, std::string& err) {
    out.type = JVal::Type::Arr;
    ++pos_;  // '['.
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JVal v;
      skip_ws();
      if (!value(v, err)) {
        return false;
      }
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        err = at("unterminated array");
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      err = at("expected ',' or ']'");
      return false;
    }
  }

  bool object(JVal& out, std::string& err) {
    out.type = JVal::Type::Obj;
    ++pos_;  // '{'.
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        err = at("expected object key");
        return false;
      }
      std::string key;
      if (!string(key, err)) {
        return false;
      }
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        err = at("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      JVal v;
      if (!value(v, err)) {
        return false;
      }
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        err = at("unterminated object");
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      err = at("expected ',' or '}'");
      return false;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool require_num(const JVal& ev, const std::string& key, double* out,
                 std::string& err) {
  const JVal* v = ev.find(key);
  if (v == nullptr || v->type != JVal::Type::Num) {
    err = "event missing numeric \"" + key + "\"";
    return false;
  }
  if (out != nullptr) {
    *out = v->num;
  }
  return true;
}

}  // namespace

bool json_valid(std::string_view json, std::string* error) {
  JVal root;
  std::string err;
  const bool ok = Parser(json).parse(root, err);
  if (!ok && error != nullptr) {
    *error = err;
  }
  return ok;
}

ChromeCheck validate_chrome_trace(std::string_view json) {
  ChromeCheck out;
  JVal root;
  if (!Parser(json).parse(root, out.error)) {
    return out;
  }
  if (root.type != JVal::Type::Obj) {
    out.error = "top level is not an object";
    return out;
  }
  const JVal* events = root.find("traceEvents");
  if (events == nullptr || events->type != JVal::Type::Arr) {
    out.error = "missing \"traceEvents\" array";
    return out;
  }
  for (const JVal& ev : events->arr) {
    if (ev.type != JVal::Type::Obj) {
      out.error = "trace event is not an object";
      return out;
    }
    const JVal* name = ev.find("name");
    const JVal* ph = ev.find("ph");
    if (name == nullptr || name->type != JVal::Type::Str ||
        ph == nullptr || ph->type != JVal::Type::Str || ph->str.empty()) {
      out.error = "event missing string \"name\"/\"ph\"";
      return out;
    }
    if (ph->str == "M") {
      continue;  // Metadata events carry no timestamps.
    }
    double ts = 0.0;
    double tid = 0.0;
    if (!require_num(ev, "ts", &ts, out.error) ||
        !require_num(ev, "pid", nullptr, out.error) ||
        !require_num(ev, "tid", &tid, out.error)) {
      return out;
    }
    if (ts < 0.0) {
      out.error = "negative timestamp";
      return out;
    }
    if (ph->str == "X") {
      double dur = 0.0;
      if (!require_num(ev, "dur", &dur, out.error)) {
        return out;
      }
      if (dur < 0.0) {
        out.error = "negative duration";
        return out;
      }
      ++out.complete;
    } else if (ph->str == "i") {
      ++out.instants;
    }
    ++out.events;
    out.tids.insert(static_cast<int>(tid));
  }
  out.ok = true;
  return out;
}

}  // namespace jitfd::obs
