#include "obs/json_check.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

namespace jitfd::obs {

namespace {


class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  bool parse(JsonValue& out, std::string& err) {
    skip_ws();
    if (!value(out, err)) {
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      err = at("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  std::string at(const std::string& msg) const {
    return msg + " (offset " + std::to_string(pos_) + ")";
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool value(JsonValue& out, std::string& err) {
    if (pos_ >= s_.size()) {
      err = at("unexpected end of input");
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return object(out, err);
      case '[':
        return array(out, err);
      case '"':
        out.type = JsonValue::Type::Str;
        return string(out.str, err);
      case 't':
        if (literal("true")) {
          out.type = JsonValue::Type::Bool;
          out.boolean = true;
          return true;
        }
        break;
      case 'f':
        if (literal("false")) {
          out.type = JsonValue::Type::Bool;
          out.boolean = false;
          return true;
        }
        break;
      case 'n':
        if (literal("null")) {
          out.type = JsonValue::Type::Null;
          return true;
        }
        break;
      default:
        return number(out, err);
    }
    err = at("invalid token");
    return false;
  }

  bool number(JsonValue& out, std::string& err) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      err = at("invalid number");
      return false;
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err = at("invalid fraction");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        err = at("invalid exponent");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    out.type = JsonValue::Type::Num;
    out.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                          nullptr);
    return true;
  }

  bool string(std::string& out, std::string& err) {
    ++pos_;  // Opening quote.
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        err = at("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) {
          break;
        }
        switch (s_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            out += ' ';
            break;
          case 'u': {
            for (int i = 1; i <= 4; ++i) {
              if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                  !std::isxdigit(static_cast<unsigned char>(
                      s_[pos_ + static_cast<std::size_t>(i)]))) {
                err = at("invalid \\u escape");
                return false;
              }
            }
            pos_ += 4;
            out += '?';
            break;
          }
          default:
            err = at("invalid escape");
            return false;
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    err = at("unterminated string");
    return false;
  }

  bool array(JsonValue& out, std::string& err) {
    out.type = JsonValue::Type::Arr;
    ++pos_;  // '['.
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!value(v, err)) {
        return false;
      }
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        err = at("unterminated array");
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      err = at("expected ',' or ']'");
      return false;
    }
  }

  bool object(JsonValue& out, std::string& err) {
    out.type = JsonValue::Type::Obj;
    ++pos_;  // '{'.
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        err = at("expected object key");
        return false;
      }
      std::string key;
      if (!string(key, err)) {
        return false;
      }
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        err = at("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v, err)) {
        return false;
      }
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) {
        err = at("unterminated object");
        return false;
      }
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      err = at("expected ',' or '}'");
      return false;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

bool require_num(const JsonValue& ev, const std::string& key, double* out,
                 std::string& err) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->type != JsonValue::Type::Num) {
    err = "event missing numeric \"" + key + "\"";
    return false;
  }
  if (out != nullptr) {
    *out = v->num;
  }
  return true;
}

}  // namespace

bool json_parse(std::string_view json, JsonValue& out, std::string* error) {
  std::string err;
  const bool ok = Parser(json).parse(out, err);
  if (!ok && error != nullptr) {
    *error = err;
  }
  return ok;
}

bool json_valid(std::string_view json, std::string* error) {
  JsonValue root;
  return json_parse(json, root, error);
}

ChromeCheck validate_chrome_trace(std::string_view json) {
  ChromeCheck out;
  JsonValue root;
  if (!Parser(json).parse(root, out.error)) {
    return out;
  }
  if (root.type != JsonValue::Type::Obj) {
    out.error = "top level is not an object";
    return out;
  }
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::Arr) {
    out.error = "missing \"traceEvents\" array";
    return out;
  }
  for (const JsonValue& ev : events->arr) {
    if (ev.type != JsonValue::Type::Obj) {
      out.error = "trace event is not an object";
      return out;
    }
    const JsonValue* name = ev.find("name");
    const JsonValue* ph = ev.find("ph");
    if (name == nullptr || name->type != JsonValue::Type::Str ||
        ph == nullptr || ph->type != JsonValue::Type::Str || ph->str.empty()) {
      out.error = "event missing string \"name\"/\"ph\"";
      return out;
    }
    if (ph->str == "M") {
      continue;  // Metadata events carry no timestamps.
    }
    double ts = 0.0;
    double tid = 0.0;
    if (!require_num(ev, "ts", &ts, out.error) ||
        !require_num(ev, "pid", nullptr, out.error) ||
        !require_num(ev, "tid", &tid, out.error)) {
      return out;
    }
    if (ts < 0.0) {
      out.error = "negative timestamp";
      return out;
    }
    if (ph->str == "X") {
      double dur = 0.0;
      if (!require_num(ev, "dur", &dur, out.error)) {
        return out;
      }
      if (dur < 0.0) {
        out.error = "negative duration";
        return out;
      }
      ++out.complete;
    } else if (ph->str == "i") {
      ++out.instants;
    }
    ++out.events;
    out.tids.insert(static_cast<int>(tid));
  }
  out.ok = true;
  return out;
}

namespace {

bool want_num(const JsonValue& obj, const std::string& key,
              std::string& err, const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::Num) {
    err = where + " missing numeric \"" + key + "\"";
    return false;
  }
  return true;
}

const JsonValue* want_obj(const JsonValue& obj, const std::string& key,
                          std::string& err, const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::Obj) {
    err = where + " missing object \"" + key + "\"";
    return nullptr;
  }
  return v;
}

const JsonValue* want_arr(const JsonValue& obj, const std::string& key,
                          std::string& err, const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::Arr) {
    err = where + " missing array \"" + key + "\"";
    return nullptr;
  }
  return v;
}

}  // namespace

SchemaCheck validate_metrics_json(std::string_view json) {
  SchemaCheck out;
  JsonValue root;
  if (!json_parse(json, root, &out.error)) {
    return out;
  }
  if (root.type != JsonValue::Type::Obj) {
    out.error = "top level is not an object";
    return out;
  }
  const JsonValue* metrics = want_arr(root, "metrics", out.error, "document");
  if (metrics == nullptr) {
    return out;
  }
  for (const JsonValue& m : metrics->arr) {
    if (m.type != JsonValue::Type::Obj) {
      out.error = "metrics entry is not an object";
      return out;
    }
    const JsonValue* name = m.find("name");
    const JsonValue* type = m.find("type");
    if (name == nullptr || name->type != JsonValue::Type::Str ||
        name->str.empty() || type == nullptr ||
        type->type != JsonValue::Type::Str) {
      out.error = "metrics entry missing string \"name\"/\"type\"";
      return out;
    }
    const std::string where = "metric \"" + name->str + "\"";
    if (type->str == "counter" || type->str == "gauge") {
      if (!want_num(m, "value", out.error, where)) {
        return out;
      }
    } else if (type->str == "histogram") {
      if (!want_num(m, "count", out.error, where) ||
          !want_num(m, "sum", out.error, where)) {
        return out;
      }
      const JsonValue* buckets = want_arr(m, "buckets", out.error, where);
      if (buckets == nullptr) {
        return out;
      }
      double prev = -1.0;
      for (const JsonValue& b : buckets->arr) {
        const JsonValue* count = b.find("count");
        const JsonValue* le = b.find("le");
        if (b.type != JsonValue::Type::Obj || count == nullptr ||
            count->type != JsonValue::Type::Num || le == nullptr) {
          out.error = where + " has a malformed bucket";
          return out;
        }
        // Cumulative counts must be monotone non-decreasing.
        if (count->num < prev) {
          out.error = where + " has non-monotone bucket counts";
          return out;
        }
        prev = count->num;
      }
    } else {
      out.error = where + " has unknown type \"" + type->str + "\"";
      return out;
    }
    ++out.items;
  }
  out.ok = true;
  return out;
}

SchemaCheck validate_analysis_json(std::string_view json) {
  SchemaCheck out;
  JsonValue root;
  if (!json_parse(json, root, &out.error)) {
    return out;
  }
  if (root.type != JsonValue::Type::Obj) {
    out.error = "top level is not an object";
    return out;
  }
  const JsonValue* a = want_obj(root, "analysis", out.error, "document");
  if (a == nullptr) {
    return out;
  }
  for (const char* key :
       {"nranks", "steps", "strips", "exchange_depth", "wall_seconds"}) {
    if (!want_num(*a, key, out.error, "\"analysis\"")) {
      return out;
    }
  }
  const JsonValue* wait = want_obj(*a, "wait", out.error, "\"analysis\"");
  if (wait == nullptr) {
    return out;
  }
  for (const char* key :
       {"late_sender_seconds", "late_receiver_seconds", "transfer_seconds",
        "matched", "unmatched", "culprit_rank", "rendezvous_messages",
        "queued_messages"}) {
    if (!want_num(*wait, key, out.error, "\"wait\"")) {
      return out;
    }
  }
  const JsonValue* wait_ranks = want_arr(*wait, "ranks", out.error, "\"wait\"");
  if (wait_ranks == nullptr) {
    return out;
  }
  for (const JsonValue& r : wait_ranks->arr) {
    for (const char* key : {"rank", "wait_seconds", "late_sender_seconds",
                            "late_receiver_seconds", "blamed_seconds"}) {
      if (!want_num(r, key, out.error, "wait rank row")) {
        return out;
      }
    }
  }
  ++out.items;
  const JsonValue* overlap = want_obj(*a, "overlap", out.error, "\"analysis\"");
  if (overlap == nullptr) {
    return out;
  }
  for (const char* key : {"async_exchanges", "window_seconds",
                          "hidden_seconds", "efficiency"}) {
    if (!want_num(*overlap, key, out.error, "\"overlap\"")) {
      return out;
    }
  }
  const JsonValue* eff = overlap->find("efficiency");
  if (eff->num < 0.0 || eff->num > 1.0) {
    out.error = "overlap efficiency outside [0, 1]";
    return out;
  }
  ++out.items;
  const JsonValue* imb = want_obj(*a, "imbalance", out.error, "\"analysis\"");
  if (imb == nullptr) {
    return out;
  }
  for (const char* key : {"max_compute_seconds", "mean_compute_seconds",
                          "ratio", "critical_rank"}) {
    if (!want_num(*imb, key, out.error, "\"imbalance\"")) {
      return out;
    }
  }
  const JsonValue* loads = want_arr(*imb, "ranks", out.error, "\"imbalance\"");
  if (loads == nullptr) {
    return out;
  }
  for (const JsonValue& r : loads->arr) {
    for (const char* key : {"rank", "compute_seconds"}) {
      if (!want_num(r, key, out.error, "imbalance rank row")) {
        return out;
      }
    }
  }
  const JsonValue* steps = want_arr(*imb, "steps", out.error, "\"imbalance\"");
  if (steps == nullptr) {
    return out;
  }
  for (const JsonValue& s : steps->arr) {
    for (const char* key : {"step", "max", "mean", "critical_rank"}) {
      if (!want_num(s, key, out.error, "imbalance step row")) {
        return out;
      }
    }
  }
  ++out.items;
  const JsonValue* deep = want_obj(*a, "deep_halo", out.error, "\"analysis\"");
  if (deep == nullptr) {
    return out;
  }
  for (const char* key :
       {"exchanges", "saved_exchanges", "redundant_compute_seconds"}) {
    if (!want_num(*deep, key, out.error, "\"deep_halo\"")) {
      return out;
    }
  }
  ++out.items;
  out.ok = true;
  return out;
}

namespace {

// One (mode, depth, tile) row shared by autotune "trials" and "best".
bool check_autotune_key(const JsonValue& row, SchemaCheck& out,
                        const std::string& where) {
  const JsonValue* mode = row.find("mode");
  if (row.type != JsonValue::Type::Obj || mode == nullptr ||
      mode->type != JsonValue::Type::Str || mode->str.empty()) {
    out.error = where + " missing string \"mode\"";
    return false;
  }
  if (!want_num(row, "depth", out.error, where)) {
    return false;
  }
  const JsonValue* tile = want_arr(row, "tile", out.error, where);
  if (tile == nullptr) {
    return false;
  }
  for (const JsonValue& t : tile->arr) {
    if (t.type != JsonValue::Type::Num) {
      out.error = where + " has a non-numeric tile entry";
      return false;
    }
  }
  return true;
}

}  // namespace

SchemaCheck validate_autotune_json(std::string_view json) {
  SchemaCheck out;
  JsonValue root;
  if (!json_parse(json, root, &out.error)) {
    return out;
  }
  if (root.type != JsonValue::Type::Obj) {
    out.error = "top level is not an object";
    return out;
  }
  const JsonValue* a = want_obj(root, "autotune", out.error, "document");
  if (a == nullptr) {
    return out;
  }
  const JsonValue* objective = a->find("objective");
  if (objective == nullptr || objective->type != JsonValue::Type::Str ||
      (objective->str != "wall" && objective->str != "attributed")) {
    out.error = "\"autotune\" objective must be \"wall\" or \"attributed\"";
    return out;
  }
  const JsonValue* why = a->find("why");
  if (why == nullptr || why->type != JsonValue::Type::Str ||
      why->str.empty()) {
    out.error = "\"autotune\" missing non-empty string \"why\"";
    return out;
  }
  const JsonValue* best = want_obj(*a, "best", out.error, "\"autotune\"");
  if (best == nullptr || !check_autotune_key(*best, out, "\"best\"")) {
    return out;
  }
  const JsonValue* reb = want_obj(*a, "rebalance", out.error, "\"autotune\"");
  if (reb == nullptr) {
    return out;
  }
  const JsonValue* rec = reb->find("recommended");
  if (rec == nullptr || rec->type != JsonValue::Type::Bool) {
    out.error = "\"rebalance\" missing boolean \"recommended\"";
    return out;
  }
  if (!want_num(*reb, "rank", out.error, "\"rebalance\"") ||
      !want_num(*reb, "threshold", out.error, "\"rebalance\"")) {
    return out;
  }
  const JsonValue* trials = want_arr(*a, "trials", out.error, "\"autotune\"");
  if (trials == nullptr) {
    return out;
  }
  const bool attributed = objective->str == "attributed";
  for (const JsonValue& t : trials->arr) {
    if (!check_autotune_key(t, out, "trial row") ||
        !want_num(t, "seconds", out.error, "trial row")) {
      return out;
    }
    if (attributed) {
      const JsonValue* score = want_obj(t, "score", out.error, "trial row");
      if (score == nullptr) {
        return out;
      }
      for (const char* key :
           {"wait_seconds", "overlap_efficiency", "imbalance_ratio",
            "critical_rank", "redundant_seconds",
            "imbalance_penalty_seconds", "attributed_cost_seconds"}) {
        if (!want_num(*score, key, out.error, "trial score")) {
          return out;
        }
      }
      const JsonValue* eff = score->find("overlap_efficiency");
      if (eff->num < 0.0 || eff->num > 1.0) {
        out.error = "trial score overlap_efficiency outside [0, 1]";
        return out;
      }
    }
    ++out.items;
  }
  const JsonValue* skipped = want_arr(*a, "skipped", out.error, "\"autotune\"");
  if (skipped == nullptr) {
    return out;
  }
  for (const JsonValue& s : skipped->arr) {
    if (!check_autotune_key(s, out, "skipped row")) {
      return out;
    }
    const JsonValue* reason = s.find("reason");
    if (reason == nullptr || reason->type != JsonValue::Type::Str ||
        reason->str.empty()) {
      out.error = "skipped row missing non-empty string \"reason\"";
      return out;
    }
  }
  out.ok = true;
  return out;
}

namespace {

bool check_events_value(const JsonValue& root, SchemaCheck& out) {
  if (root.type != JsonValue::Type::Obj) {
    out.error = "events document is not an object";
    return false;
  }
  const JsonValue* events = want_arr(root, "events", out.error, "document");
  if (events == nullptr) {
    return false;
  }
  if (!want_num(root, "dropped", out.error, "document")) {
    return false;
  }
  for (const JsonValue& e : events->arr) {
    if (e.type != JsonValue::Type::Obj) {
      out.error = "events entry is not an object";
      return false;
    }
    for (const char* key : {"name", "cat"}) {
      const JsonValue* v = e.find(key);
      if (v == nullptr || v->type != JsonValue::Type::Str || v->str.empty()) {
        out.error = std::string("event missing string \"") + key + "\"";
        return false;
      }
    }
    const std::string where = "event \"" + e.find("name")->str + "\"";
    for (const char* key : {"rank", "step", "t_ns"}) {
      if (!want_num(e, key, out.error, where)) {
        return false;
      }
    }
    const JsonValue* kv = want_obj(e, "kv", out.error, where);
    if (kv == nullptr) {
      return false;
    }
    for (const auto& [k, v] : kv->obj) {
      if (v.type != JsonValue::Type::Num) {
        out.error = where + " kv \"" + k + "\" is not numeric";
        return false;
      }
    }
    ++out.items;
  }
  return true;
}

}  // namespace

SchemaCheck validate_events_json(std::string_view json) {
  SchemaCheck out;
  JsonValue root;
  if (!json_parse(json, root, &out.error)) {
    return out;
  }
  out.ok = check_events_value(root, out);
  return out;
}

FlightCheck validate_flight_json(std::string_view json) {
  FlightCheck out;
  JsonValue root;
  if (!json_parse(json, root, &out.error)) {
    return out;
  }
  if (root.type != JsonValue::Type::Obj) {
    out.error = "top level is not an object";
    return out;
  }
  const JsonValue* f = want_obj(root, "flight", out.error, "document");
  if (f == nullptr) {
    return out;
  }
  const JsonValue* ver = f->find("schema_version");
  if (ver == nullptr || ver->type != JsonValue::Type::Num ||
      ver->num != 1.0) {
    out.error = "\"flight\" missing schema_version 1";
    return out;
  }
  for (const char* key : {"reason", "detail"}) {
    const JsonValue* v = f->find(key);
    if (v == nullptr || v->type != JsonValue::Type::Str) {
      out.error = std::string("\"flight\" missing string \"") + key + "\"";
      return out;
    }
  }
  if (!want_num(*f, "rank", out.error, "\"flight\"") ||
      !want_num(*f, "step", out.error, "\"flight\"")) {
    return out;
  }
  if (want_obj(*f, "config", out.error, "\"flight\"") == nullptr) {
    return out;
  }
  const JsonValue* health = want_arr(*f, "health", out.error, "\"flight\"");
  if (health == nullptr) {
    return out;
  }
  for (const JsonValue& h : health->arr) {
    if (h.type != JsonValue::Type::Obj) {
      out.error = "health sample is not an object";
      return out;
    }
    const JsonValue* field = h.find("field");
    if (field == nullptr || field->type != JsonValue::Type::Str) {
      out.error = "health sample missing string \"field\"";
      return out;
    }
    // min/max/l2 may be JSON null when no finite point exists, so only
    // the integral fields are required numeric.
    for (const char* key : {"step", "field_id", "nan", "inf", "bad_rank"}) {
      if (!want_num(h, key, out.error, "health sample")) {
        return out;
      }
    }
    ++out.health_samples;
  }
  const JsonValue* steps = want_arr(*f, "steps", out.error, "\"flight\"");
  if (steps == nullptr) {
    return out;
  }
  for (const JsonValue& s : steps->arr) {
    if (!want_num(s, "rank", out.error, "steps row") ||
        !want_num(s, "step", out.error, "steps row")) {
      return out;
    }
  }
  const JsonValue* events = want_obj(*f, "events", out.error, "\"flight\"");
  if (events == nullptr) {
    return out;
  }
  SchemaCheck ev_check;
  if (!check_events_value(*events, ev_check)) {
    out.error = "embedded events: " + ev_check.error;
    return out;
  }
  const JsonValue* trace = want_arr(*f, "trace", out.error, "\"flight\"");
  if (trace == nullptr) {
    return out;
  }
  for (const JsonValue& t : trace->arr) {
    const JsonValue* name = t.find("name");
    if (t.type != JsonValue::Type::Obj || name == nullptr ||
        name->type != JsonValue::Type::Str) {
      out.error = "trace row missing string \"name\"";
      return out;
    }
    for (const char* key : {"rank", "t0_ns", "t1_ns"}) {
      if (!want_num(t, key, out.error, "trace row")) {
        return out;
      }
    }
  }
  const JsonValue* metrics = f->find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::Obj) {
    out.error = "\"flight\" missing object \"metrics\"";
    return out;
  }
  out.rank = static_cast<int>(f->find("rank")->num);
  out.step = static_cast<std::int64_t>(f->find("step")->num);
  out.reason = f->find("reason")->str;
  out.ok = true;
  return out;
}

PromCheck validate_prometheus_text(std::string_view text) {
  PromCheck out;
  std::string last_help;   // Family named by the most recent # HELP.
  std::string family;      // Family announced by the most recent # TYPE.
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    const std::string at = " (line " + std::to_string(lineno) + ")";
    if (line.empty()) {
      continue;
    }
    auto second_word = [&line](std::size_t from) {
      const std::size_t sp = line.find(' ', from);
      return sp == std::string_view::npos
                 ? std::make_pair(line.substr(from), std::string_view{})
                 : std::make_pair(line.substr(from, sp - from),
                                  line.substr(sp + 1));
    };
    if (line.rfind("# HELP ", 0) == 0) {
      const auto [name, rest] = second_word(7);
      if (name.empty()) {
        out.error = "# HELP without a metric name" + at;
        return out;
      }
      last_help = std::string(name);
      ++out.helps;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto [name, kind] = second_word(7);
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        out.error = "# TYPE " + std::string(name) + " has unknown kind \"" +
                    std::string(kind) + "\"" + at;
        return out;
      }
      if (last_help != name) {
        out.error = "# TYPE " + std::string(name) +
                    " not preceded by its # HELP line" + at;
        return out;
      }
      family = std::string(name);
      ++out.types;
      continue;
    }
    if (line[0] == '#') {
      continue;  // Other comments are legal and unchecked.
    }
    // Sample line: <name>[{labels}] <number>.
    const std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string_view::npos) {
      out.error = "sample line without a value" + at;
      return out;
    }
    const std::string_view name = line.substr(0, name_end);
    if (family.empty() || name.rfind(family, 0) != 0) {
      out.error = "sample \"" + std::string(name) +
                  "\" outside its # TYPE family" + at;
      return out;
    }
    const std::size_t sp = line.rfind(' ');
    const std::string value(line.substr(sp + 1));
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    const bool inf = value == "+Inf" || value == "-Inf" || value == "NaN";
    if (!inf && (end == value.c_str() || *end != '\0')) {
      out.error = "sample \"" + std::string(name) +
                  "\" has unparseable value \"" + value + "\"" + at;
      return out;
    }
    ++out.samples;
  }
  if (out.types == 0) {
    out.error = "no # TYPE lines found";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace jitfd::obs
