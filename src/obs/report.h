// Exports of the tracing subsystem (obs/trace.h):
//
//  1. summary_table()      — aggregated per-rank/per-phase text table,
//                            the DEVITO_PROFILING summary analogue.
//  2. write_chrome_trace() — Chrome trace-event JSON ("traceEvents"
//                            complete/instant events, one track per
//                            rank), loadable in chrome://tracing or
//                            https://ui.perfetto.dev.
//  3. profile_from()       — machine-readable RunProfile (per-rank
//                            compute/pack/send/wait/unpack seconds,
//                            message counts and bytes) consumed by
//                            src/perfmodel's measured-vs-predicted
//                            comparison (perfmodel/compare.h).
//
// TraceHandle is the user-facing capability returned in a RunSummary:
// a lazy view that snapshots the global buffers at call time, so it is
// complete once every rank has finished (smpi::run joined, or a
// barrier passed).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace jitfd::obs {

struct AnalysisReport;  // obs/analysis.h

/// Per-rank phase accounting distilled from a TraceData snapshot. Halo
/// phases come from the leaf spans (halo.pack/send/wait/unpack);
/// compute comes from the interpreter's compute spans, or, for JIT
/// runs (whose generated loops cannot carry spans), from the jit.run
/// umbrella minus the halo umbrellas recorded by the callbacks.
struct RankProfile {
  int rank = 0;
  double wall_s = 0.0;  ///< Last event end - first event start.
  double compute_s = 0.0;
  double pack_s = 0.0;
  double send_s = 0.0;
  double wait_s = 0.0;
  double unpack_s = 0.0;
  double sync_s = 0.0;    ///< Barriers/collectives.
  double sparse_s = 0.0;
  double compile_s = 0.0;  ///< Compiler pipeline (construction).
  double jit_build_s = 0.0;
  std::uint64_t messages = 0;    ///< halo.send spans.
  std::uint64_t bytes_sent = 0;  ///< Sum of their payloads.
  std::uint64_t steps = 0;       ///< Per-timestep "step" spans.

  double comm_s() const { return pack_s + send_s + wait_s + unpack_s; }
};

struct RunProfile {
  std::vector<RankProfile> ranks;
  std::uint64_t dropped = 0;

  /// Max over ranks (the slowest rank gates a synchronous step).
  double wall_s() const;
  std::uint64_t steps() const;  ///< Max over ranks.
  /// Totals across ranks.
  std::uint64_t messages() const;
  std::uint64_t bytes_sent() const;
  /// Mean over ranks of comm_s / (comm_s + compute_s); 0 when idle.
  double comm_fraction() const;
};

RunProfile profile_from(const TraceData& data);

/// Aggregated per-rank/per-phase table: count, total ms, and share of
/// the rank's wall time, one block per rank.
std::string summary_table(const TraceData& data);

/// Chrome trace-event JSON. pid 0; tid = rank (one named track per
/// rank); span args carry a0/a1.
void write_chrome_trace(std::ostream& os, const TraceData& data);
std::string chrome_trace_string(const TraceData& data);
/// Returns false (and writes nothing) when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path, const TraceData& data);

/// Capability returned by Operator::apply({.trace = true}): snapshots
/// the global buffers at call time.
class TraceHandle {
 public:
  TraceHandle() = default;
  explicit TraceHandle(bool active) : active_(active) {}

  /// Whether the run that produced this handle recorded events.
  bool active() const { return active_; }

  TraceData data() const { return active_ ? collect() : TraceData{}; }
  RunProfile profile() const { return profile_from(data()); }
  std::string summary() const { return summary_table(data()); }
  /// Cross-rank analysis (wait-state attribution, overlap efficiency,
  /// imbalance, strip accounting); callers include obs/analysis.h.
  AnalysisReport analysis() const;
  bool write_chrome(const std::string& path) const {
    return active_ && write_chrome_trace_file(path, data());
  }

 private:
  bool active_ = false;
};

}  // namespace jitfd::obs
