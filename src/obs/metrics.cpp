#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/env.h"

namespace jitfd::obs::metrics {

#ifndef JITFD_OBS_DISABLED
namespace detail {

namespace {
std::uint32_t init_from_env() {
  return jitfd::env::get_bool("JITFD_METRICS", false) ? 1u : 0u;
}
}  // namespace

std::atomic<std::uint32_t> g_enabled{init_from_env()};

}  // namespace detail
#endif

void set_enabled(bool on) {
#ifndef JITFD_OBS_DISABLED
  detail::g_enabled.store(on ? 1u : 0u, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

namespace {

struct Instrument {
  Snapshot::Kind kind;
  std::string help;
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
};

// The registry is leaked so rank threads that outlive static teardown
// can still touch instruments they cached by reference.
struct Registry {
  std::mutex mu;
  std::map<std::string, Instrument, std::less<>> instruments;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

template <class T>
T& lookup(std::string_view name, std::string_view help, Snapshot::Kind kind,
          T* Instrument::*slot) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.instruments.find(name);
  if (it == r.instruments.end()) {
    Instrument inst;
    inst.kind = kind;
    inst.help = std::string(help);
    inst.*slot = new T();
    it = r.instruments.emplace(std::string(name), inst).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs::metrics: instrument '" + std::string(name) +
                           "' already registered as a different kind");
  } else if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return *(it->second.*slot);
}

const char* kind_name(Snapshot::Kind k) {
  switch (k) {
    case Snapshot::Kind::Counter: return "counter";
    case Snapshot::Kind::Gauge: return "gauge";
    case Snapshot::Kind::Histogram: return "histogram";
  }
  return "?";
}

void append_double(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    // Round-trippable, locale-independent enough for '.' locales; the
    // build never changes the global locale.
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
  } else {
    os << "0";
  }
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Prometheus HELP text escaping: backslash and line feed only.
std::string escape_prom_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string sanitize_prom(std::string_view name) {
  std::string out = "jitfd_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void Histogram::observe(double v) {
  if (!enabled()) return;
  int b = kBuckets - 1;
  double ub = kBucketBase;
  for (int i = 0; i < kBuckets - 1; ++i, ub *= 2.0) {
    if (v <= ub) {
      b = i;
      break;
    }
  }
  buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::upper_bound(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kBucketBase * std::ldexp(1.0, i);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) { return counter(name, {}); }

Counter& counter(std::string_view name, std::string_view help) {
  return lookup<Counter>(name, help, Snapshot::Kind::Counter,
                         &Instrument::counter);
}

Gauge& gauge(std::string_view name) { return gauge(name, {}); }

Gauge& gauge(std::string_view name, std::string_view help) {
  return lookup<Gauge>(name, help, Snapshot::Kind::Gauge, &Instrument::gauge);
}

Histogram& histogram(std::string_view name) { return histogram(name, {}); }

Histogram& histogram(std::string_view name, std::string_view help) {
  return lookup<Histogram>(name, help, Snapshot::Kind::Histogram,
                           &Instrument::histogram);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, inst] : r.instruments) {
    switch (inst.kind) {
      case Snapshot::Kind::Counter: inst.counter->reset(); break;
      case Snapshot::Kind::Gauge: inst.gauge->reset(); break;
      case Snapshot::Kind::Histogram: inst.histogram->reset(); break;
    }
  }
}

std::vector<Snapshot> snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<Snapshot> out;
  out.reserve(r.instruments.size());
  for (const auto& [name, inst] : r.instruments) {
    Snapshot s;
    s.name = name;
    s.help = inst.help;
    s.kind = inst.kind;
    switch (inst.kind) {
      case Snapshot::Kind::Counter:
        s.count = inst.counter->value();
        break;
      case Snapshot::Kind::Gauge:
        s.value = inst.gauge->value();
        break;
      case Snapshot::Kind::Histogram: {
        s.count = inst.histogram->count();
        s.value = inst.histogram->sum();
        std::uint64_t cum = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
          cum += inst.histogram->bucket(i);
          s.buckets.emplace_back(Histogram::upper_bound(i), cum);
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string to_json() {
  const std::vector<Snapshot> snaps = snapshot();
  std::ostringstream os;
  os << "{\n  \"metrics\": [";
  bool first = true;
  for (const Snapshot& s : snaps) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << s.name << "\", \"type\": \""
       << kind_name(s.kind) << "\", \"help\": \"" << escape_json(s.help)
       << "\", ";
    switch (s.kind) {
      case Snapshot::Kind::Counter:
        os << "\"value\": " << s.count << "}";
        break;
      case Snapshot::Kind::Gauge:
        os << "\"value\": ";
        append_double(os, s.value);
        os << "}";
        break;
      case Snapshot::Kind::Histogram: {
        os << "\"count\": " << s.count << ", \"sum\": ";
        append_double(os, s.value);
        os << ", \"buckets\": [";
        bool bf = true;
        for (const auto& [le, cum] : s.buckets) {
          if (!bf) os << ", ";
          bf = false;
          os << "{\"le\": ";
          if (std::isinf(le)) {
            os << "\"+Inf\"";
          } else {
            append_double(os, le);
          }
          os << ", \"count\": " << cum << "}";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string to_prometheus() {
  const std::vector<Snapshot> snaps = snapshot();
  std::ostringstream os;
  for (const Snapshot& s : snaps) {
    const std::string prom = sanitize_prom(s.name);
    // HELP precedes TYPE (the exposition-format convention; trace_check
    // --metrics validates the pairing). Empty help keeps the bare line.
    os << "# HELP " << prom;
    if (!s.help.empty()) {
      os << " " << escape_prom_help(s.help);
    }
    os << "\n";
    os << "# TYPE " << prom << " " << kind_name(s.kind) << "\n";
    switch (s.kind) {
      case Snapshot::Kind::Counter:
        os << prom << " " << s.count << "\n";
        break;
      case Snapshot::Kind::Gauge:
        os << prom << " ";
        append_double(os, s.value);
        os << "\n";
        break;
      case Snapshot::Kind::Histogram: {
        for (const auto& [le, cum] : s.buckets) {
          os << prom << "_bucket{le=\"";
          if (std::isinf(le)) {
            os << "+Inf";
          } else {
            std::ostringstream tmp;
            tmp.precision(17);
            tmp << le;
            os << tmp.str();
          }
          os << "\"} " << cum << "\n";
        }
        os << prom << "_sum ";
        append_double(os, s.value);
        os << "\n";
        os << prom << "_count " << s.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace jitfd::obs::metrics
