#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/metrics.h"
#include "obs/report.h"

namespace jitfd::obs {

namespace {

double sec(std::uint64_t t0, std::uint64_t t1) {
  return t1 > t0 ? static_cast<double>(t1 - t0) * 1e-9 : 0.0;
}

struct Interval {
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
};

}  // namespace

AnalysisReport analyze(const TraceData& data) {
  AnalysisReport rep;
  if (data.events.empty()) {
    return rep;
  }

  // Per-rank aggregates (reuses the RunProfile machinery, including the
  // derived-compute fallback for JIT ranks).
  const RunProfile prof = profile_from(data);
  rep.nranks = static_cast<int>(prof.ranks.size());
  rep.steps = prof.steps();
  rep.wall_s = prof.wall_s();

  // -- Bucket the events we need, preserving the per-rank chronological
  // order collect() guarantees. ----------------------------------------
  // (sender, receiver) -> send intervals, (receiver, sender) -> waits.
  std::map<std::pair<int, int>, std::vector<Interval>> sends;
  std::map<std::pair<int, int>, std::vector<Interval>> waits;
  std::map<int, std::uint64_t> strip_count;
  std::map<int, std::uint64_t> exchange_count;
  // (rank, spot) -> chronological halo.start / halo.finish intervals.
  std::map<std::pair<int, int>, std::vector<std::pair<bool, Interval>>>
      async_marks;  // bool: true = start.
  std::map<int, std::vector<Interval>> strips;
  std::map<int, std::vector<Interval>> step_spans;
  std::map<int, std::vector<std::pair<Interval, std::int64_t>>> computes;

  for (const TraceData::Rec& e : data.events) {
    const Interval iv{e.t0_ns, e.t1_ns};
    switch (e.cat) {
      case Cat::Send:
        if (e.name == "halo.send") {
          sends[{e.rank, e.a1}].push_back(iv);
        }
        break;
      case Cat::Wait:
        if (e.name == "halo.wait") {
          waits[{e.rank, e.a1}].push_back(iv);
        }
        break;
      case Cat::Halo:
        if (e.name == "halo.update") {
          ++exchange_count[e.rank];
        } else if (e.name == "halo.start") {
          ++exchange_count[e.rank];
          async_marks[{e.rank, e.a1}].emplace_back(true, iv);
        } else if (e.name == "halo.finish") {
          async_marks[{e.rank, e.a1}].emplace_back(false, iv);
        }
        break;
      case Cat::Msg:
        if (e.name == "msg.rendezvous") {
          ++rep.rendezvous_msgs;
        } else if (e.name == "msg.queued") {
          ++rep.queued_msgs;
        }
        break;
      case Cat::Compute:
        computes[e.rank].emplace_back(iv, e.a0);
        break;
      case Cat::Run:
        if (e.name == "strip") {
          ++strip_count[e.rank];
          strips[e.rank].push_back(iv);
        } else if (e.name == "step") {
          step_spans[e.rank].push_back(iv);
        }
        break;
      default:
        break;
    }
  }

  for (const auto& [rank, n] : strip_count) {
    rep.strips = std::max(rep.strips, n);
  }
  for (const auto& [rank, n] : exchange_count) {
    rep.exchanges = std::max(rep.exchanges, n);
  }
  if (rep.strips > 0 && rep.steps > 0) {
    rep.exchange_depth = static_cast<int>(
        (rep.steps + rep.strips - 1) / rep.strips);
    rep.saved_exchanges =
        rep.steps > rep.strips ? rep.steps - rep.strips : 0;
  }

  // -- Wait-state attribution ------------------------------------------
  std::map<int, RankWaitStats> rank_waits;
  for (const RankProfile& r : prof.ranks) {
    RankWaitStats& w = rank_waits[r.rank];
    w.rank = r.rank;
    w.wait_s = r.wait_s;
  }
  for (const auto& [key, ws] : waits) {
    const auto [receiver, sender] = key;
    const auto sit = sends.find({sender, receiver});
    const std::size_t n_sends =
        sit != sends.end() ? sit->second.size() : std::size_t{0};
    const std::size_t matched = std::min(ws.size(), n_sends);
    rep.matched_waits += matched;
    rep.unmatched_waits += ws.size() - matched;
    for (std::size_t i = 0; i < matched; ++i) {
      const Interval& w = ws[i];
      const Interval& s = sit->second[i];
      // Receiver idle before the sender initiated the transfer.
      const double late_sender =
          sec(w.t0, std::min(std::max(s.t0, w.t0), w.t1));
      // Message delivered (buffered sends complete at s.t1) before the
      // receiver showed up: the message waited, not the receiver.
      const double late_receiver = sec(s.t1, w.t0);
      const double transfer = std::max(sec(w.t0, w.t1) - late_sender, 0.0);
      rep.late_sender_s += late_sender;
      rep.late_receiver_s += late_receiver;
      rep.transfer_s += transfer;
      rank_waits[receiver].late_sender_s += late_sender;
      rank_waits[receiver].late_receiver_s += late_receiver;
      rank_waits[sender].blamed_s += late_sender;
    }
  }
  double best_blame = 0.0;
  for (const auto& [rank, w] : rank_waits) {
    rep.rank_waits.push_back(w);
    if (w.blamed_s > best_blame) {
      best_blame = w.blamed_s;
      rep.late_sender_culprit = rank;
    }
  }

  // -- Overlap efficiency (async halo.start / halo.finish pairs) -------
  for (const auto& [key, marks] : async_marks) {
    const Interval* open_start = nullptr;
    for (const auto& [is_start, iv] : marks) {
      if (is_start) {
        open_start = &iv;
      } else if (open_start != nullptr) {
        const double window = sec(open_start->t0, iv.t1);
        if (window > 0.0) {
          ++rep.async_exchanges;
          rep.overlap_window_s += window;
          rep.overlap_hidden_s += sec(open_start->t1, iv.t0);
        }
        open_start = nullptr;
      }
    }
  }
  if (rep.overlap_window_s > 0.0) {
    rep.overlap_efficiency =
        std::clamp(rep.overlap_hidden_s / rep.overlap_window_s, 0.0, 1.0);
  }

  // -- Load imbalance ---------------------------------------------------
  double total_compute = 0.0;
  for (const RankProfile& r : prof.ranks) {
    total_compute += r.compute_s;
    rep.rank_loads.push_back({r.rank, r.compute_s});
    if (r.compute_s > rep.max_compute_s) {
      rep.max_compute_s = r.compute_s;
      rep.critical_path_rank = r.rank;
    }
  }
  std::sort(rep.rank_loads.begin(), rep.rank_loads.end(),
            [](const RankLoad& a, const RankLoad& b) { return a.rank < b.rank; });
  if (rep.nranks > 0) {
    rep.mean_compute_s = total_compute / rep.nranks;
  }
  if (rep.mean_compute_s > 0.0) {
    rep.imbalance_ratio = rep.max_compute_s / rep.mean_compute_s;
  }
  // Per-step breakdown, available when compute spans carry timesteps
  // (interpreter runs; generated JIT loops record none).
  std::map<std::int64_t, std::map<int, double>> by_step;
  for (const auto& [rank, list] : computes) {
    for (const auto& [iv, t] : list) {
      by_step[t][rank] += sec(iv.t0, iv.t1);
    }
  }
  for (const auto& [step, per_rank] : by_step) {
    StepLoad sl;
    sl.step = step;
    double sum = 0.0;
    for (const auto& [rank, s] : per_rank) {
      sum += s;
      if (s > sl.max_compute_s) {
        sl.max_compute_s = s;
        sl.critical_rank = rank;
      }
    }
    sl.mean_compute_s =
        rep.nranks > 0 ? sum / rep.nranks : 0.0;
    rep.step_loads.push_back(sl);
  }

  // -- Deep-halo redundant compute --------------------------------------
  // Within one k-deep strip the early sub-steps run ghost-extended
  // bounds; their compute excess over the cheapest sub-step is the
  // redundancy bought in exchange for the saved messages.
  for (const auto& [rank, strip_list] : strips) {
    const auto st_it = step_spans.find(rank);
    const auto c_it = computes.find(rank);
    if (st_it == step_spans.end() || c_it == computes.end()) {
      continue;
    }
    for (const Interval& strip : strip_list) {
      std::vector<double> sub;
      for (const Interval& step : st_it->second) {
        if (step.t0 < strip.t0 || step.t1 > strip.t1) {
          continue;
        }
        double c = 0.0;
        for (const auto& [iv, t] : c_it->second) {
          if (iv.t0 >= step.t0 && iv.t1 <= step.t1) {
            c += sec(iv.t0, iv.t1);
          }
        }
        sub.push_back(c);
      }
      if (sub.size() >= 2) {
        const double lo = *std::min_element(sub.begin(), sub.end());
        for (const double c : sub) {
          rep.redundant_compute_s += c - lo;
        }
      }
    }
  }

  return rep;
}

namespace {

void put(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    v = 0.0;
  }
  std::ostringstream tmp;
  tmp.precision(9);
  tmp << v;
  os << tmp.str();
}

}  // namespace

std::string analysis_json(const AnalysisReport& r) {
  std::ostringstream os;
  os << "{\n\"analysis\": {\n";
  os << "  \"nranks\": " << r.nranks << ",\n";
  os << "  \"steps\": " << r.steps << ",\n";
  os << "  \"strips\": " << r.strips << ",\n";
  os << "  \"exchange_depth\": " << r.exchange_depth << ",\n";
  os << "  \"wall_seconds\": ";
  put(os, r.wall_s);
  os << ",\n  \"wait\": {\n";
  os << "    \"late_sender_seconds\": ";
  put(os, r.late_sender_s);
  os << ",\n    \"late_receiver_seconds\": ";
  put(os, r.late_receiver_s);
  os << ",\n    \"transfer_seconds\": ";
  put(os, r.transfer_s);
  os << ",\n    \"matched\": " << r.matched_waits;
  os << ",\n    \"unmatched\": " << r.unmatched_waits;
  os << ",\n    \"culprit_rank\": " << r.late_sender_culprit;
  os << ",\n    \"rendezvous_messages\": " << r.rendezvous_msgs;
  os << ",\n    \"queued_messages\": " << r.queued_msgs;
  os << ",\n    \"ranks\": [";
  bool first = true;
  for (const RankWaitStats& w : r.rank_waits) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "      {\"rank\": " << w.rank << ", \"wait_seconds\": ";
    put(os, w.wait_s);
    os << ", \"late_sender_seconds\": ";
    put(os, w.late_sender_s);
    os << ", \"late_receiver_seconds\": ";
    put(os, w.late_receiver_s);
    os << ", \"blamed_seconds\": ";
    put(os, w.blamed_s);
    os << "}";
  }
  os << "\n    ]\n  },\n";
  os << "  \"overlap\": {\n";
  os << "    \"async_exchanges\": " << r.async_exchanges;
  os << ",\n    \"window_seconds\": ";
  put(os, r.overlap_window_s);
  os << ",\n    \"hidden_seconds\": ";
  put(os, r.overlap_hidden_s);
  os << ",\n    \"efficiency\": ";
  put(os, r.overlap_efficiency);
  os << "\n  },\n";
  os << "  \"imbalance\": {\n";
  os << "    \"max_compute_seconds\": ";
  put(os, r.max_compute_s);
  os << ",\n    \"mean_compute_seconds\": ";
  put(os, r.mean_compute_s);
  os << ",\n    \"ratio\": ";
  put(os, r.imbalance_ratio);
  os << ",\n    \"critical_rank\": " << r.critical_path_rank;
  os << ",\n    \"ranks\": [";
  first = true;
  for (const RankLoad& rl : r.rank_loads) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "      {\"rank\": " << rl.rank << ", \"compute_seconds\": ";
    put(os, rl.compute_s);
    os << "}";
  }
  os << "\n    ],\n    \"steps\": [";
  first = true;
  for (const StepLoad& sl : r.step_loads) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "      {\"step\": " << sl.step << ", \"max\": ";
    put(os, sl.max_compute_s);
    os << ", \"mean\": ";
    put(os, sl.mean_compute_s);
    os << ", \"critical_rank\": " << sl.critical_rank << "}";
  }
  os << "\n    ]\n  },\n";
  os << "  \"deep_halo\": {\n";
  os << "    \"exchanges\": " << r.exchanges;
  os << ",\n    \"saved_exchanges\": " << r.saved_exchanges;
  os << ",\n    \"redundant_compute_seconds\": ";
  put(os, r.redundant_compute_s);
  os << "\n  }\n}\n}\n";
  return os.str();
}

bool write_analysis_file(const std::string& path,
                         const AnalysisReport& report) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << analysis_json(report);
  return static_cast<bool>(out);
}

std::string analysis_summary(const AnalysisReport& r) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "analysis: " << r.nranks << " ranks, " << r.steps << " steps";
  if (r.strips > 0) {
    os << " (" << r.strips << " strips, k=" << r.exchange_depth << ", "
       << r.saved_exchanges << " exchanges saved)";
  }
  os << ", wall " << r.wall_s * 1e3 << " ms\n";
  os << "  wait: late-sender " << r.late_sender_s * 1e3
     << " ms, late-receiver " << r.late_receiver_s * 1e3 << " ms, transfer "
     << r.transfer_s * 1e3 << " ms (" << r.matched_waits << " matched, "
     << r.unmatched_waits << " unmatched";
  if (r.late_sender_culprit >= 0) {
    os << ", culprit rank " << r.late_sender_culprit;
  }
  os << ")\n";
  os << "  transport: " << r.rendezvous_msgs << " rendezvous, "
     << r.queued_msgs << " queued\n";
  if (r.async_exchanges > 0) {
    os << "  overlap: " << r.overlap_efficiency * 100.0 << "% of "
       << r.overlap_window_s * 1e3 << " ms exchange wall hidden ("
       << r.async_exchanges << " async exchanges)\n";
  }
  os << "  imbalance: max/mean compute " << r.imbalance_ratio;
  if (r.critical_path_rank >= 0) {
    os << " (critical-path rank " << r.critical_path_rank << ")";
  }
  os << "\n";
  if (r.redundant_compute_s > 0.0) {
    os << "  deep-halo: " << r.redundant_compute_s * 1e3
       << " ms redundant compute for " << r.saved_exchanges
       << " saved exchanges\n";
  }
  return os.str();
}

void export_metrics(const AnalysisReport& r) {
  metrics::gauge("analysis.wall_seconds").set(r.wall_s);
  metrics::gauge("analysis.late_sender_seconds").set(r.late_sender_s);
  metrics::gauge("analysis.late_receiver_seconds").set(r.late_receiver_s);
  metrics::gauge("analysis.transfer_seconds").set(r.transfer_s);
  metrics::gauge("analysis.matched_waits")
      .set(static_cast<double>(r.matched_waits));
  metrics::gauge("analysis.overlap_efficiency").set(r.overlap_efficiency);
  metrics::gauge("analysis.imbalance_ratio").set(r.imbalance_ratio);
  metrics::gauge("analysis.max_compute_seconds").set(r.max_compute_s);
  metrics::gauge("analysis.mean_compute_seconds").set(r.mean_compute_s);
  metrics::gauge("analysis.redundant_compute_seconds")
      .set(r.redundant_compute_s);
  metrics::gauge("analysis.saved_exchanges")
      .set(static_cast<double>(r.saved_exchanges));
}

AnalysisReport TraceHandle::analysis() const { return analyze(data()); }

}  // namespace jitfd::obs
