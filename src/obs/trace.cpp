#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace jitfd::obs {

namespace detail {

std::atomic<std::uint32_t> g_enabled{0};

}  // namespace detail

namespace {

// Bit 31 of g_enabled is the global force flag; the low bits count live
// EnableScopes. enabled() only tests != 0, so the two compose freely.
constexpr std::uint32_t kForceBit = 1U << 31;

std::atomic<std::size_t> g_capacity{std::size_t{1} << 16};

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Single-writer ring buffer of one thread. The owning thread is the
/// only writer; collectors read behind an acquire on `head` and are
/// documented to run only while the writer is quiescent.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity, int rank_)
      : slots(capacity), mask(capacity - 1), rank(rank_) {}

  std::vector<Event> slots;
  std::size_t mask;
  std::atomic<std::uint64_t> head{0};
  int rank;
};

struct Registry {
  std::mutex mtx;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry;  // Leaked: rank threads may outlive
  return *r;                          // static destruction order.
}

thread_local ThreadBuffer* t_buf = nullptr;
thread_local int t_rank = 0;
thread_local int t_depth = 0;

ThreadBuffer* attach_thread() {
  auto buf = std::make_unique<ThreadBuffer>(
      round_pow2(g_capacity.load(std::memory_order_relaxed)), t_rank);
  t_buf = buf.get();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  reg.buffers.push_back(std::move(buf));
  return t_buf;
}

void push(const Event& e) {
  ThreadBuffer* b = t_buf != nullptr ? t_buf : attach_thread();
  const std::uint64_t h = b->head.load(std::memory_order_relaxed);
  b->slots[static_cast<std::size_t>(h) & b->mask] = e;
  b->head.store(h + 1, std::memory_order_release);
}

/// Reads JITFD_TRACE / JITFD_TRACE_RING before main.
const bool g_env_init = [] {
  if (const char* ring = std::getenv("JITFD_TRACE_RING")) {
    const long n = std::atol(ring);
    if (n > 0) {
      set_ring_capacity(static_cast<std::size_t>(n));
    }
  }
  if (const char* on = std::getenv("JITFD_TRACE")) {
    if (on[0] != '\0' && on[0] != '0') {
      set_enabled(true);
    }
  }
  return true;
}();

}  // namespace

const char* to_string(Cat cat) {
  switch (cat) {
    case Cat::Compile:
      return "compile";
    case Cat::Jit:
      return "jit";
    case Cat::Compute:
      return "compute";
    case Cat::Pack:
      return "pack";
    case Cat::Send:
      return "send";
    case Cat::Wait:
      return "wait";
    case Cat::Unpack:
      return "unpack";
    case Cat::Halo:
      return "halo";
    case Cat::Msg:
      return "msg";
    case Cat::Sync:
      return "sync";
    case Cat::Sparse:
      return "sparse";
    case Cat::Run:
      return "run";
  }
  return "?";
}

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

void set_enabled(bool on) {
  if (on) {
    detail::g_enabled.fetch_or(kForceBit, std::memory_order_relaxed);
    (void)now_ns();  // Pin the epoch before the first span.
  } else {
    detail::g_enabled.fetch_and(~kForceBit, std::memory_order_relaxed);
  }
}

EnableScope::EnableScope(bool on) : on_(on) {
  if (on_) {
    detail::g_enabled.fetch_add(1, std::memory_order_relaxed);
    (void)now_ns();
  }
}

EnableScope::~EnableScope() {
  if (on_) {
    detail::g_enabled.fetch_sub(1, std::memory_order_relaxed);
  }
}

void set_thread_rank(int rank) {
  t_rank = rank;
  if (t_buf != nullptr) {
    t_buf->rank = rank;
  }
}

void set_ring_capacity(std::size_t events) {
  g_capacity.store(round_pow2(events), std::memory_order_relaxed);
}

namespace detail {

std::uint64_t span_begin() {
  ++t_depth;
  return now_ns();
}

void span_end(const char* name, Cat cat, std::uint64_t t0_ns,
              std::int64_t a0, std::int32_t a1) {
  const std::uint64_t t1 = now_ns();
  const int depth = --t_depth;
  Event e;
  e.name = name;
  e.cat = cat;
  e.t0_ns = t0_ns;
  e.t1_ns = t1;
  e.a0 = a0;
  e.a1 = a1;
  e.depth = static_cast<std::uint8_t>(depth < 0 ? 0 : depth);
  push(e);
}

void record_instant(const char* name, Cat cat, std::int64_t a0,
                    std::int32_t a1) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.t0_ns = e.t1_ns = now_ns();
  e.a0 = a0;
  e.a1 = a1;
  e.depth = static_cast<std::uint8_t>(t_depth < 0 ? 0 : t_depth);
  push(e);
}

}  // namespace detail

TraceData collect() {
  TraceData out;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  for (const auto& buf : reg.buffers) {
    const std::uint64_t h = buf->head.load(std::memory_order_acquire);
    const std::uint64_t cap = buf->mask + 1;
    const std::uint64_t n = h < cap ? h : cap;
    out.dropped += h - n;
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Event& e = buf->slots[static_cast<std::size_t>(i) & buf->mask];
      TraceData::Rec rec;
      rec.name = e.name != nullptr ? e.name : "?";
      rec.cat = e.cat;
      rec.rank = buf->rank;
      rec.t0_ns = e.t0_ns;
      rec.t1_ns = e.t1_ns;
      rec.a0 = e.a0;
      rec.a1 = e.a1;
      rec.depth = e.depth;
      out.events.push_back(std::move(rec));
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceData::Rec& a, const TraceData::Rec& b) {
                     return a.rank != b.rank ? a.rank < b.rank
                                             : a.t0_ns < b.t0_ns;
                   });
  return out;
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  for (const auto& buf : reg.buffers) {
    buf->head.store(0, std::memory_order_release);
  }
}

}  // namespace jitfd::obs
